(** Semantic execution of the canonical bug on the joined timeline.

    The paper's chain equates "some pair of critical windows overlap" with
    "the atomicity violation manifests" (Section 3.2 / Appendix A.3). This
    module closes the loop semantically: it takes the settled positions of
    every thread's critical LD/ST, places them on the common time axis with
    the thread shifts, and actually EXECUTES the increments under the
    paper's timing rules — loads read the shared variable instantaneously
    at the start of their step, stores commit at the end — then checks
    whether the final value equals the thread count.

    The test suite uses this to validate the paper's equivalence: the final
    value is n exactly when the inclusive windows are pairwise disjoint
    (and the property test hunts for counterexamples). *)

type schedule = { load_time : int; store_time : int }
(** One thread's critical instruction times; [load_time < store_time]
    required (the store never passes the load). *)

val execute : schedule array -> int
(** [execute schedules] runs the increments and returns the final value of
    the shared variable. Simultaneous loads all read the pre-step value;
    simultaneous stores commit in argument order (the choice cannot affect
    whether the result equals n). Raises [Invalid_argument] on an empty
    array or a schedule with [load_time >= store_time]. *)

val windows_disjoint : schedule array -> bool
(** Whether the inclusive integer windows [load_time .. store_time] are
    pairwise disjoint. *)

type sample = {
  final_value : int;
  disjoint : bool;
  schedules : schedule array;
}

val sample :
  ?p:float -> ?m:int -> Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> sample
(** One end-to-end draw: a shared random program, [n] independent settlings,
    geometric shifts, semantic execution. The [disjoint] field is the
    Appendix A.3 overlap event on the same draw. *)

val bug_rate :
  ?p:float -> ?m:int -> trials:int ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t ->
  float * float
(** [(semantic, overlap)]: the empirical Pr[final != n] and Pr[some
    windows overlap] over the same draws — equal when the paper's
    equivalence holds (they are, see the tests, which also check it
    per-draw). *)
