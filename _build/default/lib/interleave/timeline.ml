module Rng = Memrel_prob.Rng
module Settle = Memrel_settling.Settle
module Window = Memrel_settling.Window
module Program = Memrel_settling.Program

type schedule = { load_time : int; store_time : int }

let validate schedules =
  if Array.length schedules = 0 then invalid_arg "Timeline: empty schedule array";
  Array.iter
    (fun s ->
      if s.load_time >= s.store_time then
        invalid_arg "Timeline: load must strictly precede store")
    schedules

let execute schedules =
  validate schedules;
  let n = Array.length schedules in
  (* event times, processed in order; loads of a step fire before stores *)
  let times =
    Array.to_list schedules
    |> List.concat_map (fun s -> [ s.load_time; s.store_time ])
    |> List.sort_uniq compare
  in
  let x = ref 0 in
  let read = Array.make n 0 in
  List.iter
    (fun t ->
      Array.iteri (fun k s -> if s.load_time = t then read.(k) <- !x) schedules;
      Array.iteri (fun k s -> if s.store_time = t then x := read.(k) + 1) schedules)
    times;
  !x

let windows_disjoint schedules =
  validate schedules;
  let sorted = Array.copy schedules in
  Array.sort (fun a b -> compare a.load_time b.load_time) sorted;
  let ok = ref true in
  for i = 0 to Array.length sorted - 2 do
    if sorted.(i + 1).load_time <= sorted.(i).store_time then ok := false
  done;
  !ok

type sample = {
  final_value : int;
  disjoint : bool;
  schedules : schedule array;
}

let sample ?(p = 0.5) ?(m = 64) model ~n rng =
  if n < 2 then invalid_arg "Timeline.sample: n >= 2 required";
  let prog = Program.generate ~p rng ~m in
  let schedules =
    Array.init n (fun _ ->
        let pi = Settle.run model rng prog in
        let load_pos, store_pos = Window.bounds prog pi in
        let eta = Rng.geometric_half rng in
        { load_time = load_pos - eta; store_time = store_pos - eta })
  in
  { final_value = execute schedules; disjoint = windows_disjoint schedules; schedules }

let bug_rate ?(p = 0.5) ?(m = 64) ~trials model ~n rng =
  if trials <= 0 then invalid_arg "Timeline.bug_rate: trials must be positive";
  let bugs = ref 0 and overlaps = ref 0 in
  for _ = 1 to trials do
    let s = sample ~p ~m model ~n rng in
    if s.final_value <> n then incr bugs;
    if not s.disjoint then incr overlaps
  done;
  (float_of_int !bugs /. float_of_int trials, float_of_int !overlaps /. float_of_int trials)
