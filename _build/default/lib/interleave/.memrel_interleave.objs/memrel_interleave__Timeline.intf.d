lib/interleave/timeline.mli: Memrel_memmodel Memrel_prob
