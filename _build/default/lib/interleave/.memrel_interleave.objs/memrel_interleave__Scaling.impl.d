lib/interleave/scaling.ml: Float List Memrel_prob Memrel_settling Memrel_shift
