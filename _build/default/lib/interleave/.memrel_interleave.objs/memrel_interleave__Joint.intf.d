lib/interleave/joint.mli: Memrel_memmodel Memrel_prob
