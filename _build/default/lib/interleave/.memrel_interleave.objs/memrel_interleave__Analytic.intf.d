lib/interleave/analytic.mli: Memrel_memmodel Memrel_prob Memrel_settling
