lib/interleave/analytic.ml: Float Memrel_prob Memrel_settling Memrel_shift
