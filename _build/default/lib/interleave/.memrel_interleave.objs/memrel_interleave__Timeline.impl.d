lib/interleave/timeline.ml: Array List Memrel_prob Memrel_settling
