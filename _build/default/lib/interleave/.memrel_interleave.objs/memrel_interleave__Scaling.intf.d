lib/interleave/scaling.mli: Memrel_settling
