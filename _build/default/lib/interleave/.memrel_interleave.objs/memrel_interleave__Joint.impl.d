lib/interleave/joint.ml: Array Float Memrel_prob Memrel_settling Memrel_shift
