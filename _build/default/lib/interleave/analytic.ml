module Q = Memrel_prob.Rational
module SA = Memrel_settling.Analytic
module SE = Memrel_shift.Exact
module C = Memrel_prob.Combinatorics

let two_thirds = Q.of_ints 2 3

let pr_a_n2_sc = Q.of_ints 1 6
let pr_a_n2_wo = Q.of_ints 7 54
let pr_a_n2_tso_bounds = (Q.of_ints 58 441, Q.add (Q.of_ints 58 441) (Q.of_ints 1 189))

let pr_a_n2 w = (2.0 /. 3.0) *. SA.expect_pow2_window w ~k:1
let pr_a_n2_tso_series () = pr_a_n2 `TSO_series

let binom2 n = n * (n + 1) / 2

let prefactor_full n =
  (* c(n) 2^-C(n+1,2) n! *)
  Q.mul (Q.mul (SE.c n) (Q.pow2 (-binom2 n))) (Q.of_bigint (C.factorial n))

let pr_exact_independent expect n =
  if n < 2 then invalid_arg "Interleave.Analytic: n >= 2 required";
  let product = ref Q.one in
  for i = 1 to n - 1 do
    product := Q.mul !product (expect ~k:i)
  done;
  Q.mul (prefactor_full n) !product

let pr_a_sc ~n = pr_exact_independent (SA.expect_pow2_window_exact `SC) n
let pr_a_wo ~n = pr_exact_independent (SA.expect_pow2_window_exact `WO) n

let pr_a_tso_bounds ~n =
  ( pr_exact_independent (SA.expect_pow2_window_exact `TSO_lower) n,
    pr_exact_independent (SA.expect_pow2_window_exact `TSO_upper) n )

let pr_a w ~n =
  if n < 2 then invalid_arg "Interleave.Analytic.pr_a: n >= 2 required";
  let product = ref 0.0 in
  for i = 1 to n - 1 do
    product := !product +. (Float.log (SA.expect_pow2_window w ~k:i) /. Float.log 2.0)
  done;
  Q.to_float (prefactor_full n) *. Float.pow 2.0 !product

let pr_a_tso_independent_series ~n = pr_a `TSO_series ~n

let pr_a_joint_exact ?p ?(m = 64) model ~n =
  let e = Memrel_settling.Joint_dp.expect_product ?p model ~m ~n in
  Q.to_float (prefactor_full n) *. e

(* consistency: Theorem 6.2's closed forms are special cases of the general
   path; the test suite asserts pr_a_sc ~n:2 = 1/6 etc. The 2/3 constant in
   pr_a_n2 is prefactor_full 2 = (8/3) * 2^-3 * 2 = 2/3. *)
let () = assert (Q.equal (prefactor_full 2) two_thirds)
