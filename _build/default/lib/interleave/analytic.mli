(** Closed-form bug-manifestation probabilities (Theorems 6.1 and 6.2).

    For n = 2 only the marginal window law matters (the paper's symmetry
    observation), so SC and WO are exact rationals, and TSO gets the paper's
    bracketing bounds plus our exact-series value. For general [n], SC and
    WO remain exact (their window laws are program-independent hence
    i.i.d. across threads); TSO's cross-thread correlation is handled by
    {!Joint.semi_analytic} and bracketed here under the independence
    approximation. *)

module Q = Memrel_prob.Rational

(** {1 Theorem 6.2 — n = 2} *)

val pr_a_n2_sc : Q.t
(** 1/6 (~ 0.1666). *)

val pr_a_n2_wo : Q.t
(** 7/54 (~ 0.1296). *)

val pr_a_n2_tso_bounds : Q.t * Q.t
(** (58/441, 58/441 + 1/189): the paper's strict bracket
    0.1315 < Pr[A] < 0.1369. *)

val pr_a_n2_tso_series : unit -> float
(** Exact-series value (~ 0.1343), inside the bracket. *)

val pr_a_n2 : Memrel_settling.Analytic.model_window -> float
(** [(2/3) E[2^-Gamma]] for any window-law variant. *)

(** {1 General n (independent windows)} *)

val pr_a_sc : n:int -> Q.t
(** Exact: [c(n) 2^-C(n+1,2) n! 2^-2 C(n,2)]. *)

val pr_a_wo : n:int -> Q.t
(** Exact (WO windows are i.i.d. across threads). *)

val pr_a_tso_bounds : n:int -> Q.t * Q.t
(** Theorem 4.1's window bounds pushed through the independence
    approximation. The lower entry is a true lower bound on the
    independence-approximated value; the cross-thread correlation (positive
    association of window sizes) additionally pushes the true Pr[A] up, so
    treat these as brackets of the approximation, not of truth — see
    EXPERIMENTS.md E9 for the measured comparison. *)

val pr_a_tso_independent_series : n:int -> float
(** Exact-series marginal window law under the independence approximation. *)

val pr_a : Memrel_settling.Analytic.model_window -> n:int -> float
(** Generic float path: Theorem 6.1 with independent identical windows. *)

val pr_a_joint_exact :
  ?p:float -> ?m:int -> Memrel_memmodel.Model.t -> n:int -> float
(** [pr_a_joint_exact model ~n] is Theorem 6.1 evaluated with the TRUE
    joint window law — the cross-thread correlation induced by the shared
    initial program is handled exactly by {!Memrel_settling.Joint_dp}'s
    coupled chains ([m] defaults to 64, far into the paper's m -> infinity
    regime). For SC/WO this coincides with the exact independent values;
    for TSO/PSO it is the number the paper could only bound, and
    {!Joint.semi_analytic} can only estimate. Requires
    [2 <= n <= Joint_dp.max_replicas + 1]. *)
