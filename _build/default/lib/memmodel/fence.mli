(** Fence operations for the Section 7 extension.

    The paper conjectures (Section 7) that acquire/release fences — one-way
    barriers that let instructions reorder {e into} but not {e out of} a
    critical section — reduce the manifestation probability without changing
    the paper's conclusions. The settling process only ever moves an
    instruction {e upward} (earlier in program order), so the one-way
    semantics specialize to:

    - {b Acquire} (top of a critical section): a settling instruction that
      reaches an acquire fence always fails to pass it — nothing escapes
      upward out of the section.
    - {b Release} (bottom of a critical section): a settling instruction may
      pass a release fence (with the model's usual swap probability) — later
      instructions may move up into the section.
    - {b Full}: never passed.

    Fences themselves never settle. *)

type t = Acquire | Release | Full

val equal : t -> t -> bool
val to_string : t -> string
val to_char : t -> char
val pp : Format.formatter -> t -> unit

val blocks_upward_pass : t -> bool
(** Whether a settling instruction is forbidden from swapping above this
    fence: [true] for [Acquire] and [Full], [false] for [Release]. *)
