type kind = LD | ST

let kind_equal a b = match (a, b) with LD, LD | ST, ST -> true | (LD | ST), _ -> false
let kind_to_string = function LD -> "LD" | ST -> "ST"
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type role = Plain | Critical_load | Critical_store

type t = Mem of { kind : kind; role : role } | Fence of Fence.t

let plain kind = Mem { kind; role = Plain }
let critical_load = Mem { kind = LD; role = Critical_load }
let critical_store = Mem { kind = ST; role = Critical_store }
let fence f = Fence f

let kind_of = function Mem { kind; _ } -> Some kind | Fence _ -> None

let is_critical = function
  | Mem { role = Critical_load | Critical_store; _ } -> true
  | Mem { role = Plain; _ } | Fence _ -> false

let is_critical_load = function
  | Mem { role = Critical_load; _ } -> true
  | Mem _ | Fence _ -> false

let is_critical_store = function
  | Mem { role = Critical_store; _ } -> true
  | Mem _ | Fence _ -> false

let is_fence = function Fence _ -> true | Mem _ -> false

let same_location a b =
  match (a, b) with
  | Mem { role = Critical_load; _ }, Mem { role = Critical_store; _ }
  | Mem { role = Critical_store; _ }, Mem { role = Critical_load; _ } -> true
  | (Mem _ | Fence _), _ -> false

let to_char = function
  | Mem { kind = LD; role = Plain } -> 'L'
  | Mem { kind = ST; role = Plain } -> 'S'
  | Mem { role = Critical_load; _ } -> 'l'
  | Mem { role = Critical_store; _ } -> 's'
  | Fence f -> Fence.to_char f

let to_string = function
  | Mem { kind; role = Plain } -> kind_to_string kind
  | Mem { role = Critical_load; _ } -> "LD*"
  | Mem { role = Critical_store; _ } -> "ST*"
  | Fence f -> "FENCE." ^ Fence.to_string f

let pp fmt t = Format.pp_print_string fmt (to_string t)
