(** Memory operations.

    The paper's program model (Section 3.1.1) deals in two instruction
    types, LD and ST, each accessing a distinct location except for the
    critical pair which both access the shared variable [x]. We also carry
    fences for the Section 7 extension; plain analysis paths never generate
    them. *)

type kind = LD | ST

val kind_equal : kind -> kind -> bool
val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type role =
  | Plain  (** one of the [m] prefix instructions, unique location *)
  | Critical_load  (** x_{m+1}: Line 1 of the canonical bug, loads [x] *)
  | Critical_store  (** x_{m+2}: Line 3 of the canonical bug, stores [x] *)

type t =
  | Mem of { kind : kind; role : role }
  | Fence of Fence.t  (** Section 7 extension; never moves, may block swaps *)

val plain : kind -> t
val critical_load : t
val critical_store : t
val fence : Fence.t -> t

val kind_of : t -> kind option
(** [kind_of t] is the memory-operation kind, or [None] for a fence. *)

val is_critical : t -> bool
val is_critical_load : t -> bool
val is_critical_store : t -> bool
val is_fence : t -> bool

val same_location : t -> t -> bool
(** True exactly when both operands are the two critical instructions (the
    model assumes all other locations are distinct — footnote 2). *)

val to_char : t -> char
(** One-character rendering: 'L', 'S', critical as 'l'/'s', fences as
    'A'/'R'/'F'. Used by trace output and tests. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
