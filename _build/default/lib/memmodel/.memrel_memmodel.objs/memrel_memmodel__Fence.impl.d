lib/memmodel/fence.ml: Format
