lib/memmodel/fence.mli: Format
