lib/memmodel/op.ml: Fence Format
