lib/memmodel/op.mli: Fence Format
