lib/memmodel/model.mli: Format Op
