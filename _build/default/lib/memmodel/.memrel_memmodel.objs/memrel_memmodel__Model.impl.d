lib/memmodel/model.ml: Buffer Float Format List Op Printf String
