type t = Acquire | Release | Full

let equal a b =
  match (a, b) with
  | Acquire, Acquire | Release, Release | Full, Full -> true
  | (Acquire | Release | Full), _ -> false

let to_string = function Acquire -> "acquire" | Release -> "release" | Full -> "full"
let to_char = function Acquire -> 'A' | Release -> 'R' | Full -> 'F'
let pp fmt t = Format.pp_print_string fmt (to_string t)
let blocks_upward_pass = function Acquire | Full -> true | Release -> false
