lib/shift/exact.mli: Memrel_prob
