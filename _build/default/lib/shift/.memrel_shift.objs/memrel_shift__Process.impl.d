lib/shift/process.ml: Array Memrel_prob
