lib/shift/exact.ml: Array List Memrel_prob
