lib/shift/asymptotic.mli:
