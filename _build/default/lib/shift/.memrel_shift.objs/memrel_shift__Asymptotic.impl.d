lib/shift/asymptotic.ml: Float Memrel_prob
