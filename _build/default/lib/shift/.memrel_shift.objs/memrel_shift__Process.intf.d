lib/shift/process.mli: Memrel_prob
