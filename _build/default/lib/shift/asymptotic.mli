(** Large-n asymptotics of the disjointness probability (Theorem 6.3).

    Pr[A] decays like 2^(-n^2 (3/2 + o(1))) in every model, so beyond small
    [n] everything is computed as base-2 logarithms. The model-specific
    window transforms are injected by the caller (they live in
    [Memrel_settling]); this module owns the shift-side algebra. *)

val log2_c : int -> float
(** log2 of Corollary 5.2's c(n) (converges to ~1.792 as n grows). *)

val log2_factorial : int -> float

val log2_disjoint_symmetric : log2_expect:(int -> float) -> n:int -> float
(** [log2_disjoint_symmetric ~log2_expect ~n] is
    [log2 c(n) - C(n+1,2) + log2 n! + sum_{i=1}^{n-1} log2_expect i]
    — the Theorem 6.1 formula in log space, where [log2_expect i] is
    log2 E[2^(-i Gamma)] for the model's window-length law (independent
    identically-distributed lengths assumed). *)

val log2_pr_sc : int -> float
(** Exact log2 Pr[A] under Sequential Consistency (Gamma = 2 always):
    [log2 c(n) - C(n+1,2) + log2 n! - 2 C(n,2)]. *)

val log2_pr_floor_any_model : int -> float
(** Theorem 6.3's universal lower bound: Claim B.2 gives Pr[B_0] >= 1/2 in
    every model, hence
    [Pr[A] >= c(n) 2^-C(n+1,2) n! 2^(-2 C(n,2) - (n-1))]. *)

val normalized_exponent : log2_pr:float -> n:int -> float
(** [-log2 Pr / n^2], the quantity Theorem 6.3 sends to 3/2. *)
