let log2f x = Float.log x /. Float.log 2.0

let log2_c n =
  if n < 1 then invalid_arg "Asymptotic.log2_c: n >= 1 required";
  let acc = ref (log2f 2.0) in
  for i = 2 to n do
    acc := !acc -. log2f (1.0 -. Float.pow 2.0 (float_of_int (-i)))
  done;
  !acc

let log2_factorial = Memrel_prob.Combinatorics.log2_factorial

let binom2 n = n * (n + 1) / 2

let log2_disjoint_symmetric ~log2_expect ~n =
  if n < 1 then invalid_arg "Asymptotic.log2_disjoint_symmetric: n >= 1 required";
  let sum = ref 0.0 in
  for i = 1 to n - 1 do
    sum := !sum +. log2_expect i
  done;
  log2_c n -. float_of_int (binom2 n) +. log2_factorial n +. !sum

let log2_pr_sc n =
  (* Gamma = 2 deterministically: log2 E[2^-i Gamma] = -2i, summing to
     -2 C(n,2) = -n(n-1) *)
  log2_disjoint_symmetric ~log2_expect:(fun i -> float_of_int (-2 * i)) ~n

let log2_pr_floor_any_model n =
  log2_pr_sc n -. float_of_int (n - 1)

let normalized_exponent ~log2_pr ~n =
  if n < 1 then invalid_arg "Asymptotic.normalized_exponent: n >= 1 required";
  -.log2_pr /. float_of_int (n * n)
