lib/trace/render.ml: Array Buffer Float List Memrel_memmodel Memrel_prob Memrel_settling Memrel_shift Printf String
