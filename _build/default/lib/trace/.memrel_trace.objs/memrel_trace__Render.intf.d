lib/trace/render.mli: Memrel_memmodel Memrel_settling
