(** Outward-rounded interval arithmetic.

    Float evaluation of the paper's series carries rounding error that plain
    testing can only wave at. This module computes with closed intervals
    whose endpoints are widened by one ulp after every correctly-rounded
    float operation, so the true real value provably lies inside — which
    upgrades statements like "0.1315 < Pr[A] < 0.1369" from spot checks to
    machine-verified inequalities (see {!Memrel_settling.Verified}).

    Only the operations the series need are provided; all inputs are assumed
    finite, and invalid constructions raise [Invalid_argument]. *)

type t = private { lo : float; hi : float }
(** A closed interval [lo, hi] with lo <= hi. *)

val make : float -> float -> t
(** [make lo hi]; raises if [lo > hi] or either is not finite. *)

val point : float -> t
(** Degenerate interval (the float is taken as exact — use for integers and
    dyadics only). *)

val of_rational : Rational.t -> t
(** Tight outward enclosure of an exact rational. *)

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero] when the divisor straddles zero. *)

val neg : t -> t
val sum : t list -> t

val pow2i : int -> t
(** [pow2i k] is exactly [2^k] for |k| <= 1022 (floats represent it). *)

val mul_pow2i : t -> int -> t
(** Exact scaling by a power of two (no widening needed). *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val width : t -> float

val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b]: is [a] contained in [b]? *)

val strictly_within : t -> lo:float -> hi:float -> bool
(** [strictly_within t ~lo ~hi]: does the whole interval lie strictly
    between the bounds? The verified-inequality primitive. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
