type t = float (* base-2 logarithm; neg_infinity encodes zero *)

let zero = Float.neg_infinity
let one = 0.0

let log2f x = Float.log x /. Float.log 2.0

let of_float f =
  if f < 0.0 then invalid_arg "Logspace.of_float: negative";
  if f = 0.0 then zero else log2f f

let to_float l = if l = Float.neg_infinity then 0.0 else Float.pow 2.0 l
let of_log2 l = l
let log2 l = l

let mul a b = if a = Float.neg_infinity || b = Float.neg_infinity then Float.neg_infinity else a +. b

let div a b =
  if b = Float.neg_infinity then invalid_arg "Logspace.div: division by zero";
  if a = Float.neg_infinity then a else a -. b

let add a b =
  if a = Float.neg_infinity then b
  else if b = Float.neg_infinity then a
  else begin
    let hi = Float.max a b and lo = Float.min a b in
    hi +. log2f (1.0 +. Float.pow 2.0 (lo -. hi))
  end

let sub a b =
  if b = Float.neg_infinity then a
  else if a < b then invalid_arg "Logspace.sub: result would be negative"
  else if a = b then zero
  else a +. log2f (1.0 -. Float.pow 2.0 (b -. a))

let pow a e = if a = Float.neg_infinity then (if e = 0.0 then one else zero) else a *. e
let pow2 e = e

let log2_bigint b =
  (* bit length plus the fractional log of the top 52 bits *)
  let bits = Bigint.num_bits b in
  if bits = 0 then Float.neg_infinity
  else if bits <= 52 then log2f (Bigint.to_float b)
  else begin
    let top = Bigint.shift_right (Bigint.abs b) (bits - 52) in
    float_of_int (bits - 52) +. log2f (Bigint.to_float top)
  end

let of_rational r =
  match Rational.sign r with
  | 0 -> zero
  | s when s < 0 -> invalid_arg "Logspace.of_rational: negative"
  | _ -> log2_bigint (Rational.num r) -. log2_bigint (Rational.den r)

let compare = Float.compare
let sum l = List.fold_left add zero l
let pp fmt l = Format.fprintf fmt "2^%.4f" l
