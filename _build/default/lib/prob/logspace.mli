(** Probabilities carried as base-2 logarithms.

    Theorem 6.3 says Pr[A] = 2^(-n^2 (3/2 + o(1))): at n = 30 that is
    2^-1350, far below float underflow. The scaling curves therefore compute
    in log2-space. The paper's exponents are naturally base 2, so log2 keeps
    every displayed number legible. *)

type t
(** A nonnegative extended-real probability-like quantity, stored as its
    base-2 logarithm ([zero] is -infinity). *)

val zero : t
val one : t

val of_float : float -> t
(** Requires a nonnegative argument. *)

val to_float : t -> float
(** Underflows to [0.] gracefully for very small values. *)

val of_log2 : float -> t
(** [of_log2 l] is the value [2^l]. *)

val log2 : t -> float
(** [log2 t] retrieves the stored exponent ([neg_infinity] for zero). *)

val mul : t -> t -> t
val div : t -> t -> t
val add : t -> t -> t
(** Log-sum-exp in base 2; exact to float precision. *)

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; clamps tiny negative residue to zero. *)

val pow : t -> float -> t
val pow2 : float -> t
(** [pow2 e] is [2^e]. *)

val of_rational : Rational.t -> t
(** Requires a nonnegative rational; exact up to float rounding of the two
    bit-lengths, so it works for rationals whose float value underflows. *)

val compare : t -> t -> int
val sum : t list -> t
val pp : Format.formatter -> t -> unit
(** Prints as ["2^e"]. *)
