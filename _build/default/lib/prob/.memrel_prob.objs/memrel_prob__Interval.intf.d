lib/prob/interval.mli: Format Rational
