lib/prob/logspace.mli: Format Rational
