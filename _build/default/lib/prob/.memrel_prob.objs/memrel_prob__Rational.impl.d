lib/prob/rational.ml: Bigint Float Format Int64 List String
