lib/prob/bigint.ml: Array Buffer Format List Printf Stdlib String
