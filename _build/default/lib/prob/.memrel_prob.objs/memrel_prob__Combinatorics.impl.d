lib/prob/combinatorics.ml: Array Bigint Float Hashtbl List
