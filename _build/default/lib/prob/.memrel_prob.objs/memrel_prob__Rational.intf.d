lib/prob/rational.mli: Bigint Format
