lib/prob/stats.ml: Array Float Hashtbl Int List Map Option
