lib/prob/bigint.mli: Format
