lib/prob/series.ml: Float List
