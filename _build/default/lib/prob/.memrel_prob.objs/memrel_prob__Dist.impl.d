lib/prob/dist.ml: Array Float Hashtbl List Rational Rng
