lib/prob/rng.mli:
