lib/prob/logspace.ml: Bigint Float Format List Rational
