lib/prob/series.mli:
