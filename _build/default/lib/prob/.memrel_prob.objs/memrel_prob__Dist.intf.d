lib/prob/dist.mli: Rational Rng
