lib/prob/stats.mli: Hashtbl
