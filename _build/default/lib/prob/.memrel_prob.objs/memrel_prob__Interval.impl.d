lib/prob/interval.ml: Float Format List Printf Rational
