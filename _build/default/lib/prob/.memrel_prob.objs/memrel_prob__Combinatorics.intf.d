lib/prob/combinatorics.mli: Bigint
