(** Evaluation of the paper's truncated infinite sums.

    Sections 4–6 are full of sums over [q], [mu], [gamma] running to
    infinity whose terms decay geometrically. This module evaluates them in
    float with compensated (Kahan) summation and an explicit stopping rule,
    and reports how much probability mass the truncation can have dropped. *)

type result = {
  value : float;  (** the truncated sum *)
  terms : int;  (** number of terms actually evaluated *)
  last_term : float;  (** magnitude of the final included term *)
}

val sum_to_convergence : ?eps:float -> ?max_terms:int -> (int -> float) -> result
(** [sum_to_convergence f] computes [sum_{k>=0} f k], stopping once
    [consecutive] terms fall below [eps] in magnitude (default
    [eps = 1e-16], [max_terms = 100_000]). Terms are assumed to decay
    (geometric-like tails), which holds for every series in the paper. *)

val sum_range : (int -> float) -> int -> int -> float
(** [sum_range f lo hi] is the compensated sum of [f lo .. f hi]. *)

val kahan_sum : float list -> float
(** Compensated sum of a list. *)

val geometric_tail : ratio:float -> first_dropped:float -> float
(** [geometric_tail ~ratio ~first_dropped] bounds
    [sum_{k>=0} first_dropped * ratio^k], the mass a truncation can have
    discarded when terms decay at least as fast as [ratio < 1]. *)
