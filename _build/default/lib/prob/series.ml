type result = { value : float; terms : int; last_term : float }

let sum_to_convergence ?(eps = 1e-16) ?(max_terms = 100_000) f =
  let sum = ref 0.0 and comp = ref 0.0 in
  let add x =
    let y = x -. !comp in
    let t = !sum +. y in
    comp := (t -. !sum) -. y;
    sum := t
  in
  let rec go k below =
    if k >= max_terms then { value = !sum; terms = k; last_term = Float.abs (f (k - 1)) }
    else begin
      let t = f k in
      add t;
      (* require a few consecutive sub-eps terms so that a single zero term
         (e.g. a parity gap in a series) does not truncate prematurely *)
      let below = if Float.abs t < eps then below + 1 else 0 in
      if below >= 4 then { value = !sum; terms = k + 1; last_term = Float.abs t }
      else go (k + 1) below
    end
  in
  go 0 0

let sum_range f lo hi =
  let sum = ref 0.0 and comp = ref 0.0 in
  for k = lo to hi do
    let y = f k -. !comp in
    let t = !sum +. y in
    comp := (t -. !sum) -. y;
    sum := t
  done;
  !sum

let kahan_sum l =
  let sum = ref 0.0 and comp = ref 0.0 in
  List.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := (t -. !sum) -. y;
      sum := t)
    l;
  !sum

let geometric_tail ~ratio ~first_dropped =
  if ratio >= 1.0 || ratio < 0.0 then invalid_arg "Series.geometric_tail: ratio must be in [0,1)";
  Float.abs first_dropped /. (1.0 -. ratio)
