type t = { lo : float; hi : float }

let check_finite v = if not (Float.is_finite v) then invalid_arg "Interval: not finite"

let make lo hi =
  check_finite lo;
  check_finite hi;
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point v = make v v

let zero = point 0.0
let one = point 1.0

(* widen one ulp in each direction: sound because every float op below is
   correctly rounded, so the true result is within one ulp of the computed
   one *)
let down v = if v = 0.0 then 0.0 else Float.pred v
let up v = if v = 0.0 then 0.0 else Float.succ v

(* NB: down/up keep exact zeros exact; fine for our nonnegative series *)

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let products = [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ] in
  {
    lo = down (List.fold_left Float.min Float.infinity products);
    hi = up (List.fold_left Float.max Float.neg_infinity products);
  }

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then raise Division_by_zero;
  let quotients = [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ] in
  {
    lo = down (List.fold_left Float.min Float.infinity quotients);
    hi = up (List.fold_left Float.max Float.neg_infinity quotients);
  }

let sum l = List.fold_left add zero l

let pow2i k =
  if abs k > 1022 then invalid_arg "Interval.pow2i: exponent out of range";
  point (Float.pow 2.0 (float_of_int k))

let mul_pow2i a k =
  let f = Float.pow 2.0 (float_of_int k) in
  (* scaling by a power of two is exact in binary floats (barring overflow
     and subnormal underflow, which our probabilities never approach) *)
  { lo = a.lo *. f; hi = a.hi *. f }

let of_rational q =
  let f = Rational.to_float q in
  (* to_float is near-correctly-rounded; widen two ulps to be safe, then
     verify the rational really is inside using exact comparisons *)
  let lo = ref (down (down f)) and hi = ref (up (up f)) in
  let leq_q x = Rational.compare (Rational.of_float_dyadic x) q <= 0 in
  let geq_q x = Rational.compare (Rational.of_float_dyadic x) q >= 0 in
  while not (leq_q !lo) do
    lo := down !lo
  done;
  while not (geq_q !hi) do
    hi := up !hi
  done;
  { lo = !lo; hi = !hi }

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let width a = a.hi -. a.lo
let contains a v = a.lo <= v && v <= a.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let strictly_within a ~lo ~hi = lo < a.lo && a.hi < hi

let to_string a = Printf.sprintf "[%.17g, %.17g]" a.lo a.hi
let pp fmt a = Format.pp_print_string fmt (to_string a)
