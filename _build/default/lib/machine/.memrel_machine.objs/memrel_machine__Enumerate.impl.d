lib/machine/enumerate.ml: Hashtbl List Option Semantics State
