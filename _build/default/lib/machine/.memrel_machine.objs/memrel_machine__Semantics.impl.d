lib/machine/semantics.ml: Array Instr List Memrel_memmodel Option Printf State
