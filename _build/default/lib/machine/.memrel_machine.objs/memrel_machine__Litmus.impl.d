lib/machine/litmus.ml: Array Enumerate Instr List Memrel_memmodel Printf Semantics State String
