lib/machine/exec.ml: Hashtbl List Memrel_prob Option Semantics State
