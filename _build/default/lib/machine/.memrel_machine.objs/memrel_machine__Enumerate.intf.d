lib/machine/enumerate.mli: Semantics State
