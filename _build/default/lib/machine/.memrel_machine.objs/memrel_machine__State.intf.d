lib/machine/state.mli: Format Instr Map
