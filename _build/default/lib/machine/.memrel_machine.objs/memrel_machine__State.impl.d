lib/machine/state.ml: Array Buffer Format Instr Int List Map Option Printf
