lib/machine/semantics.mli: Instr Memrel_memmodel State
