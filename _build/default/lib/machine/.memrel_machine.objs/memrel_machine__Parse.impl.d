lib/machine/parse.ml: Array Instr List Litmus Memrel_memmodel Printf State String
