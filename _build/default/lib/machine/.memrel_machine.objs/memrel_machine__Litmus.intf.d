lib/machine/litmus.mli: Enumerate Instr Memrel_memmodel State
