lib/machine/instr.ml: Format Memrel_memmodel Printf
