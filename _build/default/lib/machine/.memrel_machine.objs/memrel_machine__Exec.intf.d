lib/machine/exec.mli: Memrel_prob Semantics State
