lib/machine/parse.mli: Instr Litmus
