lib/machine/instr.mli: Format Memrel_memmodel
