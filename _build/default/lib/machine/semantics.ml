module Fence = Memrel_memmodel.Fence
module Model = Memrel_memmodel.Model
module IntMap = State.IntMap

type discipline = Sc | Tso | Pso | Wo of { window : int }

let of_model ?(window = 8) family =
  match family with
  | Model.Sequential_consistency -> Sc
  | Model.Total_store_order -> Tso
  | Model.Partial_store_order -> Pso
  | Model.Weak_ordering -> Wo { window }
  | Model.Custom -> invalid_arg "Semantics.of_model: no operational semantics for Custom"

type label = Exec of { thread : int; index : int } | Flush of { thread : int; loc : int }

let label_to_string = function
  | Exec { thread; index } -> Printf.sprintf "T%d.exec[%d]" thread index
  | Flush { thread; loc } -> Printf.sprintf "T%d.flush[%d]" thread loc

let eval th = function Instr.Reg r -> State.reg th r | Instr.Imm i -> i

let apply_binop op a b =
  match op with Instr.Add -> a + b | Instr.Sub -> a - b | Instr.Mul -> a * b

let set_thread st k th = { st with State.threads = Array.mapi (fun i t -> if i = k then th else t) st.State.threads }

let mark th i = { th with State.executed = th.State.executed lor (1 lsl i) }

(* register hazards (RAW, WAR, WAW), same-location with a store, and the
   one-way fence orderings *)
let conflicts prog j i =
  let open Instr in
  let ij = prog.(j) and ii = prog.(i) in
  match (ij, ii) with
  | Fence Fence.Full, _ | _, Fence Fence.Full -> true
  | Fence Fence.Acquire, _ -> true (* acquire blocks everything later *)
  | _, Fence Fence.Acquire -> is_load ij (* acquire waits for earlier loads *)
  | Fence Fence.Release, _ -> is_store ii (* release blocks later stores *)
  | _, Fence Fence.Release -> true (* release waits for everything earlier *)
  | _ ->
    let reg_hazard =
      let reads_j = reads_regs ij and reads_i = reads_regs ii in
      let raw = match writes_reg ij with Some r -> List.mem r reads_i | None -> false in
      let war = match writes_reg ii with Some r -> List.mem r reads_j | None -> false in
      let waw =
        match (writes_reg ij, writes_reg ii) with Some a, Some b -> a = b | _ -> false
      in
      raw || war || waw
    in
    let mem_hazard =
      (* same-location accesses never reorder — including load/load, which
         read-read coherence requires (and footnote 2 of the paper assumes) *)
      match (loc_accessed ij, loc_accessed ii) with
      | Some a, Some b -> a = b
      | _ -> false
    in
    reg_hazard || mem_hazard

(* execute instruction [i] of thread [k] under in-order buffered semantics;
   [buffered] selects TSO (fifo) or PSO (per-location) buffering. Returns
   None when the instruction is not currently executable (fence awaiting an
   empty buffer). *)
let exec_buffered ~pso st k i =
  let th = st.State.threads.(k) in
  let open Instr in
  match th.State.prog.(i) with
  | Binop { dst; op; a; b } ->
    let v = apply_binop op (eval th a) (eval th b) in
    Some (set_thread st k (mark { th with State.regs = IntMap.add dst v th.State.regs } i))
  | Load { reg; loc } ->
    let buffered =
      if pso then State.buffered_read_perloc th loc else State.buffered_read_fifo th loc
    in
    let v = match buffered with Some v -> v | None -> State.mem_read st loc in
    Some (set_thread st k (mark { th with State.regs = IntMap.add reg v th.State.regs } i))
  | Store { loc; src } ->
    let v = eval th src in
    let th =
      if pso then begin
        let q = Option.value ~default:[] (IntMap.find_opt loc th.State.perloc) in
        { th with State.perloc = IntMap.add loc (q @ [ v ]) th.State.perloc }
      end
      else { th with State.fifo = th.State.fifo @ [ (loc, v) ] }
    in
    Some (set_thread st k (mark th i))
  | Rmw { reg; loc; op; operand } ->
    (* locked instruction: only executable on an empty buffer, then an
       atomic read-modify-write straight against memory *)
    let empty =
      if pso then IntMap.for_all (fun _ l -> l = []) th.State.perloc else th.State.fifo = []
    in
    if empty then begin
      let old_v = State.mem_read st loc in
      let new_v = apply_binop op old_v (eval th operand) in
      let st = { st with State.mem = IntMap.add loc new_v st.State.mem } in
      let th = st.State.threads.(k) in
      Some (set_thread st k (mark { th with State.regs = IntMap.add reg old_v th.State.regs } i))
    end
    else None
  | Fence (Fence.Full | Fence.Release) ->
    let empty =
      if pso then IntMap.for_all (fun _ l -> l = []) th.State.perloc else th.State.fifo = []
    in
    if empty then Some (set_thread st k (mark th i)) else None
  | Fence Fence.Acquire -> Some (set_thread st k (mark th i))

let exec_direct st k i =
  let th = st.State.threads.(k) in
  let open Instr in
  match th.State.prog.(i) with
  | Binop { dst; op; a; b } ->
    let v = apply_binop op (eval th a) (eval th b) in
    set_thread st k (mark { th with State.regs = IntMap.add dst v th.State.regs } i)
  | Load { reg; loc } ->
    let v = State.mem_read st loc in
    set_thread st k (mark { th with State.regs = IntMap.add reg v th.State.regs } i)
  | Store { loc; src } ->
    let v = eval th src in
    let st = { st with State.mem = IntMap.add loc v st.State.mem } in
    set_thread st k (mark st.State.threads.(k) i)
  | Rmw { reg; loc; op; operand } ->
    let old_v = State.mem_read st loc in
    let new_v = apply_binop op old_v (eval th operand) in
    let st = { st with State.mem = IntMap.add loc new_v st.State.mem } in
    let th = st.State.threads.(k) in
    set_thread st k (mark { th with State.regs = IntMap.add reg old_v th.State.regs } i)
  | Fence _ -> set_thread st k (mark th i)

let flush_transitions ~pso st k =
  let th = st.State.threads.(k) in
  if pso then
    IntMap.fold
      (fun loc q acc ->
        match q with
        | [] -> acc
        | v :: rest ->
          let th' = { th with State.perloc = IntMap.add loc rest th.State.perloc } in
          let st' = { (set_thread st k th') with State.mem = IntMap.add loc v st.State.mem } in
          (Flush { thread = k; loc }, st') :: acc)
      th.State.perloc []
  else begin
    match th.State.fifo with
    | [] -> []
    | (loc, v) :: rest ->
      let th' = { th with State.fifo = rest } in
      let st' = { (set_thread st k th') with State.mem = IntMap.add loc v st.State.mem } in
      [ (Flush { thread = k; loc }, st') ]
  end

let thread_transitions discipline st k =
  let th = st.State.threads.(k) in
  let n = Array.length th.State.prog in
  match discipline with
  | Sc ->
    let pc = State.next_unexecuted th in
    if pc >= n then [] else [ (Exec { thread = k; index = pc }, exec_direct st k pc) ]
  | Tso | Pso ->
    let pso = discipline = Pso in
    let execs =
      let pc = State.next_unexecuted th in
      if pc >= n then []
      else begin
        match exec_buffered ~pso st k pc with
        | Some st' -> [ (Exec { thread = k; index = pc }, st') ]
        | None -> []
      end
    in
    execs @ flush_transitions ~pso st k
  | Wo { window } ->
    let oldest = State.next_unexecuted th in
    if oldest >= n then []
    else begin
      let limit = min (n - 1) (oldest + window - 1) in
      let out = ref [] in
      for i = limit downto oldest do
        if not (State.is_executed th i) then begin
          let ready = ref true in
          for j = 0 to i - 1 do
            if (not (State.is_executed th j)) && conflicts th.State.prog j i then ready := false
          done;
          if !ready then out := (Exec { thread = k; index = i }, exec_direct st k i) :: !out
        end
      done;
      !out
    end

let transitions discipline st =
  let acc = ref [] in
  for k = Array.length st.State.threads - 1 downto 0 do
    acc := thread_transitions discipline st k @ !acc
  done;
  !acc
