(** Exhaustive state-space exploration (stateless model checking).

    Depth-first search over the transition relation with state
    deduplication. For litmus-sized programs the reachable space is tiny,
    so every reachable final state — hence the complete set of observable
    outcomes under a memory model — is computed exactly. This is what turns
    the operational simulator into an oracle for "is this relaxed outcome
    allowed under model M?". *)

type 'a result = {
  outcomes : ('a * int) list;
      (** distinct observations with the number of distinct terminal states
          mapping to each, sorted by observation *)
  states_visited : int;
  terminals : int;
}

val outcomes :
  ?max_states:int ->
  Semantics.discipline ->
  State.t ->
  observe:(State.t -> 'a) ->
  'a result
(** [outcomes d st ~observe] explores exhaustively. Raises [Failure] when
    more than [max_states] (default 2_000_000) distinct states are reached. *)

val reachable_terminal_count : ?max_states:int -> Semantics.discipline -> State.t -> int
(** Number of distinct terminal states. *)
