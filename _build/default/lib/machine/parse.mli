(** A small text format for litmus tests.

    Lets users define machine programs without writing OCaml — the CLI's
    [litmus --file] and the test corpus round-trip through it. The grammar
    (one statement per line, [#] comments):

    {v
    name: sb
    description: store buffering
    init: x=0 y=0
    thread: x = 1 ; r0 = y
    thread: y = 1 ; r0 = x
    relaxed: 0:r0=0 1:r0=0
    v}

    Statements:
    - [name:], [description:] — metadata (name required);
    - [init:] — optional initial memory, space-separated [loc=int];
    - [thread:] — one per thread, instructions separated by [;]:
      {ul
      {- [LOC = INT] / [LOC = rN] — store immediate / register;}
      {- [rN = LOC] — load;}
      {- [rN = OP + OP], [-], [*] — register arithmetic, operands are
         registers or integers;}
      {- [rN = rmw LOC OP OPERAND] — atomic fetch-and-op: [rN] receives the
         old value of [LOC];}
      {- [fence.full], [fence.acquire], [fence.release].}}
    - [relaxed:] — the outcome asked about: space-separated observables,
      [T:rN=int] for registers, [LOC=int] for final memory.

    Locations are lower-case identifiers, bound to consecutive integers in
    order of first appearance (so [x] is 0 if it appears first). The
    [observe] function of the resulting test reads every observable named in
    [relaxed:]. Per-model expectations are not part of the format — parsed
    tests get [allowed_under = fun _ -> true] placeholders; reachability
    questions go through {!Litmus.run_exhaustive}. *)

exception Parse_error of { line : int; message : string }
(** Raised with a 1-based line number on malformed input. *)

val parse : string -> Litmus.t
(** [parse text] parses a complete test.
    Raises {!Parse_error}. *)

val parse_instruction : locations:(string * int) list -> string -> Instr.t
(** [parse_instruction ~locations s] parses a single instruction given a
    fixed location-name binding (exposed for tests and interactive use).
    Raises {!Parse_error} with line 0. *)

val parse_with_locations : string -> Litmus.t * (string * int) list
(** Like {!parse} but also returns the [(name, location)] binding assigned
    while parsing. *)
