type operand = Reg of int | Imm of int

type binop = Add | Sub | Mul

type t =
  | Load of { reg : int; loc : int }
  | Store of { loc : int; src : operand }
  | Binop of { dst : int; op : binop; a : operand; b : operand }
  | Rmw of { reg : int; loc : int; op : binop; operand : operand }
  | Fence of Memrel_memmodel.Fence.t

let load ~reg ~loc = Load { reg; loc }
let store ~loc ~src = Store { loc; src }
let binop ~dst op a b = Binop { dst; op; a; b }
let rmw ~reg ~loc op operand = Rmw { reg; loc; op; operand }
let fence f = Fence f

let operand_regs = function Reg r -> [ r ] | Imm _ -> []

let reads_regs = function
  | Load _ -> []
  | Store { src; _ } -> operand_regs src
  | Binop { a; b; _ } -> operand_regs a @ operand_regs b
  | Rmw { operand; _ } -> operand_regs operand
  | Fence _ -> []

let writes_reg = function
  | Load { reg; _ } -> Some reg
  | Binop { dst; _ } -> Some dst
  | Rmw { reg; _ } -> Some reg
  | Store _ | Fence _ -> None

let loc_accessed = function
  | Load { loc; _ } | Store { loc; _ } | Rmw { loc; _ } -> Some loc
  | Binop _ | Fence _ -> None

let is_load = function Load _ | Rmw _ -> true | Store _ | Binop _ | Fence _ -> false
let is_store = function Store _ | Rmw _ -> true | Load _ | Binop _ | Fence _ -> false
let is_fence = function Fence _ -> true | Load _ | Store _ | Binop _ | Rmw _ -> false

let operand_to_string = function Reg r -> Printf.sprintf "r%d" r | Imm i -> string_of_int i

let binop_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*"

let to_string = function
  | Load { reg; loc } -> Printf.sprintf "r%d := mem[%d]" reg loc
  | Store { loc; src } -> Printf.sprintf "mem[%d] := %s" loc (operand_to_string src)
  | Binop { dst; op; a; b } ->
    Printf.sprintf "r%d := %s %s %s" dst (operand_to_string a) (binop_to_string op)
      (operand_to_string b)
  | Rmw { reg; loc; op; operand } ->
    Printf.sprintf "r%d := rmw mem[%d] %s %s" reg loc (binop_to_string op)
      (operand_to_string operand)
  | Fence f -> Printf.sprintf "fence.%s" (Memrel_memmodel.Fence.to_string f)

let pp fmt t = Format.pp_print_string fmt (to_string t)
