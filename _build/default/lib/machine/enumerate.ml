type 'a result = {
  outcomes : ('a * int) list;
  states_visited : int;
  terminals : int;
}

let outcomes ?(max_states = 2_000_000) discipline st ~observe =
  let visited = Hashtbl.create 4096 in
  let outcome_counts = Hashtbl.create 64 in
  let terminals = ref 0 in
  let rec explore st =
    let k = State.key st in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      if Hashtbl.length visited > max_states then failwith "Enumerate: state limit exceeded";
      match Semantics.transitions discipline st with
      | [] ->
        incr terminals;
        let o = observe st in
        Hashtbl.replace outcome_counts o
          (1 + Option.value ~default:0 (Hashtbl.find_opt outcome_counts o))
      | ts -> List.iter (fun (_, st') -> explore st') ts
    end
  in
  explore st;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcome_counts [] in
  {
    outcomes = List.sort compare l;
    states_visited = Hashtbl.length visited;
    terminals = !terminals;
  }

let reachable_terminal_count ?max_states discipline st =
  (outcomes ?max_states discipline st ~observe:(fun s -> State.key s)).terminals
