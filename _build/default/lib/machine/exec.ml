module Rng = Memrel_prob.Rng

type run = {
  final : State.t;
  steps : int;
  trace : Semantics.label list;
}

let run ?(max_steps = 100_000) discipline st rng =
  let rec go st steps trace =
    if steps > max_steps then failwith "Exec.run: step limit exceeded (non-terminating semantics?)";
    match Semantics.transitions discipline st with
    | [] -> { final = st; steps; trace = List.rev trace }
    | ts ->
      let label, st' = List.nth ts (Rng.int rng (List.length ts)) in
      go st' (steps + 1) (label :: trace)
  in
  go st 0 []

let estimate_outcome ?(max_steps = 100_000) ~trials discipline st ~observe rng =
  if trials <= 0 then invalid_arg "Exec.estimate_outcome: trials must be positive";
  let counts = Hashtbl.create 16 in
  for _ = 1 to trials do
    let r = run ~max_steps discipline st rng in
    let o = observe r.final in
    Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
  done;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] in
  List.sort (fun (_, a) (_, b) -> compare b a) l
