(** Random execution of the operational machine.

    Drives the transition relation with a uniformly random scheduler until
    a terminal state. This is the machine-level analogue of the paper's
    random interleaving: repeated runs of the canonical increment bug give
    the empirical manifestation rate per memory model (experiment E13). *)

type run = {
  final : State.t;
  steps : int;
  trace : Semantics.label list;  (** chronological *)
}

val run : ?max_steps:int -> Semantics.discipline -> State.t -> Memrel_prob.Rng.t -> run
(** [run d st rng] schedules uniformly at random until no transition is
    enabled. Raises [Failure] after [max_steps] (default 100_000) —
    terminal states are always reached for well-formed programs, so hitting
    the cap indicates a semantics bug. *)

val estimate_outcome :
  ?max_steps:int ->
  trials:int ->
  Semantics.discipline ->
  State.t ->
  observe:(State.t -> 'a) ->
  Memrel_prob.Rng.t ->
  ('a * int) list
(** [estimate_outcome ~trials d st ~observe rng] repeats [run] and counts
    distinct observations (ordered by decreasing frequency). *)
