(** Thread instructions for the operational multiprocessor simulator.

    The abstract model of the paper reduces programs to LD/ST streams; this
    substrate executes real (tiny) programs — loads, stores, register
    arithmetic and fences — under operational semantics for SC, TSO, PSO
    and WO, so the paper's motivating examples (the canonical atomicity
    violation of Section 2.2, classic litmus tests) can be run and
    exhaustively enumerated. Registers and locations are small integers;
    registers are thread-private, locations are shared. *)

type operand =
  | Reg of int  (** current value of a register *)
  | Imm of int  (** immediate constant *)

type binop = Add | Sub | Mul

type t =
  | Load of { reg : int; loc : int }  (** reg := mem[loc] *)
  | Store of { loc : int; src : operand }  (** mem[loc] := src *)
  | Binop of { dst : int; op : binop; a : operand; b : operand }
      (** dst := a op b (register-only; never touches memory) *)
  | Rmw of { reg : int; loc : int; op : binop; operand : operand }
      (** atomically: reg := mem[loc]; mem[loc] := reg op operand — the
          fetch-and-op primitive that FIXES the canonical atomicity
          violation. Under TSO/PSO it drains the store buffer before
          executing (x86 locked-instruction semantics); it is both a load
          and a store for ordering purposes. *)
  | Fence of Memrel_memmodel.Fence.t

val load : reg:int -> loc:int -> t
val store : loc:int -> src:operand -> t
val binop : dst:int -> binop -> operand -> operand -> t
val rmw : reg:int -> loc:int -> binop -> operand -> t
val fence : Memrel_memmodel.Fence.t -> t

val reads_regs : t -> int list
(** Registers whose value the instruction consumes. *)

val writes_reg : t -> int option
val loc_accessed : t -> int option
val is_load : t -> bool
(** True for loads and RMWs. *)

val is_store : t -> bool
(** True for stores and RMWs. *)

val is_fence : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
