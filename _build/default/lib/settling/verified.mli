(** Rigorous enclosures of the TSO series (verified numerics).

    The float evaluations in {!Analytic} are accurate but carry unquantified
    rounding and truncation error. This module recomputes the same series
    with exact rational partial sums and {e provable} truncation bounds —
    every dropped tail is bounded by leftover probability mass, which is
    itself an exact rational because the underlying laws (the
    negative-binomial Psi_mu, the L_mu partition, the window law B) each
    sum to exactly 1. The result is a mathematically sound interval around
    the true series value, with no floating point anywhere on the sound
    path.

    What this verifies: the m -> infinity value of the paper's Step 1–4
    decomposition (whose agreement with the assumption-free finite-m DP is
    established separately, to 8+ digits, in the test suite). In
    particular, the Theorem 6.2 TSO claim 58/441 < Pr[A] < 58/441 + 1/189
    becomes a machine-checked strict inclusion. *)

module Q = Memrel_prob.Rational

type enclosure = { lo : Q.t; hi : Q.t }
(** Exact rational bounds with [lo <= hi]; the true value lies inside. *)

val width : enclosure -> Q.t

val to_interval : enclosure -> Memrel_prob.Interval.t
(** Outward float view. *)

val l_mu : ?q_max:int -> int -> enclosure
(** Enclosure of Pr[L_mu] (exact 1/3 at mu = 0). [q_max] (default 60)
    truncates the Psi series; the dropped mass is added to [hi]. *)

val b_tso : ?q_max:int -> ?mu_max:int -> int -> enclosure
(** Enclosure of the TSO Pr[B_gamma]. *)

val pr_a_tso_n2 : ?q_max:int -> ?mu_max:int -> ?gamma_max:int -> unit -> enclosure
(** Enclosure of the two-thread non-manifestation probability under TSO.
    With the defaults the width is far below the gap to the paper's bounds,
    so [strict inclusion in (58/441, 58/441 + 1/189)] is decidable — and
    tested. *)

val verify_theorem_6_2_tso : unit -> bool
(** The headline check: does the enclosure lie strictly inside the paper's
    open interval (58/441, 58/441 + 1/189)? (Exact rational comparisons.) *)
