module Stats = Memrel_prob.Stats

type estimate = {
  gamma_pmf : (int * float) list;
  trials : int;
  mean_gamma : float;
  histogram : Stats.histogram;
}

let default_m = 64

let sample_gamma_program model rng prog =
  let pi = Settle.run model rng prog in
  Window.gamma prog pi

let sample_gamma ?(p = 0.5) ?(m = default_m) model rng =
  let prog = Program.generate ~p rng ~m in
  sample_gamma_program model rng prog

let estimate ?(p = 0.5) ?(m = default_m) ~trials model rng =
  if trials <= 0 then invalid_arg "Mc.estimate: trials must be positive";
  let counts = Hashtbl.create 32 in
  let sum = ref 0 in
  for _ = 1 to trials do
    let g = sample_gamma ~p ~m model rng in
    sum := !sum + g;
    Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g))
  done;
  let histogram = Stats.histogram_of_counts counts in
  {
    gamma_pmf = Stats.empirical_pmf histogram;
    trials;
    mean_gamma = float_of_int !sum /. float_of_int trials;
    histogram;
  }

let probability_b ?(p = 0.5) ?(m = default_m) ~trials ~gamma model rng =
  if trials <= 0 then invalid_arg "Mc.probability_b: trials must be positive";
  let successes = ref 0 in
  for _ = 1 to trials do
    if sample_gamma ~p ~m model rng = gamma then incr successes
  done;
  ( Stats.binomial_point ~successes:!successes ~trials,
    Stats.wilson_ci ~successes:!successes ~trials ~z:1.96 )
