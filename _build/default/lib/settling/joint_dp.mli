(** Exact joint window transforms for correlated threads.

    Theorem 6.1 reduces Pr[A] to E[prod_{i=1}^{n-1} 2^(-i Gamma_i)] under
    the TRUE joint law of the window lengths: the n threads share one random
    initial program and settle independently given it, which correlates the
    Gamma_i for store-order models. The paper bounds this for TSO and only
    at n = 2 (where a single factor makes the marginal sufficient); this
    module computes it exactly for every n up to a tensor-size limit.

    Key observation: under TSO/PSO dynamics the whole settling history of a
    thread matters for its window only through one integer — the number B of
    STs sitting contiguously at the program's bottom below the lowest
    settled LD. B evolves as a Markov chain driven by the program draw
    (a fresh ST increments B; a fresh LD climbs k STs with probability
    s^k (1-s), truncating B to B - k, or clears all B of them with
    probability s^B). Running n - 1 replica chains coupled through the
    shared program draws gives the exact joint law of (B_1, .., B_{n-1}),
    hence of the windows, in O(m K Bmax^K) — no 2^m enumeration.

    SC and WO need no machinery: SC windows are deterministic, and WO
    windows are independent of the program content entirely, so the joint
    factorizes; both are dispatched to closed forms. *)

val max_replicas : int
(** Largest supported [n - 1] (4, i.e. n = 5: the tensor is [Bmax^4]). *)

val expect_product :
  ?p:float -> ?b_max:int -> Memrel_memmodel.Model.t -> m:int -> n:int -> float
(** [expect_product model ~m ~n] is E[prod_{i=1}^{n-1} 2^(-i Gamma_i)]
    under the joint law, for a prefix of length [m] (use [m >= 48] for the
    paper's m -> infinity regime; truncation decays like s^m). [b_max]
    (default [min m 40]) caps the tracked bottom-run length; the clipped
    mass is below s^b_max. Requires [2 <= n <= max_replicas + 1]; [Custom]
    models are rejected. *)

val bottom_run_pmf : ?p:float -> ?b_max:int -> Memrel_memmodel.Model.t -> m:int -> float array
(** The marginal steady-state pmf of B after [m] prefix instructions —
    Pr[L_mu] at finite m, computed without the 2^m state space of
    {!Exact_dp}. Index mu holds Pr[B = mu]. *)
