module Q = Memrel_prob.Rational
module C = Memrel_prob.Combinatorics

type enclosure = { lo : Q.t; hi : Q.t }

let make lo hi =
  if Q.compare lo hi > 0 then invalid_arg "Verified: crossed enclosure";
  { lo; hi }

let width e = Q.sub e.hi e.lo

let to_interval e =
  let module I = Memrel_prob.Interval in
  I.hull (I.of_rational e.lo) (I.of_rational e.hi)

let add a b = make (Q.add a.lo b.lo) (Q.add a.hi b.hi)
let scale q a = make (Q.mul q a.lo) (Q.mul q a.hi)
let point q = make q q

let third = Q.of_ints 1 3
let two_thirds = Q.of_ints 2 3

(* exact H(q, c) = sum over multisets of q parts in {1..c} of prod 2^-part *)
let hom_table : (int * int, Q.t) Hashtbl.t = Hashtbl.create 1024

let rec hom_sym q c =
  if q = 0 then Q.one
  else if c = 0 then Q.zero
  else begin
    match Hashtbl.find_opt hom_table (q, c) with
    | Some v -> v
    | None ->
      let v = Q.add (hom_sym q (c - 1)) (Q.mul (Q.pow2 (-c)) (hom_sym (q - 1) c)) in
      Hashtbl.add hom_table (q, c) v;
      v
  end

let binom_q n k = Q.of_bigint (C.binomial n k)

let psi ~mu ~q = Q.mul (binom_q (mu + q - 1) q) (Q.pow2 (-(mu + q)))

let f_exact ~mu ~q =
  if q = 0 then Q.one else Q.div (hom_sym q mu) (binom_q (mu + q - 1) q)

let l_mu_table : (int * int, enclosure) Hashtbl.t = Hashtbl.create 256

let rec l_mu ?(q_max = 60) mu =
  if mu < 0 then invalid_arg "Verified.l_mu: mu < 0";
  if mu = 0 then point third
  else begin
    match Hashtbl.find_opt l_mu_table (mu, q_max) with
    | Some e -> e
    | None ->
      let e = l_mu_raw ~q_max mu in
      Hashtbl.add l_mu_table (mu, q_max) e;
      e
  end

and l_mu_raw ~q_max mu =
  begin
    (* The partial sum is an exact rational. A dropped term (q > q_max) is
       at most psi(q) * 2^-q: each of the q interspersed LDs has at least
       one ST above it, so Delta >= q and Pr[F | q] = E[2^-Delta] <= 2^-q,
       while the bottom factor is <= 1. Summing psi(q) 2^-q over ALL q has
       the negative-binomial closed form
         sum_q C(mu+q-1, q) 2^-(mu+q) 2^-q = 2^-mu (1 - 1/4)^-mu = (2/3)^mu,
       so the dropped mass is exactly (2/3)^mu minus the tracked partial —
       an exact rational tail bound that stays tiny even when q_max cuts
       into the bulk of Psi for large mu. *)
    let s = ref Q.zero and weighted_mass = ref Q.zero in
    for q = 0 to q_max do
      let p = psi ~mu ~q in
      weighted_mass := Q.add !weighted_mass (Q.mul p (Q.pow2 (-q)));
      let term =
        Q.mul p (Q.mul (f_exact ~mu ~q) (Q.sub Q.one (Q.mul two_thirds (Q.pow2 (-q)))))
      in
      s := Q.add !s term
    done;
    let tail = Q.max Q.zero (Q.sub (Q.pow (Q.of_ints 2 3) mu) !weighted_mass) in
    make !s (Q.add !s tail)
  end

let b_tso ?(q_max = 60) ?(mu_max = 60) gamma =
  if gamma < 0 then invalid_arg "Verified.b_tso: gamma < 0";
  (* Pr[B_gamma] = 2^-gamma Pr[L_gamma]
                 + 2^-(gamma+1) sum_{mu > gamma} Pr[L_mu].
     The mu-tail mass is 1 - sum_{mu <= mu_max} Pr[L_mu] (the L_mu events
     partition), each tail term contributing at most 2^-(gamma+1) times its
     mass. For gamma = 0 the head coefficient is 1 (the critical LD stops
     against a LD with certainty). *)
  let enc = Array.init (mu_max + 1) (fun mu -> l_mu ~q_max mu) in
  let head = scale (Q.pow2 (-gamma)) enc.(gamma) in
  let mid = ref (point Q.zero) in
  for mu = gamma + 1 to mu_max do
    mid := add !mid (scale (Q.pow2 (-(gamma + 1))) enc.(mu))
  done;
  let covered = Array.fold_left (fun acc e -> Q.add acc e.lo) Q.zero enc in
  let tail_mass = Q.max Q.zero (Q.sub Q.one covered) in
  let tail = make Q.zero (Q.mul (Q.pow2 (-(gamma + 1))) tail_mass) in
  add (add head !mid) tail

let pr_a_tso_n2 ?(q_max = 60) ?(mu_max = 60) ?(gamma_max = 60) () =
  (* Pr[A] = (2/3) sum_gamma Pr[B_gamma] 2^-(gamma+2); the gamma-tail mass
     is 1 - sum of the B lower bounds, each tail term weighted by at most
     2^-(gamma_max+3) *)
  let s = ref (point Q.zero) and b_mass_lo = ref Q.zero in
  for gamma = 0 to gamma_max do
    let b = b_tso ~q_max ~mu_max gamma in
    b_mass_lo := Q.add !b_mass_lo b.lo;
    s := add !s (scale (Q.pow2 (-(gamma + 2))) b)
  done;
  let tail_mass = Q.max Q.zero (Q.sub Q.one !b_mass_lo) in
  let tail = make Q.zero (Q.mul (Q.pow2 (-(gamma_max + 3))) tail_mass) in
  scale two_thirds (add !s tail)

let verify_theorem_6_2_tso () =
  let e = pr_a_tso_n2 () in
  let paper_lo = Q.of_ints 58 441 in
  let paper_hi = Q.add paper_lo (Q.of_ints 1 189) in
  Q.compare paper_lo e.lo < 0 && Q.compare e.hi paper_hi < 0
