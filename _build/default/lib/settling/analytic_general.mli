(** Window analysis for general parameters p (store density) and s (swap
    probability) — the generalization footnote 3 of the paper allows and
    Section 7 conjectures changes nothing qualitative.

    The paper fixes p = s = 1/2 "for ease of exposition" and notes that the
    key theorems survive with other constants, with different numerical
    values. This module derives those values:

    - Weak Ordering admits closed forms (the critical pair's motion is a
      pair of independent geometric(1-s) climbs, independent of p):
      Pr[B_0] = 1/(1+s) and Pr[B_gamma] = (1-s)^2 s^gamma / (1-s^2);
    - Claim 4.3 generalizes to the fixed point X = p / (1 - (1-p) s) of the
      recurrence X_i = p + (1-p) s X_(i-1);
    - the TSO series generalizes by replacing binomial(.)·2^-(mu+q) with the
      negative-binomial arrangement law and the homogeneous symmetric sums
      of powers of s.

    Everything here is cross-validated against {!Exact_dp} (which takes
    arbitrary (p, s) natively) in the test suite; at p = s = 1/2 these
    functions reproduce {!Analytic} exactly. *)

val check_params : p:float -> s:float -> unit
(** Raises [Invalid_argument] unless [0 < p < 1] and [0 < s < 1]. (The
    degenerate endpoints collapse the analysis: s = 0 is SC, s = 1 diverges,
    p in {0,1} makes the TSO conditioning vacuous.) *)

(** {1 Weak Ordering} *)

val b_wo : s:float -> int -> float
(** [b_wo ~s gamma] — closed form above; independent of [p]. *)

val b_wo_fenced : s:float -> d:int -> int -> float
(** [b_wo_fenced ~s ~d gamma]: Weak Ordering with a single acquire fence
    exactly [d] instructions above the critical load — the Section 7
    extension in closed form. The critical load's climb is capped at [d]
    (the fence blocks upward passes), the critical store chases as usual:

    - Pr[B_0] = (1-s)(1-s^2d)/(1-s^2) + s^2d,
    - Pr[B_g] = (1-s)^2 s^-g sum_(i=g..d-1) s^2i + (1-s) s^(2d-g)
      for 0 < g <= d, and 0 beyond [d].

    [d = 0] degenerates to SC's point mass; [d -> infinity] recovers
    {!b_wo} (both tested, and the finite-[d] law is validated against
    settling simulation of explicitly fenced programs). *)

(** {1 Claim 4.3, generalized} *)

val st_bottom_limit : p:float -> s:float -> float
(** Steady-state probability that the bottom settled instruction is a ST
    under TSO/PSO dynamics: [p / (1 - (1-p) s)]. *)

(** {1 TSO series, generalized} *)

val psi_pmf : p:float -> mu:int -> q:int -> float
(** [Pr[Psi_mu = q] = C(mu+q-1, q) p^mu (1-p)^q]. *)

val f_mu_given_q : s:float -> mu:int -> q:int -> float
(** E[s^Delta] over uniform arrangements — the probability that all [q]
    interspersed LDs clear the [mu]-ST region. *)

val l_mu : p:float -> s:float -> int -> float
(** Pr[L_mu] by the generalized series ([1 - st_bottom_limit] at mu = 0). *)

val b_tso : p:float -> s:float -> int -> float
(** Pr[B_gamma] under TSO with general parameters. *)

(** {1 Transforms and n = 2 manifestation} *)

val expect_pow2_window : b:(int -> float) -> k:int -> float
(** [expect_pow2_window ~b ~k] is [sum_gamma b gamma * 2^(-k (gamma+2))] for
    any window law [b] — the shift-side transform (the shift process itself
    is not parameterized by p or s). *)

val pr_a_n2 : b:(int -> float) -> float
(** [(2/3) E[2^-Gamma]]: Theorem 6.2's formula for any window law. *)
