(** The settling process (Section 3.1.2 / Appendix A.2).

    Instructions are settled in initial-position order. Round [r] takes the
    instruction initially at position [r] (which, by induction, currently
    sits at position [r]) and repeatedly swaps it with the instruction
    directly above, each swap succeeding with the model's
    rho(earlier-kind, settling-kind); the round ends at the first failed
    swap or at position 0. Two special rules:

    - the critical store never passes the critical load (same location,
      footnote 2);
    - fences never settle, and a settling instruction passes a fence only if
      the fence allows upward passes (see {!Memrel_memmodel.Fence}), with
      the model's nominal [s] as the success probability. *)

type permutation = int array
(** [pi.(i)] is the final position of the instruction initially at [i] —
    the paper's pi. A valid permutation of [0 .. length-1]. *)

val run : Memrel_memmodel.Model.t -> Memrel_prob.Rng.t -> Program.t -> permutation
(** [run model rng prog] executes the full settling process and returns the
    final permutation. *)

val final_order : Program.t -> permutation -> Memrel_memmodel.Op.t array
(** [final_order prog pi] lists the instructions in their settled order. *)

type snapshot = {
  round : int;  (** the initial index just settled (0-based) *)
  start_pos : int;  (** position where the instruction began the round *)
  stop_pos : int;  (** position where it came to rest *)
  order : Memrel_memmodel.Op.t array;  (** full order after the round *)
}

val run_traced :
  Memrel_memmodel.Model.t ->
  Memrel_prob.Rng.t ->
  Program.t ->
  permutation * snapshot list
(** Like {!run} but also records a snapshot after every round — the data
    behind Figure 1. Snapshots are in round order. *)

val run_prefix :
  Memrel_memmodel.Model.t ->
  Memrel_prob.Rng.t ->
  Program.t ->
  rounds:int ->
  Memrel_memmodel.Op.t array
(** [run_prefix model rng prog ~rounds] runs only the first [rounds]
    settling rounds (settling initial indices [1 .. rounds]) and returns the
    resulting instruction order. Used to observe intermediate quantities
    like the paper's S_m — e.g. the L_mu event, which is defined before the
    critical pair settles — without paying for full snapshots. *)

val swap_probability :
  Memrel_memmodel.Model.t ->
  earlier:Memrel_memmodel.Op.t ->
  later:Memrel_memmodel.Op.t ->
  float
(** The effective per-swap success probability including the same-location
    and fence rules; exposed for the exact DP and for tests. *)

val is_valid_permutation : permutation -> bool
(** Whether the array is a permutation of [0 .. n-1]. *)
