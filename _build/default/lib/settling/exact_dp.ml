module Op = Memrel_memmodel.Op
module Model = Memrel_memmodel.Model

let max_m = 18

(* Sequences are bit masks: bit j is the type at position j, position 0 being
   the top of the program; ST = 1, LD = 0. *)

let kind_of_bit b = if b = 1 then Op.ST else Op.LD

let check ?(p = 0.5) m =
  if m < 0 || m > max_m then invalid_arg "Exact_dp: m out of [0, max_m]";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Exact_dp: p out of [0,1]"

(* Distribution over settled prefixes of length [m]. dist.(mask) is the
   probability of that settled type-sequence. *)
let prefix_distribution ~p model m =
  let rho earlier later = Model.swap_probability model ~earlier ~later in
  let dist = ref [| 1.0 |] in
  (* one round: extend every sequence of length [len] with a fresh
     instruction of kind [t] (bit [tb]) settling from the bottom *)
  for len = 0 to m - 1 do
    let cur = !dist in
    let next = Array.make (1 lsl (len + 1)) 0.0 in
    let insert mask k tb =
      let low = mask land ((1 lsl k) - 1) in
      let high = (mask lsr k) lsl (k + 1) in
      low lor (tb lsl k) lor high
    in
    Array.iteri
      (fun mask mass ->
        if mass > 0.0 then
          List.iter
            (fun (tb, tp) ->
              if tp > 0.0 then begin
                let t = kind_of_bit tb in
                let mass = mass *. tp in
                (* walk upward from position len; stop mass at each k *)
                let pass = ref 1.0 in
                for k = len downto 0 do
                  (* stopping at position k: passed everything below k *)
                  let stop_prob =
                    if k = 0 then !pass
                    else begin
                      let above = kind_of_bit ((mask lsr (k - 1)) land 1) in
                      let r = rho above t in
                      let sp = !pass *. (1.0 -. r) in
                      pass := !pass *. r;
                      sp
                    end
                  in
                  if stop_prob > 0.0 then begin
                    let nm = insert mask k tb in
                    next.(nm) <- next.(nm) +. (mass *. stop_prob)
                  end
                done
              end)
            [ (1, p); (0, 1.0 -. p) ])
      cur;
    dist := next
  done;
  !dist

let gamma_pmf ?(p = 0.5) model ~m =
  check ~p m;
  let rho earlier later = Model.swap_probability model ~earlier ~later in
  let prefix = prefix_distribution ~p model m in
  let out = Array.make (m + 1) 0.0 in
  Array.iteri
    (fun mask mass ->
      if mass > 0.0 then begin
        (* settle the critical LD from below the prefix: it passes positions
           m-1, m-2, ... ; j = number passed *)
        let pass = ref 1.0 in
        for j = 0 to m do
          let stop_prob =
            if j = m then !pass
            else begin
              let above = kind_of_bit ((mask lsr (m - 1 - j)) land 1) in
              let r = rho above Op.LD in
              let sp = !pass *. (1.0 -. r) in
              pass := !pass *. r;
              sp
            end
          in
          if stop_prob > 0.0 then begin
            (* the j passed instructions now sit between the critical LD and
               the critical ST; the ST settles from below, meeting them in
               reverse prefix order: bits m-1, m-2, ..., m-j *)
            let pass_st = ref 1.0 in
            for t = 0 to j do
              let stop_st =
                if t = j then !pass_st (* reached the critical LD: same location, stops *)
                else begin
                  let above = kind_of_bit ((mask lsr (m - 1 - t)) land 1) in
                  let r = rho above Op.ST in
                  let sp = !pass_st *. (1.0 -. r) in
                  pass_st := !pass_st *. r;
                  sp
                end
              in
              if stop_st > 0.0 then begin
                let gamma = j - t in
                out.(gamma) <- out.(gamma) +. (mass *. stop_prob *. stop_st)
              end
            done
          end
        done
      end)
    prefix;
  List.init (m + 1) (fun g -> (g, out.(g)))

let bottom_st_probability ?(p = 0.5) model ~m =
  check ~p m;
  if m = 0 then invalid_arg "Exact_dp.bottom_st_probability: m >= 1 required";
  let prefix = prefix_distribution ~p model m in
  let acc = ref 0.0 in
  Array.iteri (fun mask mass -> if (mask lsr (m - 1)) land 1 = 1 then acc := !acc +. mass) prefix;
  !acc

let expect_pow2_window ?(p = 0.5) model ~m ~k =
  if k < 1 then invalid_arg "Exact_dp.expect_pow2_window: k >= 1 required";
  let pmf = gamma_pmf ~p model ~m in
  List.fold_left
    (fun acc (gamma, pr) -> acc +. (pr *. Float.pow 2.0 (float_of_int (-k * (gamma + 2)))))
    0.0 pmf
