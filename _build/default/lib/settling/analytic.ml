module Q = Memrel_prob.Rational
module C = Memrel_prob.Combinatorics
module Series = Memrel_prob.Series

let third = Q.of_ints 1 3
let two_thirds = Q.of_ints 2 3

let check_gamma gamma = if gamma < 0 then invalid_arg "Analytic: gamma < 0"

let b_sc gamma =
  check_gamma gamma;
  if gamma = 0 then Q.one else Q.zero

let b_wo gamma =
  check_gamma gamma;
  if gamma = 0 then two_thirds else Q.mul (Q.pow2 (-gamma)) third

let b_tso_lower gamma =
  check_gamma gamma;
  if gamma = 0 then two_thirds else Q.mul (Q.of_ints 6 7) (Q.pow (Q.of_ints 1 4) gamma)

let remainder_mass = Q.of_ints 2 21

let b_tso_upper gamma =
  check_gamma gamma;
  if gamma = 0 then two_thirds
  else Q.add (b_tso_lower gamma) (Q.mul remainder_mass (Q.pow2 (-gamma)))

let st_bottom_prob i =
  if i < 1 then invalid_arg "Analytic.st_bottom_prob: i >= 1 required";
  (* X_i = 2/3 + (1/4)^(i-1) (1/2 - 2/3), the Claim 4.3 recurrence solution *)
  Q.add two_thirds (Q.mul (Q.pow (Q.of_ints 1 4) (i - 1)) (Q.of_ints (-1) 6))

let st_bottom_limit = two_thirds

let l0 = third

let h mu =
  if mu < 1 then invalid_arg "Analytic.h: mu >= 1 required";
  let one_minus_pow2 k = Q.sub Q.one (Q.pow2 (-k)) in
  Q.sub
    (Q.add (Q.of_ints 8 7) (Q.div two_thirds (one_minus_pow2 (mu + 2))))
    (Q.inv (one_minus_pow2 (mu + 1)))

let l_mu_lower mu = Q.mul (Q.pow2 (-mu)) (h mu)

let psi_pmf ~mu ~q =
  if mu < 1 || q < 0 then invalid_arg "Analytic.psi_pmf: mu >= 1, q >= 0 required";
  Q.mul (Q.pow2 (-(mu + q))) (Q.of_bigint (C.binomial (mu + q - 1) q))

(* H(q, c) = sum over multisets of q parts in {1..c} of prod 2^-part — the
   complete homogeneous symmetric polynomial h_q(2^-1, ..., 2^-c). Then
   E[2^-Delta] = H(q, mu) / C(mu+q-1, q): the arrangement of q LDs below
   mu STs is uniform, and Delta is the sum over LDs of the STs above each. *)
let hom_sym_table = Hashtbl.create 512

let rec hom_sym q c =
  if q = 0 then 1.0
  else if c = 0 then 0.0
  else begin
    match Hashtbl.find_opt hom_sym_table (q, c) with
    | Some v -> v
    | None ->
      let v = hom_sym q (c - 1) +. (Float.pow 2.0 (float_of_int (-c)) *. hom_sym (q - 1) c) in
      Hashtbl.add hom_sym_table (q, c) v;
      v
  end

let f_mu_given_q ~mu ~q =
  if mu < 1 || q < 0 then invalid_arg "Analytic.f_mu_given_q: mu >= 1, q >= 0 required";
  if q = 0 then 1.0 else hom_sym q mu /. C.binomial_float (mu + q - 1) q

let f_mu_given_q_lower ~mu ~q =
  if mu < 1 || q < 1 then invalid_arg "Analytic.f_mu_given_q_lower: mu >= 1, q >= 1 required";
  Q.div
    (Q.sub (Q.pow2 (-(q - 1))) (Q.pow2 (-(mu * q))))
    (Q.of_bigint (C.binomial (mu + q - 1) q))

let l_mu_cache = Hashtbl.create 128

let rec l_mu_series ?(q_max = 200) mu =
  if mu < 0 then invalid_arg "Analytic.l_mu_series: mu < 0";
  if mu = 0 then Q.to_float l0
  else begin
    match Hashtbl.find_opt l_mu_cache (mu, q_max) with
    | Some v -> v
    | None ->
      let v = l_mu_series_raw ~q_max mu in
      Hashtbl.add l_mu_cache (mu, q_max) v;
      v
  end

and l_mu_series_raw ~q_max mu =
  begin
    (* Pr[L_mu] = sum_q Pr[Psi=q] Pr[F|q] (1 - (2/3) 2^-q); terms decay like
       4^-q C(mu+q-1,q), so q_max = 200 is far past float precision. *)
    let term q =
      let psi = Float.pow 2.0 (float_of_int (-(mu + q))) *. C.binomial_float (mu + q - 1) q in
      let f = f_mu_given_q ~mu ~q in
      psi *. f *. (1.0 -. ((2.0 /. 3.0) *. Float.pow 2.0 (float_of_int (-q))))
    in
    (Series.sum_to_convergence ~max_terms:q_max term).value
  end

let b_tso_series ?(q_max = 200) ?(mu_max = 80) gamma =
  check_gamma gamma;
  if gamma = 0 then 2.0 /. 3.0
  else begin
    let l mu = l_mu_series ~q_max mu in
    let head = Float.pow 2.0 (float_of_int (-gamma)) *. l gamma in
    let tail =
      Series.sum_range (fun mu -> Float.pow 2.0 (float_of_int (-(gamma + 1))) *. l mu) (gamma + 1) mu_max
    in
    head +. tail
  end

type model_window = [ `SC | `WO | `TSO_lower | `TSO_upper | `TSO_series ]

let b_value w gamma =
  match w with
  | `SC -> Q.to_float (b_sc gamma)
  | `WO -> Q.to_float (b_wo gamma)
  | `TSO_lower -> Q.to_float (b_tso_lower gamma)
  | `TSO_upper -> Q.to_float (b_tso_upper gamma)
  | `TSO_series -> b_tso_series gamma

let window_pmf w ~gamma_max =
  if gamma_max < 0 then invalid_arg "Analytic.window_pmf: gamma_max < 0";
  List.init (gamma_max + 1) (fun gamma -> (gamma, b_value w gamma))

let expect_pow2_window w ~k =
  if k < 1 then invalid_arg "Analytic.expect_pow2_window: k >= 1 required";
  let term gamma = b_value w gamma *. Float.pow 2.0 (float_of_int (-k * (gamma + 2))) in
  (Series.sum_to_convergence ~max_terms:300 term).value

let expect_pow2_window_exact w ~k =
  if k < 1 then invalid_arg "Analytic.expect_pow2_window_exact: k >= 1 required";
  let scale = Q.pow2 (-2 * k) in
  let pow2m1 e = Q.sub (Q.pow2 e) Q.one in
  match w with
  | `SC -> scale
  | `WO ->
    (* 2^-2k (2/3 + 1/(3 (2^(k+1) - 1))) *)
    Q.mul scale (Q.add two_thirds (Q.inv (Q.mul_int (pow2m1 (k + 1)) 3)))
  | `TSO_lower -> Q.mul scale (Q.add two_thirds (Q.div (Q.of_ints 6 7) (pow2m1 (k + 2))))
  | `TSO_upper ->
    Q.add
      (Q.mul scale (Q.add two_thirds (Q.div (Q.of_ints 6 7) (pow2m1 (k + 2)))))
      (Q.mul scale (Q.div remainder_mass (pow2m1 (k + 1))))
