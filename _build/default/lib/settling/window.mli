(** Critical-window extraction (Sections 3.2 and 4).

    After settling, the critical window W is the inclusive index range
    between the settled critical LD and settled critical ST. The paper's
    growth variable gamma (event B_gamma) counts the instructions strictly
    between them; the segment length fed to the shift process is the full
    window length gamma + 2. *)

val gamma : Program.t -> Settle.permutation -> int
(** [gamma prog pi] is the number of instructions strictly between the
    settled critical LD and critical ST. Always nonnegative (the store can
    never pass the load). *)

val length : Program.t -> Settle.permutation -> int
(** [length prog pi = gamma prog pi + 2]: the inclusive window size. *)

val bounds : Program.t -> Settle.permutation -> int * int
(** [(load_pos, store_pos)] in the final order. *)
