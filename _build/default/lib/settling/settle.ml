module Op = Memrel_memmodel.Op
module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence
module Rng = Memrel_prob.Rng

type permutation = int array

let swap_probability model ~earlier ~later =
  if Op.same_location earlier later then 0.0
  else
    match (earlier, later) with
    | _, Op.Fence _ -> 0.0 (* fences never settle *)
    | Op.Fence f, Op.Mem _ -> if Fence.blocks_upward_pass f then 0.0 else Model.s model
    | Op.Mem { kind = ke; _ }, Op.Mem { kind = kl; _ } ->
      Model.swap_probability model ~earlier:ke ~later:kl

(* Core loop shared by [run] and [run_traced]. [order.(pos)] holds the
   initial index of the instruction currently at [pos]. Settling initial
   index [r] starts at position [r] because rounds proceed top-down and
   earlier rounds only permute positions [0 .. r-1]. *)
let settle_round model rng ops order r =
  let settling = ops.(r) in
  let pos = ref r in
  if not (Op.is_fence settling) then begin
    let continue = ref true in
    while !continue && !pos > 0 do
      let above = ops.(order.(!pos - 1)) in
      let p = swap_probability model ~earlier:above ~later:settling in
      if p > 0.0 && Rng.bernoulli rng p then begin
        order.(!pos) <- order.(!pos - 1);
        order.(!pos - 1) <- r;
        decr pos
      end
      else continue := false
    done
  end;
  !pos

let permutation_of_order order =
  let pi = Array.make (Array.length order) 0 in
  Array.iteri (fun pos init -> pi.(init) <- pos) order;
  pi

let run model rng prog =
  let ops = Program.ops prog in
  let n = Array.length ops in
  let order = Array.init n (fun i -> i) in
  for r = 1 to n - 1 do
    ignore (settle_round model rng ops order r)
  done;
  permutation_of_order order

type snapshot = {
  round : int;
  start_pos : int;
  stop_pos : int;
  order : Op.t array;
}

let run_traced model rng prog =
  let ops = Program.ops prog in
  let n = Array.length ops in
  let order = Array.init n (fun i -> i) in
  let snaps = ref [] in
  for r = 1 to n - 1 do
    let stop = settle_round model rng ops order r in
    snaps :=
      { round = r; start_pos = r; stop_pos = stop; order = Array.map (fun i -> ops.(i)) order }
      :: !snaps
  done;
  (permutation_of_order order, List.rev !snaps)

let run_prefix model rng prog ~rounds =
  let ops = Program.ops prog in
  let n = Array.length ops in
  if rounds < 0 || rounds >= n then invalid_arg "Settle.run_prefix: rounds out of range";
  let order = Array.init n (fun i -> i) in
  for r = 1 to rounds do
    ignore (settle_round model rng ops order r)
  done;
  Array.map (fun i -> ops.(i)) order

let final_order prog pi =
  let ops = Program.ops prog in
  let n = Array.length ops in
  let out = Array.make n ops.(0) in
  Array.iteri (fun init pos -> out.(pos) <- ops.(init)) pi;
  out

let is_valid_permutation pi =
  let n = Array.length pi in
  let seen = Array.make n false in
  try
    Array.iter
      (fun p ->
        if p < 0 || p >= n || seen.(p) then raise Exit;
        seen.(p) <- true)
      pi;
    true
  with Exit -> false
