(** Exact finite-m window distribution by dynamic programming.

    The paper analyzes the m -> infinity limit; this module computes the
    *exact* distribution of the critical-window growth for a finite prefix
    length [m] by propagating a probability distribution over settled
    type-sequences (the settling dynamics depend only on the LD/ST pattern,
    so the state space is the 2^len sequences). It provides ground truth
    that the closed forms of {!Analytic} must approach as [m] grows, and an
    independent check on the Monte Carlo sampler.

    Works for any fence-free model and any [p]; cost is
    O(2^m m^2), so [m] is capped at 18. *)

val max_m : int
(** Largest accepted prefix length (18). *)

val gamma_pmf : ?p:float -> Memrel_memmodel.Model.t -> m:int -> (int * float) list
(** [gamma_pmf model ~m] is the exact pmf of gamma — [(gamma, prob)] for
    [gamma = 0 .. m] — for a random program with [Pr[ST] = p]
    (default 1/2). Probabilities sum to 1 up to float rounding.
    Raises [Invalid_argument] if [m < 0] or [m > max_m]. *)

val bottom_st_probability : ?p:float -> Memrel_memmodel.Model.t -> m:int -> float
(** [bottom_st_probability model ~m] is the exact probability that, after
    settling the [m]-instruction prefix, the bottom instruction is a ST —
    the finite-m quantity whose TSO limit Claim 4.3 pins at 2/3. *)

val expect_pow2_window : ?p:float -> Memrel_memmodel.Model.t -> m:int -> k:int -> float
(** Exact finite-m transform E[2^(-k (gamma+2))] (cf.
    {!Analytic.expect_pow2_window}). *)

(** Cross-thread joint window functionals — which require conditioning on
    the {e initial} program rather than on settled prefixes — live in
    {!Joint_dp}, whose coupled bottom-run chains avoid this module's 2^m
    state space altogether. *)
