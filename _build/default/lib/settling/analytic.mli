(** Closed-form and series results about the critical window (Section 4).

    Implements Theorem 4.1 (critical-window growth per model), Claim 4.3
    (the steady-state probability that the bottom instruction is a ST),
    Claim 4.4 and Lemma 4.2 (the Pr[L_mu] machinery), and — beyond the
    paper's bounds — an "exact series" TSO distribution that evaluates the
    paper's own decomposition with the exact arrangement-weighted sums
    instead of the phi >= 1 lower bound.

    Everything here is for the paper's normal form p = s = 1/2 and the
    m -> infinity limit; finite-m and general-parameter behaviour is covered
    by {!Exact_dp} and {!Mc}. *)

module Q = Memrel_prob.Rational

(** {1 Theorem 4.1 — Pr[B_gamma]} *)

val b_sc : int -> Q.t
(** Sequential consistency: 1 at gamma = 0, else 0. *)

val b_wo : int -> Q.t
(** Weak ordering: 2/3 at 0, [2^-gamma / 3] for gamma > 0. *)

val b_tso_lower : int -> Q.t
(** TSO lower bound: 2/3 at 0, [(6/7) 4^-gamma] for gamma > 0. *)

val b_tso_upper : int -> Q.t
(** TSO upper bound: adds the worst-case remainder [(2/21) 2^-gamma]. *)

val b_tso_series : ?q_max:int -> ?mu_max:int -> int -> float
(** [b_tso_series gamma] evaluates the paper's decomposition
    Pr[B_gamma] = sum_mu Pr[B_gamma | L_mu] Pr[L_mu] with the exact
    E[2^-Delta] (complete homogeneous symmetric sums) in place of the
    paper's partition-number lower bound. Lies within
    [[b_tso_lower, b_tso_upper]] for every gamma (tested). *)

(** {1 Claim 4.3 — Pr[S_ST,i(i)]} *)

val st_bottom_prob : int -> Q.t
(** [st_bottom_prob i] is the exact recurrence solution
    [2/3 + (1/4)^(i-1) (1/2 - 2/3)] for [i >= 1]: the probability that
    after round [i] the instruction at the bottom is a ST under TSO. *)

val st_bottom_limit : Q.t
(** 2/3. *)

(** {1 Lemma 4.2 — Pr[L_mu]} *)

val l0 : Q.t
(** Pr[L_0] = 1/3 exactly. *)

val h : int -> Q.t
(** [h mu = 8/7 - 1/(1 - 2^-(mu+1)) + (2/3)/(1 - 2^-(mu+2))], the
    parenthesized expression of the Lemma 4.2 proof; increasing in [mu]
    with [h 1 = 4/7]. *)

val l_mu_lower : int -> Q.t
(** [l_mu_lower mu = 2^-mu * h mu] for [mu >= 1] — the paper's per-mu lower
    bound (hence >= (4/7) 2^-mu). *)

val remainder_mass : Q.t
(** R = 2/21: total probability the lower bounds leave unattributed
    (Claim B.1). *)

val l_mu_series : ?q_max:int -> int -> float
(** Exact-series value of Pr[L_mu] ([l0] for mu = 0). *)

val psi_pmf : mu:int -> q:int -> Q.t
(** Pr[Psi_mu = q] = [2^-mu 2^-q C(mu+q-1, q)] (Step 2). *)

val f_mu_given_q : mu:int -> q:int -> float
(** Exact Pr[F_mu | Psi_mu = q] = E[2^-Delta]: the arrangement-averaged
    probability that all [q] interspersed LDs clear the [mu]-ST region. *)

val f_mu_given_q_lower : mu:int -> q:int -> Q.t
(** Claim 4.4's bound [(2^-(q-1) - 2^-(mu q)) / C(mu+q-1, q)]. *)

(** {1 Window pmf and transforms (consumed by the joined model)} *)

type model_window =
  [ `SC  (** exact *)
  | `WO  (** exact *)
  | `TSO_lower  (** Theorem 4.1 lower bound *)
  | `TSO_upper  (** Theorem 4.1 upper bound *)
  | `TSO_series  (** exact-series evaluation *) ]

val window_pmf : model_window -> gamma_max:int -> (int * float) list
(** [window_pmf w ~gamma_max] is [(gamma, Pr[B_gamma])] for
    [gamma = 0 .. gamma_max]. Note the TSO bound variants are sub-/super-
    normalized by design. *)

val expect_pow2_window : model_window -> k:int -> float
(** E[2^(-k Gamma)] where Gamma = gamma + 2 is the full window length —
    the transform Theorems 6.1/6.2 consume. Requires [k >= 1]. *)

val expect_pow2_window_exact : [ `SC | `WO | `TSO_lower | `TSO_upper ] -> k:int -> Q.t
(** Exact rational transform where a closed form exists:
    - SC: [2^-2k];
    - WO: [2^-2k (2/3 + 1/(3 (2^(k+1) - 1)))];
    - TSO bounds: [2^-2k (2/3 + (6/7)/(2^(k+2) - 1) (+ (2/21)/(2^(k+1)-1)))]. *)
