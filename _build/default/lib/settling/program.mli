(** The paper's program model (Section 3.1.1 / Appendix A.1).

    A program is a sequence of [m] random memory operations followed by the
    critical LD and critical ST of the canonical atomicity violation. The
    [m] prefix operations access pairwise-distinct locations; only the
    critical pair shares one. Indices here are 0-based: prefix operations
    occupy initial positions [0 .. m-1], the critical load is at [m], the
    critical store at [m+1]. *)

type t
(** An initial program order S0. *)

val generate : ?p:float -> Memrel_prob.Rng.t -> m:int -> t
(** [generate rng ~m] draws the prefix i.i.d. with [Pr[ST] = p]
    (default 1/2, the paper's normal form) and appends the critical pair.
    Requires [m >= 0] and [p] in [0, 1]. *)

val generate_with_gap : ?p:float -> Memrel_prob.Rng.t -> m:int -> gap:int -> t
(** [generate_with_gap rng ~m ~gap] generalizes the canonical bug: [gap]
    random plain operations sit between the critical LD and the critical ST
    in the initial program order — the programmer's intended-atomic section
    spans [gap + 2] instructions rather than the paper's minimal pair
    (which is [gap = 0], and what this returns then). Under settling the
    interior operations can migrate out of (or further into) the window,
    model-permitting. Requires [gap >= 0]. *)

val of_kinds : Memrel_memmodel.Op.kind list -> t
(** [of_kinds ks] builds the deterministic program with prefix [ks] plus the
    critical pair — for tests and worked examples. *)

val of_ops : Memrel_memmodel.Op.t list -> t
(** [of_ops ops] builds a program from explicit operations (may include
    fences). Exactly one critical load followed later by exactly one
    critical store must be present.
    Raises [Invalid_argument] otherwise. *)

val with_fences :
  every:int -> kind:Memrel_memmodel.Fence.t -> t -> t
(** [with_fences ~every ~kind t] inserts a fence after every [every]
    prefix operations (Section 7 extension). Requires [every >= 1]. *)

val length : t -> int
(** Total instruction count (m + 2 plus any fences). *)

val prefix_length : t -> int
(** Number of instructions before the critical load. *)

val op : t -> int -> Memrel_memmodel.Op.t
(** [op t i] is the instruction at initial position [i]. *)

val ops : t -> Memrel_memmodel.Op.t array
(** A fresh copy of the instruction array in initial program order. *)

val critical_load_index : t -> int
val critical_store_index : t -> int

val to_string : t -> string
(** One character per instruction, top first (e.g. ["LSSL...ls"]). *)

val pp : Format.formatter -> t -> unit
