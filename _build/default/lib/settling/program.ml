module Op = Memrel_memmodel.Op
module Fence = Memrel_memmodel.Fence

type t = { arr : Op.t array; cl : int; cs : int }

let validate arr =
  let cl = ref (-1) and cs = ref (-1) in
  Array.iteri
    (fun i o ->
      if Op.is_critical_load o then
        if !cl >= 0 then invalid_arg "Program: duplicate critical load" else cl := i;
      if Op.is_critical_store o then
        if !cs >= 0 then invalid_arg "Program: duplicate critical store" else cs := i)
    arr;
  if !cl < 0 || !cs < 0 then invalid_arg "Program: missing critical instruction";
  if !cl >= !cs then invalid_arg "Program: critical load must precede critical store";
  { arr; cl = !cl; cs = !cs }

let generate_with_gap ?(p = 0.5) rng ~m ~gap =
  if m < 0 then invalid_arg "Program.generate: m < 0";
  if gap < 0 then invalid_arg "Program.generate_with_gap: gap < 0";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Program.generate: p out of [0,1]";
  let plain () = Op.plain (if Memrel_prob.Rng.bernoulli rng p then Op.ST else Op.LD) in
  let arr =
    Array.init (m + gap + 2) (fun i ->
        if i < m then plain ()
        else if i = m then Op.critical_load
        else if i < m + 1 + gap then plain ()
        else Op.critical_store)
  in
  { arr; cl = m; cs = m + gap + 1 }

let generate ?p rng ~m = generate_with_gap ?p rng ~m ~gap:0

let of_kinds ks =
  let m = List.length ks in
  let prefix = Array.of_list (List.map Op.plain ks) in
  let arr = Array.append prefix [| Op.critical_load; Op.critical_store |] in
  { arr; cl = m; cs = m + 1 }

let of_ops ops = validate (Array.of_list ops)

let with_fences ~every ~kind t =
  if every < 1 then invalid_arg "Program.with_fences: every < 1";
  let out = ref [] in
  let since = ref 0 in
  Array.iteri
    (fun i o ->
      out := o :: !out;
      if i < t.cl then begin
        incr since;
        if !since = every then begin
          out := Op.fence kind :: !out;
          since := 0
        end
      end)
    t.arr;
  validate (Array.of_list (List.rev !out))

let length t = Array.length t.arr
let prefix_length t = t.cl
let op t i = t.arr.(i)
let ops t = Array.copy t.arr
let critical_load_index t = t.cl
let critical_store_index t = t.cs

let to_string t = String.init (Array.length t.arr) (fun i -> Op.to_char t.arr.(i))
let pp fmt t = Format.pp_print_string fmt (to_string t)
