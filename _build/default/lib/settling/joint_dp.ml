module Model = Memrel_memmodel.Model

let max_replicas = 4

(* ---- the coupled bottom-run chains ---------------------------------- *)

(* Tensor over (B_1 .. B_K), each coordinate in [0 .. b_max], stored flat;
   index = sum_j b_j * (b_max+1)^j. *)

let check_common ?(p = 0.5) model ~m =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Joint_dp: p must be in (0,1)";
  if m < 1 then invalid_arg "Joint_dp: m >= 1 required";
  let s = Model.s model in
  if not (s > 0.0 && s < 1.0) then invalid_arg "Joint_dp: model s must be in (0,1)";
  s

(* run the coupled chains for K replicas; returns the final joint tensor *)
let run_chains ~p ~s ~b_max ~m k =
  let side = b_max + 1 in
  let size =
    let rec pow acc i = if i = 0 then acc else pow (acc * side) (i - 1) in
    pow 1 k
  in
  let stride j =
    let rec pow acc i = if i = 0 then acc else pow (acc * side) (i - 1) in
    pow 1 j
  in
  let dist = Array.make size 0.0 in
  dist.(0) <- 1.0;
  let tmp = Array.make size 0.0 in
  (* fresh ST: every replica's run grows by one (clamped): a diagonal shift
     into a cleared destination tensor; clamped coordinates accumulate. *)
  let shift_all src dst =
    Array.fill dst 0 size 0.0;
    let coords = Array.make k 0 in
    for idx = 0 to size - 1 do
      (* decode idx *)
      let rem = ref idx in
      for j = 0 to k - 1 do
        coords.(j) <- !rem mod side;
        rem := !rem / side
      done;
      let v = src.(idx) in
      if v <> 0.0 then begin
        let nidx = ref 0 in
        for j = k - 1 downto 0 do
          let b = if coords.(j) >= b_max then b_max else coords.(j) + 1 in
          nidx := (!nidx * side) + b
        done;
        dst.(!nidx) <- dst.(!nidx) +. v
      end
    done
  in
  (* fresh LD on one axis: new[b'] = s^b' ((1-s) * sum_{b > b'} old[b] + old[b']) *)
  let ld_axis arr j =
    let st = stride j in
    let block = st * side in
    let line = Array.make side 0.0 in
    let i = ref 0 in
    while !i < size do
      (* iterate lines along axis j within the current block *)
      for off = !i to !i + st - 1 do
        for b = 0 to side - 1 do
          line.(b) <- arr.(off + (b * st))
        done;
        (* suffix sums *)
        let suffix = ref 0.0 in
        for b = side - 1 downto 0 do
          let above = !suffix in
          suffix := !suffix +. line.(b);
          let nb = (s ** float_of_int b) *. (((1.0 -. s) *. above) +. line.(b)) in
          arr.(off + (b * st)) <- nb
        done
      done;
      i := !i + block
    done
  in
  for _ = 1 to m do
    (* ST branch into tmp, weighted p *)
    shift_all dist tmp;
    (* LD branch in place on dist (weighted 1-p), applied per axis *)
    for j = 0 to k - 1 do
      ld_axis dist j
    done;
    for idx = 0 to size - 1 do
      dist.(idx) <- ((1.0 -. p) *. dist.(idx)) +. (p *. tmp.(idx))
    done
  done;
  dist

(* window-transform weight given a bottom run of mu STs, for exponent i *)
let weight_tso ~s ~i mu =
  (* critical LD passes g STs: s^g (1-s) for g < mu, s^mu at g = mu *)
  let acc = ref 0.0 in
  for g = 0 to mu do
    let pr = if g < mu then (s ** float_of_int g) *. (1.0 -. s) else s ** float_of_int mu in
    acc := !acc +. (pr *. Float.pow 2.0 (float_of_int (-i * (g + 2))))
  done;
  !acc

let weight_pso ~s ~i mu =
  (* as TSO, but the critical ST re-absorbs t of the g passed STs *)
  let acc = ref 0.0 in
  for g = 0 to mu do
    let pr_g = if g < mu then (s ** float_of_int g) *. (1.0 -. s) else s ** float_of_int mu in
    for t = 0 to g do
      let pr_t = if t < g then (s ** float_of_int t) *. (1.0 -. s) else s ** float_of_int g in
      acc := !acc +. (pr_g *. pr_t *. Float.pow 2.0 (float_of_int (-i * (g - t + 2))))
    done
  done;
  !acc

let expect_product ?(p = 0.5) ?b_max model ~m ~n =
  let s = check_common ~p model ~m in
  if n < 2 || n - 1 > max_replicas then
    invalid_arg "Joint_dp.expect_product: n must be in [2, max_replicas + 1]";
  let k = n - 1 in
  match Model.family model with
  | Model.Sequential_consistency ->
    (* Gamma = 2 for every thread *)
    Float.pow 2.0 (float_of_int (-2 * (k * (k + 1) / 2)))
  | Model.Weak_ordering ->
    (* windows independent of the program: the joint factorizes *)
    let e i =
      let term gamma =
        Analytic_general.b_wo ~s gamma *. Float.pow 2.0 (float_of_int (-i * (gamma + 2)))
      in
      (Memrel_prob.Series.sum_to_convergence ~max_terms:300 term).value
    in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. e i
    done;
    !acc
  | Model.Total_store_order | Model.Partial_store_order ->
    let b_max = match b_max with Some b -> b | None -> min m 40 in
    if b_max < 1 then invalid_arg "Joint_dp: b_max >= 1 required";
    let weight = match Model.family model with
      | Model.Partial_store_order -> weight_pso
      | _ -> weight_tso
    in
    let side = b_max + 1 in
    let dist = run_chains ~p ~s ~b_max ~m k in
    (* per-axis weight tables *)
    let w = Array.init k (fun j -> Array.init side (fun mu -> weight ~s ~i:(j + 1) mu)) in
    let total = ref 0.0 in
    Array.iteri
      (fun idx v ->
        if v <> 0.0 then begin
          let rem = ref idx and prod = ref v in
          for j = 0 to k - 1 do
            prod := !prod *. w.(j).(!rem mod side);
            rem := !rem / side
          done;
          total := !total +. !prod
        end)
      dist;
    !total
  | Model.Custom -> invalid_arg "Joint_dp: Custom models are not supported"

let bottom_run_pmf ?(p = 0.5) ?b_max model ~m =
  let _s = check_common ~p model ~m in
  (match Model.family model with
   | Model.Total_store_order | Model.Partial_store_order -> ()
   | _ -> invalid_arg "Joint_dp.bottom_run_pmf: TSO/PSO dynamics only");
  let b_max = match b_max with Some b -> b | None -> min m 40 in
  run_chains ~p ~s:(Model.s model) ~b_max ~m 1
