let bounds prog pi =
  (pi.(Program.critical_load_index prog), pi.(Program.critical_store_index prog))

let gamma prog pi =
  let load_pos, store_pos = bounds prog pi in
  let g = store_pos - load_pos - 1 in
  assert (g >= 0);
  g

let length prog pi = gamma prog pi + 2
