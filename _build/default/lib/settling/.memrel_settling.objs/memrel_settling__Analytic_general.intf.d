lib/settling/analytic_general.mli:
