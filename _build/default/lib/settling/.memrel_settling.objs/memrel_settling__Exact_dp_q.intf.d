lib/settling/exact_dp_q.mli: Memrel_memmodel Memrel_prob
