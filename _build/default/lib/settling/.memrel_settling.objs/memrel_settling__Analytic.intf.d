lib/settling/analytic.mli: Memrel_prob
