lib/settling/analytic.ml: Float Hashtbl List Memrel_prob
