lib/settling/verified.ml: Array Hashtbl Memrel_prob
