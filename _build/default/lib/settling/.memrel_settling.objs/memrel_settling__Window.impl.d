lib/settling/window.ml: Array Program
