lib/settling/verified.mli: Memrel_prob
