lib/settling/program.ml: Array Format List Memrel_memmodel Memrel_prob String
