lib/settling/exact_dp.ml: Array Float List Memrel_memmodel
