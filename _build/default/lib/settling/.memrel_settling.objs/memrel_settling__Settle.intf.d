lib/settling/settle.mli: Memrel_memmodel Memrel_prob Program
