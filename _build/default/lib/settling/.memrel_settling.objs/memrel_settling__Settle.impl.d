lib/settling/settle.ml: Array List Memrel_memmodel Memrel_prob Program
