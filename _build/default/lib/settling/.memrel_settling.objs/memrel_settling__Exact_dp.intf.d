lib/settling/exact_dp.mli: Memrel_memmodel
