lib/settling/window.mli: Program Settle
