lib/settling/mc.mli: Memrel_memmodel Memrel_prob Program
