lib/settling/joint_dp.ml: Analytic_general Array Float Memrel_memmodel Memrel_prob
