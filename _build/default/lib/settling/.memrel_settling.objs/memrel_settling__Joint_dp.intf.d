lib/settling/joint_dp.mli: Memrel_memmodel
