lib/settling/analytic_general.ml: Float Hashtbl Memrel_prob
