lib/settling/exact_dp_q.ml: Array List Memrel_memmodel Memrel_prob Printf
