lib/settling/program.mli: Format Memrel_memmodel Memrel_prob
