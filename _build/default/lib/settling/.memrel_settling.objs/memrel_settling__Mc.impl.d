lib/settling/mc.ml: Hashtbl Memrel_prob Option Program Settle Window
