module C = Memrel_prob.Combinatorics
module Series = Memrel_prob.Series

let check_params ~p ~s =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Analytic_general: p must be in (0,1)";
  if not (s > 0.0 && s < 1.0) then invalid_arg "Analytic_general: s must be in (0,1)"

let check_s s =
  if not (s > 0.0 && s < 1.0) then invalid_arg "Analytic_general: s must be in (0,1)"

let b_wo ~s gamma =
  if gamma < 0 then invalid_arg "Analytic_general.b_wo: gamma < 0";
  check_s s;
  (* critical LD climbs i steps w.p. s^i (1-s); the critical ST then climbs
     j <= i steps w.p. s^j (1-s), or j = i w.p. s^i (it stops at the LD
     automatically). gamma = i - j. *)
  if gamma = 0 then 1.0 /. (1.0 +. s)
  else (1.0 -. s) ** 2.0 *. (s ** float_of_int gamma) /. (1.0 -. (s *. s))

let b_wo_fenced ~s ~d gamma =
  if gamma < 0 then invalid_arg "Analytic_general.b_wo_fenced: gamma < 0";
  if d < 0 then invalid_arg "Analytic_general.b_wo_fenced: d < 0";
  check_s s;
  (* the critical LD climbs i <= d positions (s^i (1-s) for i < d, s^d when
     it runs into the fence); the critical ST then passes i - gamma of them *)
  let pr_disp i = if i < d then (s ** float_of_int i) *. (1.0 -. s) else s ** float_of_int d in
  if gamma > d then 0.0
  else if gamma = 0 then begin
    let acc = ref 0.0 in
    for i = 0 to d do
      acc := !acc +. (pr_disp i *. (s ** float_of_int i))
    done;
    !acc
  end
  else begin
    let acc = ref 0.0 in
    for i = gamma to d do
      acc := !acc +. (pr_disp i *. (s ** float_of_int (i - gamma)) *. (1.0 -. s))
    done;
    !acc
  end

let st_bottom_limit ~p ~s =
  check_params ~p ~s;
  (* fixed point of X = p + (1-p) s X: a fresh ST stays at the bottom; a
     fresh LD (prob 1-p) leaves a ST at the bottom exactly when the current
     bottom is a ST and the swap succeeds *)
  p /. (1.0 -. ((1.0 -. p) *. s))

let psi_pmf ~p ~mu ~q =
  if mu < 1 || q < 0 then invalid_arg "Analytic_general.psi_pmf: mu >= 1, q >= 0 required";
  C.binomial_float (mu + q - 1) q *. (p ** float_of_int mu) *. ((1.0 -. p) ** float_of_int q)

(* H_s(q, c) = sum over multisets of q parts in {1..c} of prod s^part,
   memoized per s (callers sweep a handful of s values) *)
let hom_sym_cache : (float, (int * int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let hom_sym ~s q c =
  let tbl =
    match Hashtbl.find_opt hom_sym_cache s with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 256 in
      Hashtbl.add hom_sym_cache s t;
      t
  in
  let rec go q c =
    if q = 0 then 1.0
    else if c = 0 then 0.0
    else begin
      match Hashtbl.find_opt tbl (q, c) with
      | Some v -> v
      | None ->
        let v = go q (c - 1) +. ((s ** float_of_int c) *. go (q - 1) c) in
        Hashtbl.add tbl (q, c) v;
        v
    end
  in
  go q c

let f_mu_given_q ~s ~mu ~q =
  if mu < 1 || q < 0 then invalid_arg "Analytic_general.f_mu_given_q: mu >= 1, q >= 0 required";
  if q = 0 then 1.0 else hom_sym ~s q mu /. C.binomial_float (mu + q - 1) q

let l_mu ~p ~s mu =
  check_params ~p ~s;
  if mu < 0 then invalid_arg "Analytic_general.l_mu: mu < 0"
  else if mu = 0 then 1.0 -. st_bottom_limit ~p ~s
  else begin
    let x_inf = st_bottom_limit ~p ~s in
    let term q =
      psi_pmf ~p ~mu ~q
      *. f_mu_given_q ~s ~mu ~q
      *. (1.0 -. (x_inf *. (s ** float_of_int q)))
    in
    (Series.sum_to_convergence ~max_terms:400 term).value
  end

let b_tso ~p ~s gamma =
  check_params ~p ~s;
  if gamma < 0 then invalid_arg "Analytic_general.b_tso: gamma < 0";
  if gamma = 0 then begin
    (* stops immediately: above is a LD (L_0), or a ST and the swap fails *)
    let l0 = l_mu ~p ~s 0 in
    l0 +. ((1.0 -. l0) *. (1.0 -. s))
  end
  else begin
    let sg = s ** float_of_int gamma in
    let head = sg *. l_mu ~p ~s gamma in
    let tail =
      Series.sum_range (fun mu -> sg *. (1.0 -. s) *. l_mu ~p ~s mu) (gamma + 1) (gamma + 60)
    in
    head +. tail
  end

let expect_pow2_window ~b ~k =
  if k < 1 then invalid_arg "Analytic_general.expect_pow2_window: k >= 1 required";
  let term gamma = b gamma *. Float.pow 2.0 (float_of_int (-k * (gamma + 2))) in
  (Series.sum_to_convergence ~max_terms:300 term).value

let pr_a_n2 ~b = (2.0 /. 3.0) *. expect_pow2_window ~b ~k:1
