let () = Alcotest.run "memrel_trace" [ ("render", Test_render.suite) ]
