module R = Memrel_trace.Render
module Program = Memrel_settling.Program
module Settle = Memrel_settling.Settle
module Model = Memrel_memmodel.Model
module Op = Memrel_memmodel.Op
module Rng = Memrel_prob.Rng

let contains hay needle = Astring.String.is_infix ~affix:needle hay

let test_figure1_structure () =
  let prog = Program.of_kinds [ Op.ST; Op.LD; Op.ST ] in
  let _, snaps = Settle.run_traced (Model.tso ()) (Rng.create 3) prog in
  let fig = R.figure1 prog snaps in
  (* one header per round plus init *)
  Alcotest.(check bool) "has init column" true (contains fig "init");
  Alcotest.(check bool) "has final round header" true (contains fig "r4");
  (* 5 instruction rows after the 2 header lines *)
  let lines = String.split_on_char '\n' fig in
  Alcotest.(check int) "line count" (2 + 5 + 1) (List.length lines);
  Alcotest.(check bool) "criticals highlighted" true (contains fig "*LD" && contains fig "*ST")

let test_figure1_no_highlight () =
  let prog = Program.of_kinds [ Op.ST ] in
  let _, snaps = Settle.run_traced Model.sc (Rng.create 1) prog in
  let fig = R.figure1 ~highlight_critical:false prog snaps in
  Alcotest.(check bool) "no stars" false (contains fig "*")

let test_figure1_random_deterministic () =
  let a = R.figure1_random ~seed:9 (Model.tso ()) in
  let b = R.figure1_random ~seed:9 (Model.tso ()) in
  Alcotest.(check string) "same seed same figure" a b;
  Alcotest.(check bool) "model named" true (contains a "TSO")

let test_figure1_sc_never_moves () =
  let fig = R.figure1_random ~m:5 ~seed:4 Model.sc in
  (* under SC every settling stops where it starts: parenthesized cell is
     always on the diagonal; cheap proxy: the final column equals the first.
     Extract the first and last code columns of each instruction row. *)
  let lines = String.split_on_char '\n' fig in
  let rows = List.filteri (fun i _ -> i >= 3) lines in
  List.iter
    (fun row ->
      if String.length row > 7 then begin
        let first = String.trim (String.sub row 0 7) in
        let last = String.trim (String.sub row (String.length row - 7) 7) in
        let strip s = String.concat "" (String.split_on_char '(' (String.concat "" (String.split_on_char ')' s))) in
        Alcotest.(check string) "row unchanged" (strip first) (strip last)
      end)
    rows

let test_figure2_paper_instance () =
  let fig = R.figure2_paper_instance () in
  Alcotest.(check bool) "probability line" true (contains fig "2^-13");
  Alcotest.(check bool) "both conventions reported" true
    (contains fig "Theorem 5.1" && contains fig "half-open");
  Alcotest.(check bool) "violated under closed" true (contains fig "violated");
  Alcotest.(check bool) "holds under half-open" true (contains fig "holds");
  Alcotest.(check bool) "segment lengths shown" true
    (contains fig "g1=3" && contains fig "g2=2" && contains fig "g3=5")

let test_figure2_occupancy () =
  let fig = R.figure2 ~gammas:[| 1 |] ~shifts:[| 2 |] in
  (* single segment occupying slots 2..3: two '#' marks (skip the legend
     line, whose "#" is part of the key) *)
  let body =
    String.concat "\n" (List.tl (String.split_on_char '\n' fig))
  in
  let hashes = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 body in
  Alcotest.(check int) "two occupied slots" 2 hashes

let test_figure2_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Render.figure2: length mismatch")
    (fun () -> ignore (R.figure2 ~gammas:[| 1 |] ~shifts:[| 1; 2 |]))

let test_window_bar () =
  let bar = R.window_bar [ (0, 0.5); (1, 0.25) ] ~width:8 in
  Alcotest.(check bool) "longest bar full width" true (contains bar "########");
  Alcotest.(check bool) "half bar" true (contains bar "####");
  Alcotest.(check bool) "values printed" true (contains bar "0.500000");
  Alcotest.check_raises "width guard" (Invalid_argument "Render.window_bar: width >= 1 required")
    (fun () -> ignore (R.window_bar [] ~width:0))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("figure1 structure", test_figure1_structure);
      ("figure1 highlight off", test_figure1_no_highlight);
      ("figure1 deterministic", test_figure1_random_deterministic);
      ("figure1 SC identity", test_figure1_sc_never_moves);
      ("figure2 paper instance", test_figure2_paper_instance);
      ("figure2 occupancy", test_figure2_occupancy);
      ("figure2 mismatch", test_figure2_mismatch);
      ("window bar chart", test_window_bar);
    ]
