test/trace/test_render.ml: Alcotest Astring List Memrel_memmodel Memrel_prob Memrel_settling Memrel_trace String
