test/trace/main.mli:
