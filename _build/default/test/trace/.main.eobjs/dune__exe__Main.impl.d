test/trace/main.ml: Alcotest Test_render
