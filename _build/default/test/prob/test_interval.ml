module I = Memrel_prob.Interval
module Q = Memrel_prob.Rational

let test_construction () =
  let i = I.make 1.0 2.0 in
  Alcotest.(check bool) "bounds" true (i.I.lo = 1.0 && i.I.hi = 2.0);
  Alcotest.check_raises "crossed" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (I.make 2.0 1.0));
  Alcotest.check_raises "nan" (Invalid_argument "Interval: not finite") (fun () ->
      ignore (I.make Float.nan 1.0))

let test_add_outward () =
  (* 0.1 + 0.2 <> 0.3 in floats; the interval must still contain the real
     sum 3/10 *)
  let s = I.add (I.point 0.1) (I.point 0.2) in
  let real = Q.to_float (Q.of_ints 3 10) in
  Alcotest.(check bool) "contains 0.3" true (I.contains s real);
  Alcotest.(check bool) "nontrivial width" true (I.width s > 0.0)

let test_mul_signs () =
  let a = I.make (-2.0) 3.0 and b = I.make (-1.0) 4.0 in
  let p = I.mul a b in
  (* true range is [-8, 12] *)
  Alcotest.(check bool) "contains -8" true (I.contains p (-8.0));
  Alcotest.(check bool) "contains 12" true (I.contains p 12.0);
  Alcotest.(check bool) "tight-ish" true (p.I.lo > -8.001 && p.I.hi < 12.001)

let test_div () =
  let q = I.div (I.point 1.0) (I.make 2.0 4.0) in
  Alcotest.(check bool) "range [1/4, 1/2]" true (I.contains q 0.25 && I.contains q 0.5);
  Alcotest.check_raises "zero straddle" Division_by_zero (fun () ->
      ignore (I.div I.one (I.make (-1.0) 1.0)))

let test_of_rational_guaranteed () =
  List.iter
    (fun (n, d) ->
      let q = Q.of_ints n d in
      let i = I.of_rational q in
      (* the rational provably inside: check via exact comparisons *)
      Alcotest.(check bool)
        (Printf.sprintf "%d/%d" n d)
        true
        (Q.compare (Q.of_float_dyadic i.I.lo) q <= 0
         && Q.compare q (Q.of_float_dyadic i.I.hi) <= 0))
    [ (1, 3); (2, 3); (7, 54); (58, 441); (-5, 7); (1, 1) ]

let test_pow2_exact () =
  let i = I.pow2i (-10) in
  Alcotest.(check (float 0.0)) "exact" (1.0 /. 1024.0) i.I.lo;
  Alcotest.(check (float 0.0)) "degenerate" 0.0 (I.width i);
  let j = I.mul_pow2i (I.make 1.0 3.0) (-1) in
  Alcotest.(check (float 0.0)) "scale exact lo" 0.5 j.I.lo;
  Alcotest.(check (float 0.0)) "scale exact hi" 1.5 j.I.hi

let test_hull_subset () =
  let a = I.make 0.0 1.0 and b = I.make 0.5 2.0 in
  let h = I.hull a b in
  Alcotest.(check bool) "hull contains both" true (I.subset a h && I.subset b h);
  Alcotest.(check bool) "strict within" true (I.strictly_within a ~lo:(-0.1) ~hi:1.1);
  Alcotest.(check bool) "not strict at boundary" false (I.strictly_within a ~lo:0.0 ~hi:1.1)

let prop_arithmetic_soundness =
  (* random rational arithmetic: interval result must contain the exact
     rational result *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interval ops enclose exact rational ops" ~count:500
       QCheck.(quad (int_range (-100) 100) (int_range 1 100) (int_range (-100) 100)
                 (int_range 1 100))
       (fun (a, b, c, d) ->
         let qa = Q.of_ints a b and qc = Q.of_ints c d in
         let ia = I.of_rational qa and ic = I.of_rational qc in
         let inside q i =
           Q.compare (Q.of_float_dyadic i.I.lo) q <= 0
           && Q.compare q (Q.of_float_dyadic i.I.hi) <= 0
         in
         inside (Q.add qa qc) (I.add ia ic)
         && inside (Q.sub qa qc) (I.sub ia ic)
         && inside (Q.mul qa qc) (I.mul ia ic)))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("construction", test_construction);
      ("outward addition", test_add_outward);
      ("multiplication signs", test_mul_signs);
      ("division", test_div);
      ("of_rational guaranteed", test_of_rational_guaranteed);
      ("exact powers of two", test_pow2_exact);
      ("hull and subset", test_hull_subset);
    ]
  @ [ prop_arithmetic_soundness ]
