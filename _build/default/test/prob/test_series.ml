module S = Memrel_prob.Series

let test_geometric_sum () =
  let r = S.sum_to_convergence (fun k -> Float.pow 0.5 (float_of_int k)) in
  Alcotest.(check (float 1e-12)) "sum 2^-k = 2" 2.0 r.value

let test_quarter_sum () =
  let r = S.sum_to_convergence (fun k -> Float.pow 0.25 (float_of_int k)) in
  Alcotest.(check (float 1e-12)) "sum 4^-k = 4/3" (4.0 /. 3.0) r.value

let test_parity_gap () =
  (* zero terms at odd k must not truncate the sum prematurely *)
  let f k = if k mod 2 = 1 then 0.0 else Float.pow 0.5 (float_of_int (k / 2)) in
  let r = S.sum_to_convergence f in
  Alcotest.(check (float 1e-12)) "gappy sum = 2" 2.0 r.value

let test_max_terms_cap () =
  let r = S.sum_to_convergence ~max_terms:10 (fun _ -> 1.0) in
  Alcotest.(check int) "stops at cap" 10 r.terms;
  Alcotest.(check (float 1e-12)) "partial sum" 10.0 r.value

let test_sum_range () =
  Alcotest.(check (float 1e-12)) "1..100" 5050.0 (S.sum_range float_of_int 1 100);
  Alcotest.(check (float 1e-12)) "empty range" 0.0 (S.sum_range float_of_int 5 4)

let test_kahan_catastrophic () =
  (* 1 + 1e-16 * 10 in naive order loses the small terms; Kahan keeps them *)
  let terms = 1.0 :: List.init 10 (fun _ -> 1e-16) in
  let v = S.kahan_sum terms in
  Alcotest.(check bool) "small terms retained" true (v > 1.0)

let test_geometric_tail () =
  Alcotest.(check (float 1e-12)) "tail bound" 2e-10
    (S.geometric_tail ~ratio:0.5 ~first_dropped:1e-10);
  Alcotest.check_raises "ratio >= 1 rejected"
    (Invalid_argument "Series.geometric_tail: ratio must be in [0,1)") (fun () ->
      ignore (S.geometric_tail ~ratio:1.0 ~first_dropped:1.0))

let prop name ?(count = 100) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "matches closed form for geometric ratios" QCheck.(float_range 0.05 0.9) (fun r ->
        let v = (S.sum_to_convergence (fun k -> Float.pow r (float_of_int k))).value in
        Float.abs (v -. (1.0 /. (1.0 -. r))) < 1e-9);
    prop "kahan matches exact rational sum" QCheck.(list_of_size (Gen.int_range 0 30) (int_range (-1000) 1000))
      (fun ints ->
        let floats = List.map (fun i -> float_of_int i /. 16.0) ints in
        (* sixteenths are exact dyadics: kahan must be exactly right *)
        let exact = float_of_int (List.fold_left ( + ) 0 ints) /. 16.0 in
        S.kahan_sum floats = exact);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("geometric sum", test_geometric_sum);
      ("quarter sum", test_quarter_sum);
      ("parity gaps do not truncate", test_parity_gap);
      ("max_terms cap", test_max_terms_cap);
      ("sum_range", test_sum_range);
      ("kahan compensation", test_kahan_catastrophic);
      ("geometric tail bound", test_geometric_tail);
    ]
  @ properties
