module B = Memrel_prob.Bigint

let check_str msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)
let bi = B.of_string

(* -- unit tests ------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1 lsl 40; -(1 lsl 40); max_int; min_int + 1 ]

let test_to_string_small () =
  check_str "zero" "0" B.zero;
  check_str "one" "1" B.one;
  check_str "neg" "-17" (B.of_int (-17));
  check_str "big limb boundary" "32768" (B.of_int 32768)

let test_of_string_roundtrip () =
  List.iter
    (fun s -> check_str s s (bi s))
    [ "0"; "1"; "-1"; "123456789"; "-987654321098765432109876543210";
      "1000000000000000000000000000000000001" ]

let test_of_string_signs () =
  check_str "plus sign" "5" (bi "+5");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string") (fun () ->
      ignore (bi ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bigint.of_string: invalid digit") (fun () ->
      ignore (bi "12a3"))

let test_add_carries () =
  check_str "carry chain" "1000000000000000000000"
    (B.add (bi "999999999999999999999") B.one);
  check_str "mixed signs" "-1" (B.add (B.of_int 4) (B.of_int (-5)));
  check_str "cancel" "0" (B.add (bi "123456789123456789") (bi "-123456789123456789"))

let test_sub () =
  check_str "borrow chain" "999999999999999999999"
    (B.sub (bi "1000000000000000000000") B.one);
  check_str "negative result" "-2" (B.sub (B.of_int 3) (B.of_int 5))

let test_mul () =
  check_str "schoolbook" "121932631137021795226185032733622923332237463801111263526900"
    (B.mul (bi "123456789012345678901234567890") (bi "987654321098765432109876543210"));
  check_str "by zero" "0" (B.mul (bi "99999999999") B.zero);
  check_str "sign" "-6" (B.mul (B.of_int 2) (B.of_int (-3)))

let test_divmod_exact () =
  let q, r = B.divmod (bi "1000000000000000000000") (bi "1000000000") in
  check_str "quot" "1000000000000" q;
  check_str "rem" "0" r

let test_divmod_truncation () =
  (* truncated division: remainder carries the dividend's sign *)
  let cases = [ (7, 2); (-7, 2); (7, -2); (-7, -2) ] in
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (B.to_int q);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (B.to_int r))
    cases

let test_div_by_zero () =
  Alcotest.check_raises "divmod 0" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_pow () =
  check_str "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_str "x^0" "1" (B.pow (bi "123123123") 0);
  Alcotest.check_raises "neg exp" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_pow2_shift () =
  check_str "pow2 64" "18446744073709551616" (B.pow2 64);
  check_str "shift_left" "18446744073709551616" (B.shift_left B.one 64);
  check_str "shift_right" "1" (B.shift_right (B.pow2 64) 64);
  check_str "shift_right truncates" "2" (B.shift_right (B.of_int 5) 1)

let test_gcd () =
  check_str "gcd large" "9000000000900000000090"
    (B.gcd (bi "123456789012345678901234567890") (bi "987654321098765432109876543210"));
  check_str "gcd with zero" "42" (B.gcd B.zero (B.of_int 42));
  check_str "gcd of negatives" "6" (B.gcd (B.of_int (-12)) (B.of_int 18));
  check_str "coprime" "1" (B.gcd (B.of_int 35) (B.of_int 64))

let test_compare () =
  Alcotest.(check bool) "lt" true (B.compare (B.of_int 3) (B.of_int 5) < 0);
  Alcotest.(check bool) "neg lt pos" true (B.compare (B.of_int (-1)) B.zero < 0);
  Alcotest.(check bool) "neg order flips" true (B.compare (B.of_int (-5)) (B.of_int (-3)) < 0);
  Alcotest.(check bool) "big" true (B.compare (bi "99999999999999999999") (bi "100000000000000000000") < 0)

let test_num_bits () =
  Alcotest.(check int) "zero" 0 (B.num_bits B.zero);
  Alcotest.(check int) "one" 1 (B.num_bits B.one);
  Alcotest.(check int) "255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.num_bits (B.pow2 100))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "small" 12345.0 (B.to_float (B.of_int 12345));
  let f = B.to_float (B.pow2 80) in
  Alcotest.(check (float 1e6)) "2^80" (Float.pow 2.0 80.0) f

let test_to_int_overflow () =
  Alcotest.(check (option int)) "fits" (Some 123) (B.to_int_opt (B.of_int 123));
  Alcotest.(check (option int)) "overflow" None (B.to_int_opt (B.pow2 80))

(* -- property tests --------------------------------------------------- *)

let arb_bigint =
  (* random decimal strings up to ~40 digits, either sign *)
  QCheck.map
    (fun (neg, digits) ->
      let s = String.concat "" (List.map string_of_int digits) in
      let s = if s = "" then "0" else s in
      bi (if neg then "-" ^ s else s))
    QCheck.(pair bool (list_of_size (Gen.int_range 1 40) (int_range 0 9)))

let prop name ?(count = 300) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "add commutative" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "add associative" (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
        B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "mul commutative" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        B.equal (B.mul a b) (B.mul b a));
    prop "distributivity" (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse of add" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        B.equal a (B.sub (B.add a b) b));
    prop "divmod reconstruction" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "string roundtrip" arb_bigint (fun a -> B.equal a (bi (B.to_string a)));
    prop "gcd divides both" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "gcd matches euclid" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        let rec euclid a b = if B.is_zero b then B.abs a else euclid b (B.rem a b) in
        B.equal (B.gcd a b) (euclid a b));
    prop "shift_left equals mul pow2"
      (QCheck.pair arb_bigint (QCheck.int_range 0 100))
      (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow2 k)));
    prop "compare antisymmetric" (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
        B.compare a b = -B.compare b a);
    prop "num_bits bounds value" arb_bigint (fun a ->
        let b = B.num_bits a in
        B.compare (B.abs a) (B.pow2 b) < 0 && (b = 0 || B.compare (B.abs a) (B.pow2 (b - 1)) >= 0));
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("of_int roundtrip", test_of_int_roundtrip);
      ("to_string small", test_to_string_small);
      ("of_string roundtrip", test_of_string_roundtrip);
      ("of_string signs and errors", test_of_string_signs);
      ("add with carries", test_add_carries);
      ("sub with borrows", test_sub);
      ("mul", test_mul);
      ("divmod exact", test_divmod_exact);
      ("divmod truncation", test_divmod_truncation);
      ("division by zero", test_div_by_zero);
      ("pow", test_pow);
      ("pow2 and shifts", test_pow2_shift);
      ("gcd", test_gcd);
      ("compare", test_compare);
      ("num_bits", test_num_bits);
      ("to_float", test_to_float);
      ("to_int overflow", test_to_int_overflow);
    ]
  @ properties
