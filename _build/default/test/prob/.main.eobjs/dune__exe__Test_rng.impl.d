test/prob/test_rng.ml: Alcotest Array Float Hashtbl Int64 List Memrel_prob Option Printf
