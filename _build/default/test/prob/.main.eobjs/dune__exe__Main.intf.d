test/prob/main.mli:
