test/prob/test_rational.ml: Alcotest Float List Memrel_prob QCheck QCheck_alcotest
