test/prob/test_logspace.ml: Alcotest Float List Memrel_prob QCheck QCheck_alcotest
