test/prob/test_bigint.ml: Alcotest Float Gen List Memrel_prob Printf QCheck QCheck_alcotest String
