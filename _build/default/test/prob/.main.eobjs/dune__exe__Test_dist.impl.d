test/prob/test_dist.ml: Alcotest Array Float Gen List Memrel_prob QCheck QCheck_alcotest
