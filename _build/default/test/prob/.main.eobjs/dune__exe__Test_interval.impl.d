test/prob/test_interval.ml: Alcotest Float List Memrel_prob Printf QCheck QCheck_alcotest
