test/prob/test_series.ml: Alcotest Float Gen List Memrel_prob QCheck QCheck_alcotest
