test/prob/test_stats.ml: Alcotest Float Gen List Memrel_prob QCheck QCheck_alcotest
