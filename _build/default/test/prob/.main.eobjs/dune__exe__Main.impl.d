test/prob/main.ml: Alcotest Test_bigint Test_combinatorics Test_dist Test_interval Test_logspace Test_rational Test_rng Test_series Test_stats
