test/prob/test_combinatorics.ml: Alcotest Array Float List Memrel_prob Printf QCheck QCheck_alcotest
