module L = Memrel_prob.Logspace
module Q = Memrel_prob.Rational

let test_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (float (f *. 1e-12))) (string_of_float f) f (L.to_float (L.of_float f)))
    [ 1.0; 0.5; 0.001; 123456.0 ]

let test_zero_one () =
  Alcotest.(check (float 0.0)) "zero" 0.0 (L.to_float L.zero);
  Alcotest.(check (float 0.0)) "one" 1.0 (L.to_float L.one);
  Alcotest.(check (float 0.0)) "log2 one" 0.0 (L.log2 L.one)

let test_mul_is_add () =
  let a = L.of_float 0.25 and b = L.of_float 0.5 in
  Alcotest.(check (float 1e-12)) "0.25 * 0.5" 0.125 (L.to_float (L.mul a b));
  Alcotest.(check (float 0.0)) "zero absorbs" 0.0 (L.to_float (L.mul a L.zero))

let test_add_lse () =
  let a = L.of_float 0.25 and b = L.of_float 0.5 in
  Alcotest.(check (float 1e-12)) "0.25 + 0.5" 0.75 (L.to_float (L.add a b));
  Alcotest.(check (float 1e-12)) "identity" 0.25 (L.to_float (L.add a L.zero))

let test_add_extreme_scales () =
  (* adding 2^-900 to 2^-100 must not produce nan and must keep the bigger *)
  let big = L.pow2 (-100.0) and small = L.pow2 (-900.0) in
  let s = L.add big small in
  Alcotest.(check (float 1e-9)) "dominated add" (-100.0) (L.log2 s)

let test_sub () =
  let a = L.of_float 0.75 and b = L.of_float 0.25 in
  Alcotest.(check (float 1e-12)) "0.75 - 0.25" 0.5 (L.to_float (L.sub a b));
  Alcotest.(check (float 0.0)) "self - self = 0" 0.0 (L.to_float (L.sub a a));
  Alcotest.check_raises "negative result" (Invalid_argument "Logspace.sub: result would be negative")
    (fun () -> ignore (L.sub b a))

let test_pow () =
  Alcotest.(check (float 1e-12)) "square" 0.25 (L.to_float (L.pow (L.of_float 0.5) 2.0));
  Alcotest.(check (float 0.0)) "0^0 = 1" 1.0 (L.to_float (L.pow L.zero 0.0))

let test_of_rational_underflow_regime () =
  (* 2^-2000 underflows float entirely, but its log2 must be exact *)
  let v = L.of_rational (Q.pow2 (-2000)) in
  Alcotest.(check (float 1e-6)) "log2 2^-2000" (-2000.0) (L.log2 v);
  let v = L.of_rational (Q.of_ints 7 54) in
  Alcotest.(check (float 1e-9)) "7/54" (Float.log (7.0 /. 54.0) /. Float.log 2.0) (L.log2 v);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Logspace.of_rational: negative")
    (fun () -> ignore (L.of_rational (Q.of_ints (-1) 2)))

let test_sum_list () =
  let l = List.init 8 (fun _ -> L.of_float 0.125) in
  Alcotest.(check (float 1e-12)) "8 * 1/8" 1.0 (L.to_float (L.sum l))

let prop name ?(count = 200) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "add commutative" QCheck.(pair (float_range 1e-10 10.0) (float_range 1e-10 10.0))
      (fun (a, b) ->
        let x = L.of_float a and y = L.of_float b in
        Float.abs (L.log2 (L.add x y) -. L.log2 (L.add y x)) < 1e-12);
    prop "mul then div identity" QCheck.(pair (float_range 1e-10 10.0) (float_range 1e-10 10.0))
      (fun (a, b) ->
        let x = L.of_float a and y = L.of_float b in
        Float.abs (L.log2 (L.div (L.mul x y) y) -. L.log2 x) < 1e-9);
    prop "of_rational consistent with to_float" QCheck.(pair (int_range 1 10000) (int_range 1 10000))
      (fun (n, d) ->
        let q = Q.of_ints n d in
        Float.abs (L.to_float (L.of_rational q) -. Q.to_float q) < 1e-9 *. Q.to_float q +. 1e-12);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("roundtrip", test_roundtrip);
      ("zero and one", test_zero_one);
      ("mul", test_mul_is_add);
      ("add (log-sum-exp)", test_add_lse);
      ("add across extreme scales", test_add_extreme_scales);
      ("sub", test_sub);
      ("pow", test_pow);
      ("of_rational in underflow regime", test_of_rational_underflow_regime);
      ("sum", test_sum_list);
    ]
  @ properties
