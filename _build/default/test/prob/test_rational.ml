module Q = Memrel_prob.Rational
module B = Memrel_prob.Bigint

let q = Q.of_string
let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_normalization () =
  check_q "reduces" "1/2" (Q.of_ints 2 4);
  check_q "sign to numerator" "-1/2" (Q.of_ints 1 (-2));
  check_q "double negative" "1/2" (Q.of_ints (-1) (-2));
  check_q "zero normal form" "0" (Q.of_ints 0 17);
  check_q "integer denominator 1" "5" (Q.of_ints 10 2)

let test_zero_denominator () =
  Alcotest.check_raises "make 1/0" Division_by_zero (fun () -> ignore (Q.of_ints 1 0))

let test_arith () =
  check_q "add" "5/6" (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "sub" "1/6" (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "mul" "1/6" (Q.mul (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "div" "3/2" (Q.div (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "neg" "-5/6" (Q.neg (q "5/6"));
  check_q "abs" "5/6" (Q.abs (q "-5/6"))

let test_paper_constants () =
  (* the constants of Theorems 4.1 and 6.2 must be representable exactly *)
  check_q "SC n=2" "1/6" (Q.of_ints 1 6);
  check_q "WO n=2 via arithmetic" "7/54" (Q.mul (Q.of_ints 2 3) (Q.of_ints 7 36));
  check_q "TSO lower" "58/441" (Q.mul (Q.of_ints 2 3) (Q.add (Q.of_ints 1 6) (Q.of_ints 3 98)));
  check_q "TSO upper" "181/1323" (Q.add (q "58/441") (q "1/189"))

let test_pow () =
  check_q "pow 3" "1/8" (Q.pow Q.half 3);
  check_q "pow 0" "1" (Q.pow (q "7/9") 0);
  check_q "pow neg" "9/4" (Q.pow (Q.of_ints 2 3) (-2));
  check_q "pow2 neg" "1/1024" (Q.pow2 (-10));
  check_q "pow2 pos" "1024" (Q.pow2 10)

let test_inv () =
  check_q "inv" "-3/2" (Q.inv (q "-2/3"));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (q "1/3") Q.half < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (q "-1/2") (q "1/3") < 0);
  Alcotest.(check bool) "equal reduced" true (Q.equal (Q.of_ints 3 9) (q "1/3"))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "7/54" (7.0 /. 54.0) (Q.to_float (q "7/54"));
  Alcotest.(check (float 1e-12)) "negative" (-0.125) (Q.to_float (q "-1/8"));
  (* survives huge denominators by scaling *)
  let tiny = Q.pow2 (-500) in
  Alcotest.(check (float 1e-160)) "2^-500" (Float.pow 2.0 (-500.0)) (Q.to_float tiny)

let test_of_float_dyadic () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) (string_of_float f) f (Q.to_float (Q.of_float_dyadic f)))
    [ 0.0; 1.0; 0.5; -0.375; 3.141592653589793; 1e-300 ];
  Alcotest.check_raises "nan" (Invalid_argument "Rational.of_float_dyadic: not finite") (fun () ->
      ignore (Q.of_float_dyadic Float.nan))

let test_sum_product () =
  check_q "sum" "11/6" (Q.sum [ Q.one; Q.half; q "1/3" ]);
  check_q "product" "1/6" (Q.product [ Q.half; q "1/3" ])

let test_num_den () =
  let r = q "-6/8" in
  Alcotest.(check string) "num" "-3" (B.to_string (Q.num r));
  Alcotest.(check string) "den" "4" (B.to_string (Q.den r))

(* -- property tests --------------------------------------------------- *)

let arb_q =
  QCheck.map
    (fun (n, d) -> Q.of_ints n d)
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 10000))

let prop name ?(count = 300) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "add commutative" (QCheck.pair arb_q arb_q) (fun (a, b) ->
        Q.equal (Q.add a b) (Q.add b a));
    prop "mul associative" (QCheck.triple arb_q arb_q arb_q) (fun (a, b, c) ->
        Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c)));
    prop "distributive" (QCheck.triple arb_q arb_q arb_q) (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "normal form is canonical" (QCheck.pair arb_q arb_q) (fun (a, b) ->
        (* equal values have identical num/den *)
        QCheck.assume (Q.equal a b);
        B.equal (Q.num a) (Q.num b) && B.equal (Q.den a) (Q.den b));
    prop "den always positive, coprime" arb_q (fun a ->
        B.sign (Q.den a) = 1 && B.is_one (B.gcd (Q.num a) (Q.den a)));
    prop "div inverse of mul" (QCheck.pair arb_q arb_q) (fun (a, b) ->
        QCheck.assume (not (Q.is_zero b));
        Q.equal a (Q.div (Q.mul a b) b));
    prop "to_string roundtrip" arb_q (fun a -> Q.equal a (Q.of_string (Q.to_string a)));
    prop "to_float monotone" (QCheck.pair arb_q arb_q) (fun (a, b) ->
        QCheck.assume (Q.compare a b < 0);
        Q.to_float a <= Q.to_float b);
    prop "of_float_dyadic exact" QCheck.(float_bound_inclusive 1.0) (fun f ->
        Q.to_float (Q.of_float_dyadic f) = f);
    prop "compare consistent with sub sign" (QCheck.pair arb_q arb_q) (fun (a, b) ->
        compare (Q.compare a b) 0 = compare (Q.sign (Q.sub a b)) 0);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("normalization", test_normalization);
      ("zero denominator", test_zero_denominator);
      ("arithmetic", test_arith);
      ("paper constants exact", test_paper_constants);
      ("pow and pow2", test_pow);
      ("inv", test_inv);
      ("compare and equal", test_compare);
      ("to_float", test_to_float);
      ("of_float_dyadic", test_of_float_dyadic);
      ("sum and product", test_sum_product);
      ("num and den", test_num_den);
    ]
  @ properties
