module Op = Memrel_memmodel.Op
module Fence = Memrel_memmodel.Fence

let test_kinds () =
  Alcotest.(check bool) "LD = LD" true (Op.kind_equal Op.LD Op.LD);
  Alcotest.(check bool) "LD <> ST" false (Op.kind_equal Op.LD Op.ST);
  Alcotest.(check string) "names" "LD" (Op.kind_to_string Op.LD);
  Alcotest.(check string) "names" "ST" (Op.kind_to_string Op.ST)

let test_roles () =
  Alcotest.(check bool) "critical load is critical" true (Op.is_critical Op.critical_load);
  Alcotest.(check bool) "critical store is critical" true (Op.is_critical Op.critical_store);
  Alcotest.(check bool) "plain not critical" false (Op.is_critical (Op.plain Op.LD));
  Alcotest.(check bool) "load vs store roles" true
    (Op.is_critical_load Op.critical_load && not (Op.is_critical_load Op.critical_store));
  Alcotest.(check bool) "store role" true (Op.is_critical_store Op.critical_store)

let test_kind_of () =
  Alcotest.(check bool) "critical load is a LD" true (Op.kind_of Op.critical_load = Some Op.LD);
  Alcotest.(check bool) "critical store is a ST" true (Op.kind_of Op.critical_store = Some Op.ST);
  Alcotest.(check bool) "fence has no kind" true (Op.kind_of (Op.fence Fence.Full) = None)

let test_same_location () =
  Alcotest.(check bool) "critical pair shares x" true
    (Op.same_location Op.critical_load Op.critical_store);
  Alcotest.(check bool) "symmetric" true (Op.same_location Op.critical_store Op.critical_load);
  Alcotest.(check bool) "plain ops are distinct" false
    (Op.same_location (Op.plain Op.ST) (Op.plain Op.ST));
  Alcotest.(check bool) "critical vs plain distinct" false
    (Op.same_location Op.critical_load (Op.plain Op.ST));
  Alcotest.(check bool) "not reflexive for criticals" false
    (Op.same_location Op.critical_load Op.critical_load)

let test_rendering () =
  Alcotest.(check string) "chars" "LSlsARF"
    (String.init 7 (fun i ->
         Op.to_char
           (List.nth
              [ Op.plain Op.LD; Op.plain Op.ST; Op.critical_load; Op.critical_store;
                Op.fence Fence.Acquire; Op.fence Fence.Release; Op.fence Fence.Full ]
              i)));
  Alcotest.(check string) "to_string critical" "LD*" (Op.to_string Op.critical_load);
  Alcotest.(check string) "to_string fence" "FENCE.release" (Op.to_string (Op.fence Fence.Release))

let test_fence_semantics () =
  Alcotest.(check bool) "acquire blocks" true (Fence.blocks_upward_pass Fence.Acquire);
  Alcotest.(check bool) "full blocks" true (Fence.blocks_upward_pass Fence.Full);
  Alcotest.(check bool) "release passes" false (Fence.blocks_upward_pass Fence.Release);
  Alcotest.(check bool) "fence equal" true (Fence.equal Fence.Full Fence.Full);
  Alcotest.(check bool) "fence distinct" false (Fence.equal Fence.Acquire Fence.Release)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("kinds", test_kinds);
      ("roles", test_roles);
      ("kind_of", test_kind_of);
      ("same_location", test_same_location);
      ("rendering", test_rendering);
      ("fence semantics", test_fence_semantics);
    ]
