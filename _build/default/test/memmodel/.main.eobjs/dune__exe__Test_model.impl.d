test/memmodel/test_model.ml: Alcotest Astring List Memrel_memmodel String
