test/memmodel/main.mli:
