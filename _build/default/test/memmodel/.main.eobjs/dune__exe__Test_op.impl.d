test/memmodel/test_op.ml: Alcotest List Memrel_memmodel String
