test/memmodel/main.ml: Alcotest Test_model Test_op
