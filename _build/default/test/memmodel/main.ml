let () =
  Alcotest.run "memrel_memmodel"
    [ ("op", Test_op.suite); ("model", Test_model.suite) ]
