module Model = Memrel_memmodel.Model
module Op = Memrel_memmodel.Op

let pairs = [ (Op.ST, Op.ST); (Op.ST, Op.LD); (Op.LD, Op.ST); (Op.LD, Op.LD) ]

let relaxed m = List.map (fun (e, l) -> Model.relaxes m ~earlier:e ~later:l) pairs

let test_table1_matrix () =
  (* Table 1 rows: SC relaxes nothing; TSO only ST/LD; PSO ST/ST and ST/LD;
     WO everything *)
  Alcotest.(check (list bool)) "SC" [ false; false; false; false ] (relaxed Model.sc);
  Alcotest.(check (list bool)) "TSO" [ false; true; false; false ] (relaxed (Model.tso ()));
  Alcotest.(check (list bool)) "PSO" [ true; true; false; false ] (relaxed (Model.pso ()));
  Alcotest.(check (list bool)) "WO" [ true; true; true; true ] (relaxed (Model.wo ()))

let test_strictness_order () =
  (* each model's relaxed set contains the previous one's *)
  let sets = List.map relaxed Model.all_standard in
  let rec check = function
    | a :: (b :: _ as rest) ->
      List.iter2
        (fun x y -> if x && not y then Alcotest.fail "strictness order violated")
        a b;
      check rest
    | _ -> ()
  in
  check sets

let test_probabilities () =
  let m = Model.tso ~s:0.7 () in
  Alcotest.(check (float 0.0)) "relaxed pair gets s" 0.7
    (Model.swap_probability m ~earlier:Op.ST ~later:Op.LD);
  Alcotest.(check (float 0.0)) "other pairs 0" 0.0
    (Model.swap_probability m ~earlier:Op.LD ~later:Op.LD);
  Alcotest.(check (float 0.0)) "default s" 0.5 (Model.s (Model.wo ()))

let test_custom () =
  let m = Model.custom ~name:"ldld-only" ~st_st:0.0 ~st_ld:0.0 ~ld_st:0.0 ~ld_ld:0.25 in
  Alcotest.(check bool) "family" true (Model.family m = Model.Custom);
  Alcotest.(check (float 0.0)) "matrix honored" 0.25
    (Model.swap_probability m ~earlier:Op.LD ~later:Op.LD);
  (match Model.relaxed_pairs m with
   | [ (Op.LD, Op.LD) ] -> ()
   | _ -> Alcotest.fail "relaxed_pairs should be exactly [LD,LD]");
  Alcotest.check_raises "bad probability" (Invalid_argument "Model: st_ld probability out of [0,1]")
    (fun () -> ignore (Model.custom ~name:"bad" ~st_st:0.0 ~st_ld:1.5 ~ld_st:0.0 ~ld_ld:0.0))

let test_names () =
  Alcotest.(check (list string)) "standard names" [ "SC"; "TSO"; "PSO"; "WO" ]
    (List.map Model.name Model.all_standard)

let test_equal () =
  Alcotest.(check bool) "tso = tso" true (Model.equal (Model.tso ()) (Model.tso ()));
  Alcotest.(check bool) "tso <> tso(s=0.3)" false (Model.equal (Model.tso ()) (Model.tso ~s:0.3 ()));
  Alcotest.(check bool) "sc <> wo" false (Model.equal Model.sc (Model.wo ()))

let test_table1_rendering () =
  let t = Model.table1 () in
  (* the rendered table must contain each model name and the right number of
     check marks: 0 + 1 + 2 + 4 = 7 *)
  List.iter
    (fun name ->
      if not (Astring.String.is_infix ~affix:name t) then Alcotest.fail (name ^ " missing"))
    [ "ST/ST"; "ST/LD"; "LD/ST"; "LD/LD"; "SC"; "TSO"; "PSO"; "WO" ];
  let marks = String.fold_left (fun acc c -> if c = 'X' then acc + 1 else acc) 0 t in
  Alcotest.(check int) "seven relaxation marks" 7 marks

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("Table 1 matrix", test_table1_matrix);
      ("strictness order", test_strictness_order);
      ("swap probabilities", test_probabilities);
      ("custom matrices", test_custom);
      ("names", test_names);
      ("equality", test_equal);
      ("Table 1 rendering", test_table1_rendering);
    ]
