(* End-to-end reproduction checks through the Memrel facade: each test is a
   fast version of an EXPERIMENTS.md row, asserting that the independently
   implemented layers (closed forms, exact series, finite-m DP, Monte Carlo,
   operational machine) land on the same numbers. *)

open Memrel
module Q = Rational

let test_e1_table1 () =
  let t = Model.table1 () in
  (* the paper's Table 1 content, row by row *)
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle t) then Alcotest.fail (needle ^ " missing"))
    [ "SC"; "TSO"; "PSO"; "WO" ]

let test_e4_window_chain_tso () =
  (* Theorem 4.1 chain: bounds >= series = DP = MC for TSO *)
  let dp = Window_exact_dp.gamma_pmf (Model.tso ()) ~m:16 in
  let rng = Rng.create 1 in
  let mc = Window_mc.estimate ~trials:60_000 (Model.tso ()) rng in
  for g = 0 to 4 do
    let lo = Q.to_float (Window_analytic.b_tso_lower g) in
    let hi = Q.to_float (Window_analytic.b_tso_upper g) in
    let series = Window_analytic.b_tso_series g in
    let dpv = List.assoc g dp in
    let mcv = try List.assoc g mc.gamma_pmf with Not_found -> 0.0 in
    Alcotest.(check bool) "bounds bracket series" true (lo -. 1e-9 <= series && series <= hi +. 1e-9);
    Alcotest.(check (float 1e-4)) "series = dp" series dpv;
    Alcotest.(check bool) "mc close" true (Float.abs (mcv -. series) < 0.01)
  done

let test_e5_claim43_chain () =
  (* recurrence = DP at every finite m, limit 2/3 *)
  for m = 1 to 10 do
    Alcotest.(check (float 1e-12)) "recurrence = DP"
      (Q.to_float (Window_analytic.st_bottom_prob m))
      (Window_exact_dp.bottom_st_probability (Model.tso ()) ~m)
  done

let test_e7_shift_chain () =
  (* Theorem 5.1 = MC on an asymmetric instance *)
  let g = [| 2; 0; 4 |] in
  let exact = Q.to_float (Shift_exact.disjoint_probability g) in
  let rng = Rng.create 2 in
  let est, ci = Shift.estimate ~trials:150_000 rng g in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.5f in [%.5f, %.5f] est %.5f" exact ci.lo ci.hi est)
    true
    (ci.lo -. 0.003 <= exact && exact <= ci.hi +. 0.003)

let test_e8_theorem62_full_chain () =
  (* the headline n=2 table: closed form = generic path = joint MC *)
  let rng = Rng.create 3 in
  let checks =
    [ (Model.sc, Q.to_float Manifestation.pr_a_n2_sc);
      (Model.wo (), Q.to_float Manifestation.pr_a_n2_wo);
      (Model.tso (), Manifestation.pr_a_n2_tso_series ()) ]
  in
  List.iter
    (fun (model, expected) ->
      let e = Joint.estimate ~trials:80_000 model ~n:2 rng in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.4f vs %.4f" (Model.name model) e.pr_no_bug expected)
        true
        (Float.abs (e.pr_no_bug -. expected) < 0.006))
    checks

let test_e9_scaling_consistency () =
  (* scaling rows vs semi-analytic estimator at n=3 *)
  let rng = Rng.create 4 in
  let r = Scaling.row 3 in
  let wo = Joint.semi_analytic ~trials:100_000 (Model.wo ()) ~n:3 rng in
  Alcotest.(check bool) "WO semi-analytic matches exact row" true
    (Float.abs ((Float.log wo /. Float.log 2.0) -. r.log2_wo) < 0.1)

let test_e11_fences_reduce_vulnerability () =
  (* Section 7: fences shrink windows, raising Pr[A]; acquire fences every
     2 instructions under WO must beat fence-free WO *)
  let rng = Rng.create 5 in
  let trials = 40_000 in
  let no_fence = ref 0 and fenced = ref 0 in
  for _ = 1 to trials do
    let prog = Program.generate rng ~m:32 in
    let gamma_of prog =
      let pi = Settle.run (Model.wo ()) rng prog in
      Window.gamma prog pi + 2
    in
    let g1 = gamma_of prog and g2 = gamma_of prog in
    if (Shift.sample rng [| g1; g2 |]).disjoint then incr no_fence;
    let progf = Program.with_fences ~every:2 ~kind:Fence.Acquire prog in
    let g1 = gamma_of progf and g2 = gamma_of progf in
    if (Shift.sample rng [| g1; g2 |]).disjoint then incr fenced
  done;
  let p_nf = float_of_int !no_fence /. float_of_int trials in
  let p_f = float_of_int !fenced /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "fenced %.4f > unfenced %.4f" p_f p_nf) true (p_f > p_nf);
  (* fences can only push WO toward (not past) SC *)
  Alcotest.(check bool) "still at most SC" true (p_f <= 1.0 /. 6.0 +. 0.01)

let test_e13_machine_agrees_qualitatively () =
  (* canonical bug is reachable in every model on the machine; litmus corpus
     expectations all hold *)
  let vs = Litmus.check_all () in
  List.iter
    (fun (v : Litmus.verdict) ->
      if not v.agrees then Alcotest.fail (v.test ^ " machine/model disagreement"))
    vs

let test_facade_exports () =
  (* the facade must expose working aliases (compile-time mostly; spot-check
     a couple of values) *)
  Alcotest.(check bool) "rational" true (Q.equal (Q.of_ints 1 6) Manifestation.pr_a_n2_sc);
  Alcotest.(check int) "bigint" 120 (Bigint.to_int (Combinatorics.factorial 5));
  Alcotest.(check bool) "render" true (String.length (Render.figure2_paper_instance ()) > 0)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("E1: Table 1", test_e1_table1);
      ("E4: TSO window chain", test_e4_window_chain_tso);
      ("E5: Claim 4.3 chain", test_e5_claim43_chain);
      ("E7: shift chain", test_e7_shift_chain);
      ("E8: Theorem 6.2 chain", test_e8_theorem62_full_chain);
      ("E9: scaling consistency", test_e9_scaling_consistency);
      ("E11: fences reduce vulnerability", test_e11_fences_reduce_vulnerability);
      ("E13: machine corpus", test_e13_machine_agrees_qualitatively);
      ("facade exports", test_facade_exports);
    ]

let () = Alcotest.run "memrel_integration" [ ("reproduction", suite) ]
