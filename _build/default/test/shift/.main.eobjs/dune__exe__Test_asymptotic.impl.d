test/shift/test_asymptotic.ml: Alcotest Float List Memrel_prob Memrel_shift Printf
