test/shift/test_process.ml: Alcotest Array Float Gen List Memrel_prob Memrel_shift Printf QCheck QCheck_alcotest
