test/shift/main.ml: Alcotest Test_asymptotic Test_exact Test_process
