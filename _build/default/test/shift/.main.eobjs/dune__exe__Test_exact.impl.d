test/shift/test_exact.ml: Alcotest Array Float Fmt List Memrel_prob Memrel_shift Printf String
