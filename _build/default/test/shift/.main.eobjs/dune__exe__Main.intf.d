test/shift/main.mli:
