let () =
  Alcotest.run "memrel_shift"
    [
      ("process", Test_process.suite);
      ("exact", Test_exact.suite);
      ("asymptotic", Test_asymptotic.suite);
    ]
