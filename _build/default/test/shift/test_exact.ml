module E = Memrel_shift.Exact
module P = Memrel_shift.Process
module Q = Memrel_prob.Rational
module Rng = Memrel_prob.Rng

let qt = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

let test_c_values () =
  Alcotest.check qt "c(1) = 2" Q.two (E.c 1);
  Alcotest.check qt "c(2) = 8/3" (Q.of_ints 8 3) (E.c 2);
  Alcotest.check qt "c(3) = 8/3 / (7/8) = 64/21" (Q.of_ints 64 21) (E.c 3)

let test_c_range () =
  (* Corollary 5.2: c(n) in [2, 4]; also monotone increasing *)
  for n = 1 to 20 do
    Alcotest.(check bool) "c >= 2" true (Q.compare (E.c n) Q.two >= 0);
    Alcotest.(check bool) "c <= 4" true (Q.compare (E.c n) (Q.of_int 4) <= 0);
    if n > 1 then
      Alcotest.(check bool) "monotone" true (Q.compare (E.c (n - 1)) (E.c n) <= 0)
  done

let test_prefactor_consistency () =
  (* prefactor n = c(n) 2^-C(n+1,2); re-derive via the Theorem 5.1 form
     2^-(C(n+1,2)-1) / prod(1 - 2^-(n+1-i)) *)
  for n = 1 to 8 do
    let direct =
      let denom = ref Q.one in
      for i = 1 to n - 1 do
        denom := Q.mul !denom (Q.sub Q.one (Q.pow2 (-(n + 1 - i))))
      done;
      Q.div (Q.pow2 (-((n * (n + 1) / 2) - 1))) !denom
    in
    Alcotest.check qt (Printf.sprintf "n=%d" n) direct (E.prefactor n)
  done

let test_n2_closed_form () =
  for g1 = 0 to 5 do
    for g2 = 0 to 5 do
      let expected = Q.mul (Q.of_ints 1 3) (Q.add (Q.pow2 (-g1)) (Q.pow2 (-g2))) in
      Alcotest.check qt (Printf.sprintf "(%d,%d)" g1 g2) expected
        (E.disjoint_probability [| g1; g2 |])
    done
  done

let test_symmetry_in_arguments () =
  let p1 = E.disjoint_probability [| 1; 4; 2 |] in
  let p2 = E.disjoint_probability [| 4; 2; 1 |] in
  Alcotest.check qt "permutation invariant" p1 p2

let test_monotone_in_lengths () =
  (* longer segments are harder to separate *)
  let p_small = E.disjoint_probability [| 1; 1; 1 |] in
  let p_large = E.disjoint_probability [| 2; 1; 1 |] in
  Alcotest.(check bool) "monotone" true (Q.compare p_large p_small < 0)

let test_brute_force_small_n () =
  (* exact enumeration over truncated shift space with rational tail-free
     comparison: truncate at K where the tail is provably below the gap *)
  let brute gammas =
    let n = Array.length gammas in
    let k = 40 in
    let acc = ref Q.zero in
    let shifts = Array.make n 0 in
    let rec go i =
      if i = n then begin
        if P.disjoint ~shifts ~gammas then begin
          let p = ref Q.one in
          Array.iter (fun s -> p := Q.mul !p (Q.pow2 (-(s + 1)))) shifts;
          acc := Q.add !acc !p
        end
      end
      else
        for s = 0 to k do
          shifts.(i) <- s;
          go (i + 1)
        done
    in
    go 0;
    !acc
  in
  List.iter
    (fun gammas ->
      let b = Q.to_float (brute gammas) in
      let e = Q.to_float (E.disjoint_probability gammas) in
      if Float.abs (b -. e) > 1e-9 then
        Alcotest.fail
          (Printf.sprintf "[%s]: brute %.12f vs exact %.12f"
             (String.concat ";" (Array.to_list (Array.map string_of_int gammas)))
             b e))
    [ [| 0; 0 |]; [| 3; 2 |]; [| 3; 2; 5 |]; [| 0; 0; 0 |]; [| 1; 2; 3 |]; [| 2; 2; 2; 2 |] ]

let test_mc_agreement_n4 () =
  let g = [| 1; 0; 2; 1 |] in
  let exact = Q.to_float (E.disjoint_probability g) in
  let rng = Rng.create 99 in
  let est, ci = P.estimate ~trials:300_000 rng g in
  Alcotest.(check bool)
    (Printf.sprintf "exact %f in ci [%f, %f] (est %f)" exact ci.lo ci.hi est)
    true
    (ci.lo -. 0.001 <= exact && exact <= ci.hi +. 0.001)

let test_guard () =
  Alcotest.check_raises "n=9 rejected" (Invalid_argument "Shift.Exact: n must be in [1, 8]")
    (fun () -> ignore (E.disjoint_probability (Array.make 9 1)));
  Alcotest.check_raises "negative length" (Invalid_argument "Shift.Exact: negative segment length")
    (fun () -> ignore (E.disjoint_probability [| 1; -1 |]))

let test_expect_pow2 () =
  let pmf = [ (2, Q.half); (3, Q.half) ] in
  (* E[2^-k Gamma] = (2^-2k + 2^-3k)/2 *)
  Alcotest.check qt "k=1" (Q.of_ints 3 16) (E.expect_pow2 pmf ~k:1);
  Alcotest.check qt "k=0 is total mass" Q.one (E.expect_pow2 pmf ~k:0)

let test_symmetric_formula_vs_permutation_sum () =
  (* for a deterministic length the two paths must agree exactly *)
  List.iter
    (fun len ->
      let pmf = [ (len, Q.one) ] in
      for n = 2 to 6 do
        let sym = E.symmetric_disjoint_probability pmf ~n in
        let perm = E.disjoint_probability (Array.make n len) in
        Alcotest.check qt (Printf.sprintf "len=%d n=%d" len n) perm sym
      done)
    [ 0; 1; 2; 3 ]

let test_symmetric_formula_mixture () =
  (* two-point length law, n = 2: direct mixture over the four joint draws *)
  let pmf = [ (1, Q.half); (3, Q.half) ] in
  let direct =
    Q.mul (Q.of_ints 1 4)
      (Q.sum
         [ E.disjoint_probability [| 1; 1 |]; E.disjoint_probability [| 1; 3 |];
           E.disjoint_probability [| 3; 1 |]; E.disjoint_probability [| 3; 3 |] ])
  in
  Alcotest.check qt "mixture matches" direct (E.symmetric_disjoint_probability pmf ~n:2)

let test_geom_reduces_to_half () =
  List.iter
    (fun g ->
      Alcotest.check qt "q = 1/2 is the paper law" (E.disjoint_probability g)
        (E.disjoint_probability_geom ~q:Q.half g))
    [ [| 2; 2 |]; [| 3; 2; 5 |]; [| 0; 1; 2; 3 |]; [| 0; 0 |] ]

let test_geom_brute_force () =
  (* float accumulation: truncation at k = 90 leaves tails below 1e-9 even
     at q = 2/3, well under the comparison tolerance *)
  let brute q gammas =
    let qf = Q.to_float q in
    let n = Array.length gammas in
    let acc = ref 0.0 in
    let shifts = Array.make n 0 in
    let pmf = Array.init 91 (fun k -> (1.0 -. qf) *. (qf ** float_of_int k)) in
    let rec go i weight =
      if i = n then begin
        if P.disjoint ~shifts ~gammas then acc := !acc +. weight
      end
      else
        for s = 0 to 90 do
          shifts.(i) <- s;
          go (i + 1) (weight *. pmf.(s))
        done
    in
    go 0 1.0;
    !acc
  in
  List.iter
    (fun qv ->
      List.iter
        (fun g ->
          let b = brute qv g in
          let e = Q.to_float (E.disjoint_probability_geom ~q:qv g) in
          if Float.abs (b -. e) > 1e-7 then
            Alcotest.fail (Printf.sprintf "q=%s: %.9f vs %.9f" (Q.to_string qv) b e))
        [ [| 2; 2 |]; [| 1; 2; 3 |] ])
    [ Q.of_ints 1 4; Q.of_ints 1 3; Q.of_ints 2 3 ]

let test_geom_monotone_in_q () =
  (* more dispersion, fewer collisions: Pr[A] increasing in q *)
  let g = [| 2; 2; 2 |] in
  let pr q = Q.to_float (E.disjoint_probability_geom ~q g) in
  let values = List.map pr [ Q.of_ints 1 4; Q.of_ints 1 2; Q.of_ints 3 4; Q.of_ints 9 10 ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing in q" true (increasing values)

let test_geom_mc_agreement () =
  let rng = Rng.create 41 in
  let g = [| 1; 3 |] in
  let exact = Q.to_float (E.disjoint_probability_geom ~q:(Q.of_ints 7 10) g) in
  let est, ci = P.estimate_geom ~q:0.7 ~trials:200_000 rng g in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.5f in [%.5f, %.5f] (est %.5f)" exact ci.lo ci.hi est)
    true
    (ci.lo -. 0.003 <= exact && exact <= ci.hi +. 0.003)

let test_geom_symmetric_consistency () =
  let pmf = [ (1, Q.half); (3, Q.half) ] in
  let q = Q.of_ints 2 5 in
  let direct =
    Q.mul (Q.of_ints 1 4)
      (Q.sum
         [ E.disjoint_probability_geom ~q [| 1; 1 |]; E.disjoint_probability_geom ~q [| 1; 3 |];
           E.disjoint_probability_geom ~q [| 3; 1 |]; E.disjoint_probability_geom ~q [| 3; 3 |] ])
  in
  Alcotest.check qt "mixture" direct (E.symmetric_disjoint_probability_geom ~q pmf ~n:2)

let test_geom_guards () =
  Alcotest.check_raises "q = 1" (Invalid_argument "Shift.Exact: q must be strictly inside (0,1)")
    (fun () -> ignore (E.disjoint_probability_geom ~q:Q.one [| 1; 1 |]));
  Alcotest.check_raises "q = 0" (Invalid_argument "Shift.Exact: q must be strictly inside (0,1)")
    (fun () -> ignore (E.prefactor_geom ~q:Q.zero 3))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("geom: reduces to q=1/2", test_geom_reduces_to_half);
      ("geom: brute force", test_geom_brute_force);
      ("geom: monotone in q", test_geom_monotone_in_q);
      ("geom: MC agreement", test_geom_mc_agreement);
      ("geom: Theorem 6.1 mixture", test_geom_symmetric_consistency);
      ("geom: guards", test_geom_guards);
      ("c(n) values", test_c_values);
      ("c(n) in [2,4] (Cor 5.2)", test_c_range);
      ("prefactor vs Theorem 5.1 form", test_prefactor_consistency);
      ("n=2 closed form", test_n2_closed_form);
      ("argument symmetry", test_symmetry_in_arguments);
      ("monotone in lengths", test_monotone_in_lengths);
      ("brute-force agreement", test_brute_force_small_n);
      ("MC agreement n=4", test_mc_agreement_n4);
      ("guards", test_guard);
      ("expect_pow2", test_expect_pow2);
      ("Theorem 6.1 degenerate case", test_symmetric_formula_vs_permutation_sum);
      ("Theorem 6.1 mixture case", test_symmetric_formula_mixture);
    ]
