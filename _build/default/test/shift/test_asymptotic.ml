module A = Memrel_shift.Asymptotic
module E = Memrel_shift.Exact
module Q = Memrel_prob.Rational

let log2q q = Float.log (Q.to_float q) /. Float.log 2.0

let test_log2_c () =
  Alcotest.(check (float 1e-12)) "log2 c(1) = 1" 1.0 (A.log2_c 1);
  Alcotest.(check (float 1e-9)) "log2 c(2)" (log2q (E.c 2)) (A.log2_c 2);
  Alcotest.(check (float 1e-9)) "log2 c(8)" (log2q (E.c 8)) (A.log2_c 8);
  (* converges: differences shrink *)
  let d1 = A.log2_c 10 -. A.log2_c 9 and d2 = A.log2_c 20 -. A.log2_c 19 in
  Alcotest.(check bool) "converging" true (d2 < d1)

let test_log2_pr_sc_matches_exact () =
  (* the log-space SC value must equal log2 of the exact rational from the
     symmetric formula *)
  for n = 2 to 8 do
    let exact = E.symmetric_disjoint_probability [ (2, Q.one) ] ~n in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "n=%d" n)
      (Memrel_prob.Logspace.log2 (Memrel_prob.Logspace.of_rational exact))
      (A.log2_pr_sc n)
  done

let test_sc_known_small_values () =
  (* Pr[A]_SC: 1/6 at n=2, 1/224 at n=3 (computed exactly elsewhere) *)
  Alcotest.(check (float 1e-9)) "n=2" (Float.log (1.0 /. 6.0) /. Float.log 2.0) (A.log2_pr_sc 2);
  Alcotest.(check (float 1e-9)) "n=3" (Float.log (1.0 /. 224.0) /. Float.log 2.0) (A.log2_pr_sc 3)

let test_normalized_exponent_tends_to_three_halves () =
  (* Theorem 6.3: -log2 Pr / n^2 -> 3/2; by n = 200 we should be close and
     still increasing toward it from below *)
  let norm n = A.normalized_exponent ~log2_pr:(A.log2_pr_sc n) ~n in
  Alcotest.(check bool) "increasing" true (norm 10 < norm 50 && norm 50 < norm 200);
  Alcotest.(check bool) "below 3/2" true (norm 200 < 1.5);
  Alcotest.(check bool) "close to 3/2 by n=200" true (norm 200 > 1.4)

let test_floor_bound_below_sc () =
  for n = 2 to 30 do
    Alcotest.(check bool) "floor <= SC" true (A.log2_pr_floor_any_model n <= A.log2_pr_sc n)
  done;
  (* and the gap is exactly n-1 bits *)
  Alcotest.(check (float 1e-9)) "gap" 9.0 (A.log2_pr_sc 10 -. A.log2_pr_floor_any_model 10)

let test_symmetric_formula_custom_transform () =
  (* plugging the SC transform into the generic entry point reproduces SC *)
  let v = A.log2_disjoint_symmetric ~log2_expect:(fun i -> float_of_int (-2 * i)) ~n:5 in
  Alcotest.(check (float 1e-9)) "n=5" (A.log2_pr_sc 5) v

let test_guards () =
  Alcotest.check_raises "n=0" (Invalid_argument "Asymptotic.log2_c: n >= 1 required") (fun () ->
      ignore (A.log2_c 0));
  Alcotest.check_raises "normalized n=0"
    (Invalid_argument "Asymptotic.normalized_exponent: n >= 1 required") (fun () ->
      ignore (A.normalized_exponent ~log2_pr:(-1.0) ~n:0))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("log2_c", test_log2_c);
      ("log-space SC matches exact", test_log2_pr_sc_matches_exact);
      ("SC known values", test_sc_known_small_values);
      ("Theorem 6.3 normalized exponent", test_normalized_exponent_tends_to_three_halves);
      ("universal floor below SC", test_floor_bound_below_sc);
      ("generic transform entry point", test_symmetric_formula_custom_transform);
      ("guards", test_guards);
    ]
