module D = Memrel_settling.Exact_dp
module A = Memrel_settling.Analytic
module Model = Memrel_memmodel.Model
module Q = Memrel_prob.Rational

let pmf_mass pmf = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 pmf

let test_mass_one () =
  List.iter
    (fun model ->
      List.iter
        (fun m ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "%s m=%d" (Model.name model) m)
            1.0
            (pmf_mass (D.gamma_pmf model ~m)))
        [ 0; 1; 5; 10 ])
    Model.all_standard

let test_sc_point_mass () =
  let pmf = D.gamma_pmf Model.sc ~m:8 in
  Alcotest.(check (float 0.0)) "gamma=0 mass 1" 1.0 (List.assoc 0 pmf);
  Alcotest.(check (float 0.0)) "gamma=3 mass 0" 0.0 (List.assoc 3 pmf)

let test_wo_matches_closed_form () =
  (* WO's window law is program-independent, so even moderate m is already
     essentially the m -> infinity closed form (truncation error ~ 2^-m) *)
  let pmf = D.gamma_pmf (Model.wo ()) ~m:14 in
  for g = 0 to 8 do
    Alcotest.(check (float 1e-3))
      (Printf.sprintf "gamma=%d" g)
      (Q.to_float (A.b_wo g))
      (List.assoc g pmf)
  done

let test_tso_matches_series () =
  let pmf = D.gamma_pmf (Model.tso ()) ~m:16 in
  for g = 0 to 6 do
    Alcotest.(check (float 1e-4))
      (Printf.sprintf "gamma=%d" g)
      (A.b_tso_series g)
      (List.assoc g pmf)
  done

let test_tso_gamma1_is_5_21 () =
  (* independently computed exact limit value *)
  let pmf = D.gamma_pmf (Model.tso ()) ~m:16 in
  Alcotest.(check (float 1e-4)) "5/21" (5.0 /. 21.0) (List.assoc 1 pmf)

let test_convergence_in_m () =
  (* the finite-m distribution approaches the limit monotonically enough:
     distance shrinks as m grows *)
  let dist m =
    let pmf = D.gamma_pmf (Model.tso ()) ~m in
    List.fold_left
      (fun acc (g, p) -> acc +. Float.abs (p -. A.b_tso_series g))
      0.0
      (List.filteri (fun i _ -> i <= 8) pmf)
  in
  let d8 = dist 8 and d12 = dist 12 and d16 = dist 16 in
  Alcotest.(check bool)
    (Printf.sprintf "d8=%g d12=%g d16=%g decreasing" d8 d12 d16)
    true
    (d8 >= d12 && d12 >= d16)

let test_bottom_st_probability () =
  (* Claim 4.3: the exact recurrence solution at each finite i *)
  for m = 1 to 12 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "m=%d" m)
      (Q.to_float (A.st_bottom_prob m))
      (D.bottom_st_probability (Model.tso ()) ~m)
  done

let test_bottom_st_other_models () =
  (* under SC nothing moves: bottom is ST with probability exactly p *)
  Alcotest.(check (float 1e-12)) "SC p=1/2" 0.5 (D.bottom_st_probability Model.sc ~m:6);
  Alcotest.(check (float 1e-12)) "SC p=0.3" 0.3 (D.bottom_st_probability ~p:0.3 Model.sc ~m:6);
  (* under WO the settling dynamics are symmetric in LD/ST (every pair
     relaxes with the same s), so the bottom instruction is a ST with
     probability exactly p = 1/2 *)
  Alcotest.(check (float 1e-12)) "WO symmetric: exactly 1/2" 0.5
    (D.bottom_st_probability (Model.wo ()) ~m:10);
  (* PSO shares TSO's bottom dynamics: ST/ST swaps preserve the pattern *)
  Alcotest.(check (float 1e-12)) "PSO = TSO bottom-ST"
    (D.bottom_st_probability (Model.tso ()) ~m:10)
    (D.bottom_st_probability (Model.pso ()) ~m:10)

let test_p_sweep () =
  (* more stores in the program shrink TSO windows on average? no: more
     stores give the critical load more to pass, growing windows. Check
     direction: E[gamma] increasing in p under TSO. *)
  let mean_gamma p =
    List.fold_left (fun acc (g, pr) -> acc +. (float_of_int g *. pr)) 0.0
      (D.gamma_pmf ~p (Model.tso ()) ~m:12)
  in
  let g03 = mean_gamma 0.3 and g05 = mean_gamma 0.5 and g07 = mean_gamma 0.7 in
  Alcotest.(check bool)
    (Printf.sprintf "E[gamma] increasing in p: %.4f %.4f %.4f" g03 g05 g07)
    true
    (g03 < g05 && g05 < g07)

let test_expect_pow2_window () =
  let e = D.expect_pow2_window (Model.wo ()) ~m:14 ~k:1 in
  Alcotest.(check (float 1e-3)) "WO k=1 ~ 7/36" (7.0 /. 36.0) e;
  let e = D.expect_pow2_window Model.sc ~m:6 ~k:2 in
  Alcotest.(check (float 1e-12)) "SC k=2 = 2^-4" 0.0625 e

let test_claim_b2_all_matrices () =
  (* Claim B.2 — the only ingredient Theorem 6.3 needs from the settling
     side: Pr[B_0] >= 1/2 in EVERY memory model. Check it over the entire
     16-point lattice of on/off reorder matrices at s = 1/2 (each matrix a
     model in the footnote-3 sense). *)
  for mask = 0 to 15 do
    let v i = if mask land (1 lsl i) <> 0 then 0.5 else 0.0 in
    let model =
      Model.custom ~name:(Printf.sprintf "m%x" mask) ~st_st:(v 0) ~st_ld:(v 1) ~ld_st:(v 2)
        ~ld_ld:(v 3)
    in
    let pmf = D.gamma_pmf model ~m:12 in
    let b0 = List.assoc 0 pmf in
    if b0 < 0.5 -. 1e-12 then
      Alcotest.fail (Printf.sprintf "matrix %x: Pr[B_0] = %f < 1/2" mask b0)
  done

let test_random_matrix_dp_vs_mc () =
  (* the DP and the sampler implement the same process for arbitrary
     matrices, not just the named models *)
  let rng = Memrel_prob.Rng.create 51 in
  List.iter
    (fun (st_st, st_ld, ld_st, ld_ld) ->
      let model = Model.custom ~name:"rand" ~st_st ~st_ld ~ld_st ~ld_ld in
      let dp = D.gamma_pmf model ~m:12 in
      let mc = Memrel_settling.Mc.estimate ~m:12 ~trials:30_000 model rng in
      for g = 0 to 2 do
        let d = List.assoc g dp in
        let m = try List.assoc g mc.gamma_pmf with Not_found -> 0.0 in
        if Float.abs (d -. m) > 0.015 then
          Alcotest.fail (Printf.sprintf "gamma=%d: dp %f vs mc %f" g d m)
      done)
    [ (0.25, 0.75, 0.1, 0.5); (0.9, 0.2, 0.4, 0.0); (0.0, 0.33, 0.0, 0.66) ]

let test_guards () =
  Alcotest.check_raises "m too big" (Invalid_argument "Exact_dp: m out of [0, max_m]") (fun () ->
      ignore (D.gamma_pmf Model.sc ~m:(D.max_m + 1)));
  Alcotest.check_raises "negative m" (Invalid_argument "Exact_dp: m out of [0, max_m]") (fun () ->
      ignore (D.gamma_pmf Model.sc ~m:(-1)))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("mass one", test_mass_one);
      ("SC point mass", test_sc_point_mass);
      ("WO matches closed form", test_wo_matches_closed_form);
      ("TSO matches exact series", test_tso_matches_series);
      ("TSO gamma=1 is 5/21", test_tso_gamma1_is_5_21);
      ("convergence in m", test_convergence_in_m);
      ("Claim 4.3 at finite m", test_bottom_st_probability);
      ("bottom ST under SC/WO", test_bottom_st_other_models);
      ("p sweep direction", test_p_sweep);
      ("window transform", test_expect_pow2_window);
      ("Claim B.2 across all 16 matrices", test_claim_b2_all_matrices);
      ("random matrices: DP vs MC", test_random_matrix_dp_vs_mc);
      ("guards", test_guards);
    ]
