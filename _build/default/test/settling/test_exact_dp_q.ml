module DQ = Memrel_settling.Exact_dp_q
module D = Memrel_settling.Exact_dp
module A = Memrel_settling.Analytic
module Model = Memrel_memmodel.Model
module Q = Memrel_prob.Rational

let qt = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

let test_mass_exactly_one () =
  (* a rational identity, not an approximation *)
  List.iter
    (fun matrix ->
      List.iter
        (fun m ->
          let mass = Q.sum (List.map snd (DQ.gamma_pmf matrix ~m)) in
          Alcotest.check qt (Printf.sprintf "m=%d" m) Q.one mass)
        [ 0; 1; 4; 8 ])
    [ DQ.sc; DQ.tso (); DQ.pso (); DQ.wo () ]

let test_tso_m1_by_hand () =
  (* prefix is one instruction: 'S' w.p. 1/2 (the critical LD then passes it
     w.p. 1/2) or 'L' (no movement). Pr[B_0] = 3/4, Pr[B_1] = 1/4. *)
  let pmf = DQ.gamma_pmf (DQ.tso ()) ~m:1 in
  Alcotest.check qt "B0" (Q.of_ints 3 4) (List.assoc 0 pmf);
  Alcotest.check qt "B1" (Q.of_ints 1 4) (List.assoc 1 pmf)

let test_wo_m1_by_hand () =
  (* WO, m = 1: prefix X; critical LD climbs past X w.p. 1/2; if it did
     (gamma-candidate 1), the critical ST climbs past X w.p. 1/2 too,
     re-closing the window. Pr[B_1] = 1/2 * 1/2 = 1/4, Pr[B_0] = 3/4. *)
  let pmf = DQ.gamma_pmf (DQ.wo ()) ~m:1 in
  Alcotest.check qt "B0" (Q.of_ints 3 4) (List.assoc 0 pmf);
  Alcotest.check qt "B1" (Q.of_ints 1 4) (List.assoc 1 pmf)

let test_sc_point_mass () =
  let pmf = DQ.gamma_pmf DQ.sc ~m:6 in
  Alcotest.check qt "all mass at 0" Q.one (List.assoc 0 pmf)

let test_matches_float_dp () =
  List.iter
    (fun (matrix, model) ->
      let qpmf = DQ.gamma_pmf matrix ~m:10 in
      let fpmf = D.gamma_pmf model ~m:10 in
      List.iter2
        (fun (g1, q) (g2, f) ->
          Alcotest.(check int) "aligned" g1 g2;
          Alcotest.(check (float 1e-13)) (Printf.sprintf "g=%d" g1) f (Q.to_float q))
        qpmf fpmf)
    [ (DQ.tso (), Model.tso ()); (DQ.pso (), Model.pso ()); (DQ.wo (), Model.wo ()) ]

let test_claim43_rational_identity () =
  (* Exact_dp_q at finite m equals the closed recurrence solution as a
     rational identity *)
  for m = 1 to 10 do
    Alcotest.check qt (Printf.sprintf "m=%d" m) (A.st_bottom_prob m)
      (DQ.bottom_st_probability (DQ.tso ()) ~m)
  done

let test_of_model_lossless () =
  let matrix = DQ.of_model (Model.tso ~s:0.375 ()) in
  let pmf = DQ.gamma_pmf matrix ~m:8 in
  let fpmf = D.gamma_pmf (Model.tso ~s:0.375 ()) ~m:8 in
  List.iter2
    (fun (_, q) (_, f) -> Alcotest.(check (float 1e-13)) "dyadic lift" f (Q.to_float q))
    pmf fpmf

let test_general_s_exact () =
  (* s = 1/3: non-dyadic rationals exercise the gcd paths; mass still 1 *)
  let matrix = DQ.wo ~s:(Q.of_ints 1 3) () in
  let pmf = DQ.gamma_pmf ~p:(Q.of_ints 1 3) matrix ~m:7 in
  Alcotest.check qt "mass" Q.one (Q.sum (List.map snd pmf));
  (* and matches the generalized closed form as m grows *)
  let wo_closed g = Memrel_settling.Analytic_general.b_wo ~s:(1.0 /. 3.0) g in
  List.iter
    (fun g ->
      Alcotest.(check (float 2e-3)) (Printf.sprintf "g=%d" g) (wo_closed g)
        (Q.to_float (List.assoc g pmf)))
    [ 0; 1; 2 ]

let test_guards () =
  Alcotest.check_raises "m cap" (Invalid_argument "Exact_dp_q: m out of [0, max_m]") (fun () ->
      ignore (DQ.gamma_pmf DQ.sc ~m:(DQ.max_m + 1)));
  Alcotest.check_raises "bad entry" (Invalid_argument "Exact_dp_q: st_ld out of [0,1]") (fun () ->
      ignore (DQ.tso ~s:(Q.of_int 2) ()))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("mass exactly one", test_mass_exactly_one);
      ("TSO m=1 by hand", test_tso_m1_by_hand);
      ("WO m=1 by hand", test_wo_m1_by_hand);
      ("SC point mass", test_sc_point_mass);
      ("matches float DP", test_matches_float_dp);
      ("Claim 4.3 as rational identity", test_claim43_rational_identity);
      ("of_model lossless", test_of_model_lossless);
      ("non-dyadic parameters", test_general_s_exact);
      ("guards", test_guards);
    ]
