module Settle = Memrel_settling.Settle
module Program = Memrel_settling.Program
module Window = Memrel_settling.Window
module Op = Memrel_memmodel.Op
module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence
module Rng = Memrel_prob.Rng

let test_sc_is_identity () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let prog = Program.generate rng ~m:20 in
    let pi = Settle.run Model.sc rng prog in
    Alcotest.(check (array int)) "SC never reorders" (Array.init 22 (fun i -> i)) pi
  done

let test_permutation_validity () =
  let rng = Rng.create 2 in
  List.iter
    (fun model ->
      for _ = 1 to 50 do
        let prog = Program.generate rng ~m:30 in
        let pi = Settle.run model rng prog in
        Alcotest.(check bool) (Model.name model ^ " valid perm") true
          (Settle.is_valid_permutation pi)
      done)
    Model.all_standard

let test_critical_store_never_passes_load () =
  let rng = Rng.create 3 in
  List.iter
    (fun model ->
      for _ = 1 to 200 do
        let prog = Program.generate rng ~m:20 in
        let pi = Settle.run model rng prog in
        let lp = pi.(Program.critical_load_index prog)
        and sp = pi.(Program.critical_store_index prog) in
        if sp <= lp then Alcotest.fail (Model.name model ^ ": store passed load")
      done)
    Model.all_standard

let test_tso_only_loads_move () =
  (* under TSO a ST's final position can only be >= its initial position
     (pushed down by loads passing it), never above anything it preceded *)
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let prog = Program.generate rng ~m:20 in
    let pi = Settle.run (Model.tso ()) rng prog in
    for i = 0 to Program.length prog - 1 do
      match Op.kind_of (Program.op prog i) with
      | Some Op.ST -> if pi.(i) < i then Alcotest.fail "ST moved up under TSO"
      | _ -> ()
    done
  done

let test_tso_relative_order_preserved_among_sts () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let prog = Program.generate rng ~m:20 in
    let pi = Settle.run (Model.tso ()) rng prog in
    let st_positions =
      List.filter_map
        (fun i ->
          match Op.kind_of (Program.op prog i) with Some Op.ST -> Some pi.(i) | _ -> None)
        (List.init (Program.length prog) Fun.id)
    in
    if not (List.sort compare st_positions = st_positions) then
      Alcotest.fail "ST/ST order broken under TSO"
  done

let test_pso_preserves_loads_order () =
  (* PSO relaxes ST/ST and ST/LD but never lets a ST pass a LD, nor LD pass LD *)
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let prog = Program.generate rng ~m:20 in
    let pi = Settle.run (Model.pso ()) rng prog in
    let ld_positions =
      List.filter_map
        (fun i ->
          match Op.kind_of (Program.op prog i) with Some Op.LD -> Some pi.(i) | _ -> None)
        (List.init (Program.length prog) Fun.id)
    in
    if not (List.sort compare ld_positions = ld_positions) then
      Alcotest.fail "LD/LD order broken under PSO"
  done

let test_deterministic_under_seed () =
  let prog = Program.of_kinds [ Op.ST; Op.LD; Op.ST; Op.ST; Op.LD ] in
  let run () = Settle.run (Model.wo ()) (Rng.create 99) prog in
  Alcotest.(check (array int)) "same seed same permutation" (run ()) (run ())

let test_swap_probability_rules () =
  let tso = Model.tso () in
  Alcotest.(check (float 0.0)) "TSO: LD over ST" 0.5
    (Settle.swap_probability tso ~earlier:(Op.plain Op.ST) ~later:(Op.plain Op.LD));
  Alcotest.(check (float 0.0)) "TSO: ST over ST" 0.0
    (Settle.swap_probability tso ~earlier:(Op.plain Op.ST) ~later:(Op.plain Op.ST));
  Alcotest.(check (float 0.0)) "critical pair same location" 0.0
    (Settle.swap_probability (Model.wo ()) ~earlier:Op.critical_load ~later:Op.critical_store);
  Alcotest.(check (float 0.0)) "fence never settles" 0.0
    (Settle.swap_probability (Model.wo ()) ~earlier:(Op.plain Op.LD) ~later:(Op.fence Fence.Release));
  Alcotest.(check (float 0.0)) "acquire blocks passers" 0.0
    (Settle.swap_probability (Model.wo ()) ~earlier:(Op.fence Fence.Acquire) ~later:(Op.plain Op.LD));
  Alcotest.(check (float 0.0)) "release lets passers through at s" 0.5
    (Settle.swap_probability (Model.wo ()) ~earlier:(Op.fence Fence.Release) ~later:(Op.plain Op.LD))

let test_fences_stay_put () =
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let prog =
      Program.with_fences ~every:3 ~kind:Fence.Acquire (Program.generate rng ~m:12)
    in
    let pi = Settle.run (Model.wo ()) rng prog in
    for i = 0 to Program.length prog - 1 do
      if Op.is_fence (Program.op prog i) then begin
        (* a fence can be pushed down by settlers from below but never rises *)
        if pi.(i) < i then Alcotest.fail "fence moved up"
      end
    done
  done

let test_acquire_fence_blocks_window () =
  (* an acquire fence directly above the critical load pins it: gamma = 0 *)
  let prog =
    Program.of_ops
      [ Op.plain Op.ST; Op.plain Op.ST; Op.fence Fence.Acquire; Op.critical_load;
        Op.critical_store ]
  in
  let rng = Rng.create 8 in
  for _ = 1 to 100 do
    let pi = Settle.run (Model.wo ()) rng prog in
    Alcotest.(check int) "gamma pinned to 0" 0 (Window.gamma prog pi)
  done

let test_traced_consistency () =
  let rng = Rng.create 9 in
  let prog = Program.generate rng ~m:10 in
  let rng_a = Rng.create 55 and rng_b = Rng.create 55 in
  let pi = Settle.run (Model.tso ()) rng_a prog in
  let pi_traced, snaps = Settle.run_traced (Model.tso ()) rng_b prog in
  Alcotest.(check (array int)) "traced permutation identical" pi pi_traced;
  Alcotest.(check int) "one snapshot per round" (Program.length prog - 1) (List.length snaps);
  (* each snapshot's order is a permutation of the program *)
  List.iter
    (fun (s : Settle.snapshot) ->
      let chars = Array.map Op.to_char s.order in
      let expected = Array.init (Program.length prog) (fun i -> Op.to_char (Program.op prog i)) in
      Array.sort compare chars;
      Array.sort compare expected;
      Alcotest.(check (array char)) "snapshot multiset" expected chars;
      Alcotest.(check bool) "stop <= start" true (s.stop_pos <= s.start_pos))
    snaps;
  (* the last snapshot equals the final order *)
  let last = List.nth snaps (List.length snaps - 1) in
  Alcotest.(check (array char)) "final order"
    (Array.map Op.to_char (Settle.final_order prog pi))
    (Array.map Op.to_char last.order)

let test_final_order_roundtrip () =
  let rng = Rng.create 10 in
  let prog = Program.generate rng ~m:15 in
  let pi = Settle.run (Model.wo ()) rng prog in
  let order = Settle.final_order prog pi in
  Array.iteri (fun init pos -> Alcotest.(check char) "op placed at pi(i)"
      (Op.to_char (Program.op prog init)) (Op.to_char order.(pos))) pi

(* property: permutations only ever move instructions up (settling is an
   upward process), i.e. pi(i) <= i for every instruction *)
let prop_moves_up =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"settling only moves instructions up relative to the tail"
       ~count:200
       QCheck.(pair (int_range 0 10000) (int_range 0 25))
       (fun (seed, m) ->
         let rng = Rng.create seed in
         let prog = Program.generate rng ~m in
         let model = List.nth Model.all_standard (seed mod 4) in
         let pi = Settle.run model rng prog in
         (* an instruction can be pushed down only by later-settling
            instructions that passed it; the LAST instruction can never be
            pushed down *)
         Settle.is_valid_permutation pi
         && pi.(Program.length prog - 1) <= Program.length prog - 1))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("SC is the identity", test_sc_is_identity);
      ("permutations valid", test_permutation_validity);
      ("critical store never passes critical load", test_critical_store_never_passes_load);
      ("TSO: stores never rise", test_tso_only_loads_move);
      ("TSO: ST/ST order preserved", test_tso_relative_order_preserved_among_sts);
      ("PSO: LD/LD order preserved", test_pso_preserves_loads_order);
      ("deterministic under seed", test_deterministic_under_seed);
      ("swap probability rules", test_swap_probability_rules);
      ("fences stay put", test_fences_stay_put);
      ("acquire fence pins the window", test_acquire_fence_blocks_window);
      ("traced run consistent", test_traced_consistency);
      ("final_order roundtrip", test_final_order_roundtrip);
    ]
  @ [ prop_moves_up ]
