module V = Memrel_settling.Verified
module A = Memrel_settling.Analytic
module I = Memrel_prob.Interval
module Q = Memrel_prob.Rational

(* smaller cutoffs than the defaults keep the suite fast; widths stay far
   below the gaps being certified *)
let q_max = 40
let mu_max = 40
let gamma_max = 40

let test_l_mu_encloses_float_series () =
  for mu = 0 to 8 do
    let e = V.l_mu ~q_max mu in
    let f = A.l_mu_series mu in
    Alcotest.(check bool)
      (Printf.sprintf "mu=%d: %g in [%g, %g]" mu f (Q.to_float e.lo) (Q.to_float e.hi))
      true
      (Q.to_float e.lo -. 1e-12 <= f && f <= Q.to_float e.hi +. 1e-12)
  done

let test_l_mu_tight () =
  for mu = 1 to 8 do
    Alcotest.(check bool) "width tiny" true
      (Q.compare (V.width (V.l_mu ~q_max mu)) (Q.of_ints 1 1_000_000) < 0)
  done

let test_l_mu_above_paper_bound () =
  (* rigorous version of Lemma 4.2. At mu = 1 the paper's bound is exactly
     tight — Pr[L_1] = 2/7 = (4/7) 2^-1 — so the truncated lower end sits a
     hair below it; certify the bound there up to the enclosure width. For
     mu >= 2 the enclosure's LOWER end strictly beats the bound. *)
  let e1 = V.l_mu ~q_max 1 in
  let bound1 = Q.of_ints 2 7 in
  Alcotest.(check bool) "mu=1 tight" true
    (Q.compare e1.hi bound1 >= 0
     && Q.compare (Q.sub bound1 e1.lo) (V.width e1) <= 0);
  for mu = 2 to 10 do
    let e = V.l_mu ~q_max mu in
    let bound = Q.mul (Q.of_ints 4 7) (Q.pow2 (-mu)) in
    Alcotest.(check bool) (Printf.sprintf "mu=%d strict" mu) true (Q.compare e.lo bound > 0)
  done

let test_b_tso_encloses_float_series () =
  for gamma = 0 to 6 do
    let e = V.b_tso ~q_max ~mu_max gamma in
    let f = A.b_tso_series gamma in
    Alcotest.(check bool)
      (Printf.sprintf "gamma=%d" gamma)
      true
      (Q.to_float e.lo -. 1e-12 <= f && f <= Q.to_float e.hi +. 1e-12)
  done

let test_b_tso_within_paper_bounds () =
  (* rigorous Theorem 4.1: the enclosure sits inside [lower, upper] *)
  for gamma = 1 to 8 do
    let e = V.b_tso ~q_max ~mu_max gamma in
    Alcotest.(check bool)
      (Printf.sprintf "gamma=%d" gamma)
      true
      (Q.compare (A.b_tso_lower gamma) e.lo <= 0 && Q.compare e.hi (A.b_tso_upper gamma) <= 0)
  done

let test_theorem_6_2_verified () =
  let e = V.pr_a_tso_n2 ~q_max ~mu_max ~gamma_max () in
  let paper_lo = Q.of_ints 58 441 in
  let paper_hi = Q.add paper_lo (Q.of_ints 1 189) in
  Alcotest.(check bool) "strictly inside the paper's open bracket" true
    (Q.compare paper_lo e.lo < 0 && Q.compare e.hi paper_hi < 0);
  Alcotest.(check bool) "width below 1e-9" true
    (Q.compare (V.width e) (Q.of_ints 1 1_000_000_000) < 0);
  (* and the float series sits inside the certified interval *)
  let f = Memrel_interleave.Analytic.pr_a_n2_tso_series () in
  Alcotest.(check bool) "float value inside" true
    (Q.to_float e.lo -. 1e-12 <= f && f <= Q.to_float e.hi +. 1e-12)

let test_to_interval () =
  let e = V.b_tso ~q_max ~mu_max 1 in
  let i = V.to_interval e in
  Alcotest.(check bool) "float view contains rational view" true
    (I.contains i (Q.to_float e.lo) && I.contains i (Q.to_float e.hi))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("L_mu encloses the float series", test_l_mu_encloses_float_series);
      ("L_mu widths tiny", test_l_mu_tight);
      ("Lemma 4.2, rigorous", test_l_mu_above_paper_bound);
      ("B_gamma encloses the float series", test_b_tso_encloses_float_series);
      ("Theorem 4.1 bounds, rigorous", test_b_tso_within_paper_bounds);
      ("Theorem 6.2 TSO bracket, machine-verified", test_theorem_6_2_verified);
      ("interval view", test_to_interval);
    ]
