module Program = Memrel_settling.Program
module Op = Memrel_memmodel.Op
module Fence = Memrel_memmodel.Fence
module Rng = Memrel_prob.Rng

let test_generate_shape () =
  let rng = Rng.create 1 in
  let p = Program.generate rng ~m:10 in
  Alcotest.(check int) "length" 12 (Program.length p);
  Alcotest.(check int) "prefix" 10 (Program.prefix_length p);
  Alcotest.(check int) "cl index" 10 (Program.critical_load_index p);
  Alcotest.(check int) "cs index" 11 (Program.critical_store_index p);
  Alcotest.(check bool) "cl op" true (Op.is_critical_load (Program.op p 10));
  Alcotest.(check bool) "cs op" true (Op.is_critical_store (Program.op p 11));
  for i = 0 to 9 do
    Alcotest.(check bool) "prefix plain" false (Op.is_critical (Program.op p i))
  done

let test_generate_zero_m () =
  let rng = Rng.create 1 in
  let p = Program.generate rng ~m:0 in
  Alcotest.(check int) "just critical pair" 2 (Program.length p);
  Alcotest.(check string) "rendering" "ls" (Program.to_string p)

let test_generate_p_extremes () =
  let rng = Rng.create 2 in
  let all_st = Program.generate ~p:1.0 rng ~m:20 in
  for i = 0 to 19 do
    Alcotest.(check bool) "p=1 all ST" true (Op.kind_of (Program.op all_st i) = Some Op.ST)
  done;
  let all_ld = Program.generate ~p:0.0 rng ~m:20 in
  for i = 0 to 19 do
    Alcotest.(check bool) "p=0 all LD" true (Op.kind_of (Program.op all_ld i) = Some Op.LD)
  done

let test_generate_st_fraction () =
  let rng = Rng.create 3 in
  let count = ref 0 in
  let trials = 2000 and m = 50 in
  for _ = 1 to trials do
    let p = Program.generate ~p:0.3 rng ~m in
    for i = 0 to m - 1 do
      if Op.kind_of (Program.op p i) = Some Op.ST then incr count
    done
  done;
  Alcotest.(check (float 0.01)) "ST fraction ~ p" 0.3
    (float_of_int !count /. float_of_int (trials * m))

let test_invalid_args () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "m < 0" (Invalid_argument "Program.generate: m < 0") (fun () ->
      ignore (Program.generate rng ~m:(-1)));
  Alcotest.check_raises "p > 1" (Invalid_argument "Program.generate: p out of [0,1]") (fun () ->
      ignore (Program.generate ~p:1.5 rng ~m:3))

let test_of_kinds () =
  let p = Program.of_kinds [ Op.ST; Op.LD; Op.ST ] in
  Alcotest.(check string) "rendering" "SLSls" (Program.to_string p);
  Alcotest.(check int) "cl" 3 (Program.critical_load_index p)

let test_of_ops_validation () =
  Alcotest.check_raises "missing criticals" (Invalid_argument "Program: missing critical instruction")
    (fun () -> ignore (Program.of_ops [ Op.plain Op.LD ]));
  Alcotest.check_raises "store before load"
    (Invalid_argument "Program: critical load must precede critical store") (fun () ->
      ignore (Program.of_ops [ Op.critical_store; Op.critical_load ]));
  Alcotest.check_raises "duplicate load" (Invalid_argument "Program: duplicate critical load")
    (fun () ->
      ignore (Program.of_ops [ Op.critical_load; Op.critical_load; Op.critical_store ]))

let test_with_fences () =
  let p = Program.of_kinds [ Op.ST; Op.LD; Op.ST; Op.LD ] in
  let f = Program.with_fences ~every:2 ~kind:Fence.Release p in
  Alcotest.(check string) "fences every 2 prefix ops" "SLRSLRls" (Program.to_string f);
  Alcotest.(check int) "cl index moved" 6 (Program.critical_load_index f);
  Alcotest.check_raises "every < 1" (Invalid_argument "Program.with_fences: every < 1") (fun () ->
      ignore (Program.with_fences ~every:0 ~kind:Fence.Full p))

let test_ops_copy_is_fresh () =
  let p = Program.of_kinds [ Op.ST ] in
  let a = Program.ops p in
  a.(0) <- Op.plain Op.LD;
  Alcotest.(check string) "mutation does not leak" "Sls" (Program.to_string p)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("generate shape", test_generate_shape);
      ("generate m=0", test_generate_zero_m);
      ("p extremes", test_generate_p_extremes);
      ("ST fraction matches p", test_generate_st_fraction);
      ("invalid arguments", test_invalid_args);
      ("of_kinds", test_of_kinds);
      ("of_ops validation", test_of_ops_validation);
      ("with_fences", test_with_fences);
      ("ops returns a copy", test_ops_copy_is_fresh);
    ]
