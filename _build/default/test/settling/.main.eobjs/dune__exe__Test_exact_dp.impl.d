test/settling/test_exact_dp.ml: Alcotest Float List Memrel_memmodel Memrel_prob Memrel_settling Printf
