test/settling/test_settle.ml: Alcotest Array Fun List Memrel_memmodel Memrel_prob Memrel_settling QCheck QCheck_alcotest
