test/settling/test_verified.ml: Alcotest List Memrel_interleave Memrel_prob Memrel_settling Printf
