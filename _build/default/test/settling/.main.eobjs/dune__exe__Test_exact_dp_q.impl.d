test/settling/test_exact_dp_q.ml: Alcotest Fmt List Memrel_memmodel Memrel_prob Memrel_settling Printf
