test/settling/test_analytic.ml: Alcotest Float Fmt Fun List Memrel_prob Memrel_settling Printf
