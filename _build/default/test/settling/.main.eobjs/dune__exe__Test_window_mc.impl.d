test/settling/test_window_mc.ml: Alcotest Array Float Hashtbl List Memrel_memmodel Memrel_prob Memrel_settling Printf
