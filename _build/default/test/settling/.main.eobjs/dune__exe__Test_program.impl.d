test/settling/test_program.ml: Alcotest Array List Memrel_memmodel Memrel_prob Memrel_settling
