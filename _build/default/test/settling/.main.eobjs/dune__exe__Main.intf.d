test/settling/main.mli:
