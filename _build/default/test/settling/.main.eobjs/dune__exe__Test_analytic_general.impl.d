test/settling/test_analytic_general.ml: Alcotest Array Float List Memrel_interleave Memrel_memmodel Memrel_prob Memrel_settling Printf
