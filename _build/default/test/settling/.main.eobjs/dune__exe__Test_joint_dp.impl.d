test/settling/test_joint_dp.ml: Alcotest Array Float List Memrel_memmodel Memrel_prob Memrel_settling Printf
