module A = Memrel_settling.Analytic
module Q = Memrel_prob.Rational

let qt = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

let test_theorem41_sc () =
  Alcotest.check qt "gamma=0" Q.one (A.b_sc 0);
  Alcotest.check qt "gamma=1" Q.zero (A.b_sc 1);
  Alcotest.check qt "gamma=7" Q.zero (A.b_sc 7)

let test_theorem41_wo () =
  Alcotest.check qt "gamma=0 is 2/3" (Q.of_ints 2 3) (A.b_wo 0);
  Alcotest.check qt "gamma=1 is 1/6" (Q.of_ints 1 6) (A.b_wo 1);
  Alcotest.check qt "gamma=3 is 2^-3/3" (Q.of_ints 1 24) (A.b_wo 3);
  (* total mass: 2/3 + sum 2^-g/3 = 2/3 + 1/3 = 1 *)
  let mass = List.fold_left (fun acc g -> Q.add acc (A.b_wo g)) Q.zero (List.init 60 Fun.id) in
  Alcotest.(check bool) "mass approaches 1" true
    (Q.compare mass (Q.of_ints 99999 100000) > 0 && Q.compare mass Q.one <= 0)

let test_theorem41_tso_bounds () =
  Alcotest.check qt "lower gamma=0" (Q.of_ints 2 3) (A.b_tso_lower 0);
  Alcotest.check qt "lower gamma=1 is 6/28" (Q.of_ints 3 14) (A.b_tso_lower 1);
  Alcotest.check qt "upper gamma=1 adds (2/21)/2" (Q.add (Q.of_ints 3 14) (Q.of_ints 1 21))
    (A.b_tso_upper 1);
  for g = 1 to 12 do
    Alcotest.(check bool) "lower <= upper" true (Q.compare (A.b_tso_lower g) (A.b_tso_upper g) <= 0)
  done

let test_tso_series_within_bounds () =
  for g = 0 to 10 do
    let s = A.b_tso_series g in
    let lo = Q.to_float (A.b_tso_lower g) and hi = Q.to_float (A.b_tso_upper g) in
    if not (s >= lo -. 1e-12 && s <= hi +. 1e-12) then
      Alcotest.fail (Printf.sprintf "series at gamma=%d (%f) outside [%f, %f]" g s lo hi)
  done

let test_tso_series_known_values () =
  (* cross-validated against the exact finite-m DP: gamma=1 is 5/21 *)
  Alcotest.(check (float 1e-9)) "gamma=1 = 5/21" (5.0 /. 21.0) (A.b_tso_series 1);
  Alcotest.(check (float 1e-9)) "gamma=0 = 2/3" (2.0 /. 3.0) (A.b_tso_series 0)

let test_tso_series_mass () =
  let mass = ref 0.0 in
  for g = 0 to 40 do
    mass := !mass +. A.b_tso_series g
  done;
  Alcotest.(check (float 1e-6)) "sums to 1" 1.0 !mass

let test_claim43 () =
  Alcotest.check qt "i=1 gives 1/2" Q.half (A.st_bottom_prob 1);
  Alcotest.check qt "i=2 gives 5/8: 1/2 + 1/2*1/2*1/2" (Q.of_ints 5 8) (A.st_bottom_prob 2);
  (* recurrence X_i = 1/2 + X_{i-1}/4 must hold *)
  for i = 2 to 20 do
    Alcotest.check qt
      (Printf.sprintf "recurrence at %d" i)
      (Q.add Q.half (Q.div (A.st_bottom_prob (i - 1)) (Q.of_int 4)))
      (A.st_bottom_prob i)
  done;
  (* convergence to 2/3 *)
  let d = Q.to_float (Q.sub A.st_bottom_limit (A.st_bottom_prob 30)) in
  Alcotest.(check bool) "converges to 2/3" true (Float.abs d < 1e-15)

let test_lemma42_h () =
  Alcotest.check qt "h(1) = 4/7" (Q.of_ints 4 7) (A.h 1);
  (* h increasing in mu *)
  for mu = 1 to 20 do
    Alcotest.(check bool) "h increasing" true (Q.compare (A.h mu) (A.h (mu + 1)) <= 0)
  done;
  (* h bounded above by its limit 8/7 - 1 + 2/3 = 17/21 *)
  Alcotest.(check bool) "h < 17/21" true (Q.compare (A.h 30) (Q.of_ints 17 21) < 0)

let test_lemma42_lower_bound () =
  Alcotest.check qt "L0 = 1/3" (Q.of_ints 1 3) A.l0;
  Alcotest.check qt "lower bound at mu=1 is (4/7)/2" (Q.of_ints 2 7) (A.l_mu_lower 1);
  (* paper's weaker statement Pr[L_mu] >= (4/7) 2^-mu *)
  for mu = 1 to 15 do
    Alcotest.(check bool) "h-bound dominates 4/7 bound" true
      (Q.compare (A.l_mu_lower mu) (Q.mul (Q.of_ints 4 7) (Q.pow2 (-mu))) >= 0)
  done

let test_lemma42_series_dominates_bound () =
  for mu = 1 to 10 do
    let series = A.l_mu_series mu in
    let bound = Q.to_float (A.l_mu_lower mu) in
    if series < bound -. 1e-12 then
      Alcotest.fail (Printf.sprintf "series Pr[L_%d] = %g below its lower bound %g" mu series bound)
  done

let test_lemma42_mass () =
  (* claim B.1: the lower bounds leave exactly R = 2/21 unattributed *)
  Alcotest.check qt "R = 2/21" (Q.of_ints 2 21) A.remainder_mass;
  (* the paper's Pr_l[L_mu] uses the uniform h(1) = 4/7 bound (Step 5) *)
  let bound_mass =
    Q.add A.l0
      (Q.sum (List.init 60 (fun i -> Q.mul (Q.of_ints 4 7) (Q.pow2 (-(i + 1))))))
  in
  Alcotest.(check (float 1e-9)) "1 - sum of bounds = R" (Q.to_float A.remainder_mass)
    (1.0 -. Q.to_float bound_mass);
  (* the exact series attributes all mass *)
  let series_mass =
    Q.to_float A.l0 +. List.fold_left (fun acc mu -> acc +. A.l_mu_series mu) 0.0
                         (List.init 60 (fun i -> i + 1))
  in
  Alcotest.(check (float 1e-9)) "series sums to 1" 1.0 series_mass

let test_psi_pmf () =
  (* Pr[Psi_mu = q] = 2^-(mu+q) C(mu+q-1, q) sums to 1 over q *)
  List.iter
    (fun mu ->
      let mass = Q.sum (List.init 200 (fun q -> A.psi_pmf ~mu ~q)) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "mass mu=%d" mu) 1.0 (Q.to_float mass))
    [ 1; 2; 3; 5 ];
  Alcotest.check qt "mu=1 q=0" Q.half (A.psi_pmf ~mu:1 ~q:0);
  Alcotest.check qt "mu=2 q=1: 2^-3 * C(2,1)" (Q.of_ints 1 4) (A.psi_pmf ~mu:2 ~q:1)

let test_f_mu_given_q () =
  (* q = 0: nothing to clear *)
  Alcotest.(check (float 0.0)) "q=0" 1.0 (A.f_mu_given_q ~mu:3 ~q:0);
  (* mu = 1: single ST above each LD; all q LDs clear independently: 2^-q *)
  for q = 1 to 8 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "mu=1 q=%d" q)
      (Float.pow 0.5 (float_of_int q))
      (A.f_mu_given_q ~mu:1 ~q)
  done;
  (* claim 4.4: exact value dominates the partition lower bound *)
  for mu = 1 to 6 do
    for q = 1 to 6 do
      let exact = A.f_mu_given_q ~mu ~q in
      let lower = Q.to_float (A.f_mu_given_q_lower ~mu ~q) in
      if exact < lower -. 1e-12 then
        Alcotest.fail (Printf.sprintf "claim 4.4 violated at mu=%d q=%d" mu q)
    done
  done

let test_f_mu_brute_force () =
  (* enumerate all arrangements of q LDs below mu STs (uniform, ST on top)
     and average 2^-Delta directly *)
  let brute mu q =
    (* choose for each LD how many STs are above it: c_j in [1..mu],
       multiset; enumerate nondecreasing vectors *)
    let total = ref 0.0 and count = ref 0 in
    let rec go j lo acc =
      if j = q then begin
        total := !total +. Float.pow 2.0 (float_of_int (-acc));
        incr count
      end
      else
        for c = lo to mu do
          go (j + 1) c (acc + c)
        done
    in
    go 0 1 0;
    (* arrangements are uniform over C(mu+q-1, q); multisets are not
       equiprobable arrangements — weight each multiset by its multiplicity.
       Easier: enumerate ordered vectors instead. *)
    ignore !count;
    !total
  in
  ignore brute;
  (* ordered enumeration: each LD independently has some number of STs above
     it, but orderings of LDs are indistinct; enumerate arrangements as
     bitstrings: mu STs and q LDs with a ST first. Delta = per-LD count of
     STs above. *)
  let brute_arrangements mu q =
    let n = mu + q - 1 in
    (* strings after the leading ST: choose positions of the q LDs *)
    let total = ref 0.0 and count = ref 0 in
    let rec go idx st_seen lds_left delta =
      if idx = n then begin
        if lds_left = 0 then begin
          total := !total +. Float.pow 2.0 (float_of_int (-delta));
          incr count
        end
      end
      else begin
        (* place a ST *)
        if st_seen + 1 <= mu - 1 then go (idx + 1) (st_seen + 1) lds_left delta;
        (* place a LD: it has (1 + st_seen) STs above it *)
        if lds_left > 0 then go (idx + 1) st_seen (lds_left - 1) (delta + 1 + st_seen)
      end
    in
    go 0 0 q 0;
    !total /. float_of_int !count
  in
  for mu = 1 to 5 do
    for q = 1 to 5 do
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "mu=%d q=%d" mu q)
        (brute_arrangements mu q)
        (A.f_mu_given_q ~mu ~q)
    done
  done

let test_window_pmf () =
  let pmf = A.window_pmf `WO ~gamma_max:5 in
  Alcotest.(check int) "length" 6 (List.length pmf);
  Alcotest.(check (float 1e-12)) "gamma=0" (2.0 /. 3.0) (List.assoc 0 pmf);
  Alcotest.(check (float 1e-12)) "gamma=2" (1.0 /. 12.0) (List.assoc 2 pmf)

let test_expect_pow2_window_closed_forms () =
  (* k=1 values used by Theorem 6.2 *)
  Alcotest.check qt "SC" (Q.of_ints 1 4) (A.expect_pow2_window_exact `SC ~k:1);
  Alcotest.check qt "WO = 7/36" (Q.of_ints 7 36) (A.expect_pow2_window_exact `WO ~k:1);
  Alcotest.check qt "TSO lower = 29/147" (Q.of_ints 29 147)
    (A.expect_pow2_window_exact `TSO_lower ~k:1);
  (* float series agrees with exact rational *)
  List.iter
    (fun w ->
      for k = 1 to 4 do
        let f = A.expect_pow2_window (w :> A.model_window) ~k in
        let q = Q.to_float (A.expect_pow2_window_exact w ~k) in
        if Float.abs (f -. q) > 1e-12 then Alcotest.fail "series vs closed form mismatch"
      done)
    [ `SC; `WO; `TSO_lower; `TSO_upper ]

let test_expect_ordering_across_models () =
  (* stricter models concentrate on small windows: E[2^-kGamma] largest for
     SC, then TSO, then WO *)
  for k = 1 to 5 do
    let sc = A.expect_pow2_window `SC ~k in
    let tso = A.expect_pow2_window `TSO_series ~k in
    let wo = A.expect_pow2_window `WO ~k in
    Alcotest.(check bool) "SC >= TSO" true (sc >= tso -. 1e-12);
    Alcotest.(check bool) "TSO >= WO" true (tso >= wo -. 1e-12)
  done

let test_invalid_args () =
  Alcotest.check_raises "negative gamma" (Invalid_argument "Analytic: gamma < 0") (fun () ->
      ignore (A.b_wo (-1)));
  Alcotest.check_raises "h(0)" (Invalid_argument "Analytic.h: mu >= 1 required") (fun () ->
      ignore (A.h 0));
  Alcotest.check_raises "k=0" (Invalid_argument "Analytic.expect_pow2_window: k >= 1 required")
    (fun () -> ignore (A.expect_pow2_window `SC ~k:0))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("Theorem 4.1: SC", test_theorem41_sc);
      ("Theorem 4.1: WO", test_theorem41_wo);
      ("Theorem 4.1: TSO bounds", test_theorem41_tso_bounds);
      ("TSO series within bounds", test_tso_series_within_bounds);
      ("TSO series known values", test_tso_series_known_values);
      ("TSO series total mass", test_tso_series_mass);
      ("Claim 4.3 recurrence", test_claim43);
      ("Lemma 4.2: h function", test_lemma42_h);
      ("Lemma 4.2: lower bounds", test_lemma42_lower_bound);
      ("Lemma 4.2: series dominates bound", test_lemma42_series_dominates_bound);
      ("Claim B.1: remainder mass", test_lemma42_mass);
      ("Psi pmf", test_psi_pmf);
      ("F_mu|q exact and Claim 4.4", test_f_mu_given_q);
      ("F_mu|q vs brute-force arrangements", test_f_mu_brute_force);
      ("window pmf", test_window_pmf);
      ("window transform closed forms", test_expect_pow2_window_closed_forms);
      ("transform ordering across models", test_expect_ordering_across_models);
      ("invalid arguments", test_invalid_args);
    ]
