module J = Memrel_settling.Joint_dp
module D = Memrel_settling.Exact_dp
module A = Memrel_settling.Analytic
module Model = Memrel_memmodel.Model
module Q = Memrel_prob.Rational

let test_bottom_run_is_l_mu () =
  (* the coupled-chain stationary distribution must reproduce the exact
     Pr[L_mu] series — two completely different computations *)
  let pmf = J.bottom_run_pmf (Model.tso ()) ~m:64 in
  for mu = 0 to 8 do
    Alcotest.(check (float 1e-8)) (Printf.sprintf "mu=%d" mu) (A.l_mu_series mu) pmf.(mu)
  done

let test_bottom_run_mass () =
  let pmf = J.bottom_run_pmf (Model.tso ()) ~m:64 in
  Alcotest.(check (float 1e-12)) "mass 1" 1.0 (Array.fold_left ( +. ) 0.0 pmf)

let test_bottom_run_finite_m_matches_mask_dp () =
  (* trailing-ST distribution from the 2^m mask DP at finite m: compare
     through the bottom-ST probability at several m *)
  for m = 2 to 12 do
    let pmf = J.bottom_run_pmf (Model.tso ()) ~m ~b_max:m in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "m=%d" m)
      (D.bottom_st_probability (Model.tso ()) ~m)
      (1.0 -. pmf.(0))
  done

let test_n2_equals_marginal () =
  (* with a single factor the joint law reduces to the marginal: must equal
     the independent 2^m-state DP exactly *)
  List.iter
    (fun model ->
      Alcotest.(check (float 1e-10))
        (Model.name model)
        (D.expect_pow2_window model ~m:16 ~k:1)
        (J.expect_product model ~m:16 ~n:2 ~b_max:16))
    [ Model.tso (); Model.pso () ]

let test_sc_wo_dispatch () =
  (* SC: deterministic product; WO: factorizes *)
  Alcotest.(check (float 1e-12)) "SC n=3" (Float.pow 2.0 (-6.0))
    (J.expect_product Model.sc ~m:32 ~n:3);
  let e_joint = J.expect_product (Model.wo ()) ~m:32 ~n:3 in
  let e_indep =
    A.expect_pow2_window `WO ~k:1 *. A.expect_pow2_window `WO ~k:2
  in
  Alcotest.(check (float 1e-9)) "WO n=3 factorizes" e_indep e_joint

let test_correlation_positive_tso () =
  (* shared-program correlation makes the joint expectation exceed the
     product of marginals (windows are positively associated and 2^-kG is
     decreasing) for every n *)
  for n = 3 to 5 do
    let joint = J.expect_product (Model.tso ()) ~m:48 ~n in
    let indep = ref 1.0 in
    for i = 1 to n - 1 do
      indep := !indep *. A.expect_pow2_window `TSO_series ~k:i
    done;
    Alcotest.(check bool)
      (Printf.sprintf "n=%d: joint %g > indep %g" n joint !indep)
      true (joint > !indep)
  done

let test_converges_in_m () =
  let v m = J.expect_product (Model.tso ()) ~m ~n:3 in
  let d1 = Float.abs (v 16 -. v 64) and d2 = Float.abs (v 32 -. v 64) in
  Alcotest.(check bool) (Printf.sprintf "m-convergence %g >= %g" d1 d2) true (d1 >= d2);
  Alcotest.(check bool) "converged by m=32" true (d2 < 1e-9)

let test_b_max_truncation_small () =
  let full = J.expect_product (Model.tso ()) ~m:48 ~n:3 ~b_max:40 in
  let trunc = J.expect_product (Model.tso ()) ~m:48 ~n:3 ~b_max:24 in
  Alcotest.(check (float 1e-7)) "b_max=24 already converged" full trunc

let test_pso_between () =
  (* PSO windows are smaller than TSO's, so its transform is larger *)
  let tso = J.expect_product (Model.tso ()) ~m:48 ~n:3 in
  let pso = J.expect_product (Model.pso ()) ~m:48 ~n:3 in
  let sc = J.expect_product Model.sc ~m:48 ~n:3 in
  Alcotest.(check bool) "TSO < PSO < SC" true (tso < pso && pso < sc)

let test_general_p_consistency () =
  (* marginal at p = 0.7 matches the mask DP *)
  Alcotest.(check (float 1e-10)) "p=0.7"
    (D.expect_pow2_window ~p:0.7 (Model.tso ()) ~m:14 ~k:1)
    (J.expect_product ~p:0.7 (Model.tso ()) ~m:14 ~n:2 ~b_max:14)

let test_guards () =
  Alcotest.check_raises "n too large"
    (Invalid_argument "Joint_dp.expect_product: n must be in [2, max_replicas + 1]") (fun () ->
      ignore (J.expect_product (Model.tso ()) ~m:8 ~n:(J.max_replicas + 2)));
  Alcotest.check_raises "custom rejected" (Invalid_argument "Joint_dp: Custom models are not supported")
    (fun () ->
      ignore
        (J.expect_product
           (Model.custom ~name:"x" ~st_st:0.1 ~st_ld:0.1 ~ld_st:0.1 ~ld_ld:0.1)
           ~m:8 ~n:2));
  Alcotest.check_raises "wo bottom-run rejected"
    (Invalid_argument "Joint_dp.bottom_run_pmf: TSO/PSO dynamics only") (fun () ->
      ignore (J.bottom_run_pmf (Model.wo ()) ~m:8))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("bottom-run chain = exact L_mu series", test_bottom_run_is_l_mu);
      ("bottom-run mass", test_bottom_run_mass);
      ("finite-m agreement with mask DP", test_bottom_run_finite_m_matches_mask_dp);
      ("n=2 equals marginal", test_n2_equals_marginal);
      ("SC/WO dispatch", test_sc_wo_dispatch);
      ("TSO correlation positive", test_correlation_positive_tso);
      ("m convergence", test_converges_in_m);
      ("b_max truncation", test_b_max_truncation_small);
      ("PSO between TSO and SC", test_pso_between);
      ("general p consistency", test_general_p_consistency);
      ("guards", test_guards);
    ]
