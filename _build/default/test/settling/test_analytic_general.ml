module G = Memrel_settling.Analytic_general
module A = Memrel_settling.Analytic
module D = Memrel_settling.Exact_dp
module Model = Memrel_memmodel.Model
module Q = Memrel_prob.Rational

let grid = [ (0.3, 0.5); (0.7, 0.5); (0.5, 0.3); (0.5, 0.7); (0.3, 0.7); (0.7, 0.3) ]

let test_reduces_to_paper_normal_form () =
  for g = 0 to 8 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "WO g=%d" g)
      (Q.to_float (A.b_wo g))
      (G.b_wo ~s:0.5 g);
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "TSO g=%d" g)
      (A.b_tso_series g)
      (G.b_tso ~p:0.5 ~s:0.5 g)
  done;
  Alcotest.(check (float 1e-12)) "Claim 4.3 limit" (2.0 /. 3.0)
    (G.st_bottom_limit ~p:0.5 ~s:0.5)

let test_wo_matches_dp_on_grid () =
  List.iter
    (fun (p, s) ->
      let dp = D.gamma_pmf ~p (Model.wo ~s ()) ~m:16 in
      for g = 0 to 5 do
        Alcotest.(check (float 5e-4))
          (Printf.sprintf "p=%.1f s=%.1f g=%d" p s g)
          (List.assoc g dp) (G.b_wo ~s g)
      done)
    grid

let test_tso_matches_dp_on_grid () =
  List.iter
    (fun (p, s) ->
      let dp = D.gamma_pmf ~p (Model.tso ~s ()) ~m:16 in
      for g = 0 to 5 do
        Alcotest.(check (float 5e-4))
          (Printf.sprintf "p=%.1f s=%.1f g=%d" p s g)
          (List.assoc g dp) (G.b_tso ~p ~s g)
      done)
    grid

let test_st_bottom_matches_dp () =
  List.iter
    (fun (p, s) ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "p=%.1f s=%.1f" p s)
        (D.bottom_st_probability ~p (Model.tso ~s ()) ~m:16)
        (G.st_bottom_limit ~p ~s))
    grid

let test_wo_mass_one () =
  List.iter
    (fun s ->
      let mass = ref 0.0 in
      for g = 0 to 200 do
        mass := !mass +. G.b_wo ~s g
      done;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "s=%.2f" s) 1.0 !mass)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_tso_mass_one () =
  List.iter
    (fun (p, s) ->
      let mass = ref 0.0 in
      for g = 0 to 120 do
        mass := !mass +. G.b_tso ~p ~s g
      done;
      Alcotest.(check (float 1e-6)) (Printf.sprintf "p=%.1f s=%.1f" p s) 1.0 !mass)
    [ (0.5, 0.5); (0.3, 0.7); (0.7, 0.3) ]

let test_psi_pmf_normalizes () =
  List.iter
    (fun p ->
      for mu = 1 to 4 do
        let mass = ref 0.0 in
        for q = 0 to 400 do
          mass := !mass +. G.psi_pmf ~p ~mu ~q
        done;
        Alcotest.(check (float 1e-9)) (Printf.sprintf "p=%.2f mu=%d" p mu) 1.0 !mass
      done)
    [ 0.3; 0.5; 0.8 ]

let test_f_reduces_to_half () =
  for mu = 1 to 5 do
    for q = 0 to 5 do
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "mu=%d q=%d" mu q)
        (A.f_mu_given_q ~mu ~q)
        (G.f_mu_given_q ~s:0.5 ~mu ~q)
    done
  done

let test_s_monotonicity () =
  (* larger swap probability shifts window mass upward: Pr[B_0] decreasing
     in s for both models *)
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
  let svals = [ 0.2; 0.4; 0.6; 0.8 ] in
  List.iter
    (fun (s1, s2) ->
      Alcotest.(check bool) "WO B0 decreasing" true (G.b_wo ~s:s1 0 > G.b_wo ~s:s2 0);
      Alcotest.(check bool) "TSO B0 decreasing" true
        (G.b_tso ~p:0.5 ~s:s1 0 > G.b_tso ~p:0.5 ~s:s2 0))
    (pairs svals)

let test_ordering_flip_documented () =
  (* the E12 finding: at p = 0.7 the TSO window is heavier-tailed than WO's
     and the manifestation ordering flips *)
  let e_tso = G.expect_pow2_window ~b:(G.b_tso ~p:0.7 ~s:0.5) ~k:1 in
  let e_wo = G.expect_pow2_window ~b:(G.b_wo ~s:0.5) ~k:1 in
  Alcotest.(check bool)
    (Printf.sprintf "TSO %f < WO %f at p=0.7" e_tso e_wo)
    true (e_tso < e_wo);
  (* while at the normal form TSO is safer *)
  let e_tso_half = G.expect_pow2_window ~b:(G.b_tso ~p:0.5 ~s:0.5) ~k:1 in
  Alcotest.(check bool) "normal form: TSO safer" true (e_tso_half > e_wo)

let test_pr_a_n2_transform () =
  Alcotest.(check (float 1e-9)) "WO s=1/2 gives 7/54" (7.0 /. 54.0)
    (G.pr_a_n2 ~b:(G.b_wo ~s:0.5));
  Alcotest.(check (float 1e-9)) "TSO normal form ~ series value"
    (Memrel_interleave.Analytic.pr_a_n2_tso_series ())
    (G.pr_a_n2 ~b:(G.b_tso ~p:0.5 ~s:0.5))

let test_fenced_wo_degenerate_cases () =
  (* d = 0 is SC's point mass *)
  Alcotest.(check (float 1e-12)) "d=0 gamma=0" 1.0 (G.b_wo_fenced ~s:0.5 ~d:0 0);
  Alcotest.(check (float 1e-12)) "d=0 gamma=1" 0.0 (G.b_wo_fenced ~s:0.5 ~d:0 1);
  (* a distant fence recovers fence-free WO *)
  for g = 0 to 6 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "d=60 g=%d" g)
      (G.b_wo ~s:0.5 g)
      (G.b_wo_fenced ~s:0.5 ~d:60 g)
  done;
  (* support capped at d *)
  Alcotest.(check (float 0.0)) "gamma > d impossible" 0.0 (G.b_wo_fenced ~s:0.5 ~d:3 4)

let test_fenced_wo_mass_one () =
  List.iter
    (fun (s, d) ->
      let mass = ref 0.0 in
      for g = 0 to d do
        mass := !mass +. G.b_wo_fenced ~s ~d g
      done;
      Alcotest.(check (float 1e-12)) (Printf.sprintf "s=%.2f d=%d" s d) 1.0 !mass)
    [ (0.5, 0); (0.5, 1); (0.5, 5); (0.3, 4); (0.8, 7) ]

let test_fenced_wo_vs_simulation () =
  (* settle explicitly fenced programs and compare the empirical gamma pmf *)
  let module Program = Memrel_settling.Program in
  let module Settle = Memrel_settling.Settle in
  let module Window = Memrel_settling.Window in
  let module Op = Memrel_memmodel.Op in
  let module Fence = Memrel_memmodel.Fence in
  let rng = Memrel_prob.Rng.create 77 in
  let d = 2 and m = 24 and trials = 60_000 in
  let counts = Array.make (d + 1) 0 in
  for _ = 1 to trials do
    let base = Program.generate rng ~m in
    let ops = Array.to_list (Program.ops base) in
    let ops =
      List.concat
        (List.mapi
           (fun i op -> if i = m - d then [ Op.fence Fence.Acquire; op ] else [ op ])
           ops)
    in
    let prog = Program.of_ops ops in
    let pi = Settle.run (Model.wo ()) rng prog in
    let g = Window.gamma prog pi in
    counts.(g) <- counts.(g) + 1
  done;
  for g = 0 to d do
    let expected = G.b_wo_fenced ~s:0.5 ~d g in
    let got = float_of_int counts.(g) /. float_of_int trials in
    if Float.abs (got -. expected) > 0.01 then
      Alcotest.fail (Printf.sprintf "g=%d: simulated %f vs closed form %f" g got expected)
  done

let test_fenced_wo_monotone_in_d () =
  (* closer fences concentrate mass at gamma = 0 *)
  let b0 d = G.b_wo_fenced ~s:0.5 ~d 0 in
  Alcotest.(check bool) "decreasing in d" true (b0 0 > b0 1 && b0 1 > b0 2 && b0 2 > b0 5)

let test_guards () =
  Alcotest.check_raises "s=0" (Invalid_argument "Analytic_general: s must be in (0,1)")
    (fun () -> ignore (G.b_wo ~s:0.0 1));
  Alcotest.check_raises "p=1" (Invalid_argument "Analytic_general: p must be in (0,1)")
    (fun () -> ignore (G.st_bottom_limit ~p:1.0 ~s:0.5))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("reduces to paper normal form", test_reduces_to_paper_normal_form);
      ("WO matches DP on (p,s) grid", test_wo_matches_dp_on_grid);
      ("TSO matches DP on (p,s) grid", test_tso_matches_dp_on_grid);
      ("generalized Claim 4.3 vs DP", test_st_bottom_matches_dp);
      ("WO mass one for any s", test_wo_mass_one);
      ("TSO mass one on grid", test_tso_mass_one);
      ("generalized Psi pmf normalizes", test_psi_pmf_normalizes);
      ("F reduces to s=1/2", test_f_reduces_to_half);
      ("monotone in s", test_s_monotonicity);
      ("E12 ordering flip", test_ordering_flip_documented);
      ("n=2 transform", test_pr_a_n2_transform);
      ("fenced WO degenerate cases", test_fenced_wo_degenerate_cases);
      ("fenced WO mass one", test_fenced_wo_mass_one);
      ("fenced WO vs simulation", test_fenced_wo_vs_simulation);
      ("fenced WO monotone in d", test_fenced_wo_monotone_in_d);
      ("guards", test_guards);
    ]
