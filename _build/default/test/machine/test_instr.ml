module I = Memrel_machine.Instr
module Fence = Memrel_memmodel.Fence

let test_accessors () =
  let ld = I.load ~reg:2 ~loc:7 in
  Alcotest.(check bool) "load is load" true (I.is_load ld);
  Alcotest.(check (option int)) "writes reg" (Some 2) (I.writes_reg ld);
  Alcotest.(check (option int)) "loc" (Some 7) (I.loc_accessed ld);
  Alcotest.(check (list int)) "reads none" [] (I.reads_regs ld);
  let st = I.store ~loc:3 ~src:(I.Reg 1) in
  Alcotest.(check bool) "store is store" true (I.is_store st);
  Alcotest.(check (option int)) "no reg write" None (I.writes_reg st);
  Alcotest.(check (list int)) "reads src" [ 1 ] (I.reads_regs st);
  let sti = I.store ~loc:3 ~src:(I.Imm 5) in
  Alcotest.(check (list int)) "imm reads none" [] (I.reads_regs sti)

let test_binop () =
  let b = I.binop ~dst:0 I.Add (I.Reg 0) (I.Imm 1) in
  Alcotest.(check (option int)) "writes dst" (Some 0) (I.writes_reg b);
  Alcotest.(check (list int)) "reads a" [ 0 ] (I.reads_regs b);
  Alcotest.(check (option int)) "no memory" None (I.loc_accessed b);
  let b2 = I.binop ~dst:2 I.Mul (I.Reg 0) (I.Reg 1) in
  Alcotest.(check (list int)) "reads both" [ 0; 1 ] (I.reads_regs b2)

let test_fence () =
  let f = I.fence Fence.Full in
  Alcotest.(check bool) "is fence" true (I.is_fence f);
  Alcotest.(check bool) "not load/store" true (not (I.is_load f) && not (I.is_store f));
  Alcotest.(check (option int)) "no loc" None (I.loc_accessed f)

let test_to_string () =
  Alcotest.(check string) "load" "r1 := mem[2]" (I.to_string (I.load ~reg:1 ~loc:2));
  Alcotest.(check string) "store imm" "mem[0] := 7" (I.to_string (I.store ~loc:0 ~src:(I.Imm 7)));
  Alcotest.(check string) "binop" "r0 := r0 + 1"
    (I.to_string (I.binop ~dst:0 I.Add (I.Reg 0) (I.Imm 1)));
  Alcotest.(check string) "fence" "fence.acquire" (I.to_string (I.fence Fence.Acquire))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("accessors", test_accessors);
      ("binop", test_binop);
      ("fence", test_fence);
      ("to_string", test_to_string);
    ]
