module I = Memrel_machine.Instr
module State = Memrel_machine.State
module Sem = Memrel_machine.Semantics
module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence

let mk programs = State.init ~programs ~initial_mem:[]

let test_of_model () =
  Alcotest.(check bool) "sc" true (Sem.of_model Model.Sequential_consistency = Sem.Sc);
  Alcotest.(check bool) "tso" true (Sem.of_model Model.Total_store_order = Sem.Tso);
  Alcotest.(check bool) "wo window" true
    (Sem.of_model ~window:4 Model.Weak_ordering = Sem.Wo { window = 4 });
  Alcotest.check_raises "custom rejected"
    (Invalid_argument "Semantics.of_model: no operational semantics for Custom") (fun () ->
      ignore (Sem.of_model Model.Custom))

let test_sc_single_thread_deterministic () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 5); I.load ~reg:0 ~loc:0 |] ] in
  let rec run st =
    match Sem.transitions Sem.Sc st with
    | [] -> st
    | [ (_, st') ] -> run st'
    | _ -> Alcotest.fail "SC single thread must be deterministic"
  in
  let final = run st in
  Alcotest.(check int) "mem" 5 (State.mem_read final 0);
  Alcotest.(check int) "reg" 5 (State.reg final.State.threads.(0) 0)

let test_terminal_no_transitions () =
  let st = mk [ [||] ] in
  Alcotest.(check int) "empty program terminal" 0 (List.length (Sem.transitions Sem.Sc st));
  Alcotest.(check bool) "all done" true (State.all_done st)

let test_tso_buffering_and_forwarding () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 9); I.load ~reg:0 ~loc:0 |] ] in
  (* step 1: execute the store -> goes to buffer, not memory *)
  let st1 =
    match Sem.transitions Sem.Tso st with
    | [ (Sem.Exec _, s) ] -> s
    | _ -> Alcotest.fail "expected single exec"
  in
  Alcotest.(check int) "memory untouched" 0 (State.mem_read st1 0);
  Alcotest.(check (option int)) "buffered" (Some 9)
    (State.buffered_read_fifo st1.State.threads.(0) 0);
  (* now both the load (forwarding) and the flush are enabled *)
  let ts = Sem.transitions Sem.Tso st1 in
  Alcotest.(check int) "two choices" 2 (List.length ts);
  (* take the exec: load must forward 9 from own buffer *)
  let st2 =
    List.assoc (Sem.Exec { thread = 0; index = 1 })
      (List.map (fun (l, s) -> (l, s)) ts)
  in
  Alcotest.(check int) "forwarded" 9 (State.reg st2.State.threads.(0) 0)

let test_tso_fifo_order () =
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.store ~loc:1 ~src:(I.Imm 2) |] ]
  in
  (* execute both stores *)
  let step st = match Sem.transitions Sem.Tso st with
    | (Sem.Exec _, s) :: _ -> s
    | _ -> Alcotest.fail "expected exec" in
  let st = step (step st) in
  (* first flush must publish loc 0, not loc 1 *)
  let flushes =
    List.filter_map
      (function Sem.Flush { loc; _ }, s -> Some (loc, s) | _ -> None)
      (Sem.transitions Sem.Tso st)
  in
  Alcotest.(check (list int)) "only oldest flushable" [ 0 ] (List.map fst flushes);
  let st = snd (List.hd flushes) in
  Alcotest.(check int) "published" 1 (State.mem_read st 0);
  Alcotest.(check int) "second still buffered" 0 (State.mem_read st 1)

let test_pso_reorders_flushes () =
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.store ~loc:1 ~src:(I.Imm 2) |] ]
  in
  let step st = match Sem.transitions Sem.Pso st with
    | (Sem.Exec _, s) :: _ -> s
    | _ -> Alcotest.fail "expected exec" in
  let st = step (step st) in
  let flush_locs =
    List.filter_map (function Sem.Flush { loc; _ }, _ -> Some loc | _ -> None)
      (Sem.transitions Sem.Pso st)
  in
  Alcotest.(check (list int)) "either location may flush first" [ 0; 1 ]
    (List.sort compare flush_locs)

let test_tso_fence_requires_empty_buffer () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.fence Fence.Full; I.load ~reg:0 ~loc:1 |] ] in
  let step_exec st =
    match List.filter (function Sem.Exec _, _ -> true | _ -> false) (Sem.transitions Sem.Tso st) with
    | (_, s) :: _ -> Some s
    | [] -> None
  in
  let st1 = Option.get (step_exec st) in
  (* fence cannot execute with a full buffer: only the flush is available *)
  (match Sem.transitions Sem.Tso st1 with
   | [ (Sem.Flush _, _) ] -> ()
   | ts ->
     Alcotest.fail
       (Printf.sprintf "expected only flush, got %s"
          (String.concat "," (List.map (fun (l, _) -> Sem.label_to_string l) ts))));
  ()

let test_wo_reorders_independent () =
  (* two independent loads: both may issue first *)
  let st = mk [ [| I.load ~reg:0 ~loc:0; I.load ~reg:1 ~loc:1 |] ] in
  let labels = List.map fst (Sem.transitions (Sem.Wo { window = 4 }) st) in
  Alcotest.(check int) "both issueable" 2 (List.length labels)

let test_wo_respects_register_dependence () =
  let st =
    mk [ [| I.load ~reg:0 ~loc:0; I.binop ~dst:1 I.Add (I.Reg 0) (I.Imm 1) |] ]
  in
  let labels = List.map fst (Sem.transitions (Sem.Wo { window = 4 }) st) in
  Alcotest.(check int) "only the load ready" 1 (List.length labels)

let test_wo_respects_same_location () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:0 |] ] in
  let labels = List.map fst (Sem.transitions (Sem.Wo { window = 4 }) st) in
  Alcotest.(check int) "same-loc ordered" 1 (List.length labels)

let test_wo_window_bound () =
  let prog = Array.init 6 (fun i -> I.load ~reg:i ~loc:i) in
  let st = mk [ prog ] in
  let labels = List.map fst (Sem.transitions (Sem.Wo { window = 3 }) st) in
  Alcotest.(check int) "window of 3 limits lookahead" 3 (List.length labels)

let test_conflicts_matrix () =
  let prog =
    [| I.load ~reg:0 ~loc:0; I.load ~reg:1 ~loc:1; I.load ~reg:0 ~loc:2;
       I.store ~loc:1 ~src:(I.Imm 1); I.fence Fence.Full; I.load ~reg:2 ~loc:3 |]
  in
  Alcotest.(check bool) "independent loads" false (Sem.conflicts prog 0 1);
  Alcotest.(check bool) "WAW on r0" true (Sem.conflicts prog 0 2);
  Alcotest.(check bool) "same loc load/store" true (Sem.conflicts prog 1 3);
  Alcotest.(check bool) "full fence blocks later" true (Sem.conflicts prog 4 5);
  Alcotest.(check bool) "full fence waits for earlier" true (Sem.conflicts prog 0 4)

let test_fence_one_way_edges () =
  let prog_acq = [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:1;
                    I.fence Fence.Acquire; I.load ~reg:1 ~loc:2 |] in
  (* acquire waits for earlier LOADS only *)
  Alcotest.(check bool) "acquire ignores earlier store" false (Sem.conflicts prog_acq 0 2);
  Alcotest.(check bool) "acquire waits for earlier load" true (Sem.conflicts prog_acq 1 2);
  Alcotest.(check bool) "acquire blocks later ops" true (Sem.conflicts prog_acq 2 3);
  let prog_rel = [| I.load ~reg:0 ~loc:0; I.fence Fence.Release;
                    I.store ~loc:1 ~src:(I.Imm 1); I.load ~reg:1 ~loc:2 |] in
  Alcotest.(check bool) "release waits for earlier" true (Sem.conflicts prog_rel 0 1);
  Alcotest.(check bool) "release blocks later store" true (Sem.conflicts prog_rel 1 2);
  Alcotest.(check bool) "release lets later load pass" false (Sem.conflicts prog_rel 1 3)

let test_binop_arithmetic () =
  let st =
    mk
      [ [| I.binop ~dst:0 I.Add (I.Imm 3) (I.Imm 4); I.binop ~dst:1 I.Sub (I.Reg 0) (I.Imm 2);
           I.binop ~dst:2 I.Mul (I.Reg 0) (I.Reg 1) |] ]
  in
  let rec run st =
    match Sem.transitions Sem.Sc st with [] -> st | (_, s) :: _ -> run s
  in
  let f = run st in
  Alcotest.(check int) "add" 7 (State.reg f.State.threads.(0) 0);
  Alcotest.(check int) "sub" 5 (State.reg f.State.threads.(0) 1);
  Alcotest.(check int) "mul" 35 (State.reg f.State.threads.(0) 2)

(* property: on random two-thread programs, SC's outcome set is contained in
   every relaxed model's — weakening the model only ADDS behaviours *)
let prop_outcome_monotonicity =
  let arb_small_program =
    (* up to 3 instructions per thread over 2 locations and 2 registers *)
    let open QCheck in
    let arb_instr =
      map
        (fun (pick, loc, reg, v) ->
          match pick mod 3 with
          | 0 -> I.load ~reg ~loc
          | 1 -> I.store ~loc ~src:(I.Imm v)
          | _ -> I.binop ~dst:reg I.Add (I.Reg reg) (I.Imm 1))
        (quad (int_range 0 2) (int_range 0 1) (int_range 0 1) (int_range 1 3))
    in
    pair (list_of_size (Gen.int_range 1 3) arb_instr) (list_of_size (Gen.int_range 1 3) arb_instr)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"SC outcomes subset of every relaxed model (random programs)"
       ~count:150 arb_small_program
       (fun (p0, p1) ->
         let st = mk [ Array.of_list p0; Array.of_list p1 ] in
         let observe s = Memrel_machine.State.key s in
         let outcomes d =
           List.map fst (Memrel_machine.Enumerate.outcomes d st ~observe).outcomes
         in
         let sc = outcomes Sem.Sc in
         List.for_all
           (fun d ->
             let other = outcomes d in
             List.for_all (fun o -> List.mem o other) sc)
           [ Sem.Tso; Sem.Pso; Sem.Wo { window = 8 } ]))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("of_model", test_of_model);
      ("SC deterministic single thread", test_sc_single_thread_deterministic);
      ("terminal states", test_terminal_no_transitions);
      ("TSO buffering and forwarding", test_tso_buffering_and_forwarding);
      ("TSO FIFO order", test_tso_fifo_order);
      ("PSO flush reordering", test_pso_reorders_flushes);
      ("TSO fence drains buffer", test_tso_fence_requires_empty_buffer);
      ("WO reorders independent ops", test_wo_reorders_independent);
      ("WO register dependence", test_wo_respects_register_dependence);
      ("WO same-location order", test_wo_respects_same_location);
      ("WO window bound", test_wo_window_bound);
      ("conflicts matrix", test_conflicts_matrix);
      ("fence one-way edges", test_fence_one_way_edges);
      ("binop arithmetic", test_binop_arithmetic);
    ]
  @ [ prop_outcome_monotonicity ]
