module X = Memrel_machine.Exec
module E = Memrel_machine.Enumerate
module L = Memrel_machine.Litmus
module Sem = Memrel_machine.Semantics
module State = Memrel_machine.State
module I = Memrel_machine.Instr
module Model = Memrel_memmodel.Model
module Rng = Memrel_prob.Rng

let test_run_terminates () =
  let rng = Rng.create 1 in
  List.iter
    (fun (t : L.t) ->
      List.iter
        (fun d ->
          let r = X.run d (L.initial_state t) rng in
          Alcotest.(check bool) (t.name ^ " reaches terminal") true (State.all_done r.final);
          Alcotest.(check int) "trace length = steps" r.steps (List.length r.trace))
        [ Sem.Sc; Sem.Tso; Sem.Pso; Sem.Wo { window = 8 } ])
    L.all

let test_run_deterministic_under_seed () =
  let t = L.find "sb" in
  let run () =
    let rng = Rng.create 33 in
    let r = X.run Sem.Tso (L.initial_state t) rng in
    List.map Sem.label_to_string r.trace
  in
  Alcotest.(check (list string)) "same trace" (run ()) (run ())

let test_step_cap () =
  let st = State.init ~programs:[ [| I.load ~reg:0 ~loc:0 |] ] ~initial_mem:[] in
  let rng = Rng.create 1 in
  (* a one-instruction program terminates in one step, far below any cap *)
  let r = X.run ~max_steps:5 Sem.Sc st rng in
  Alcotest.(check int) "one step" 1 r.steps

let test_estimate_outcome_counts () =
  let rng = Rng.create 5 in
  let t = L.find "inc" in
  let outcomes =
    X.estimate_outcome ~trials:2000 Sem.Sc (L.initial_state t) ~observe:t.observe rng
  in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 outcomes in
  Alcotest.(check int) "counts sum to trials" 2000 total;
  Alcotest.(check bool) "sorted by frequency" true
    (match outcomes with (_, a) :: (_, b) :: _ -> a >= b | _ -> true);
  (* both bug and intended outcomes occur under random scheduling *)
  Alcotest.(check int) "two distinct outcomes" 2 (List.length outcomes)

let test_random_outcomes_within_enumerated () =
  (* anything the random scheduler produces must be in the exhaustive set *)
  let rng = Rng.create 9 in
  List.iter
    (fun name ->
      let t = L.find name in
      List.iter
        (fun (d, family) ->
          let enumerated = List.map fst (L.run_exhaustive t family).E.outcomes in
          let sampled =
            X.estimate_outcome ~trials:300 d (L.initial_state t) ~observe:t.observe rng
          in
          List.iter
            (fun (o, _) ->
              if not (List.mem o enumerated) then
                Alcotest.fail (name ^ ": random run produced un-enumerated outcome"))
            sampled)
        [ (Sem.Tso, Model.Total_store_order); (Sem.Wo { window = 8 }, Model.Weak_ordering) ])
    [ "sb"; "mp"; "lb"; "inc" ]

let test_bug_rate_increases_with_weakness () =
  (* E13's headline: under uniform random scheduling, the canonical bug
     manifests no less often as the model weakens (SC <= TSO <= WO) *)
  let rate d seed =
    let rng = Rng.create seed in
    let t = L.find "inc" in
    let outcomes =
      X.estimate_outcome ~trials:8000 d (L.initial_state t) ~observe:t.observe rng
    in
    let bug = Option.value ~default:0 (List.assoc_opt [ ("x", 1) ] outcomes) in
    float_of_int bug /. 8000.0
  in
  let sc = rate Sem.Sc 42 and tso = rate Sem.Tso 42 and wo = rate (Sem.Wo { window = 8 }) 42 in
  Alcotest.(check bool)
    (Printf.sprintf "sc=%.3f <= tso=%.3f (+noise)" sc tso)
    true (sc <= tso +. 0.02);
  Alcotest.(check bool) (Printf.sprintf "bug visible everywhere: sc=%.3f wo=%.3f" sc wo) true
    (sc > 0.1 && wo > 0.1)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("runs terminate", test_run_terminates);
      ("deterministic under seed", test_run_deterministic_under_seed);
      ("step accounting", test_step_cap);
      ("estimate_outcome counts", test_estimate_outcome_counts);
      ("random outcomes within enumerated set", test_random_outcomes_within_enumerated);
      ("bug rate vs model weakness", test_bug_rate_increases_with_weakness);
    ]
