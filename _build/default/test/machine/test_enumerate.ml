module E = Memrel_machine.Enumerate
module Sem = Memrel_machine.Semantics
module State = Memrel_machine.State
module I = Memrel_machine.Instr

let mk programs = State.init ~programs ~initial_mem:[]

let test_single_thread_single_outcome () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:0 |] ] in
  let r = E.outcomes Sem.Sc st ~observe:(fun s -> State.reg s.State.threads.(0) 0) in
  Alcotest.(check (list (pair int int))) "one outcome" [ (1, 1) ] r.outcomes;
  Alcotest.(check int) "one terminal" 1 r.terminals

let test_interleaving_count_sc () =
  (* two threads with 2 instructions each: C(4,2) = 6 interleavings, but
     states dedup; just check we find both orders of two racing stores *)
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1) |]; [| I.store ~loc:0 ~src:(I.Imm 2) |] ]
  in
  let r = E.outcomes Sem.Sc st ~observe:(fun s -> State.mem_read s 0) in
  Alcotest.(check (list int)) "both final values" [ 1; 2 ] (List.map fst r.outcomes)

let test_visited_accounting () =
  let st = mk [ [| I.load ~reg:0 ~loc:0 |]; [| I.load ~reg:0 ~loc:1 |] ] in
  let r = E.outcomes Sem.Sc st ~observe:(fun _ -> ()) in
  (* states: 4 combinations of progress, loads read zeros so registers do
     not distinguish: 00,10,01,11 *)
  Alcotest.(check int) "4 states" 4 r.states_visited;
  Alcotest.(check int) "1 terminal" 1 r.terminals

let test_max_states_cap () =
  let st = mk [ Array.init 10 (fun i -> I.load ~reg:i ~loc:i);
                Array.init 10 (fun i -> I.load ~reg:i ~loc:i) ] in
  Alcotest.check_raises "cap enforced" (Failure "Enumerate: state limit exceeded") (fun () ->
      ignore (E.outcomes ~max_states:5 Sem.Sc st ~observe:(fun _ -> ())))

let test_reachable_terminal_count () =
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1) |]; [| I.store ~loc:0 ~src:(I.Imm 2) |] ]
  in
  Alcotest.(check int) "two terminals" 2 (E.reachable_terminal_count Sem.Sc st)

let test_dedup_effectiveness () =
  (* same program under TSO explores more states than SC (buffer states) *)
  let prog () = [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:1 |] in
  let st = mk [ prog (); prog () ] in
  let sc = (E.outcomes Sem.Sc st ~observe:(fun _ -> ())).states_visited in
  let tso = (E.outcomes Sem.Tso st ~observe:(fun _ -> ())).states_visited in
  Alcotest.(check bool) (Printf.sprintf "SC %d < TSO %d" sc tso) true (sc < tso)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("single-thread single outcome", test_single_thread_single_outcome);
      ("racing stores", test_interleaving_count_sc);
      ("state accounting", test_visited_accounting);
      ("max_states cap", test_max_states_cap);
      ("terminal count", test_reachable_terminal_count);
      ("TSO explores more states than SC", test_dedup_effectiveness);
    ]
