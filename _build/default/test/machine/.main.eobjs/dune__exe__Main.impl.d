test/machine/main.ml: Alcotest Test_enumerate Test_exec Test_instr Test_litmus Test_litmus_files Test_parse Test_semantics Test_state
