test/machine/test_instr.ml: Alcotest List Memrel_machine Memrel_memmodel
