test/machine/test_enumerate.ml: Alcotest Array List Memrel_machine Printf
