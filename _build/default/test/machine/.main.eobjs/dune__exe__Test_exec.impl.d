test/machine/test_exec.ml: Alcotest List Memrel_machine Memrel_memmodel Memrel_prob Option Printf
