test/machine/test_semantics.ml: Alcotest Array Gen List Memrel_machine Memrel_memmodel Option Printf QCheck QCheck_alcotest String
