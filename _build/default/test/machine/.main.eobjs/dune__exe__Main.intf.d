test/machine/main.mli:
