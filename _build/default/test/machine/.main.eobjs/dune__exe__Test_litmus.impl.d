test/machine/test_litmus.ml: Alcotest List Memrel_machine Memrel_memmodel Printf String
