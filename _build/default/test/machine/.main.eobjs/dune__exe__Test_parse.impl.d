test/machine/test_parse.ml: Alcotest Astring List Memrel_machine Memrel_memmodel Printf
