test/machine/test_litmus_files.ml: Alcotest List Memrel_machine Memrel_memmodel Printf
