test/machine/test_state.ml: Alcotest Array List Memrel_machine
