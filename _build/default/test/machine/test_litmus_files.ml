(* The .litmus files shipped under examples/litmus/ must parse and behave as
   their header comments claim. The dune stanza copies them next to the test
   binary. *)

module P = Memrel_machine.Parse
module L = Memrel_machine.Litmus
module E = Memrel_machine.Enumerate
module Model = Memrel_memmodel.Model

let read path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let reachable t family =
  List.mem_assoc t.L.relaxed_outcome (L.run_exhaustive t family).E.outcomes

let families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

let check_file file expected_reachable () =
  let t = P.parse (read file) in
  List.iter2
    (fun family expected ->
      let got = reachable t family in
      if got <> expected then
        Alcotest.fail
          (Printf.sprintf "%s: expected reachable=%b got %b" t.L.name expected got))
    families expected_reachable

let suite =
  [
    Alcotest.test_case "dekker entry broken from TSO up" `Quick
      (check_file "litmus_files/dekker_attempt.litmus" [ false; true; true; true ]);
    Alcotest.test_case "dekker entry fixed by full fences" `Quick
      (check_file "litmus_files/dekker_fenced.litmus" [ false; false; false; false ]);
    Alcotest.test_case "seqlock torn read from PSO up" `Quick
      (check_file "litmus_files/seqlock_read.litmus" [ false; false; true; true ]);
    Alcotest.test_case "atomic tickets never duplicate" `Quick
      (check_file "litmus_files/ticket_counter.litmus" [ false; false; false; false ]);
  ]
