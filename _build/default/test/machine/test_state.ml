module State = Memrel_machine.State
module I = Memrel_machine.Instr

let test_init_defaults () =
  let st = State.init ~programs:[ [| I.load ~reg:0 ~loc:0 |] ] ~initial_mem:[ (3, 7) ] in
  Alcotest.(check int) "initial binding" 7 (State.mem_read st 3);
  Alcotest.(check int) "unwritten loc reads 0" 0 (State.mem_read st 99);
  Alcotest.(check int) "register default 0" 0 (State.reg st.State.threads.(0) 5);
  Alcotest.(check bool) "nothing executed" false (State.is_executed st.State.threads.(0) 0);
  Alcotest.(check int) "next = 0" 0 (State.next_unexecuted st.State.threads.(0))

let test_program_length_cap () =
  Alcotest.check_raises "61 instructions rejected" (Invalid_argument "State.init: program too long")
    (fun () ->
      ignore (State.init ~programs:[ Array.make 61 (I.load ~reg:0 ~loc:0) ] ~initial_mem:[]))

let test_thread_done () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  Alcotest.(check bool) "empty program done" true (State.thread_done st.State.threads.(0));
  Alcotest.(check bool) "all done" true (State.all_done st)

let test_buffered_reads () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let th = { (st.State.threads.(0)) with State.fifo = [ (0, 1); (1, 5); (0, 2) ] } in
  Alcotest.(check (option int)) "newest wins" (Some 2) (State.buffered_read_fifo th 0);
  Alcotest.(check (option int)) "other loc" (Some 5) (State.buffered_read_fifo th 1);
  Alcotest.(check (option int)) "absent" None (State.buffered_read_fifo th 9);
  let th2 =
    { (st.State.threads.(0)) with State.perloc = State.IntMap.add 0 [ 1; 2 ] State.IntMap.empty }
  in
  Alcotest.(check (option int)) "perloc newest is last" (Some 2) (State.buffered_read_perloc th2 0);
  Alcotest.(check (option int)) "perloc absent" None (State.buffered_read_perloc th2 1)

let test_key_canonical () =
  (* zero-valued writes must not split states *)
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let st_explicit_zero = { st with State.mem = State.IntMap.add 0 0 st.State.mem } in
  Alcotest.(check string) "zero binding same key" (State.key st) (State.key st_explicit_zero);
  let st_one = { st with State.mem = State.IntMap.add 0 1 st.State.mem } in
  Alcotest.(check bool) "different values different keys" true
    (State.key st <> State.key st_one)

let test_key_distinguishes_buffers () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let with_fifo =
    { st with
      State.threads = [| { (st.State.threads.(0)) with State.fifo = [ (0, 1) ] } |] }
  in
  Alcotest.(check bool) "buffer state in key" true (State.key st <> State.key with_fifo)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("init defaults", test_init_defaults);
      ("program length cap", test_program_length_cap);
      ("thread_done", test_thread_done);
      ("buffered reads", test_buffered_reads);
      ("canonical keys", test_key_canonical);
      ("keys distinguish buffers", test_key_distinguishes_buffers);
    ]
