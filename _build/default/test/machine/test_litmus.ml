module L = Memrel_machine.Litmus
module E = Memrel_machine.Enumerate
module Sem = Memrel_machine.Semantics
module Model = Memrel_memmodel.Model

let families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

let test_corpus_well_formed () =
  Alcotest.(check int) "twelve tests" 12 (List.length L.all);
  List.iter
    (fun (t : L.t) ->
      Alcotest.(check bool) (t.name ^ " has threads") true (List.length t.programs >= 1);
      Alcotest.(check bool) (t.name ^ " has description") true (String.length t.description > 0))
    L.all

let test_find () =
  Alcotest.(check string) "finds sb" "sb" (L.find "sb").L.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (L.find "nonexistent"))

(* The heart of the operational validation: every corpus expectation must
   hold under exhaustive enumeration for every model. One alcotest case per
   (test, model) pair so failures localize. *)
let verdict_cases =
  List.concat_map
    (fun (t : L.t) ->
      List.map
        (fun family ->
          let name =
            Printf.sprintf "%s under %s" t.L.name
              (match family with
               | Model.Sequential_consistency -> "SC"
               | Model.Total_store_order -> "TSO"
               | Model.Partial_store_order -> "PSO"
               | Model.Weak_ordering -> "WO"
               | Model.Custom -> "custom")
          in
          Alcotest.test_case name `Quick (fun () ->
              let v = L.check t family in
              if not v.agrees then
                Alcotest.fail
                  (Printf.sprintf "observed_relaxed=%b expected=%b" v.observed_relaxed
                     v.expected_relaxed)))
        families)
    L.all

let test_outcome_monotonicity () =
  (* weaker models can only ADD outcomes: SC outcomes must be a subset of
     every other model's outcome set *)
  List.iter
    (fun (t : L.t) ->
      let outcomes family =
        List.map fst (L.run_exhaustive t family).E.outcomes
      in
      let sc = outcomes Model.Sequential_consistency in
      List.iter
        (fun f ->
          let other = outcomes f in
          List.iter
            (fun o ->
              if not (List.mem o other) then
                Alcotest.fail (Printf.sprintf "%s: SC outcome missing under weaker model" t.name))
            sc)
        [ Model.Total_store_order; Model.Partial_store_order; Model.Weak_ordering ])
    L.all

let test_inc_outcomes () =
  (* the canonical bug: exactly {x=1, x=2} are reachable under every model *)
  List.iter
    (fun f ->
      let r = L.run_exhaustive (L.find "inc") f in
      let outcomes = List.map fst r.E.outcomes in
      Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
      Alcotest.(check bool) "x=1 reachable" true (List.mem [ ("x", 1) ] outcomes);
      Alcotest.(check bool) "x=2 reachable" true (List.mem [ ("x", 2) ] outcomes))
    families

let test_sb_outcome_sets () =
  (* SC allows exactly 3 of the 4 (r0, r1) combinations; relaxed models all 4 *)
  let count f = List.length (L.run_exhaustive (L.find "sb") f).E.outcomes in
  Alcotest.(check int) "SC" 3 (count Model.Sequential_consistency);
  Alcotest.(check int) "TSO" 4 (count Model.Total_store_order);
  Alcotest.(check int) "WO" 4 (count Model.Weak_ordering)

let test_inc_atomic_fixes_bug () =
  (* the RMW version: x = 2 is the ONLY outcome under every model *)
  List.iter
    (fun f ->
      let r = L.run_exhaustive (L.find "inc+rmw") f in
      match r.E.outcomes with
      | [ (o, _) ] -> Alcotest.(check (list (pair string int))) "only x=2" [ ("x", 2) ] o
      | l -> Alcotest.fail (Printf.sprintf "expected one outcome, got %d" (List.length l)))
    families

let test_increment_n () =
  (* n = 2 must coincide with the corpus inc; outcomes of inc_n are exactly
     x in {1 .. n} under SC *)
  let t3 = L.increment_n 3 in
  let r = L.run_exhaustive t3 Model.Sequential_consistency in
  let outcomes = List.map fst r.E.outcomes in
  Alcotest.(check int) "three outcomes" 3 (List.length outcomes);
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "x=%d reachable" v) true
        (List.mem [ ("x", v) ] outcomes))
    [ 1; 2; 3 ];
  (* the maximal-loss outcome x = 1 stays reachable under every model *)
  List.iter
    (fun f ->
      let v = L.check t3 f in
      Alcotest.(check bool) "x=1 reachable" true v.observed_relaxed)
    families;
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Litmus.increment_n: n >= 2 required")
    (fun () -> ignore (L.increment_n 1))

let test_window_parameter_matters () =
  (* with window 1, WO degrades to in-order issue: LB's relaxed outcome
     disappears *)
  let v = L.check ~window:1 (L.find "lb") Model.Weak_ordering in
  Alcotest.(check bool) "window=1 forbids LB" false v.observed_relaxed

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("corpus well-formed", test_corpus_well_formed);
      ("find", test_find);
      ("SC outcomes subset of weaker models", test_outcome_monotonicity);
      ("inc outcome set", test_inc_outcomes);
      ("sb outcome counts", test_sb_outcome_sets);
      ("inc+rmw single outcome", test_inc_atomic_fixes_bug);
      ("increment_n", test_increment_n);
      ("WO window parameter", test_window_parameter_matters);
    ]
  @ verdict_cases
