let () =
  Alcotest.run "memrel_interleave"
    [
      ("analytic", Test_analytic.suite);
      ("joint", Test_joint.suite);
      ("scaling", Test_scaling.suite);
      ("timeline", Test_timeline.suite);
      ("gap", Test_gap.suite);
    ]
