module IA = Memrel_interleave.Analytic
module SA = Memrel_settling.Analytic
module Q = Memrel_prob.Rational

let qt = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

let test_theorem62_sc () =
  Alcotest.check qt "1/6" (Q.of_ints 1 6) IA.pr_a_n2_sc;
  Alcotest.check qt "general path agrees" (Q.of_ints 1 6) (IA.pr_a_sc ~n:2);
  Alcotest.(check (float 1e-4)) "~0.1666" 0.1666 (Q.to_float IA.pr_a_n2_sc)

let test_theorem62_wo () =
  Alcotest.check qt "7/54" (Q.of_ints 7 54) IA.pr_a_n2_wo;
  Alcotest.check qt "general path agrees" (Q.of_ints 7 54) (IA.pr_a_wo ~n:2);
  Alcotest.(check (float 1e-4)) "~0.1296" 0.1296 (Q.to_float IA.pr_a_n2_wo)

let test_theorem62_tso () =
  let lo, hi = IA.pr_a_n2_tso_bounds in
  Alcotest.check qt "lower 58/441" (Q.of_ints 58 441) lo;
  Alcotest.check qt "upper 58/441 + 1/189" (Q.add (Q.of_ints 58 441) (Q.of_ints 1 189)) hi;
  (* the paper's printed digits *)
  Alcotest.(check bool) "0.1315 < lo" true (Q.to_float lo > 0.1315);
  Alcotest.(check bool) "hi < 0.1369" true (Q.to_float hi < 0.1369);
  let glo, ghi = IA.pr_a_tso_bounds ~n:2 in
  Alcotest.check qt "general path lower" lo glo;
  Alcotest.check qt "general path upper" hi ghi

let test_tso_series_inside_bracket () =
  let s = IA.pr_a_n2_tso_series () in
  let lo, hi = IA.pr_a_n2_tso_bounds in
  Alcotest.(check bool) "inside" true (Q.to_float lo <= s && s <= Q.to_float hi);
  (* paper's observation: TSO is substantially closer to WO than to SC *)
  let d_wo = Float.abs (s -. Q.to_float IA.pr_a_n2_wo) in
  let d_sc = Float.abs (s -. Q.to_float IA.pr_a_n2_sc) in
  Alcotest.(check bool) "closer to WO than SC" true (d_wo < d_sc)

let test_model_ordering_n2 () =
  (* strict models are safer: Pr[A] SC > TSO > WO *)
  let sc = Q.to_float IA.pr_a_n2_sc in
  let tso = IA.pr_a_n2_tso_series () in
  let wo = Q.to_float IA.pr_a_n2_wo in
  Alcotest.(check bool) "SC > TSO" true (sc > tso);
  Alcotest.(check bool) "TSO > WO" true (tso > wo)

let test_pr_a_n2_generic_path () =
  Alcotest.(check (float 1e-12)) "SC via float path" (1.0 /. 6.0) (IA.pr_a_n2 `SC);
  Alcotest.(check (float 1e-12)) "WO via float path" (7.0 /. 54.0) (IA.pr_a_n2 `WO);
  Alcotest.(check (float 1e-12)) "n=2 equals general pr_a" (IA.pr_a_n2 `WO) (IA.pr_a `WO ~n:2)

let test_ordering_general_n () =
  for n = 2 to 8 do
    let sc = Q.to_float (IA.pr_a_sc ~n) in
    let tso = IA.pr_a_tso_independent_series ~n in
    let wo = Q.to_float (IA.pr_a_wo ~n) in
    Alcotest.(check bool) (Printf.sprintf "n=%d SC > TSO > WO" n) true (sc > tso && tso > wo)
  done

let test_bounds_bracket_series_general_n () =
  for n = 2 to 6 do
    let lo, hi = IA.pr_a_tso_bounds ~n in
    let s = IA.pr_a_tso_independent_series ~n in
    Alcotest.(check bool) (Printf.sprintf "n=%d" n) true
      (Q.to_float lo <= s +. 1e-12 && s <= Q.to_float hi +. 1e-12)
  done

let test_probability_range () =
  for n = 2 to 10 do
    List.iter
      (fun v ->
        Alcotest.(check bool) "in (0,1)" true (v > 0.0 && v < 1.0))
      [ Q.to_float (IA.pr_a_sc ~n); Q.to_float (IA.pr_a_wo ~n); IA.pr_a_tso_independent_series ~n ]
  done

let test_sc_n3_value () =
  (* independently derived: c(3) 2^-6 3! 2^-(2*3)/... = 1/224 *)
  Alcotest.check qt "1/224" (Q.of_ints 1 224) (IA.pr_a_sc ~n:3)

let test_guard () =
  Alcotest.check_raises "n=1" (Invalid_argument "Interleave.Analytic: n >= 2 required") (fun () ->
      ignore (IA.pr_a_sc ~n:1))

let test_transform_consistency () =
  (* Theorem 6.2's derivation: Pr[A] = (2/3) E[2^-Gamma]; cross-check the
     WO transform value 7/36 *)
  Alcotest.check qt "E[2^-Gamma]_WO = 7/36" (Q.of_ints 7 36)
    (SA.expect_pow2_window_exact `WO ~k:1);
  Alcotest.check qt "2/3 * 7/36 = 7/54" (Q.of_ints 7 54)
    (Q.mul (Q.of_ints 2 3) (Q.of_ints 7 36))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("Theorem 6.2: SC = 1/6", test_theorem62_sc);
      ("Theorem 6.2: WO = 7/54", test_theorem62_wo);
      ("Theorem 6.2: TSO bracket", test_theorem62_tso);
      ("TSO series inside bracket", test_tso_series_inside_bracket);
      ("model ordering n=2", test_model_ordering_n2);
      ("generic float path", test_pr_a_n2_generic_path);
      ("ordering for general n", test_ordering_general_n);
      ("bounds bracket series", test_bounds_bracket_series_general_n);
      ("probabilities in range", test_probability_range);
      ("SC n=3 = 1/224", test_sc_n3_value);
      ("guards", test_guard);
      ("transform consistency", test_transform_consistency);
    ]
