test/interleave/test_analytic.ml: Alcotest Float Fmt List Memrel_interleave Memrel_prob Memrel_settling Printf
