test/interleave/test_gap.ml: Alcotest Float List Memrel_interleave Memrel_memmodel Memrel_prob Memrel_settling Printf
