test/interleave/test_scaling.ml: Alcotest Float List Memrel_interleave Memrel_prob Printf
