test/interleave/test_timeline.ml: Alcotest Array Float Gen List Memrel_interleave Memrel_memmodel Memrel_prob Printf QCheck QCheck_alcotest
