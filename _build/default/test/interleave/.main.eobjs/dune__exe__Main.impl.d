test/interleave/main.ml: Alcotest Test_analytic Test_gap Test_joint Test_scaling Test_timeline
