test/interleave/test_joint.ml: Alcotest Float List Memrel_interleave Memrel_memmodel Memrel_prob Printf
