test/interleave/main.mli:
