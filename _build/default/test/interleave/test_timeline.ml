module T = Memrel_interleave.Timeline
module Model = Memrel_memmodel.Model
module Rng = Memrel_prob.Rng

let sched l s = { T.load_time = l; T.store_time = s }

let test_sequential_executes_cleanly () =
  (* disjoint windows: classic sequential increments *)
  let v = T.execute [| sched 0 1; sched 2 3; sched 4 5 |] in
  Alcotest.(check int) "x = 3" 3 v;
  Alcotest.(check bool) "disjoint" true (T.windows_disjoint [| sched 0 1; sched 2 3; sched 4 5 |])

let test_canonical_interleaving_loses_update () =
  (* the Section 2.2 interleaving: both read before either writes *)
  let v = T.execute [| sched 0 2; sched 1 3 |] in
  Alcotest.(check int) "x = 1" 1 v

let test_touching_windows_lose_update () =
  (* thread 2 loads in the same step thread 1's store commits: the load
     reads the pre-step value and the increment is lost *)
  let v = T.execute [| sched 0 1; sched 1 2 |] in
  Alcotest.(check int) "x = 1" 1 v;
  Alcotest.(check bool) "counted as overlap" false (T.windows_disjoint [| sched 0 1; sched 1 2 |])

let test_adjacent_windows_fine () =
  let v = T.execute [| sched 0 1; sched 2 3 |] in
  Alcotest.(check int) "x = 2" 2 v

let test_simultaneous_loads () =
  let v = T.execute [| sched 0 1; sched 0 2 |] in
  Alcotest.(check int) "both read 0: x = 1" 1 v

let test_nested_windows () =
  (* one window containing another: inner commits first, outer overwrites *)
  let v = T.execute [| sched 0 10; sched 2 3 |] in
  Alcotest.(check int) "x = 1" 1 v

let test_negative_times () =
  (* shifted schedules may sit at negative times; semantics unchanged *)
  let v = T.execute [| sched (-5) (-4); sched (-2) (-1) |] in
  Alcotest.(check int) "x = 2" 2 v

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Timeline: empty schedule array") (fun () ->
      ignore (T.execute [||]));
  Alcotest.check_raises "store before load"
    (Invalid_argument "Timeline: load must strictly precede store") (fun () ->
      ignore (T.execute [| sched 3 3 |]))

(* the paper's central equivalence, hunted by property test: the final value
   is n exactly when the windows are pairwise disjoint *)
let prop_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"x = n iff windows pairwise disjoint" ~count:2000
       QCheck.(list_of_size (Gen.int_range 2 6) (pair (int_range 0 15) (int_range 1 6)))
       (fun specs ->
         let schedules =
           Array.of_list (List.map (fun (l, len) -> sched l (l + len)) specs)
         in
         let n = Array.length schedules in
         QCheck.assume (n >= 2);
         let v = T.execute schedules in
         let d = T.windows_disjoint schedules in
         (v = n) = d))

let test_sample_consistency () =
  let rng = Rng.create 7 in
  for _ = 1 to 2000 do
    let s = T.sample (Model.tso ()) ~n:3 rng in
    if (s.final_value = 3) <> s.disjoint then
      Alcotest.fail "sampled draw violates the equivalence"
  done

let test_bug_rate_matches_strict_joint () =
  (* Pr[overlap] from the timeline equals the `Strict joint estimate (they
     are the same event on the same process) *)
  let rng = Rng.create 11 in
  let semantic, overlap = T.bug_rate ~trials:60_000 (Model.wo ()) ~n:2 rng in
  Alcotest.(check (float 1e-9)) "semantic = overlap rate" overlap semantic;
  let rng2 = Rng.create 13 in
  let e = Memrel_interleave.Joint.estimate ~convention:`Strict ~trials:60_000 (Model.wo ()) ~n:2 rng2 in
  Alcotest.(check bool)
    (Printf.sprintf "1 - %f within noise of %f" semantic e.pr_no_bug)
    true
    (Float.abs ((1.0 -. semantic) -. e.pr_no_bug) < 0.01)

let test_bug_rate_model_ordering () =
  let rng = Rng.create 17 in
  let rate model = fst (T.bug_rate ~trials:40_000 model ~n:2 rng) in
  let sc = rate Model.sc and wo = rate (Model.wo ()) in
  Alcotest.(check bool) (Printf.sprintf "SC %.3f < WO %.3f" sc wo) true (sc < wo)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("sequential increments", test_sequential_executes_cleanly);
      ("canonical interleaving", test_canonical_interleaving_loses_update);
      ("touching windows lose an update", test_touching_windows_lose_update);
      ("adjacent windows fine", test_adjacent_windows_fine);
      ("simultaneous loads", test_simultaneous_loads);
      ("nested windows", test_nested_windows);
      ("negative times", test_negative_times);
      ("validation", test_validation);
      ("sampled equivalence", test_sample_consistency);
      ("bug rate matches strict joint", test_bug_rate_matches_strict_joint);
      ("model ordering", test_bug_rate_model_ordering);
    ]
  @ [ prop_equivalence ]
