(* The generalized bug pattern: [gap] plain operations inside the critical
   section (Program.generate_with_gap threaded through Joint). *)

module J = Memrel_interleave.Joint
module Program = Memrel_settling.Program
module Settle = Memrel_settling.Settle
module Window = Memrel_settling.Window
module Model = Memrel_memmodel.Model
module Op = Memrel_memmodel.Op
module Rng = Memrel_prob.Rng

let test_program_shape () =
  let rng = Rng.create 1 in
  let p = Program.generate_with_gap rng ~m:5 ~gap:3 in
  Alcotest.(check int) "length" 10 (Program.length p);
  Alcotest.(check int) "cl" 5 (Program.critical_load_index p);
  Alcotest.(check int) "cs" 9 (Program.critical_store_index p);
  for i = 6 to 8 do
    Alcotest.(check bool) "interior is plain" false (Op.is_critical (Program.op p i))
  done;
  Alcotest.check_raises "negative gap" (Invalid_argument "Program.generate_with_gap: gap < 0")
    (fun () -> ignore (Program.generate_with_gap rng ~m:3 ~gap:(-1)))

let test_gap_zero_is_generate () =
  (* same rng stream, same program *)
  let a = Program.to_string (Program.generate (Rng.create 7) ~m:10) in
  let b = Program.to_string (Program.generate_with_gap (Rng.create 7) ~m:10 ~gap:0) in
  Alcotest.(check string) "identical" a b

let test_sc_gamma_is_gap () =
  let rng = Rng.create 2 in
  for gap = 0 to 5 do
    let prog = Program.generate_with_gap rng ~m:8 ~gap in
    let pi = Settle.run Model.sc rng prog in
    Alcotest.(check int) (Printf.sprintf "gap=%d" gap) gap (Window.gamma prog pi)
  done

let test_tso_gamma_at_least_gap () =
  (* under TSO the interior can only grow (the critical LD climbs; interior
     STs are pinned; interior LDs cannot pass the critical LD) *)
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let prog = Program.generate_with_gap rng ~m:10 ~gap:3 in
    let pi = Settle.run (Model.tso ()) rng prog in
    if Window.gamma prog pi < 3 then Alcotest.fail "TSO window shrank below the gap"
  done

let test_wo_gamma_can_shrink () =
  (* under WO interior operations migrate out and the critical store chases:
     windows below the gap must occur *)
  let rng = Rng.create 4 in
  let shrunk = ref false in
  for _ = 1 to 2000 do
    let prog = Program.generate_with_gap rng ~m:10 ~gap:3 in
    let pi = Settle.run (Model.wo ()) rng prog in
    if Window.gamma prog pi < 3 then shrunk := true
  done;
  Alcotest.(check bool) "window shrank at least once" true !shrunk

let test_sc_closed_form () =
  (* SC: Gamma = gap + 2 deterministically, so Pr[A] = (2/3) 2^-(gap+2) *)
  let rng = Rng.create 5 in
  List.iter
    (fun gap ->
      let e = J.estimate ~gap ~trials:150_000 Model.sc ~n:2 rng in
      let expected = 2.0 /. 3.0 *. Float.pow 2.0 (float_of_int (-(gap + 2))) in
      Alcotest.(check bool)
        (Printf.sprintf "gap=%d: %f vs %f" gap e.pr_no_bug expected)
        true
        (Float.abs (e.pr_no_bug -. expected) < 0.004))
    [ 0; 1; 3 ]

let test_ordering_inversion () =
  (* the headline finding: at gap 0 SC beats WO; with a fat critical section
     WO's compression wins and WO beats SC *)
  let rng = Rng.create 6 in
  let pr model gap = (J.estimate ~gap ~trials:120_000 model ~n:2 rng).J.pr_no_bug in
  Alcotest.(check bool) "gap=0: SC safer" true (pr Model.sc 0 > pr (Model.wo ()) 0);
  Alcotest.(check bool) "gap=4: WO safer" true (pr (Model.wo ()) 4 > pr Model.sc 4);
  (* TSO stays below SC at every gap: its windows only grow *)
  Alcotest.(check bool) "TSO still below SC at gap=4" true (pr Model.sc 4 > pr (Model.tso ()) 4)

let test_semi_analytic_gap () =
  let rng = Rng.create 8 in
  let mc = (J.estimate ~gap:2 ~trials:200_000 (Model.wo ()) ~n:2 rng).J.pr_no_bug in
  let semi = J.semi_analytic ~gap:2 ~trials:200_000 (Model.wo ()) ~n:2 rng in
  Alcotest.(check bool) (Printf.sprintf "mc %f ~ semi %f" mc semi) true
    (Float.abs (mc -. semi) < 0.005)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("program shape", test_program_shape);
      ("gap 0 is generate", test_gap_zero_is_generate);
      ("SC gamma equals gap", test_sc_gamma_is_gap);
      ("TSO gamma at least gap", test_tso_gamma_at_least_gap);
      ("WO gamma can shrink", test_wo_gamma_can_shrink);
      ("SC closed form", test_sc_closed_form);
      ("ordering inversion at large gaps", test_ordering_inversion);
      ("semi-analytic with gap", test_semi_analytic_gap);
    ]
