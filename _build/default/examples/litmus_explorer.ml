(* Litmus explorer: run the operational multiprocessor simulator on the
   classic litmus tests and the paper's canonical atomicity violation,
   exhaustively enumerating every reachable outcome under each memory model.

   This grounds the paper's abstract reordering model: the same model
   hierarchy (SC < TSO < PSO < WO) emerges from store buffers and
   out-of-order issue windows.

   Run with: dune exec examples/litmus_explorer.exe *)

open Memrel

let families =
  [ (Model.Sequential_consistency, "SC"); (Model.Total_store_order, "TSO");
    (Model.Partial_store_order, "PSO"); (Model.Weak_ordering, "WO") ]

let outcome_to_string o =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) o)

let () =
  List.iter
    (fun (t : Litmus.t) ->
      Printf.printf "== %s: %s\n" t.name t.description;
      List.iteri
        (fun i prog ->
          Printf.printf "   T%d: %s\n" i
            (String.concat "; " (List.map Instr.to_string (Array.to_list prog))))
        t.programs;
      Printf.printf "   asking about: %s\n" (outcome_to_string t.relaxed_outcome);
      List.iter
        (fun (family, name) ->
          let r = Litmus.run_exhaustive t family in
          let reachable = List.mem_assoc t.relaxed_outcome r.Enumerate.outcomes in
          Printf.printf "   %-4s %-9s (%d outcomes, %d states): %s\n" name
            (if reachable then "ALLOWED" else "forbidden")
            (List.length r.Enumerate.outcomes) r.Enumerate.states_visited
            (String.concat " | " (List.map (fun (o, _) -> outcome_to_string o) r.Enumerate.outcomes)))
        families;
      print_newline ())
    Litmus.all;
  (* the canonical bug under a random scheduler: manifestation frequency *)
  print_endline "Canonical increment bug, random uniform scheduler, 20000 runs each:";
  let t = Litmus.find "inc" in
  let rng = Rng.create 11 in
  List.iter
    (fun (family, name) ->
      let d = Semantics.of_model family in
      let outcomes =
        Machine_exec.estimate_outcome ~trials:20_000 d (Litmus.initial_state t)
          ~observe:t.observe rng
      in
      let bug = Option.value ~default:0 (List.assoc_opt [ ("x", 1) ] outcomes) in
      Printf.printf "  %-4s Pr[x = 1] ~ %.3f\n" name (float_of_int bug /. 20_000.0))
    families;
  print_endline "(nonzero everywhere — even SC: the paper's starting observation)"
