(* Fence insertion (the Section 7 extension): one-way acquire/release
   barriers restrict settling, shrinking critical windows and recovering
   reliability under weak models.

   Two sweeps under Weak Ordering, n = 2 threads:

   1. a single acquire fence placed d instructions above the critical load —
      the closer the fence, the harder the window's cap, interpolating
      between fence-free WO (7/54) and SC (1/6);
   2. periodic acquire fences every k instructions with a prefix length that
      is NOT a multiple of k (m = 37), so the fence-to-load distance varies
      — a realistic "sprinkle fences through the code" picture.

   Run with: dune exec examples/fence_tuning.exe *)

open Memrel

let trials = 300_000

let estimate rng make_prog =
  let hits = ref 0 in
  for _ = 1 to trials do
    let prog = make_prog rng in
    let gamma () =
      let pi = Settle.run (Model.wo ()) rng prog in
      Window.gamma prog pi + 2
    in
    if (Shift.sample rng [| gamma (); gamma () |]).disjoint then incr hits
  done;
  float_of_int !hits /. float_of_int trials

(* one acquire fence exactly [d] instructions above the critical load *)
let prog_with_fence_at_distance d rng =
  let m = 32 in
  let base = Program.generate rng ~m in
  let ops = Array.to_list (Program.ops base) in
  let ops =
    List.concat
      (List.mapi
         (fun i op -> if i = m - d then [ Op.fence Fence.Acquire; op ] else [ op ])
         ops)
  in
  Program.of_ops ops

let () =
  let rng = Rng.create 4242 in
  Printf.printf "WO, n = 2, %d trials per row. Fence-free Pr[A] = 7/54 ~ 0.1296; SC = 1/6 ~ 0.1667\n\n"
    trials;
  print_endline "1. single acquire fence, d instructions above the critical load:";
  Printf.printf "   %-14s %-10s %s\n" "d" "simulated" "closed form";
  List.iter
    (fun d ->
      Printf.printf "   %-14d %-10.4f %.4f\n" d
        (estimate rng (prog_with_fence_at_distance d))
        (Window_analytic_general.pr_a_n2 ~b:(Window_analytic_general.b_wo_fenced ~s:0.5 ~d)))
    [ 0; 1; 2; 3; 5; 8 ];
  Printf.printf "   %-14s %.4f\n" "(no fence)"
    (estimate rng (fun rng -> Program.generate rng ~m:32));
  print_newline ();
  print_endline "2. periodic acquire fences, every k instructions (m = 37):";
  Printf.printf "   %-14s %-18s Pr[A]\n" "k" "(dist to load)";
  List.iter
    (fun k ->
      Printf.printf "   %-14d %-18d %.4f\n" k (37 mod k)
        (estimate rng (fun rng ->
             Program.with_fences ~every:k ~kind:Fence.Acquire (Program.generate rng ~m:37))))
    [ 16; 8; 4; 2 ];
  print_endline "   (windows rarely exceed a few instructions, so only the NEAREST fence";
  print_endline "    above the critical load — at distance m mod k — matters: density";
  print_endline "    helps exactly insofar as it shrinks that distance)";
  print_newline ();
  Printf.printf "3. release fences every 2 (permissive direction): %.4f\n"
    (estimate rng (fun rng ->
         Program.with_fences ~every:2 ~kind:Fence.Release (Program.generate rng ~m:37)));
  print_endline "   (recover nothing: settling only moves instructions upward, and release";
  print_endline "    fences allow upward passes)";
  print_newline ();
  print_endline "Matches the paper's conjecture: fences monotonically reduce manifestation,";
  print_endline "capped by the SC value; a fence at d = 0 reproduces SC exactly."
