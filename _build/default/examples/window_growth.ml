(* Critical-window growth (Theorem 4.1), visualized.

   For each memory model, prints the distribution of the number of
   instructions the settling process inserts between the critical LD and
   critical ST — the window whose size drives bug vulnerability — comparing
   the paper's closed forms / bounds, the exact finite-m dynamic program,
   and Monte Carlo, as bar charts.

   Run with: dune exec examples/window_growth.exe *)

open Memrel

let gamma_max = 6

let () =
  let rng = Rng.create 99 in
  let show name analytic_pmf model =
    Printf.printf "== %s ==\n" name;
    print_endline "analytic (m -> infinity):";
    print_string (Render.window_bar analytic_pmf ~width:40);
    let dp = Window_exact_dp.gamma_pmf model ~m:16 in
    print_endline "exact DP (m = 16):";
    print_string
      (Render.window_bar (List.filter (fun (g, _) -> g <= gamma_max) dp) ~width:40);
    let mc = Window_mc.estimate ~trials:200_000 model rng in
    print_endline "Monte Carlo (200k samples, m = 64):";
    print_string
      (Render.window_bar (List.filter (fun (g, _) -> g <= gamma_max) mc.gamma_pmf) ~width:40);
    print_newline ()
  in
  show "Sequential Consistency" (Window_analytic.window_pmf `SC ~gamma_max) Model.sc;
  show "Total Store Order (exact series)"
    (Window_analytic.window_pmf `TSO_series ~gamma_max)
    (Model.tso ());
  show "Weak Ordering" (Window_analytic.window_pmf `WO ~gamma_max) (Model.wo ());
  (* PSO: the case the paper's footnote 4 waves at; our settling semantics
     let the critical ST re-absorb passed stores, so PSO windows are smaller
     than TSO's *)
  Printf.printf "== Partial Store Order (no closed form in the paper) ==\n";
  let dp = Window_exact_dp.gamma_pmf (Model.pso ()) ~m:16 in
  print_endline "exact DP (m = 16):";
  print_string (Render.window_bar (List.filter (fun (g, _) -> g <= gamma_max) dp) ~width:40);
  print_newline ();
  print_endline "Growth rates, as in Theorem 4.1's remark: per extra instruction the window";
  print_endline "probability decays ~4x under TSO but only ~2x under WO; SC never grows."
