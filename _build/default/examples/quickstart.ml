(* Quickstart: the paper's headline numbers in a dozen lines of API.

   Computes Theorem 6.2 — the probability that the canonical atomicity
   violation does NOT manifest for two threads — three ways: the paper's
   closed forms, our exact-series refinement for TSO, and an end-to-end
   Monte Carlo run of the whole pipeline (program generation -> settling ->
   shifting -> overlap detection).

   Run with: dune exec examples/quickstart.exe *)

open Memrel

let () =
  print_endline "Pr[A] = probability of NO bug manifestation, n = 2 threads";
  print_endline "(Theorem 6.2: SC ~ 0.1666, TSO in (0.1315, 0.1369), WO ~ 0.1296)";
  print_newline ();
  let rng = Rng.create 2024 in
  let trials = 500_000 in
  let row name analytic model =
    let mc = Joint.estimate ~trials model ~n:2 rng in
    Printf.printf "  %-4s analytic %-9s (%.4f)   simulated %.4f  [%.4f, %.4f]\n" name
      (Rational.to_string analytic) (Rational.to_float analytic) mc.pr_no_bug mc.ci.lo mc.ci.hi
  in
  row "SC" Manifestation.pr_a_n2_sc Model.sc;
  row "WO" Manifestation.pr_a_n2_wo (Model.wo ());
  let lo, hi = Manifestation.pr_a_n2_tso_bounds in
  let mc = Joint.estimate ~trials (Model.tso ()) ~n:2 rng in
  Printf.printf "  TSO  paper bounds (%.4f, %.4f); exact series %.4f; simulated %.4f\n"
    (Rational.to_float lo) (Rational.to_float hi)
    (Manifestation.pr_a_n2_tso_series ())
    mc.pr_no_bug;
  print_newline ();
  print_endline "Reading: weaker memory models do make the bug more likely at n = 2 —";
  print_endline "TSO sits much closer to WO (0.1296) than to SC (0.1666), the paper's point."
