examples/thread_scaling.mli:
