examples/quickstart.mli:
