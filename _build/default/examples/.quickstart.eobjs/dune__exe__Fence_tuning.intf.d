examples/fence_tuning.mli:
