examples/fence_tuning.ml: Array Fence List Memrel Model Op Printf Program Rng Settle Shift Window Window_analytic_general
