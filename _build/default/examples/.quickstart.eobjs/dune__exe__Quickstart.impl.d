examples/quickstart.ml: Joint Manifestation Memrel Model Printf Rational Rng
