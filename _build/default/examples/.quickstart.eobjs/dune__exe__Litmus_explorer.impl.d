examples/litmus_explorer.ml: Array Enumerate Instr List Litmus Machine_exec Memrel Model Option Printf Rng Semantics String
