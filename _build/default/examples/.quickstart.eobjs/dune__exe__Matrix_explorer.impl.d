examples/matrix_explorer.ml: Array List Memrel Model Printf Window_exact_dp
