examples/thread_scaling.ml: List Manifestation Memrel Model Printf Scaling
