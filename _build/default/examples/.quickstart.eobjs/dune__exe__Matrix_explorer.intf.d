examples/matrix_explorer.mli:
