examples/window_growth.mli:
