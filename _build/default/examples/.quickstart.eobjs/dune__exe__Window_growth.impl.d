examples/window_growth.ml: List Memrel Model Printf Render Rng Window_analytic Window_exact_dp Window_mc
