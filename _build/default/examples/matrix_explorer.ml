(* Matrix explorer (footnote 3 generality): which of the four reorderable
   pairs actually matter for the canonical atomicity violation?

   The paper's models are four points in a 16-point lattice of on/off
   reordering matrices. This example computes the exact finite-m window
   transform for EVERY matrix (s = 1/2 where a pair is on) and the implied
   two-thread Pr[A], revealing the structure:

   - the pairs that let the critical LOAD climb (ST/LD past stores, LD/LD
     past loads) OPEN the window and cost reliability;
   - the pairs that let the critical STORE chase it (ST/ST, LD/ST) CLOSE
     the window again and recover reliability — that is why PSO (ST/ST on)
     is SAFER than TSO here despite being the "weaker" hardware model.

   Run with: dune exec examples/matrix_explorer.exe *)

open Memrel

let bit_names = [| "ST/ST"; "ST/LD"; "LD/ST"; "LD/LD" |]

let () =
  let m = 14 in
  Printf.printf
    "exact finite-m (m = %d) two-thread Pr[A] for all 16 on/off matrices, s = 1/2\n\n" m;
  Printf.printf "%-6s %-6s %-6s %-6s | %-9s %9s | %s\n" "ST/ST" "ST/LD" "LD/ST" "LD/LD"
    "Pr[A] n=2" "E[gamma]" "named model";
  let results = ref [] in
  for mask = 0 to 15 do
    let bit i = mask land (1 lsl i) <> 0 in
    let v b = if b then 0.5 else 0.0 in
    let model =
      Model.custom
        ~name:(Printf.sprintf "m%x" mask)
        ~st_st:(v (bit 0)) ~st_ld:(v (bit 1)) ~ld_st:(v (bit 2)) ~ld_ld:(v (bit 3))
    in
    let pmf = Window_exact_dp.gamma_pmf model ~m in
    let e_transform = Window_exact_dp.expect_pow2_window model ~m ~k:1 in
    let pr_a = 2.0 /. 3.0 *. e_transform in
    let mean_gamma =
      List.fold_left (fun acc (g, p) -> acc +. (float_of_int g *. p)) 0.0 pmf
    in
    let named =
      match (bit 0, bit 1, bit 2, bit 3) with
      | false, false, false, false -> "SC"
      | false, true, false, false -> "TSO"
      | true, true, false, false -> "PSO"
      | true, true, true, true -> "WO"
      | _ -> ""
    in
    results := (mask, pr_a) :: !results;
    Printf.printf "%-6s %-6s %-6s %-6s | %9.4f %9.4f | %s\n"
      (if bit 0 then "  X" else "")
      (if bit 1 then "  X" else "")
      (if bit 2 then "  X" else "")
      (if bit 3 then "  X" else "")
      pr_a mean_gamma named
  done;
  print_newline ();
  (* quantify each bit's marginal effect: average Pr[A] delta from turning
     the bit on, over the 8 settings of the other bits *)
  Printf.printf "marginal effect of each pair on Pr[A] (averaged over the other bits):\n";
  for i = 0 to 3 do
    let delta = ref 0.0 in
    List.iter
      (fun (mask, pr) ->
        if mask land (1 lsl i) <> 0 then begin
          let off_pr = List.assoc (mask lxor (1 lsl i)) !results in
          delta := !delta +. (pr -. off_pr)
        end)
      !results;
    Printf.printf "  %-6s %+.4f %s\n" bit_names.(i) (!delta /. 8.0)
      (match i with
       | 1 | 3 -> "(opens the window: the critical load climbs)"
       | _ -> "(closes it again: the critical store chases)")
  done;
  print_newline ();
  print_endline "Reading: reliability is not monotone in how many pairs a model relaxes —";
  print_endline "what matters is WHICH pairs. The load-advancing relaxations (ST/LD, LD/LD)";
  print_endline "each cost ~2 points of Pr[A]; the store-advancing ones (ST/ST, LD/ST) each";
  print_endline "buy back ~0.5. ST/LD — the one relaxation every real processor performs";
  print_endline "(x86-TSO included) — is the single most damaging bit for this bug class."
