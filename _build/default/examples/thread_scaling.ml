(* Thread scaling (Theorem 6.3): as the number of concurrent buggy threads
   grows, the reliability advantage of a strict memory model becomes
   proportionally insignificant.

   The table prints, per thread count n:
     - log2 Pr[A] per model (exact for SC/WO; exact-series independence
       approximation for TSO),
     - the normalized exponent -log2 Pr[A] / n^2 (Theorem 6.3 sends every
       model's value to 3/2),
     - the SC advantage in bits, and that advantage relative to the total
       exponent — the quantity that vanishes.

   Run with: dune exec examples/thread_scaling.exe *)

open Memrel

let () =
  print_endline
    "  n | log2 Pr[A]:   SC        WO       TSO | -log2Pr/n^2: SC     WO    TSO | SC adv.(bits)  relative";
  List.iter
    (fun (r : Scaling.row) ->
      let norm v = Scaling.normalized_exponent ~log2_pr:v ~n:r.n in
      let gap_wo, _ = Scaling.gap_ratio_log2 r in
      Printf.printf "%3d |        %9.2f %9.2f %9.2f |            %.3f  %.3f  %.3f |   %6.2f      %6.4f\n"
        r.n r.log2_sc r.log2_wo r.log2_tso (norm r.log2_sc) (norm r.log2_wo) (norm r.log2_tso)
        gap_wo
        (gap_wo /. -.r.log2_sc))
    (List.map Scaling.row [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64; 96; 128 ]);
  print_newline ();
  print_endline "Two effects, as in the paper:";
  print_endline "  1. every column's normalized exponent converges to the same 3/2 + o(1);";
  print_endline "  2. SC's advantage grows only Theta(n) bits against a Theta(n^2)-bit exponent,";
  print_endline "     so its relative value (last column) -> 0: with many threads, the strict";
  print_endline "     model buys proportionally nothing.";
  print_newline ();
  (* the TSO column uses the independence approximation; quantify what it
     misses with the exact correlated joint law (coupled-chain DP) *)
  print_endline "TSO correlation correction (exact joint law vs independence approximation):";
  List.iter
    (fun n ->
      let exact = Manifestation.pr_a_joint_exact (Model.tso ()) ~n in
      let indep = Manifestation.pr_a_tso_independent_series ~n in
      Printf.printf "  n=%d: exact %.4e vs indep %.4e (%+.1f%%)\n" n exact indep
        (100.0 *. (indep -. exact) /. exact))
    [ 2; 3; 4; 5 ];
  print_endline
    "(the shared initial program correlates window sizes across threads, nudging Pr[A] up;";
  print_endline
    " the effect grows with n but stays a constant factor against the 2^(-1.5 n^2) decay)"
