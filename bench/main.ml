(* memrel bench harness: regenerates every table and figure of the paper
   (sections E1..E16, as indexed in DESIGN.md) printing paper values next to
   measured/computed ones, then runs Bechamel timing benchmarks for the
   pipeline's components.

   Run with: dune exec bench/main.exe *)

open Memrel
module Q = Rational

let hr title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let seed = 20110606 (* PODC'11, June 6 *)

(* -- E1: Table 1 ------------------------------------------------------ *)

let e1 () =
  hr "E1. Table 1 — memory models and their relaxed reorderings";
  print_string (Model.table1 ());
  print_endline "(paper Table 1: SC relaxes nothing; TSO relaxes ST/LD; PSO adds ST/ST;";
  print_endline " WO relaxes all four pairs — reproduced from the model definitions)"

(* -- E2: Figure 1 ----------------------------------------------------- *)

let e2 () =
  hr "E2. Figure 1 — an instantiation of the settling process under TSO";
  print_string (Render.figure1_random ~m:6 ~seed:17 (Model.tso ()));
  print_endline "(LDs repeatedly settle upward with probability 1/2; STs and fences never";
  print_endline " move under TSO; the critical pair is starred)"

(* -- E3: Figure 2 ----------------------------------------------------- *)

let e3 () =
  hr "E3. Figure 2 — an instantiation of the shift process, gammas (3,2,5)";
  print_string (Render.figure2_paper_instance ());
  print_endline "(note: the paper declares A to hold for this instance; that is true under";
  print_endline " the figure's half-open drawing but not under Theorem 5.1's closed-segment";
  print_endline " algebra, which this library follows — both verdicts printed above)"

(* -- E4: Theorem 4.1 -------------------------------------------------- *)

let e4 () =
  hr "E4. Theorem 4.1 — critical-window growth Pr[B_gamma], p = s = 1/2";
  let rng = Rng.create seed in
  let trials = 300_000 in
  let mc model = (Window_mc.estimate ~trials model rng).Window_mc.gamma_pmf in
  let mc_sc = mc Model.sc and mc_tso = mc (Model.tso ()) and mc_wo = mc (Model.wo ()) in
  let dp_tso = Window_exact_dp.gamma_pmf (Model.tso ()) ~m:16 in
  let dp_wo = Window_exact_dp.gamma_pmf (Model.wo ()) ~m:14 in
  let get pmf g = try List.assoc g pmf with Not_found -> 0.0 in
  Printf.printf "%5s | %8s %8s | %8s %8s %8s | %9s %9s %9s %9s %9s\n" "gamma" "SC:thm"
    "SC:mc" "WO:thm" "WO:dp" "WO:mc" "TSO:lo" "TSO:serie" "TSO:hi" "TSO:dp" "TSO:mc";
  for g = 0 to 8 do
    Printf.printf "%5d | %8.5f %8.5f | %8.5f %8.5f %8.5f | %9.5f %9.5f %9.5f %9.5f %9.5f\n" g
      (Q.to_float (Window_analytic.b_sc g))
      (get mc_sc g)
      (Q.to_float (Window_analytic.b_wo g))
      (get dp_wo g) (get mc_wo g)
      (Q.to_float (Window_analytic.b_tso_lower g))
      (Window_analytic.b_tso_series g)
      (Q.to_float (Window_analytic.b_tso_upper g))
      (get dp_tso g) (get mc_tso g)
  done;
  Printf.printf
    "\npaper: Pr[B_gamma] is 0 (SC), 2^-gamma/3 (WO), and within [(6/7)4^-gamma,\n\
     +(2/21)2^-gamma] (TSO) for gamma > 0; 2/3 at gamma = 0 for both relaxed models.\n\
     measured: MC (%d trials, m = 64) and the exact finite-m DP agree with the exact\n\
     series everywhere; the paper's TSO bounds bracket it. Window decay per extra\n\
     instruction: ~4x for TSO, ~2x for WO, as the paper remarks.\n"
    trials

(* -- E5: Claim 4.3 ---------------------------------------------------- *)

let e5 () =
  hr "E5. Claim 4.3 — Pr[bottom settled instruction is a ST] -> 2/3 under TSO";
  Printf.printf "%4s %14s %14s\n" "i" "recurrence" "exact DP";
  List.iter
    (fun i ->
      Printf.printf "%4d %14.8f %14.8f\n" i
        (Q.to_float (Window_analytic.st_bottom_prob i))
        (Window_exact_dp.bottom_st_probability (Model.tso ()) ~m:i))
    [ 1; 2; 3; 4; 6; 8; 10; 12 ];
  Printf.printf "limit (paper): 2/3 = %.8f\n" (Q.to_float Window_analytic.st_bottom_limit)

(* -- E6: Lemma 4.2 ---------------------------------------------------- *)

let e6 () =
  hr "E6. Lemma 4.2 — Pr[L_mu]: paper lower bound vs exact series vs MC";
  (* MC of L_mu: settle the m prefix instructions of a random program and
     count the contiguous STs directly above the still-unsettled critical
     load; the traced run exposes the intermediate order. *)
  let rng = Rng.create (seed + 1) in
  let trials = 300_000 in
  let m = 48 in
  let counts = Array.make (m + 1) 0 in
  for _ = 1 to trials do
    let prog = Program.generate rng ~m in
    (* settle only the m prefix rounds: the critical pair still sits at
       positions m, m+1 — exactly the paper's S_m *)
    let order = Settle.run_prefix (Model.tso ()) rng prog ~rounds:(m - 1) in
    let mu = ref 0 in
    (try
       for pos = m - 1 downto 0 do
         match Op.kind_of order.(pos) with
         | Some Op.ST -> incr mu
         | _ -> raise Exit
       done
     with Exit -> ());
    counts.(!mu) <- counts.(!mu) + 1
  done;
  Printf.printf "%4s %16s %14s %14s\n" "mu" "paper bound" "exact series" "mc";
  List.iter
    (fun mu ->
      let bound =
        if mu = 0 then Q.to_float Window_analytic.l0
        else Q.to_float (Q.mul (Q.of_ints 4 7) (Q.pow2 (-mu)))
      in
      Printf.printf "%4d %16.6f %14.6f %14.6f\n" mu bound
        (Window_analytic.l_mu_series mu)
        (float_of_int counts.(mu) /. float_of_int trials))
    [ 0; 1; 2; 3; 4; 5; 6 ];
  print_endline "(paper: Pr[L_0] = 1/3 exactly and Pr[L_mu] >= (4/7) 2^-mu; the exact";
  print_endline " series and MC agree and sit above the bound, as required)"

(* -- E7: Theorem 5.1 / Corollary 5.2 ---------------------------------- *)

let e7 () =
  hr "E7. Theorem 5.1 / Corollary 5.2 — shift-process disjointness";
  let rng = Rng.create (seed + 2) in
  Printf.printf "%16s %14s %12s %12s\n" "gammas" "exact" "mc(300k)" "";
  List.iter
    (fun gammas ->
      let exact = Shift_exact.disjoint_probability gammas in
      let est, ci = Shift.estimate ~trials:300_000 rng gammas in
      Printf.printf "%16s %14.6f %12.6f [%0.6f, %0.6f]\n"
        ("(" ^ String.concat "," (Array.to_list (Array.map string_of_int gammas)) ^ ")")
        (Q.to_float exact) est ci.lo ci.hi)
    [ [| 2; 2 |]; [| 3; 2; 5 |]; [| 0; 0; 0 |]; [| 1; 2; 3; 4 |]; [| 2; 2; 2; 2; 2 |] ];
  Printf.printf "\nc(n) (paper: c(n) in [2,4], c(2) = 8/3):\n";
  for n = 1 to 8 do
    Printf.printf "  c(%d) = %-12s ~ %.6f\n" n (Q.to_string (Shift_exact.c n))
      (Q.to_float (Shift_exact.c n))
  done

(* -- E8: Theorem 6.2 -------------------------------------------------- *)

let e8 () =
  hr "E8. Theorem 6.2 — Pr[A] for n = 2 threads (the paper's headline table)";
  let rng = Rng.create (seed + 3) in
  let trials = 600_000 in
  let mc model = Joint.estimate ~trials model ~n:2 rng in
  let sc = mc Model.sc and tso = mc (Model.tso ()) and wo = mc (Model.wo ()) in
  Printf.printf "%5s | %22s | %10s %24s\n" "model" "paper" "measured" "95% CI";
  Printf.printf "%5s | %22s | %10.4f [%.4f, %.4f]\n" "SC" "1/6 ~ 0.1666" sc.pr_no_bug sc.ci.lo
    sc.ci.hi;
  Printf.printf "%5s | %22s | %10.4f [%.4f, %.4f]   series: %.4f\n" "TSO"
    "(0.1315, 0.1369)" tso.pr_no_bug tso.ci.lo tso.ci.hi
    (Manifestation.pr_a_n2_tso_series ());
  Printf.printf "%5s | %22s | %10.4f [%.4f, %.4f]\n" "WO" "7/54 ~ 0.1296" wo.pr_no_bug wo.ci.lo
    wo.ci.hi;
  Printf.printf "\nexact rationals: SC = %s, WO = %s, TSO in (%s, %s)\n"
    (Q.to_string Manifestation.pr_a_n2_sc)
    (Q.to_string Manifestation.pr_a_n2_wo)
    (Q.to_string (fst Manifestation.pr_a_n2_tso_bounds))
    (Q.to_string (snd Manifestation.pr_a_n2_tso_bounds));
  (* the strict Appendix A.3 endpoint convention, as an ablation *)
  let strict = Joint.estimate ~convention:`Strict ~trials:200_000 Model.sc ~n:2 rng in
  Printf.printf
    "ablation (endpoint convention): the literal Appendix A.3 overlap event gives\n\
     SC Pr[A] = %.4f (~1/3) instead of 1/6 — the paper's analysis counts exactly\n\
     adjacent windows as colliding; shape conclusions are unaffected.\n"
    strict.pr_no_bug;
  (* machine-verified enclosure: exact rational partial sums with provable
     truncation-tail bounds — no float on the sound path *)
  let enc = Window_verified.pr_a_tso_n2 ~q_max:40 ~mu_max:40 ~gamma_max:40 () in
  Printf.printf
    "VERIFIED (exact rationals + tail bounds): Pr[A]_TSO in [%.15f, %.15f]\n\
     (width %.1e); strict inclusion in the paper's (58/441, 58/441 + 1/189): %b\n"
    (Q.to_float enc.Window_verified.lo)
    (Q.to_float enc.Window_verified.hi)
    (Q.to_float (Window_verified.width enc))
    (Q.compare (Q.of_ints 58 441) enc.Window_verified.lo < 0
     && Q.compare enc.Window_verified.hi (Q.add (Q.of_ints 58 441) (Q.of_ints 1 189)) < 0);
  (* semantic closure: execute the increments on the timeline and compare
     the bug event with the window-overlap event draw by draw *)
  let semantic, overlap = Timeline.bug_rate ~trials:200_000 (Model.tso ()) ~n:2 rng in
  Printf.printf
    "semantic execution (Timeline): Pr[x <> n] = %.4f vs Pr[windows overlap] = %.4f\n\
     — identical by construction on every draw (the A.3 equivalence, also property-tested).\n"
    semantic overlap

(* -- E9: Theorem 6.3 -------------------------------------------------- *)

let e9 () =
  hr "E9. Theorem 6.3 — scaling in the number of threads";
  Printf.printf "%4s %11s %11s %11s | %7s %7s %7s | %9s %10s\n" "n" "log2Pr(SC)" "log2Pr(WO)"
    "log2Pr(TSO)" "SC/n^2" "WO/n^2" "TSO/n^2" "SCadv" "SCadv/n^2";
  List.iter
    (fun n ->
      let r = Scaling.row n in
      let norm v = Scaling.normalized_exponent ~log2_pr:v ~n in
      let gap, _ = Scaling.gap_ratio_log2 r in
      Printf.printf "%4d %11.2f %11.2f %11.2f | %7.4f %7.4f %7.4f | %9.2f %10.6f\n" n r.log2_sc
        r.log2_wo r.log2_tso (norm r.log2_sc) (norm r.log2_wo) (norm r.log2_tso) gap
        (gap /. float_of_int (n * n)))
    [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 64; 128 ];
  print_endline "\npaper: Pr[A] = 2^(-n^2 (3/2 + o(1))) in EVERY model; the normalized";
  print_endline "exponents converge to a common value and SC's advantage per n^2 vanishes.";
  (* MC validation at small n, plus the correlated semi-analytic TSO value *)
  let rng = Rng.create (seed + 4) in
  Printf.printf
    "\nTSO with the TRUE joint window law (coupled-chain DP, exact up to truncation),\n\
     vs the independence approximation, semi-analytic MC (150k) and direct MC (250k):\n";
  List.iter
    (fun n ->
      let exact = Manifestation.pr_a_joint_exact (Model.tso ()) ~n in
      let indep = Manifestation.pr_a_tso_independent_series ~n in
      let semi = Joint.semi_analytic ~trials:150_000 (Model.tso ()) ~n rng in
      if n <= 3 then begin
        let mc = Joint.estimate ~trials:250_000 (Model.tso ()) ~n rng in
        Printf.printf
          "  TSO n=%d: joint-exact %.4e | indep %.4e (%+.1f%%) | semi %.4e | mc %.4e\n" n exact
          indep
          (100.0 *. (indep -. exact) /. exact)
          semi mc.pr_no_bug
      end
      else
        Printf.printf "  TSO n=%d: joint-exact %.4e | indep %.4e (%+.1f%%) | semi %.4e\n" n
          exact indep
          (100.0 *. (indep -. exact) /. exact)
          semi)
    [ 2; 3; 4; 5 ];
  print_endline "(the shared program positively correlates the windows; the exact joint DP";
  print_endline " quantifies what the independence approximation misses: nothing at n = 2,";
  print_endline " ~-3% at n = 3, growing with n — second-order for every conclusion)"

(* -- E10: PSO (footnote 4) -------------------------------------------- *)

let e10 () =
  hr "E10. PSO — the case footnote 4 waves at";
  let dp = Window_exact_dp.gamma_pmf (Model.pso ()) ~m:16 in
  Printf.printf "window distribution (exact DP, m = 16) vs TSO exact series:\n";
  Printf.printf "%5s %10s %10s\n" "gamma" "PSO" "TSO";
  for g = 0 to 5 do
    Printf.printf "%5d %10.6f %10.6f\n" g (List.assoc g dp) (Window_analytic.b_tso_series g)
  done;
  let rng = Rng.create (seed + 5) in
  let mc = Joint.estimate ~trials:400_000 (Model.pso ()) ~n:2 rng in
  let semi = Joint.semi_analytic ~trials:200_000 (Model.pso ()) ~n:2 rng in
  Printf.printf "\nPr[A] n=2 under PSO: mc %.4f [%.4f, %.4f]; semi-analytic %.4f\n" mc.pr_no_bug
    mc.ci.lo mc.ci.hi semi;
  print_endline "finding: under the settling semantics the critical ST re-absorbs the STs";
  print_endline "the critical LD passed (ST/ST is relaxed), so PSO windows are SMALLER than";
  print_endline "TSO's and PSO lands between TSO and SC for this bug — the 'similar result'";
  print_endline "the paper omits is similar in shape but on the other side of TSO."

(* -- E11: fences (Section 7) ------------------------------------------ *)

let e11 () =
  hr "E11. Fences — Section 7's acquire/release extension";
  let rng = Rng.create (seed + 6) in
  let trials = 150_000 in
  let pr every kind =
    let hits = ref 0 in
    for _ = 1 to trials do
      let prog = Program.generate rng ~m:37 in
      let prog =
        match every with None -> prog | Some k -> Program.with_fences ~every:k ~kind prog
      in
      let gamma () =
        let pi = Settle.run (Model.wo ()) rng prog in
        Window.gamma prog pi + 2
      in
      if (Shift.sample rng [| gamma (); gamma () |]).disjoint then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  Printf.printf "WO, n = 2, m = 37, %d trials per row:\n" trials;
  Printf.printf "single acquire fence at distance d (closed form vs the density sweep below):\n";
  List.iter
    (fun d ->
      Printf.printf "  fence at d = %-2d     %.4f (closed form)\n" d
        (Window_analytic_general.pr_a_n2
           ~b:(Window_analytic_general.b_wo_fenced ~s:0.5 ~d)))
    [ 0; 1; 2; 3; 5 ];
  Printf.printf "  no fences          %.4f   (7/54 = 0.1296)\n" (pr None Fence.Acquire);
  List.iter
    (fun k -> Printf.printf "  acquire every %-2d    %.4f\n" k (pr (Some k) Fence.Acquire))
    [ 16; 8; 4; 2 ];
  Printf.printf "  release every 2     %.4f   (one-way, permissive direction: no effect)\n"
    (pr (Some 2) Fence.Release);
  Printf.printf "  SC ceiling          %.4f   (1/6)\n" (1.0 /. 6.0);
  print_endline "(confirms the paper's conjecture: fences make the bug less likely, capped";
  print_endline " by SC, and do not change the model ordering)"

(* -- E12: robustness to p and s (Section 7) --------------------------- *)

let e12 () =
  hr "E12. Robustness — Pr[A] (n = 2) under p, s away from the 1/2 normal form";
  let rng = Rng.create (seed + 7) in
  let trials = 120_000 in
  let pr model p =
    let hits = ref 0 in
    for _ = 1 to trials do
      let prog = Program.generate ~p rng ~m:48 in
      let gamma () =
        let pi = Settle.run model rng prog in
        Window.gamma prog pi + 2
      in
      if (Shift.sample rng [| gamma (); gamma () |]).disjoint then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  Printf.printf "%6s %6s | %8s %8s %8s | %9s %9s | %10s %10s\n" "p" "s" "SC" "TSO" "WO"
    "TSO:an" "WO:an" "SC safest?" "TSO >= WO?";
  List.iter
    (fun (p, s) ->
      let sc = pr Model.sc p in
      let tso = pr (Model.tso ~s ()) p in
      let wo = pr (Model.wo ~s ()) p in
      (* generalized closed forms / series (Analytic_general), exact in the
         m -> infinity limit *)
      let tso_an = Window_analytic_general.pr_a_n2 ~b:(Window_analytic_general.b_tso ~p ~s) in
      let wo_an = Window_analytic_general.pr_a_n2 ~b:(Window_analytic_general.b_wo ~s) in
      Printf.printf "%6.2f %6.2f | %8.4f %8.4f %8.4f | %9.4f %9.4f | %10s %10s\n" p s sc tso wo
        tso_an wo_an
        (if sc >= tso && sc >= wo then "yes" else "NO")
        (if tso >= wo then "yes" else "no"))
    [ (0.5, 0.5); (0.3, 0.5); (0.7, 0.5); (0.5, 0.3); (0.5, 0.7); (0.3, 0.7); (0.7, 0.3) ];
  print_endline "(finding: SC is safest at every sweep point — the paper's core conclusion";
  print_endline " is robust. The TSO-vs-WO ordering, however, is parameter-dependent: at";
  print_endline " store-heavy programs (p = 0.7) or aggressive swapping (s = 0.7), WO beats";
  print_endline " TSO, because WO's critical STORE also settles upward and chases the";
  print_endline " critical load, re-shrinking the window, while TSO's store is pinned.)"

(* -- E13: operational machine ----------------------------------------- *)

let e13 () =
  hr "E13. Operational grounding — litmus corpus + canonical bug on the machine";
  let verdicts = Litmus.check_all () in
  let agree = List.length (List.filter (fun (v : Litmus.verdict) -> v.agrees) verdicts) in
  Printf.printf "litmus corpus: %d/%d (test, model) expectations hold under exhaustive\n" agree
    (List.length verdicts);
  Printf.printf "state-space enumeration (9 tests x 4 models).\n\n";
  Printf.printf "%-10s" "";
  List.iter (Printf.printf "%6s") [ "SC"; "TSO"; "PSO"; "WO" ];
  print_newline ();
  List.iter
    (fun (t : Litmus.t) ->
      Printf.printf "%-10s" t.name;
      List.iter
        (fun f ->
          let v = Litmus.check t f in
          Printf.printf "%6s" (if v.observed_relaxed then "yes" else "-"))
        [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
          Model.Weak_ordering ];
      print_newline ())
    Litmus.all;
  print_endline "('yes' = the relaxed outcome is reachable; note inc — the paper's canonical";
  print_endline " atomicity violation — manifests under every model, including SC)";
  let rng = Rng.create (seed + 8) in
  let t = Litmus.find "inc" in
  Printf.printf "\ncanonical bug manifestation rate under a uniform random scheduler (30k runs):\n";
  List.iter
    (fun (f, name) ->
      let d = Semantics.of_model f in
      let outcomes =
        Machine_exec.estimate_outcome ~trials:30_000 d (Litmus.initial_state t)
          ~observe:t.observe rng
      in
      let bug = Option.value ~default:0 (List.assoc_opt [ ("x", 1) ] outcomes) in
      Printf.printf "  %-4s Pr[x = 1] ~ %.3f\n" name (float_of_int bug /. 30_000.0))
    [ (Model.Sequential_consistency, "SC"); (Model.Total_store_order, "TSO");
      (Model.Partial_store_order, "PSO"); (Model.Weak_ordering, "WO") ]

(* -- E14: machine-side thread scaling --------------------------------- *)

let e14 () =
  hr "E14. Machine-side thread scaling — the canonical bug with n threads";
  let rng = Rng.create (seed + 9) in
  Printf.printf
    "%3s | exhaustive outcome set (SC) | random-scheduler Pr[x < n] (20k runs)\n" "n";
  Printf.printf "%3s | %27s | %6s %6s %6s %6s\n" "" "" "SC" "TSO" "PSO" "WO";
  List.iter
    (fun n ->
      let t = Litmus.increment_n n in
      let r = Litmus.run_exhaustive t Model.Sequential_consistency in
      let outcomes =
        String.concat "," (List.map (fun (o, _) -> string_of_int (List.assoc "x" o)) r.Enumerate.outcomes)
      in
      let rate f =
        let d = Semantics.of_model f in
        let counts =
          Machine_exec.estimate_outcome ~trials:20_000 d (Litmus.initial_state t)
            ~observe:t.Litmus.observe rng
        in
        let ok = Option.value ~default:0 (List.assoc_opt [ ("x", n) ] counts) in
        1.0 -. (float_of_int ok /. 20_000.0)
      in
      Printf.printf "%3d | x in {%s} %*s | %6.3f %6.3f %6.3f %6.3f\n" n outcomes
        (max 0 (17 - (2 * n)))
        ""
        (rate Model.Sequential_consistency)
        (rate Model.Total_store_order)
        (rate Model.Partial_store_order)
        (rate Model.Weak_ordering))
    [ 2; 3; 4 ];
  print_endline "\n(paper Theorem 6.3, machine-side: the bug probability races to 1 as n grows";
  print_endline " under EVERY model — by n = 4 the strict model's advantage is already";
  print_endline " negligible on the operational simulator too; x can lose all but one";
  print_endline " increment, and the full outcome range {1..n} is reachable even under SC)"

(* -- E15: critical-section size --------------------------------------- *)

let e15 () =
  hr "E15. Critical-section size — gap plain operations inside the atomic intent";
  let rng = Rng.create (seed + 10) in
  let trials = 150_000 in
  Printf.printf "%4s | %8s %8s %8s %8s | %s\n" "gap" "SC" "TSO" "PSO" "WO" "SC closed form";
  List.iter
    (fun gap ->
      let pr model = (Joint.estimate ~gap ~trials model ~n:2 rng).Joint.pr_no_bug in
      Printf.printf "%4d | %8.4f %8.4f %8.4f %8.4f | %8.4f\n" gap (pr Model.sc)
        (pr (Model.tso ())) (pr (Model.pso ())) (pr (Model.wo ()))
        (2.0 /. 3.0 *. Float.pow 2.0 (float_of_int (-(gap + 2)))))
    [ 0; 1; 2; 4; 8 ];
  print_endline "\n(finding, beyond the paper: the paper's minimal LD;ST race is the ONLY";
  print_endline " regime where strictness strictly helps. Once the programmer's intended-";
  print_endline " atomic section is wider (gap >= 1), WO's reordering COMPRESSES the window";
  print_endline " — interior operations migrate out and the critical store chases the load —";
  print_endline " so WO becomes the most reliable model, PSO follows, and only TSO (store";
  print_endline " pinned, load climbing) stays strictly worse than SC at every gap)"

(* -- E16: thread dispersion ------------------------------------------- *)

let e16 () =
  hr "E16. Thread dispersion — the shift process beyond q = 1/2 (Definition 1)";
  Printf.printf "exact Pr[A] for SC windows (gammas all 2), geometric(q) shifts:\n";
  Printf.printf "%8s | %10s %10s %10s\n" "q" "n=2" "n=3" "n=4";
  List.iter
    (fun (num, den) ->
      let q = Rational.of_ints num den in
      let pr n = Rational.to_float (Shift_exact.disjoint_probability_geom ~q (Array.make n 2)) in
      Printf.printf "%8s | %10.5f %10.5f %10.5f\n"
        (Rational.to_string q) (pr 2) (pr 3) (pr 4))
    [ (1, 4); (1, 2); (3, 4); (9, 10) ];
  let rng = Rng.create (seed + 11) in
  let q = Rational.of_ints 3 4 in
  let exact = Rational.to_float (Shift_exact.disjoint_probability_geom ~q [| 2; 2; 2 |]) in
  let est, ci = Shift.estimate_geom ~q:0.75 ~trials:300_000 rng [| 2; 2; 2 |] in
  Printf.printf "\nMC check at q = 3/4, gammas (2,2,2): exact %.5f vs %.5f [%.5f, %.5f]\n"
    exact est ci.lo ci.hi;
  print_endline "(q controls how spread out the threads run; more dispersion means fewer";
  print_endline " collisions, raising Pr[A] at every n — but the n^2 exponent of Theorem 6.3";
  print_endline " only rescales by log2(1/q), so the asymptotic conclusions are unchanged)"

(* -- Bechamel timing benches ------------------------------------------ *)

let timing () =
  hr "Timing — Bechamel microbenchmarks (one per pipeline component)";
  let open Bechamel in
  let open Toolkit in
  let rng = Rng.create 1 in
  let prog = Program.generate rng ~m:64 in
  let tests =
    Test.make_grouped ~name:"memrel"
      [
        Test.make ~name:"settle-tso-m64"
          (Staged.stage (fun () -> ignore (Settle.run (Model.tso ()) rng prog)));
        Test.make ~name:"settle-wo-m64"
          (Staged.stage (fun () -> ignore (Settle.run (Model.wo ()) rng prog)));
        Test.make ~name:"shift-sample-n8"
          (Staged.stage (fun () -> ignore (Shift.sample rng [| 2; 3; 2; 4; 2; 2; 3; 2 |])));
        Test.make ~name:"shift-exact-n6"
          (Staged.stage (fun () ->
               ignore (Shift_exact.disjoint_probability [| 2; 3; 2; 4; 2; 2 |])));
        Test.make ~name:"joint-sample-n4-tso"
          (Staged.stage (fun () -> ignore (Joint.sample (Model.tso ()) ~n:4 rng)));
        Test.make ~name:"window-dp-tso-m12"
          (Staged.stage (fun () ->
               ignore (Window_exact_dp.gamma_pmf (Model.tso ()) ~m:12)));
        Test.make ~name:"litmus-enumerate-sb-tso"
          (Staged.stage (fun () ->
               ignore (Litmus.run_exhaustive (Litmus.find "sb") Model.Total_store_order)));
        Test.make ~name:"machine-run-inc-wo"
          (Staged.stage (fun () ->
               let t = Litmus.find "inc" in
               ignore
                 (Machine_exec.run (Semantics.Wo { window = 8 }) (Litmus.initial_state t) rng)));
        Test.make ~name:"joint-dp-exact-n4-tso"
          (Staged.stage (fun () ->
               ignore (Window_joint_dp.expect_product (Model.tso ()) ~m:48 ~n:4)));
        Test.make ~name:"litmus-parse-sb"
          (Staged.stage (fun () ->
               ignore
                 (Litmus_parse.parse
                    "name: sb\nthread: x = 1 ; r0 = y\nthread: y = 1 ; r0 = x\nrelaxed: 0:r0=0 1:r0=0\n")));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows)

(* -- MC throughput bench (--json) ------------------------------------- *)

(* Measures trials/sec for each parallelized estimator family at jobs=1 and
   jobs=N and writes the numbers to a JSON file, so the perf trajectory of
   the Monte Carlo hot paths is tracked across PRs. Invoked by bin/ci.sh as
   a smoke test; results are bit-identical across jobs by the Par contract,
   so only the timing varies. *)

type mc_row = {
  bname : string;
  btrials : int;
  secs_1 : float;
  secs_n : float;
}

let wall f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let mc_throughput_rows ~jobs_n ~scale =
  let row bname btrials f =
    (* one tiny warm-up per path keeps first-allocation noise out *)
    ignore (f ~jobs:1 ~trials:(max 1 (btrials / 100)));
    let secs_1 = wall (fun () -> f ~jobs:1 ~trials:btrials) in
    let secs_n = wall (fun () -> f ~jobs:jobs_n ~trials:btrials) in
    { bname; btrials; secs_1; secs_n }
  in
  [
    row "settling_mc_estimate_tso" (150_000 / scale) (fun ~jobs ~trials ->
        ignore (Window_mc.estimate ~jobs ~trials (Model.tso ()) (Rng.create seed)));
    row "settling_mc_probability_b_wo" (150_000 / scale) (fun ~jobs ~trials ->
        ignore (Window_mc.probability_b ~jobs ~trials ~gamma:1 (Model.wo ()) (Rng.create seed)));
    row "joint_estimate_tso_n2" (100_000 / scale) (fun ~jobs ~trials ->
        ignore (Joint.estimate ~jobs ~trials (Model.tso ()) ~n:2 (Rng.create seed)));
    row "joint_semi_analytic_tso_n4" (60_000 / scale) (fun ~jobs ~trials ->
        ignore (Joint.semi_analytic ~jobs ~trials (Model.tso ()) ~n:4 (Rng.create seed)));
    row "shift_estimate_n4" (2_000_000 / scale) (fun ~jobs ~trials ->
        ignore (Shift.estimate ~jobs ~trials (Rng.create seed) [| 2; 3; 2; 4 |]));
  ]

(* streaming vs the kept closure-based Reference path, at jobs=1 (the
   honest single-core number). The differential check runs IN-PROCESS and
   BEFORE any timing: a speedup over a path that computes something else
   would be meaningless, so a mismatch aborts the bench. *)

type sr_row = {
  sname : string;
  strials : int;
  sref_secs : float;
  sstream_secs : float;
}

let streaming_vs_reference_rows ~scale =
  let row sname strials ~equal ~reference ~streaming =
    if not (equal ()) then failwith (sname ^ ": streaming result differs from Reference");
    reference (max 1 (strials / 100));
    streaming (max 1 (strials / 100));
    let sref_secs = wall (fun () -> reference strials) in
    let sstream_secs = wall (fun () -> streaming strials) in
    { sname; strials; sref_secs; sstream_secs }
  in
  [
    row "settling_estimate_tso" (300_000 / scale)
      ~equal:(fun () ->
        Window_mc.estimate ~jobs:1 ~trials:20_000 (Model.tso ()) (Rng.create seed)
        = Window_mc.Reference.estimate ~jobs:1 ~trials:20_000 (Model.tso ()) (Rng.create seed))
      ~reference:(fun trials ->
        ignore (Window_mc.Reference.estimate ~jobs:1 ~trials (Model.tso ()) (Rng.create seed)))
      ~streaming:(fun trials ->
        ignore (Window_mc.estimate ~jobs:1 ~trials (Model.tso ()) (Rng.create seed)));
    row "shift_estimate_n4" (3_000_000 / scale)
      ~equal:(fun () ->
        Shift.estimate ~jobs:1 ~trials:50_000 (Rng.create seed) [| 2; 3; 2; 4 |]
        = Shift.Reference.estimate ~jobs:1 ~trials:50_000 (Rng.create seed) [| 2; 3; 2; 4 |])
      ~reference:(fun trials ->
        ignore (Shift.Reference.estimate ~jobs:1 ~trials (Rng.create seed) [| 2; 3; 2; 4 |]))
      ~streaming:(fun trials ->
        ignore (Shift.estimate ~jobs:1 ~trials (Rng.create seed) [| 2; 3; 2; 4 |]));
    row "joint_estimate_tso_n2" (200_000 / scale)
      ~equal:(fun () ->
        Joint.estimate ~jobs:1 ~trials:20_000 (Model.tso ()) ~n:2 (Rng.create seed)
        = Joint.Reference.estimate ~jobs:1 ~trials:20_000 (Model.tso ()) ~n:2
            (Rng.create seed))
      ~reference:(fun trials ->
        ignore (Joint.Reference.estimate ~jobs:1 ~trials (Model.tso ()) ~n:2 (Rng.create seed)))
      ~streaming:(fun trials ->
        ignore (Joint.estimate ~jobs:1 ~trials (Model.tso ()) ~n:2 (Rng.create seed)));
  ]

(* adaptive (CI-width) stopping vs the fixed-trials cost for the same
   certainty: how many trials the Wilson stop actually needs, and what the
   fixed-budget alternative would have spent *)

type adaptive_numbers = {
  a_target_width : float;
  a_max_trials : int;
  a_trials_used : int;
  a_target_met : bool;
  a_secs : float;
  a_fixed_secs : float;
}

let adaptive_numbers ~scale =
  let a_target_width = 0.005 in
  let a_max_trials = 2_000_000 / scale in
  let run () =
    Window_mc.probability_b_adaptive ~jobs:1 ~target_width:a_target_width
      ~max_trials:a_max_trials ~gamma:0 (Model.tso ()) (Rng.create seed)
  in
  ignore (run ());
  let result = ref (run ()) in
  let a_secs = wall (fun () -> result := run ()) in
  let a_fixed_secs =
    wall (fun () ->
        ignore
          (Window_mc.probability_b ~jobs:1 ~trials:a_max_trials ~gamma:0 (Model.tso ())
             (Rng.create seed)))
  in
  {
    a_target_width;
    a_max_trials;
    a_trials_used = !result.Par.trials_done;
    a_target_met = !result.Par.target_met;
    a_secs;
    a_fixed_secs;
  }

let mc_json ~file ~scale =
  let jobs_n = max 4 (Par.default_jobs ()) in
  let rows = mc_throughput_rows ~jobs_n ~scale in
  let sr_rows = streaming_vs_reference_rows ~scale in
  let adaptive = adaptive_numbers ~scale in
  let buf = Buffer.create 1024 in
  let tps trials secs = if secs > 0.0 then float_of_int trials /. secs else 0.0 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs_n\": %d,\n" jobs_n);
  Buffer.add_string buf "  \"estimators\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"trials\": %d, \"jobs1_seconds\": %.6f, \
            \"jobs1_trials_per_sec\": %.1f, \"jobsN_seconds\": %.6f, \
            \"jobsN_trials_per_sec\": %.1f, \"speedup\": %.3f}%s\n"
           r.bname r.btrials r.secs_1
           (tps r.btrials r.secs_1)
           r.secs_n
           (tps r.btrials r.secs_n)
           (if r.secs_n > 0.0 then r.secs_1 /. r.secs_n else 0.0)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"streaming_vs_reference\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"trials\": %d, \"reference_seconds\": %.6f, \
            \"reference_trials_per_sec\": %.1f, \"streaming_seconds\": %.6f, \
            \"streaming_trials_per_sec\": %.1f, \"speedup\": %.3f, \"results_equal\": true}%s\n"
           r.sname r.strials r.sref_secs
           (tps r.strials r.sref_secs)
           r.sstream_secs
           (tps r.strials r.sstream_secs)
           (if r.sstream_secs > 0.0 then r.sref_secs /. r.sstream_secs else 0.0)
           (if i = List.length sr_rows - 1 then "" else ",")))
    sr_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"adaptive\": {\"name\": \"settling_probability_b_adaptive_tso_gamma0\", \
        \"target_width\": %g, \"max_trials\": %d, \"trials_used\": %d, \"target_met\": %b, \
        \"seconds\": %.6f, \"fixed_trials_seconds\": %.6f, \"trials_saved_ratio\": %.3f}\n"
       adaptive.a_target_width adaptive.a_max_trials adaptive.a_trials_used
       adaptive.a_target_met adaptive.a_secs adaptive.a_fixed_secs
       (if adaptive.a_max_trials > 0 then
          1.0 -. (float_of_int adaptive.a_trials_used /. float_of_int adaptive.a_max_trials)
        else 0.0));
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf "%-32s %9d trials  jobs=1 %8.0f/s  jobs=%d %8.0f/s  speedup %.2fx\n"
        r.bname r.btrials (tps r.btrials r.secs_1) jobs_n (tps r.btrials r.secs_n)
        (if r.secs_n > 0.0 then r.secs_1 /. r.secs_n else 0.0))
    rows;
  List.iter
    (fun r ->
      Printf.printf
        "%-32s %9d trials  reference %8.0f/s  streaming %8.0f/s  speedup %.2fx  (equal)\n"
        r.sname r.strials (tps r.strials r.sref_secs)
        (tps r.strials r.sstream_secs)
        (if r.sstream_secs > 0.0 then r.sref_secs /. r.sstream_secs else 0.0))
    sr_rows;
  Printf.printf
    "%-32s width<=%g in %d of %d trials (met: %b)  %.3fs vs fixed %.3fs\n"
    "adaptive_probability_b_tso" adaptive.a_target_width adaptive.a_trials_used
    adaptive.a_max_trials adaptive.a_target_met adaptive.a_secs adaptive.a_fixed_secs;
  Printf.printf "wrote %s\n" file

(* -- enumeration bench (--json-enum) ----------------------------------- *)

(* Measures the exhaustive litmus enumerator on the increment_n family:
   legacy printf-key vs packed-key dedup throughput (states/sec), and the
   ample-set POR's state-count reduction, all with outcome sets
   cross-checked between configurations. Writes BENCH_enum.json; invoked by
   `make ci` in smoke form so the enumerator's perf trajectory is tracked
   across PRs alongside the MC throughput numbers. *)

type enum_row = {
  etest : string;
  ediscipline : string;
  estates : int;
  eterminals : int;
  legacy_secs : float;
  packed_secs : float;
  por_states : int;
  por_secs : float;
  por_pruned : int;
}

let enum_rows ~smoke =
  let workloads =
    (* (test, discipline); the legacy-key pass dominates the budget, so the
       smoke list stops at inc5 while the full bench climbs to inc6 *)
    let base = [ (4, Model.Sequential_consistency); (4, Model.Total_store_order);
                 (5, Model.Total_store_order) ] in
    if smoke then base
    else base @ [ (5, Model.Sequential_consistency); (6, Model.Total_store_order) ]
  in
  List.map
    (fun (n, family) ->
      let t = Litmus.increment_n n in
      let d = Semantics.of_model family in
      let run ?(por = false) ?(legacy_key = false) () =
        Enumerate.outcomes ~por ~legacy_key d (Litmus.initial_state t)
          ~observe:t.Litmus.observe
      in
      let packed = run () in
      let legacy = run ~legacy_key:true () in
      let por = run ~por:true () in
      assert (packed.Enumerate.outcomes = legacy.Enumerate.outcomes);
      assert (packed.Enumerate.outcomes = por.Enumerate.outcomes);
      assert (packed.Enumerate.terminals = por.Enumerate.terminals);
      {
        etest = t.Litmus.name;
        ediscipline = String.lowercase_ascii (Model.family_name family);
        estates = packed.Enumerate.states_visited;
        eterminals = packed.Enumerate.terminals;
        legacy_secs = legacy.Enumerate.stats.elapsed_s;
        packed_secs = packed.Enumerate.stats.elapsed_s;
        por_states = por.Enumerate.states_visited;
        por_secs = por.Enumerate.stats.elapsed_s;
        por_pruned = por.Enumerate.stats.por_pruned;
      })
    workloads

(* external-memory BFS rows: throughput and disk profile of the
   disk-spilling enumerator, with every complete run parity-asserted
   against an exact oracle — the in-RAM engine where it fits, the in-RAM
   POR run (identical outcome sets and terminal counts by the ample-set
   soundness argument) where it does not. The full bench includes inc7/tso,
   which the in-RAM engine cannot finish under a 256 MiB heap watermark;
   the extmem engine completes it exactly under the same watermark. *)

type extmem_row = {
  xtest : string;
  xdiscipline : string;
  xstates : int;
  xterminals : int;
  xsecs : float;
  xmem_budget : int;
  xext : Extmem.ext_stats;
  xoracle : string;  (* "in-ram" | "in-ram-por" *)
  xinram_secs : float option;  (* None when in-RAM is infeasible under the watermark *)
  xinram_note : string;
}

let extmem_rows ~smoke =
  let mb = 1024 * 1024 in
  let spill_dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "memrel_bench_extmem_%d" (Unix.getpid ())) in
  let run_ext ?budget ?(mem_budget = 64 * mb) t family =
    let d = Semantics.of_model family in
    let r =
      Extmem.outcomes ?budget ~max_states:50_000_000 ~mem_budget_bytes:mem_budget
        ~spill_dir ~resume_key:"bench" d (Litmus.initial_state t)
        ~observe:t.Litmus.observe
    in
    Extmem.remove_spill_dir spill_dir;
    assert (r.Extmem.base.Enumerate.exhausted = None);
    r
  in
  let dname family = String.lowercase_ascii (Model.family_name family) in
  (* the RAM wall (full bench only): inc7/tso cannot finish in-RAM under a
     256 MiB major heap watermark; the extmem engine completes it exactly
     under the same watermark, parity-checked against the in-RAM POR
     oracle. The watermark reads Gc heap_words, which on runtimes without
     heap compaction (OCaml 5.1) never shrinks — and a forked child
     inherits the parent's heap — so this block runs FIRST, each phase
     forked while this process's heap is still pristine; the parity rows
     and (in enum_json) the in-RAM workload rows only run afterwards. *)
  let wall_rows =
    if smoke then []
    else begin
      let in_subprocess (type a) (f : unit -> a) : a =
        let rd, wr = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          Unix.close rd;
          let oc = Unix.out_channel_of_descr wr in
          Marshal.to_channel oc (f ()) [];
          close_out oc;
          Stdlib.exit 0
        | pid ->
          Unix.close wr;
          let ic = Unix.in_channel_of_descr rd in
          let v : a = Marshal.from_channel ic in
          close_in ic;
          (match Unix.waitpid [] pid with
           | _, Unix.WEXITED 0 -> ()
           | _ -> failwith "bench: inc7 subprocess failed");
          v
      in
      let t = Litmus.increment_n 7 in
      let family = Model.Total_store_order in
      let ram =
        in_subprocess (fun () ->
            let wm = Budget.create ~max_mem_bytes:(256 * mb) () in
            Enumerate.outcomes ~max_states:50_000_000 ~budget:wm
              (Semantics.of_model family) (Litmus.initial_state t)
              ~observe:t.Litmus.observe)
      in
      let note =
        match ram.Enumerate.exhausted with
        | Some e ->
          Printf.sprintf "in-RAM infeasible under a 256 MiB watermark: %s"
            (Budget.describe e)
        | None -> "in-RAM unexpectedly completed under the watermark"
      in
      assert (ram.Enumerate.exhausted <> None);
      let por =
        in_subprocess (fun () ->
            Enumerate.outcomes ~max_states:50_000_000 ~por:true
              (Semantics.of_model family) (Litmus.initial_state t)
              ~observe:t.Litmus.observe)
      in
      let x =
        in_subprocess (fun () ->
            let wm = Budget.create ~max_mem_bytes:(256 * mb) () in
            run_ext ~budget:wm t family)
      in
      assert (x.Extmem.base.Enumerate.exhausted = None);
      assert (x.Extmem.base.Enumerate.outcomes = por.Enumerate.outcomes);
      assert (x.Extmem.base.Enumerate.terminals = por.Enumerate.terminals);
      [
        {
          xtest = t.Litmus.name;
          xdiscipline = dname family;
          xstates = x.Extmem.base.Enumerate.states_visited;
          xterminals = x.Extmem.base.Enumerate.terminals;
          xsecs = x.Extmem.base.Enumerate.stats.elapsed_s;
          xmem_budget = 64 * mb;
          xext = x.Extmem.ext;
          xoracle = "in-ram-por";
          xinram_secs = None;
          xinram_note = note;
        };
      ]
    end
  in
  (* inc4/inc5 across all four disciplines: extmem must reproduce the
     in-RAM outcome sets AND per-outcome terminal counts exactly *)
  let parity (n, family) =
    let t = Litmus.increment_n n in
    let ram = Enumerate.outcomes (Semantics.of_model family) (Litmus.initial_state t)
        ~observe:t.Litmus.observe in
    let x = run_ext t family in
    assert (x.Extmem.base.Enumerate.outcomes = ram.Enumerate.outcomes);
    assert (x.Extmem.base.Enumerate.terminals = ram.Enumerate.terminals);
    assert (x.Extmem.base.Enumerate.states_visited = ram.Enumerate.states_visited);
    {
      xtest = t.Litmus.name;
      xdiscipline = dname family;
      xstates = x.Extmem.base.Enumerate.states_visited;
      xterminals = x.Extmem.base.Enumerate.terminals;
      xsecs = x.Extmem.base.Enumerate.stats.elapsed_s;
      xmem_budget = 64 * mb;
      xext = x.Extmem.ext;
      xoracle = "in-ram";
      xinram_secs = Some ram.Enumerate.stats.elapsed_s;
      xinram_note = "";
    }
  in
  let families =
    [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
      Model.Weak_ordering ]
  in
  let rows =
    List.concat_map (fun n -> List.map (fun f -> parity (n, f)) families)
      (if smoke then [ 4; 5 ] else [ 4; 5; 6 ])
  in
  (* a deliberately tiny budget: the candidate buffer must spill repeatedly
     mid-level (>= 2 forced generations) and the result must not change *)
  let tiny =
    let t = Litmus.increment_n 5 in
    let family = Model.Total_store_order in
    let ram = Enumerate.outcomes (Semantics.of_model family) (Litmus.initial_state t)
        ~observe:t.Litmus.observe in
    let x = run_ext ~mem_budget:65536 t family in
    assert (x.Extmem.base.Enumerate.outcomes = ram.Enumerate.outcomes);
    assert (x.Extmem.ext.Extmem.spill_generations >= 2);
    {
      xtest = t.Litmus.name;
      xdiscipline = dname family;
      xstates = x.Extmem.base.Enumerate.states_visited;
      xterminals = x.Extmem.base.Enumerate.terminals;
      xsecs = x.Extmem.base.Enumerate.stats.elapsed_s;
      xmem_budget = 65536;
      xext = x.Extmem.ext;
      xoracle = "in-ram";
      xinram_secs = Some ram.Enumerate.stats.elapsed_s;
      xinram_note = "";
    }
  in
  rows @ [ tiny ] @ wall_rows

let enum_json ~file ~smoke =
  (* extmem first: its RAM-wall phases fork children that must inherit a
     pristine heap (see the comment in extmem_rows) *)
  let xrows = extmem_rows ~smoke in
  let rows = enum_rows ~smoke in
  let sps states secs = if secs > 0.0 then float_of_int states /. secs else 0.0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"test\": %S, \"discipline\": %S, \"states\": %d, \"terminals\": %d,\n\
           \     \"legacy_key_seconds\": %.6f, \"legacy_key_states_per_sec\": %.1f,\n\
           \     \"packed_key_seconds\": %.6f, \"packed_key_states_per_sec\": %.1f,\n\
           \     \"key_speedup\": %.3f,\n\
           \     \"por_states\": %d, \"por_seconds\": %.6f, \"por_pruned\": %d, \
            \"por_state_reduction\": %.3f}%s\n"
           r.etest r.ediscipline r.estates r.eterminals r.legacy_secs
           (sps r.estates r.legacy_secs)
           r.packed_secs
           (sps r.estates r.packed_secs)
           (if r.packed_secs > 0.0 then r.legacy_secs /. r.packed_secs else 0.0)
           r.por_states r.por_secs r.por_pruned
           (if r.por_states > 0 then float_of_int r.estates /. float_of_int r.por_states
            else 0.0)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"extmem\": [\n";
  List.iteri
    (fun i r ->
      let e = r.xext in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"test\": %S, \"discipline\": %S, \"mem_budget_bytes\": %d,\n\
           \     \"states\": %d, \"terminals\": %d, \"seconds\": %.6f, \
            \"states_per_sec\": %.1f,\n\
           \     \"spill_bytes\": %d, \"bytes_per_state\": %.2f, \"spill_runs\": %d, \
            \"spill_generations\": %d,\n\
           \     \"bloom_probes\": %d, \"bloom_hits\": %d, \"bloom_hit_rate\": %.6f, \
            \"bloom_false_positives\": %d,\n\
           \     \"compactions\": %d, \"levels\": %d, \"peak_level_states\": %d,\n\
           \     \"parity_oracle\": %S, \"inram_seconds\": %s%s}%s\n"
           r.xtest r.xdiscipline r.xmem_budget r.xstates r.xterminals r.xsecs
           (sps r.xstates r.xsecs)
           e.Extmem.spill_bytes
           (if r.xstates > 0 then float_of_int e.Extmem.spill_bytes /. float_of_int r.xstates
            else 0.0)
           e.Extmem.spill_runs e.Extmem.spill_generations e.Extmem.bloom_probes
           e.Extmem.bloom_hits
           (if e.Extmem.bloom_probes > 0 then
              float_of_int e.Extmem.bloom_hits /. float_of_int e.Extmem.bloom_probes
            else 0.0)
           e.Extmem.bloom_false_positives e.Extmem.compactions e.Extmem.levels
           e.Extmem.peak_level_states r.xoracle
           (match r.xinram_secs with Some s -> Printf.sprintf "%.6f" s | None -> "null")
           (if r.xinram_note = "" then ""
            else Printf.sprintf ", \"note\": %S" r.xinram_note)
           (if i = List.length xrows - 1 then "" else ",")))
    xrows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "%-5s %-4s %9d states  legacy %8.0f/s  packed %8.0f/s (%.2fx)  POR %8d states \
         (%.2fx fewer)\n"
        r.etest r.ediscipline r.estates
        (sps r.estates r.legacy_secs)
        (sps r.estates r.packed_secs)
        (if r.packed_secs > 0.0 then r.legacy_secs /. r.packed_secs else 0.0)
        r.por_states
        (if r.por_states > 0 then float_of_int r.estates /. float_of_int r.por_states else 0.0))
    rows;
  List.iter
    (fun r ->
      let e = r.xext in
      Printf.printf
        "%-5s %-4s %9d states  extmem %8.0f/s (budget %s)  spill %d runs / %.1f MB / %d \
         gens  %s%s\n"
        r.xtest r.xdiscipline r.xstates
        (sps r.xstates r.xsecs)
        (if r.xmem_budget >= 1024 * 1024 then
           Printf.sprintf "%d MiB" (r.xmem_budget / (1024 * 1024))
         else Printf.sprintf "%d KiB" (r.xmem_budget / 1024))
        e.Extmem.spill_runs
        (float_of_int e.Extmem.spill_bytes /. 1048576.0)
        e.Extmem.spill_generations
        (match r.xinram_secs with
         | Some s -> Printf.sprintf "= in-RAM (%8.0f/s)" (sps r.xstates s)
         | None -> "= in-RAM POR oracle")
        (if r.xinram_note = "" then "" else "; " ^ r.xinram_note))
    xrows;
  Printf.printf "wrote %s\n" file

(* -- axiomatic bench (--json-axiom) ------------------------------------ *)

(* Measures BOTH axiomatic engines (lib/axiom) across the corpus and the
   increment family under all four models — the generate-and-prune
   reference and the conflict-driven solver, three-way cross-checked
   against the operational machine including per-outcome candidate counts.
   The full form climbs the increment family to inc7, where the reference
   engine exceeds a 60-second budget and only the solver (and the
   POR-reduced operational enumerator) conclude — the candidate-space
   reduction rows of DESIGN.md section 13. Naive-space columns are
   reported in log10 (the seed's linear product overflowed around 171
   same-location writes). Writes BENCH_axiom.json; `make ci` runs the
   smoke form. *)

type axiom_row = {
  atest : string;
  afamily : string;
  aoutcomes : int;
  aagree : bool;
  agen : Axiom.stats;
  agen_partial : bool;  (* generate hit its budget; its columns are a lower bound *)
  asol : Axiom_solver.stats;
  aop_states : int;
}

let axiom_three_way ?max_states ?por (t : Litmus.t) family =
  let tw = Axiom_differential.three_way ?max_states ?por t family in
  let r = tw.Axiom_differential.solver_report in
  assert tw.Axiom_differential.agree;
  {
    atest = t.Litmus.name;
    afamily = String.lowercase_ascii (Model.family_name family);
    aoutcomes = List.length r.Axiom_differential.axiomatic;
    aagree = tw.Axiom_differential.agree;
    agen = tw.Axiom_differential.generate_stats;
    agen_partial = false;
    asol = tw.Axiom_differential.solver_stats;
    aop_states = r.Axiom_differential.operational_states;
  }

(* inc7: ~25M allowed SC candidates. Generate-and-prune gets a 60 s
   deadline and is expected to come back partial; the solver must finish,
   and is cross-checked against the POR-reduced operational enumeration. *)
let axiom_frontier_row () =
  let t = Litmus.increment_n 7 in
  let family = Model.Sequential_consistency in
  let sr = Axiom_solver.run t family in
  let solver_outcomes = List.map (fun (e : Axiom_solver.entry) -> e.Axiom_solver.outcome) sr.Axiom_solver.entries in
  let budget = Budget.create ~deadline_s:60.0 () in
  let gr = Axiom.run ~budget t family in
  let opr = Litmus.run_exhaustive ~max_states:50_000_000 ~por:true t family in
  let agree =
    sr.Axiom_solver.stats.Axiom_solver.exhausted = None
    && opr.Enumerate.exhausted = None
    && solver_outcomes = Enumerate.outcome_set opr
  in
  assert agree;
  {
    atest = t.Litmus.name;
    afamily = "sc";
    aoutcomes = List.length solver_outcomes;
    aagree = agree;
    agen = gr.Axiom.stats;
    agen_partial = gr.Axiom.stats.Axiom.exhausted <> None;
    asol = sr.Axiom_solver.stats;
    aop_states = opr.Enumerate.terminals;
  }

let axiom_rows ~smoke =
  let tests =
    if smoke then
      [ Litmus.find "sb"; Litmus.find "mp"; Litmus.find "lb"; Litmus.increment_n 3;
        Litmus.increment_n 4 ]
    else Litmus.all @ [ Litmus.increment_n 3; Litmus.increment_n 4; Litmus.increment_n 5 ]
  in
  List.concat_map
    (fun (t : Litmus.t) ->
      List.map (fun family -> axiom_three_way t family) Axiom_differential.standard_families)
    tests
  @
  if smoke then []
  else
    [ axiom_three_way (Litmus.increment_n 6) Model.Sequential_consistency;
      axiom_frontier_row () ]

let axiom_json ~file ~smoke =
  let rows = axiom_rows ~smoke in
  let log10_reduction r =
    if r.asol.Axiom_solver.accepted = 0 then 0.0
    else
      r.asol.Axiom_solver.log10_naive_space
      -. log10 (float_of_int r.asol.Axiom_solver.accepted)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      let g = r.agen and s = r.asol in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"test\": %S, \"family\": %S, \"events\": %d, \"outcomes\": %d,\n\
           \     \"log10_naive_space\": %.2f, \"log10_reduction\": %.2f, \"agree\": %b,\n\
           \     \"generate\": {\"candidates\": %d, \"co_branches\": %d, \"rf_branches\": %d, \
            \"pruned\": %d,\n\
           \                  \"seconds\": %.6f, \"candidates_per_sec\": %.1f, \"partial\": \
            %b},\n\
           \     \"solver\": {\"candidates\": %d, \"decisions\": %d, \"propagations\": %d, \
            \"conflicts\": %d,\n\
           \                \"backjumps\": %d, \"forced\": %d, \"memo_hits\": %d, \
            \"distinct_keys\": %d,\n\
           \                \"seconds\": %.6f, \"candidates_per_sec\": %.1f},\n\
           \     \"operational_states\": %d}%s\n"
           r.atest r.afamily s.Axiom_solver.events r.aoutcomes
           s.Axiom_solver.log10_naive_space (log10_reduction r) r.aagree g.Axiom.accepted
           g.Axiom.co_branches g.Axiom.rf_branches g.Axiom.pruned g.Axiom.elapsed_s
           g.Axiom.candidates_per_sec r.agen_partial s.Axiom_solver.accepted
           s.Axiom_solver.decisions s.Axiom_solver.propagations s.Axiom_solver.conflicts
           s.Axiom_solver.backjumps s.Axiom_solver.forced s.Axiom_solver.memo_hits
           s.Axiom_solver.distinct_keys s.Axiom_solver.elapsed_s
           s.Axiom_solver.candidates_per_sec r.aop_states
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun r ->
      let g = r.agen and s = r.asol in
      Printf.printf
        "%-8s %-4s %2d events  %8d candidates (%d outcomes)  naive 10^%-5.1f  generate \
         %8.0f/s%s  solver %8.0f/s (bj %d, memo %d)  %s\n"
        r.atest r.afamily s.Axiom_solver.events s.Axiom_solver.accepted r.aoutcomes
        s.Axiom_solver.log10_naive_space g.Axiom.candidates_per_sec
        (if r.agen_partial then " (PARTIAL)" else "")
        s.Axiom_solver.candidates_per_sec s.Axiom_solver.backjumps s.Axiom_solver.memo_hits
        (if r.aagree then "agree" else "DISAGREE"))
    rows;
  Printf.printf "wrote %s\n" file

(* -- exact-arithmetic bench (--json-exact) ----------------------------- *)

(* Measures the fixnum fast path + Knuth-normalized rationals against the
   seed implementation (Bigint.Reference / Rational.Reference), running the
   SAME functorized DP code over both scalar types in one process: the
   settling window DP at the Figure 1/2 parameters, the exact joint window
   transform, the Theorem 5.1 permutation sums, the phi partition tables,
   and raw add/mul/gcd microbenchmarks. Every row cross-checks that the two
   implementations produce identical results before timing is reported.
   Writes BENCH_exact.json; `make ci` runs the smoke form. *)

module QRef = Rational.Reference
module BRef = Bigint.Reference
module DQref = Window_exact_dp_q.Make (QRef)
module JQref = Window_joint_dp_q.Make (QRef)
module SEref = Shift_exact.Make (QRef)

type exact_row = {
  xname : string;
  xops : int; (* logical operations (DP runs, permutation terms, raw ops) *)
  xfast_secs : float;
  xref_secs : float;
  xequal : bool;
}

(* reference bounded-partition recurrence over the seed bigint, memoized
   like Combinatorics but locally (the bench is single-domain) *)
let ref_phi_cache : (int * int * int, BRef.t) Hashtbl.t = Hashtbl.create 4096

let rec ref_bounded_at_most n k m =
  if n = 0 then BRef.one
  else if n < 0 || k = 0 || m = 0 then BRef.zero
  else
    match Hashtbl.find_opt ref_phi_cache (n, k, m) with
    | Some v -> v
    | None ->
      let v = BRef.add (ref_bounded_at_most n k (m - 1)) (ref_bounded_at_most (n - m) (k - 1) m) in
      Hashtbl.add ref_phi_cache (n, k, m) v;
      v

let ref_partitions_bounded x y z =
  if y = 0 then (if x = 0 then BRef.one else BRef.zero)
  else if x < y || x > y * z then BRef.zero
  else ref_bounded_at_most (x - y) y (z - 1)

let exact_rows ~smoke =
  let rng = Rng.create seed in
  let row xname xops ~fast ~reference =
    (* warm-up both sides once so first-allocation noise stays out, and
       keep the result strings for the differential check *)
    let fast_result = fast () in
    let ref_result = reference () in
    let xfast_secs = wall fast in
    let xref_secs = wall reference in
    { xname; xops; xfast_secs; xref_secs; xequal = String.equal fast_result ref_result }
  in
  let pmf_str pmf to_s = String.concat ";" (List.map (fun (g, p) -> Printf.sprintf "%d:%s" g (to_s p)) pmf) in
  let repeat n f =
    let last = ref "" in
    for _ = 1 to n do last := f () done;
    !last
  in

  (* operand pools for the raw microbenchmarks: mostly native-fitting (the
     DP regime) with boundary and multi-limb values mixed in *)
  let operand_strings =
    let digits k = String.init k (fun i -> Char.chr (Char.code '1' + ((Rng.int rng 9 + i) mod 9))) in
    List.init 3_000 (fun _ ->
        match Rng.int rng 10 with
        | 0 -> digits 40 (* multi-limb *)
        | 1 -> string_of_int (max_int - Rng.int rng 3) (* boundary *)
        | 2 -> "-" ^ string_of_int (Rng.int rng 1_000_000_000)
        | _ -> string_of_int (Rng.int rng 1_000_000))
  in
  let pairs_of of_string =
    let ops = Array.of_list (List.map of_string operand_strings) in
    let n = Array.length ops in
    Array.init (n - 1) (fun i -> (ops.(i), ops.(i + 1)))
  in
  let micro name iters pairs_fast pairs_ref op_fast op_ref to_s_fast to_s_ref =
    let digest pairs op to_s =
      let buf = Buffer.create 4096 in
      Array.iter (fun (a, b) -> Buffer.add_string buf (to_s (op a b))) pairs;
      Digest.to_hex (Digest.string (Buffer.contents buf))
    in
    row name (iters * Array.length pairs_fast)
      ~fast:(fun () ->
        for _ = 1 to iters do
          Array.iter (fun (a, b) -> ignore (op_fast a b)) pairs_fast
        done;
        digest pairs_fast op_fast to_s_fast)
      ~reference:(fun () ->
        for _ = 1 to iters do
          Array.iter (fun (a, b) -> ignore (op_ref a b)) pairs_ref
        done;
        digest pairs_ref op_ref to_s_ref)
  in
  let bpairs = pairs_of Bigint.of_string in
  let bpairs_ref = pairs_of BRef.of_string in
  (* rationals in the DP regime: dyadic denominators with occasional
     3^k denominators so the Knuth reductions see non-trivial gcds *)
  let rat_components =
    List.init 2_000 (fun _ ->
        let num = Rng.int rng 4096 - 2048 in
        let den =
          if Rng.int rng 5 = 0 then int_of_float (3.0 ** float_of_int (Rng.int rng 8 + 1))
          else 1 lsl Rng.int rng 11
        in
        (num, den))
  in
  let qpairs_with of_ints =
    let ops = Array.of_list (List.map (fun (n, d) -> of_ints n d) rat_components) in
    let n = Array.length ops in
    Array.init (n - 1) (fun i -> (ops.(i), ops.(i + 1)))
  in
  let qpairs = qpairs_with Q.of_ints in
  let qpairs_ref = qpairs_with QRef.of_ints in

  let dp_iters = if smoke then 1 else 3 in
  let m_tso = if smoke then 7 else 10 in
  let m_wo = if smoke then 6 else 9 in
  let joint_m = if smoke then 8 else 16 in
  let joint_n = if smoke then 2 else 3 in
  let joint_b = if smoke then 5 else 8 in
  let shift_n = if smoke then 5 else 7 in
  let geom_n = if smoke then 4 else 5 in
  let micro_scale = if smoke then 10 else 1 in

  let rows =
    [
      row (Printf.sprintf "settling_dp_tso_m%d" m_tso) dp_iters
        ~fast:(fun () ->
          repeat dp_iters (fun () ->
              pmf_str (Window_exact_dp_q.gamma_pmf (Window_exact_dp_q.tso ()) ~m:m_tso) Q.to_string))
        ~reference:(fun () ->
          repeat dp_iters (fun () ->
              pmf_str (DQref.gamma_pmf (DQref.tso ()) ~m:m_tso) QRef.to_string));
      row (Printf.sprintf "settling_dp_wo_m%d" m_wo) dp_iters
        ~fast:(fun () ->
          repeat dp_iters (fun () ->
              pmf_str (Window_exact_dp_q.gamma_pmf (Window_exact_dp_q.wo ()) ~m:m_wo) Q.to_string))
        ~reference:(fun () ->
          repeat dp_iters (fun () ->
              pmf_str (DQref.gamma_pmf (DQref.wo ()) ~m:m_wo) QRef.to_string));
      row (Printf.sprintf "joint_dp_q_tso_n%d_m%d_b%d" joint_n joint_m joint_b) dp_iters
        ~fast:(fun () ->
          repeat dp_iters (fun () ->
              Q.to_string
                (Window_joint_dp_q.expect_product ~b_max:joint_b ~s:Q.half
                   Model.Total_store_order ~m:joint_m ~n:joint_n)))
        ~reference:(fun () ->
          repeat dp_iters (fun () ->
              QRef.to_string
                (JQref.expect_product ~b_max:joint_b ~s:QRef.half Model.Total_store_order
                   ~m:joint_m ~n:joint_n)));
      (let iters = if smoke then 3 else 10 in
       let gammas = Array.init shift_n (fun i -> 2 + (i mod 3)) in
       row (Printf.sprintf "shift_exact_n%d" shift_n) (iters * List.fold_left ( * ) 1 (List.init shift_n (fun i -> i + 1)))
         ~fast:(fun () ->
           repeat iters (fun () -> Q.to_string (Shift_exact.disjoint_probability gammas)))
         ~reference:(fun () ->
           repeat iters (fun () -> QRef.to_string (SEref.disjoint_probability gammas))));
      (let iters = if smoke then 3 else 10 in
       let gammas = Array.init geom_n (fun i -> 2 + (i mod 2)) in
       row (Printf.sprintf "shift_geom_n%d_q3/4" geom_n) (iters * List.fold_left ( * ) 1 (List.init geom_n (fun i -> i + 1)))
         ~fast:(fun () ->
           repeat iters (fun () ->
               Q.to_string (Shift_exact.disjoint_probability_geom ~q:(Q.of_ints 3 4) gammas)))
         ~reference:(fun () ->
           repeat iters (fun () ->
               QRef.to_string (SEref.disjoint_probability_geom ~q:(QRef.of_ints 3 4) gammas))));
      (let grid =
         let ys = if smoke then [ (6, 8) ] else [ (10, 12); (8, 10) ] in
         List.concat_map
           (fun (y, z) -> List.filteri (fun i _ -> i mod 3 = 0) (List.init (y * z - y + 1) (fun i -> (y + i, y, z))))
           ys
       in
       row "phi_partition_table" (List.length grid)
         ~fast:(fun () ->
           Combinatorics.clear_caches ();
           String.concat ";"
             (List.map (fun (x, y, z) -> Bigint.to_string (Combinatorics.partitions_bounded x y z)) grid))
         ~reference:(fun () ->
           Hashtbl.reset ref_phi_cache;
           String.concat ";"
             (List.map (fun (x, y, z) -> BRef.to_string (ref_partitions_bounded x y z)) grid)));
      micro "bigint_add" (100 / micro_scale) bpairs bpairs_ref Bigint.add BRef.add
        Bigint.to_string BRef.to_string;
      micro "bigint_mul" (40 / micro_scale) bpairs bpairs_ref Bigint.mul BRef.mul
        Bigint.to_string BRef.to_string;
      micro "bigint_gcd" (20 / micro_scale) bpairs bpairs_ref Bigint.gcd BRef.gcd
        Bigint.to_string BRef.to_string;
      micro "rational_add" (30 / micro_scale) qpairs qpairs_ref Q.add QRef.add
        Q.to_string QRef.to_string;
      micro "rational_mul" (30 / micro_scale) qpairs qpairs_ref Q.mul QRef.mul
        Q.to_string QRef.to_string;
    ]
  in
  List.iter (fun r -> assert r.xequal) rows;
  rows

let exact_json ~file ~smoke =
  Bigint.reset_stats ();
  Rational.reset_stats ();
  Combinatorics.clear_caches ();
  let rows = exact_rows ~smoke in
  let bs = Bigint.stats () in
  let rs = Rational.stats () in
  let cs = Combinatorics.cache_stats () in
  let ops_s ops secs = if secs > 0.0 then float_of_int ops /. secs else 0.0 in
  let speedup r = if r.xfast_secs > 0.0 then r.xref_secs /. r.xfast_secs else 0.0 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"ops\": %d, \"fast_seconds\": %.6f, \
            \"fast_ops_per_sec\": %.1f,\n\
           \     \"reference_seconds\": %.6f, \"reference_ops_per_sec\": %.1f, \
            \"speedup\": %.3f, \"results_equal\": %b}%s\n"
           r.xname r.xops r.xfast_secs (ops_s r.xops r.xfast_secs) r.xref_secs
           (ops_s r.xops r.xref_secs) (speedup r) r.xequal
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"bigint_stats\": {\"small_ops\": %d, \"big_ops\": %d, \"promotions\": %d, \
        \"demotions\": %d, \"small_hit_rate\": %.6f},\n"
       bs.Bigint.small_ops bs.Bigint.big_ops bs.Bigint.promotions bs.Bigint.demotions
       (Bigint.small_hit_rate bs));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"rational_stats\": {\"adds\": %d, \"add_coprime\": %d, \"muls\": %d, \
        \"mul_coprime\": %d},\n"
       rs.Rational.adds rs.Rational.add_coprime rs.Rational.muls rs.Rational.mul_coprime);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"combinatorics_cache\": {\"binomial_hits\": %d, \"binomial_misses\": %d, \
        \"binomial_entries\": %d, \"partition_hits\": %d, \"partition_misses\": %d, \
        \"partition_entries\": %d}\n"
       cs.Combinatorics.binomial_hits cs.Combinatorics.binomial_misses
       cs.Combinatorics.binomial_entries cs.Combinatorics.partition_hits
       cs.Combinatorics.partition_misses cs.Combinatorics.partition_entries);
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf "%-28s %9d ops  fast %10.0f/s  reference %10.0f/s  speedup %6.2fx  %s\n"
        r.xname r.xops (ops_s r.xops r.xfast_secs) (ops_s r.xops r.xref_secs) (speedup r)
        (if r.xequal then "equal" else "MISMATCH"))
    rows;
  Printf.printf "bigint fast-path hit rate: %.4f (%d small / %d big ops, %d promotions, %d demotions)\n"
    (Bigint.small_hit_rate bs) bs.Bigint.small_ops bs.Bigint.big_ops bs.Bigint.promotions
    bs.Bigint.demotions;
  Printf.printf "wrote %s\n" file

(* -- robustness bench (--json-robust) ---------------------------------- *)

(* Measures what governance costs the governed MC engine: baseline Par.count
   vs count_governed bare, vs governed with periodic checkpointing; snapshot
   size on disk and the wall cost of a resume; and a fault-injected run with
   retries. Every configuration is asserted bit-identical to the baseline
   before any timing is reported — the numbers are only meaningful if the
   determinism contract holds. Writes BENCH_robust.json; `make ci` runs the
   smoke form. *)

type robust_numbers = {
  r_jobs : int;
  r_trials : int;
  r_chunks : int;
  r_baseline_secs : float;
  r_governed_secs : float;
  r_checkpointed_secs : float;
  r_checkpoints_written : int;
  r_snapshot_bytes : int;
  r_partial_chunks : int;
  r_restore_secs : float;
  r_resume_equal : bool;
  r_fault_secs : float;
  r_fault_retries : int;
  r_fault_equal : bool;
}

let robust_numbers ~smoke =
  let trials = if smoke then 60_000 else 600_000 in
  let chunk = 2048 in
  let chunks = (trials + chunk - 1) / chunk in
  let jobs = max 4 (Par.default_jobs ()) in
  let model = Model.tso () in
  let trial r =
    let prog = Program.generate r ~m:48 in
    let pi = Settle.run model r prog in
    Window.gamma prog pi >= 1
  in
  let fresh () = Rng.create seed in
  ignore (Par.count ~jobs ~chunk ~trials:(max 1 (trials / 20)) trial (fresh ()));
  let baseline = ref 0 in
  let r_baseline_secs =
    wall (fun () -> baseline := Par.count ~jobs ~chunk ~trials trial (fresh ()))
  in
  let governed = ref 0 in
  let r_governed_secs =
    wall (fun () ->
        let g = Par.count_governed ~jobs ~chunk ~trials trial (fresh ()) in
        assert (g.Par.exhausted = None);
        governed := g.Par.value)
  in
  assert (!governed = !baseline);
  let snap = Filename.temp_file "memrel_robust" ".snap" in
  let checkpointed = ref 0 and r_checkpoints_written = ref 0 in
  let r_checkpointed_secs =
    wall (fun () ->
        let g =
          Par.count_governed ~jobs ~chunk ~checkpoint:snap ~checkpoint_every:4 ~trials trial
            (fresh ())
        in
        r_checkpoints_written := g.Par.run_stats.Par.checkpoints_written;
        checkpointed := g.Par.value)
  in
  assert (!checkpointed = !baseline);
  (* interrupt half-way with a deterministic work cap, snapshot, resume *)
  let partial =
    Par.count_governed ~jobs ~chunk
      ~budget:(Budget.create ~max_work:(chunks / 2) ())
      ~checkpoint:snap ~checkpoint_every:4 ~trials trial (fresh ())
  in
  assert (partial.Par.exhausted <> None);
  let r_partial_chunks = partial.Par.run_stats.Par.chunks_done in
  let r_snapshot_bytes = (Unix.stat snap).Unix.st_size in
  let resumed = ref 0 in
  let r_restore_secs =
    wall (fun () ->
        let g = Par.count_governed ~jobs ~chunk ~resume:snap ~trials trial (fresh ()) in
        assert (g.Par.run_stats.Par.chunks_resumed = r_partial_chunks);
        resumed := g.Par.value)
  in
  Sys.remove snap;
  let r_resume_equal = !resumed = !baseline in
  assert r_resume_equal;
  let fault ~chunk:c ~attempt = if (c = 0 || c = 7) && attempt = 1 then Some Par.Crash else None in
  let faulted = ref 0 and r_fault_retries = ref 0 in
  let r_fault_secs =
    wall (fun () ->
        let g = Par.count_governed ~jobs ~chunk ~fault ~trials trial (fresh ()) in
        r_fault_retries := g.Par.run_stats.Par.retries;
        faulted := g.Par.value)
  in
  let r_fault_equal = !faulted = !baseline in
  assert r_fault_equal;
  {
    r_jobs = jobs;
    r_trials = trials;
    r_chunks = chunks;
    r_baseline_secs;
    r_governed_secs;
    r_checkpointed_secs;
    r_checkpoints_written = !r_checkpoints_written;
    r_snapshot_bytes;
    r_partial_chunks;
    r_restore_secs;
    r_resume_equal;
    r_fault_secs;
    r_fault_retries = !r_fault_retries;
    r_fault_equal;
  }

let robust_json ~file ~smoke =
  let n = robust_numbers ~smoke in
  let overhead a b = if a > 0.0 then b /. a else 0.0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" n.r_jobs);
  Buffer.add_string buf (Printf.sprintf "  \"trials\": %d,\n" n.r_trials);
  Buffer.add_string buf (Printf.sprintf "  \"chunks\": %d,\n" n.r_chunks);
  Buffer.add_string buf (Printf.sprintf "  \"baseline_seconds\": %.6f,\n" n.r_baseline_secs);
  Buffer.add_string buf (Printf.sprintf "  \"governed_seconds\": %.6f,\n" n.r_governed_secs);
  Buffer.add_string buf
    (Printf.sprintf "  \"governance_overhead\": %.4f,\n"
       (overhead n.r_baseline_secs n.r_governed_secs));
  Buffer.add_string buf
    (Printf.sprintf "  \"checkpointed_seconds\": %.6f,\n" n.r_checkpointed_secs);
  Buffer.add_string buf
    (Printf.sprintf "  \"checkpoint_overhead\": %.4f,\n"
       (overhead n.r_baseline_secs n.r_checkpointed_secs));
  Buffer.add_string buf
    (Printf.sprintf "  \"checkpoints_written\": %d,\n" n.r_checkpoints_written);
  Buffer.add_string buf (Printf.sprintf "  \"snapshot_bytes\": %d,\n" n.r_snapshot_bytes);
  Buffer.add_string buf (Printf.sprintf "  \"partial_chunks\": %d,\n" n.r_partial_chunks);
  Buffer.add_string buf (Printf.sprintf "  \"restore_seconds\": %.6f,\n" n.r_restore_secs);
  Buffer.add_string buf (Printf.sprintf "  \"resume_equal\": %b,\n" n.r_resume_equal);
  Buffer.add_string buf (Printf.sprintf "  \"fault_seconds\": %.6f,\n" n.r_fault_secs);
  Buffer.add_string buf (Printf.sprintf "  \"fault_retries\": %d,\n" n.r_fault_retries);
  Buffer.add_string buf (Printf.sprintf "  \"fault_equal\": %b\n" n.r_fault_equal);
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "governed MC (%d trials, %d chunks, jobs=%d):\n\
    \  baseline      %8.3fs\n\
    \  governed      %8.3fs (%.2fx baseline)\n\
    \  checkpointed  %8.3fs (%.2fx baseline, %d snapshots, %d bytes each)\n\
    \  resume        %8.3fs from %d/%d chunks  bit-identical: %b\n\
    \  fault-retried %8.3fs (%d retries)       bit-identical: %b\n"
    n.r_trials n.r_chunks n.r_jobs n.r_baseline_secs n.r_governed_secs
    (overhead n.r_baseline_secs n.r_governed_secs)
    n.r_checkpointed_secs
    (overhead n.r_baseline_secs n.r_checkpointed_secs)
    n.r_checkpoints_written n.r_snapshot_bytes n.r_restore_secs n.r_partial_chunks n.r_chunks
    n.r_resume_equal n.r_fault_secs n.r_fault_retries n.r_fault_equal;
  Printf.printf "wrote %s\n" file

(* -- service bench (--json-serve) --------------------------------------- *)

(* Measures what the [memrel serve] result cache buys: a mixed query trace
   is run cold against a fresh daemon (every answer computed), replayed warm
   (every answer a memory hit), and replayed again against a restarted
   daemon over the same cache directory (every answer a disk hit). The
   heavy enumeration is timed on its own — the headline number is how many
   times faster the warm hit answers it. Warm responses are checked equal
   to the cold results before any number is reported. Writes
   BENCH_serve.json; `make ci` runs the smoke form. *)

type serve_numbers = {
  v_queries : int;
  v_cold_trace_secs : float;
  v_warm_trace_secs : float;
  v_disk_trace_secs : float;
  v_cold_heavy_secs : float;
  v_warm_heavy_secs : float;
  v_warm_hit_rate : float;
  v_disk_hit_rate : float;
  v_warm_qps : float;
  v_responses_equal : bool;
  v_chaos_seeds : int;
  v_chaos_secs : float;
  v_chaos_retries : int;
  v_chaos_responses_equal : bool;
  v_chaos_restart_equal : bool;
}

let serve_rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let serve_numbers ~smoke =
  let module SP = Service_protocol in
  let module SS = Service_server in
  let module SC = Service_client in
  let tmp suffix =
    let p = Filename.temp_file "memrel_bench" suffix in
    Sys.remove p;
    p
  in
  let cache_dir = tmp ".cache" in
  let parse s =
    match SP.parse_query s with Ok q -> q | Error m -> failwith (s ^ ": " ^ m)
  in
  let heavy = if smoke then "enumerate inc4 sc" else "enumerate inc5 sc" in
  let trace =
    List.map parse
      [
        "verify sb tso";
        "verify mp wo";
        "enumerate lb pso";
        "axiom sb tso engine=solver";
        "estimate settling tso gamma=2 trials=20000";
        "estimate shift gammas=3,2,5 trials=20000";
        heavy;
      ]
  in
  let with_daemon f =
    let socket = tmp ".sock" in
    let address = SP.Unix_path socket in
    let config = SS.default_config address cache_dir in
    let ready = Atomic.make false in
    let server =
      Domain.spawn (fun () -> SS.run ~on_ready:(fun () -> Atomic.set ready true) config)
    in
    let deadline = Unix.gettimeofday () +. 10.0 in
    while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.01)
    done;
    if not (Atomic.get ready) then failwith "bench daemon did not come up";
    let finish () =
      (match SC.with_connection ~retry_for:2.0 address (fun c -> SC.request c SP.Shutdown) with
       | Ok _ | Error _ -> ());
      Domain.join server
    in
    match SC.connect ~retry_for:10.0 address with
    | Error m ->
      finish ();
      failwith m
    | Ok c ->
      let r =
        try f c
        with e ->
          SC.close c;
          finish ();
          raise e
      in
      SC.close c;
      finish ();
      r
  in
  let query c q =
    match SC.query c q with
    | Ok (SP.Result { result; origin }) -> (result, origin)
    | Ok r -> failwith ("unexpected response: " ^ SP.render_response r)
    | Error m -> failwith m
  in
  let run_trace c = List.map (fun q -> query c q) trace in
  let hits origin results =
    List.fold_left (fun n (_, o) -> if o = origin then n + 1 else n) 0 results
  in
  let rate origin results =
    float_of_int (hits origin results) /. float_of_int (List.length results)
  in
  (* one daemon serves the cold pass, the warm replay, and the qps loop *)
  let cold, v_cold_trace_secs, cold_heavy, v_cold_heavy_secs, warm, v_warm_trace_secs,
      v_warm_heavy_secs, v_warm_qps =
    with_daemon (fun c ->
        let cold = ref [] in
        let cold_secs = wall (fun () -> cold := run_trace c) in
        let heavy_q = parse heavy in
        (* the heavy query is answered from cache now; time it warm, and
           read its cold time from a fresh single measurement on a distinct
           window so the cold number is not trace-amortized *)
        let heavy_cold = ref (List.nth !cold (List.length trace - 1)) in
        let heavy_cold_secs =
          wall (fun () ->
              heavy_cold := query c (parse (heavy ^ " window=9")))
        in
        let warm = ref [] in
        let warm_secs = wall (fun () -> warm := run_trace c) in
        let warm_heavy = ref !heavy_cold in
        let warm_heavy_secs = wall (fun () -> warm_heavy := query c heavy_q) in
        let iters = if smoke then 50 else 300 in
        let qps_secs =
          wall (fun () ->
              for _ = 1 to iters do
                ignore (run_trace c)
              done)
        in
        let qps = float_of_int (iters * List.length trace) /. qps_secs in
        ( !cold, cold_secs, !heavy_cold, heavy_cold_secs, !warm, warm_secs, warm_heavy_secs,
          qps ))
  in
  ignore cold_heavy;
  (* a fresh daemon over the same cache directory answers from disk *)
  let disk, v_disk_trace_secs =
    with_daemon (fun c ->
        let disk = ref [] in
        let secs = wall (fun () -> disk := run_trace c) in
        (!disk, secs))
  in
  let strip results = List.map fst results in
  let v_responses_equal = strip cold = strip warm && strip cold = strip disk in
  assert v_responses_equal;
  assert (hits SP.Computed cold = List.length trace);
  (* chaos replay: the same trace against daemons serving under seeded
     fault plans (EINTR, short transfers, ENOSPC, torn renames on all
     cache IO). Typed errors are retried; answered bytes must equal the
     clean cold run's. Then a clean daemon over the last chaos-battered
     cache directory must also answer byte-identically — a corrupt entry
     is recomputed, never served. *)
  let cold_bytes = List.map (fun (r, _) -> SP.encode_result r) cold in
  let v_chaos_seeds = if smoke then 3 else 10 in
  let chaos_retries = ref 0 in
  let chaos_equal = ref true in
  let v_chaos_secs =
    wall (fun () ->
        for seed = 1 to v_chaos_seeds do
          serve_rm_rf cache_dir;
          Faultio.install (Faultio.plan_rate ~seed 0.2);
          Fun.protect ~finally:Faultio.clear (fun () ->
              with_daemon (fun c ->
                  List.iteri
                    (fun i q ->
                      let expected = List.nth cold_bytes i in
                      let rec go n =
                        match SC.query c q with
                        | Ok (SP.Result { result; _ }) ->
                          if SP.encode_result result <> expected then chaos_equal := false
                        | (Ok _ | Error _) when n < 25 ->
                          incr chaos_retries;
                          go (n + 1)
                        | Ok _ | Error _ -> chaos_equal := false
                      in
                      go 0)
                    trace))
        done)
  in
  let v_chaos_restart_equal =
    with_daemon (fun c ->
        List.for_all2 (fun (r, _) b -> SP.encode_result r = b) (run_trace c) cold_bytes)
  in
  assert !chaos_equal;
  assert v_chaos_restart_equal;
  serve_rm_rf cache_dir;
  {
    v_queries = List.length trace;
    v_cold_trace_secs;
    v_warm_trace_secs;
    v_disk_trace_secs;
    v_cold_heavy_secs;
    v_warm_heavy_secs;
    v_warm_hit_rate = rate SP.Memory_hit warm;
    v_disk_hit_rate = rate SP.Disk_hit disk;
    v_warm_qps;
    v_responses_equal;
    v_chaos_seeds;
    v_chaos_secs;
    v_chaos_retries = !chaos_retries;
    v_chaos_responses_equal = !chaos_equal;
    v_chaos_restart_equal;
  }

let serve_json ~file ~smoke =
  let n = serve_numbers ~smoke in
  let ratio = if n.v_warm_heavy_secs > 0.0 then n.v_cold_heavy_secs /. n.v_warm_heavy_secs else 0.0 in
  if not smoke then assert (ratio >= 100.0);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf (Printf.sprintf "  \"trace_queries\": %d,\n" n.v_queries);
  Buffer.add_string buf (Printf.sprintf "  \"cold_trace_seconds\": %.6f,\n" n.v_cold_trace_secs);
  Buffer.add_string buf (Printf.sprintf "  \"warm_trace_seconds\": %.6f,\n" n.v_warm_trace_secs);
  Buffer.add_string buf (Printf.sprintf "  \"disk_trace_seconds\": %.6f,\n" n.v_disk_trace_secs);
  Buffer.add_string buf
    (Printf.sprintf "  \"cold_heavy_seconds\": %.6f,\n" n.v_cold_heavy_secs);
  Buffer.add_string buf
    (Printf.sprintf "  \"warm_heavy_seconds\": %.6f,\n" n.v_warm_heavy_secs);
  Buffer.add_string buf (Printf.sprintf "  \"cold_over_warm_heavy\": %.1f,\n" ratio);
  Buffer.add_string buf (Printf.sprintf "  \"warm_hit_rate\": %.4f,\n" n.v_warm_hit_rate);
  Buffer.add_string buf (Printf.sprintf "  \"disk_hit_rate\": %.4f,\n" n.v_disk_hit_rate);
  Buffer.add_string buf (Printf.sprintf "  \"warm_queries_per_second\": %.1f,\n" n.v_warm_qps);
  Buffer.add_string buf (Printf.sprintf "  \"responses_equal\": %b,\n" n.v_responses_equal);
  Buffer.add_string buf (Printf.sprintf "  \"chaos_seeds\": %d,\n" n.v_chaos_seeds);
  Buffer.add_string buf (Printf.sprintf "  \"chaos_seconds\": %.6f,\n" n.v_chaos_secs);
  Buffer.add_string buf (Printf.sprintf "  \"chaos_retries\": %d,\n" n.v_chaos_retries);
  Buffer.add_string buf
    (Printf.sprintf "  \"chaos_responses_equal\": %b,\n" n.v_chaos_responses_equal);
  Buffer.add_string buf
    (Printf.sprintf "  \"chaos_restart_equal\": %b\n" n.v_chaos_restart_equal);
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "memrel serve (%d-query trace):\n\
    \  cold trace    %8.3fs (all computed)\n\
    \  warm trace    %8.3fs (hit rate %.0f%%)\n\
    \  disk trace    %8.3fs (hit rate %.0f%%, restarted daemon)\n\
    \  heavy query   %8.3fs cold -> %.6fs warm (%.0fx)\n\
    \  sustained     %8.1f queries/s warm\n\
    \  responses byte-identical across cold/warm/disk: %b\n\
    \  chaos         %8.3fs (%d seeded fault plans, %d retries; bytes = clean \
       run: %b, post-chaos restart clean: %b)\n"
    n.v_queries n.v_cold_trace_secs n.v_warm_trace_secs
    (100.0 *. n.v_warm_hit_rate)
    n.v_disk_trace_secs
    (100.0 *. n.v_disk_hit_rate)
    n.v_cold_heavy_secs n.v_warm_heavy_secs ratio n.v_warm_qps n.v_responses_equal
    n.v_chaos_secs n.v_chaos_seeds n.v_chaos_retries n.v_chaos_responses_equal
    n.v_chaos_restart_equal;
  Printf.printf "wrote %s\n" file

let full_run () =
  print_endline "memrel reproduction harness";
  print_endline "paper: The Impact of Memory Models on Software Reliability in Multiprocessors";
  print_endline "       (Jaffe, Moscibroda, Effinger-Dean, Ceze, Strauss — PODC 2011)";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  timing ();
  print_newline ();
  print_endline "done. See EXPERIMENTS.md for the paper-vs-measured discussion."

let () =
  (* `main.exe` runs the full paper harness; `main.exe --json [FILE]` runs
     only the MC throughput bench and writes FILE (default BENCH_mc.json);
     `--json-smoke` scales trials down 10x for fast CI. *)
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_mc.json" in
    mc_json ~file ~scale:1
  | _ :: ("--json-smoke" | "--json-mc-smoke") :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_mc.json" in
    mc_json ~file ~scale:10
  | _ :: "--json-enum" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_enum.json" in
    enum_json ~file ~smoke:false
  | _ :: "--json-enum-smoke" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_enum.json" in
    enum_json ~file ~smoke:true
  | _ :: "--json-axiom" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_axiom.json" in
    axiom_json ~file ~smoke:false
  | _ :: "--json-axiom-smoke" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_axiom.json" in
    axiom_json ~file ~smoke:true
  | _ :: "--json-robust" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_robust.json" in
    robust_json ~file ~smoke:false
  | _ :: "--json-robust-smoke" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_robust.json" in
    robust_json ~file ~smoke:true
  | _ :: "--json-serve" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_serve.json" in
    serve_json ~file ~smoke:false
  | _ :: "--json-serve-smoke" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_serve.json" in
    serve_json ~file ~smoke:true
  | _ :: "--json-exact" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_exact.json" in
    exact_json ~file ~smoke:false
  | _ :: "--json-exact-smoke" :: rest ->
    let file = match rest with f :: _ -> f | [] -> "BENCH_exact.json" in
    exact_json ~file ~smoke:true
  | _ -> full_run ()
