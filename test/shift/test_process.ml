module P = Memrel_shift.Process
module Rng = Memrel_prob.Rng

let test_disjoint_basic () =
  Alcotest.(check bool) "separated" true
    (P.disjoint ~shifts:[| 0; 5 |] ~gammas:[| 3; 2 |]);
  Alcotest.(check bool) "overlapping" false
    (P.disjoint ~shifts:[| 0; 2 |] ~gammas:[| 3; 2 |]);
  Alcotest.(check bool) "touching endpoints overlap" false
    (P.disjoint ~shifts:[| 0; 3 |] ~gammas:[| 3; 2 |]);
  Alcotest.(check bool) "adjacent slots disjoint" true
    (P.disjoint ~shifts:[| 0; 4 |] ~gammas:[| 3; 2 |])

let test_disjoint_zero_length () =
  (* zero-length segments occupy one slot; equal shifts collide *)
  Alcotest.(check bool) "same point" false (P.disjoint ~shifts:[| 2; 2 |] ~gammas:[| 0; 0 |]);
  Alcotest.(check bool) "neighbors ok" true (P.disjoint ~shifts:[| 2; 3 |] ~gammas:[| 0; 0 |])

let test_disjoint_unsorted_input () =
  (* order of segments must not matter *)
  Alcotest.(check bool) "reversed" true (P.disjoint ~shifts:[| 5; 0 |] ~gammas:[| 2; 3 |]);
  Alcotest.(check bool) "reversed collide" false (P.disjoint ~shifts:[| 2; 0 |] ~gammas:[| 2; 3 |])

let test_disjoint_three () =
  (* The paper's Figure 2 instance (gammas (3,2,5), shifts (8,0,2)) has
     segments [0,2] and [2,7] touching at slot 2. Figure 2 calls this
     disjoint, but Theorem 5.1's algebra — which this module implements and
     which brute-force enumeration confirms — requires strict separation,
     so under the theorem's convention A is violated. The half-open reading
     the figure uses corresponds to closed segments one shorter. *)
  Alcotest.(check bool) "figure 2 instance violates A under Theorem 5.1" false
    (P.disjoint ~shifts:[| 8; 0; 2 |] ~gammas:[| 3; 2; 5 |]);
  Alcotest.(check bool) "figure 2 instance disjoint under the half-open reading" true
    (P.disjoint ~shifts:[| 8; 0; 2 |] ~gammas:[| 2; 1; 4 |]);
  Alcotest.(check bool) "well-separated variant is disjoint" true
    (P.disjoint ~shifts:[| 8; 0; 3 |] ~gammas:[| 3; 2; 4 |])

let test_mismatch () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Process.disjoint: length mismatch")
    (fun () -> ignore (P.disjoint ~shifts:[| 1 |] ~gammas:[| 1; 2 |]))

let test_sample_fields () =
  let rng = Rng.create 1 in
  let s = P.sample rng [| 2; 3 |] in
  Alcotest.(check int) "two shifts" 2 (Array.length s.shifts);
  Array.iter (fun v -> Alcotest.(check bool) "nonnegative" true (v >= 0)) s.shifts;
  Alcotest.(check bool) "flag consistent" (P.disjoint ~shifts:s.shifts ~gammas:[| 2; 3 |])
    s.disjoint

let test_sample_negative_length () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "negative gamma" (Invalid_argument "Process.sample: negative segment length")
    (fun () -> ignore (P.sample rng [| -1 |]))

let test_estimate_n2_closed_form () =
  (* Pr[A(g1,g2)] = (2^-g1 + 2^-g2)/3 *)
  let rng = Rng.create 42 in
  List.iter
    (fun (g1, g2) ->
      let expected = (Float.pow 2.0 (float_of_int (-g1)) +. Float.pow 2.0 (float_of_int (-g2))) /. 3.0 in
      let est, ci = P.estimate ~trials:200_000 rng [| g1; g2 |] in
      if not (ci.lo -. 0.002 <= expected && expected <= ci.hi +. 0.002) then
        Alcotest.fail (Printf.sprintf "(%d,%d): est %f vs %f" g1 g2 est expected))
    [ (0, 0); (1, 1); (2, 2); (0, 3) ]

let test_single_segment_always_disjoint () =
  let rng = Rng.create 7 in
  let est, _ = P.estimate ~trials:1000 rng [| 5 |] in
  Alcotest.(check (float 0.0)) "trivially disjoint" 1.0 est

let test_jobs_invariance () =
  (* Par contract: estimate and estimate_geom bit-identical at jobs:1/jobs:4 *)
  let run jobs = P.estimate ~jobs ~trials:25_000 (Rng.create 401) [| 2; 3; 2 |] in
  let (e1, ci1) = run 1 and (e4, ci4) = run 4 in
  Alcotest.(check (float 0.0)) "estimate identical" e1 e4;
  Alcotest.(check (float 0.0)) "ci identical" ci1.lo ci4.lo;
  let rung jobs = P.estimate_geom ~jobs ~q:0.75 ~trials:25_000 (Rng.create 403) [| 2; 2 |] in
  let (g1, _) = rung 1 and (g4, _) = rung 4 in
  Alcotest.(check (float 0.0)) "estimate_geom identical" g1 g4

let prop_disjoint_permutation_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"disjointness invariant under segment relabeling" ~count:300
       QCheck.(pair (list_of_size (Gen.int_range 2 5) (int_range 0 6))
                 (list_of_size (Gen.int_range 2 5) (int_range 0 10)))
       (fun (gl, sl) ->
         let n = min (List.length gl) (List.length sl) in
         QCheck.assume (n >= 2);
         let g = Array.of_list (List.filteri (fun i _ -> i < n) gl) in
         let s = Array.of_list (List.filteri (fun i _ -> i < n) sl) in
         let d1 = P.disjoint ~shifts:s ~gammas:g in
         (* rotate both arrays together *)
         let rot a = Array.init n (fun i -> a.((i + 1) mod n)) in
         let d2 = P.disjoint ~shifts:(rot s) ~gammas:(rot g) in
         d1 = d2))

let prop_growing_segments_never_create_disjointness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"growing a segment cannot make an overlapping family disjoint"
       ~count:300
       QCheck.(triple (list_of_size (Gen.int_range 2 4) (int_range 0 5))
                 (list_of_size (Gen.int_range 2 4) (int_range 0 8))
                 (int_range 0 3))
       (fun (gl, sl, extra) ->
         let n = min (List.length gl) (List.length sl) in
         QCheck.assume (n >= 2);
         let g = Array.of_list (List.filteri (fun i _ -> i < n) gl) in
         let s = Array.of_list (List.filteri (fun i _ -> i < n) sl) in
         let g_bigger = Array.map (fun x -> x + extra) g in
         (* monotonicity: disjoint with bigger segments implies disjoint with
            smaller ones *)
         (not (P.disjoint ~shifts:s ~gammas:g_bigger)) || P.disjoint ~shifts:s ~gammas:g))

(* -- streaming path vs reference closures -------------------------------- *)

module Par = Memrel_prob.Par
module Budget = Memrel_prob.Budget

let test_disjoint_scratch_matches () =
  (* the zero-allocation insertion-sort check agrees with the reference
     [disjoint] on random inputs, ties included *)
  let rng = Rng.create 401 in
  for _ = 1 to 5_000 do
    let n = 2 + Rng.int rng 5 in
    let shifts = Array.init n (fun _ -> Rng.int rng 8) in
    let gammas = Array.init n (fun _ -> Rng.int rng 5) in
    let idx = Array.make n 0 in
    Alcotest.(check bool)
      (Printf.sprintf "shifts=[%s] gammas=[%s]"
         (String.concat ";" (Array.to_list (Array.map string_of_int shifts)))
         (String.concat ";" (Array.to_list (Array.map string_of_int gammas))))
      (P.disjoint ~shifts ~gammas)
      (P.disjoint_scratch ~shifts ~idx ~gammas)
  done

let test_streaming_equals_reference () =
  let gammas = [| 2; 3; 1; 2 |] in
  let s = P.estimate ~jobs:1 ~trials:50_000 (Rng.create 403) gammas in
  let r = P.Reference.estimate ~jobs:1 ~trials:50_000 (Rng.create 403) gammas in
  Alcotest.(check bool) "estimate identical" true (s = r);
  let sg = P.estimate_geom ~jobs:1 ~q:0.3 ~trials:50_000 (Rng.create 405) gammas in
  let rg = P.Reference.estimate_geom ~jobs:1 ~q:0.3 ~trials:50_000 (Rng.create 405) gammas in
  Alcotest.(check bool) "estimate_geom identical" true (sg = rg)

let test_inner_loop_zero_alloc () =
  (* the streaming trial body — n geometric draws + in-place disjointness —
     must not touch the minor heap in steady state *)
  let gammas = [| 2; 3; 1; 2 |] in
  let n = Array.length gammas in
  let shifts = Array.make n 0 and idx = Array.make n 0 in
  let rng = Rng.create 407 in
  let trial () =
    for i = 0 to n - 1 do
      shifts.(i) <- Rng.geometric_half rng
    done;
    ignore (P.disjoint_scratch ~shifts ~idx ~gammas)
  in
  for _ = 1 to 1_000 do trial () done;
  let trials = 20_000 in
  let before = Gc.minor_words () in
  for _ = 1 to trials do trial () done;
  let words = (Gc.minor_words () -. before) /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "%.3f words/trial < 0.5" words) true (words < 0.5)

let test_adaptive () =
  let gammas = [| 2; 3 |] in
  let run jobs =
    P.estimate_adaptive ~jobs ~target_width:0.02 ~max_trials:1_000_000 (Rng.create 409) gammas
  in
  let s1 = run 1 in
  Alcotest.(check bool) "target met" true s1.Par.target_met;
  Alcotest.(check bool) "stopped early" true (s1.Par.trials_done < 1_000_000);
  let _, ci = s1.Par.value in
  Alcotest.(check bool)
    (Printf.sprintf "width %f <= 0.02" (ci.hi -. ci.lo))
    true
    (ci.hi -. ci.lo <= 0.02);
  let s4 = run 4 in
  Alcotest.(check int) "same stopping point" s1.Par.trials_done s4.Par.trials_done;
  let p1, _ = s1.Par.value and p4, _ = s4.Par.value in
  Alcotest.(check bool) "same point bitwise" true
    (Int64.equal (Int64.bits_of_float p1) (Int64.bits_of_float p4));
  (* budget partial: typed, exact prefix, honestly missed target *)
  let b =
    P.estimate_adaptive ~jobs:1 ~chunk:256
      ~budget:(Budget.create ~max_work:3 ())
      ~target_width:0.0001 ~max_trials:1_000_000 (Rng.create 409) gammas
  in
  Alcotest.(check bool) "exhausted" true (b.Par.exhausted <> None);
  Alcotest.(check bool) "target missed" false b.Par.target_met;
  Alcotest.(check int) "prefix trials" 768 b.Par.trials_done

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("disjoint basics", test_disjoint_basic);
      ("zero-length segments", test_disjoint_zero_length);
      ("unsorted input", test_disjoint_unsorted_input);
      ("three segments", test_disjoint_three);
      ("length mismatch", test_mismatch);
      ("sample fields", test_sample_fields);
      ("negative length rejected", test_sample_negative_length);
      ("estimate matches n=2 closed form", test_estimate_n2_closed_form);
      ("single segment", test_single_segment_always_disjoint);
      ("jobs:1 = jobs:4 bit-identical", test_jobs_invariance);
      ("disjoint_scratch = disjoint (randomized)", test_disjoint_scratch_matches);
      ("streaming = Reference (bitwise)", test_streaming_equals_reference);
      ("inner loop allocates nothing", test_inner_loop_zero_alloc);
      ("adaptive reaches width, jobs-invariant, budget partial", test_adaptive);
    ]
  @ [ prop_disjoint_permutation_invariant; prop_growing_segments_never_create_disjointness ]
