module P = Memrel_service.Protocol
module Engine = Memrel_service.Engine
module Cache = Memrel_service.Cache
module Model = Memrel_memmodel.Model
module Litmus = Memrel_machine.Litmus

let families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

let temp_dir () =
  let d = Filename.temp_file "memrel_engine" ".d" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let run_ok q limits =
  match Engine.run ~caps:Engine.no_caps q limits with
  | Ok r -> r
  | Error e -> Alcotest.failf "engine error: %s" e.Engine.message

let test_verify_agrees_with_litmus_check () =
  List.iter
    (fun (t : Litmus.t) ->
      List.iter
        (fun family ->
          let q = P.Verify { test = t.Litmus.name; family; window = 8 } in
          match (run_ok q P.no_limits).P.payload with
          | P.Verdict { observed_relaxed; expected_relaxed; agrees; _ } ->
            let v = Litmus.check t family in
            Alcotest.(check bool)
              (t.Litmus.name ^ " observed")
              v.Litmus.observed_relaxed observed_relaxed;
            Alcotest.(check bool)
              (t.Litmus.name ^ " expected")
              v.Litmus.expected_relaxed expected_relaxed;
            Alcotest.(check bool) (t.Litmus.name ^ " agrees") true agrees
          | _ -> Alcotest.fail "wrong payload kind")
        families)
    Litmus.all

let test_enumerate_matches_direct () =
  let q = P.Enumerate { test = "sb"; family = Model.Total_store_order; window = 8; por = false } in
  match (run_ok q P.no_limits).P.payload with
  | P.Outcomes { entries; terminals; _ } ->
    let direct = Litmus.run_exhaustive (Litmus.find "sb") Model.Total_store_order in
    Alcotest.(check int) "outcome count" (List.length direct.Memrel_machine.Enumerate.outcomes)
      (List.length entries);
    Alcotest.(check int) "terminals" direct.Memrel_machine.Enumerate.terminals terminals;
    Alcotest.(check bool) "entry lists equal" true
      (entries = direct.Memrel_machine.Enumerate.outcomes)
  | _ -> Alcotest.fail "wrong payload kind"

let test_axiom_engines_agree () =
  List.iter
    (fun name ->
      List.iter
        (fun family ->
          let run engine =
            let q = P.Axiom { test = name; family; window = 8; engine } in
            match (run_ok q P.no_limits).P.payload with
            | P.Axiom_outcomes { entries; accepted } -> (entries, accepted)
            | _ -> Alcotest.fail "wrong payload kind"
          in
          let ge, ga = run P.Generate in
          let se, sa = run P.Solver in
          Alcotest.(check bool) (name ^ " entries agree") true (ge = se);
          Alcotest.(check int) (name ^ " accepted agree") ga sa)
        families)
    [ "sb"; "mp"; "lb" ]

let test_estimates_deterministic () =
  List.iter
    (fun kind ->
      let q =
        P.Estimate
          { kind; family = Model.Total_store_order; seed = 3; trials = 2000;
            target_width = None }
      in
      let a = run_ok q P.no_limits in
      let b = run_ok q P.no_limits in
      Alcotest.(check string) "bit-identical rerun" (P.encode_result a) (P.encode_result b);
      match a.P.payload with
      | P.Estimated { point; lo; hi; trials; _ } ->
        Alcotest.(check int) "full trials" 2000 trials;
        Alcotest.(check bool) "ordered interval" true (lo <= point && point <= hi)
      | _ -> Alcotest.fail "wrong payload kind")
    [
      P.Settling { gamma = 1; p = 0.5; m = 64 };
      P.Shift { gammas = [| 3; 2 |] };
      P.Joint { n = 2 };
    ]

let test_adaptive_estimate_stops () =
  let q =
    P.Estimate
      {
        kind = P.Shift { gammas = [| 1; 1 |] };
        family = Model.Sequential_consistency;
        seed = 1;
        trials = 400_000;
        target_width = Some 0.05;
      }
  in
  match (run_ok q P.no_limits).P.payload with
  | P.Estimated { trials; target_met; lo; hi; _ } ->
    Alcotest.(check bool) "target met" true target_met;
    Alcotest.(check bool) "stopped early" true (trials < 400_000);
    Alcotest.(check bool) "width satisfied" true (hi -. lo <= 0.05)
  | _ -> Alcotest.fail "wrong payload kind"

let test_budget_partial () =
  let limits = { P.deadline_s = Some 0.; max_work = None; max_mem_mb = None } in
  let q = P.Enumerate { test = "inc5"; family = Model.Sequential_consistency; window = 8; por = false } in
  let r = run_ok q limits in
  match r.P.partial with
  | Some p -> Alcotest.(check string) "deadline cause" "deadline" p.P.cause
  | None -> Alcotest.fail "expected a partial result"

let test_caps_clamp_requests () =
  (* a server cap arms the budget even when the request sets no limits *)
  let caps = { Engine.no_caps with Engine.max_deadline_s = Some 0. } in
  match Engine.run ~caps
          (P.Enumerate { test = "inc5"; family = Model.Sequential_consistency; window = 8;
                         por = false })
          P.no_limits with
  | Ok { P.partial = Some _; _ } -> ()
  | Ok { P.partial = None; _ } -> Alcotest.fail "cap ignored"
  | Error e -> Alcotest.failf "engine error: %s" e.Engine.message

let expect_error code q =
  match Engine.run ~caps:Engine.no_caps q P.no_limits with
  | Error e -> Alcotest.(check string) "error code" (P.error_code_to_string code)
                 (P.error_code_to_string e.Engine.code)
  | Ok _ -> Alcotest.fail "expected an error"

let test_typed_errors () =
  expect_error P.Unknown_test
    (P.Verify { test = "nonexistent"; family = Model.Sequential_consistency; window = 8 });
  expect_error P.Bad_request
    (P.Verify { test = "sb"; family = Model.Sequential_consistency; window = 0 });
  expect_error P.Unsupported
    (P.Verify { test = "sb"; family = Model.Custom; window = 8 });
  expect_error P.Bad_request
    (P.Estimate
       { kind = P.Joint { n = 1 }; family = Model.Sequential_consistency; seed = 1;
         trials = 1000; target_width = None });
  expect_error P.Bad_request
    (P.Estimate
       { kind = P.Settling { gamma = -1; p = 0.5; m = 64 };
         family = Model.Sequential_consistency; seed = 1; trials = 1000; target_width = None })

let test_cache_key_name_independent () =
  (* inc3 via the incN family and via find: one structural key *)
  let key q = match Engine.cache_key q with Ok k -> k | Error e -> Alcotest.fail e.Engine.message in
  let k1 = key (P.Verify { test = "inc3"; family = Model.Total_store_order; window = 8 }) in
  Alcotest.(check bool) "key built on the hash, not the name" true
    (Astring.String.is_infix ~affix:(Litmus.hash (Litmus.increment_n 3)) k1)

let test_cache_keys_distinct () =
  let queries =
    [
      P.Verify { test = "sb"; family = Model.Total_store_order; window = 8 };
      P.Verify { test = "sb"; family = Model.Sequential_consistency; window = 8 };
      P.Verify { test = "sb"; family = Model.Total_store_order; window = 9 };
      P.Verify { test = "mp"; family = Model.Total_store_order; window = 8 };
      P.Enumerate { test = "sb"; family = Model.Total_store_order; window = 8; por = false };
      P.Enumerate { test = "sb"; family = Model.Total_store_order; window = 8; por = true };
      P.Axiom { test = "sb"; family = Model.Total_store_order; window = 8; engine = P.Generate };
      P.Axiom { test = "sb"; family = Model.Total_store_order; window = 8; engine = P.Solver };
      P.Estimate
        { kind = P.Settling { gamma = 1; p = 0.5; m = 64 }; family = Model.Total_store_order;
          seed = 1; trials = 1000; target_width = None };
      P.Estimate
        { kind = P.Settling { gamma = 1; p = 0.25; m = 64 }; family = Model.Total_store_order;
          seed = 1; trials = 1000; target_width = None };
      P.Estimate
        { kind = P.Settling { gamma = 1; p = 0.5; m = 64 }; family = Model.Total_store_order;
          seed = 1; trials = 1000; target_width = Some 0.01 };
    ]
  in
  let keys =
    List.map
      (fun q ->
        match Engine.cache_key q with
        | Ok k -> k
        | Error e -> Alcotest.fail e.Engine.message)
      queries
  in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj -> if i < j && ki = kj then Alcotest.failf "key collision: %s" ki)
        keys)
    keys

(* -- the byte-identity differential -------------------------------------
   For every query kind, the bytes a client receives from the cache — on
   the computing run, on a memory hit, and on a disk hit in a fresh
   instance over the same directory — must equal the direct engine
   encoding exactly. *)

let differential_queries =
  List.concat_map
    (fun (t : Litmus.t) ->
      List.concat_map
        (fun family ->
          [
            P.Verify { test = t.Litmus.name; family; window = 8 };
            P.Enumerate { test = t.Litmus.name; family; window = 8; por = true };
            P.Axiom { test = t.Litmus.name; family; window = 8; engine = P.Solver };
          ])
        families)
    Litmus.all
  @ [
      P.Estimate
        { kind = P.Settling { gamma = 1; p = 0.5; m = 64 }; family = Model.Weak_ordering;
          seed = 2; trials = 1500; target_width = None };
      P.Estimate
        { kind = P.Shift { gammas = [| 2; 3 |] }; family = Model.Sequential_consistency;
          seed = 2; trials = 1500; target_width = None };
      P.Estimate
        { kind = P.Joint { n = 2 }; family = Model.Total_store_order; seed = 2; trials = 1500;
          target_width = Some 0.2 };
    ]

let test_cached_bytes_identical_to_direct () =
  with_dir @@ fun dir ->
  let caps = Engine.no_caps in
  let cache = Cache.create ~dir () in
  let cached q expect_origin =
    match Engine.run_cached ~caps cache q P.no_limits with
    | Ok (bytes, origin) ->
      Alcotest.(check string)
        (P.query_to_string q ^ " origin")
        (P.origin_to_string expect_origin) (P.origin_to_string origin);
      bytes
    | Error e -> Alcotest.failf "%s: %s" (P.query_to_string q) e.Engine.message
  in
  let direct =
    List.map
      (fun q ->
        match Engine.run ~caps q P.no_limits with
        | Ok r -> (q, P.encode_result r)
        | Error e -> Alcotest.failf "%s: %s" (P.query_to_string q) e.Engine.message)
      differential_queries
  in
  List.iter
    (fun (q, bytes) ->
      Alcotest.(check string) (P.query_to_string q ^ " computed") bytes
        (cached q Cache.Computed))
    direct;
  List.iter
    (fun (q, bytes) ->
      Alcotest.(check string) (P.query_to_string q ^ " memory hit") bytes
        (cached q Cache.Memory_hit))
    direct;
  (* a fresh instance over the same directory: disk tier only *)
  let cache = Cache.create ~dir () in
  let cached q expect_origin =
    match Engine.run_cached ~caps cache q P.no_limits with
    | Ok (bytes, origin) ->
      Alcotest.(check string)
        (P.query_to_string q ^ " origin")
        (P.origin_to_string expect_origin) (P.origin_to_string origin);
      bytes
    | Error e -> Alcotest.failf "%s: %s" (P.query_to_string q) e.Engine.message
  in
  List.iter
    (fun (q, bytes) ->
      Alcotest.(check string) (P.query_to_string q ^ " disk hit") bytes
        (cached q Cache.Disk_hit))
    direct

let test_partial_results_not_cached () =
  with_dir @@ fun dir ->
  let cache = Cache.create ~dir () in
  let limits = { P.deadline_s = Some 0.; max_work = None; max_mem_mb = None } in
  let q = P.Enumerate { test = "inc4"; family = Model.Sequential_consistency; window = 8; por = false } in
  (match Engine.run_cached ~caps:Engine.no_caps cache q limits with
   | Ok (_, origin) ->
     Alcotest.(check string) "first is computed" "computed" (P.origin_to_string origin)
   | Error e -> Alcotest.fail e.Engine.message);
  (* an unlimited retry recomputes (no stale partial served) and completes *)
  match Engine.run_cached ~caps:Engine.no_caps cache q P.no_limits with
  | Ok (bytes, origin) ->
    Alcotest.(check string) "retry recomputes" "computed" (P.origin_to_string origin);
    (match P.decode_result bytes with
     | Ok { P.partial = None; _ } -> ()
     | Ok _ -> Alcotest.fail "complete run still partial"
     | Error m -> Alcotest.fail m);
    (* and the complete answer IS cached *)
    (match Engine.run_cached ~caps:Engine.no_caps cache q P.no_limits with
     | Ok (_, origin) ->
       Alcotest.(check string) "now cached" "memory" (P.origin_to_string origin)
     | Error e -> Alcotest.fail e.Engine.message)
  | Error e -> Alcotest.fail e.Engine.message

let test_extmem_routing_byte_identical () =
  (* routing verify/enumerate through the external-memory BFS must not
     change a single byte of the encoded result — that is what lets a
     server switch engines without invalidating its cache *)
  with_dir @@ fun spill_root ->
  let extmem = { Engine.spill_root; mem_budget_bytes = 1 lsl 20 } in
  let queries =
    P.Verify { test = "sb"; family = Model.Total_store_order; window = 8 }
    :: List.concat_map
         (fun por ->
           List.map
             (fun family -> P.Enumerate { test = "inc4"; family; window = 8; por })
             families)
         [ false; true ]
  in
  List.iter
    (fun q ->
      let enc r =
        match r with
        | Ok r -> P.encode_result r
        | Error e -> Alcotest.failf "%s: %s" (P.query_to_string q) e.Engine.message
      in
      let ram = enc (Engine.run ~caps:Engine.no_caps q P.no_limits) in
      let ext = enc (Engine.run ~caps:Engine.no_caps ~extmem q P.no_limits) in
      Alcotest.(check string) (P.query_to_string q ^ " bytes") ram ext)
    queries;
  (* a budget-tripped extmem query keeps spill state and the unlimited
     retry resumes it to the same complete bytes *)
  let q = P.Enumerate { test = "inc4"; family = Model.Total_store_order; window = 8; por = false } in
  let limits = { P.deadline_s = None; max_work = Some 700; max_mem_mb = None } in
  (match Engine.run ~caps:Engine.no_caps ~extmem q limits with
   | Ok r -> Alcotest.(check bool) "work-capped run partial" true (r.P.partial <> None)
   | Error e -> Alcotest.fail e.Engine.message);
  Alcotest.(check bool) "spill state kept for resumption" true
    (Array.exists
       (fun d -> Sys.is_directory (Filename.concat spill_root d))
       (Sys.readdir spill_root));
  match (Engine.run ~caps:Engine.no_caps q P.no_limits, Engine.run ~caps:Engine.no_caps ~extmem q P.no_limits) with
  | Ok ram, Ok resumed ->
    Alcotest.(check string) "resumed completion byte-identical" (P.encode_result ram)
      (P.encode_result resumed)
  | Error e, _ | _, Error e -> Alcotest.fail e.Engine.message

let test_extmem_corrupt_spill_swept () =
  (* a truncated spill file (crash debris, torn rename) must not poison
     the query forever: the engine sweeps the corrupt state and restarts
     the run from scratch, answering with the exact in-RAM bytes *)
  with_dir @@ fun spill_root ->
  let extmem = { Engine.spill_root; mem_budget_bytes = 1 lsl 20 } in
  let q =
    P.Enumerate { test = "inc4"; family = Model.Total_store_order; window = 8; por = false }
  in
  let limits = { P.deadline_s = None; max_work = Some 700; max_mem_mb = None } in
  (match Engine.run ~caps:Engine.no_caps ~extmem q limits with
   | Ok r -> Alcotest.(check bool) "budget-tripped run partial" true (r.P.partial <> None)
   | Error e -> Alcotest.fail e.Engine.message);
  let truncated = ref 0 in
  Array.iter
    (fun d ->
      let dir = Filename.concat spill_root d in
      if Sys.is_directory dir then
        Array.iter
          (fun f ->
            let path = Filename.concat dir f in
            let n = (Unix.stat path).Unix.st_size in
            if n > 4 then begin
              let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Unix.ftruncate fd (n / 2);
              Unix.close fd;
              incr truncated
            end)
          (Sys.readdir dir))
    (Sys.readdir spill_root);
  Alcotest.(check bool) "some spill state corrupted" true (!truncated > 0);
  match
    ( Engine.run ~caps:Engine.no_caps q P.no_limits,
      Engine.run ~caps:Engine.no_caps ~extmem q P.no_limits )
  with
  | Ok ram, Ok healed ->
    Alcotest.(check string) "swept and restarted run byte-identical"
      (P.encode_result ram) (P.encode_result healed)
  | Error e, _ | _, Error e -> Alcotest.fail e.Engine.message

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("verify matches Litmus.check", test_verify_agrees_with_litmus_check);
      ("enumerate matches the direct enumerator", test_enumerate_matches_direct);
      ("axiom generate and solver agree", test_axiom_engines_agree);
      ("estimates deterministic per seed", test_estimates_deterministic);
      ("adaptive estimate stops at the target width", test_adaptive_estimate_stops);
      ("deadline 0 yields a typed partial", test_budget_partial);
      ("server caps clamp limitless requests", test_caps_clamp_requests);
      ("typed errors", test_typed_errors);
      ("cache key uses the structural hash", test_cache_key_name_independent);
      ("cache keys pairwise distinct", test_cache_keys_distinct);
      ("differential: cached bytes = direct bytes", test_cached_bytes_identical_to_direct);
      ("extmem routing is byte-identical and resumes partials",
       test_extmem_routing_byte_identical);
      ("corrupt spill state swept and restarted", test_extmem_corrupt_spill_swept);
      ("partial results are never cached", test_partial_results_not_cached);
    ]
