module Cache = Memrel_service.Cache
module P = Memrel_service.Protocol

let temp_dir () =
  let d = Filename.temp_file "memrel_cache" ".d" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let get = function
  | Ok v -> v
  | Error (m : string) -> Alcotest.failf "unexpected cache error: %s" m

let test_compute_then_hit () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    Ok ("value-1", true)
  in
  let v, o = get (Cache.find_or_compute c ~key:"k1" ~compute) in
  Alcotest.(check string) "computed value" "value-1" v;
  Alcotest.(check bool) "computed origin" true (o = Cache.Computed);
  let v, o = get (Cache.find_or_compute c ~key:"k1" ~compute) in
  Alcotest.(check string) "hit value" "value-1" v;
  Alcotest.(check bool) "memory origin" true (o = Cache.Memory_hit);
  Alcotest.(check int) "computed once" 1 !computes;
  let s = Cache.stats c in
  Alcotest.(check int) "entries" 1 s.P.entries;
  Alcotest.(check int) "stores" 1 s.P.stores

let test_disk_hit_after_memory_clear () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  ignore (get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Ok ("v", true))));
  Cache.clear_memory c;
  let v, o =
    get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Alcotest.fail "recomputed"))
  in
  Alcotest.(check string) "disk value" "v" v;
  Alcotest.(check bool) "disk origin" true (o = Cache.Disk_hit);
  (* promoted: the next probe is a memory hit *)
  let _, o =
    get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Alcotest.fail "recomputed"))
  in
  Alcotest.(check bool) "promoted to memory" true (o = Cache.Memory_hit)

let test_fresh_instance_same_dir () =
  (* the restart scenario: a second cache over the same directory serves
     the first one's entries from disk *)
  with_dir @@ fun dir ->
  let c1 = Cache.create ~dir () in
  ignore (get (Cache.find_or_compute c1 ~key:"persist" ~compute:(fun () -> Ok ("p", true))));
  let c2 = Cache.create ~dir () in
  let v, o =
    get
      (Cache.find_or_compute c2 ~key:"persist"
         ~compute:(fun () -> Alcotest.fail "recomputed after restart"))
  in
  Alcotest.(check string) "value survives restart" "p" v;
  Alcotest.(check bool) "from disk" true (o = Cache.Disk_hit)

let test_uncacheable_not_stored () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    Ok (Printf.sprintf "partial-%d" !computes, false)
  in
  let v, _ = get (Cache.find_or_compute c ~key:"k" ~compute) in
  Alcotest.(check string) "first" "partial-1" v;
  let v, o = get (Cache.find_or_compute c ~key:"k" ~compute) in
  Alcotest.(check string) "recomputed, not served stale" "partial-2" v;
  Alcotest.(check bool) "still a compute" true (o = Cache.Computed);
  Alcotest.(check int) "no entries" 0 (Cache.stats c).P.entries

let test_compute_error_propagates () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  (match Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Error "engine failed") with
   | Error "engine failed" -> ()
   | Error m -> Alcotest.failf "wrong error: %s" m
   | Ok _ -> Alcotest.fail "error swallowed");
  (* an error stores nothing: a later successful compute proceeds *)
  let v, _ = get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Ok ("ok", true))) in
  Alcotest.(check string) "later success" "ok" v

let corrupt_one_file dir =
  let corrupted = ref 0 in
  Array.iter
    (fun shard ->
      let sdir = Filename.concat dir shard in
      if Sys.is_directory sdir then
        Array.iter
          (fun f ->
            let path = Filename.concat sdir f in
            if Filename.check_suffix f ".snap" && !corrupted = 0 then begin
              let ic = open_in_bin path in
              let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
              close_in ic;
              let last = Bytes.length s - 1 in
              Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 0xff));
              let oc = open_out_bin path in
              output_bytes oc s;
              close_out oc;
              incr corrupted
            end)
          (Sys.readdir sdir))
    (Sys.readdir dir);
  !corrupted

let test_corrupted_disk_entry_recomputed () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  ignore (get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Ok ("good", true))));
  Alcotest.(check int) "one file corrupted" 1 (corrupt_one_file dir);
  Cache.clear_memory c;
  let computes = ref 0 in
  let v, o =
    get
      (Cache.find_or_compute c ~key:"k"
         ~compute:(fun () -> incr computes; Ok ("recomputed", true)))
  in
  Alcotest.(check string) "recomputed, not served corrupt" "recomputed" v;
  Alcotest.(check bool) "counted as a compute" true (o = Cache.Computed);
  Alcotest.(check bool) "disk error counted" true ((Cache.stats c).P.disk_errors >= 1);
  (* the overwrite repaired the entry: a fresh instance reads it *)
  Cache.clear_memory c;
  let v, o = get (Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Ok ("again", true))) in
  Alcotest.(check string) "repaired on disk" "recomputed" v;
  Alcotest.(check bool) "disk hit after repair" true (o = Cache.Disk_hit)

(* -- multi-domain hammering --------------------------------------------- *)

let test_same_key_raced () =
  (* 4 domains x 25 iterations on ONE key: the compute must run exactly
     once, everyone must read the same value, and nothing may crash *)
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    (* widen the race window *)
    ignore (Sys.opaque_identity (Array.init 1000 (fun i -> i * i)));
    Ok ("singleton", true)
  in
  let worker () =
    for _ = 1 to 25 do
      let v, _ = get (Cache.find_or_compute c ~key:"shared" ~compute) in
      if v <> "singleton" then failwith "wrong value under race"
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computes)

let test_distinct_keys_parallel () =
  (* 4 domains, each with its own key set; every key computed exactly once
     and every read consistent *)
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let computes = Atomic.make 0 in
  let worker d () =
    for i = 0 to 19 do
      let key = Printf.sprintf "d%d-k%d" d i in
      let expected = "v:" ^ key in
      for _ = 1 to 3 do
        let v, _ =
          get
            (Cache.find_or_compute c ~key
               ~compute:(fun () -> Atomic.incr computes; Ok (expected, true)))
        in
        if v <> expected then failwith ("wrong value for " ^ key)
      done
    done
  in
  let domains = Array.init 4 (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "80 distinct computes" 80 (Atomic.get computes);
  Alcotest.(check int) "80 entries" 80 (Cache.stats c).P.entries

let test_hammer_mixed_with_disk_reloads () =
  (* interleave same-key and distinct-key traffic with periodic memory
     clears, so disk promotion races the computes too *)
  with_dir @@ fun dir ->
  let c = Cache.create ~shards:4 ~dir () in
  let worker d () =
    for i = 0 to 49 do
      let key = Printf.sprintf "k%d" (i mod 7) in
      let expected = "v:" ^ key in
      let v, _ =
        get (Cache.find_or_compute c ~key ~compute:(fun () -> Ok (expected, true)))
      in
      if v <> expected then failwith ("wrong value for " ^ key);
      if d = 0 && i mod 10 = 9 then Cache.clear_memory c
    done
  in
  let domains = Array.init 4 (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join domains;
  (* domain 0's last iteration clears memory, so the resident count after
     the join is racy — what must hold is that every key still reads back
     from the store without recomputation *)
  for i = 0 to 6 do
    let key = Printf.sprintf "k%d" i in
    let v, _ =
      get
        (Cache.find_or_compute c ~key
           ~compute:(fun () -> Alcotest.failf "%s lost after hammer" key))
    in
    Alcotest.(check string) (key ^ " survives") ("v:" ^ key) v
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "7 keys resident after probes" 7 s.P.entries;
  Alcotest.(check int) "no disk errors" 0 s.P.disk_errors

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("compute then memory hit", test_compute_then_hit);
      ("disk hit and promotion", test_disk_hit_after_memory_clear);
      ("fresh instance reads the same dir", test_fresh_instance_same_dir);
      ("uncacheable results are not stored", test_uncacheable_not_stored);
      ("compute errors propagate, store nothing", test_compute_error_propagates);
      ("corrupted disk entry recomputed and repaired", test_corrupted_disk_entry_recomputed);
      ("4 domains race one key: single compute", test_same_key_raced);
      ("4 domains, distinct keys in parallel", test_distinct_keys_parallel);
      ("mixed hammer with disk reloads", test_hammer_mixed_with_disk_reloads);
    ]
