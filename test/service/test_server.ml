module P = Memrel_service.Protocol
module Server = Memrel_service.Server
module Client = Memrel_service.Client
module Engine = Memrel_service.Engine
module Pool = Memrel_service.Pool
module Model = Memrel_memmodel.Model

let temp_path suffix =
  let p = Filename.temp_file "memrel_srv" suffix in
  Sys.remove p;
  p

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* a daemon on a fresh Unix socket, stopped (via Shutdown) and joined before
   returning — [keep_cache] reuses a directory across restarts *)
let with_server ?(workers = 2) ?caps ?cache_dir ?(max_queue = 64) ?(io_deadline_s = 30.) f =
  let socket = temp_path ".sock" in
  let cache_dir = match cache_dir with Some d -> d | None -> temp_path ".cache" in
  let address = P.Unix_path socket in
  let config =
    { (Server.default_config address cache_dir) with
      Server.workers;
      caps = Option.value caps ~default:Engine.no_caps;
      max_queue;
      io_deadline_s }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () -> Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
  in
  (* wait for the listener: a test that connects before the daemon is up
     would fail, and worse, leave the cleanup below unable to deliver the
     Shutdown — Domain.join would then hang forever *)
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  if not (Atomic.get ready) then Alcotest.fail "server did not come up";
  Fun.protect
    ~finally:(fun () ->
      (* harmless if the test already shut it down: the socket is gone and
         this connect just fails after its retry window *)
      (match
         Client.with_connection ~retry_for:2. address (fun c -> Client.request c P.Shutdown)
       with
       | Ok _ | Error _ -> ());
      Domain.join server;
      rm_rf socket)
    (fun () -> f address cache_dir)

let request c r =
  match Client.request c r with Ok resp -> resp | Error m -> Alcotest.failf "request: %s" m

let connect address =
  match Client.connect ~retry_for:10. address with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let q_verify = P.Verify { test = "sb"; family = Model.Total_store_order; window = 8 }

let test_all_query_kinds () =
  let cache_dir = temp_path ".cache" in
  Fun.protect ~finally:(fun () -> rm_rf cache_dir) @@ fun () ->
  with_server ~cache_dir @@ fun address _ ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match request c (P.Query (q_verify, P.no_limits)) with
   | P.Result { result = { P.payload = P.Verdict { agrees = true; _ }; partial = None }; origin = P.Computed } -> ()
   | r -> Alcotest.failf "verify: %s" (P.render_response r));
  (match
     request c
       (P.Query
          ( P.Enumerate { test = "inc"; family = Model.Sequential_consistency; window = 8; por = true },
            P.no_limits ))
   with
   | P.Result { result = { P.payload = P.Outcomes { entries; _ }; _ }; _ } ->
     Alcotest.(check int) "inc outcomes" 2 (List.length entries)
   | r -> Alcotest.failf "enumerate: %s" (P.render_response r));
  (match
     request c
       (P.Query
          ( P.Axiom { test = "mp"; family = Model.Weak_ordering; window = 8; engine = P.Generate },
            P.no_limits ))
   with
   | P.Result { result = { P.payload = P.Axiom_outcomes { entries; _ }; _ }; _ } ->
     Alcotest.(check bool) "mp axiom outcomes nonempty" true (entries <> [])
   | r -> Alcotest.failf "axiom: %s" (P.render_response r));
  (match
     request c
       (P.Query
          ( P.Estimate
              { kind = P.Shift { gammas = [| 2; 2 |] }; family = Model.Sequential_consistency;
                seed = 1; trials = 2000; target_width = None },
            P.no_limits ))
   with
   | P.Result { result = { P.payload = P.Estimated { trials = 2000; _ }; _ }; _ } -> ()
   | r -> Alcotest.failf "estimate: %s" (P.render_response r));
  (* ping *)
  (match request c P.Ping with
   | P.Pong -> ()
   | r -> Alcotest.failf "ping: %s" (P.render_response r))

let test_cache_origins_and_restart () =
  let cache_dir = temp_path ".cache" in
  Fun.protect ~finally:(fun () -> rm_rf cache_dir) @@ fun () ->
  let origin_of = function
    | P.Result { origin; _ } -> P.origin_to_string origin
    | r -> Alcotest.failf "expected a result: %s" (P.render_response r)
  in
  with_server ~cache_dir (fun address _ ->
      let c = connect address in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Alcotest.(check string) "first is computed" "computed"
        (origin_of (request c (P.Query (q_verify, P.no_limits))));
      Alcotest.(check string) "second is a memory hit" "memory"
        (origin_of (request c (P.Query (q_verify, P.no_limits)))));
  (* a new daemon over the same cache dir serves from disk *)
  with_server ~cache_dir (fun address _ ->
      let c = connect address in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Alcotest.(check string) "after restart: disk hit" "disk"
        (origin_of (request c (P.Query (q_verify, P.no_limits))));
      Alcotest.(check string) "then memory" "memory"
        (origin_of (request c (P.Query (q_verify, P.no_limits)))))

let test_batch_dedup_and_order () =
  with_server @@ fun address _ ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let q2 = P.Enumerate { test = "inc"; family = Model.Sequential_consistency; window = 8; por = false } in
  let misses () =
    match request c P.Stats with
    | P.Stats_reply s -> s.P.cache.P.misses
    | r -> Alcotest.failf "stats: %s" (P.render_response r)
  in
  let before = misses () in
  (match
     request c
       (P.Batch
          [ (q_verify, P.no_limits); (q_verify, P.no_limits); (q2, P.no_limits);
            (q_verify, P.no_limits) ])
   with
   | P.Results [ a; b; c'; d ] ->
     (* order preserved: three verdicts and one outcome listing *)
     let is_verdict = function
       | P.Result { result = { P.payload = P.Verdict _; _ }; _ } -> true
       | _ -> false
     in
     Alcotest.(check bool) "slot 0 verdict" true (is_verdict a);
     Alcotest.(check bool) "slot 1 verdict" true (is_verdict b);
     Alcotest.(check bool) "slot 3 verdict" true (is_verdict d);
     (match c' with
      | P.Result { result = { P.payload = P.Outcomes _; _ }; _ } -> ()
      | _ -> Alcotest.fail "slot 2 should be the enumeration");
     (* identical sub-queries answered identically *)
     Alcotest.(check bool) "duplicates identical" true (a = b && b = d)
   | r -> Alcotest.failf "batch: %s" (P.render_response r));
  (* 4 sub-queries, but only 2 distinct computes *)
  Alcotest.(check int) "deduplicated misses" (before + 2) (misses ())

let test_batch_mixed_errors () =
  with_server @@ fun address _ ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let bad = P.Verify { test = "nosuch"; family = Model.Total_store_order; window = 8 } in
  match request c (P.Batch [ (q_verify, P.no_limits); (bad, P.no_limits) ]) with
  | P.Results [ P.Result _; P.Error { code = P.Unknown_test; _ } ] -> ()
  | r -> Alcotest.failf "mixed batch: %s" (P.render_response r)

let test_budget_partial_over_the_wire () =
  with_server @@ fun address _ ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let limits = { P.deadline_s = Some 0.; max_work = None; max_mem_mb = None } in
  match
    request c
      (P.Query
         ( P.Enumerate { test = "inc5"; family = Model.Sequential_consistency; window = 8; por = false },
           limits ))
  with
  | P.Result { result = { P.partial = Some p; _ }; _ } ->
    Alcotest.(check string) "cause" "deadline" p.P.cause
  | r -> Alcotest.failf "expected partial: %s" (P.render_response r)

let test_server_caps_apply () =
  let caps = { Engine.no_caps with Engine.max_deadline_s = Some 0. } in
  with_server ~caps @@ fun address _ ->
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match
    request c
      (P.Query
         ( P.Enumerate { test = "inc5"; family = Model.Sequential_consistency; window = 8; por = false },
           P.no_limits ))
  with
  | P.Result { result = { P.partial = Some _; _ }; _ } -> ()
  | r -> Alcotest.failf "cap should partial a heavy query: %s" (P.render_response r)

let test_malformed_frame_answered () =
  with_server @@ fun address _ ->
  match address with
  | P.Tcp _ -> Alcotest.fail "unix socket expected"
  | P.Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX path);
    (* a valid frame whose payload is not a request *)
    P.write_frame fd "\xde\xad\xbe\xef";
    (match P.read_frame fd with
     | Ok (Some payload) -> begin
       match P.decode_response payload with
       | Ok (P.Error { code = P.Bad_request; _ }) -> ()
       | Ok r -> Alcotest.failf "expected bad-request: %s" (P.render_response r)
       | Error m -> Alcotest.fail m
     end
     | Ok None -> Alcotest.fail "connection closed without an answer"
     | Error m -> Alcotest.fail m)

let test_stats_and_shutdown () =
  with_server @@ fun address _ ->
  let c = connect address in
  ignore (request c (P.Query (q_verify, P.no_limits)));
  (match request c P.Stats with
   | P.Stats_reply s ->
     Alcotest.(check bool) "requests counted" true (s.P.requests >= 1);
     Alcotest.(check int) "workers reported" 2 s.P.workers;
     Alcotest.(check bool) "an entry cached" true (s.P.cache.P.entries >= 1)
   | r -> Alcotest.failf "stats: %s" (P.render_response r));
  (match request c P.Shutdown with
   | P.Bye -> ()
   | r -> Alcotest.failf "shutdown: %s" (P.render_response r));
  Client.close c;
  (* the daemon is down: fresh connections fail once the socket is gone *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_down () =
    match Client.with_connection address (fun c -> Client.request c P.Ping) with
    | Error _ -> ()
    | Ok _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "daemon still answering"
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_down ()
      end
  in
  wait_down ()

(* -- pool --------------------------------------------------------------- *)

let test_pool_drains_and_joins () =
  let processed = Atomic.make 0 in
  let pool =
    Pool.create ~workers:3 ~handler:(fun n -> Atomic.set processed (Atomic.get processed + n)) ()
  in
  ignore pool;
  let pool2 = Pool.create ~max_queue:64 ~workers:2 ~handler:(fun _ -> Atomic.incr processed) () in
  for _ = 1 to 50 do
    match Pool.submit pool2 () with
    | Pool.Accepted -> ()
    | Pool.Overloaded | Pool.Stopping -> Alcotest.fail "submit not accepted"
  done;
  Pool.shutdown pool2;
  Alcotest.(check int) "all jobs ran before join" 50 (Atomic.get processed);
  Alcotest.(check bool) "rejected after shutdown" true (Pool.submit pool2 () = Pool.Stopping);
  Pool.shutdown pool

let test_pool_survives_handler_exceptions () =
  let survived = Atomic.make 0 in
  let pool =
    Pool.create ~workers:1
      ~handler:(fun n -> if n = 0 then failwith "boom" else Atomic.incr survived)
      ()
  in
  ignore (Pool.submit pool 0);
  ignore (Pool.submit pool 1);
  ignore (Pool.submit pool 0);
  ignore (Pool.submit pool 2);
  Pool.shutdown pool;
  Alcotest.(check int) "worker survived the failures" 2 (Atomic.get survived);
  (* the satellite regression: the escapes are counted, not swallowed *)
  let s = Pool.stats pool in
  Alcotest.(check int) "handler exceptions counted" 2 s.Pool.handler_exceptions;
  Alcotest.(check int) "no respawn for a caught exception" 0 s.Pool.respawns

(* -- robustness: refusal, reaping, overload, chaos ----------------------- *)

let test_refuses_live_socket () =
  with_server @@ fun address cache_dir ->
  (* the daemon is up: a second daemon on the same Unix socket must refuse
     with a typed one-line error instead of stealing the path *)
  Alcotest.(check bool) "probe sees the live daemon" true
    (match address with P.Unix_path p -> Server.unix_socket_live p | P.Tcp _ -> false);
  let config = { (Server.default_config address cache_dir) with Server.workers = 1 } in
  (match Server.run config with
  | () -> Alcotest.fail "second daemon should refuse to start"
  | exception Failure msg ->
    Alcotest.(check bool) "error names the conflict" true
      (Astring.String.is_infix ~affix:"already serving" msg));
  (* and the first daemon is unharmed *)
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match request c P.Ping with
  | P.Pong -> ()
  | r -> Alcotest.failf "first daemon hurt by the refusal: %s" (P.render_response r)

let test_slow_client_reaped () =
  with_server ~workers:2 ~io_deadline_s:1.0 @@ fun address _ ->
  match address with
  | P.Tcp _ -> Alcotest.fail "unix socket expected"
  | P.Unix_path path ->
    let slow = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close slow with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect slow (Unix.ADDR_UNIX path);
    (* half a frame header, then stall: without the per-frame deadline this
       would pin one of the two workers forever *)
    ignore (Unix.write_substring slow "MRF1\x00\x00" 0 6);
    (* the other worker keeps serving throughout *)
    let c = connect address in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match request c P.Ping with
    | P.Pong -> ()
    | r -> Alcotest.failf "ping while stalled: %s" (P.render_response r));
    (* the stalled connection is reaped at the deadline: its socket EOFs *)
    let deadline = Unix.gettimeofday () +. 15. in
    let buf = Bytes.create 64 in
    let rec wait_reaped () =
      if Unix.gettimeofday () > deadline then Alcotest.fail "stalled client never reaped"
      else
        match Unix.select [ slow ] [] [] 0.2 with
        | [ _ ], _, _ -> if Unix.read slow buf 0 64 > 0 then wait_reaped ()
        | _ -> wait_reaped ()
    in
    wait_reaped ();
    (* the worker it held is back: requests still answer, and the reap is
       counted *)
    (match request c P.Ping with
    | P.Pong -> ()
    | r -> Alcotest.failf "ping after reap: %s" (P.render_response r));
    match request c P.Stats with
    | P.Stats_reply s -> Alcotest.(check bool) "reap counted" true (s.P.reaped >= 1)
    | r -> Alcotest.failf "stats: %s" (P.render_response r)

let test_overload_shed_and_retry () =
  with_server ~workers:1 ~max_queue:1 @@ fun address _ ->
  (* one worker, queue of one: c1 pins the worker, c2 fills the queue *)
  let c1 = connect address in
  (match request c1 P.Ping with
  | P.Pong -> ()
  | r -> Alcotest.failf "ping: %s" (P.render_response r));
  let c2 = connect address in
  ignore (Unix.select [] [] [] 0.3);
  (* the next connection is shed with the typed retry-after response *)
  let c3 = connect address in
  (match Client.request c3 P.Ping with
  | Ok (P.Overloaded { retry_after_s }) ->
    Alcotest.(check bool) "positive retry-after" true (retry_after_s > 0.)
  | Ok r -> Alcotest.failf "expected overloaded: %s" (P.render_response r)
  | Error m -> Alcotest.failf "shed connection: %s" m);
  Client.close c3;
  (* a retrying client parked behind the overload lands once capacity
     frees, and reports how it got there *)
  let retry =
    Domain.spawn (fun () ->
        Client.request_retry ~max_attempts:60 ~base_delay_s:0.05 ~deadline_s:20. address
          P.Ping)
  in
  ignore (Unix.select [] [] [] 0.5);
  Client.close c1;
  Client.close c2;
  (match Domain.join retry with
  | Ok (P.Pong, rs) ->
    Alcotest.(check bool) "took more than one attempt" true (rs.Client.attempts > 1);
    Alcotest.(check bool) "overloaded retries recorded" true (rs.Client.overloaded_retries >= 1)
  | Ok (r, _) -> Alcotest.failf "expected pong: %s" (P.render_response r)
  | Error m -> Alcotest.failf "retry never landed: %s" m);
  (* counters reconcile: the daemon shed at least the two sheds we observed *)
  let c = connect address in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match request c P.Stats with
  | P.Stats_reply s -> Alcotest.(check bool) "shed counted" true (s.P.shed >= 2)
  | r -> Alcotest.failf "stats: %s" (P.render_response r)

(* the in-process chaos drill: the same query trace against a clean oracle
   server and against fault-injected servers (several seeds) must produce
   byte-identical result payloads — faults may change origins (a failed
   store forces a recompute) but never a single result byte *)
let test_chaos_responses_byte_identical () =
  let module F = Memrel_service.Faultio in
  let trace_queries =
    [
      q_verify;
      P.Enumerate { test = "inc"; family = Model.Sequential_consistency; window = 8; por = true };
      P.Axiom { test = "mp"; family = Model.Weak_ordering; window = 8; engine = P.Generate };
      q_verify (* a cache-hit path *);
    ]
  in
  let result_bytes address =
    List.map
      (fun q ->
        let c = connect address in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        match request c (P.Query (q, P.no_limits)) with
        | P.Result { result; _ } -> P.encode_result result
        | r -> Alcotest.failf "chaos query: %s" (P.render_response r))
      trace_queries
  in
  let oracle = with_server (fun address _ -> result_bytes address) in
  for seed = 1 to 5 do
    let chaotic =
      with_server (fun address _ ->
          let p = F.plan_rate ~seed 0.3 in
          F.with_plan p (fun () -> result_bytes address))
    in
    if chaotic <> oracle then
      Alcotest.failf "seed %d: a faulted server answered different bytes" seed
  done

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("all query kinds over the wire", test_all_query_kinds);
      ("origins: computed, memory, disk across restart", test_cache_origins_and_restart);
      ("batch dedups and preserves order", test_batch_dedup_and_order);
      ("batch mixes results and errors", test_batch_mixed_errors);
      ("budget partial over the wire", test_budget_partial_over_the_wire);
      ("server caps apply to limitless requests", test_server_caps_apply);
      ("malformed frame answered with bad-request", test_malformed_frame_answered);
      ("stats and clean shutdown", test_stats_and_shutdown);
      ("pool drains before join", test_pool_drains_and_joins);
      ("pool survives handler exceptions", test_pool_survives_handler_exceptions);
      ("refuses a live socket", test_refuses_live_socket);
      ("slow client reaped, others served", test_slow_client_reaped);
      ("overload shed + retry reconciliation", test_overload_shed_and_retry);
      ("chaos seeds: byte-identical results", test_chaos_responses_byte_identical);
    ]
