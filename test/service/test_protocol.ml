module P = Memrel_service.Protocol
module Model = Memrel_memmodel.Model

let sample_queries =
  [
    P.Verify { test = "sb"; family = Model.Total_store_order; window = 8 };
    P.Enumerate { test = "inc"; family = Model.Sequential_consistency; window = 4; por = true };
    P.Enumerate { test = "mp"; family = Model.Weak_ordering; window = 12; por = false };
    P.Axiom
      { test = "lb"; family = Model.Partial_store_order; window = 8; engine = P.Generate };
    P.Axiom { test = "iriw"; family = Model.Weak_ordering; window = 6; engine = P.Solver };
    P.Estimate
      {
        kind = P.Settling { gamma = 2; p = 0.25; m = 64 };
        family = Model.Total_store_order;
        seed = 42;
        trials = 10_000;
        target_width = None;
      };
    P.Estimate
      {
        kind = P.Shift { gammas = [| 3; 2; 5 |] };
        family = Model.Sequential_consistency;
        seed = 1;
        trials = 100_000;
        target_width = Some 0.01;
      };
    P.Estimate
      {
        kind = P.Joint { n = 3 };
        family = Model.Weak_ordering;
        seed = 7;
        trials = 50_000;
        target_width = None;
      };
  ]

let sample_limits =
  [ P.no_limits; { P.deadline_s = Some 1.5; max_work = Some 1000; max_mem_mb = Some 256 } ]

let sample_results =
  [
    {
      P.payload =
        P.Verdict
          { observed_relaxed = true; expected_relaxed = true; agrees = true; outcomes = 4;
            terminals = 7 };
      partial = None;
    };
    {
      P.payload =
        P.Outcomes
          {
            entries = [ ([ ("0:r0", 0); ("1:r1", 1) ], 3); ([ ("x", 2) ], 1); ([], 5) ];
            terminals = 9;
            states = 123;
          };
      partial = Some { P.cause = "deadline"; work_done = 17; elapsed_s = 0.25 };
    };
    {
      P.payload = P.Axiom_outcomes { entries = [ ([ ("x", 1) ], 2) ]; accepted = 2 };
      partial = None;
    };
    {
      P.payload =
        P.Estimated { point = 0.118; lo = 0.11; hi = 0.127; trials = 10_000; target_met = true };
      partial = None;
    };
  ]

let sample_responses =
  List.map (fun result -> P.Result { result; origin = P.Computed }) sample_results
  @ [
      P.Results
        (List.map (fun result -> P.Result { result; origin = P.Disk_hit }) sample_results
        @ [ P.Error { code = P.Unknown_test; message = "no such test" } ]);
      P.Error { code = P.Bad_request; message = "bad" };
      P.Overloaded { retry_after_s = 0.25 };
      P.Stats_reply
        {
          cache =
            { entries = 3; memory_hits = 2; disk_hits = 1; misses = 4; stores = 3;
              disk_errors = 2; repairs = 1 };
          requests = 11;
          uptime_s = 2.5;
          workers = 2;
          shed = 5;
          handler_exceptions = 1;
          respawns = 1;
          reaped = 3;
        };
      P.Pong;
      P.Bye;
    ]

let test_request_round_trip () =
  let requests =
    List.concat_map (fun q -> List.map (fun l -> P.Query (q, l)) sample_limits) sample_queries
    @ [
        P.Batch (List.map (fun q -> (q, P.no_limits)) sample_queries);
        P.Batch [];
        P.Stats;
        P.Ping;
        P.Shutdown;
      ]
  in
  List.iter
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    requests

let test_result_round_trip () =
  List.iter
    (fun r ->
      match P.decode_result (P.encode_result r) with
      | Ok r' -> Alcotest.(check bool) "result round-trips" true (r = r')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    sample_results

let test_response_round_trip () =
  List.iter
    (fun r ->
      match P.decode_response (P.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    sample_responses

let test_result_response_splice () =
  (* the fast path must agree byte-for-byte with the re-encoding path *)
  List.iter
    (fun result ->
      List.iter
        (fun origin ->
          Alcotest.(check string) "splice = encode"
            (P.encode_response (P.Result { result; origin }))
            (P.encode_result_response ~origin (P.encode_result result)))
        [ P.Computed; P.Memory_hit; P.Disk_hit ])
    sample_results

let test_items_response_splice () =
  let results = sample_results in
  let expected =
    P.encode_response
      (P.Results
         (List.map (fun result -> P.Result { result; origin = P.Memory_hit }) results
         @ [ P.Error { code = P.Server_error; message = "boom" } ]))
  in
  let spliced =
    P.encode_items_response
      (List.map
         (fun r -> P.encode_result_item ~origin:P.Memory_hit (P.encode_result r))
         results
      @ [ P.encode_response_item (P.Error { code = P.Server_error; message = "boom" }) ])
  in
  Alcotest.(check string) "batch splice = encode" expected spliced

let test_decode_rejects_garbage () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_error (P.decode_request ""));
  Alcotest.(check bool) "bad version" true (is_error (P.decode_request "\xff\x00"));
  Alcotest.(check bool) "bad tag" true (is_error (P.decode_request "\x01\xee"));
  Alcotest.(check bool) "truncated" true
    (is_error
       (let full = P.encode_request (P.Query (List.hd sample_queries, P.no_limits)) in
        P.decode_request (String.sub full 0 (String.length full - 3))));
  Alcotest.(check bool) "trailing bytes" true
    (is_error (P.decode_request (P.encode_request P.Ping ^ "x")));
  Alcotest.(check bool) "response garbage" true (is_error (P.decode_response "\x01\x63"))

let test_parse_query_round_trip () =
  List.iter
    (fun q ->
      match P.parse_query (P.query_to_string q) with
      | Ok q' -> Alcotest.(check bool) (P.query_to_string q ^ " reparses") true (q = q')
      | Error m -> Alcotest.failf "%s: %s" (P.query_to_string q) m)
    sample_queries

let test_parse_query_defaults () =
  (match P.parse_query "verify sb tso" with
   | Ok (P.Verify { test = "sb"; family = Model.Total_store_order; window = 8 }) -> ()
   | Ok q -> Alcotest.failf "unexpected parse: %s" (P.query_to_string q)
   | Error m -> Alcotest.fail m);
  (match P.parse_query "enumerate inc4 sc por window=6" with
   | Ok (P.Enumerate { test = "inc4"; window = 6; por = true; _ }) -> ()
   | Ok q -> Alcotest.failf "unexpected parse: %s" (P.query_to_string q)
   | Error m -> Alcotest.fail m);
  (match P.parse_query "axiom mp wo engine=solver" with
   | Ok (P.Axiom { engine = P.Solver; window = 8; _ }) -> ()
   | Ok q -> Alcotest.failf "unexpected parse: %s" (P.query_to_string q)
   | Error m -> Alcotest.fail m);
  (match P.parse_query "estimate settling tso gamma=2" with
   | Ok
       (P.Estimate
          { kind = P.Settling { gamma = 2; p = 0.5; m = 64 }; seed = 1; trials = 100_000;
            target_width = None; _ }) -> ()
   | Ok q -> Alcotest.failf "unexpected parse: %s" (P.query_to_string q)
   | Error m -> Alcotest.fail m);
  match P.parse_query "estimate joint sc n=3 width=0.02 trials=5000" with
  | Ok (P.Estimate { kind = P.Joint { n = 3 }; trials = 5000; target_width = Some w; _ }) ->
    Alcotest.(check (float 1e-12)) "width" 0.02 w
  | Ok q -> Alcotest.failf "unexpected parse: %s" (P.query_to_string q)
  | Error m -> Alcotest.fail m

let test_parse_query_rejects () =
  let rejects s =
    match P.parse_query s with
    | Error _ -> ()
    | Ok q -> Alcotest.failf "%S parsed to %s" s (P.query_to_string q)
  in
  List.iter rejects
    [
      "";
      "frobnicate sb tso";
      "verify sb";
      "verify sb notamodel";
      "verify sb tso window=abc";
      "verify sb tso bogus=1";
      "estimate warp sc";
      "estimate shift";
      "estimate shift gammas=1,x";
      "estimate joint sc n=2 width=nope";
    ]

let test_address_round_trip () =
  List.iter
    (fun s ->
      match P.address_of_string s with
      | Ok a -> Alcotest.(check string) "address round-trips" s (P.address_to_string a)
      | Error m -> Alcotest.failf "%S: %s" s m)
    [ "/tmp/memrel.sock"; "relative.sock"; "tcp:127.0.0.1:7654"; "tcp:localhost:80" ];
  (match P.address_of_string "tcp::7654" with
   | Ok (P.Tcp ("127.0.0.1", 7654)) -> ()
   | _ -> Alcotest.fail "empty host should default to 127.0.0.1");
  match P.address_of_string "tcp:host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad port accepted"

let test_framing_round_trip () =
  (* a socketpair exercises the real read/write path, short reads included *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Unix.close b)
    (fun () ->
      let payloads = [ ""; "x"; String.make 70_000 'q' ] in
      List.iter (fun p -> P.write_frame a p) payloads;
      List.iter
        (fun expected ->
          match P.read_frame b with
          | Ok (Some got) -> Alcotest.(check string) "frame round-trips" expected got
          | Ok None -> Alcotest.fail "unexpected EOF"
          | Error m -> Alcotest.fail m)
        payloads;
      Unix.close a;
      match P.read_frame b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "expected EOF"
      | Error m -> Alcotest.failf "EOF should be clean: %s" m)

let test_framing_rejects_bad_magic () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> (try Unix.close a with Unix.Unix_error _ -> ()); Unix.close b)
    (fun () ->
      ignore (Unix.write_substring a "JUNK\x00\x00\x00\x01z" 0 9);
      Unix.close a;
      match P.read_frame b with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad magic accepted")

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("request round-trip", test_request_round_trip);
      ("result round-trip", test_result_round_trip);
      ("response round-trip", test_response_round_trip);
      ("result splice byte-identical", test_result_response_splice);
      ("batch splice byte-identical", test_items_response_splice);
      ("garbage rejected", test_decode_rejects_garbage);
      ("parse_query round-trip", test_parse_query_round_trip);
      ("parse_query defaults", test_parse_query_defaults);
      ("parse_query rejects", test_parse_query_rejects);
      ("address round-trip", test_address_round_trip);
      ("framing round-trip", test_framing_round_trip);
      ("framing rejects bad magic", test_framing_rejects_bad_magic);
    ]
