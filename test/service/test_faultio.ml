(* The fault plane itself: replayability, each fault's contract (absorbed,
   typed, CRC-detected, or crash debris), and the cache's repair path
   under injected faults. *)

module F = Memrel_service.Faultio
module Snapshot = Memrel_prob.Snapshot
module Cache = Memrel_service.Cache
module P = Memrel_service.Protocol

let temp_dir () =
  let d = Filename.temp_file "memrel_fault" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

(* a fixed operation sequence through the facade; what the replayability
   tests compare traces over *)
let run_sequence dir =
  for i = 1 to 20 do
    let path = Filename.concat dir (Printf.sprintf "f%d" i) in
    (try F.write_file ~path (String.make (100 * i) 'a') with F.Io _ -> ());
    (try ignore (F.read_file path) with F.Io _ -> ());
    if i mod 3 = 0 then
      try F.rename ~src:path ~dst:(path ^ ".moved") with F.Io _ -> ()
  done

let test_no_plan_is_plain_io () =
  with_dir @@ fun dir ->
  Alcotest.(check bool) "no plan installed" true (F.installed () = None);
  let path = Filename.concat dir "plain" in
  F.write_file ~path "hello";
  Alcotest.(check string) "write/read round-trip" "hello" (F.read_file path);
  F.rename ~src:path ~dst:(path ^ ".2");
  Alcotest.(check string) "rename moved the bytes" "hello" (F.read_file (path ^ ".2"));
  match F.read_file (Filename.concat dir "absent") with
  | _ -> Alcotest.fail "reading an absent file should raise Io"
  | exception F.Io _ -> ()

let test_same_seed_same_trace () =
  let trace_of seed =
    with_dir @@ fun dir ->
    let p = F.plan ~eintr:0.1 ~short:0.1 ~enospc:0.05 ~torn:0.05 ~seed () in
    F.with_plan p (fun () -> run_sequence dir);
    (* strip the temp-dir prefix so traces from different dirs compare *)
    List.map
      (fun (e : F.event) -> (e.op, e.site, Filename.basename e.path, e.fault))
      (F.trace p)
  in
  let t1 = trace_of 42 and t2 = trace_of 42 and t3 = trace_of 43 in
  Alcotest.(check bool) "seed 42 twice: identical traces" true (t1 = t2);
  Alcotest.(check bool) "some faults dealt" true (t1 <> []);
  Alcotest.(check bool) "different seed: different trace" true (t1 <> t3)

let test_transient_faults_absorbed () =
  with_dir @@ fun dir ->
  (* EINTR and short transfers on every class of operation: the retry
     loops must absorb them all without changing a single byte. Operation
     numbers count facade-level syscall attempts, so the write that gets
     EINTR on attempt 1 is dealt Short on its retry. *)
  let p =
    F.script
      [ (F.Write, 1, F.Eintr); (F.Write, 2, F.Short); (F.Read, 1, F.Short);
        (F.Read, 2, F.Eintr) ]
      ~seed:7
  in
  F.with_plan p (fun () ->
      let path = Filename.concat dir "t" in
      let payload = String.init 200_000 (fun i -> Char.chr (i land 0xff)) in
      F.write_file ~path payload;
      Alcotest.(check bool) "faulted write round-trips" true (F.read_file path = payload);
      F.write_file ~path:(Filename.concat dir "t2") "second";
      Alcotest.(check string) "second write fine" "second"
        (F.read_file (Filename.concat dir "t2")));
  let s = F.stats p in
  Alcotest.(check int) "eintr counted" 2 s.F.eintr;
  Alcotest.(check int) "short counted" 2 s.F.short;
  Alcotest.(check int) "no hard faults" 0 (s.F.enospc + s.F.torn + s.F.crashes)

let test_enospc_is_typed () =
  with_dir @@ fun dir ->
  let p = F.script [ (F.Write, 1, F.Enospc) ] ~seed:1 in
  F.with_plan p (fun () ->
      let path = Filename.concat dir "full" in
      match F.write_file ~path "doomed" with
      | () -> Alcotest.fail "write should fail with Io"
      | exception F.Io msg ->
        Alcotest.(check bool) "message names the failure" true
          (Astring.String.is_infix ~affix:"space" msg));
  (* and the snapshot layer turns it into its typed error, not an
     exception *)
  let p2 = F.script [ (F.Write, 1, F.Enospc) ] ~seed:1 in
  F.with_plan p2 (fun () ->
      match Snapshot.write ~file:(Filename.concat dir "s") ~tag:"t" "payload" with
      | Error (Snapshot.Io _) -> ()
      | Ok () -> Alcotest.fail "snapshot write should surface the Io error"
      | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e))

let test_torn_rename_caught_by_crc () =
  with_dir @@ fun dir ->
  let file = Filename.concat dir "snap" in
  let p = F.script [ (F.Rename, 1, F.Torn) ] ~seed:5 in
  F.with_plan p (fun () ->
      match Snapshot.write ~file ~tag:"t" (String.make 5000 'z') with
      | Ok () -> ()
      | Error e -> Alcotest.failf "torn write should not error: %s" (Snapshot.error_to_string e));
  (* the destination exists but fails validation — never decoded *)
  Alcotest.(check bool) "destination exists" true (Sys.file_exists file);
  (match Snapshot.read ~file ~tag:"t" with
  | Error (Snapshot.Crc_mismatch | Snapshot.Truncated | Snapshot.Not_a_snapshot) -> ()
  | Ok _ -> Alcotest.fail "a torn snapshot must not read back"
  | Error e -> Alcotest.failf "unexpected error: %s" (Snapshot.error_to_string e));
  (* a clean rewrite heals it *)
  (match Snapshot.write ~file ~tag:"t" "healed" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  match Snapshot.read ~file ~tag:"t" with
  | Ok v -> Alcotest.(check string) "healed" "healed" v
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_crash_leaves_recoverable_debris () =
  with_dir @@ fun dir ->
  let file = Filename.concat dir "snap" in
  (match Snapshot.write ~file ~tag:"t" "generation-1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  let p = F.script [ (F.Rename, 1, F.Crash) ] ~seed:3 in
  (match F.with_plan p (fun () -> Snapshot.write ~file ~tag:"t" "generation-2") with
  | _ -> Alcotest.fail "crash point should raise"
  | exception F.Crash_point _ -> ());
  (* the crash struck before the rename committed: the previous
     generation is intact — the tmp+rename contract *)
  (match Snapshot.read ~file ~tag:"t" with
  | Ok v -> Alcotest.(check string) "previous generation intact" "generation-1" v
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  (* recovery: a post-restart write supersedes any debris *)
  (match Snapshot.write ~file ~tag:"t" "generation-2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  match Snapshot.read ~file ~tag:"t" with
  | Ok v -> Alcotest.(check string) "recovered" "generation-2" v
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_pathological_eintr_bounded () =
  with_dir @@ fun dir ->
  (* an all-EINTR plan must end in a typed error, never a hang *)
  let p = F.plan ~eintr:1.0 ~seed:9 () in
  F.with_plan p (fun () ->
      match F.write_file ~path:(Filename.concat dir "x") "y" with
      | () -> Alcotest.fail "all-EINTR should exhaust the retry bound"
      | exception F.Io _ -> ())

let test_cache_repairs_torn_entry () =
  with_dir @@ fun dir ->
  let c = Cache.create ~shards:4 ~dir () in
  (* the store's commit rename is torn: memory serves fine, disk is bad *)
  let p = F.script [ (F.Rename, 1, F.Torn) ] ~seed:11 in
  F.with_plan p (fun () ->
      match Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Ok ("v", true)) with
      | Ok ("v", Cache.Computed) -> ()
      | _ -> Alcotest.fail "compute under torn store");
  Cache.clear_memory c;
  (* no plan now: the probe finds the torn entry, counts it, recomputes,
     and repairs the file in place *)
  let computes = ref 0 in
  (match
     Cache.find_or_compute c ~key:"k"
       ~compute:(fun () -> incr computes; Ok ("v", true))
   with
  | Ok ("v", Cache.Computed) -> ()
  | _ -> Alcotest.fail "recompute over corrupt entry");
  Alcotest.(check int) "recomputed once" 1 !computes;
  let s = Cache.stats c in
  Alcotest.(check bool) "disk error counted" true (s.P.disk_errors >= 1);
  Alcotest.(check int) "repair counted" 1 s.P.repairs;
  (* the repair stuck: a fresh cache over the dir serves from disk *)
  Cache.clear_memory c;
  match Cache.find_or_compute c ~key:"k" ~compute:(fun () -> Alcotest.fail "recomputed") with
  | Ok ("v", Cache.Disk_hit) -> ()
  | _ -> Alcotest.fail "repaired entry should disk-hit"

let test_fault_rate_sweep_never_corrupts () =
  (* the in-process chaos sweep: for many seeds, hammer one cache with a
     lossy plan; every returned value must be exact, and after clearing
     the plan every surviving disk entry must either read back exactly or
     be recomputed — corruption is detected, never served *)
  with_dir @@ fun dir ->
  for seed = 1 to 20 do
    let subdir = Filename.concat dir (Printf.sprintf "s%d" seed) in
    let c = Cache.create ~shards:4 ~dir:subdir () in
    let value k = Printf.sprintf "value-%s-%d" k seed in
    let p = F.plan_rate ~seed 0.3 in
    F.with_plan p (fun () ->
        for i = 1 to 15 do
          let key = Printf.sprintf "k%d" (i mod 5) in
          match Cache.find_or_compute c ~key ~compute:(fun () -> Ok (value key, true)) with
          | Ok (v, _) ->
            if v <> value key then
              Alcotest.failf "seed %d: wrong value served under faults" seed
          | Error (_ : string) -> ()
        done);
    (* post-chaos: the daemon-restart read path serves only exact values *)
    Cache.clear_memory c;
    for i = 0 to 4 do
      let key = Printf.sprintf "k%d" i in
      match Cache.find_or_compute c ~key ~compute:(fun () -> Ok (value key, true)) with
      | Ok (v, _) ->
        if v <> value key then Alcotest.failf "seed %d: corrupt entry served" seed
      | Error (_ : string) -> Alcotest.failf "seed %d: unexpected error" seed
    done
  done

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("no plan: plain IO", test_no_plan_is_plain_io);
      ("same seed, same trace", test_same_seed_same_trace);
      ("EINTR/short absorbed by retries", test_transient_faults_absorbed);
      ("ENOSPC is a typed error", test_enospc_is_typed);
      ("torn rename caught by CRC", test_torn_rename_caught_by_crc);
      ("crash leaves recoverable debris", test_crash_leaves_recoverable_debris);
      ("pathological EINTR bounded", test_pathological_eintr_bounded);
      ("cache repairs a torn entry", test_cache_repairs_torn_entry);
      ("20-seed chaos sweep never corrupts", test_fault_rate_sweep_never_corrupts);
    ]
