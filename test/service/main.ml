let () =
  Alcotest.run "memrel_service"
    [
      ("protocol", Test_protocol.suite);
      ("faultio", Test_faultio.suite);
      ("cache", Test_cache.suite);
      ("engine", Test_engine.suite);
      ("server", Test_server.suite);
    ]
