module S = Memrel_interleave.Scaling
module IA = Memrel_interleave.Analytic
module Q = Memrel_prob.Rational

let test_row_matches_exact_small_n () =
  for n = 2 to 8 do
    let r = S.row n in
    let log2 v = Float.log v /. Float.log 2.0 in
    Alcotest.(check (float 1e-6)) "SC" (log2 (Q.to_float (IA.pr_a_sc ~n))) r.log2_sc;
    Alcotest.(check (float 1e-6)) "WO" (log2 (Q.to_float (IA.pr_a_wo ~n))) r.log2_wo;
    Alcotest.(check (float 1e-6)) "TSO" (log2 (IA.pr_a_tso_independent_series ~n)) r.log2_tso
  done

let test_ordering_within_row () =
  List.iter
    (fun n ->
      let r = S.row n in
      Alcotest.(check bool) "SC safest" true (r.log2_sc > r.log2_tso);
      Alcotest.(check bool) "WO weakest" true (r.log2_tso > r.log2_wo);
      Alcotest.(check bool) "TSO brackets hold" true
        (r.log2_tso_lo <= r.log2_tso +. 1e-9 && r.log2_tso <= r.log2_tso_hi +. 1e-9))
    [ 2; 5; 10; 20; 40 ]

let test_table_shape () =
  let t = S.table ~n_max:10 () in
  Alcotest.(check int) "rows 2..10" 9 (List.length t);
  Alcotest.(check (list int)) "n sequence" (List.init 9 (fun i -> i + 2))
    (List.map (fun (r : S.row) -> r.n) t)

let test_normalized_exponents_converge () =
  (* Theorem 6.3's headline: all models share the n^2 (3/2 + o(1)) exponent;
     the per-model normalized exponents must approach each other *)
  let spread n =
    let r = S.row n in
    let norms =
      List.map
        (fun l -> S.normalized_exponent ~log2_pr:l ~n)
        [ r.log2_sc; r.log2_wo; r.log2_tso ]
    in
    List.fold_left Float.max neg_infinity norms -. List.fold_left Float.min infinity norms
  in
  let s5 = spread 5 and s20 = spread 20 and s80 = spread 80 in
  Alcotest.(check bool)
    (Printf.sprintf "spread shrinks: %.4f > %.4f > %.4f" s5 s20 s80)
    true
    (s5 > s20 && s20 > s80);
  Alcotest.(check bool) "tiny by n=80" true (s80 < 0.01)

let test_gap_grows_linearly () =
  (* the absolute advantage of SC (in bits) grows ~linearly: the per-n
     increments approach a constant *)
  let gap n = fst (S.gap_ratio_log2 (S.row n)) in
  let d1 = gap 21 -. gap 20 and d2 = gap 41 -. gap 40 in
  Alcotest.(check bool) "increments stabilize" true (Float.abs (d1 -. d2) < 0.02);
  Alcotest.(check bool) "gap grows" true (gap 40 > gap 20 && gap 20 > gap 10)

let test_gap_vanishes_relative_to_exponent () =
  let rel n =
    let r = S.row n in
    let g, _ = S.gap_ratio_log2 r in
    g /. -.r.log2_sc
  in
  Alcotest.(check bool)
    (Printf.sprintf "relative gap shrinks: %.4f > %.4f" (rel 5) (rel 50))
    true
    (rel 5 > rel 20 && rel 20 > rel 50);
  Alcotest.(check bool) "under 2 percent by n=50" true (rel 50 < 0.02)

let test_large_n_stability () =
  (* log-space path must stay finite far beyond float underflow *)
  let r = S.row 200 in
  Alcotest.(check bool) "finite" true
    (Float.is_finite r.log2_sc && Float.is_finite r.log2_wo && Float.is_finite r.log2_tso);
  Alcotest.(check bool) "huge exponent" true (r.log2_sc < -50_000.0)

let test_guard () =
  Alcotest.check_raises "n=1" (Invalid_argument "Scaling.row: n >= 2 required") (fun () ->
      ignore (S.row 1))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("rows match exact values", test_row_matches_exact_small_n);
      ("ordering within rows", test_ordering_within_row);
      ("table shape", test_table_shape);
      ("Theorem 6.3: normalized exponents converge", test_normalized_exponents_converge);
      ("gap grows linearly in bits", test_gap_grows_linearly);
      ("gap vanishes relative to exponent", test_gap_vanishes_relative_to_exponent);
      ("large n stability", test_large_n_stability);
      ("guards", test_guard);
    ]
