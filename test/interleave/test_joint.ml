module J = Memrel_interleave.Joint
module IA = Memrel_interleave.Analytic
module Model = Memrel_memmodel.Model
module Rng = Memrel_prob.Rng
module Q = Memrel_prob.Rational

let in_ci (e : J.estimate) v slack = e.ci.lo -. slack <= v && v <= e.ci.hi +. slack

let test_sc_n2 () =
  let rng = Rng.create 1 in
  let e = J.estimate ~trials:150_000 Model.sc ~n:2 rng in
  Alcotest.(check bool)
    (Printf.sprintf "1/6 in [%f, %f]" e.ci.lo e.ci.hi)
    true
    (in_ci e (1.0 /. 6.0) 0.002)

let test_wo_n2 () =
  let rng = Rng.create 2 in
  let e = J.estimate ~trials:150_000 (Model.wo ()) ~n:2 rng in
  Alcotest.(check bool) "7/54" true (in_ci e (7.0 /. 54.0) 0.002)

let test_tso_n2 () =
  let rng = Rng.create 3 in
  let e = J.estimate ~trials:150_000 (Model.tso ()) ~n:2 rng in
  let lo, hi = IA.pr_a_n2_tso_bounds in
  Alcotest.(check bool) "within paper bracket (plus noise)" true
    (e.pr_no_bug > Q.to_float lo -. 0.005 && e.pr_no_bug < Q.to_float hi +. 0.005);
  Alcotest.(check bool) "matches series" true (in_ci e (IA.pr_a_n2_tso_series ()) 0.002)

let test_wo_n3_exact () =
  let rng = Rng.create 4 in
  let e = J.estimate ~trials:400_000 (Model.wo ()) ~n:3 rng in
  Alcotest.(check bool) "exact n=3 in ci" true (in_ci e (Q.to_float (IA.pr_a_wo ~n:3)) 0.0005)

let test_strict_convention_sc () =
  (* the literal Appendix A.3 event: SC windows are two adjacent slots;
     Pr[A] = 1/3 at n = 2 (computed by hand) *)
  let rng = Rng.create 5 in
  let e = J.estimate ~convention:`Strict ~trials:150_000 Model.sc ~n:2 rng in
  Alcotest.(check bool) "1/3" true (in_ci e (1.0 /. 3.0) 0.003)

let test_strict_weaker_than_paper () =
  (* strict overlap is a smaller event, so Pr[A] is larger *)
  let rng = Rng.create 6 in
  List.iter
    (fun model ->
      let p = (J.estimate ~convention:`Paper ~trials:60_000 model ~n:2 rng).pr_no_bug in
      let s = (J.estimate ~convention:`Strict ~trials:60_000 model ~n:2 rng).pr_no_bug in
      Alcotest.(check bool) (Model.name model ^ ": strict >= paper") true (s > p))
    [ Model.sc; Model.tso (); Model.wo () ]

let test_more_threads_more_bugs () =
  let rng = Rng.create 7 in
  let pr n = (J.estimate ~trials:100_000 (Model.tso ()) ~n rng).J.pr_no_bug in
  let p2 = pr 2 and p3 = pr 3 and p4 = pr 4 in
  Alcotest.(check bool) (Printf.sprintf "%.4f > %.4f > %.4f" p2 p3 p4) true (p2 > p3 && p3 > p4)

let test_semi_analytic_sc_exact () =
  (* SC windows are deterministic, so the semi-analytic estimator has zero
     variance and must return the exact value whatever the trial count *)
  let rng = Rng.create 8 in
  for n = 2 to 6 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "n=%d" n)
      (Q.to_float (IA.pr_a_sc ~n))
      (J.semi_analytic ~trials:10 Model.sc ~n rng)
  done

let test_semi_analytic_wo () =
  let rng = Rng.create 9 in
  let v = J.semi_analytic ~trials:150_000 (Model.wo ()) ~n:3 rng in
  let exact = Q.to_float (IA.pr_a_wo ~n:3) in
  Alcotest.(check bool)
    (Printf.sprintf "%.6f vs exact %.6f" v exact)
    true
    (Float.abs (v -. exact) /. exact < 0.05)

let test_semi_analytic_tso_correlation () =
  (* shared-program correlation raises Pr[A] above the independence
     approximation for TSO *)
  let rng = Rng.create 10 in
  let corr = J.semi_analytic ~trials:200_000 (Model.tso ()) ~n:4 rng in
  let indep = IA.pr_a_tso_independent_series ~n:4 in
  Alcotest.(check bool)
    (Printf.sprintf "correlated %.3e > independent %.3e" corr indep)
    true (corr > indep)

let test_sample_determinism () =
  let run () =
    let rng = Rng.create 77 in
    List.init 50 (fun _ -> J.sample (Model.tso ()) ~n:3 rng)
  in
  Alcotest.(check (list bool)) "same seed same outcomes" (run ()) (run ())

let test_jobs_invariance () =
  (* Par contract at the joined-model level: estimate and the float-summing
     semi_analytic are bit-identical at jobs:1 and jobs:4 *)
  let est jobs = J.estimate ~jobs ~trials:15_000 (Model.tso ()) ~n:2 (Rng.create 301) in
  let e1 = est 1 and e4 = est 4 in
  Alcotest.(check (float 0.0)) "pr_no_bug identical" e1.pr_no_bug e4.pr_no_bug;
  Alcotest.(check (float 0.0)) "ci.lo identical" e1.ci.lo e4.ci.lo;
  let semi jobs = J.semi_analytic ~jobs ~trials:15_000 (Model.wo ()) ~n:3 (Rng.create 303) in
  Alcotest.(check bool) "semi_analytic bitwise" true
    (Int64.equal (Int64.bits_of_float (semi 1)) (Int64.bits_of_float (semi 4)))

let test_guards () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n=1" (Invalid_argument "Joint: n >= 2 threads required") (fun () ->
      ignore (J.sample Model.sc ~n:1 rng));
  Alcotest.check_raises "trials=0" (Invalid_argument "Joint.estimate: trials must be positive")
    (fun () -> ignore (J.estimate ~trials:0 Model.sc ~n:2 rng))

(* -- streaming path vs reference closures -------------------------------- *)

module Par = Memrel_prob.Par

let test_streaming_equals_reference () =
  (* the fused per-trial worker (scratch settle + in-place shift check)
     replays [sample]'s draw sequence exactly, under both conventions *)
  List.iter
    (fun convention ->
      let s =
        J.estimate ~convention ~jobs:1 ~trials:20_000 (Model.tso ()) ~n:3 (Rng.create 501)
      in
      let r =
        J.Reference.estimate ~convention ~jobs:1 ~trials:20_000 (Model.tso ()) ~n:3
          (Rng.create 501)
      in
      Alcotest.(check bool) "estimate identical" true (s = r))
    [ `Paper; `Strict ]

let test_semi_analytic_equals_reference () =
  let s = J.semi_analytic ~jobs:1 ~trials:20_000 (Model.wo ()) ~n:4 (Rng.create 503) in
  let r = J.Reference.semi_analytic ~jobs:1 ~trials:20_000 (Model.wo ()) ~n:4 (Rng.create 503) in
  Alcotest.(check bool) "bitwise identical" true
    (Int64.equal (Int64.bits_of_float s) (Int64.bits_of_float r))

let test_estimate_amortized_alloc () =
  (* end-to-end allocation guard: with per-worker scratch the whole
     estimator amortizes to (well) under two minor words per trial — the
     leftovers are per-chunk engine bookkeeping, not per-trial garbage *)
  let run () = ignore (J.estimate ~jobs:1 ~trials:30_000 (Model.tso ()) ~n:3 (Rng.create 505)) in
  run ();
  let before = Gc.minor_words () in
  run ();
  let words = (Gc.minor_words () -. before) /. 30_000.0 in
  Alcotest.(check bool) (Printf.sprintf "%.3f words/trial < 2.0" words) true (words < 2.0)

let test_adaptive () =
  let run jobs =
    J.estimate_adaptive ~jobs ~target_width:0.02 ~max_trials:1_000_000 Model.sc ~n:2
      (Rng.create 507)
  in
  let s1 = run 1 in
  Alcotest.(check bool) "target met" true s1.Par.target_met;
  Alcotest.(check bool) "stopped early" true (s1.Par.trials_done < 1_000_000);
  let e = s1.Par.value in
  Alcotest.(check bool)
    (Printf.sprintf "width %f <= 0.02" (e.J.ci.hi -. e.J.ci.lo))
    true
    (e.J.ci.hi -. e.J.ci.lo <= 0.02);
  Alcotest.(check bool) "1/6 within the interval" true
    (e.J.ci.lo <= 1.0 /. 6.0 && 1.0 /. 6.0 <= e.J.ci.hi);
  let s4 = run 4 in
  Alcotest.(check int) "same stopping point" s1.Par.trials_done s4.Par.trials_done;
  Alcotest.(check bool) "same point bitwise" true
    (Int64.equal
       (Int64.bits_of_float s1.Par.value.J.pr_no_bug)
       (Int64.bits_of_float s4.Par.value.J.pr_no_bug))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("SC n=2 matches 1/6", test_sc_n2);
      ("WO n=2 matches 7/54", test_wo_n2);
      ("TSO n=2 matches bracket and series", test_tso_n2);
      ("WO n=3 exact", test_wo_n3_exact);
      ("strict convention: SC gives 1/3", test_strict_convention_sc);
      ("strict is weaker event", test_strict_weaker_than_paper);
      ("more threads more bugs", test_more_threads_more_bugs);
      ("semi-analytic exact for SC", test_semi_analytic_sc_exact);
      ("semi-analytic WO", test_semi_analytic_wo);
      ("semi-analytic TSO correlation positive", test_semi_analytic_tso_correlation);
      ("deterministic sampling", test_sample_determinism);
      ("jobs:1 = jobs:4 bit-identical", test_jobs_invariance);
      ("guards", test_guards);
      ("streaming = Reference (bitwise, both conventions)", test_streaming_equals_reference);
      ("semi-analytic streaming = Reference (bitwise)", test_semi_analytic_equals_reference);
      ("estimate amortized allocation bound", test_estimate_amortized_alloc);
      ("adaptive reaches width, jobs-invariant", test_adaptive);
    ]
