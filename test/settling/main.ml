let () =
  Alcotest.run "memrel_settling"
    [
      ("program", Test_program.suite);
      ("settle", Test_settle.suite);
      ("analytic", Test_analytic.suite);
      ("analytic_general", Test_analytic_general.suite);
      ("joint_dp", Test_joint_dp.suite);
      ("joint_dp_q", Test_joint_dp_q.suite);
      ("verified", Test_verified.suite);
      ("exact_dp", Test_exact_dp.suite);
      ("exact_dp_q", Test_exact_dp_q.suite);
      ("window_mc", Test_window_mc.suite);
    ]
