(* Joint_dp_q: the exact rational port of the coupled bottom-run chains.
   Pins the exact values against the float Joint_dp (which is itself pinned
   to the paper's regime), checks the fast rational instance against the
   Reference-instantiated functor twin, and exercises the exact mass
   identities that only hold with zero rounding. *)

module JQ = Memrel_settling.Joint_dp_q
module J = Memrel_settling.Joint_dp
module Model = Memrel_memmodel.Model
module Q = Memrel_prob.Rational
module QRef = Memrel_prob.Rational.Reference
module JRef = JQ.Make (QRef)

let check_float = Alcotest.(check (float 1e-12))

let test_agrees_with_float_dp () =
  (* the float DP performs the same truncated recursion in binary64; on
     these sizes its rounding error is far below 1e-12, so the exact value
     converted to float must land on top of it *)
  let cases =
    [
      ("tso m=16 n=3", Model.tso (), 16, 3, 0.0094618914132670612);
      ("tso m=24 n=2", Model.tso (), 24, 2, 0.20147001770435172);
      ("pso m=16 n=3", Model.pso (), 16, 3, 0.011794661037690023);
    ]
  in
  List.iter
    (fun (name, model, m, n, pinned) ->
      let float_dp = J.expect_product model ~m ~n in
      check_float (name ^ " float pin") pinned float_dp;
      let exact = JQ.expect_product_model model ~m ~n in
      check_float (name ^ " exact vs float") float_dp (Q.to_float exact))
    cases

let test_fast_equals_reference () =
  let fams = [ Model.Total_store_order; Model.Partial_store_order ] in
  List.iter
    (fun family ->
      let fast = JQ.expect_product ~b_max:6 ~s:Q.half family ~m:8 ~n:3 in
      let reference = JRef.expect_product ~b_max:6 ~s:QRef.half family ~m:8 ~n:3 in
      Alcotest.(check string)
        (Model.family_name family ^ " fast = reference")
        (QRef.to_string reference) (Q.to_string fast);
      let fast_pmf = JQ.bottom_run_pmf ~b_max:6 ~s:Q.half family ~m:8 in
      let ref_pmf = JRef.bottom_run_pmf ~b_max:6 ~s:QRef.half family ~m:8 in
      Alcotest.(check (array string))
        (Model.family_name family ^ " pmf fast = reference")
        (Array.map QRef.to_string ref_pmf)
        (Array.map Q.to_string fast_pmf))
    fams

let test_sc_closed_form () =
  (* SC windows are deterministic (Gamma = 2 per thread), so the product
     is 2^(-2 sum i) = 2^(-(n-1)n); also cross-check the float DP *)
  List.iter
    (fun n ->
      let expected = Q.pow2 (-(n - 1) * n) in
      let exact = JQ.expect_product ~s:Q.half Model.Sequential_consistency ~m:12 ~n in
      Alcotest.(check string)
        (Printf.sprintf "sc n=%d" n)
        (Q.to_string expected) (Q.to_string exact);
      check_float
        (Printf.sprintf "sc n=%d vs float" n)
        (J.expect_product Model.sc ~m:12 ~n)
        (Q.to_float exact))
    [ 2; 3; 4 ]

let test_pmf_mass_exactly_one () =
  (* truncation clamps mass at b_max rather than dropping it, so the exact
     pmf sums to exactly 1 — an identity floats cannot express *)
  List.iter
    (fun (family, m, b_max) ->
      let pmf = JQ.bottom_run_pmf ~b_max ~s:(Q.of_ints 1 3) family ~m in
      let total = Array.fold_left Q.add Q.zero pmf in
      Alcotest.(check string)
        (Printf.sprintf "%s m=%d mass" (Model.family_name family) m)
        "1" (Q.to_string total))
    [
      (Model.Total_store_order, 10, 6);
      (Model.Total_store_order, 7, 3);
      (Model.Partial_store_order, 10, 6);
    ]

let test_monotone_in_m () =
  (* E[2^(-Gamma_1)] shrinks as the prefix grows under TSO: more prefix
     instructions pile more STs into the bottom run, stretching the window.
     The exact sequence must decrease monotonically towards the m -> infty
     value (~0.2014700..., pinned at m = 24 above). *)
  let v m = JQ.expect_product ~s:Q.half Model.Total_store_order ~m ~n:2 in
  let prev = ref (v 2) in
  for m = 3 to 12 do
    let cur = v m in
    if Q.compare cur !prev >= 0 then
      Alcotest.fail (Printf.sprintf "not strictly decreasing at m=%d" m);
    prev := cur
  done;
  (* still above the limit: truncation only ever removes probability mass
     from long windows *)
  Alcotest.(check bool) "bounded below by the m=24 value" true
    (Q.compare !prev (JQ.expect_product ~s:Q.half Model.Total_store_order ~m:24 ~n:2) > 0)

let test_validation () =
  Alcotest.check_raises "p out of range" (Invalid_argument "Joint_dp_q: p must be in (0,1)")
    (fun () ->
      ignore (JQ.expect_product ~p:Q.one ~s:Q.half Model.Total_store_order ~m:4 ~n:2));
  Alcotest.check_raises "s out of range" (Invalid_argument "Joint_dp_q: s must be in (0,1)")
    (fun () -> ignore (JQ.expect_product ~s:Q.zero Model.Total_store_order ~m:4 ~n:2));
  Alcotest.check_raises "n too large"
    (Invalid_argument "Joint_dp_q.expect_product: n must be in [2, max_replicas + 1]")
    (fun () ->
      ignore (JQ.expect_product ~s:Q.half Model.Total_store_order ~m:4 ~n:(JQ.max_replicas + 2)));
  Alcotest.check_raises "wo rejected"
    (Invalid_argument "Joint_dp_q: only SC/TSO/PSO families are supported") (fun () ->
      ignore (JQ.expect_product ~s:Q.half Model.Weak_ordering ~m:4 ~n:2))

let suite =
  [
    Alcotest.test_case "agrees with float joint_dp" `Quick test_agrees_with_float_dp;
    Alcotest.test_case "fast = reference instance" `Quick test_fast_equals_reference;
    Alcotest.test_case "sc closed form" `Quick test_sc_closed_form;
    Alcotest.test_case "pmf mass exactly 1" `Quick test_pmf_mass_exactly_one;
    Alcotest.test_case "monotone in m" `Quick test_monotone_in_m;
    Alcotest.test_case "validation errors" `Quick test_validation;
  ]
