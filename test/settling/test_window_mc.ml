module Mc = Memrel_settling.Mc
module A = Memrel_settling.Analytic
module W = Memrel_settling.Window
module Settle = Memrel_settling.Settle
module Program = Memrel_settling.Program
module Model = Memrel_memmodel.Model
module Op = Memrel_memmodel.Op
module Rng = Memrel_prob.Rng
module Q = Memrel_prob.Rational

let test_window_gamma_manual () =
  (* identity permutation: adjacent critical pair, gamma = 0 *)
  let prog = Program.of_kinds [ Op.ST; Op.ST; Op.LD ] in
  let pi = Settle.run Model.sc (Rng.create 1) prog in
  Alcotest.(check int) "gamma" 0 (W.gamma prog pi);
  Alcotest.(check int) "length" 2 (W.length prog pi);
  Alcotest.(check (pair int int)) "bounds" (3, 4) (W.bounds prog pi)

let test_window_grows_under_tso () =
  (* a block of STs directly above the critical load can host growth *)
  let prog = Program.of_kinds [ Op.ST; Op.ST; Op.ST ] in
  let rng = Rng.create 5 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 2000 do
    let pi = Settle.run (Model.tso ()) rng prog in
    Hashtbl.replace seen (W.gamma prog pi) true
  done;
  (* with three STs above, gammas 0..3 are all reachable *)
  for g = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "gamma=%d reachable" g) true (Hashtbl.mem seen g)
  done

let test_estimate_sc () =
  let rng = Rng.create 7 in
  let e = Mc.estimate ~trials:2000 Model.sc rng in
  Alcotest.(check (float 0.0)) "all mass at 0" 1.0 (List.assoc 0 e.gamma_pmf);
  Alcotest.(check (float 0.0)) "mean gamma 0" 0.0 e.mean_gamma;
  Alcotest.(check int) "trials recorded" 2000 e.trials

let test_estimate_wo_matches_theorem () =
  let rng = Rng.create 11 in
  let e = Mc.estimate ~trials:100_000 (Model.wo ()) rng in
  for g = 0 to 4 do
    let expected = Q.to_float (A.b_wo g) in
    let got = try List.assoc g e.gamma_pmf with Not_found -> 0.0 in
    if Float.abs (got -. expected) > 0.01 then
      Alcotest.fail (Printf.sprintf "WO gamma=%d: %f vs %f" g got expected)
  done

let test_estimate_tso_matches_series () =
  let rng = Rng.create 13 in
  let e = Mc.estimate ~trials:100_000 (Model.tso ()) rng in
  for g = 0 to 4 do
    let expected = A.b_tso_series g in
    let got = try List.assoc g e.gamma_pmf with Not_found -> 0.0 in
    if Float.abs (got -. expected) > 0.01 then
      Alcotest.fail (Printf.sprintf "TSO gamma=%d: %f vs %f" g got expected)
  done

let test_probability_b_ci () =
  let rng = Rng.create 17 in
  let point, ci = Mc.probability_b ~trials:50_000 ~gamma:0 (Model.wo ()) rng in
  Alcotest.(check bool) "point in ci" true (ci.lo <= point && point <= ci.hi);
  Alcotest.(check bool) "2/3 in ci" true (ci.lo <= 2.0 /. 3.0 && 2.0 /. 3.0 <= ci.hi)

let test_mean_gamma_ordering () =
  (* stricter model, smaller expected window *)
  let mean model seed = (Mc.estimate ~trials:30_000 model (Rng.create seed)).Mc.mean_gamma in
  let sc = mean Model.sc 19 and tso = mean (Model.tso ()) 19 and wo = mean (Model.wo ()) 19 in
  Alcotest.(check bool) (Printf.sprintf "%.3f <= %.3f <= %.3f" sc tso wo) true
    (sc <= tso && tso <= wo)

let test_pso_window_smaller_than_tso () =
  (* footnote 4 omits the PSO analysis; under the settling semantics the
     critical ST can re-absorb the STs the critical LD passed (ST/ST is
     relaxed), so PSO windows are stochastically SMALLER than TSO windows.
     Validate MC against the exact finite-m DP and the ordering. *)
  let rng = Rng.create 23 in
  let pso = Mc.estimate ~trials:60_000 (Model.pso ()) rng in
  let dp = Memrel_settling.Exact_dp.gamma_pmf (Model.pso ()) ~m:16 in
  for g = 0 to 3 do
    let expected = List.assoc g dp in
    let got = try List.assoc g pso.gamma_pmf with Not_found -> 0.0 in
    if Float.abs (got -. expected) > 0.015 then
      Alcotest.fail (Printf.sprintf "PSO gamma=%d: MC %f vs DP %f" g got expected)
  done;
  let pso0 = try List.assoc 0 pso.gamma_pmf with Not_found -> 0.0 in
  Alcotest.(check bool) "PSO gamma=0 mass exceeds TSO's 2/3" true (pso0 > 2.0 /. 3.0)

let test_small_m_truncation_bias () =
  (* with tiny m the window cannot grow beyond m; the estimator should still
     report a valid pmf *)
  let rng = Rng.create 29 in
  let e = Mc.estimate ~m:2 ~trials:5000 (Model.wo ()) rng in
  let mass = List.fold_left (fun a (_, p) -> a +. p) 0.0 e.gamma_pmf in
  Alcotest.(check (float 1e-9)) "mass 1" 1.0 mass;
  List.iter (fun (g, _) -> Alcotest.(check bool) "gamma <= m" true (g <= 2)) e.gamma_pmf

let test_goodness_of_fit_chi2 () =
  (* full-distribution test, not just per-cell comparisons: bin the TSO MC
     histogram against the exact series and run a chi-squared test at the
     1% level *)
  let rng = Rng.create 31 in
  let trials = 120_000 in
  let e = Mc.estimate ~trials (Model.tso ()) rng in
  let cells = 6 in
  let observed = Array.make (cells + 1) 0 in
  List.iter
    (fun (g, c) ->
      let cell = if g >= cells then cells else g in
      observed.(cell) <- observed.(cell) + c)
    e.histogram.bins;
  let expected =
    Array.init (cells + 1) (fun cell ->
        let p =
          if cell < cells then A.b_tso_series cell
          else 1.0 -. Memrel_prob.Series.sum_range A.b_tso_series 0 (cells - 1)
        in
        p *. float_of_int trials)
  in
  let chi2 = Memrel_prob.Stats.chi_squared ~observed ~expected in
  let threshold = Memrel_prob.Stats.chi_squared_threshold_99 ~dof:cells in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f < %.2f (dof %d)" chi2 threshold cells)
    true (chi2 < threshold)

let test_jobs_invariance () =
  (* the Par determinism contract at the estimator level: for a fixed seed,
     jobs:1 and jobs:4 must return bit-identical estimate records, on every
     model family *)
  List.iter
    (fun (name, model) ->
      let est jobs = Mc.estimate ~jobs ~trials:20_000 model (Rng.create 101) in
      let e1 = est 1 and e4 = est 4 in
      Alcotest.(check (list (pair int int))) (name ^ " histogram") e1.Mc.histogram.bins
        e4.Mc.histogram.bins;
      Alcotest.(check int) (name ^ " total") e1.Mc.histogram.total e4.Mc.histogram.total;
      Alcotest.(check bool) (name ^ " mean bitwise") true
        (Int64.equal (Int64.bits_of_float e1.Mc.mean_gamma) (Int64.bits_of_float e4.Mc.mean_gamma));
      List.iter2
        (fun (g1, p1) (g4, p4) ->
          Alcotest.(check int) (name ^ " pmf support") g1 g4;
          Alcotest.(check bool) (name ^ " pmf mass bitwise") true
            (Int64.equal (Int64.bits_of_float p1) (Int64.bits_of_float p4)))
        e1.Mc.gamma_pmf e4.Mc.gamma_pmf)
    [ ("SC", Model.sc); ("TSO", Model.tso ()); ("WO", Model.wo ()) ]

let test_probability_b_jobs_invariance () =
  let run jobs = Mc.probability_b ~jobs ~trials:20_000 ~gamma:1 (Model.tso ()) (Rng.create 103) in
  let (p1, ci1) = run 1 and (p4, ci4) = run 4 in
  Alcotest.(check (float 0.0)) "point identical" p1 p4;
  Alcotest.(check (float 0.0)) "ci.lo identical" ci1.lo ci4.lo;
  Alcotest.(check (float 0.0)) "ci.hi identical" ci1.hi ci4.hi

let test_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "trials 0" (Invalid_argument "Mc.estimate: trials must be positive")
    (fun () -> ignore (Mc.estimate ~trials:0 Model.sc rng))

module Par = Memrel_prob.Par
module Budget = Memrel_prob.Budget

let test_governed_complete_equals_estimate () =
  (* a governed run that completes must reproduce the ungoverned estimator
     bit-for-bit *)
  let model = Model.tso () in
  let plain = Mc.estimate ~jobs:2 ~trials:20_000 model (Rng.create 77) in
  let g = Mc.estimate_governed ~jobs:2 ~trials:20_000 model (Rng.create 77) in
  Alcotest.(check bool) "complete" true (g.Par.exhausted = None);
  let e = g.Par.value in
  Alcotest.(check int) "trials" plain.Mc.trials e.Mc.trials;
  Alcotest.(check bool) "mean bitwise" true
    (Int64.equal (Int64.bits_of_float plain.Mc.mean_gamma) (Int64.bits_of_float e.Mc.mean_gamma));
  Alcotest.(check (list (pair int (float 0.0)))) "pmf identical" plain.Mc.gamma_pmf
    e.Mc.gamma_pmf

let test_governed_partial_interval_honest () =
  (* a deadline-limited probability_b covers fewer trials; its Wilson
     interval must widen enough to contain the full-run point estimate *)
  let model = Model.tso () in
  let full, _ = Mc.probability_b ~jobs:1 ~trials:50_000 ~gamma:1 model (Rng.create 9) in
  let g =
    Mc.probability_b_governed ~jobs:1
      ~budget:(Budget.create ~max_work:6 ())
      ~trials:50_000 ~gamma:1 model (Rng.create 9)
  in
  (match g.Par.exhausted with
   | Some e -> Alcotest.(check bool) "work cap" true (e.Budget.cause = Budget.Work)
   | None -> Alcotest.fail "expected a partial run");
  let partial_trials = g.Par.run_stats.Par.trials_done in
  Alcotest.(check bool) "fewer trials" true (partial_trials > 0 && partial_trials < 50_000);
  let point, ci = g.Par.value in
  Alcotest.(check bool)
    (Printf.sprintf "full estimate %.5f inside partial interval [%.5f, %.5f]" full ci.lo ci.hi)
    true
    (ci.lo <= full && full <= ci.hi);
  Alcotest.(check bool) "partial point is a probability" true (point >= 0.0 && point <= 1.0);
  (* the widened interval really is wider than the full-run one *)
  let _, full_ci = Mc.probability_b ~jobs:1 ~trials:50_000 ~gamma:1 model (Rng.create 9) in
  Alcotest.(check bool) "interval widened" true
    (ci.hi -. ci.lo > full_ci.hi -. full_ci.lo)

let test_governed_zero_trials_vacuous () =
  let model = Model.sc in
  let g =
    Mc.probability_b_governed ~jobs:1
      ~budget:(Budget.create ~max_work:0 ())
      ~trials:10_000 ~gamma:0 model (Rng.create 3)
  in
  let point, ci = g.Par.value in
  Alcotest.(check bool) "nan point" true (Float.is_nan point);
  Alcotest.(check (float 0.0)) "vacuous lo" 0.0 ci.lo;
  Alcotest.(check (float 0.0)) "vacuous hi" 1.0 ci.hi;
  let ge = Mc.estimate_governed ~jobs:1 ~budget:(Budget.create ~max_work:0 ()) ~trials:1_000
      model (Rng.create 3) in
  Alcotest.(check int) "empty estimate" 0 ge.Par.value.Mc.trials;
  Alcotest.(check bool) "nan mean" true (Float.is_nan ge.Par.value.Mc.mean_gamma)

(* -- streaming kernel vs reference closures ------------------------------ *)

module Scratch = Memrel_settling.Scratch

let test_scratch_matches_sample_gamma () =
  (* the fused scratch kernel replays the closure path's exact draw
     sequence: same seed, same gamma on every consecutive trial *)
  List.iter
    (fun (name, model) ->
      let scratch = Scratch.create ~m:64 model in
      let a = Rng.create 301 and b = Rng.create 301 in
      for i = 1 to 1_000 do
        let want = Mc.sample_gamma model a and got = Scratch.sample_gamma scratch b in
        Alcotest.(check int) (Printf.sprintf "%s trial %d" name i) want got
      done)
    [ ("SC", Model.sc); ("TSO", Model.tso ()); ("PSO", Model.pso ()); ("WO", Model.wo ()) ]

let test_streaming_equals_reference () =
  (* the streaming estimators are drop-in: bit-identical records to the
     pre-streaming closure path on the same seed *)
  let model = Model.tso () in
  let s = Mc.estimate ~jobs:1 ~trials:20_000 model (Rng.create 303) in
  let r = Mc.Reference.estimate ~jobs:1 ~trials:20_000 model (Rng.create 303) in
  Alcotest.(check bool) "estimate identical" true (s = r);
  let sp = Mc.probability_b ~jobs:1 ~trials:20_000 ~gamma:1 model (Rng.create 305) in
  let rp = Mc.Reference.probability_b ~jobs:1 ~trials:20_000 ~gamma:1 model (Rng.create 305) in
  Alcotest.(check bool) "probability_b identical" true (sp = rp)

let test_scratch_zero_alloc () =
  (* the zero-allocation guard: in steady state one full trial
     (generate + settle + gamma) must not touch the minor heap at all *)
  let scratch = Scratch.create ~m:64 (Model.tso ()) in
  let rng = Rng.create 307 in
  for _ = 1 to 1_000 do
    ignore (Scratch.sample_gamma scratch rng)
  done;
  let trials = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to trials do
    ignore (Scratch.sample_gamma scratch rng)
  done;
  let words = (Gc.minor_words () -. before) /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f words/trial < 0.5" words)
    true (words < 0.5)

let test_adaptive_probability_b () =
  let model = Model.tso () in
  let run jobs =
    Mc.probability_b_adaptive ~jobs ~target_width:0.01 ~max_trials:1_000_000 ~gamma:0 model
      (Rng.create 5)
  in
  let s1 = run 1 in
  Alcotest.(check bool) "target met" true s1.Par.target_met;
  Alcotest.(check bool) "stopped early" true (s1.Par.trials_done < 1_000_000);
  let _, ci = s1.Par.value in
  Alcotest.(check bool)
    (Printf.sprintf "width %f <= 0.01" (ci.hi -. ci.lo))
    true
    (ci.hi -. ci.lo <= 0.01);
  (* stopping point and value are deterministic and jobs-invariant *)
  let s4 = run 4 in
  Alcotest.(check int) "same stopping point" s1.Par.trials_done s4.Par.trials_done;
  let p1, _ = s1.Par.value and p4, _ = s4.Par.value in
  Alcotest.(check bool) "same point bitwise" true
    (Int64.equal (Int64.bits_of_float p1) (Int64.bits_of_float p4))

let test_adaptive_budget_partial () =
  let model = Model.tso () in
  (* a work cap trips before the width is reached: typed partial over the
     exact chunk prefix, interval honestly wider than the target *)
  let s =
    Mc.probability_b_adaptive ~jobs:1 ~chunk:512
      ~budget:(Budget.create ~max_work:2 ())
      ~target_width:0.0001 ~max_trials:1_000_000 ~gamma:0 model (Rng.create 15)
  in
  Alcotest.(check bool) "exhausted" true (s.Par.exhausted <> None);
  Alcotest.(check bool) "target missed" false s.Par.target_met;
  Alcotest.(check int) "prefix trials" 1024 s.Par.trials_done;
  let _, ci = s.Par.value in
  Alcotest.(check bool) "interval honestly wide" true (ci.hi -. ci.lo > 0.0001);
  (* zero budget: vacuous [0,1] around a nan point *)
  let z =
    Mc.probability_b_adaptive ~jobs:1
      ~budget:(Budget.create ~max_work:0 ())
      ~target_width:0.01 ~max_trials:1_000 ~gamma:0 model (Rng.create 15)
  in
  let p, zci = z.Par.value in
  Alcotest.(check int) "zero trials" 0 z.Par.trials_done;
  Alcotest.(check bool) "nan point" true (Float.is_nan p);
  Alcotest.(check (float 0.0)) "vacuous lo" 0.0 zci.lo;
  Alcotest.(check (float 0.0)) "vacuous hi" 1.0 zci.hi

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("window accessors", test_window_gamma_manual);
      ("window grows under TSO", test_window_grows_under_tso);
      ("estimate SC", test_estimate_sc);
      ("estimate WO vs Theorem 4.1", test_estimate_wo_matches_theorem);
      ("estimate TSO vs exact series", test_estimate_tso_matches_series);
      ("probability_b interval", test_probability_b_ci);
      ("mean gamma ordering", test_mean_gamma_ordering);
      ("PSO window smaller than TSO (footnote 4)", test_pso_window_smaller_than_tso);
      ("small-m truncation", test_small_m_truncation_bias);
      ("chi-squared goodness of fit", test_goodness_of_fit_chi2);
      ("jobs:1 = jobs:4 bit-identical", test_jobs_invariance);
      ("probability_b jobs-invariant", test_probability_b_jobs_invariance);
      ("invalid arguments", test_invalid);
      ("governed complete = estimate (bitwise)", test_governed_complete_equals_estimate);
      ("partial interval contains full estimate", test_governed_partial_interval_honest);
      ("zero-trial partial is vacuous", test_governed_zero_trials_vacuous);
      ("scratch kernel = closure path (draw-for-draw)", test_scratch_matches_sample_gamma);
      ("streaming = Reference (bitwise)", test_streaming_equals_reference);
      ("scratch trial allocates nothing", test_scratch_zero_alloc);
      ("adaptive probability_b reaches width, jobs-invariant", test_adaptive_probability_b);
      ("adaptive budget partial honest", test_adaptive_budget_partial);
    ]
