module P = Memrel_machine.Parse
module L = Memrel_machine.Litmus
module I = Memrel_machine.Instr
module E = Memrel_machine.Enumerate
module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence

let sb_text =
  {|# classic store buffering
name: sb-parsed
description: SB via the text format
thread: x = 1 ; r0 = y
thread: y = 1 ; r0 = x
relaxed: 0:r0=0 1:r0=0
|}

let test_parse_sb () =
  let t, locs = P.parse_with_locations sb_text in
  Alcotest.(check string) "name" "sb-parsed" t.L.name;
  Alcotest.(check int) "two threads" 2 (List.length t.L.programs);
  Alcotest.(check (list (pair string int))) "locations in appearance order"
    [ ("x", 0); ("y", 1) ] locs;
  (* and the parsed test behaves exactly like the hand-built corpus SB *)
  List.iter
    (fun family ->
      let parsed = L.run_exhaustive t family in
      let builtin = L.run_exhaustive (L.find "sb") family in
      Alcotest.(check int) "same outcome count" (List.length builtin.E.outcomes)
        (List.length parsed.E.outcomes);
      Alcotest.(check bool) "same relaxed verdict"
        (List.mem_assoc (L.find "sb").L.relaxed_outcome builtin.E.outcomes)
        (List.mem_assoc t.L.relaxed_outcome parsed.E.outcomes))
    [ Model.Sequential_consistency; Model.Total_store_order; Model.Weak_ordering ]

let test_parse_instructions () =
  let locs = [ ("x", 0); ("flag", 1) ] in
  let p = P.parse_instruction ~locations:locs in
  Alcotest.(check string) "store imm" "mem[0] := 5" (I.to_string (p "x = 5"));
  Alcotest.(check string) "store reg" "mem[1] := r2" (I.to_string (p "flag = r2"));
  Alcotest.(check string) "load" "r3 := mem[0]" (I.to_string (p "r3 = x"));
  Alcotest.(check string) "add" "r0 := r0 + 1" (I.to_string (p "r0 = r0 + 1"));
  Alcotest.(check string) "sub imms" "r1 := 5 - 3" (I.to_string (p "r1 = 5 - 3"));
  Alcotest.(check string) "mul" "r2 := r0 * r1" (I.to_string (p "r2 = r0 * r1"));
  Alcotest.(check string) "move" "r4 := r5 + 0" (I.to_string (p "r4 = r5"));
  Alcotest.(check string) "fence" "fence.release" (I.to_string (p "fence.release"));
  Alcotest.(check string) "fence acq" "fence.acquire" (I.to_string (p "fence.acquire"))

let check_parse_error text fragment =
  match P.parse text with
  | exception P.Parse_error { message; _ } ->
    if not (Astring.String.is_infix ~affix:fragment message) then
      Alcotest.fail (Printf.sprintf "error %S does not mention %S" message fragment)
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  check_parse_error "thread: x = 1\nrelaxed: x=1\n" "missing 'name:'";
  check_parse_error "name: t\nrelaxed: x=1\n" "no threads";
  check_parse_error "name: t\nthread: x = 1\n" "missing 'relaxed:'";
  check_parse_error "name: t\nthread: x = y\nrelaxed: x=1\n" "memory-to-memory";
  check_parse_error "name: t\nthread: 5 = x\nrelaxed: x=1\n" "cannot assign to a constant";
  check_parse_error "name: t\nthread: x = 1\nbogus: 3\nrelaxed: x=1\n" "unknown key";
  check_parse_error "name: t\nthread: x = 1 ; zzz\nrelaxed: x=1\n" "cannot parse instruction";
  check_parse_error "name: t\nthread: x = 1\nrelaxed: x\n" "needs '=value'";
  check_parse_error "name: t\nthread: r0 = x ? 1\nrelaxed: x=1\n" "unknown operator"

let test_error_line_numbers () =
  (match P.parse "name: t\nthread: x = 1\nthread: garbage here now\nrelaxed: x=1\n" with
   | exception P.Parse_error { line; _ } -> Alcotest.(check int) "line 3" 3 line
   | _ -> Alcotest.fail "expected error")

let test_init_and_memory_observable () =
  let text =
    {|name: counter
init: x=40
thread: r0 = x ; r0 = r0 + 1 ; x = r0
thread: r0 = x ; r0 = r0 + 2 ; x = r0
relaxed: x=41
|}
  in
  let t = P.parse text in
  let r = L.run_exhaustive t Model.Sequential_consistency in
  let outcomes = List.map fst r.E.outcomes in
  (* sequential: 43; races: 41 (the +1 wins last over stale) or 42 *)
  Alcotest.(check bool) "43 reachable" true (List.mem [ ("x", 43) ] outcomes);
  Alcotest.(check bool) "41 reachable (lost update)" true (List.mem [ ("x", 41) ] outcomes);
  Alcotest.(check bool) "42 reachable (lost update)" true (List.mem [ ("x", 42) ] outcomes)

let test_comments_and_blank_lines () =
  let t =
    P.parse
      "# header comment\n\nname: c # trailing comment\n\nthread: x = 1\nrelaxed: x=1\n"
  in
  Alcotest.(check string) "name trimmed of comment" "c" t.L.name

let test_register_vs_location_names () =
  (* 'r1' must be a register, 'rate' and 'r' must be locations *)
  let t, locs =
    P.parse_with_locations "name: t\nthread: rate = 1 ; r = 2 ; r1 = rate\nrelaxed: 0:r1=1\n"
  in
  Alcotest.(check (list (pair string int))) "locations" [ ("rate", 0); ("r", 1) ] locs;
  Alcotest.(check int) "one thread" 1 (List.length t.L.programs)

let test_rmw_parse_and_run () =
  Alcotest.(check string) "rmw form" "r0 := rmw mem[0] + 1"
    (I.to_string (P.parse_instruction ~locations:[ ("x", 0) ] "r0 = rmw x + 1"));
  let t =
    P.parse
      "name: inc-rmw\nthread: r0 = rmw x + 1\nthread: r0 = rmw x + 1\nrelaxed: x=1\n"
  in
  let r = L.run_exhaustive t Model.Weak_ordering in
  Alcotest.(check bool) "x=1 unreachable" false (List.mem_assoc t.L.relaxed_outcome r.E.outcomes);
  check_parse_error "name: t\nthread: x = rmw y + 1\nrelaxed: x=1\n" "rmw form"

let test_many_locations_first_appearance () =
  (* regression for the quadratic location environment: numbering must be
     first-appearance order even with many distinct locations, and lookups
     of already-bound names (the init line re-mentions every location) must
     reuse the original numbers *)
  let n = 200 in
  let loc i = Printf.sprintf "loc%03d" i in
  let init = String.concat " " (List.init n (fun i -> loc i ^ "=0")) in
  let body = String.concat " ; " (List.init n (fun i -> Printf.sprintf "%s = %d" (loc i) i)) in
  let text =
    Printf.sprintf "name: wide\ninit: %s\nthread: %s\nrelaxed: %s=0\n" init body (loc 0)
  in
  let _, locs = P.parse_with_locations text in
  Alcotest.(check int) "all locations bound once" n (List.length locs);
  List.iteri
    (fun i (name, l) ->
      Alcotest.(check string) "appearance order" (loc i) name;
      Alcotest.(check int) "consecutive numbering" i l)
    locs

let test_mp_with_fences_roundtrip () =
  let text =
    {|name: mp-ra
thread: x = 1 ; fence.release ; y = 1
thread: r0 = y ; fence.acquire ; r1 = x
relaxed: 0:r0=0 1:r0=1 1:r1=0
|}
  in
  (* observables include a thread-0 register to exercise multi-thread
     observation; the relaxed (1,0) message-passing violation must stay
     unreachable even under WO thanks to the fences *)
  let t = P.parse text in
  let r = L.run_exhaustive t Model.Weak_ordering in
  Alcotest.(check bool) "fenced MP forbidden" false
    (List.mem_assoc t.L.relaxed_outcome r.E.outcomes)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("parse SB and match corpus", test_parse_sb);
      ("instruction forms", test_parse_instructions);
      ("error messages", test_errors);
      ("error line numbers", test_error_line_numbers);
      ("init and memory observables", test_init_and_memory_observable);
      ("comments and blanks", test_comments_and_blank_lines);
      ("register vs location names", test_register_vs_location_names);
      ("many locations first-appearance order", test_many_locations_first_appearance);
      ("rmw parse and run", test_rmw_parse_and_run);
      ("fenced MP roundtrip", test_mp_with_fences_roundtrip);
    ]
