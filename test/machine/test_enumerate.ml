module E = Memrel_machine.Enumerate
module Sem = Memrel_machine.Semantics
module State = Memrel_machine.State
module L = Memrel_machine.Litmus
module I = Memrel_machine.Instr
module Model = Memrel_memmodel.Model

let mk programs = State.init ~programs ~initial_mem:[]

let disciplines = [ ("SC", Sem.Sc); ("TSO", Sem.Tso); ("PSO", Sem.Pso); ("WO", Sem.Wo { window = 8 }) ]

let test_single_thread_single_outcome () =
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:0 |] ] in
  let r = E.outcomes Sem.Sc st ~observe:(fun s -> State.reg s.State.threads.(0) 0) in
  Alcotest.(check (list (pair int int))) "one outcome" [ (1, 1) ] r.outcomes;
  Alcotest.(check int) "one terminal" 1 r.terminals

let test_interleaving_count_sc () =
  (* two threads with 2 instructions each: C(4,2) = 6 interleavings, but
     states dedup; just check we find both orders of two racing stores *)
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1) |]; [| I.store ~loc:0 ~src:(I.Imm 2) |] ]
  in
  let r = E.outcomes Sem.Sc st ~observe:(fun s -> State.mem_read s 0) in
  Alcotest.(check (list int)) "both final values" [ 1; 2 ] (List.map fst r.outcomes)

let test_visited_accounting () =
  let st = mk [ [| I.load ~reg:0 ~loc:0 |]; [| I.load ~reg:0 ~loc:1 |] ] in
  let r = E.outcomes Sem.Sc st ~observe:(fun _ -> ()) in
  (* states: 4 combinations of progress, loads read zeros so registers do
     not distinguish: 00,10,01,11 *)
  Alcotest.(check int) "4 states" 4 r.states_visited;
  Alcotest.(check int) "1 terminal" 1 r.terminals

let test_max_states_cap () =
  let st = mk [ Array.init 10 (fun i -> I.load ~reg:i ~loc:i);
                Array.init 10 (fun i -> I.load ~reg:i ~loc:i) ] in
  (* the cap now degrades gracefully: a partial result with an exhaustion
     record instead of an exception *)
  let r = E.outcomes ~max_states:5 Sem.Sc st ~observe:(fun _ -> ()) in
  (match r.exhausted with
   | None -> Alcotest.fail "expected a partial result"
   | Some e ->
     Alcotest.(check bool) "cause is the work cap" true
       (e.Memrel_prob.Budget.cause = Memrel_prob.Budget.Work));
  (* off-by-one regression: the seed enumerator admitted max_states + 1
     states before aborting; now exactly max_states are expanded *)
  Alcotest.(check int) "exactly max_states expanded" 5 r.states_visited;
  Alcotest.(check bool) "partial terminal count is sane" true
    (r.terminals >= 0 && r.terminals <= 5)

let test_max_states_cap_legacy_raise () =
  let st = mk [ Array.init 10 (fun i -> I.load ~reg:i ~loc:i);
                Array.init 10 (fun i -> I.load ~reg:i ~loc:i) ] in
  match E.outcomes ~max_states:5 ~legacy_raise:true Sem.Sc st ~observe:(fun _ -> ()) with
  | _ -> Alcotest.fail "expected State_limit"
  | exception E.State_limit { max_states; states_visited; terminals } ->
    Alcotest.(check int) "cap echoed" 5 max_states;
    Alcotest.(check int) "exactly max_states admitted" 5 states_visited;
    Alcotest.(check bool) "partial terminal count is sane" true (terminals >= 0 && terminals <= 5)

let test_budget_deadline_partial () =
  (* an already-expired deadline stops the exploration before any state is
     admitted; the partial result is well-formed and empty *)
  let st = mk [ Array.init 6 (fun i -> I.load ~reg:i ~loc:i);
                Array.init 6 (fun i -> I.load ~reg:i ~loc:i) ] in
  let budget = Memrel_prob.Budget.create ~deadline_s:0.0 () in
  let r = E.outcomes ~budget Sem.Sc st ~observe:(fun _ -> ()) in
  Alcotest.(check bool) "exhausted" true (r.exhausted <> None);
  Alcotest.(check int) "no states admitted" 0 r.states_visited;
  Alcotest.(check int) "no terminals" 0 r.terminals;
  Alcotest.(check (list unit)) "no outcomes" [] (List.map fst r.outcomes)

let test_budget_complete_run_not_exhausted () =
  (* a generous budget leaves a complete run untouched: same result as no
     budget, exhausted = None, work counter = admitted states *)
  let st = mk [ [| I.load ~reg:0 ~loc:0 |]; [| I.load ~reg:0 ~loc:1 |] ] in
  let budget = Memrel_prob.Budget.create ~max_work:1_000 () in
  let r = E.outcomes ~budget Sem.Sc st ~observe:(fun _ -> ()) in
  Alcotest.(check bool) "not exhausted" true (r.exhausted = None);
  Alcotest.(check int) "4 states" 4 r.states_visited;
  Alcotest.(check int) "work = expanded states" 4 (Memrel_prob.Budget.work_done budget)

let test_cap_counts_expanded_states_only () =
  (* regression: states used to be counted against the cap when PUSHED, so
     the cap could fire while the stack still held unexplored unique states
     — here the terminal state. Space: T0 stores x, T1 stores y; 4 states
     {00,10,01,11}, 1 terminal. Expansion order (LIFO, successors pushed in
     thread order): root, then T1-done, then the terminal. Under the old
     admission-counting, max_states = 3 tripped while admitting the 4th
     state during the SECOND expansion, reporting 3 states "visited" with 0
     terminals and two unexpanded states abandoned on the stack. Counting
     expanded states, the same cap genuinely explores 3 states and reaches
     the terminal. *)
  let st = mk [ [| I.store ~loc:0 ~src:(I.Imm 1) |]; [| I.store ~loc:1 ~src:(I.Imm 1) |] ] in
  let r = E.outcomes ~max_states:3 Sem.Sc st ~observe:(fun s -> State.mem_read s 0) in
  (match r.exhausted with
   | Some e ->
     Alcotest.(check bool) "cause is the work cap" true
       (e.Memrel_prob.Budget.cause = Memrel_prob.Budget.Work);
     Alcotest.(check int) "work units = expanded states" 3 e.Memrel_prob.Budget.work_done
   | None -> Alcotest.fail "expected a partial result");
  Alcotest.(check int) "exactly max_states expanded" 3 r.states_visited;
  Alcotest.(check int) "the in-flight terminal was reached before the cap" 1 r.terminals

let test_max_states_exact_fit () =
  (* the 2x1-load space has exactly 4 states (see visited accounting):
     max_states = 4 must succeed — the cap is "more than", not "at least" *)
  let st = mk [ [| I.load ~reg:0 ~loc:0 |]; [| I.load ~reg:0 ~loc:1 |] ] in
  let r = E.outcomes ~max_states:4 Sem.Sc st ~observe:(fun _ -> ()) in
  Alcotest.(check int) "fits exactly" 4 r.states_visited

let test_reachable_terminal_count () =
  let st =
    mk [ [| I.store ~loc:0 ~src:(I.Imm 1) |]; [| I.store ~loc:0 ~src:(I.Imm 2) |] ]
  in
  Alcotest.(check int) "two terminals" 2 (E.reachable_terminal_count Sem.Sc st)

let test_dedup_effectiveness () =
  (* same program under TSO explores more states than SC (buffer states) *)
  let prog () = [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:1 |] in
  let st = mk [ prog (); prog () ] in
  let sc = (E.outcomes Sem.Sc st ~observe:(fun _ -> ())).states_visited in
  let tso = (E.outcomes Sem.Tso st ~observe:(fun _ -> ())).states_visited in
  Alcotest.(check bool) (Printf.sprintf "SC %d < TSO %d" sc tso) true (sc < tso)

let test_packed_key_agrees_with_legacy () =
  (* the packed structural key and the legacy printf key must induce the
     same state equivalence: identical visit/terminal/outcome accounting
     on every corpus test under every discipline *)
  List.iter
    (fun (t : L.t) ->
      List.iter
        (fun (dname, d) ->
          let run legacy_key =
            E.outcomes ~legacy_key d (L.initial_state t) ~observe:t.observe
          in
          let packed = run false and legacy = run true in
          let label = Printf.sprintf "%s/%s" t.name dname in
          Alcotest.(check int) (label ^ " states") legacy.states_visited packed.states_visited;
          Alcotest.(check int) (label ^ " terminals") legacy.terminals packed.terminals;
          Alcotest.(check bool) (label ^ " outcomes") true (legacy.outcomes = packed.outcomes))
        disciplines)
    L.all

let test_por_equals_full_on_corpus () =
  (* soundness validation: the ample-set reduction must preserve outcome
     sets AND per-outcome terminal counts exactly, over the whole corpus
     under all four disciplines, while never visiting more states *)
  List.iter
    (fun (t : L.t) ->
      List.iter
        (fun (dname, d) ->
          let full = E.outcomes d (L.initial_state t) ~observe:t.observe in
          let por = E.outcomes ~por:true d (L.initial_state t) ~observe:t.observe in
          let label = Printf.sprintf "%s/%s" t.name dname in
          Alcotest.(check bool) (label ^ " outcome sets equal") true (full.outcomes = por.outcomes);
          Alcotest.(check int) (label ^ " terminals equal") full.terminals por.terminals;
          Alcotest.(check bool)
            (Printf.sprintf "%s POR states %d <= full %d" label por.states_visited
               full.states_visited)
            true
            (por.states_visited <= full.states_visited))
        disciplines)
    (L.all @ [ L.increment_n 3 ])

let outcome_xs (r : L.outcome E.result) =
  List.map (fun (o, _) -> List.assoc "x" o) r.outcomes

let test_increment3_pinned () =
  (* deep-state-space regression pins: exact exhaustive counts for the
     3-thread canonical bug (E14's n = 3 row, now exact) *)
  let t = L.increment_n 3 in
  let sc = L.run_exhaustive t Model.Sequential_consistency in
  Alcotest.(check (list int)) "SC outcome set" [ 1; 2; 3 ] (outcome_xs sc);
  Alcotest.(check int) "SC terminals" 16 sc.terminals;
  Alcotest.(check (list int)) "SC per-outcome terminal counts" [ 4; 6; 6 ]
    (List.map snd sc.outcomes);
  Alcotest.(check int) "SC states" 175 sc.states_visited;
  let tso = L.run_exhaustive t Model.Total_store_order in
  Alcotest.(check (list int)) "TSO outcome set" [ 1; 2; 3 ] (outcome_xs tso);
  Alcotest.(check int) "TSO terminals" 16 tso.terminals;
  Alcotest.(check int) "TSO states" 308 tso.states_visited

let test_increment4_smoke () =
  (* the workload the recursive enumerator could not reach: exhaustive
     n = 4 under SC and TSO, with and without POR, all agreeing *)
  let t = L.increment_n 4 in
  List.iter
    (fun family ->
      let full = L.run_exhaustive t family in
      let por = L.run_exhaustive ~por:true t family in
      Alcotest.(check (list int)) "outcome set is {1..4}" [ 1; 2; 3; 4 ] (outcome_xs full);
      Alcotest.(check int) "109 terminal states" 109 full.terminals;
      Alcotest.(check bool) "POR agrees" true (full.outcomes = por.outcomes);
      Alcotest.(check int) "POR terminals agree" full.terminals por.terminals)
    [ Model.Sequential_consistency; Model.Total_store_order ]

let test_deep_linear_space () =
  (* worklist iteration: a 60-store TSO thread takes 120 transitions to
     drain (60 execs + 60 flushes) — the longest path is 120 deep and must
     enumerate without Stack_overflow *)
  let prog = Array.init 60 (fun i -> I.store ~loc:(i mod 4) ~src:(I.Imm i)) in
  let st = mk [ prog ] in
  let r = E.outcomes ~max_states:500_000 Sem.Tso st ~observe:(fun _ -> ()) in
  Alcotest.(check bool)
    (Printf.sprintf "deep path explored (max_depth %d)" r.stats.max_depth)
    true
    (r.stats.max_depth >= 120);
  Alcotest.(check int) "single terminal (deterministic final memory)" 1 r.terminals

let test_stats_observability () =
  let t = L.increment_n 3 in
  let r = L.run_exhaustive ~por:true t Model.Total_store_order in
  let s = r.stats in
  Alcotest.(check bool) "pruned some transitions" true (s.por_pruned > 0);
  Alcotest.(check bool) "ample states counted" true (s.por_ample_states > 0);
  Alcotest.(check bool) "transitions counted" true (s.transitions > 0);
  Alcotest.(check bool) "frontier tracked" true (s.max_frontier > 0);
  Alcotest.(check bool) "depth tracked" true (s.max_depth > 0);
  Alcotest.(check bool) "elapsed nonnegative" true (s.elapsed_s >= 0.0)

let test_find_incn () =
  Alcotest.(check string) "inc4 resolves" "inc4" (L.find "inc4").L.name;
  Alcotest.(check string) "corpus inc still wins" "inc" (L.find "inc").L.name;
  Alcotest.check_raises "inc1 rejected" Not_found (fun () -> ignore (L.find "inc1"));
  Alcotest.check_raises "incx rejected" Not_found (fun () -> ignore (L.find "incx"))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("single-thread single outcome", test_single_thread_single_outcome);
      ("racing stores", test_interleaving_count_sc);
      ("state accounting", test_visited_accounting);
      ("max_states cap yields partial result", test_max_states_cap);
      ("max_states cap raises under legacy_raise", test_max_states_cap_legacy_raise);
      ("cap counts expanded states only", test_cap_counts_expanded_states_only);
      ("expired deadline yields empty partial result", test_budget_deadline_partial);
      ("generous budget leaves run complete", test_budget_complete_run_not_exhausted);
      ("max_states exact fit succeeds", test_max_states_exact_fit);
      ("terminal count", test_reachable_terminal_count);
      ("TSO explores more states than SC", test_dedup_effectiveness);
      ("packed key agrees with legacy key", test_packed_key_agrees_with_legacy);
      ("POR preserves outcomes on the corpus", test_por_equals_full_on_corpus);
      ("increment_n 3 exact counts pinned", test_increment3_pinned);
      ("increment_n 4 exhaustive smoke", test_increment4_smoke);
      ("deep linear space iterates", test_deep_linear_space);
      ("observability counters", test_stats_observability);
      ("find resolves incN names", test_find_incn);
    ]
