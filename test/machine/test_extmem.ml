module E = Memrel_machine.Enumerate
module X = Memrel_machine.Extmem
module Sem = Memrel_machine.Semantics
module State = Memrel_machine.State
module L = Memrel_machine.Litmus
module B = Memrel_prob.Budget

let disciplines =
  [ ("SC", Sem.Sc); ("TSO", Sem.Tso); ("PSO", Sem.Pso); ("WO", Sem.Wo { window = 3 }) ]

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "memrel_extmem_test_%d_%d" (Unix.getpid ()) !n)

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> X.remove_spill_dir dir) (fun () -> f dir)

let key t dname por = Printf.sprintf "%s|%s|por%b" (L.hash t) dname por

(* the whole contract in one checker: on complete runs every base field the
   in-RAM engine produces — outcome sets WITH per-outcome terminal counts,
   states, terminals, transitions, dedup hits — must match exactly *)
let check_parity ?mem_budget_bytes ~por name t dname d =
  with_dir (fun dir ->
      let st = L.initial_state t in
      let observe = t.L.observe in
      let ram = E.outcomes ~por d st ~observe in
      let ext =
        X.outcomes ?mem_budget_bytes ~por ~spill_dir:dir ~resume_key:(key t dname por) d st
          ~observe
      in
      let ctx fmt = Printf.sprintf ("%s/%s por=%b: " ^^ fmt) name dname por in
      Alcotest.(check (list (pair (list (pair string int)) int)))
        (ctx "outcomes + per-outcome terminal counts")
        ram.E.outcomes ext.X.base.E.outcomes;
      Alcotest.(check int) (ctx "states") ram.E.states_visited ext.X.base.E.states_visited;
      Alcotest.(check int) (ctx "terminals") ram.E.terminals ext.X.base.E.terminals;
      Alcotest.(check int) (ctx "transitions") ram.E.stats.E.transitions
        ext.X.base.E.stats.E.transitions;
      Alcotest.(check int) (ctx "dedup hits") ram.E.stats.E.dedup_hits
        ext.X.base.E.stats.E.dedup_hits;
      Alcotest.(check bool) (ctx "complete") true (ext.X.base.E.exhausted = None);
      ext)

let test_corpus_parity () =
  List.iter
    (fun t ->
      List.iter
        (fun (dname, d) ->
          ignore (check_parity ~por:false t.L.name t dname d);
          ignore (check_parity ~por:true t.L.name t dname d))
        disciplines)
    (List.filter (fun t -> t.L.name <> "inc4" && t.L.name <> "inc5") L.all)

let test_inc_parity () =
  List.iter
    (fun name ->
      let t = L.find name in
      List.iter
        (fun (dname, d) ->
          ignore (check_parity ~por:false name t dname d);
          ignore (check_parity ~por:true name t dname d))
        disciplines)
    [ "inc3"; "inc4" ]

let test_tiny_budget_forces_spills () =
  (* a 64 KiB budget on inc5/TSO (64k states) must spill candidate batches
     repeatedly and trigger visited compaction — and still be exact *)
  let t = L.find "inc5" in
  let ext = check_parity ~mem_budget_bytes:65536 ~por:false "inc5" t "TSO" Sem.Tso in
  Alcotest.(check bool)
    (Printf.sprintf "multiple spill generations (got %d)" ext.X.ext.X.spill_generations)
    true
    (ext.X.ext.X.spill_generations >= 2);
  Alcotest.(check bool) "spilled bytes" true (ext.X.ext.X.spill_bytes > 0);
  Alcotest.(check bool) "bloom probed" true (ext.X.ext.X.bloom_probes > 0)

let test_kill_resume_bit_identical () =
  let t = L.find "inc4" in
  let st = L.initial_state t in
  let observe = t.L.observe in
  let rk = key t "TSO" false in
  with_dir (fun refdir ->
      let full = X.outcomes ~spill_dir:refdir ~resume_key:rk Sem.Tso st ~observe in
      with_dir (fun dir ->
          (* "kill" the run mid-exploration with a work cap, then resume *)
          let b = B.create ~max_work:1200 () in
          let part = X.outcomes ~budget:b ~spill_dir:dir ~resume_key:rk Sem.Tso st ~observe in
          Alcotest.(check bool) "partial run tripped" true (part.X.base.E.exhausted <> None);
          Alcotest.(check int) "partial expanded exactly the cap" 1200
            part.X.base.E.states_visited;
          let res = X.outcomes ~resume:true ~spill_dir:dir ~resume_key:rk Sem.Tso st ~observe in
          Alcotest.(check bool) "resume recorded" true (res.X.ext.X.resumed_at_level <> None);
          Alcotest.(check (list (pair (list (pair string int)) int)))
            "resumed outcomes bit-identical" full.X.base.E.outcomes res.X.base.E.outcomes;
          Alcotest.(check int) "states" full.X.base.E.states_visited res.X.base.E.states_visited;
          Alcotest.(check int) "terminals" full.X.base.E.terminals res.X.base.E.terminals;
          Alcotest.(check int) "transitions" full.X.base.E.stats.E.transitions
            res.X.base.E.stats.E.transitions;
          Alcotest.(check int) "dedup hits" full.X.base.E.stats.E.dedup_hits
            res.X.base.E.stats.E.dedup_hits;
          Alcotest.(check bool) "resumed run complete" true (res.X.base.E.exhausted = None);
          (* resuming an already-complete run replays nothing and returns
             the same final result *)
          let again = X.outcomes ~resume:true ~spill_dir:dir ~resume_key:rk Sem.Tso st ~observe in
          Alcotest.(check int) "re-resume states" full.X.base.E.states_visited
            again.X.base.E.states_visited;
          Alcotest.(check (list (pair (list (pair string int)) int)))
            "re-resume outcomes" full.X.base.E.outcomes again.X.base.E.outcomes))

let test_orphan_files_cleaned_on_resume () =
  let t = L.find "inc3" in
  let st = L.initial_state t in
  let observe = t.L.observe in
  let rk = key t "SC" false in
  with_dir (fun dir ->
      let b = B.create ~max_work:50 () in
      ignore (X.outcomes ~budget:b ~spill_dir:dir ~resume_key:rk Sem.Sc st ~observe);
      (* crash artifacts: a stray half-written tmp and an unreferenced run *)
      let drop name contents =
        let oc = open_out (Filename.concat dir name) in
        output_string oc contents;
        close_out oc
      in
      drop "r999999.run" "garbage not in any manifest";
      drop "r999998.run.tmp" "torn write";
      let full = X.outcomes ~resume:true ~spill_dir:dir ~resume_key:rk Sem.Sc st ~observe in
      Alcotest.(check bool) "completed" true (full.X.base.E.exhausted = None);
      Alcotest.(check int) "inc3 states" 175 full.X.base.E.states_visited;
      Alcotest.(check int) "inc3 terminals" 16 full.X.base.E.terminals;
      Alcotest.(check bool) "orphan run removed" false
        (Sys.file_exists (Filename.concat dir "r999999.run"));
      Alcotest.(check bool) "torn tmp removed" false
        (Sys.file_exists (Filename.concat dir "r999998.run.tmp")))

let expect_spill_error label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Spill_error" label
  | exception X.Spill_error msg ->
    Alcotest.(check bool)
      (label ^ ": one-line message")
      false
      (String.contains msg '\n')

let test_truncated_run_rejected () =
  let t = L.find "inc3" in
  let st = L.initial_state t in
  let observe = t.L.observe in
  let rk = key t "TSO" false in
  with_dir (fun dir ->
      let b = B.create ~max_work:100 () in
      ignore (X.outcomes ~budget:b ~spill_dir:dir ~resume_key:rk Sem.Tso st ~observe);
      (* mid-level kill simulation: truncate a manifest-referenced run *)
      let victim =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".run")
        |> List.sort compare |> List.hd
      in
      let path = Filename.concat dir victim in
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.ftruncate fd (size / 2));
      Unix.close fd;
      expect_spill_error "truncated spill run" (fun () ->
          X.outcomes ~resume:true ~spill_dir:dir ~resume_key:rk Sem.Tso st ~observe))

let test_resume_key_mismatch_rejected () =
  let t = L.find "sb" in
  let st = L.initial_state t in
  let observe = t.L.observe in
  with_dir (fun dir ->
      ignore (X.outcomes ~spill_dir:dir ~resume_key:"sb|TSO" Sem.Tso st ~observe);
      expect_spill_error "resume key mismatch" (fun () ->
          X.outcomes ~resume:true ~spill_dir:dir ~resume_key:"sb|SC" Sem.Sc st ~observe))

let test_resume_without_manifest_rejected () =
  with_dir (fun dir ->
      let t = L.find "sb" in
      expect_spill_error "missing manifest" (fun () ->
          X.outcomes ~resume:true ~spill_dir:dir ~resume_key:"sb|TSO" Sem.Tso
            (L.initial_state t) ~observe:t.L.observe))

let test_fresh_run_clears_stale_spill_state () =
  (* without ~resume a directory is an output path, not state: stale runs
     from a different enumeration must not leak into the result *)
  let t = L.find "mp" in
  let st = L.initial_state t in
  let observe = t.L.observe in
  with_dir (fun dir ->
      ignore (X.outcomes ~spill_dir:dir ~resume_key:"mp|TSO" Sem.Tso st ~observe);
      let ram = E.outcomes Sem.Sc st ~observe in
      let ext = X.outcomes ~spill_dir:dir ~resume_key:"mp|SC" Sem.Sc st ~observe in
      Alcotest.(check (list (pair (list (pair string int)) int)))
        "fresh run over stale dir is exact" ram.E.outcomes ext.X.base.E.outcomes)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("corpus parity with in-RAM engine (4 disciplines, +-POR)", test_corpus_parity);
      ("inc3/inc4 parity (4 disciplines, +-POR)", test_inc_parity);
      ("tiny memory budget forces >=2 spill generations, stays exact",
       test_tiny_budget_forces_spills);
      ("kill + resume is bit-identical to an uninterrupted run",
       test_kill_resume_bit_identical);
      ("orphan crash artifacts are cleaned on resume", test_orphan_files_cleaned_on_resume);
      ("truncated spill run rejected with typed error", test_truncated_run_rejected);
      ("resume key mismatch rejected", test_resume_key_mismatch_rejected);
      ("resume without manifest rejected", test_resume_without_manifest_rejected);
      ("fresh run clears stale spill state", test_fresh_run_clears_stale_spill_state);
    ]
