let () =
  Alcotest.run "memrel_machine"
    [
      ("instr", Test_instr.suite);
      ("state", Test_state.suite);
      ("semantics", Test_semantics.suite);
      ("enumerate", Test_enumerate.suite);
      ("extmem", Test_extmem.suite);
      ("litmus", Test_litmus.suite);
      ("parse", Test_parse.suite);
      ("litmus_files", Test_litmus_files.suite);
      ("differential", Test_differential.suite);
      ("exec", Test_exec.suite);
    ]
