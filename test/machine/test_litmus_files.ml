(* The .litmus files shipped under examples/litmus/ must parse and behave as
   their header comments claim. The dune stanza copies them next to the test
   binary. *)

module P = Memrel_machine.Parse
module L = Memrel_machine.Litmus
module E = Memrel_machine.Enumerate
module Model = Memrel_memmodel.Model

let read path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let reachable t family =
  List.mem_assoc t.L.relaxed_outcome (L.run_exhaustive t family).E.outcomes

let families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

let check_file file expected_reachable () =
  let t = P.parse (read file) in
  List.iter2
    (fun family expected ->
      let got = reachable t family in
      if got <> expected then
        Alcotest.fail
          (Printf.sprintf "%s: expected reachable=%b got %b" t.L.name expected got))
    families expected_reachable

(* the named classics also ship as files; the parsed program must reproduce
   the builtin corpus entry exactly — same outcome set under every model,
   resolvable through Litmus.find under the same name *)
let check_matches_builtin file () =
  let t = P.parse (read file) in
  let builtin =
    try L.find t.L.name
    with Not_found -> Alcotest.fail (Printf.sprintf "%s not in Litmus.find" t.L.name)
  in
  Alcotest.(check (list (list (pair string int))))
    "relaxed outcome" [ t.L.relaxed_outcome ] [ builtin.L.relaxed_outcome ];
  List.iter
    (fun family ->
      Alcotest.(check (list (list (pair string int))))
        (Printf.sprintf "%s under %s" t.L.name (Model.family_name family))
        (L.outcome_set builtin family) (L.outcome_set t family))
    families

let suite =
  [
    Alcotest.test_case "dekker entry broken from TSO up" `Quick
      (check_file "litmus_files/dekker_attempt.litmus" [ false; true; true; true ]);
    Alcotest.test_case "dekker entry fixed by full fences" `Quick
      (check_file "litmus_files/dekker_fenced.litmus" [ false; false; false; false ]);
    Alcotest.test_case "seqlock torn read from PSO up" `Quick
      (check_file "litmus_files/seqlock_read.litmus" [ false; false; true; true ]);
    Alcotest.test_case "atomic tickets never duplicate" `Quick
      (check_file "litmus_files/ticket_counter.litmus" [ false; false; false; false ]);
    Alcotest.test_case "sb relaxed from TSO up" `Quick
      (check_file "litmus_files/sb.litmus" [ false; true; true; true ]);
    Alcotest.test_case "mp relaxed from PSO up" `Quick
      (check_file "litmus_files/mp.litmus" [ false; false; true; true ]);
    Alcotest.test_case "lb relaxed only under WO" `Quick
      (check_file "litmus_files/lb.litmus" [ false; false; false; true ]);
    Alcotest.test_case "iriw relaxed only under WO" `Quick
      (check_file "litmus_files/iriw.litmus" [ false; false; false; true ]);
    Alcotest.test_case "sb file matches builtin corpus entry" `Quick
      (check_matches_builtin "litmus_files/sb.litmus");
    Alcotest.test_case "mp file matches builtin corpus entry" `Quick
      (check_matches_builtin "litmus_files/mp.litmus");
    Alcotest.test_case "lb file matches builtin corpus entry" `Quick
      (check_matches_builtin "litmus_files/lb.litmus");
    Alcotest.test_case "iriw file matches builtin corpus entry" `Quick
      (check_matches_builtin "litmus_files/iriw.litmus");
  ]
