(* Axiomatic-vs-operational differential: for every corpus litmus test and
   every model family, the outcome set allowed by the event-graph axioms
   (lib/axiom) must equal the outcome set reachable by the operational
   machine. This is the acceptance criterion of the axiomatic subsystem —
   two independent encodings of each memory model agreeing on every
   program shape the corpus exercises (fences, rmw, 2-4 threads, shared
   and disjoint locations). *)

module L = Memrel_machine.Litmus
module P = Memrel_machine.Parse
module D = Memrel_axiom.Differential
module Model = Memrel_memmodel.Model

let check_test (t : L.t) () =
  List.iter
    (fun family ->
      let r = D.run t family in
      if not r.D.agree then
        Alcotest.fail
          (Printf.sprintf "%s under %s:\n%s" t.L.name (Model.family_name family)
             (D.describe r)))
    D.standard_families

let read path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check_file file () = check_test (P.parse (read file)) ()

(* small WO windows change both sides (operationally: less reordering;
   axiomatically: more window edges) — they must keep agreeing, down to
   window = 1 where WO collapses to in-order execution *)
let check_windows (t : L.t) () =
  List.iter
    (fun window ->
      let r = D.run ~window t Model.Weak_ordering in
      if not r.D.agree then
        Alcotest.fail (Printf.sprintf "%s under WO window=%d:\n%s" t.L.name window (D.describe r)))
    [ 1; 2; 3 ]

let suite =
  List.map
    (fun (t : L.t) ->
      Alcotest.test_case (Printf.sprintf "%s axiomatic = operational" t.L.name) `Quick
        (check_test t))
    L.all
  @ [
      Alcotest.test_case "inc3 axiomatic = operational" `Quick (check_test (L.increment_n 3));
      Alcotest.test_case "inc4 axiomatic = operational" `Slow (check_test (L.increment_n 4));
      Alcotest.test_case "dekker file axiomatic = operational" `Quick
        (check_file "litmus_files/dekker_attempt.litmus");
      Alcotest.test_case "dekker fenced file axiomatic = operational" `Quick
        (check_file "litmus_files/dekker_fenced.litmus");
      Alcotest.test_case "seqlock file axiomatic = operational" `Quick
        (check_file "litmus_files/seqlock_read.litmus");
      Alcotest.test_case "ticket rmw file axiomatic = operational" `Quick
        (check_file "litmus_files/ticket_counter.litmus");
      Alcotest.test_case "sb agrees at small WO windows" `Quick (check_windows (L.find "sb"));
      Alcotest.test_case "lb agrees at small WO windows" `Quick (check_windows (L.find "lb"));
      Alcotest.test_case "iriw agrees at small WO windows" `Quick
        (check_windows (L.find "iriw"));
    ]
