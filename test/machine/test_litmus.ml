module L = Memrel_machine.Litmus
module E = Memrel_machine.Enumerate
module Sem = Memrel_machine.Semantics
module Model = Memrel_memmodel.Model

let families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

let test_corpus_well_formed () =
  Alcotest.(check int) "twelve tests" 12 (List.length L.all);
  List.iter
    (fun (t : L.t) ->
      Alcotest.(check bool) (t.name ^ " has threads") true (List.length t.programs >= 1);
      Alcotest.(check bool) (t.name ^ " has description") true (String.length t.description > 0))
    L.all

let test_find () =
  Alcotest.(check string) "finds sb" "sb" (L.find "sb").L.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (L.find "nonexistent"))

(* The heart of the operational validation: every corpus expectation must
   hold under exhaustive enumeration for every model. One alcotest case per
   (test, model) pair so failures localize. *)
let verdict_cases =
  List.concat_map
    (fun (t : L.t) ->
      List.map
        (fun family ->
          let name =
            Printf.sprintf "%s under %s" t.L.name
              (match family with
               | Model.Sequential_consistency -> "SC"
               | Model.Total_store_order -> "TSO"
               | Model.Partial_store_order -> "PSO"
               | Model.Weak_ordering -> "WO"
               | Model.Custom -> "custom")
          in
          Alcotest.test_case name `Quick (fun () ->
              let v = L.check t family in
              if not v.agrees then
                Alcotest.fail
                  (Printf.sprintf "observed_relaxed=%b expected=%b" v.observed_relaxed
                     v.expected_relaxed)))
        families)
    L.all

let test_outcome_monotonicity () =
  (* weaker models can only ADD outcomes: SC outcomes must be a subset of
     every other model's outcome set *)
  List.iter
    (fun (t : L.t) ->
      let outcomes family =
        List.map fst (L.run_exhaustive t family).E.outcomes
      in
      let sc = outcomes Model.Sequential_consistency in
      List.iter
        (fun f ->
          let other = outcomes f in
          List.iter
            (fun o ->
              if not (List.mem o other) then
                Alcotest.fail (Printf.sprintf "%s: SC outcome missing under weaker model" t.name))
            sc)
        [ Model.Total_store_order; Model.Partial_store_order; Model.Weak_ordering ])
    L.all

let test_inc_outcomes () =
  (* the canonical bug: exactly {x=1, x=2} are reachable under every model *)
  List.iter
    (fun f ->
      let r = L.run_exhaustive (L.find "inc") f in
      let outcomes = List.map fst r.E.outcomes in
      Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
      Alcotest.(check bool) "x=1 reachable" true (List.mem [ ("x", 1) ] outcomes);
      Alcotest.(check bool) "x=2 reachable" true (List.mem [ ("x", 2) ] outcomes))
    families

let test_sb_outcome_sets () =
  (* SC allows exactly 3 of the 4 (r0, r1) combinations; relaxed models all 4 *)
  let count f = List.length (L.run_exhaustive (L.find "sb") f).E.outcomes in
  Alcotest.(check int) "SC" 3 (count Model.Sequential_consistency);
  Alcotest.(check int) "TSO" 4 (count Model.Total_store_order);
  Alcotest.(check int) "WO" 4 (count Model.Weak_ordering)

let test_inc_atomic_fixes_bug () =
  (* the RMW version: x = 2 is the ONLY outcome under every model *)
  List.iter
    (fun f ->
      let r = L.run_exhaustive (L.find "inc+rmw") f in
      match r.E.outcomes with
      | [ (o, _) ] -> Alcotest.(check (list (pair string int))) "only x=2" [ ("x", 2) ] o
      | l -> Alcotest.fail (Printf.sprintf "expected one outcome, got %d" (List.length l)))
    families

let test_increment_n () =
  (* n = 2 must coincide with the corpus inc; outcomes of inc_n are exactly
     x in {1 .. n} under SC *)
  let t3 = L.increment_n 3 in
  let r = L.run_exhaustive t3 Model.Sequential_consistency in
  let outcomes = List.map fst r.E.outcomes in
  Alcotest.(check int) "three outcomes" 3 (List.length outcomes);
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "x=%d reachable" v) true
        (List.mem [ ("x", v) ] outcomes))
    [ 1; 2; 3 ];
  (* the maximal-loss outcome x = 1 stays reachable under every model *)
  List.iter
    (fun f ->
      let v = L.check t3 f in
      Alcotest.(check bool) "x=1 reachable" true v.observed_relaxed)
    families;
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Litmus.increment_n: n >= 2 required")
    (fun () -> ignore (L.increment_n 1))

let test_window_parameter_matters () =
  (* with window 1, WO degrades to in-order issue: LB's relaxed outcome
     disappears *)
  let v = L.check ~window:1 (L.find "lb") Model.Weak_ordering in
  Alcotest.(check bool) "window=1 forbids LB" false v.observed_relaxed

(* -- structural hash ---------------------------------------------------- *)

let test_hash_no_collisions () =
  (* the whole corpus plus the incN family: every structurally distinct
     test must digest differently — the service cache keys on this. [inc]
     itself IS increment_n 2, so that digest must coincide, and the family
     here starts at 3 *)
  Alcotest.(check string) "inc digests as increment_n 2" (L.hash (L.find "inc"))
    (L.hash (L.increment_n 2));
  let tests = L.all @ List.init 10 (fun i -> L.increment_n (i + 3)) in
  let tagged = List.map (fun t -> (t.L.name, L.hash t)) tests in
  List.iteri
    (fun i (ni, hi) ->
      Alcotest.(check int) (ni ^ " hash is 16 hex chars") 16 (String.length hi);
      List.iteri
        (fun j (nj, hj) ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s hash apart" ni nj)
              false (String.equal hi hj))
        tagged)
    tagged

let test_hash_name_independent () =
  let sb = L.find "sb" in
  let renamed = { sb with L.name = "renamed"; description = "different words" } in
  Alcotest.(check string) "rename preserves the hash" (L.hash sb) (L.hash renamed)

let test_hash_structure_sensitive () =
  let sb = L.find "sb" in
  (* drop one instruction: different structure, different digest *)
  let truncated =
    { sb with L.programs = [ List.hd sb.L.programs; [| Memrel_machine.Instr.load ~reg:0 ~loc:0 |] ] }
  in
  Alcotest.(check bool) "instruction change changes the hash" false
    (String.equal (L.hash sb) (L.hash truncated));
  (* same programs, different initial memory *)
  let seeded = { sb with L.initial_mem = [ (0, 7) ] } in
  Alcotest.(check bool) "initial memory changes the hash" false
    (String.equal (L.hash sb) (L.hash seeded));
  (* same programs, different observation spec *)
  let observed = { sb with L.relaxed_outcome = [ ("0:r0", 0) ] } in
  Alcotest.(check bool) "observation spec changes the hash" false
    (String.equal (L.hash sb) (L.hash observed))

let test_hash_pure () =
  List.iter
    (fun (t : L.t) -> Alcotest.(check string) (t.L.name ^ " hash stable") (L.hash t) (L.hash t))
    L.all

let test_structure_counts () =
  let threads, locs, events = L.structure (L.find "sb") in
  Alcotest.(check (triple int int int)) "sb structure" (2, 2, 4) (threads, locs, events);
  let threads, locs, events = L.structure (L.find "inc") in
  Alcotest.(check (triple int int int)) "inc structure" (2, 1, 4) (threads, locs, events);
  let threads, locs, events = L.structure (L.find "iriw") in
  Alcotest.(check (triple int int int)) "iriw structure" (4, 2, 6) (threads, locs, events)

let test_corpus_table_golden () =
  let table = L.corpus_table () in
  let lines = String.split_on_char '\n' table in
  (* header + 12 rows + trailing newline *)
  Alcotest.(check int) "line count" (1 + List.length L.all + 1) (List.length lines);
  List.iter
    (fun (t : L.t) ->
      let prefix = Printf.sprintf "%-10s %-16s" t.L.name (L.hash t) in
      Alcotest.(check bool)
        (t.L.name ^ " row present with its hash")
        true
        (List.exists (fun l -> String.length l >= String.length prefix
                               && String.sub l 0 (String.length prefix) = prefix) lines))
    L.all;
  (* golden pin of one full row: format regressions fail loudly *)
  let sb = L.find "sb" in
  let expected_sb =
    Printf.sprintf "%-10s %-16s %7d %4d %6d  %s" "sb" (L.hash sb) 2 2 4 sb.L.description
  in
  Alcotest.(check bool) "sb golden row" true (List.mem expected_sb lines)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("corpus well-formed", test_corpus_well_formed);
      ("find", test_find);
      ("hash: corpus collision-free", test_hash_no_collisions);
      ("hash: name-independent", test_hash_name_independent);
      ("hash: structure-sensitive", test_hash_structure_sensitive);
      ("hash: deterministic", test_hash_pure);
      ("structure counts", test_structure_counts);
      ("litmus list golden table", test_corpus_table_golden);
      ("SC outcomes subset of weaker models", test_outcome_monotonicity);
      ("inc outcome set", test_inc_outcomes);
      ("sb outcome counts", test_sb_outcome_sets);
      ("inc+rmw single outcome", test_inc_atomic_fixes_bug);
      ("increment_n", test_increment_n);
      ("WO window parameter", test_window_parameter_matters);
    ]
  @ verdict_cases
