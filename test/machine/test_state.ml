module State = Memrel_machine.State
module I = Memrel_machine.Instr

let test_init_defaults () =
  let st = State.init ~programs:[ [| I.load ~reg:0 ~loc:0 |] ] ~initial_mem:[ (3, 7) ] in
  Alcotest.(check int) "initial binding" 7 (State.mem_read st 3);
  Alcotest.(check int) "unwritten loc reads 0" 0 (State.mem_read st 99);
  Alcotest.(check int) "register default 0" 0 (State.reg st.State.threads.(0) 5);
  Alcotest.(check bool) "nothing executed" false (State.is_executed st.State.threads.(0) 0);
  Alcotest.(check int) "next = 0" 0 (State.next_unexecuted st.State.threads.(0))

let test_program_length_cap () =
  Alcotest.check_raises "61 instructions rejected" (Invalid_argument "State.init: program too long")
    (fun () ->
      ignore (State.init ~programs:[ Array.make 61 (I.load ~reg:0 ~loc:0) ] ~initial_mem:[]))

let test_thread_done () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  Alcotest.(check bool) "empty program done" true (State.thread_done st.State.threads.(0));
  Alcotest.(check bool) "all done" true (State.all_done st)

let test_buffered_reads () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let th = { (st.State.threads.(0)) with State.fifo = [ (0, 1); (1, 5); (0, 2) ] } in
  Alcotest.(check (option int)) "newest wins" (Some 2) (State.buffered_read_fifo th 0);
  Alcotest.(check (option int)) "other loc" (Some 5) (State.buffered_read_fifo th 1);
  Alcotest.(check (option int)) "absent" None (State.buffered_read_fifo th 9);
  let th2 =
    { (st.State.threads.(0)) with State.perloc = State.IntMap.add 0 [ 1; 2 ] State.IntMap.empty }
  in
  Alcotest.(check (option int)) "perloc newest is last" (Some 2) (State.buffered_read_perloc th2 0);
  Alcotest.(check (option int)) "perloc absent" None (State.buffered_read_perloc th2 1)

let test_key_canonical () =
  (* zero-valued writes must not split states *)
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let st_explicit_zero = { st with State.mem = State.IntMap.add 0 0 st.State.mem } in
  Alcotest.(check string) "zero binding same key" (State.key st) (State.key st_explicit_zero);
  let st_one = { st with State.mem = State.IntMap.add 0 1 st.State.mem } in
  Alcotest.(check bool) "different values different keys" true
    (State.key st <> State.key st_one)

let test_key_distinguishes_buffers () =
  let st = State.init ~programs:[ [||] ] ~initial_mem:[] in
  let with_fifo =
    { st with
      State.threads = [| { (st.State.threads.(0)) with State.fifo = [ (0, 1) ] } |] }
  in
  Alcotest.(check bool) "buffer state in key" true (State.key st <> State.key with_fifo)

(* -- packed-key round-trip ---------------------------------------------- *)

let programs_of st = Array.to_list (Array.map (fun th -> th.State.prog) st.State.threads)

let roundtrip st =
  let k = State.packed_key st in
  let st' = State.of_packed_key ~programs:(programs_of st) k in
  Alcotest.(check string) "re-encodes to the same key" k (State.packed_key st');
  st'

let test_of_packed_key_handcrafted () =
  (* exercise every section: memory, executed masks, registers, both buffer
     shapes, negative values, and zero-valued bindings (normalized away) *)
  let st =
    State.init
      ~programs:[ Array.init 5 (fun i -> I.load ~reg:i ~loc:i); [| I.load ~reg:0 ~loc:0 |] ]
      ~initial_mem:[ (0, 7); (3, -42); (9, 1 lsl 40) ]
  in
  let t0 =
    { (st.State.threads.(0)) with
      State.executed = 0b10110;
      regs = State.IntMap.add 2 (-5) (State.IntMap.add 0 3 State.IntMap.empty);
      fifo = [ (0, 1); (1, 5); (0, 2) ];
    }
  in
  let t1 =
    { (st.State.threads.(1)) with
      State.perloc = State.IntMap.add 4 [ 1; 2; 3 ] (State.IntMap.add 0 [ 9 ] State.IntMap.empty);
    }
  in
  let st = { st with State.threads = [| t0; t1 |] } in
  let st' = roundtrip st in
  Alcotest.(check (option int)) "fifo order preserved (newest wins)" (Some 2)
    (State.buffered_read_fifo st'.State.threads.(0) 0);
  Alcotest.(check (option int)) "perloc order preserved" (Some 3)
    (State.buffered_read_perloc st'.State.threads.(1) 4);
  Alcotest.(check int) "negative memory value" (-42) (State.mem_read st' 3);
  Alcotest.(check int) "wide memory value" (1 lsl 40) (State.mem_read st' 9);
  Alcotest.(check int) "negative register" (-5) (State.reg st'.State.threads.(0) 2);
  (* a state with explicit zero bindings decodes to the canonical form *)
  let zeroed = { st with State.mem = State.IntMap.add 5 0 st.State.mem } in
  ignore (roundtrip zeroed)

let test_of_packed_key_random_walks () =
  (* real states: random walks of the operational semantics under every
     discipline, so buffers/registers/memory take machine-generated shapes;
     at each step the decoded state must re-encode identically AND offer
     exactly the original state's transitions *)
  let module Sem = Memrel_machine.Semantics in
  let module L = Memrel_machine.Litmus in
  let rng = Random.State.make [| 0x5EED |] in
  List.iter
    (fun d ->
      List.iter
        (fun name ->
          let t = L.find name in
          let programs = t.L.programs in
          let rec walk st steps =
            let st' = State.of_packed_key ~programs (State.packed_key st) in
            Alcotest.(check string)
              (Printf.sprintf "%s key round-trip" name)
              (State.packed_key st) (State.packed_key st');
            match Sem.transitions d st with
            | [] -> ()
            | ts ->
              let ts' = Sem.transitions d st' in
              Alcotest.(check int)
                (name ^ " decoded state has the same transitions")
                (List.length ts) (List.length ts');
              List.iter2
                (fun (l, s) (l', s') ->
                  Alcotest.(check bool) (name ^ " same labels") true (l = l');
                  Alcotest.(check string) (name ^ " same successors")
                    (State.packed_key s) (State.packed_key s'))
                ts ts';
              if steps > 0 then
                walk (snd (List.nth ts (Random.State.int rng (List.length ts)))) (steps - 1)
          in
          for _ = 1 to 20 do
            walk (L.initial_state t) 40
          done)
        [ "inc"; "sb"; "mp"; "iriw" ])
    [ Sem.Sc; Sem.Tso; Sem.Pso; Sem.Wo { window = 3 } ]

let test_of_packed_key_rejects_malformed () =
  let st =
    State.init ~programs:[ [| I.store ~loc:0 ~src:(I.Imm 1); I.load ~reg:0 ~loc:0 |] ]
      ~initial_mem:[ (0, 5) ]
  in
  let programs = programs_of st in
  let k = State.packed_key st in
  let expect_reject label s =
    match State.of_packed_key ~programs s with
    | _ -> Alcotest.failf "%s: malformed key decoded" label
    | exception Invalid_argument _ -> ()
  in
  (* every strict prefix is truncated; trailing bytes are trailing *)
  for i = 0 to String.length k - 1 do
    expect_reject (Printf.sprintf "prefix %d" i) (String.sub k 0 i)
  done;
  expect_reject "trailing byte" (k ^ "\x00");
  expect_reject "unterminated varint" "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff";
  (* executed mask outside the 2-instruction program *)
  let buf = Buffer.create 16 in
  let add_varint n =
    (* mirror the encoder's zigzag varint *)
    let u = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
    while !u land lnot 0x7f <> 0 do
      Buffer.add_char buf (Char.chr (0x80 lor (!u land 0x7f)));
      u := !u lsr 7
    done;
    Buffer.add_char buf (Char.chr !u)
  in
  add_varint 0 (* no memory bindings *);
  add_varint 16 (* executed: bit 4 of a 2-instruction program *);
  add_varint 0; add_varint 0; add_varint 0;
  expect_reject "executed mask out of range" (Buffer.contents buf)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("init defaults", test_init_defaults);
      ("program length cap", test_program_length_cap);
      ("thread_done", test_thread_done);
      ("buffered reads", test_buffered_reads);
      ("canonical keys", test_key_canonical);
      ("keys distinguish buffers", test_key_distinguishes_buffers);
      ("of_packed_key round-trips handcrafted states", test_of_packed_key_handcrafted);
      ("of_packed_key round-trips random walks", test_of_packed_key_random_walks);
      ("of_packed_key rejects malformed keys", test_of_packed_key_rejects_malformed);
    ]
