let () =
  Alcotest.run "memrel_prob"
    [
      ("bigint", Test_bigint.suite);
      ("rational", Test_rational.suite);
      ("rng", Test_rng.suite);
      ("par", Test_par.suite);
      ("budget", Test_budget.suite);
      ("snapshot", Test_snapshot.suite);
      ("combinatorics", Test_combinatorics.suite);
      ("fastpath", Test_fastpath.suite);
      ("stats", Test_stats.suite);
      ("series", Test_series.suite);
      ("logspace", Test_logspace.suite);
      ("interval", Test_interval.suite);
      ("dist", Test_dist.suite);
    ]
