module Snapshot = Memrel_prob.Snapshot

let tmp_file () = Filename.temp_file "memrel_snap" ".bin"

let with_tmp f =
  let file = tmp_file () in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let read_all file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all file s =
  let oc = open_out_bin file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let err = Alcotest.of_pp (fun fmt e -> Format.pp_print_string fmt (Snapshot.error_to_string e))

let check_read name expected file ~tag =
  let got =
    match Snapshot.read ~file ~tag with Ok _ -> Ok () | Error e -> Error e
  in
  Alcotest.(check (result unit err)) name expected got

let test_round_trip () =
  with_tmp @@ fun file ->
  let payload = String.init 257 (fun i -> Char.chr (i land 0xff)) in
  (match Snapshot.write ~file ~tag:"test/tag" payload with
   | Ok () -> ()
   | Error e -> Alcotest.failf "write: %s" (Snapshot.error_to_string e));
  match Snapshot.read ~file ~tag:"test/tag" with
  | Ok p -> Alcotest.(check string) "payload survives" payload p
  | Error e -> Alcotest.failf "read: %s" (Snapshot.error_to_string e)

let test_empty_payload () =
  with_tmp @@ fun file ->
  Alcotest.(check bool) "write ok" true (Snapshot.write ~file ~tag:"t" "" = Ok ());
  Alcotest.(check bool) "empty payload round-trips" true
    (Snapshot.read ~file ~tag:"t" = Ok "")

let test_wrong_magic () =
  with_tmp @@ fun file ->
  write_all file "NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxx";
  check_read "bad magic rejected" (Error Snapshot.Not_a_snapshot) file ~tag:"t"

let test_short_file () =
  with_tmp @@ fun file ->
  write_all file "MREL";
  check_read "shorter than the magic" (Error Snapshot.Not_a_snapshot) file ~tag:"t"

let test_wrong_version () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"t" "payload" with Ok () -> () | Error _ -> assert false);
  let s = Bytes.of_string (read_all file) in
  (* bump the big-endian u32 version at offset 8 *)
  Bytes.set s 11 (Char.chr (Char.code (Bytes.get s 11) + 1));
  write_all file (Bytes.to_string s);
  check_read "version mismatch rejected"
    (Error
       (Snapshot.Version_mismatch
          { expected = Snapshot.current_version; found = Snapshot.current_version + 1 }))
    file ~tag:"t"

let test_wrong_tag () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"engine-a" "payload" with Ok () -> () | Error _ -> assert false);
  check_read "tag mismatch rejected"
    (Error (Snapshot.Tag_mismatch { expected = "engine-b"; found = "engine-a" }))
    file ~tag:"engine-b"

let test_truncated () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"t" "a long enough payload" with
   | Ok () -> ()
   | Error _ -> assert false);
  let s = read_all file in
  write_all file (String.sub s 0 (String.length s - 5));
  check_read "truncated payload rejected" (Error Snapshot.Truncated) file ~tag:"t"

let test_trailing_garbage () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"t" "payload" with Ok () -> () | Error _ -> assert false);
  write_all file (read_all file ^ "garbage");
  check_read "trailing bytes rejected" (Error Snapshot.Truncated) file ~tag:"t"

let test_corrupted_payload () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"t" "payload payload payload" with
   | Ok () -> ()
   | Error _ -> assert false);
  let s = Bytes.of_string (read_all file) in
  (* flip one bit inside the payload (the last byte of the file) *)
  let last = Bytes.length s - 1 in
  Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 1));
  write_all file (Bytes.to_string s);
  check_read "bit flip caught by CRC" (Error Snapshot.Crc_mismatch) file ~tag:"t"

let test_missing_file () =
  match Snapshot.read ~file:"/nonexistent/memrel.snap" ~tag:"t" with
  | Error (Snapshot.Io _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected an Io error"

let test_overwrite_is_atomic_replacement () =
  with_tmp @@ fun file ->
  (match Snapshot.write ~file ~tag:"t" "first" with Ok () -> () | Error _ -> assert false);
  (match Snapshot.write ~file ~tag:"t" "second" with Ok () -> () | Error _ -> assert false);
  Alcotest.(check bool) "latest payload wins" true (Snapshot.read ~file ~tag:"t" = Ok "second");
  Alcotest.(check bool) "no tmp file left behind" false (Sys.file_exists (file ^ ".tmp"))

let test_failed_write_cleans_tmp () =
  (* inject a rename failure: the destination path is an existing
     directory, so the payload is fully written to file.tmp and the final
     rename fails. The write must report Io AND remove the temporary. *)
  let dir = Filename.temp_file "memrel_snap" ".dir" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      (match Snapshot.write ~file:dir ~tag:"t" "payload" with
       | Error (Snapshot.Io _) -> ()
       | Ok () -> Alcotest.fail "write onto a directory unexpectedly succeeded"
       | Error e -> Alcotest.failf "expected Io, got %s" (Snapshot.error_to_string e));
      Alcotest.(check bool) "tmp file removed after the failed rename" false
        (Sys.file_exists (dir ^ ".tmp")))

let test_unwritable_target_cleans_tmp () =
  (* the tmp file itself cannot be created (missing parent): no residue *)
  let missing = Filename.concat (Filename.get_temp_dir_name ()) "memrel_snap_missing_dir" in
  let file = Filename.concat missing "snap.bin" in
  (match Snapshot.write ~file ~tag:"t" "payload" with
   | Error (Snapshot.Io _) -> ()
   | Ok () -> Alcotest.fail "write into a missing directory unexpectedly succeeded"
   | Error e -> Alcotest.failf "expected Io, got %s" (Snapshot.error_to_string e));
  Alcotest.(check bool) "no tmp residue" false (Sys.file_exists (file ^ ".tmp"))

let test_crc32_known_vector () =
  (* the standard IEEE check value *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926 (Snapshot.crc32 "123456789");
  Alcotest.(check int) "crc32(\"\")" 0 (Snapshot.crc32 "")

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("payload round-trips", test_round_trip);
      ("empty payload round-trips", test_empty_payload);
      ("wrong magic rejected", test_wrong_magic);
      ("short file rejected", test_short_file);
      ("wrong version rejected", test_wrong_version);
      ("wrong tag rejected", test_wrong_tag);
      ("truncated file rejected", test_truncated);
      ("trailing garbage rejected", test_trailing_garbage);
      ("corrupted payload fails CRC", test_corrupted_payload);
      ("missing file is an Io error", test_missing_file);
      ("overwrite replaces atomically", test_overwrite_is_atomic_replacement);
      ("failed rename removes the tmp file", test_failed_write_cleans_tmp);
      ("unwritable target leaves no tmp residue", test_unwritable_target_cleans_tmp);
      ("crc32 matches the IEEE check value", test_crc32_known_vector);
    ]
