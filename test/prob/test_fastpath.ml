(* Differential tests pinning the fixnum fast path to the seed
   implementation: Bigint vs Bigint.Reference and Rational vs
   Rational.Reference on randomized mixed small / boundary / multi-limb
   operands from the deterministic Rng, plus pinned exact values for the
   paper's Figure 1/2 DP outputs so numeric results stay bit-identical to
   the seed across representation changes. *)

module B = Memrel_prob.Bigint
module BR = Memrel_prob.Bigint.Reference
module Q = Memrel_prob.Rational
module QRef = Memrel_prob.Rational.Reference
module Rng = Memrel_prob.Rng
module DQ = Memrel_settling.Exact_dp_q
module JQ = Memrel_settling.Joint_dp_q
module SE = Memrel_shift.Exact

let fail_at what i a b fast reference =
  Alcotest.fail
    (Printf.sprintf "%s diverges at %d on (%s, %s): fast %s, reference %s" what i a b fast
       reference)

(* one decimal operand string drawn from the mixed regime: mostly
   native-fitting, with sign/boundary/multi-limb cases mixed in *)
let operand rng =
  match Rng.int rng 12 with
  | 0 ->
    (* multi-limb: 20-80 digits *)
    let k = 20 + Rng.int rng 61 in
    let s = String.init k (fun i -> Char.chr (Char.code '0' + if i = 0 then 1 + Rng.int rng 9 else Rng.int rng 10)) in
    if Rng.bool rng then "-" ^ s else s
  | 1 ->
    (* native boundary: max_int - k or min_int + k *)
    if Rng.bool rng then string_of_int (max_int - Rng.int rng 3)
    else string_of_int (min_int + Rng.int rng 3)
  | 2 ->
    (* just past the native boundary: |v| in [2^62, 2^62 + 2] *)
    let v = BR.add (BR.of_int max_int) (BR.of_int (1 + Rng.int rng 2)) in
    BR.to_string (if Rng.bool rng then BR.neg v else v)
  | 3 -> string_of_int (Rng.int rng 3 - 1) (* -1, 0, 1 *)
  | 4 -> string_of_int ((1 lsl Rng.int rng 62) * if Rng.bool rng then 1 else -1)
  | _ ->
    (* the DP regime: small *)
    string_of_int (Rng.int rng 2_000_001 - 1_000_000)

let test_bigint_differential () =
  let rng = Rng.create 0x1517 in
  for i = 1 to 30_000 do
    let sa = operand rng and sb = operand rng in
    let a = B.of_string sa and b = B.of_string sb in
    let ra = BR.of_string sa and rb = BR.of_string sb in
    let check what fast reference =
      if not (String.equal fast reference) then fail_at what i sa sb fast reference
    in
    check "to_string a" (B.to_string a) (BR.to_string ra);
    check "add" (B.to_string (B.add a b)) (BR.to_string (BR.add ra rb));
    check "sub" (B.to_string (B.sub a b)) (BR.to_string (BR.sub ra rb));
    check "mul" (B.to_string (B.mul a b)) (BR.to_string (BR.mul ra rb));
    check "gcd" (B.to_string (B.gcd a b)) (BR.to_string (BR.gcd ra rb));
    check "succ" (B.to_string (B.succ a)) (BR.to_string (BR.succ ra));
    check "pred" (B.to_string (B.pred a)) (BR.to_string (BR.pred ra));
    check "neg/abs" (B.to_string (B.neg (B.abs a))) (BR.to_string (BR.neg (BR.abs ra)));
    if not (B.is_zero b) then begin
      let q, r = B.divmod a b and rq, rr = BR.divmod ra rb in
      check "div" (B.to_string q) (BR.to_string rq);
      check "rem" (B.to_string r) (BR.to_string rr)
    end;
    let k = Rng.int rng 70 in
    check "shift_left" (B.to_string (B.shift_left a k)) (BR.to_string (BR.shift_left ra k));
    check "shift_right" (B.to_string (B.shift_right a k)) (BR.to_string (BR.shift_right ra k));
    if Stdlib.compare (B.compare a b) (BR.compare ra rb) <> 0 then
      fail_at "compare" i sa sb
        (string_of_int (B.compare a b))
        (string_of_int (BR.compare ra rb));
    (match (B.to_int_opt a, BR.to_int_opt ra) with
     | Some x, Some y when x = y -> ()
     | None, None -> ()
     | _ -> fail_at "to_int_opt" i sa sb "<opt>" "<opt>");
    if B.num_bits a <> BR.num_bits ra then
      fail_at "num_bits" i sa sb (string_of_int (B.num_bits a)) (string_of_int (BR.num_bits ra))
  done

let test_bigint_pow_differential () =
  let rng = Rng.create 0x9e37 in
  for i = 1 to 2_000 do
    let sa = string_of_int (Rng.int rng 20_001 - 10_000) in
    let e = Rng.int rng 12 in
    let fast = B.to_string (B.pow (B.of_string sa) e) in
    let reference = BR.to_string (BR.pow (BR.of_string sa) e) in
    if not (String.equal fast reference) then fail_at "pow" i sa (string_of_int e) fast reference
  done

let test_bigint_edge_cases () =
  let check msg expected actual = Alcotest.(check string) msg expected (B.to_string actual) in
  (* min_int is excluded from the small representation: all of these must
     promote/demote without wrapping *)
  check "of_int min_int" (string_of_int min_int) (B.of_int min_int);
  check "abs min_int" (BR.to_string (BR.abs (BR.of_int min_int))) (B.abs (B.of_int min_int));
  check "neg min_int" (BR.to_string (BR.neg (BR.of_int min_int))) (B.neg (B.of_int min_int));
  check "max_int + 1" (BR.to_string (BR.succ (BR.of_int max_int))) (B.succ (B.of_int max_int));
  check "min_int - 1" (BR.to_string (BR.pred (BR.of_int min_int))) (B.pred (B.of_int min_int));
  check "(max_int+1) - 1 demotes" (string_of_int max_int)
    (B.pred (B.succ (B.of_int max_int)));
  check "min_int / -1" (BR.to_string (BR.div (BR.of_int min_int) (BR.of_int (-1))))
    (B.div (B.of_int min_int) (B.of_int (-1)));
  check "min_int * -1" (BR.to_string (BR.mul (BR.of_int min_int) (BR.of_int (-1))))
    (B.mul (B.of_int min_int) (B.of_int (-1)));
  Alcotest.(check (option int)) "to_int_opt max_int" (Some max_int)
    (B.to_int_opt (B.of_int max_int));
  (* min_int never round-trips (matches the seed behaviour: 63 magnitude
     bits exceed the 62-bit conversion guard) *)
  Alcotest.(check (option int)) "to_int_opt min_int" None (B.to_int_opt (B.of_int min_int));
  Alcotest.(check (option int)) "to_int_opt 2^62" None (B.to_int_opt (B.pow2 62));
  Alcotest.(check int) "num_bits max_int" 62 (B.num_bits (B.of_int max_int));
  Alcotest.check_raises "of_string empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "of_string junk" (Invalid_argument "Bigint.of_string: invalid digit")
    (fun () -> ignore (B.of_string "12x3"));
  Alcotest.check_raises "of_string lone sign" (Invalid_argument "Bigint.of_string: no digits")
    (fun () -> ignore (B.of_string "-"));
  Alcotest.check_raises "pow negative" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

(* one rational from the DP regime: dyadic denominators dominate, 3^k and
   arbitrary denominators keep the gcd paths honest *)
let rational_parts rng =
  let num = Rng.int rng 8_193 - 4_096 in
  let den =
    match Rng.int rng 6 with
    | 0 -> int_of_float (3.0 ** float_of_int (1 + Rng.int rng 8))
    | 1 -> 1 + Rng.int rng 10_000
    | _ -> 1 lsl Rng.int rng 12
  in
  (num, den)

let test_rational_differential () =
  let rng = Rng.create 0x2b7e in
  for i = 1 to 20_000 do
    let na, da = rational_parts rng and nb, db = rational_parts rng in
    let a = Q.of_ints na da and b = Q.of_ints nb db in
    let ra = QRef.of_ints na da and rb = QRef.of_ints nb db in
    let ctx = Printf.sprintf "%d/%d" na da and ctx2 = Printf.sprintf "%d/%d" nb db in
    let check what fast reference =
      if not (String.equal fast reference) then fail_at what i ctx ctx2 fast reference
    in
    check "q.to_string" (Q.to_string a) (QRef.to_string ra);
    check "q.add" (Q.to_string (Q.add a b)) (QRef.to_string (QRef.add ra rb));
    check "q.sub" (Q.to_string (Q.sub a b)) (QRef.to_string (QRef.sub ra rb));
    check "q.mul" (Q.to_string (Q.mul a b)) (QRef.to_string (QRef.mul ra rb));
    if not (Q.is_zero b) then
      check "q.div" (Q.to_string (Q.div a b)) (QRef.to_string (QRef.div ra rb));
    check "q.pow" (Q.to_string (Q.pow a 3)) (QRef.to_string (QRef.pow ra 3));
    if Stdlib.compare (Q.compare a b) (QRef.compare ra rb) <> 0 then
      fail_at "q.compare" i ctx ctx2
        (string_of_int (Q.compare a b))
        (string_of_int (QRef.compare ra rb))
  done

let test_rational_dyadic_differential () =
  (* of_float_dyadic and to_float agree with the seed bit for bit *)
  let rng = Rng.create 0x6a09 in
  for i = 1 to 5_000 do
    let f = Float.ldexp (Rng.float rng -. 0.5) (Rng.int rng 40 - 20) in
    let fast = Q.to_string (Q.of_float_dyadic f) in
    let reference = QRef.to_string (QRef.of_float_dyadic f) in
    if not (String.equal fast reference) then
      fail_at "of_float_dyadic" i (string_of_float f) "" fast reference;
    let rf = Q.to_float (Q.of_float_dyadic f) and rr = QRef.to_float (QRef.of_float_dyadic f) in
    if not (Float.equal rf rr) then
      fail_at "to_float" i (string_of_float f) "" (string_of_float rf) (string_of_float rr)
  done

(* -- pinned Figure 1/2 exact DP outputs (bit-identical to the seed) ----- *)

let q_pin msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_pinned_settling_dp () =
  let pmf = DQ.gamma_pmf (DQ.tso ()) ~m:8 in
  List.iter
    (fun (g, expected) -> q_pin (Printf.sprintf "tso m=8 gamma=%d" g) expected (List.assoc g pmf))
    [
      (0, "43691/65536");
      (1, "998665/4194304");
      (2, "4687189/67108864");
      (3, "5058537/268435456");
      (4, "41021/8388608");
      (5, "334135/268435456");
      (6, "20987/67108864");
      (7, "319/4194304");
      (8, "1/65536");
    ];
  let wo_pmf = DQ.gamma_pmf (DQ.wo ()) ~m:8 in
  List.iter
    (fun (g, expected) -> q_pin (Printf.sprintf "wo m=8 gamma=%d" g) expected (List.assoc g wo_pmf))
    [ (0, "43691/65536"); (1, "10923/65536"); (2, "2731/32768"); (3, "683/16384") ];
  q_pin "bottom_st tso m=8" "21845/32768" (DQ.bottom_st_probability (DQ.tso ()) ~m:8)

let test_pinned_shift_exact () =
  q_pin "figure-2 gammas (3,2,5)" "17/24576" (SE.disjoint_probability [| 3; 2; 5 |]);
  q_pin "gammas (2,2)" "1/6" (SE.disjoint_probability [| 2; 2 |]);
  q_pin "gammas (1,2,3,4)" "719/66060288" (SE.disjoint_probability [| 1; 2; 3; 4 |]);
  q_pin "geom q=3/4 (2,2,2)" "59049/530432"
    (SE.disjoint_probability_geom ~q:(Q.of_ints 3 4) [| 2; 2; 2 |]);
  q_pin "c 5" "32768/9765" (SE.c 5);
  q_pin "c 8" "68719476736/19923090075" (SE.c 8)

let test_pinned_combinatorics () =
  let module C = Memrel_prob.Combinatorics in
  Alcotest.(check string) "phi(20,5,8)" "46" (B.to_string (C.partitions_bounded 20 5 8));
  Alcotest.(check string) "phi(60,10,12)" "9160" (B.to_string (C.partitions_bounded 60 10 12));
  Alcotest.(check string) "C(64,28)" "1118770292985239888" (B.to_string (C.binomial 64 28))

let test_stats_counters () =
  B.reset_stats ();
  Q.reset_stats ();
  let s0 = B.stats () in
  Alcotest.(check int) "reset zeroes small" 0 s0.B.small_ops;
  Alcotest.(check (float 0.0)) "empty hit rate is 1" 1.0 (B.small_hit_rate s0);
  ignore (B.add (B.of_int 1) (B.of_int 2));
  ignore (B.mul (B.of_int max_int) (B.of_int max_int));
  let s1 = B.stats () in
  Alcotest.(check bool) "small op counted" true (s1.B.small_ops >= 1);
  Alcotest.(check bool) "promotion counted" true (s1.B.promotions >= 1);
  let rate = B.small_hit_rate s1 in
  Alcotest.(check bool) "hit rate in [0,1]" true (rate >= 0.0 && rate <= 1.0);
  ignore (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  ignore (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 2));
  let r = Q.stats () in
  Alcotest.(check bool) "rational adds counted" true (r.Q.adds >= 1);
  Alcotest.(check bool) "rational muls counted" true (r.Q.muls >= 1);
  Alcotest.(check bool) "coprime add seen" true (r.Q.add_coprime >= 1)

let test_joint_dp_q_reference_agreement () =
  (* the exact joint DP agrees with its Reference-instantiated twin *)
  let module JR = JQ.Make (QRef) in
  let fast =
    Q.to_string
      (JQ.expect_product ~b_max:5 ~s:Q.half Memrel_memmodel.Model.Total_store_order ~m:6 ~n:2)
  in
  let reference =
    QRef.to_string
      (JR.expect_product ~b_max:5 ~s:QRef.half Memrel_memmodel.Model.Total_store_order ~m:6
         ~n:2)
  in
  Alcotest.(check string) "joint_dp_q fast = reference" reference fast

let suite =
  [
    Alcotest.test_case "bigint differential vs reference" `Quick test_bigint_differential;
    Alcotest.test_case "bigint pow differential" `Quick test_bigint_pow_differential;
    Alcotest.test_case "bigint boundary edge cases" `Quick test_bigint_edge_cases;
    Alcotest.test_case "rational differential vs reference" `Quick test_rational_differential;
    Alcotest.test_case "rational dyadic differential" `Quick test_rational_dyadic_differential;
    Alcotest.test_case "pinned settling DP values" `Quick test_pinned_settling_dp;
    Alcotest.test_case "pinned shift exact values" `Quick test_pinned_shift_exact;
    Alcotest.test_case "pinned combinatorics values" `Quick test_pinned_combinatorics;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "joint_dp_q fast = reference" `Quick test_joint_dp_q_reference_agreement;
  ]
