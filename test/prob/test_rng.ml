module Rng = Memrel_prob.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after independent use" false (Int64.equal va vb)

let test_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check int) "split streams unrelated" 0 !same

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 10_000 do
    let v = Rng.int rng 8 in
    (* power-of-two path *)
    if v < 0 || v >= 8 then Alcotest.fail "out of range (pow2)"
  done

let test_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create 5 in
  let n = 60_000 and k = 6 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let v = Rng.int rng k in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-squared with 5 dof: 99.9% critical value ~ 20.5 *)
  let expected = float_of_int n /. float_of_int k in
  let chi2 =
    Array.fold_left (fun acc c -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected)) 0.0 counts
  in
  Alcotest.(check bool) (Printf.sprintf "chi2=%.2f < 20.5" chi2) true (chi2 < 20.5)

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if not (f >= 0.0 && f < 1.0) then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  Alcotest.(check (float 0.01)) "mean ~ 0.5" 0.5 (!sum /. float_of_int n)

let test_geometric_half_distribution () =
  let rng = Rng.create 17 in
  let n = 200_000 in
  let counts = Hashtbl.create 32 in
  for _ = 1 to n do
    let k = Rng.geometric_half rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* Pr[k] = 2^-(k+1): check the first few cells within 3 sigma *)
  for k = 0 to 4 do
    let p = Float.pow 2.0 (float_of_int (-(k + 1))) in
    let c = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) in
    let mean = p *. float_of_int n in
    let sigma = Float.sqrt (mean *. (1.0 -. p)) in
    Alcotest.(check bool)
      (Printf.sprintf "cell %d within 4 sigma" k)
      true
      (Float.abs (c -. mean) < 4.0 *. sigma)
  done

let test_geometric_general () =
  let rng = Rng.create 19 in
  let n = 100_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.25
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  Alcotest.(check (float 0.1)) "mean ~ 3" 3.0 (float_of_int !sum /. float_of_int n);
  Alcotest.(check int) "p = 1 degenerate" 0 (Rng.geometric rng 1.0);
  Alcotest.check_raises "p = 0 invalid" (Invalid_argument "Rng.geometric: p must be in (0,1]")
    (fun () -> ignore (Rng.geometric rng 0.0))

let test_bernoulli_rate () =
  let rng = Rng.create 23 in
  let n = 100_000 in
  let c = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr c
  done;
  Alcotest.(check (float 0.01)) "rate ~ 0.3" 0.3 (float_of_int !c /. float_of_int n)

let test_bernoulli_scaled_equivalence () =
  (* the integer-threshold draw must replicate [bernoulli]'s verdict on the
     same generator state, bit-for-bit, across the probability range —
     including the endpoints and subnormal-adjacent values *)
  List.iter
    (fun p ->
      let threshold = Rng.scale_probability p in
      let a = Rng.create 77 and b = Rng.create 77 in
      for i = 1 to 2_000 do
        let want = Rng.bernoulli a p and got = Rng.bernoulli_scaled b threshold in
        Alcotest.(check bool) (Printf.sprintf "p=%h draw %d" p i) want got
      done)
    [ 0.0; 1e-300; 1e-9; 0.1; 0.25; 0.5; 2.0 /. 3.0; 0.75; 0.999999; 1.0 ]

let test_scale_probability_edges () =
  Alcotest.(check int) "p=0" 0 (Rng.scale_probability 0.0);
  Alcotest.(check int) "p=1" (1 lsl 53) (Rng.scale_probability 1.0);
  Alcotest.(check int) "p=0.5" (1 lsl 52) (Rng.scale_probability 0.5);
  Alcotest.(check bool) "tiny p still positive" true (Rng.scale_probability 1e-300 > 0);
  List.iter
    (fun p ->
      match Rng.scale_probability p with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "p=%h: expected Invalid_argument" p)
    [ -0.1; 1.5; Float.nan; Float.infinity ]

let test_shuffle_permutes () =
  let rng = Rng.create 29 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 (fun i -> i)) sorted

let test_shuffle_uniform_pairs () =
  (* for a 3-element array, each of the 6 orders should appear ~1/6 *)
  let rng = Rng.create 31 in
  let counts = Hashtbl.create 6 in
  let n = 60_000 in
  for _ = 1 to n do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle_in_place rng a;
    let k = (a.(0) * 100) + (a.(1) * 10) + a.(2) in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  Alcotest.(check int) "all 6 orders seen" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "roughly uniform" true
        (Float.abs (float_of_int c -. (float_of_int n /. 6.0)) < 500.0))
    counts

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("determinism", test_determinism);
      ("seed sensitivity", test_seed_sensitivity);
      ("copy independence", test_copy_independent);
      ("split independence", test_split);
      ("int bounds", test_int_bounds);
      ("int invalid bound", test_int_invalid);
      ("int uniformity (chi2)", test_int_uniformity);
      ("float range", test_float_range);
      ("float mean", test_float_mean);
      ("geometric_half pmf", test_geometric_half_distribution);
      ("geometric general", test_geometric_general);
      ("bernoulli rate", test_bernoulli_rate);
      ("bernoulli_scaled = bernoulli (bitwise)", test_bernoulli_scaled_equivalence);
      ("scale_probability edges", test_scale_probability_edges);
      ("shuffle permutes", test_shuffle_permutes);
      ("shuffle uniform", test_shuffle_uniform_pairs);
    ]
