module Rng = Memrel_prob.Rng
module Par = Memrel_prob.Par

(* a deliberately order-sensitive accumulator: float sum of Rng.float draws;
   any schedule change shows up in the low bits *)
let float_sum ?jobs ?chunk ~trials seed =
  Par.sum_float ?jobs ?chunk ~trials (fun r -> Rng.float r) (Rng.create seed)

let test_run_jobs_invariant () =
  (* bit-identical across jobs, including trial counts that don't divide the
     chunk size and chunk counts below/above the worker count *)
  List.iter
    (fun (trials, chunk) ->
      let reference = float_sum ~jobs:1 ~chunk ~trials 42 in
      List.iter
        (fun jobs ->
          let v = float_sum ~jobs ~chunk ~trials 42 in
          Alcotest.(check bool)
            (Printf.sprintf "trials=%d chunk=%d jobs=%d: %h = %h" trials chunk jobs v reference)
            true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float reference)))
        [ 2; 3; 4; 7 ])
    [ (10_000, 256); (1000, 999); (5, 2); (4096, 4096); (100, 4096) ]

let test_run_default_jobs_matches_one () =
  let a = float_sum ~trials:20_000 7 in
  let b = float_sum ~jobs:1 ~trials:20_000 7 in
  Alcotest.(check bool) "default jobs = jobs:1 bitwise" true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let test_run_advances_caller_rng_uniformly () =
  (* the engine must consume exactly one bits64 draw from the caller's
     generator, regardless of jobs/trials/chunk, so downstream draws stay
     reproducible *)
  let next_after f =
    let rng = Rng.create 11 in
    ignore (f rng);
    Rng.bits64 rng
  in
  let reference = next_after (fun rng -> ignore (Rng.bits64 rng)) in
  List.iter
    (fun (jobs, trials, chunk) ->
      let v =
        next_after (fun rng ->
            ignore (Par.count ~jobs ~chunk ~trials (fun r -> Rng.bool r) rng))
      in
      Alcotest.(check int64)
        (Printf.sprintf "jobs=%d trials=%d chunk=%d" jobs trials chunk)
        reference v)
    [ (1, 100, 64); (4, 100, 64); (4, 10_000, 256); (2, 3, 1) ]

let test_count_matches_manual () =
  (* jobs:1 chunked count equals a hand-rolled loop over the same substreams *)
  let trials = 10_000 and chunk = 512 in
  let got = Par.count ~jobs:3 ~chunk ~trials (fun r -> Rng.bernoulli r 0.3) (Rng.create 5) in
  let base = Rng.bits64 (Rng.create 5) in
  let expected = ref 0 in
  let n_chunks = (trials + chunk - 1) / chunk in
  for id = 0 to n_chunks - 1 do
    let r = Rng.substream base id in
    for _ = 1 to min chunk (trials - (id * chunk)) do
      if Rng.bernoulli r 0.3 then incr expected
    done
  done;
  Alcotest.(check int) "count = manual chunk loop" !expected got;
  (* and the rate is what it should be *)
  Alcotest.(check bool) "rate ~ 0.3" true
    (Float.abs ((float_of_int got /. float_of_int trials) -. 0.3) < 0.02)

let test_histogram_accumulator_merge () =
  (* the estimate-style accumulator (hashtable + merge by addition) must be
     jobs-invariant and conserve mass *)
  let run jobs =
    Par.run ~jobs ~chunk:128 ~trials:30_000
      ~init:(fun () -> Hashtbl.create 16)
      ~accumulate:(fun h r ->
        let k = Rng.geometric_half r in
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k));
        h)
      ~merge:(fun a b ->
        Hashtbl.iter
          (fun k c -> Hashtbl.replace a k (c + Option.value ~default:0 (Hashtbl.find_opt a k)))
          b;
        a)
      (Rng.create 13)
  in
  let sorted h =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
  in
  let h1 = sorted (run 1) and h4 = sorted (run 4) in
  Alcotest.(check (list (pair int int))) "histogram jobs:1 = jobs:4" h1 h4;
  Alcotest.(check int) "mass conserved" 30_000 (List.fold_left (fun a (_, c) -> a + c) 0 h1)

let test_substream_deterministic_and_distinct () =
  let a = Rng.substream 99L 5 and b = Rng.substream 99L 5 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same (base, i), same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (* adjacent indices (the parallel engine's hot case) share no outputs *)
  let a = Rng.substream 99L 5 and b = Rng.substream 99L 6 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check int) "adjacent substreams unrelated" 0 !same

let test_substream_uniformity () =
  (* pooled draws across many substreams must still be uniform — the same
     chi-squared check Rng.int passes for a single stream *)
  let k = 6 and per_stream = 1000 and streams = 60 in
  let counts = Array.make k 0 in
  for i = 0 to streams - 1 do
    let r = Rng.substream 2024L i in
    for _ = 1 to per_stream do
      let v = Rng.int r k in
      counts.(v) <- counts.(v) + 1
    done
  done;
  let n = per_stream * streams in
  let expected = float_of_int n /. float_of_int k in
  let chi2 =
    Array.fold_left
      (fun acc c -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected))
      0.0 counts
  in
  (* 5 dof, 99.9% critical value ~ 20.5 *)
  Alcotest.(check bool) (Printf.sprintf "chi2=%.2f < 20.5" chi2) true (chi2 < 20.5)

let test_map_list_order_and_jobs () =
  let l = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "map_list jobs:1 = List.map" (List.map f l)
    (Par.map_list ~jobs:1 f l);
  Alcotest.(check (list int)) "map_list jobs:4 preserves order" (List.map f l)
    (Par.map_list ~jobs:4 f l);
  Alcotest.(check (list int)) "empty list" [] (Par.map_list ~jobs:4 f [])

let test_map_array_exception_propagates () =
  Alcotest.check_raises "worker exception resurfaces" Exit (fun () ->
      ignore (Par.map_array ~jobs:2 (fun x -> if x = 3 then raise Exit else x) [| 1; 2; 3; 4 |]))

let test_guards () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "trials 0" (Invalid_argument "Par.run: trials must be positive")
    (fun () -> ignore (Par.count ~trials:0 (fun _ -> true) rng));
  Alcotest.check_raises "chunk 0" (Invalid_argument "Par.run: chunk must be positive")
    (fun () -> ignore (Par.count ~chunk:0 ~trials:10 (fun _ -> true) rng));
  Alcotest.(check bool) "default_jobs >= 1" true (Par.default_jobs () >= 1);
  (* explicit nonsensical jobs values are rejected, not silently clamped *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs %d" jobs)
        (Invalid_argument "Par: jobs must be positive")
        (fun () -> ignore (Par.count ~jobs ~trials:10 (fun _ -> true) rng)))
    [ 0; -1; -7 ];
  Alcotest.check_raises "map_array jobs 0" (Invalid_argument "Par: jobs must be positive")
    (fun () -> ignore (Par.map_array ~jobs:0 Fun.id [| 1 |]));
  Alcotest.check_raises "governed checkpoint_every 0"
    (Invalid_argument "Par.run_governed: checkpoint_every must be positive") (fun () ->
      ignore (Par.count_governed ~checkpoint_every:0 ~trials:10 (fun _ -> true) rng));
  Alcotest.check_raises "governed max_retries -1"
    (Invalid_argument "Par.run_governed: max_retries must be nonnegative") (fun () ->
      ignore (Par.count_governed ~max_retries:(-1) ~trials:10 (fun _ -> true) rng))

(* -- resource-governed execution ---------------------------------------- *)

module Budget = Memrel_prob.Budget

let bits f = Int64.bits_of_float f

let float_sum_governed ?jobs ?chunk ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries
    ?fault ~trials seed =
  Par.run_governed ?jobs ?chunk ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries
    ?fault ~trials
    ~init:(fun () -> 0.0)
    ~accumulate:(fun acc r -> acc +. Rng.float r)
    ~merge:( +. ) (Rng.create seed)

let with_tmp f =
  let file = Filename.temp_file "memrel_par" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let test_governed_equals_plain_run () =
  (* with no budget/fault/checkpoint, the governed scheduler (dynamic chunk
     claiming) must reproduce the static-stride hot path bit-for-bit, at
     every jobs count *)
  List.iter
    (fun (trials, chunk) ->
      let reference = float_sum ~jobs:1 ~chunk ~trials 42 in
      List.iter
        (fun jobs ->
          let g = float_sum_governed ~jobs ~chunk ~trials 42 in
          Alcotest.(check bool)
            (Printf.sprintf "trials=%d chunk=%d jobs=%d" trials chunk jobs)
            true
            (Int64.equal (bits g.Par.value) (bits reference));
          Alcotest.(check bool) "complete" true (g.Par.exhausted = None);
          Alcotest.(check int) "all trials done" trials g.Par.run_stats.Par.trials_done;
          Alcotest.(check int) "no retries" 0 g.Par.run_stats.Par.retries)
        [ 1; 2; 4 ])
    [ (10_000, 256); (1000, 999); (5, 2) ]

let test_governed_advances_caller_rng_uniformly () =
  let next_after f =
    let rng = Rng.create 11 in
    f rng;
    Rng.bits64 rng
  in
  let reference = next_after (fun rng -> ignore (Rng.bits64 rng)) in
  let v =
    next_after (fun rng ->
        ignore (Par.count_governed ~jobs:2 ~chunk:64 ~trials:1000 (fun r -> Rng.bool r) rng))
  in
  Alcotest.(check int64) "one draw, like run" reference v

let test_work_cap_partial () =
  (* a work cap of k chunks yields a partial result covering exactly the
     chunks completed before the cap, each a bit-exact replay *)
  let trials = 10_000 and chunk = 256 in
  let budget = Budget.create ~max_work:5 () in
  let g = float_sum_governed ~jobs:1 ~chunk ~budget ~trials 42 in
  (match g.Par.exhausted with
   | Some e -> Alcotest.(check bool) "cause Work" true (e.Budget.cause = Budget.Work)
   | None -> Alcotest.fail "expected exhaustion");
  Alcotest.(check int) "5 chunks done" 5 g.Par.run_stats.Par.chunks_done;
  Alcotest.(check int) "trials_done matches" (5 * chunk) g.Par.run_stats.Par.trials_done;
  (* jobs:1 completes chunks in schedule order, so the partial value is the
     prefix sum over substreams 0..4 *)
  let base = Rng.bits64 (Rng.create 42) in
  let expected = ref 0.0 in
  for id = 0 to 4 do
    let r = Rng.substream base id in
    for _ = 1 to chunk do
      expected := !expected +. Rng.float r
    done
  done;
  Alcotest.(check bool) "partial value = prefix chunks" true
    (Int64.equal (bits g.Par.value) (bits !expected))

let test_zero_budget_partial_is_empty () =
  let budget = Budget.create ~max_work:0 () in
  let g = float_sum_governed ~jobs:4 ~chunk:64 ~budget ~trials:10_000 42 in
  Alcotest.(check bool) "exhausted" true (g.Par.exhausted <> None);
  Alcotest.(check int) "nothing done" 0 g.Par.run_stats.Par.trials_done;
  Alcotest.(check bool) "init value" true (g.Par.value = 0.0)

let checkpoint_roundtrip_for ~jobs () =
  (* simulate kill + resume: a budget-limited first run checkpoints, a
     resumed run finishes; result and sample counts must be bit-identical to
     an uninterrupted run *)
  let trials = 20_000 and chunk = 256 in
  with_tmp @@ fun file ->
  let reference = float_sum_governed ~jobs ~chunk ~trials 42 in
  let first =
    float_sum_governed ~jobs ~chunk ~trials
      ~budget:(Budget.create ~max_work:13 ())
      ~checkpoint:file ~checkpoint_every:4 42
  in
  Alcotest.(check bool) "first run is partial" true (first.Par.exhausted <> None);
  Alcotest.(check bool) "snapshots were written" true
    (first.Par.run_stats.Par.checkpoints_written > 0);
  let resumed = float_sum_governed ~jobs ~chunk ~trials ~resume:file 42 in
  Alcotest.(check bool) "resumed = uninterrupted (bitwise)" true
    (Int64.equal (bits resumed.Par.value) (bits reference.Par.value));
  Alcotest.(check int) "all trials accounted" trials resumed.Par.run_stats.Par.trials_done;
  Alcotest.(check int) "resumed chunk count" first.Par.run_stats.Par.chunks_done
    resumed.Par.run_stats.Par.chunks_resumed;
  Alcotest.(check bool) "resume is complete" true (resumed.Par.exhausted = None)

let test_checkpoint_roundtrip_jobs1 () = checkpoint_roundtrip_for ~jobs:1 ()

let test_checkpoint_roundtrip_jobs4 () = checkpoint_roundtrip_for ~jobs:4 ()

let test_resume_from_finished_checkpoint_is_noop () =
  with_tmp @@ fun file ->
  let full = float_sum_governed ~jobs:2 ~chunk:512 ~trials:10_000 ~checkpoint:file 42 in
  let resumed = float_sum_governed ~jobs:2 ~chunk:512 ~trials:10_000 ~resume:file 42 in
  Alcotest.(check bool) "same value" true
    (Int64.equal (bits resumed.Par.value) (bits full.Par.value));
  Alcotest.(check int) "nothing re-run" 0
    (resumed.Par.run_stats.Par.chunks_done - resumed.Par.run_stats.Par.chunks_resumed)

let expect_invalid_snapshot name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_snapshot" name
  | exception Par.Invalid_snapshot _ -> ()

let test_resume_rejects_damaged_snapshots () =
  with_tmp @@ fun file ->
  let run ?(seed = 42) ?(trials = 10_000) ?(chunk = 256) ?checkpoint ?resume () =
    float_sum_governed ~jobs:1 ~chunk ~trials ?checkpoint ?resume seed
  in
  ignore (run ~checkpoint:file ());
  let original = In_channel.with_open_bin file In_channel.input_all in
  let rewrite s = Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc s) in
  (* truncation *)
  rewrite (String.sub original 0 (String.length original - 7));
  expect_invalid_snapshot "truncated" (fun () -> run ~resume:file ());
  (* corruption (payload bit flip) *)
  let corrupt = Bytes.of_string original in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0x40));
  rewrite (Bytes.to_string corrupt);
  expect_invalid_snapshot "corrupted" (fun () -> run ~resume:file ());
  (* wrong format version *)
  let versioned = Bytes.of_string original in
  Bytes.set versioned 11 (Char.chr (Char.code (Bytes.get versioned 11) + 1));
  rewrite (Bytes.to_string versioned);
  expect_invalid_snapshot "wrong version" (fun () -> run ~resume:file ());
  (* pristine snapshot, mismatched run parameters *)
  rewrite original;
  expect_invalid_snapshot "different seed" (fun () -> run ~seed:43 ~resume:file ());
  expect_invalid_snapshot "different trials" (fun () -> run ~trials:9_999 ~resume:file ());
  expect_invalid_snapshot "different chunk" (fun () -> run ~chunk:128 ~resume:file ());
  (* and the pristine file still resumes fine *)
  ignore (run ~resume:file ())

(* -- fault injection ----------------------------------------------------- *)

let fault_on ~kind ~chunks ~attempts_below ~chunk:id ~attempt =
  if List.mem id chunks && attempt <= attempts_below then Some kind else None

let fault_equal_baseline name ~jobs ~fault ~expect_retries =
  let trials = 10_000 and chunk = 256 in
  let baseline = float_sum ~jobs:1 ~chunk ~trials 42 in
  let g = float_sum_governed ~jobs ~chunk ~trials ~fault 42 in
  Alcotest.(check bool) (name ^ ": value = baseline (bitwise)") true
    (Int64.equal (bits g.Par.value) (bits baseline));
  Alcotest.(check bool) (name ^ ": complete") true (g.Par.exhausted = None);
  Alcotest.(check int) (name ^ ": all trials") trials g.Par.run_stats.Par.trials_done;
  Alcotest.(check int) (name ^ ": retries") expect_retries g.Par.run_stats.Par.retries;
  Alcotest.(check bool) (name ^ ": failures recorded") true
    (g.Par.run_stats.Par.worker_failures >= expect_retries)

let test_crash_first_chunk () =
  List.iter
    (fun jobs ->
      fault_equal_baseline
        (Printf.sprintf "crash chunk 0, jobs %d" jobs)
        ~jobs
        ~fault:(fault_on ~kind:Par.Crash ~chunks:[ 0 ] ~attempts_below:1)
        ~expect_retries:1)
    [ 1; 4 ]

let test_crash_middle_chunk () =
  List.iter
    (fun jobs ->
      fault_equal_baseline
        (Printf.sprintf "crash chunk 20, jobs %d" jobs)
        ~jobs
        ~fault:(fault_on ~kind:Par.Crash ~chunks:[ 20 ] ~attempts_below:1)
        ~expect_retries:1)
    [ 1; 4 ]

let test_crash_repeated_up_to_max_retries () =
  (* two consecutive crashes with max_retries = 2: the third attempt
     succeeds and the result is untouched *)
  List.iter
    (fun jobs ->
      fault_equal_baseline
        (Printf.sprintf "double crash, jobs %d" jobs)
        ~jobs
        ~fault:(fault_on ~kind:Par.Crash ~chunks:[ 7 ] ~attempts_below:2)
        ~expect_retries:2)
    [ 1; 4 ]

let test_crash_exhausts_retries () =
  (* a chunk that crashes on every attempt surfaces as a typed error, on any
     jobs count *)
  List.iter
    (fun jobs ->
      match
        float_sum_governed ~jobs ~chunk:256 ~trials:10_000 ~max_retries:2
          ~fault:(fun ~chunk:id ~attempt:_ -> if id = 3 then Some Par.Crash else None)
          42
      with
      | _ -> Alcotest.fail "expected Retries_exhausted"
      | exception Par.Retries_exhausted { chunk; attempts; last_error } ->
        Alcotest.(check int) "failing chunk" 3 chunk;
        Alcotest.(check int) "1 try + 2 retries" 3 attempts;
        Alcotest.(check bool) (Printf.sprintf "last_error: %s" last_error) true
          (String.length last_error > 0))
    [ 1; 4 ]

let test_wedge_recovers () =
  (* a wedged worker abandons its chunk; the scheduler re-runs it (and any
     chunks the lost worker never claimed) on the calling domain with a
     bit-identical result — including jobs:1, where the only worker dies *)
  List.iter
    (fun jobs ->
      fault_equal_baseline
        (Printf.sprintf "wedge chunk 2, jobs %d" jobs)
        ~jobs
        ~fault:(fault_on ~kind:Par.Wedge ~chunks:[ 2 ] ~attempts_below:1)
        ~expect_retries:1)
    [ 1; 4 ]

let test_wedge_exhausts_retries () =
  match
    float_sum_governed ~jobs:2 ~chunk:256 ~trials:10_000 ~max_retries:1
      ~fault:(fun ~chunk:id ~attempt:_ -> if id = 0 then Some Par.Wedge else None)
      42
  with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Par.Retries_exhausted { chunk; attempts; _ } ->
    Alcotest.(check int) "failing chunk" 0 chunk;
    Alcotest.(check int) "1 try + 1 retry" 2 attempts

let test_user_exception_is_retried () =
  (* a transient user exception (fails on the first visit to one chunk) is
     retried like an injected crash, via the same substream replay *)
  let trials = 5_000 and chunk = 256 in
  let baseline = float_sum ~jobs:1 ~chunk ~trials 42 in
  let poisoned = Atomic.make true in
  let g =
    Par.run_governed ~jobs:1 ~chunk ~trials
      ~init:(fun () -> 0.0)
      ~accumulate:(fun acc r ->
        (* fail exactly once, on the first trial ever executed; the retry
           replays the whole chunk from its substream start *)
        if Atomic.compare_and_set poisoned true false then failwith "transient";
        acc +. Rng.float r)
      ~merge:( +. ) (Rng.create 42)
  in
  Alcotest.(check bool) "value = baseline despite the transient failure" true
    (Int64.equal (bits g.Par.value) (bits baseline));
  Alcotest.(check int) "one retry" 1 g.Par.run_stats.Par.retries

let test_fault_with_checkpoint_resume () =
  (* the full gauntlet: faults + budget + checkpoint on the first run,
     faults again on the resume — still bit-identical to the plain result *)
  let trials = 20_000 and chunk = 256 in
  with_tmp @@ fun file ->
  let reference = float_sum ~jobs:1 ~chunk ~trials 42 in
  let fault = fault_on ~kind:Par.Crash ~chunks:[ 1; 30 ] ~attempts_below:1 in
  let first =
    float_sum_governed ~jobs:4 ~chunk ~trials
      ~budget:(Budget.create ~max_work:40 ())
      ~checkpoint:file ~checkpoint_every:8 ~fault 42
  in
  Alcotest.(check bool) "first is partial" true (first.Par.exhausted <> None);
  let resumed = float_sum_governed ~jobs:4 ~chunk ~trials ~resume:file ~fault 42 in
  Alcotest.(check bool) "resumed = plain run (bitwise)" true
    (Int64.equal (bits resumed.Par.value) (bits reference))

(* -- streaming engine / adaptive stopping ------------------------------- *)

module Stats = Memrel_prob.Stats

(* the same order-sensitive float sum, through the streaming engine *)
let float_sum_streaming ?jobs ?chunk ~max_trials seed =
  let s =
    Par.run_streaming ?jobs ?chunk ~max_trials
      ~init:(fun () -> 0.0)
      ~worker:(fun () acc r -> acc +. Rng.float r)
      ~merge:( +. ) (Rng.create seed)
  in
  s.Par.value

(* a Bernoulli(0.3) worker for the counting paths *)
let coin () r = Rng.float r < 0.3

let test_streaming_equals_run () =
  (* without stop/budget the streaming engine is [run]/[count] exactly:
     same schedule, same merge order, bit-identical result *)
  List.iter
    (fun (trials, chunk) ->
      let reference = float_sum ~jobs:1 ~chunk ~trials 42 in
      List.iter
        (fun jobs ->
          let v = float_sum_streaming ~jobs ~chunk ~max_trials:trials 42 in
          Alcotest.(check bool)
            (Printf.sprintf "trials=%d chunk=%d jobs=%d" trials chunk jobs)
            true
            (Int64.equal (bits v) (bits reference)))
        [ 1; 2; 4 ])
    [ (10_000, 256); (1000, 999); (5, 2); (100, 4096) ];
  let c_ref = Par.count ~jobs:1 ~trials:30_000 (fun r -> coin () r) (Rng.create 9) in
  let c = Par.count_streaming ~jobs:1 ~max_trials:30_000 ~worker:coin (Rng.create 9) in
  Alcotest.(check int) "count_streaming = count" c_ref c.Par.value;
  Alcotest.(check int) "all trials done" 30_000 c.Par.trials_done;
  Alcotest.(check bool) "no stop requested" false c.Par.target_met;
  Alcotest.(check bool) "no budget" true (c.Par.exhausted = None)

let test_streaming_advances_caller_rng () =
  (* like [run], the engine takes exactly one draw from the caller's rng *)
  let a = Rng.create 5 in
  ignore (Par.run_streaming ~jobs:2 ~max_trials:5000
            ~init:(fun () -> 0)
            ~worker:(fun () acc r -> acc + (Int64.to_int (Rng.bits64 r) land 1))
            ~merge:( + ) a);
  let b = Rng.create 5 in
  ignore (Rng.bits64 b);
  for _ = 1 to 10 do
    Alcotest.(check int64) "streams aligned" (Rng.bits64 b) (Rng.bits64 a)
  done

let adaptive ?jobs ?chunk ?budget ?report seed =
  Par.count_streaming ?jobs ?chunk ?budget ?report ~target_width:0.02
    ~max_trials:1_000_000 ~worker:coin (Rng.create seed)

let test_adaptive_stops_within_width () =
  let s = adaptive 11 in
  Alcotest.(check bool) "target met" true s.Par.target_met;
  Alcotest.(check bool) "stopped early" true (s.Par.trials_done < 1_000_000);
  let ci =
    Stats.wilson_ci ~successes:s.Par.value ~trials:s.Par.trials_done ~z:1.96
  in
  Alcotest.(check bool)
    (Printf.sprintf "width %f <= 0.02" (ci.Stats.hi -. ci.Stats.lo))
    true
    (ci.Stats.hi -. ci.Stats.lo <= 0.02)

let test_adaptive_deterministic_and_jobs_invariant () =
  (* the stop predicate runs on the schedule-order prefix, so the stopping
     trial count — not just the estimate — is reproducible and identical at
     every jobs count (overrun chunks from racing workers are discarded) *)
  let s1 = adaptive ~jobs:1 11 in
  List.iter
    (fun jobs ->
      let s = adaptive ~jobs 11 in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d same stopping point" jobs)
        s1.Par.trials_done s.Par.trials_done;
      Alcotest.(check int) (Printf.sprintf "jobs=%d same count" jobs) s1.Par.value s.Par.value)
    [ 1; 2; 4 ]

let test_adaptive_max_trials_cap () =
  (* an unreachable width runs to the cap and says the target was missed *)
  let s =
    Par.count_streaming ~jobs:1 ~target_width:0.0001 ~max_trials:20_000 ~worker:coin
      (Rng.create 3)
  in
  Alcotest.(check bool) "target not met" false s.Par.target_met;
  Alcotest.(check int) "ran to the cap" 20_000 s.Par.trials_done

let test_streaming_budget_partial () =
  (* a work cap of k chunks yields exactly the k-chunk schedule prefix: the
     value equals an honest k*chunk-trial run with the same seed *)
  let chunk = 512 in
  let s =
    Par.count_streaming ~jobs:1 ~chunk ~budget:(Budget.create ~max_work:4 ())
      ~max_trials:100_000 ~worker:coin (Rng.create 21)
  in
  Alcotest.(check bool) "exhausted" true (s.Par.exhausted <> None);
  Alcotest.(check int) "prefix trials" (4 * chunk) s.Par.trials_done;
  Alcotest.(check int) "prefix chunks" 4 s.Par.chunks_done;
  let reference = Par.count ~jobs:1 ~chunk ~trials:(4 * chunk) (fun r -> coin () r)
      (Rng.create 21) in
  Alcotest.(check int) "prefix value = honest short run" reference s.Par.value;
  (* zero budget: nothing ran, and the record says so *)
  let z =
    Par.count_streaming ~jobs:1 ~budget:(Budget.create ~max_work:0 ())
      ~max_trials:100_000 ~worker:coin (Rng.create 21)
  in
  Alcotest.(check int) "zero trials" 0 z.Par.trials_done;
  Alcotest.(check bool) "zero exhausted" true (z.Par.exhausted <> None)

let test_streaming_report () =
  (* sequential path: reports fire every report_every merged chunks, with
     monotone trial counts consistent with the running prefix *)
  let calls = ref [] in
  let chunk = 100 in
  let s =
    Par.count_streaming ~jobs:1 ~chunk ~report_every:2
      ~report:(fun ~trials ~successes -> calls := (trials, successes) :: !calls)
      ~max_trials:1_000 ~worker:coin (Rng.create 7)
  in
  let calls = List.rev !calls in
  Alcotest.(check bool) "reported" true (List.length calls >= 4);
  List.iteri
    (fun i (trials, successes) ->
      Alcotest.(check int) "every 2 chunks" ((i + 1) * 2 * chunk) trials;
      Alcotest.(check bool) "successes sane" true (0 <= successes && successes <= trials))
    calls;
  ignore s

let test_streaming_guards () =
  let check_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  check_invalid "max_trials" (fun () ->
      Par.count_streaming ~max_trials:0 ~worker:coin (Rng.create 1));
  check_invalid "target_width" (fun () ->
      Par.count_streaming ~target_width:0.0 ~max_trials:10 ~worker:coin (Rng.create 1));
  check_invalid "report_every" (fun () ->
      Par.count_streaming ~report_every:0 ~report:(fun ~trials:_ ~successes:_ -> ())
        ~max_trials:10 ~worker:coin (Rng.create 1))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("run is jobs-invariant (bitwise)", test_run_jobs_invariant);
      ("default jobs = jobs:1 result", test_run_default_jobs_matches_one);
      ("caller rng advanced by one draw", test_run_advances_caller_rng_uniformly);
      ("count matches the keyed-chunk schedule", test_count_matches_manual);
      ("histogram accumulator merges jobs-invariantly", test_histogram_accumulator_merge);
      ("substreams deterministic and distinct", test_substream_deterministic_and_distinct);
      ("substream pooled uniformity (chi2)", test_substream_uniformity);
      ("map_list order and jobs", test_map_list_order_and_jobs);
      ("map_array propagates exceptions", test_map_array_exception_propagates);
      ("guards", test_guards);
      ("governed = plain run (bitwise)", test_governed_equals_plain_run);
      ("governed advances caller rng by one draw", test_governed_advances_caller_rng_uniformly);
      ("work cap yields exact prefix partial", test_work_cap_partial);
      ("zero budget yields empty partial", test_zero_budget_partial_is_empty);
      ("checkpoint kill+resume bit-identical (jobs 1)", test_checkpoint_roundtrip_jobs1);
      ("checkpoint kill+resume bit-identical (jobs 4)", test_checkpoint_roundtrip_jobs4);
      ("resume of a finished checkpoint is a no-op", test_resume_from_finished_checkpoint_is_noop);
      ("damaged/mismatched snapshots rejected", test_resume_rejects_damaged_snapshots);
      ("crash on first chunk recovers bit-identically", test_crash_first_chunk);
      ("crash on middle chunk recovers bit-identically", test_crash_middle_chunk);
      ("repeated crashes within max_retries recover", test_crash_repeated_up_to_max_retries);
      ("persistent crash exhausts retries", test_crash_exhausts_retries);
      ("wedged worker recovers bit-identically", test_wedge_recovers);
      ("persistent wedge exhausts retries", test_wedge_exhausts_retries);
      ("transient user exception retried", test_user_exception_is_retried);
      ("faults + checkpoint + resume bit-identical", test_fault_with_checkpoint_resume);
      ("streaming = run/count (bitwise)", test_streaming_equals_run);
      ("streaming advances caller rng by one draw", test_streaming_advances_caller_rng);
      ("adaptive stop reaches the target width", test_adaptive_stops_within_width);
      ("adaptive stopping point jobs-invariant", test_adaptive_deterministic_and_jobs_invariant);
      ("adaptive respects max_trials cap", test_adaptive_max_trials_cap);
      ("streaming budget partial is the exact prefix", test_streaming_budget_partial);
      ("streaming report cadence", test_streaming_report);
      ("streaming guards", test_streaming_guards);
    ]
