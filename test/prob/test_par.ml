module Rng = Memrel_prob.Rng
module Par = Memrel_prob.Par

(* a deliberately order-sensitive accumulator: float sum of Rng.float draws;
   any schedule change shows up in the low bits *)
let float_sum ?jobs ?chunk ~trials seed =
  Par.sum_float ?jobs ?chunk ~trials (fun r -> Rng.float r) (Rng.create seed)

let test_run_jobs_invariant () =
  (* bit-identical across jobs, including trial counts that don't divide the
     chunk size and chunk counts below/above the worker count *)
  List.iter
    (fun (trials, chunk) ->
      let reference = float_sum ~jobs:1 ~chunk ~trials 42 in
      List.iter
        (fun jobs ->
          let v = float_sum ~jobs ~chunk ~trials 42 in
          Alcotest.(check bool)
            (Printf.sprintf "trials=%d chunk=%d jobs=%d: %h = %h" trials chunk jobs v reference)
            true
            (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float reference)))
        [ 2; 3; 4; 7 ])
    [ (10_000, 256); (1000, 999); (5, 2); (4096, 4096); (100, 4096) ]

let test_run_default_jobs_matches_one () =
  let a = float_sum ~trials:20_000 7 in
  let b = float_sum ~jobs:1 ~trials:20_000 7 in
  Alcotest.(check bool) "default jobs = jobs:1 bitwise" true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let test_run_advances_caller_rng_uniformly () =
  (* the engine must consume exactly one bits64 draw from the caller's
     generator, regardless of jobs/trials/chunk, so downstream draws stay
     reproducible *)
  let next_after f =
    let rng = Rng.create 11 in
    ignore (f rng);
    Rng.bits64 rng
  in
  let reference = next_after (fun rng -> ignore (Rng.bits64 rng)) in
  List.iter
    (fun (jobs, trials, chunk) ->
      let v =
        next_after (fun rng ->
            ignore (Par.count ~jobs ~chunk ~trials (fun r -> Rng.bool r) rng))
      in
      Alcotest.(check int64)
        (Printf.sprintf "jobs=%d trials=%d chunk=%d" jobs trials chunk)
        reference v)
    [ (1, 100, 64); (4, 100, 64); (4, 10_000, 256); (2, 3, 1) ]

let test_count_matches_manual () =
  (* jobs:1 chunked count equals a hand-rolled loop over the same substreams *)
  let trials = 10_000 and chunk = 512 in
  let got = Par.count ~jobs:3 ~chunk ~trials (fun r -> Rng.bernoulli r 0.3) (Rng.create 5) in
  let base = Rng.bits64 (Rng.create 5) in
  let expected = ref 0 in
  let n_chunks = (trials + chunk - 1) / chunk in
  for id = 0 to n_chunks - 1 do
    let r = Rng.substream base id in
    for _ = 1 to min chunk (trials - (id * chunk)) do
      if Rng.bernoulli r 0.3 then incr expected
    done
  done;
  Alcotest.(check int) "count = manual chunk loop" !expected got;
  (* and the rate is what it should be *)
  Alcotest.(check bool) "rate ~ 0.3" true
    (Float.abs ((float_of_int got /. float_of_int trials) -. 0.3) < 0.02)

let test_histogram_accumulator_merge () =
  (* the estimate-style accumulator (hashtable + merge by addition) must be
     jobs-invariant and conserve mass *)
  let run jobs =
    Par.run ~jobs ~chunk:128 ~trials:30_000
      ~init:(fun () -> Hashtbl.create 16)
      ~accumulate:(fun h r ->
        let k = Rng.geometric_half r in
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k));
        h)
      ~merge:(fun a b ->
        Hashtbl.iter
          (fun k c -> Hashtbl.replace a k (c + Option.value ~default:0 (Hashtbl.find_opt a k)))
          b;
        a)
      (Rng.create 13)
  in
  let sorted h =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
  in
  let h1 = sorted (run 1) and h4 = sorted (run 4) in
  Alcotest.(check (list (pair int int))) "histogram jobs:1 = jobs:4" h1 h4;
  Alcotest.(check int) "mass conserved" 30_000 (List.fold_left (fun a (_, c) -> a + c) 0 h1)

let test_substream_deterministic_and_distinct () =
  let a = Rng.substream 99L 5 and b = Rng.substream 99L 5 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same (base, i), same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (* adjacent indices (the parallel engine's hot case) share no outputs *)
  let a = Rng.substream 99L 5 and b = Rng.substream 99L 6 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check int) "adjacent substreams unrelated" 0 !same

let test_substream_uniformity () =
  (* pooled draws across many substreams must still be uniform — the same
     chi-squared check Rng.int passes for a single stream *)
  let k = 6 and per_stream = 1000 and streams = 60 in
  let counts = Array.make k 0 in
  for i = 0 to streams - 1 do
    let r = Rng.substream 2024L i in
    for _ = 1 to per_stream do
      let v = Rng.int r k in
      counts.(v) <- counts.(v) + 1
    done
  done;
  let n = per_stream * streams in
  let expected = float_of_int n /. float_of_int k in
  let chi2 =
    Array.fold_left
      (fun acc c -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected))
      0.0 counts
  in
  (* 5 dof, 99.9% critical value ~ 20.5 *)
  Alcotest.(check bool) (Printf.sprintf "chi2=%.2f < 20.5" chi2) true (chi2 < 20.5)

let test_map_list_order_and_jobs () =
  let l = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "map_list jobs:1 = List.map" (List.map f l)
    (Par.map_list ~jobs:1 f l);
  Alcotest.(check (list int)) "map_list jobs:4 preserves order" (List.map f l)
    (Par.map_list ~jobs:4 f l);
  Alcotest.(check (list int)) "empty list" [] (Par.map_list ~jobs:4 f [])

let test_map_array_exception_propagates () =
  Alcotest.check_raises "worker exception resurfaces" Exit (fun () ->
      ignore (Par.map_array ~jobs:2 (fun x -> if x = 3 then raise Exit else x) [| 1; 2; 3; 4 |]))

let test_guards () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "trials 0" (Invalid_argument "Par.run: trials must be positive")
    (fun () -> ignore (Par.count ~trials:0 (fun _ -> true) rng));
  Alcotest.check_raises "chunk 0" (Invalid_argument "Par.run: chunk must be positive")
    (fun () -> ignore (Par.count ~chunk:0 ~trials:10 (fun _ -> true) rng));
  Alcotest.(check bool) "default_jobs >= 1" true (Par.default_jobs () >= 1)

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("run is jobs-invariant (bitwise)", test_run_jobs_invariant);
      ("default jobs = jobs:1 result", test_run_default_jobs_matches_one);
      ("caller rng advanced by one draw", test_run_advances_caller_rng_uniformly);
      ("count matches the keyed-chunk schedule", test_count_matches_manual);
      ("histogram accumulator merges jobs-invariantly", test_histogram_accumulator_merge);
      ("substreams deterministic and distinct", test_substream_deterministic_and_distinct);
      ("substream pooled uniformity (chi2)", test_substream_uniformity);
      ("map_list order and jobs", test_map_list_order_and_jobs);
      ("map_array propagates exceptions", test_map_array_exception_propagates);
      ("guards", test_guards);
    ]
