module Budget = Memrel_prob.Budget

let test_unlimited_never_trips () =
  let b = Budget.create () in
  Budget.spend b 1_000_000;
  Alcotest.(check bool) "no armed limit, no cause" true (Budget.check b = None)

let test_work_cap () =
  let b = Budget.create ~max_work:10 () in
  Budget.spend b 9;
  Alcotest.(check bool) "under the cap" true (Budget.check b = None);
  Budget.spend b 1;
  Alcotest.(check bool) "at the cap" true (Budget.check b = Some Budget.Work);
  Alcotest.(check int) "work counter" 10 (Budget.work_done b)

let test_work_cap_zero_trips_immediately () =
  let b = Budget.create ~max_work:0 () in
  Alcotest.(check bool) "zero cap trips on first check" true
    (Budget.check b = Some Budget.Work)

let test_deadline_zero_trips_immediately () =
  let b = Budget.create ~deadline_s:0.0 () in
  Alcotest.(check bool) "expired deadline trips" true (Budget.check b = Some Budget.Deadline)

let test_generous_deadline_does_not_trip () =
  let b = Budget.create ~deadline_s:3600.0 () in
  Alcotest.(check bool) "an hour from now" true (Budget.check b = None);
  Alcotest.(check bool) "elapsed is sane" true (Budget.elapsed_s b >= 0.0)

let test_memory_watermark () =
  (* the current heap is far above 1 byte and far below 1 TB *)
  let low = Budget.create ~max_mem_bytes:1 () in
  Alcotest.(check bool) "tiny watermark trips" true (Budget.check low = Some Budget.Memory);
  let high = Budget.create ~max_mem_bytes:(1 lsl 40) () in
  Alcotest.(check bool) "huge watermark does not" true (Budget.check high = None)

let test_check_priority () =
  (* when several limits are exhausted at once, the work cap is reported
     first (the deterministic one) *)
  let b = Budget.create ~max_work:0 ~deadline_s:0.0 ~max_mem_bytes:1 () in
  Alcotest.(check bool) "work wins" true (Budget.check b = Some Budget.Work)

let test_spend_is_cumulative_and_atomic_under_domains () =
  let b = Budget.create () in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> for _ = 1 to 10_000 do Budget.spend b 1 done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 (Budget.work_done b)

let test_exhaustion_record () =
  let b = Budget.create ~max_work:5 () in
  Budget.spend b 5;
  let e = Budget.exhaustion b Budget.Work in
  Alcotest.(check int) "work_done snapshot" 5 e.Budget.work_done;
  Alcotest.(check bool) "elapsed nonnegative" true (e.Budget.elapsed_s >= 0.0);
  Alcotest.(check string) "cause string" "work cap" (Budget.cause_to_string e.Budget.cause);
  let d = Budget.describe e in
  Alcotest.(check bool) (Printf.sprintf "describe mentions the cause: %s" d) true
    (String.length d > 0
    && Astring.String.is_infix ~affix:"work cap" d
    && Astring.String.is_infix ~affix:"5 work units" d)

let test_negative_limits_rejected () =
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Budget.create: deadline_s must be nonnegative") (fun () ->
      ignore (Budget.create ~deadline_s:(-1.0) ()));
  Alcotest.check_raises "negative work cap"
    (Invalid_argument "Budget.create: max_work must be nonnegative") (fun () ->
      ignore (Budget.create ~max_work:(-1) ()));
  Alcotest.check_raises "negative watermark"
    (Invalid_argument "Budget.create: max_mem_bytes must be nonnegative") (fun () ->
      ignore (Budget.create ~max_mem_bytes:(-1) ()))

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("unlimited budget never trips", test_unlimited_never_trips);
      ("work cap trips at the cap", test_work_cap);
      ("zero work cap trips immediately", test_work_cap_zero_trips_immediately);
      ("zero deadline trips immediately", test_deadline_zero_trips_immediately);
      ("generous deadline does not trip", test_generous_deadline_does_not_trip);
      ("memory watermark", test_memory_watermark);
      ("work cap checked before deadline", test_check_priority);
      ("spend is atomic across domains", test_spend_is_cumulative_and_atomic_under_domains);
      ("exhaustion record and describe", test_exhaustion_record);
      ("negative limits rejected", test_negative_limits_rejected);
    ]
