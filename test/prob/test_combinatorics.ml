module C = Memrel_prob.Combinatorics
module B = Memrel_prob.Bigint

let check_bi msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

let test_binomial_small () =
  check_bi "C(5,2)" "10" (C.binomial 5 2);
  check_bi "C(0,0)" "1" (C.binomial 0 0);
  check_bi "C(n,0)" "1" (C.binomial 17 0);
  check_bi "C(n,n)" "1" (C.binomial 17 17);
  check_bi "out of range" "0" (C.binomial 5 6);
  check_bi "negative k" "0" (C.binomial 5 (-1))

let test_binomial_large () =
  check_bi "C(50,25)" "126410606437752" (C.binomial 50 25);
  check_bi "C(100,50)" "100891344545564193334812497256" (C.binomial 100 50)

let test_binomial_pascal () =
  for n = 1 to 20 do
    for k = 0 to n do
      let lhs = C.binomial n k in
      let rhs = B.add (C.binomial (n - 1) (k - 1)) (C.binomial (n - 1) k) in
      if not (B.equal lhs rhs) then Alcotest.fail (Printf.sprintf "pascal fails at %d %d" n k)
    done
  done

let test_factorial () =
  check_bi "0!" "1" (C.factorial 0);
  check_bi "5!" "120" (C.factorial 5);
  check_bi "20!" "2432902008176640000" (C.factorial 20);
  check_bi "30!" "265252859812191058636308480000000" (C.factorial 30)

let test_log2_factorial () =
  Alcotest.(check (float 1e-9)) "log2 1! = 0" 0.0 (C.log2_factorial 1);
  Alcotest.(check (float 1e-6)) "log2 10!" (Float.log (3628800.0) /. Float.log 2.0) (C.log2_factorial 10);
  (* against exact factorial via float for n = 25 *)
  Alcotest.(check (float 1e-6)) "log2 25!"
    (Float.log (B.to_float (C.factorial 25)) /. Float.log 2.0)
    (C.log2_factorial 25)

let test_partitions_basic () =
  (* phi(x, y, z): multisets of y positive integers <= z summing to x *)
  check_bi "phi(5,2,4): 1+4, 2+3" "2" (C.partitions_bounded 5 2 4);
  check_bi "phi(6,3,3): 123, 222" "2" (C.partitions_bounded 6 3 3);
  check_bi "phi(4,2,2): 2+2 only" "1" (C.partitions_bounded 4 2 2);
  check_bi "phi(x,y,z) below range" "0" (C.partitions_bounded 1 2 5);
  check_bi "phi(x,y,z) above range" "0" (C.partitions_bounded 11 2 5);
  check_bi "phi(0,0,z)" "1" (C.partitions_bounded 0 0 5);
  check_bi "phi(x,0,z)" "0" (C.partitions_bounded 3 0 5)

let test_partitions_brute_force () =
  (* exhaustive check against direct enumeration for small parameters *)
  let brute x y z =
    (* count nondecreasing sequences of y values in [1,z] summing to x *)
    let count = ref 0 in
    let rec go remaining parts lo =
      if parts = 0 then begin
        if remaining = 0 then incr count
      end
      else
        for v = lo to min z remaining do
          go (remaining - v) (parts - 1) v
        done
    in
    go x y 1;
    !count
  in
  for x = 0 to 14 do
    for y = 0 to 5 do
      for z = 0 to 5 do
        let expected = brute x y z in
        let got = B.to_int (C.partitions_bounded x y z) in
        if expected <> got then
          Alcotest.fail (Printf.sprintf "phi(%d,%d,%d): expected %d got %d" x y z expected got)
      done
    done
  done

let test_partitions_paper_bound () =
  (* the paper's Claim 4.4 relies on phi(delta, q, mu) >= 1 whenever
     q <= delta <= mu q *)
  for q = 1 to 6 do
    for mu = 1 to 6 do
      for delta = q to mu * q do
        if B.compare (C.partitions_bounded delta q mu) B.one < 0 then
          Alcotest.fail (Printf.sprintf "phi(%d,%d,%d) < 1" delta q mu)
      done
    done
  done

let test_permutations () =
  Alcotest.(check int) "0! = 1 perm" 1 (List.length (C.permutations 0));
  Alcotest.(check int) "3! perms" 6 (List.length (C.permutations 3));
  Alcotest.(check int) "5! perms" 120 (List.length (C.permutations 5));
  (* all distinct *)
  let ps = C.permutations 4 in
  let uniq = List.sort_uniq compare ps in
  Alcotest.(check int) "all distinct" 24 (List.length uniq);
  (* each is a permutation of 0..3 *)
  List.iter
    (fun p ->
      let s = Array.copy p in
      Array.sort compare s;
      Alcotest.(check (array int)) "valid" [| 0; 1; 2; 3 |] s)
    ps

let test_permutations_guard () =
  Alcotest.check_raises "degree > 9 rejected"
    (Invalid_argument "Combinatorics: permutation degree must be in [0, 9]") (fun () ->
      ignore (C.permutations 10))

let test_fold_permutations_sum () =
  (* sum over permutations of first element = (n-1)! * sum of values *)
  let total = C.fold_permutations (fun acc p -> acc + p.(0)) 0 4 in
  Alcotest.(check int) "sum of firsts" (6 * (0 + 1 + 2 + 3)) total

let test_compositions () =
  let collected = ref [] in
  C.compositions 3 2 (fun a -> collected := Array.to_list a :: !collected);
  let expected = [ [ 0; 3 ]; [ 1; 2 ]; [ 2; 1 ]; [ 3; 0 ] ] in
  Alcotest.(check (list (list int))) "compositions of 3 into 2" expected
    (List.sort compare !collected);
  (* count = C(total+parts-1, parts-1) *)
  let count = ref 0 in
  C.compositions 7 4 (fun _ -> incr count);
  Alcotest.(check int) "count" (B.to_int (C.binomial 10 3)) !count

let test_cache_hammer () =
  (* the memo tables are shared across Par domains; hammer them from
     several domains at once on overlapping keys and check every domain
     sees the same answers a cold sequential run produces. Before the
     caches were mutex-guarded this could corrupt the Hashtbl buckets
     (lost bindings, or a crash on a torn resize). *)
  let workload () =
    let acc = ref B.zero in
    for _rep = 1 to 25 do
      for x = 0 to 30 do
        acc := B.add !acc (C.partitions_bounded (20 + x) 6 9);
        acc := B.add !acc (C.binomial (40 + (x mod 7)) (9 + (x mod 5)))
      done
    done;
    B.to_string !acc
  in
  C.clear_caches ();
  let expected = workload () in
  C.clear_caches ();
  let domains = Array.init 4 (fun _ -> Domain.spawn workload) in
  Array.iteri
    (fun i d ->
      let got = Domain.join d in
      if not (String.equal got expected) then
        Alcotest.fail (Printf.sprintf "domain %d: expected %s got %s" i expected got))
    domains;
  let s = C.cache_stats () in
  Alcotest.(check bool) "partition cache populated" true (s.C.partition_entries > 0);
  Alcotest.(check bool) "binomial cache populated" true (s.C.binomial_entries > 0);
  Alcotest.(check bool) "hits recorded under contention" true
    (s.C.partition_hits > 0 && s.C.binomial_hits > 0)

let test_cache_stats_accounting () =
  C.clear_caches ();
  let s0 = C.cache_stats () in
  Alcotest.(check int) "cleared entries" 0 (s0.C.binomial_entries + s0.C.partition_entries);
  ignore (C.binomial 40 17);
  ignore (C.binomial 40 17);
  ignore (C.binomial 40 23) (* = C(40,17) after symmetry normalization *);
  let s1 = C.cache_stats () in
  Alcotest.(check int) "one miss" 1 s1.C.binomial_misses;
  Alcotest.(check int) "two hits" 2 s1.C.binomial_hits;
  (* above the cap nothing is memoized *)
  ignore (C.binomial 600 3);
  let s2 = C.cache_stats () in
  Alcotest.(check int) "capped n bypasses cache" s1.C.binomial_misses s2.C.binomial_misses

let prop name ?(count = 200) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "binomial symmetry" QCheck.(pair (int_range 0 60) (int_range 0 60)) (fun (n, k) ->
        QCheck.assume (k <= n);
        B.equal (C.binomial n k) (C.binomial n (n - k)));
    prop "row sums to 2^n" QCheck.(int_range 0 40) (fun n ->
        let sum = ref B.zero in
        for k = 0 to n do
          sum := B.add !sum (C.binomial n k)
        done;
        B.equal !sum (B.pow2 n));
    prop "partitions bounded by unbounded stars-and-bars"
      QCheck.(triple (int_range 0 20) (int_range 1 6) (int_range 1 8))
      (fun (x, y, z) ->
        (* phi(x,y,z) <= compositions-ish loose bound C(x-1, y-1) for x >= y *)
        QCheck.assume (x >= y);
        B.compare (C.partitions_bounded x y z) (C.binomial (x - 1) (y - 1)) <= 0);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("binomial small", test_binomial_small);
      ("binomial large", test_binomial_large);
      ("binomial pascal identity", test_binomial_pascal);
      ("factorial", test_factorial);
      ("log2_factorial", test_log2_factorial);
      ("partitions basic", test_partitions_basic);
      ("partitions vs brute force", test_partitions_brute_force);
      ("partitions paper bound phi >= 1", test_partitions_paper_bound);
      ("permutations", test_permutations);
      ("permutations guard", test_permutations_guard);
      ("fold_permutations", test_fold_permutations_sum);
      ("compositions", test_compositions);
      ("cache hammer across domains", test_cache_hammer);
      ("cache stats accounting", test_cache_stats_accounting);
    ]
  @ properties
