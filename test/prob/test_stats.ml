module S = Memrel_prob.Stats

let test_welford_basic () =
  let t = S.create () in
  List.iter (S.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  let s = S.summary t in
  Alcotest.(check int) "count" 8 s.count;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.mean;
  Alcotest.(check (float 1e-9)) "variance (unbiased)" (32.0 /. 7.0) s.variance;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.max

let test_empty_and_single () =
  let s = S.of_samples [] in
  Alcotest.(check int) "empty count" 0 s.count;
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan s.min);
  let s1 = S.of_samples [ 3.5 ] in
  Alcotest.(check (float 0.0)) "single mean" 3.5 s1.mean;
  Alcotest.(check (float 0.0)) "single variance 0" 0.0 s1.variance

let test_welford_stability () =
  (* large offset: naive sum-of-squares would lose precision *)
  let t = S.create () in
  let offset = 1e9 in
  List.iter (fun x -> S.add t (offset +. x)) [ 1.0; 2.0; 3.0 ];
  let s = S.summary t in
  Alcotest.(check (float 1e-6)) "variance stable" 1.0 s.variance

let test_mean_ci () =
  let s = S.of_samples (List.init 100 (fun i -> float_of_int (i mod 2))) in
  let ci = S.mean_ci s ~z:1.96 in
  Alcotest.(check bool) "contains mean" true (ci.lo <= s.mean && s.mean <= ci.hi);
  Alcotest.(check bool) "nontrivial" true (ci.hi -. ci.lo > 0.0)

let test_wilson_extremes () =
  let ci0 = S.wilson_ci ~successes:0 ~trials:100 ~z:1.96 in
  Alcotest.(check (float 1e-9)) "zero successes lo = 0" 0.0 ci0.lo;
  Alcotest.(check bool) "zero successes hi > 0" true (ci0.hi > 0.0 && ci0.hi < 0.1);
  let ci1 = S.wilson_ci ~successes:100 ~trials:100 ~z:1.96 in
  Alcotest.(check (float 1e-9)) "all successes hi = 1" 1.0 ci1.hi;
  Alcotest.(check bool) "all successes lo < 1" true (ci1.lo < 1.0 && ci1.lo > 0.9)

let test_wilson_coverage_shape () =
  let ci = S.wilson_ci ~successes:50 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "centered-ish" true (ci.lo < 0.5 && 0.5 < ci.hi);
  Alcotest.(check bool) "roughly +-0.1" true (ci.hi -. ci.lo < 0.25);
  Alcotest.check_raises "trials = 0" (Invalid_argument "Stats.wilson_ci: trials must be positive")
    (fun () -> ignore (S.wilson_ci ~successes:0 ~trials:0 ~z:1.96))

let test_wilson_rejects_bad_successes () =
  (* regression: these used to return a garbage interval silently *)
  Alcotest.check_raises "negative successes"
    (Invalid_argument "Stats.wilson_ci: successes must be nonnegative") (fun () ->
      ignore (S.wilson_ci ~successes:(-1) ~trials:100 ~z:1.96));
  Alcotest.check_raises "successes > trials"
    (Invalid_argument "Stats.wilson_ci: successes must not exceed trials") (fun () ->
      ignore (S.wilson_ci ~successes:101 ~trials:100 ~z:1.96))

let test_histogram () =
  let h = S.histogram [ 3; 1; 1; 2; 3; 3 ] in
  Alcotest.(check (list (pair int int))) "bins sorted" [ (1, 2); (2, 1); (3, 3) ] h.bins;
  Alcotest.(check int) "total" 6 h.total;
  let pmf = S.empirical_pmf h in
  Alcotest.(check (float 1e-9)) "pmf of 3" 0.5 (List.assoc 3 pmf)

let test_histogram_order_insensitive () =
  (* regression for the parallel-merge contract: the printed histogram (and
     pmf) must be sorted by value, independent of hashtable insertion order,
     so the chunk-merge order of Par can never change output *)
  let of_pairs pairs =
    let tbl = Hashtbl.create 7 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) pairs;
    S.histogram_of_counts tbl
  in
  let pairs = [ (4, 1); (0, 3); (7, 2); (2, 5); (9, 1) ] in
  let forward = of_pairs pairs in
  let backward = of_pairs (List.rev pairs) in
  let shuffled = of_pairs [ (7, 2); (9, 1); (0, 3); (4, 1); (2, 5) ] in
  let expected = [ (0, 3); (2, 5); (4, 1); (7, 2); (9, 1) ] in
  List.iter
    (fun (name, h) ->
      Alcotest.(check (list (pair int int))) (name ^ " bins sorted by value") expected h.S.bins;
      Alcotest.(check int) (name ^ " total") 12 h.S.total)
    [ ("forward", forward); ("backward", backward); ("shuffled", shuffled) ];
  Alcotest.(check (list int)) "pmf order follows bins" (List.map fst expected)
    (List.map fst (S.empirical_pmf forward))

let test_total_variation () =
  let p = [ (0, 0.5); (1, 0.5) ] and q = [ (0, 0.5); (1, 0.5) ] in
  Alcotest.(check (float 1e-12)) "identical" 0.0 (S.total_variation p q);
  let r = [ (0, 1.0) ] in
  Alcotest.(check (float 1e-12)) "half" 0.5 (S.total_variation p r);
  let s' = [ (5, 1.0) ] in
  Alcotest.(check (float 1e-12)) "disjoint support" 1.0 (S.total_variation p s')

let test_chi_squared () =
  (* textbook die example: perfectly uniform observations give 0 *)
  Alcotest.(check (float 1e-12)) "perfect fit" 0.0
    (S.chi_squared ~observed:[| 10; 10; 10 |] ~expected:[| 10.0; 10.0; 10.0 |]);
  Alcotest.(check (float 1e-12)) "one cell off" 0.8
    (S.chi_squared ~observed:[| 12; 10; 8 |] ~expected:[| 10.0; 10.0; 10.0 |]);
  Alcotest.(check (float 1e-12)) "zero-expectation cell ignored when empty" 0.0
    (S.chi_squared ~observed:[| 0; 5 |] ~expected:[| 0.0; 5.0 |]);
  Alcotest.check_raises "observation in impossible cell"
    (Invalid_argument "Stats.chi_squared: observation in a zero-expectation cell") (fun () ->
      ignore (S.chi_squared ~observed:[| 1 |] ~expected:[| 0.0 |]));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.chi_squared: length mismatch")
    (fun () -> ignore (S.chi_squared ~observed:[| 1 |] ~expected:[| 1.0; 1.0 |]))

let test_chi_squared_thresholds () =
  Alcotest.(check (float 1e-3)) "dof 1" 6.635 (S.chi_squared_threshold_99 ~dof:1);
  Alcotest.(check (float 1e-3)) "dof 5" 15.086 (S.chi_squared_threshold_99 ~dof:5);
  (* Wilson-Hilferty approximation: dof 20 tabulated value is 37.566 *)
  Alcotest.(check (float 0.2)) "dof 20" 37.566 (S.chi_squared_threshold_99 ~dof:20);
  (* monotone in dof *)
  for d = 1 to 29 do
    Alcotest.(check bool) "monotone" true
      (S.chi_squared_threshold_99 ~dof:d < S.chi_squared_threshold_99 ~dof:(d + 1))
  done

let prop name ?(count = 200) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "mean within [min,max]" QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
      (fun l ->
        let s = S.of_samples l in
        s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9);
    prop "variance nonnegative" QCheck.(list_of_size (Gen.int_range 2 50) (float_bound_inclusive 100.0))
      (fun l -> (S.of_samples l).variance >= -1e-9);
    prop "wilson contains point estimate"
      QCheck.(pair (int_range 0 1000) (int_range 1 1000))
      (fun (s, t) ->
        QCheck.assume (s <= t);
        let ci = S.wilson_ci ~successes:s ~trials:t ~z:1.96 in
        let p = float_of_int s /. float_of_int t in
        ci.lo <= p +. 1e-9 && p <= ci.hi +. 1e-9);
    prop "tv distance symmetric"
      QCheck.(pair (list (pair (int_range 0 5) (float_bound_inclusive 1.0)))
                (list (pair (int_range 0 5) (float_bound_inclusive 1.0))))
      (fun (p, q) ->
        Float.abs (S.total_variation p q -. S.total_variation q p) < 1e-9);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("welford basics", test_welford_basic);
      ("empty and single", test_empty_and_single);
      ("welford numerical stability", test_welford_stability);
      ("mean ci", test_mean_ci);
      ("wilson extremes", test_wilson_extremes);
      ("wilson shape", test_wilson_coverage_shape);
      ("wilson rejects invalid successes", test_wilson_rejects_bad_successes);
      ("histogram", test_histogram);
      ("histogram order-insensitive", test_histogram_order_insensitive);
      ("total variation", test_total_variation);
      ("chi squared", test_chi_squared);
      ("chi squared thresholds", test_chi_squared_thresholds);
    ]
  @ properties
