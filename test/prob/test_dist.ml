module D = Memrel_prob.Dist
module Q = Memrel_prob.Rational
module Rng = Memrel_prob.Rng

let test_geometric_half_pmf () =
  Alcotest.(check (float 1e-12)) "k=0" 0.5 (D.geometric_half_pmf 0);
  Alcotest.(check (float 1e-12)) "k=3" 0.0625 (D.geometric_half_pmf 3);
  Alcotest.(check (float 1e-12)) "negative" 0.0 (D.geometric_half_pmf (-1));
  Alcotest.(check bool) "rational k=4" true (Q.equal (Q.pow2 (-5)) (D.geometric_half_pmf_q 4))

let test_pmf_sums_to_one () =
  let s = ref 0.0 in
  for k = 0 to 60 do
    s := !s +. D.geometric_half_pmf k
  done;
  Alcotest.(check (float 1e-12)) "mass 1" 1.0 !s

let test_survival () =
  Alcotest.(check (float 1e-12)) "sf 0" 1.0 (D.geometric_half_sf 0);
  Alcotest.(check (float 1e-12)) "sf 3" 0.125 (D.geometric_half_sf 3);
  Alcotest.(check (float 1e-12)) "sf negative" 1.0 (D.geometric_half_sf (-2));
  (* sf(k) = sum_{j>=k} pmf(j), spot check *)
  let tail = ref 0.0 in
  for j = 5 to 80 do
    tail := !tail +. D.geometric_half_pmf j
  done;
  Alcotest.(check (float 1e-12)) "sf consistent" (D.geometric_half_sf 5) !tail

let test_geometric_pmf_general () =
  Alcotest.(check (float 1e-12)) "p=0.25 k=2" (0.75 *. 0.75 *. 0.25) (D.geometric_pmf ~p:0.25 2)

let test_categorical () =
  let rng = Rng.create 3 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = D.sample_categorical rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  Alcotest.(check (float 0.02)) "ratio 1:3" 0.25 (float_of_int counts.(0) /. 40_000.0);
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Dist.sample_categorical: weights must have positive sum") (fun () ->
      ignore (D.sample_categorical rng [| 0.0; 0.0 |]))

let test_categorical_table_matches_scan () =
  (* the precomputed cumulative table draws the same index as the linear
     scan from the same generator state, draw for draw — including
     zero-weight entries at the ends and in the middle *)
  List.iter
    (fun w ->
      let table = D.categorical w in
      let a = Rng.create 13 and b = Rng.create 13 in
      for i = 1 to 4_000 do
        let want = D.sample_categorical a w and got = D.sample_categorical_table table b in
        Alcotest.(check int) (Printf.sprintf "draw %d" i) want got
      done)
    [
      [| 1.0 |];
      [| 1.0; 0.0; 3.0 |];
      [| 0.0; 0.0; 2.0; 5.0; 0.5 |];
      [| 0.25; 0.25; 0.25; 0.25 |];
      [| 1e-12; 1.0; 1e12 |];
      Array.init 64 (fun i -> float_of_int (i + 1));
    ]

let test_categorical_table_distribution () =
  let table = D.categorical [| 1.0; 0.0; 3.0 |] in
  let rng = Rng.create 31 in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = D.sample_categorical_table table rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  Alcotest.(check (float 0.02)) "ratio 1:3" 0.25 (float_of_int counts.(0) /. 40_000.0)

let test_categorical_validation () =
  let check_invalid name w =
    match D.categorical w with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  check_invalid "empty" [||];
  check_invalid "negative weight" [| 1.0; -0.5 |];
  check_invalid "all zero" [| 0.0; 0.0 |];
  check_invalid "nan weight" [| 1.0; Float.nan |]

let test_pmf_ops () =
  let pmf = [ (0, Q.of_ints 1 3); (1, Q.of_ints 1 3); (0, Q.of_ints 1 3) ] in
  let merged = D.pmf_merge pmf in
  Alcotest.(check int) "merged size" 2 (List.length merged);
  Alcotest.(check bool) "merged mass at 0" true (Q.equal (Q.of_ints 2 3) (List.assoc 0 merged));
  Alcotest.(check bool) "total" true (Q.equal Q.one (D.pmf_total merged));
  let e = D.pmf_expect merged (fun v -> Q.of_int v) in
  Alcotest.(check bool) "expectation 1/3" true (Q.equal (Q.of_ints 1 3) e)

let test_pmf_normalize () =
  let pmf = [ (0, Q.one); (1, Q.one) ] in
  let n = D.pmf_normalize pmf in
  Alcotest.(check bool) "normalized" true (Q.equal Q.one (D.pmf_total n));
  Alcotest.(check bool) "halved" true (Q.equal Q.half (List.assoc 0 n));
  Alcotest.check_raises "zero mass" (Invalid_argument "Dist.pmf_normalize: zero total mass")
    (fun () -> ignore (D.pmf_normalize [ (0, Q.zero) ]))

let prop name ?(count = 100) gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let properties =
  [
    prop "sampler matches pmf mean" QCheck.(int_range 0 1000) (fun seed ->
        let rng = Rng.create seed in
        let n = 20_000 in
        let s = ref 0 in
        for _ = 1 to n do
          s := !s + D.sample_geometric_half rng
        done;
        Float.abs ((float_of_int !s /. float_of_int n) -. 1.0) < 0.1);
    prop "pmf_merge preserves total mass"
      QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 0 4) (int_range 0 100)))
      (fun entries ->
        let pmf = List.map (fun (v, w) -> (v, Q.of_ints w 100)) entries in
        Q.equal (D.pmf_total pmf) (D.pmf_total (D.pmf_merge pmf)));
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("geometric_half pmf", test_geometric_half_pmf);
      ("pmf mass", test_pmf_sums_to_one);
      ("survival function", test_survival);
      ("general geometric pmf", test_geometric_pmf_general);
      ("categorical sampling", test_categorical);
      ("categorical table = scan (draw-for-draw)", test_categorical_table_matches_scan);
      ("categorical table distribution", test_categorical_table_distribution);
      ("categorical table validation", test_categorical_validation);
      ("pmf merge/expect", test_pmf_ops);
      ("pmf normalize", test_pmf_normalize);
    ]
  @ properties
