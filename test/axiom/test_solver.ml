(* The conflict-driven solver must be observationally indistinguishable
   from the generate-and-prune engine: same decision tree, so not just the
   same outcome sets but the same accepted-candidate count per outcome.
   The parity tests below pin that across the whole corpus under all four
   models (and across WO windows, whose static edges reshape every
   instance). The solver-only tests then go where Generate cannot: sizes
   whose candidate spaces make generate-and-prune exceed any reasonable
   budget, pinned against hand-written expectations and the operational
   enumerator. *)

module L = Memrel_machine.Litmus
module G = Memrel_axiom.Generate
module S = Memrel_axiom.Solver
module Model = Memrel_memmodel.Model
module Budget = Memrel_prob.Budget

let sc = Model.Sequential_consistency
let families = [ sc; Model.Total_store_order; Model.Partial_store_order; Model.Weak_ordering ]

let outcome_testable = Alcotest.(list (list (pair string int)))
let counted_testable = Alcotest.(list (pair (list (pair string int)) int))

let generate_entries ?window t family =
  List.map (fun e -> (e.G.outcome, e.G.candidates)) (G.run ?window t family).G.entries

let solver_entries ?window t family =
  List.map (fun e -> (e.S.outcome, e.S.candidates)) (S.run ?window t family).S.entries

(* outcome sets AND per-outcome candidate counts, corpus x models: the
   strongest cheap statement that the two engines walk the same leaves *)
let test_corpus_parity () =
  List.iter
    (fun t ->
      List.iter
        (fun family ->
          Alcotest.check counted_testable
            (Printf.sprintf "%s under %s" t.L.name (Model.family_name family))
            (generate_entries t family) (solver_entries t family))
        families)
    L.all

(* WO's reorder window rewrites the static skeleton of every instance;
   windows 1-3 cover no-reordering, adjacent-swap, and genuinely weak *)
let test_wo_window_parity () =
  List.iter
    (fun t ->
      List.iter
        (fun window ->
          Alcotest.check counted_testable
            (Printf.sprintf "%s WO window=%d" t.L.name window)
            (generate_entries ~window t Model.Weak_ordering)
            (solver_entries ~window t Model.Weak_ordering))
        [ 1; 2; 3 ])
    L.all

let test_accepted_totals () =
  List.iter
    (fun name ->
      let t = L.find name in
      List.iter
        (fun family ->
          let g = (G.run t family).G.stats in
          let s = (S.run t family).S.stats in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s accepted" name (Model.family_name family))
            g.G.accepted s.S.accepted;
          Alcotest.(check bool) "memo keys bounded by accepted" true
            (s.S.distinct_keys <= max 1 s.S.accepted);
          Alcotest.(check (float 1e-9))
            "same naive-space accounting" g.G.log10_naive_space s.S.log10_naive_space)
        families)
    [ "sb"; "iriw"; "inc4"; "wrc" ]

(* budget governance mirrors Generate's partial contract (PR5): a capped
   run must flag exhaustion and stay a subset of the full outcome set *)
let test_budget_candidate_cap () =
  let t = L.find "sb" in
  let full = S.outcome_set t Model.Total_store_order in
  let budget = Budget.create ~max_work:2 () in
  let r = S.run ~budget t Model.Total_store_order in
  (match r.S.stats.S.exhausted with
  | Some e ->
    Alcotest.(check string) "cause is the work cap" "work cap"
      (Budget.cause_to_string e.Budget.cause)
  | None -> Alcotest.fail "capped run must report exhaustion");
  Alcotest.(check bool) "at most 2 candidates accepted" true (r.S.stats.S.accepted <= 2);
  Alcotest.(check bool) "some progress was made" true (r.S.stats.S.accepted > 0);
  List.iter
    (fun e ->
      Alcotest.(check bool) "partial outcome is in the full set" true
        (List.mem e.S.outcome full))
    r.S.entries

let test_budget_deadline_zero_partial () =
  let t = L.find "sb" in
  let budget = Budget.create ~deadline_s:0.0 () in
  let r = S.run ~budget t sc in
  (match r.S.stats.S.exhausted with
  | Some e ->
    Alcotest.(check string) "cause is the deadline" "deadline"
      (Budget.cause_to_string e.Budget.cause)
  | None -> Alcotest.fail "expired deadline must report exhaustion");
  Alcotest.(check int) "no candidates accepted" 0 r.S.stats.S.accepted

let test_budget_complete_run_not_exhausted () =
  let t = L.find "sb" in
  let budget = Budget.create ~max_work:1_000_000 () in
  let r = S.run ~budget t Model.Total_store_order in
  Alcotest.(check bool) "generous budget completes" true (r.S.stats.S.exhausted = None);
  Alcotest.check outcome_testable "same outcomes as unbudgeted"
    (S.outcome_set t Model.Total_store_order)
    (List.map (fun e -> e.S.outcome) r.S.entries)

(* the PR5 contract at the differential layer: a budget-partial axiomatic
   run proves nothing about forbidden outcomes, so the comparison must be
   refused — not reported as (spurious) disagreement, never as agreement *)
let test_partial_refuses_differential () =
  let module D = Memrel_axiom.Differential in
  let t = L.find "sb" in
  let budget = Budget.create ~max_work:2 () in
  let r = D.run ~budget ~engine:D.Solver_engine t Model.Total_store_order in
  Alcotest.(check bool) "partial flagged" true r.D.partial;
  Alcotest.(check bool) "agreement refused" false r.D.agree;
  Alcotest.(check int) "no disagreements fabricated" 0 (List.length r.D.disagreements);
  let described = D.describe r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "describe says the comparison was refused" true
    (contains described "PARTIAL")

(* atomic increment with 7 threads: 5040^2 ~ 25M allowed SC candidates,
   past what generate-and-prune finishes inside a differential budget. The
   solver must still conclude, and under SC the final value is any count
   of "updates that stuck", 1..7 — pinned by hand, not against an engine *)
let test_inc7_solver_only () =
  let t = L.increment_n 7 in
  let r = S.run t sc in
  Alcotest.(check bool) "complete" true (r.S.stats.S.exhausted = None);
  Alcotest.check outcome_testable "inc7 SC = x in 1..7"
    (List.init 7 (fun i -> [ ("x", i + 1) ]))
    (List.map (fun e -> e.S.outcome) r.S.entries);
  Alcotest.(check bool) "memoization engaged" true (r.S.stats.S.memo_hits > 0)

(* a 6-thread IRIW family (two writers per location, four readers split
   across the two orders) is operationally cheap but axiomatically wide;
   pin the solver against the operational enumerator directly *)
let iriw6 =
  let module I = Memrel_machine.Instr in
  let wx v = [| I.Store { loc = L.x; src = I.Imm v } |] in
  let wy v = [| I.Store { loc = L.y; src = I.Imm v } |] in
  let rr a b = [| I.Load { loc = a; reg = 0 }; I.Load { loc = b; reg = 1 } |] in
  {
    L.name = "iriw6";
    description = "IRIW with two writers per location and two reader pairs";
    programs = [ wx 1; wy 1; rr L.x L.y; rr L.y L.x; wx 2; wy 2 ];
    initial_mem = [];
    observe = L.observe_regs [ (2, 0); (2, 1); (3, 0); (3, 1) ];
    relaxed_outcome =
      [ ("2:r0", 1); ("2:r1", 0); ("3:r0", 1); ("3:r1", 0) ];
    allowed_under = (fun f -> f = Model.Weak_ordering);
  }

let test_iriw6_solver_vs_operational () =
  Alcotest.check outcome_testable "iriw6 solver = operational under SC"
    (L.outcome_set iriw6 sc) (S.outcome_set iriw6 sc)

let suite =
  [
    Alcotest.test_case "corpus x models: outcome + count parity" `Quick test_corpus_parity;
    Alcotest.test_case "WO windows 1-3: outcome + count parity" `Quick test_wo_window_parity;
    Alcotest.test_case "accepted totals and memo bounds" `Quick test_accepted_totals;
    Alcotest.test_case "candidate cap yields honest partial coverage" `Quick
      test_budget_candidate_cap;
    Alcotest.test_case "expired deadline yields empty partial run" `Quick
      test_budget_deadline_zero_partial;
    Alcotest.test_case "generous budget runs to completion" `Quick
      test_budget_complete_run_not_exhausted;
    Alcotest.test_case "partial solver run refuses the differential" `Quick
      test_partial_refuses_differential;
    Alcotest.test_case "inc7 completes solver-only (generate-infeasible)" `Slow
      test_inc7_solver_only;
    Alcotest.test_case "6-thread iriw6 pinned against the operational enumerator" `Quick
      test_iriw6_solver_vs_operational;
  ]
