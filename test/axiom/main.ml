let () =
  Alcotest.run "memrel_axiom"
    [ ("order", Test_order.suite); ("axiom", Test_axiom.suite) ]
