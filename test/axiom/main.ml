let () =
  Alcotest.run "memrel_axiom"
    [ ("order", Test_order.suite); ("axiom", Test_axiom.suite); ("solver", Test_solver.suite) ]
