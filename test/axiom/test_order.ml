(* The incremental transitive-closure order underpinning every acyclicity
   axiom: accepted edges must be exactly the cycle-free ones, reachability
   must be transitively closed after every insertion, and push/pop must
   restore the closure bit-for-bit (the generator backtracks through it
   thousands of times per test). *)

module Order = Memrel_axiom.Order

let test_chain () =
  let o = Order.create 4 in
  Alcotest.(check bool) "0->1" true (Order.add o 0 1);
  Alcotest.(check bool) "1->2" true (Order.add o 1 2);
  Alcotest.(check bool) "2->3" true (Order.add o 2 3);
  Alcotest.(check bool) "0 reaches 3 transitively" true (Order.reaches o 0 3);
  Alcotest.(check bool) "3 does not reach 0" false (Order.reaches o 3 0);
  Alcotest.(check bool) "redundant 0->3 still accepted" true (Order.add o 0 3)

let test_cycle_rejected () =
  let o = Order.create 3 in
  ignore (Order.add o 0 1);
  ignore (Order.add o 1 2);
  Alcotest.(check bool) "2->0 closes a cycle" false (Order.add o 2 0);
  Alcotest.(check bool) "closure untouched by the rejection" false (Order.reaches o 2 0);
  Alcotest.(check bool) "self-loop rejected" false (Order.add o 1 1);
  Alcotest.(check int) "two rejections counted" 2 (Order.rejections o)

let test_push_pop () =
  let o = Order.create 3 in
  ignore (Order.add o 0 1);
  Order.push o;
  ignore (Order.add o 1 2);
  Alcotest.(check bool) "0 reaches 2 inside the snapshot" true (Order.reaches o 0 2);
  Order.pop o;
  Alcotest.(check bool) "0->1 survives the pop" true (Order.reaches o 0 1);
  Alcotest.(check bool) "1->2 rolled back" false (Order.reaches o 1 2);
  Alcotest.(check bool) "2->0 legal again after the pop" true (Order.add o 2 0)

let test_bounds () =
  Alcotest.check_raises "too many vertices" (Invalid_argument "")
    (fun () ->
      try ignore (Order.create (Order.max_vertices + 1))
      with Invalid_argument _ -> raise (Invalid_argument ""));
  Alcotest.check_raises "pop without push" (Invalid_argument "")
    (fun () ->
      try Order.pop (Order.create 2) with Invalid_argument _ -> raise (Invalid_argument ""))

let suite =
  [
    Alcotest.test_case "chain accepts and closes transitively" `Quick test_chain;
    Alcotest.test_case "cycles and self-loops rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "push/pop restores the closure" `Quick test_push_pop;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
  ]
