(* The incremental transitive-closure order underpinning every acyclicity
   axiom: accepted edges must be exactly the cycle-free ones, reachability
   must be transitively closed after every insertion, and push/pop must
   restore the closure bit-for-bit (the generator backtracks through it
   thousands of times per test). *)

module Order = Memrel_axiom.Order

let test_chain () =
  let o = Order.create 4 in
  Alcotest.(check bool) "0->1" true (Order.add o 0 1);
  Alcotest.(check bool) "1->2" true (Order.add o 1 2);
  Alcotest.(check bool) "2->3" true (Order.add o 2 3);
  Alcotest.(check bool) "0 reaches 3 transitively" true (Order.reaches o 0 3);
  Alcotest.(check bool) "3 does not reach 0" false (Order.reaches o 3 0);
  Alcotest.(check bool) "redundant 0->3 still accepted" true (Order.add o 0 3)

let test_cycle_rejected () =
  let o = Order.create 3 in
  ignore (Order.add o 0 1);
  ignore (Order.add o 1 2);
  Alcotest.(check bool) "2->0 closes a cycle" false (Order.add o 2 0);
  Alcotest.(check bool) "closure untouched by the rejection" false (Order.reaches o 2 0);
  Alcotest.(check bool) "self-loop rejected" false (Order.add o 1 1);
  Alcotest.(check int) "two rejections counted" 2 (Order.rejections o)

let test_push_pop () =
  let o = Order.create 3 in
  ignore (Order.add o 0 1);
  Order.push o;
  ignore (Order.add o 1 2);
  Alcotest.(check bool) "0 reaches 2 inside the snapshot" true (Order.reaches o 0 2);
  Order.pop o;
  Alcotest.(check bool) "0->1 survives the pop" true (Order.reaches o 0 1);
  Alcotest.(check bool) "1->2 rolled back" false (Order.reaches o 1 2);
  Alcotest.(check bool) "2->0 legal again after the pop" true (Order.add o 2 0)

(* Randomized equivalence against the seed's copy-based snapshots: drive
   both implementations through an identical random script of add / push /
   pop (pop only with a scope open, as every caller does) and require the
   same accept/reject verdict on every add plus identical reachability
   matrices at every step. Sizes straddle the word boundary (63-bit ints):
   n = 40 is single-word, 70 and 100 are multi-word, where the trail's
   per-word undo records earn their keep. Deterministic seeds — a failure
   reproduces. *)
let test_randomized_vs_reference () =
  List.iter
    (fun (n, seed, steps) ->
      let st = Random.State.make [| seed |] in
      let o = Order.create n and r = Order.Reference.create n in
      let depth = ref 0 in
      let same_matrices step =
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if Order.reaches o u v <> Order.Reference.reaches r u v then
              Alcotest.failf "n=%d seed=%d step %d: closures diverge at (%d,%d)" n seed step
                u v
          done
        done
      in
      for step = 1 to steps do
        (match Random.State.int st 10 with
        | 0 | 1 ->
          Order.push o;
          Order.Reference.push r;
          incr depth
        | 2 when !depth > 0 ->
          Order.pop o;
          Order.Reference.pop r;
          decr depth
        | _ ->
          let u = Random.State.int st n and v = Random.State.int st n in
          let a = Order.add o u v and b = Order.Reference.add r u v in
          if a <> b then
            Alcotest.failf "n=%d seed=%d step %d: add %d->%d verdicts differ" n seed step u v);
        if step mod 97 = 0 then same_matrices step
      done;
      same_matrices steps;
      (* rewind everything still open: the closures must keep agreeing *)
      while !depth > 0 do
        Order.pop o;
        Order.Reference.pop r;
        decr depth;
        same_matrices (-(!depth))
      done;
      Alcotest.(check int) "same accepted count" (Order.Reference.additions r)
        (Order.additions o);
      Alcotest.(check int) "same rejected count" (Order.Reference.rejections r)
        (Order.rejections o))
    [ (40, 11, 4000); (70, 23, 4000); (100, 37, 3000) ]

let test_bounds () =
  Alcotest.check_raises "too many vertices" (Invalid_argument "")
    (fun () ->
      try ignore (Order.create (Order.max_vertices + 1))
      with Invalid_argument _ -> raise (Invalid_argument ""));
  Alcotest.check_raises "pop without push" (Invalid_argument "")
    (fun () ->
      try Order.pop (Order.create 2) with Invalid_argument _ -> raise (Invalid_argument ""))

let suite =
  [
    Alcotest.test_case "chain accepts and closes transitively" `Quick test_chain;
    Alcotest.test_case "cycles and self-loops rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "push/pop restores the closure" `Quick test_push_pop;
    Alcotest.test_case "randomized equivalence with the copy-based reference" `Quick
      test_randomized_vs_reference;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
  ]
