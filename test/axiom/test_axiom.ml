(* Pinned allowed-outcome sets for the classic litmus shapes under each
   model, computed purely axiomatically (no operational run). These are the
   textbook verdicts: sb distinguishes SC from TSO, mp distinguishes TSO
   from PSO, lb and iriw distinguish PSO from WO. The differential suite in
   test/machine checks axiomatic = operational corpus-wide; here the exact
   sets are written out by hand so a simultaneous bug in both semantics
   cannot cancel out. *)

module L = Memrel_machine.Litmus
module G = Memrel_axiom.Generate
module Model = Memrel_memmodel.Model

let sc = Model.Sequential_consistency
let tso = Model.Total_store_order
let pso = Model.Partial_store_order
let wo = Model.Weak_ordering

let outcome_testable = Alcotest.(list (list (pair string int)))

let check_set name t family expected () =
  Alcotest.check outcome_testable name (List.sort compare expected)
    (G.outcome_set t family)

(* -- sb: labels 0:r0, 1:r0 --------------------------------------------- *)

let sb_o (a, b) = [ ("0:r0", a); ("1:r0", b) ]
let sb_sc = List.map sb_o [ (0, 1); (1, 0); (1, 1) ]
let sb_relaxed_all = List.map sb_o [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* -- mp: labels 1:r0, 1:r1 --------------------------------------------- *)

let mp_o (a, b) = [ ("1:r0", a); ("1:r1", b) ]
let mp_strong = List.map mp_o [ (0, 0); (0, 1); (1, 1) ]
let mp_relaxed = List.map mp_o [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* -- lb: labels 0:r0, 1:r0 --------------------------------------------- *)

let lb_o (a, b) = [ ("0:r0", a); ("1:r0", b) ]
let lb_strong = List.map lb_o [ (0, 0); (0, 1); (1, 0) ]
let lb_relaxed = List.map lb_o [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* -- iriw: labels 2:r0, 2:r1, 3:r0, 3:r1 ------------------------------- *)

let iriw_o (a, b, c, d) = [ ("2:r0", a); ("2:r1", b); ("3:r0", c); ("3:r1", d) ]

let iriw_all =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          List.concat_map (fun c -> List.map (fun d -> iriw_o (a, b, c, d)) [ 0; 1 ])
            [ 0; 1 ])
        [ 0; 1 ])
    [ 0; 1 ]

(* readers disagreeing on the store order is the single excluded combination
   when one memory order exists *)
let iriw_strong = List.filter (fun o -> o <> iriw_o (1, 0, 1, 0)) iriw_all

(* sb under TSO must admit EXACTLY the one extra outcome SC forbids: the
   acceptance criterion of the subsystem *)
let test_sb_tso_is_sc_plus_relaxed () =
  let t = L.find "sb" in
  let sc_set = G.outcome_set t sc in
  let tso_set = G.outcome_set t tso in
  Alcotest.check outcome_testable "TSO = SC + relaxed"
    (List.sort compare (t.L.relaxed_outcome :: sc_set))
    tso_set

(* WO with window = 1 cannot reorder anything: axiomatically it must
   collapse to the SC outcome set *)
let test_wo_window1_is_sc () =
  List.iter
    (fun name ->
      let t = L.find name in
      Alcotest.check outcome_testable
        (name ^ " WO window=1 = SC")
        (G.outcome_set t sc)
        (G.outcome_set ~window:1 t wo))
    [ "sb"; "mp"; "lb"; "iriw"; "2+2w" ]

(* the rmw fix: an update reading anything but its coherence predecessor is
   an fr;co cycle, so x=1 is axiomatically impossible under every model *)
let test_inc_rmw_atomic () =
  let t = L.find "inc+rmw" in
  List.iter
    (fun family ->
      Alcotest.check outcome_testable
        ("inc+rmw under " ^ Model.family_name family)
        [ [ ("x", 2) ] ]
        (G.outcome_set t family))
    [ sc; tso; pso; wo ]

(* the sparse fence emission (per-thread slices, redundancy-witness probe)
   must close to exactly the seed's dense before x after product, on every
   corpus program — including the fenceless ones, where both are empty *)
let test_fence_edges_closure_equal () =
  let module A = Memrel_axiom.Axioms in
  let module O = Memrel_axiom.Order in
  List.iter
    (fun (t : L.t) ->
      let events = Memrel_axiom.Event.of_programs t.L.programs in
      let n = Array.length events in
      let close edges =
        let o = O.create n in
        List.iter (fun (u, v) -> ignore (O.add o u v)) edges;
        o
      in
      let sparse = A.fence_edges t.L.programs events in
      let dense = A.fence_edges_reference t.L.programs events in
      let a = close sparse and b = close dense in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if O.reaches a u v <> O.reaches b u v then
            Alcotest.failf "%s: fence closures differ at (%d, %d)" t.L.name u v
        done
      done;
      Alcotest.(check bool)
        (t.L.name ^ ": sparse emission no larger than dense")
        true
        (List.length sparse <= List.length dense))
    L.all

(* the seed multiplied float factorials: 200 same-location writes made
   naive_space infinite and every derived ratio nan. The log-space form
   stays finite and the linear convenience clamps. *)
let test_naive_space_log_overflow () =
  let module I = Memrel_machine.Instr in
  let prog = Array.init 200 (fun i -> I.Store { loc = 0; src = I.Imm i }) in
  let events = Memrel_axiom.Event.of_programs [ prog ] in
  let lg = Memrel_axiom.Event.log10_naive_space events in
  Alcotest.(check bool) "log measure finite and past float range" true
    (Float.is_finite lg && lg > 308.0);
  let linear = G.naive_space_of_log10 lg in
  Alcotest.(check bool) "linear form clamps instead of overflowing" true
    (Float.is_finite linear && linear = Float.max_float);
  Alcotest.(check (float 1e-9)) "small values survive the round-trip" 4.0
    (G.naive_space_of_log10 (log10 4.0))

let test_pruning_stats () =
  let t = L.find "sb" in
  let stats = G.iter t sc (fun _ -> ()) in
  Alcotest.(check int) "4 events" 4 stats.G.events;
  Alcotest.(check int) "3 accepted" 3 stats.G.accepted;
  Alcotest.(check bool) "something pruned under SC" true (stats.G.pruned > 0);
  Alcotest.(check (float 1e-9)) "naive space = 4" 4.0 stats.G.naive_space

(* budget governance: a candidate cap yields a partial run whose outcome
   set is a subset of the full one, honestly flagged as exhausted *)
let test_budget_candidate_cap () =
  let t = L.find "sb" in
  let full = G.outcome_set t tso in
  let budget = Memrel_prob.Budget.create ~max_work:2 () in
  let r = G.run ~budget t tso in
  (match r.G.stats.G.exhausted with
  | Some e ->
      Alcotest.(check string)
        "cause is the work cap" "work cap"
        (Memrel_prob.Budget.cause_to_string e.Memrel_prob.Budget.cause)
  | None -> Alcotest.fail "capped run must report exhaustion");
  Alcotest.(check bool) "at most 2 candidates accepted" true (r.G.stats.G.accepted <= 2);
  Alcotest.(check bool) "some progress was made" true (r.G.stats.G.accepted > 0);
  List.iter
    (fun e ->
      Alcotest.(check bool) "partial outcome is in the full set" true
        (List.mem e.G.outcome full))
    r.G.entries

let test_budget_deadline_zero_partial () =
  let t = L.find "sb" in
  let budget = Memrel_prob.Budget.create ~deadline_s:0.0 () in
  let r = G.run ~budget t sc in
  (match r.G.stats.G.exhausted with
  | Some e ->
      Alcotest.(check string)
        "cause is the deadline" "deadline"
        (Memrel_prob.Budget.cause_to_string e.Memrel_prob.Budget.cause)
  | None -> Alcotest.fail "expired deadline must report exhaustion");
  Alcotest.(check int) "no candidates accepted" 0 r.G.stats.G.accepted;
  Alcotest.(check outcome_testable) "no outcomes" [] (List.map (fun e -> e.G.outcome) r.G.entries)

let test_budget_complete_run_not_exhausted () =
  let t = L.find "sb" in
  let budget = Memrel_prob.Budget.create ~max_work:1_000_000 () in
  let r = G.run ~budget t tso in
  Alcotest.(check bool) "generous budget completes" true (r.G.stats.G.exhausted = None);
  Alcotest.(check outcome_testable) "same outcomes as unbudgeted" (G.outcome_set t tso)
    (List.map (fun e -> e.G.outcome) r.G.entries)

let sets name expected_by_family =
  List.map
    (fun (family, expected) ->
      let t = L.find name in
      Alcotest.test_case
        (Printf.sprintf "%s under %s pinned" name (Model.family_name family))
        `Quick
        (check_set name t family expected))
    expected_by_family

let suite =
  sets "sb" [ (sc, sb_sc); (tso, sb_relaxed_all); (pso, sb_relaxed_all); (wo, sb_relaxed_all) ]
  @ sets "mp" [ (sc, mp_strong); (tso, mp_strong); (pso, mp_relaxed); (wo, mp_relaxed) ]
  @ sets "lb" [ (sc, lb_strong); (tso, lb_strong); (pso, lb_strong); (wo, lb_relaxed) ]
  @ sets "iriw"
      [ (sc, iriw_strong); (tso, iriw_strong); (pso, iriw_strong); (wo, iriw_all) ]
  @ [
      Alcotest.test_case "sb TSO = SC set + exactly the relaxed outcome" `Quick
        test_sb_tso_is_sc_plus_relaxed;
      Alcotest.test_case "WO window=1 collapses to SC" `Quick test_wo_window1_is_sc;
      Alcotest.test_case "inc+rmw forces x=2 everywhere" `Quick test_inc_rmw_atomic;
      Alcotest.test_case "fence edges close to the dense reference corpus-wide" `Quick
        test_fence_edges_closure_equal;
      Alcotest.test_case "naive space survives factorial overflow in log space" `Quick
        test_naive_space_log_overflow;
      Alcotest.test_case "generator statistics" `Quick test_pruning_stats;
      Alcotest.test_case "candidate cap yields honest partial coverage" `Quick
        test_budget_candidate_cap;
      Alcotest.test_case "expired deadline yields empty partial run" `Quick
        test_budget_deadline_zero_partial;
      Alcotest.test_case "generous budget runs to completion" `Quick
        test_budget_complete_run_not_exhausted;
    ]
