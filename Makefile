# Tier-1 verification is `make ci`: build + tests + smoke runs of the MC
# throughput bench, the exhaustive-enumeration bench (the latter refreshes
# BENCH_enum.json, including the inc4 SC/TSO exhaustive counts), the
# axiomatic-vs-operational differential, the candidate-generation bench, the
# robustness smoke (checkpoint/resume + fault-retry bit-identity, plus the
# CLI's exit-3 partial-result contract), the service smoke (daemon
# cold/warm/restart cache behavior plus its error and partial exit codes),
# the chaos smoke (seeded fault plans vs a clean oracle, kill -9 recovery,
# overload shedding, live-socket refusal, SIGTERM drain), and the
# external-memory enumeration contract (extmem = in-RAM outcome sets
# and terminal counts, tiny-budget spill generations, CLI kill/resume).

.PHONY: all build check test bench bench-json bench-enum bench-axiom bench-exact bench-robust bench-serve ci clean

all: build

# fast type-and-rules pass, no linking or tests
check:
	dune build @check

build:
	dune build

test:
	dune runtest

# the full paper harness (E1..E16 + Bechamel timings)
bench:
	dune exec bench/main.exe

# full-scale MC throughput bench; writes BENCH_mc.json in the repo root
bench-json:
	dune exec bench/main.exe -- --json BENCH_mc.json

# full-scale enumeration bench (legacy vs packed key, POR); writes BENCH_enum.json
bench-enum:
	dune exec bench/main.exe -- --json-enum BENCH_enum.json

# full-scale candidate-generation bench (corpus + inc3..inc5 under all four
# models plus the inc6/inc7 SC frontier where only the solver concludes;
# every row three-way validated: solver = generate = operational, candidate
# counts included); writes BENCH_axiom.json
bench-axiom:
	dune exec bench/main.exe -- --json-axiom BENCH_axiom.json

# exact-arithmetic bench: fixnum fast path vs limb-array reference on the
# exact DP workloads, results asserted identical; writes BENCH_exact.json
bench-exact:
	dune exec bench/main.exe -- --json-exact BENCH_exact.json

# robustness bench: governance/checkpoint overhead vs the baseline engine,
# snapshot size, restore cost; resume and fault-retry runs asserted
# bit-identical to the baseline; writes BENCH_robust.json
bench-robust:
	dune exec bench/main.exe -- --json-robust BENCH_robust.json

# service bench: cold vs warm vs restarted-daemon latency on a mixed query
# trace, warm throughput, responses asserted identical across cache tiers;
# writes BENCH_serve.json
bench-serve:
	dune exec bench/main.exe -- --json-serve BENCH_serve.json

ci:
	dune build
	dune runtest
	dune exec bin/memrel_cli.exe -- axiom sb mp lb inc3 inc4
	# solver-vs-generate differential smoke: both engines against the
	# operational machine, per-outcome candidate counts cross-checked
	dune exec bin/memrel_cli.exe -- axiom sb mp lb inc3 inc4 --engine both
	# --json-mc-smoke asserts streaming = Reference in-process before timing
	dune exec bench/main.exe -- --json-mc-smoke /tmp/BENCH_mc_smoke.json
	dune exec bench/main.exe -- --json-enum-smoke BENCH_enum.json
	dune exec bench/main.exe -- --json-axiom-smoke /tmp/BENCH_axiom_smoke.json
	dune exec bench/main.exe -- --json-exact-smoke /tmp/BENCH_exact_smoke.json
	dune exec bench/main.exe -- --json-robust-smoke /tmp/BENCH_robust_smoke.json
	# serve bench smoke asserts cold = warm = disk responses before timing
	dune exec bench/main.exe -- --json-serve-smoke /tmp/BENCH_serve_smoke.json
	# daemon end-to-end: cold batch, warm replay, restart -> disk hits,
	# bad-request (123) and budget-partial (3) exit codes, clean shutdown
	sh scripts/serve_smoke.sh
	# chaos drill (short form): seeded fault plans answered byte-identical
	# to a clean oracle, a kill -9/restart cycle over the same cache+spill
	# dirs, overload shedding with retrying clients, live-socket refusal,
	# SIGTERM drain. `scripts/chaos_smoke.sh --full` is the acceptance run.
	sh scripts/chaos_smoke.sh
	# partial-result contract: an expired deadline must exit 3, not 0/crash
	dune exec bin/memrel_cli.exe -- window --trials 100000 --deadline 0 > /dev/null; test $$? -eq 3
	dune exec bin/memrel_cli.exe -- enumerate inc3 --max-states 50 > /dev/null; test $$? -eq 3
	# external-memory enumeration e2e: a tiny 1 MiB budget must still produce
	# the exact in-RAM totals (asserted inside --json-enum-smoke above; here
	# the CLI path), then the kill/resume contract: a state-capped run exits 3
	# keeping its spill dir, and --resume completes it with identical totals
	dune exec bin/memrel_cli.exe -- enumerate inc4 --extmem --mem-budget 1 | grep -q "states 3931"
	rm -rf /tmp/memrel_ci_spill
	dune exec bin/memrel_cli.exe -- enumerate inc4 --spill-dir /tmp/memrel_ci_spill --max-states 1500 > /dev/null; test $$? -eq 3
	dune exec bin/memrel_cli.exe -- enumerate inc4 --spill-dir /tmp/memrel_ci_spill --resume | grep -q "states 3931"
	rm -rf /tmp/memrel_ci_spill
	# adaptive-stopping contract: --target-width prints the achieved interval
	# and exits 0; under an expired deadline the partial result exits 3
	dune exec bin/memrel_cli.exe -- shift --target-width 0.01 --seed 4 | grep -q "adaptive: target width"
	dune exec bin/memrel_cli.exe -- joint --model sc -n 2 --target-width 0.01 > /dev/null
	dune exec bin/memrel_cli.exe -- shift --target-width 0.01 --deadline 0 > /dev/null; test $$? -eq 3

clean:
	dune clean
