# Tier-1 verification is `make ci`: build + tests + smoke runs of the MC
# throughput bench and the exhaustive-enumeration bench (the latter
# refreshes BENCH_enum.json, including the inc4 SC/TSO exhaustive counts).

.PHONY: all build check test bench bench-json bench-enum ci clean

all: build

build:
	dune build

# fast type-and-rules pass, no linking or tests
check:
	dune build @check

test:
	dune runtest

# the full paper harness (E1..E16 + Bechamel timings)
bench:
	dune exec bench/main.exe

# full-scale MC throughput bench; writes BENCH_mc.json in the repo root
bench-json:
	dune exec bench/main.exe -- --json BENCH_mc.json

# full-scale enumeration bench (legacy vs packed key, POR); writes BENCH_enum.json
bench-enum:
	dune exec bench/main.exe -- --json-enum BENCH_enum.json

ci:
	dune build
	dune runtest
	dune exec bench/main.exe -- --json-smoke /tmp/BENCH_mc_smoke.json
	dune exec bench/main.exe -- --json-enum-smoke BENCH_enum.json

clean:
	dune clean
