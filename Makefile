# Tier-1 verification is `make ci`: build + tests + a smoke run of the MC
# throughput bench (which also refreshes BENCH_mc.json at reduced scale).

.PHONY: all build check test bench bench-json ci clean

all: build

build:
	dune build

# fast type-and-rules pass, no linking or tests
check:
	dune build @check

test:
	dune runtest

# the full paper harness (E1..E16 + Bechamel timings)
bench:
	dune exec bench/main.exe

# full-scale MC throughput bench; writes BENCH_mc.json in the repo root
bench-json:
	dune exec bench/main.exe -- --json BENCH_mc.json

ci:
	dune build
	dune runtest
	dune exec bench/main.exe -- --json-smoke /tmp/BENCH_mc_smoke.json

clean:
	dune clean
