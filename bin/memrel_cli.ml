(* memrel command-line interface: every experiment in DESIGN.md, runnable
   with explicit parameters. `memrel --help` lists the subcommands. *)

open Memrel
open Cmdliner

let model_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "sc" -> Ok Model.sc
    | "tso" -> Ok (Model.tso ())
    | "pso" -> Ok (Model.pso ())
    | "wo" -> Ok (Model.wo ())
    | _ -> Error (`Msg (Printf.sprintf "unknown model %S (expected sc|tso|pso|wo)" s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Model.name m))

let model_arg =
  Arg.(value & opt model_conv (Model.tso ()) & info [ "model" ] ~docv:"MODEL"
         ~doc:"Memory model: sc, tso, pso or wo.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let trials_arg default =
  Arg.(value & opt int default & info [ "trials" ] ~docv:"N" ~doc:"Monte Carlo trials.")

let threads_arg =
  Arg.(value & opt int 2 & info [ "n"; "threads" ] ~docv:"N" ~doc:"Number of threads.")

(* 0 = auto (Par.default_jobs: one worker per core, minus the caller) *)
let jobs_arg =
  let doc = "Worker domains for Monte Carlo fan-out (0 = one per core). Results are \
             bit-identical for every value." in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let resolve_jobs j = if j <= 0 then None else Some j

(* -- adaptive (CI-width) stopping --------------------------------------- *)

let target_width_arg =
  Arg.(value & opt (some float) None & info [ "target-width" ] ~docv:"W"
         ~doc:"Adaptive stopping: run until the 95% Wilson interval of the simulated \
               probability has width at most W (checked at chunk boundaries; the stopping \
               trial count is deterministic per seed and identical at every --jobs), capped \
               by $(b,--max-trials). The achieved interval is printed either way. Not \
               combinable with --checkpoint/--resume.")

let max_trials_arg =
  Arg.(value & opt (some int) None & info [ "max-trials" ] ~docv:"N"
         ~doc:"Trial cap for $(b,--target-width) (default: the --trials value).")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Print the running estimate and interval to stderr every few chunks.")

let progress_report ~label enabled =
  if not enabled then None
  else
    Some
      (fun ~trials ~successes ->
        let p = Stats.binomial_point ~successes ~trials in
        let ci = Stats.wilson_ci ~successes ~trials ~z:1.96 in
        Printf.eprintf "memrel: %s %9d trials  %.6f [%.6f, %.6f]  width %.6f\n%!" label trials
          p ci.Stats.lo ci.Stats.hi (ci.Stats.hi -. ci.Stats.lo))

(* the adaptive streaming engines run without checkpoints: reject the
   combination instead of silently ignoring the flags *)
let check_adaptive_flags checkpoint resume =
  if checkpoint <> None || resume <> None then begin
    prerr_endline "memrel: --target-width cannot be combined with --checkpoint/--resume";
    false
  end
  else true

let adaptive_status ~(streamed : _ Par.streamed) ~target_width =
  if streamed.Par.target_met then
    Printf.printf "adaptive: target width %g reached after %d trials\n" target_width
      streamed.Par.trials_done
  else
    Printf.printf "adaptive: target width %g NOT reached within %d trials\n" target_width
      streamed.Par.trials_done

(* -- resource governance (budgets, checkpoints, resume) ----------------- *)

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS"
         ~doc:"Wall-clock budget in seconds. On expiry the engine stops cooperatively, the \
               partial result computed so far is printed, and the exit code is 3. \
               $(b,--deadline 0) stops before any work — useful to test the partial path \
               deterministically.")

let max_mem_arg =
  Arg.(value & opt (some int) None & info [ "max-mem" ] ~docv:"MB"
         ~doc:"Major-heap watermark in megabytes (sampled with Gc.quick_stat). Crossing it \
               ends the run with a partial result and exit code 3.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Periodically write a crash-safe snapshot of the Monte Carlo run to FILE \
               (atomic tmp+rename, CRC-guarded, versioned). A final snapshot is written on \
               completion.")

let checkpoint_every_arg =
  Arg.(value & opt int Par.default_checkpoint_every & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Snapshot after every N completed chunks (with --checkpoint).")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Resume from a snapshot written by --checkpoint. Requires the same seed, \
               --trials and chunking; completed chunks are not re-run and the final result \
               is bit-identical to an uninterrupted run. Corrupted, truncated or mismatched \
               snapshots are rejected.")

let budget_of ?max_work deadline max_mem =
  match (deadline, max_mem, max_work) with
  | None, None, None -> None
  | _ ->
    Some
      (Budget.create ?deadline_s:deadline
         ?max_mem_bytes:(Option.map (fun mb -> mb * 1024 * 1024) max_mem)
         ?max_work ())

(* budget-exhausted partial runs share one exit code and a one-line stderr
   summary *)
let partial_exit ~engine = function
  | None -> 0
  | Some e ->
    Printf.eprintf "memrel: %s stopped early — %s; the printed result is partial\n" engine
      (Budget.describe e);
    3

(* typed robustness errors (bad snapshots, exhausted retries) exit cleanly
   instead of escaping as a backtrace *)
let with_robust f =
  try f () with
  | Par.Invalid_snapshot msg ->
    Printf.eprintf "memrel: %s\n" msg;
    Cmd.Exit.some_error
  | Par.Retries_exhausted { chunk; attempts; last_error } ->
    Printf.eprintf "memrel: chunk %d failed after %d attempts (last error: %s)\n" chunk
      attempts last_error;
    Cmd.Exit.some_error

let budget_exit_info =
  Cmd.Exit.info 3
    ~doc:"the resource budget (--deadline, --max-mem or a work cap) was exhausted; the \
          printed result is partial."

let budget_exits = budget_exit_info :: Cmd.Exit.defaults

(* -- exact-arithmetic observability (--stats) -------------------------- *)

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"After the run, print the Bigint fast-path hit rate and the \
               Rational/Combinatorics counters for the exact-arithmetic substrate.")

(* wraps an exact-capable subcommand body: zero the counters going in,
   print them coming out *)
let with_exact_stats enabled f =
  if not enabled then f ()
  else begin
    Bigint.reset_stats ();
    Rational.reset_stats ();
    Combinatorics.clear_caches ();
    let code = f () in
    let bs = Bigint.stats () in
    let rs = Rational.stats () in
    let cs = Combinatorics.cache_stats () in
    Printf.printf "\nexact-arithmetic stats:\n";
    Printf.printf
      "  bigint:   %d small-path / %d big-path ops (hit rate %.4f), %d promotions, %d demotions\n"
      bs.Bigint.small_ops bs.Bigint.big_ops (Bigint.small_hit_rate bs) bs.Bigint.promotions
      bs.Bigint.demotions;
    Printf.printf "  rational: %d adds (%d coprime-fast), %d muls (%d coprime-fast)\n"
      rs.Rational.adds rs.Rational.add_coprime rs.Rational.muls rs.Rational.mul_coprime;
    Printf.printf
      "  caches:   binomial %d hits / %d misses (%d entries), phi %d hits / %d misses (%d entries)\n"
      cs.Combinatorics.binomial_hits cs.Combinatorics.binomial_misses
      cs.Combinatorics.binomial_entries cs.Combinatorics.partition_hits
      cs.Combinatorics.partition_misses cs.Combinatorics.partition_entries;
    code
  end

(* -- table1 ----------------------------------------------------------- *)

let table1_cmd =
  let run () = print_string (Model.table1 ()); 0 in
  Cmd.v (Cmd.info "table1" ~doc:"Print the paper's Table 1 (memory model matrix).")
    Term.(const run $ const ())

(* -- figure1 ---------------------------------------------------------- *)

let figure1_cmd =
  let run model seed m = print_string (Render.figure1_random ~m ~seed model); 0 in
  let m_arg =
    Arg.(value & opt int 6 & info [ "m" ] ~docv:"M" ~doc:"Prefix length of the random program.")
  in
  Cmd.v (Cmd.info "figure1" ~doc:"Render a settling-process instantiation (paper Figure 1).")
    Term.(const run $ model_arg $ seed_arg $ m_arg)

(* -- figure2 ---------------------------------------------------------- *)

let figure2_cmd =
  let run gammas shifts =
    match shifts with
    | [] -> print_string (Render.figure2_paper_instance ()); 0
    | _ ->
      if List.length shifts <> List.length gammas then begin
        prerr_endline "memrel: --shifts must match --gammas in length";
        Cmd.Exit.some_error
      end
      else begin
        print_string
          (Render.figure2 ~gammas:(Array.of_list gammas) ~shifts:(Array.of_list shifts));
        0
      end
  in
  let gammas_arg =
    Arg.(value & opt (list int) [ 3; 2; 5 ] & info [ "gammas" ] ~docv:"G,G,..."
           ~doc:"Segment lengths.")
  in
  let shifts_arg =
    Arg.(value & opt (list int) [] & info [ "shifts" ] ~docv:"S,S,..."
           ~doc:"Shifts (defaults to the paper's Figure 2 instance).")
  in
  Cmd.v (Cmd.info "figure2" ~doc:"Render a shift-process instantiation (paper Figure 2).")
    Term.(const run $ gammas_arg $ shifts_arg)

(* -- window ----------------------------------------------------------- *)

let window_cmd =
  let run model seed trials gamma_max p s jobs stats deadline max_mem checkpoint
      checkpoint_every resume =
    with_robust @@ fun () ->
    with_exact_stats stats @@ fun () ->
    let model = match (Model.family model, s) with
      | _, None -> model
      | Model.Total_store_order, Some s -> Model.tso ~s ()
      | Model.Partial_store_order, Some s -> Model.pso ~s ()
      | Model.Weak_ordering, Some s -> Model.wo ~s ()
      | (Model.Sequential_consistency | Model.Custom), Some _ -> model
    in
    let rng = Rng.create seed in
    Printf.printf "critical-window growth Pr[B_gamma] under %s (p = %.2f, s = %.2f)\n\n"
      (Model.name model) p (Model.s model);
    let g =
      Window_mc.estimate_governed ~p ?jobs:(resolve_jobs jobs)
        ?budget:(budget_of deadline max_mem) ?checkpoint ~checkpoint_every ?resume ~trials
        model rng
    in
    let mc = g.Par.value in
    let dp =
      match Model.family model with
      | Model.Custom -> []
      | _ -> Window_exact_dp.gamma_pmf ~p model ~m:16
    in
    let normal_form = p = 0.5 && Model.s model = 0.5 in
    Printf.printf "%6s %12s %12s %12s\n" "gamma" "analytic" "dp(m=16)" "mc";
    for g = 0 to gamma_max do
      let analytic =
        match Model.family model with
        | Model.Sequential_consistency -> Rational.to_float (Window_analytic.b_sc g)
        | Model.Weak_ordering ->
          if normal_form then Rational.to_float (Window_analytic.b_wo g)
          else Window_analytic_general.b_wo ~s:(Model.s model) g
        | Model.Total_store_order ->
          if normal_form then Window_analytic.b_tso_series g
          else Window_analytic_general.b_tso ~p ~s:(Model.s model) g
        | Model.Partial_store_order | Model.Custom -> Float.nan
      in
      let dpv = try List.assoc g dp with Not_found -> Float.nan in
      let mcv = try List.assoc g mc.gamma_pmf with Not_found -> 0.0 in
      Printf.printf "%6d %12.6f %12.6f %12.6f\n" g analytic dpv mcv
    done;
    partial_exit
      ~engine:
        (Printf.sprintf "window (mc column covers %d of %d trials)" mc.Window_mc.trials trials)
      g.Par.exhausted
  in
  let gamma_max_arg =
    Arg.(value & opt int 8 & info [ "gamma-max" ] ~docv:"G" ~doc:"Largest gamma to print.")
  in
  let p_arg =
    Arg.(value & opt float 0.5 & info [ "p" ] ~docv:"P" ~doc:"Store density of the program.")
  in
  let s_arg =
    Arg.(value & opt (some float) None & info [ "s" ] ~docv:"S"
           ~doc:"Swap probability (defaults to the model's 1/2).")
  in
  Cmd.v (Cmd.info "window" ~exits:budget_exits ~doc:"Critical-window distribution (Theorem 4.1).")
    Term.(const run $ model_arg $ seed_arg $ trials_arg 200_000 $ gamma_max_arg $ p_arg $ s_arg
          $ jobs_arg $ stats_arg $ deadline_arg $ max_mem_arg $ checkpoint_arg
          $ checkpoint_every_arg $ resume_arg)

(* -- shift ------------------------------------------------------------ *)

let shift_cmd =
  let run gammas seed trials jobs stats deadline max_mem checkpoint checkpoint_every resume
      target_width max_trials progress =
    with_robust @@ fun () ->
    with_exact_stats stats @@ fun () ->
    let g = Array.of_list gammas in
    let exact = Shift_exact.disjoint_probability g in
    let rng = Rng.create seed in
    let jobs = resolve_jobs jobs in
    let budget = budget_of deadline max_mem in
    let print_result est (ci : Stats.interval) =
      Printf.printf "Pr[A(%s)] exact %s (%.6f); simulated %.6f [%.6f, %.6f]\n"
        (String.concat "," (List.map string_of_int gammas))
        (Rational.to_string exact) (Rational.to_float exact) est ci.lo ci.hi
    in
    match target_width with
    | Some w ->
      if not (check_adaptive_flags checkpoint resume) then Cmd.Exit.some_error
      else begin
        let max_trials = Option.value max_trials ~default:trials in
        let s =
          Shift.estimate_adaptive ?jobs ?budget ?report:(progress_report ~label:"shift" progress)
            ~target_width:w ~max_trials rng g
        in
        let est, ci = s.Par.value in
        print_result est ci;
        adaptive_status ~streamed:s ~target_width:w;
        partial_exit
          ~engine:(Printf.sprintf "shift (simulated over %d trials)" s.Par.trials_done)
          s.Par.exhausted
      end
    | None ->
      let gov =
        Shift.estimate_governed ?jobs ?budget ?checkpoint ~checkpoint_every ?resume ~trials rng
          g
      in
      let est, ci = gov.Par.value in
      print_result est ci;
      partial_exit
        ~engine:
          (Printf.sprintf "shift (simulated over %d of %d trials)"
             gov.Par.run_stats.Par.trials_done trials)
        gov.Par.exhausted
  in
  let gammas_arg =
    Arg.(value & opt (list int) [ 3; 2; 5 ] & info [ "gammas" ] ~docv:"G,G,..."
           ~doc:"Segment lengths (at most 8).")
  in
  Cmd.v
    (Cmd.info "shift" ~exits:budget_exits
       ~doc:"Shift-process disjointness probability (Theorem 5.1).")
    Term.(const run $ gammas_arg $ seed_arg $ trials_arg 500_000 $ jobs_arg $ stats_arg
          $ deadline_arg $ max_mem_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
          $ target_width_arg $ max_trials_arg $ progress_arg)

(* -- joint ------------------------------------------------------------ *)

let joint_cmd =
  let run model n seed trials jobs stats deadline max_mem checkpoint checkpoint_every resume
      target_width max_trials progress =
    with_robust @@ fun () ->
    with_exact_stats stats @@ fun () ->
    let jobs = resolve_jobs jobs in
    let rng = Rng.create seed in
    match target_width with
    | Some w ->
      if not (check_adaptive_flags checkpoint resume) then Cmd.Exit.some_error
      else begin
        let max_trials = Option.value max_trials ~default:trials in
        let s =
          Joint.estimate_adaptive ?jobs ?budget:(budget_of deadline max_mem)
            ?report:(progress_report ~label:"joint" progress) ~target_width:w ~max_trials model
            ~n rng
        in
        let e = s.Par.value in
        Printf.printf "Pr[A] (%s, n=%d): simulated %.6f [%.6f, %.6f]\n" (Model.name model) n
          e.pr_no_bug e.ci.lo e.ci.hi;
        adaptive_status ~streamed:s ~target_width:w;
        partial_exit
          ~engine:(Printf.sprintf "joint (simulated over %d trials)" s.Par.trials_done)
          s.Par.exhausted
      end
    | None ->
    let g =
      Joint.estimate_governed ?jobs ?budget:(budget_of deadline max_mem) ?checkpoint
        ~checkpoint_every ?resume ~trials model ~n rng
    in
    let e = g.Par.value in
    Printf.printf "Pr[A] (%s, n=%d): simulated %.6f [%.6f, %.6f]\n" (Model.name model) n
      e.pr_no_bug e.ci.lo e.ci.hi;
    if g.Par.exhausted <> None then
      (* the budget is spent: skip the exact/semi-analytic companions and
         report the partial estimate honestly *)
      partial_exit
        ~engine:
          (Printf.sprintf "joint (simulated over %d of %d trials)" e.Joint.trials trials)
        g.Par.exhausted
    else begin
    (match Model.family model with
     | Model.Sequential_consistency ->
       Printf.printf "exact: %s\n" (Rational.to_string (Manifestation.pr_a_sc ~n))
     | Model.Weak_ordering ->
       Printf.printf "exact: %s\n" (Rational.to_string (Manifestation.pr_a_wo ~n))
     | Model.Total_store_order ->
       let lo, hi = Manifestation.pr_a_tso_bounds ~n in
       Printf.printf "paper bounds (independence approx): %.4e .. %.4e; exact series %.4e\n"
         (Rational.to_float lo) (Rational.to_float hi)
         (Manifestation.pr_a_tso_independent_series ~n);
       if n <= Window_joint_dp.max_replicas + 1 then
         Printf.printf "joint-exact (correlated, coupled-chain DP): %.4e\n"
           (Manifestation.pr_a_joint_exact model ~n);
       Printf.printf "semi-analytic (correlated, MC): %.4e\n"
         (Joint.semi_analytic ?jobs ~trials model ~n rng)
     | Model.Partial_store_order ->
       if n <= Window_joint_dp.max_replicas + 1 then
         Printf.printf "joint-exact (correlated, coupled-chain DP): %.4e\n"
           (Manifestation.pr_a_joint_exact model ~n);
       Printf.printf "semi-analytic (correlated, MC): %.4e\n"
         (Joint.semi_analytic ?jobs ~trials model ~n rng)
     | Model.Custom ->
       Printf.printf "semi-analytic (correlated, MC): %.4e\n"
         (Joint.semi_analytic ?jobs ~trials model ~n rng));
    0
    end
  in
  Cmd.v
    (Cmd.info "joint" ~exits:budget_exits
       ~doc:"End-to-end bug manifestation probability (Theorem 6.2).")
    Term.(const run $ model_arg $ threads_arg $ seed_arg $ trials_arg 200_000 $ jobs_arg
          $ stats_arg $ deadline_arg $ max_mem_arg $ checkpoint_arg $ checkpoint_every_arg
          $ resume_arg $ target_width_arg $ max_trials_arg $ progress_arg)

(* -- scaling ---------------------------------------------------------- *)

let scaling_cmd =
  let run n_max jobs =
    Printf.printf "%4s %12s %12s %12s %8s %8s %8s %10s\n" "n" "log2Pr(SC)" "log2Pr(WO)"
      "log2Pr(TSO)" "nSC" "nWO" "nTSO" "SCadv/n^2";
    List.iter
      (fun (r : Scaling.row) ->
        let norm v = Scaling.normalized_exponent ~log2_pr:v ~n:r.n in
        let gap, _ = Scaling.gap_ratio_log2 r in
        Printf.printf "%4d %12.2f %12.2f %12.2f %8.4f %8.4f %8.4f %10.6f\n" r.n r.log2_sc
          r.log2_wo r.log2_tso (norm r.log2_sc) (norm r.log2_wo) (norm r.log2_tso)
          (gap /. float_of_int (r.n * r.n)))
      (Scaling.table ?jobs:(resolve_jobs jobs) ~n_max ());
    0
  in
  let n_max_arg =
    Arg.(value & opt int 16 & info [ "n-max" ] ~docv:"N" ~doc:"Largest thread count.")
  in
  Cmd.v (Cmd.info "scaling" ~doc:"Thread-scaling table (Theorem 6.3).")
    Term.(const run $ n_max_arg $ jobs_arg)

(* unknown-test errors offer the corpus: every subcommand taking a test
   name routes through this *)
let find_litmus name =
  match Litmus.find name with
  | t -> Ok t
  | exception Not_found ->
    Error
      (Printf.sprintf
         "unknown litmus test %S (available: %s; or incN for the N-thread increment)"
         name (String.concat ", " Litmus.names))

(* -- litmus ----------------------------------------------------------- *)

let litmus_cmd =
  let run name file =
    match (name, file) with
    | Some "list", None ->
      (* `list` is reserved: a table of the corpus with structural hashes
         (the service cache keys) and size counts *)
      print_string (Litmus.corpus_table ());
      0
    | _ ->
    (* parsed tests carry no per-model expectation: report reachability only *)
    let loaded =
      match file with
      | Some path ->
        (try
           let ic = open_in path in
           let len = in_channel_length ic in
           let text = really_input_string ic len in
           close_in ic;
           Ok ([ Litmus_parse.parse text ], false)
         with
         | Sys_error msg -> Error msg
         | Litmus_parse.Parse_error { line; message } ->
           Error (Printf.sprintf "%s: line %d: %s" path line message))
      | None ->
        (match name with
         | None -> Ok (Litmus.all, true)
         | Some n -> Result.map (fun t -> ([ t ], true)) (find_litmus n))
    in
    match loaded with
    | Error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
    | Ok (tests, with_expectations) ->
    List.iter
      (fun (t : Litmus.t) ->
        Printf.printf "%s: %s\n" t.name t.description;
        List.iter
          (fun family ->
            let v = Litmus.check t family in
            let fname = Model.family_name family in
            if with_expectations then
              Printf.printf "  %-4s relaxed outcome %s (expected %s) %s\n" fname
                (if v.observed_relaxed then "ALLOWED" else "forbidden")
                (if v.expected_relaxed then "allowed" else "forbidden")
                (if v.agrees then "" else "** MISMATCH **")
            else
              Printf.printf "  %-4s relaxed outcome %s (%d reachable outcomes)\n" fname
                (if v.observed_relaxed then "ALLOWED" else "forbidden")
                v.outcome_count)
          [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
            Model.Weak_ordering ])
      tests;
    0
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TEST"
           ~doc:"Litmus test name (all when omitted), or $(b,list) for a table of the \
                 corpus with structural hashes and thread/location/event counts.")
  in
  let file_arg =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Parse and run a litmus test from FILE (see Litmus_parse for the format).")
  in
  Cmd.v (Cmd.info "litmus" ~doc:"Run the litmus corpus on the operational machine.")
    Term.(const run $ name_arg $ file_arg)

(* -- fences ----------------------------------------------------------- *)

let fences_cmd =
  let run seed trials jobs =
    let rng = Rng.create seed in
    let pr_with every =
      let hits =
        Par.count ?jobs:(resolve_jobs jobs) ~trials
          (fun r ->
            let prog = Program.generate r ~m:37 in
            let prog =
              match every with
              | None -> prog
              | Some k -> Program.with_fences ~every:k ~kind:Fence.Acquire prog
            in
            let gamma () =
              let pi = Settle.run (Model.wo ()) r prog in
              Window.gamma prog pi + 2
            in
            (Shift.sample r [| gamma (); gamma () |]).disjoint)
          rng
      in
      float_of_int hits /. float_of_int trials
    in
    Printf.printf "WO + acquire fences, n=2, m=37, %d trials per row\n" trials;
    Printf.printf "  none    %.4f (7/54 = %.4f)\n" (pr_with None) (7.0 /. 54.0);
    List.iter (fun k -> Printf.printf "  every %2d %.4f\n" k (pr_with (Some k))) [ 16; 8; 4; 2 ];
    Printf.printf "  SC ref  %.4f\n" (1.0 /. 6.0);
    0
  in
  Cmd.v (Cmd.info "fences" ~doc:"Fence-density sweep (Section 7 extension).")
    Term.(const run $ seed_arg $ trials_arg 100_000 $ jobs_arg)

(* -- verify ----------------------------------------------------------- *)

let verify_cmd =
  let run cutoff stats =
    with_exact_stats stats @@ fun () ->
    Printf.printf "computing the verified enclosure of Pr[A] under TSO, n = 2\n";
    Printf.printf "(exact rational partial sums, provable truncation tails; cutoff %d)\n\n"
      cutoff;
    let e = Window_verified.pr_a_tso_n2 ~q_max:cutoff ~mu_max:cutoff ~gamma_max:cutoff () in
    Printf.printf "enclosure: [%.17f,\n            %.17f]\n"
      (Rational.to_float e.Window_verified.lo)
      (Rational.to_float e.Window_verified.hi);
    Printf.printf "width:     %.3e\n" (Rational.to_float (Window_verified.width e));
    let paper_lo = Rational.of_ints 58 441 in
    let paper_hi = Rational.add paper_lo (Rational.of_ints 1 189) in
    let inside =
      Rational.compare paper_lo e.Window_verified.lo < 0
      && Rational.compare e.Window_verified.hi paper_hi < 0
    in
    Printf.printf
      "Theorem 6.2's claim 58/441 < Pr[A] < 58/441 + 1/189: %s (exact rational comparison)\n"
      (if inside then "VERIFIED" else "NOT verified at this cutoff");
    if inside then 0
    else begin
      (* route the failure through Cmdliner's exit-status machinery instead
         of calling exit mid-stream *)
      Printf.eprintf "memrel: verification failed at cutoff %d (try a larger --cutoff)\n" cutoff;
      1
    end
  in
  let cutoff_arg =
    Arg.(value & opt int 40 & info [ "cutoff" ] ~docv:"K"
           ~doc:"Series truncation depth (larger = tighter, slower).")
  in
  let exits = Cmd.Exit.info 1 ~doc:"the bracket was NOT verified at this cutoff." :: Cmd.Exit.defaults in
  Cmd.v
    (Cmd.info "verify" ~exits
       ~doc:"Machine-verify Theorem 6.2's TSO bracket with exact rational enclosures.")
    Term.(const run $ cutoff_arg $ stats_arg)

(* -- enumerate --------------------------------------------------------- *)

let enumerate_cmd =
  let run name model por max_states legacy_key window deadline max_mem extmem spill_dir
      mem_budget resume =
    match find_litmus name with
    | Error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
    | Ok t ->
      let discipline = Semantics.of_model ~window (Model.family model) in
      let use_extmem = extmem || spill_dir <> None || resume in
      let r, ext =
        if not use_extmem then
          ( Enumerate.outcomes ~max_states ~por ~legacy_key
              ?budget:(budget_of deadline max_mem) discipline (Litmus.initial_state t)
              ~observe:t.observe,
            None )
        else begin
          (* an explicit --spill-dir is kept for later resumption; the
             temp-dir default is removed once the run completes *)
          let keep_spill = spill_dir <> None in
          let dir =
            match spill_dir with
            | Some d -> d
            | None ->
              Filename.concat (Filename.get_temp_dir_name ())
                (Printf.sprintf "memrel-extmem-%d" (Unix.getpid ()))
          in
          let resume_key =
            Printf.sprintf "enum|%s|%s|w%d|por%b" (Litmus.hash t) (Model.name model) window
              por
          in
          let x =
            Extmem.outcomes ~max_states ~por ?budget:(budget_of deadline max_mem)
              ~mem_budget_bytes:(mem_budget * 1024 * 1024) ~resume ~spill_dir:dir
              ~resume_key discipline (Litmus.initial_state t) ~observe:t.observe
          in
          if x.Extmem.base.Enumerate.exhausted = None && not keep_spill then
            Extmem.remove_spill_dir dir
          else if x.Extmem.base.Enumerate.exhausted <> None then
            Printf.eprintf
              "memrel: spill state kept in %s — rerun with --spill-dir %s --resume to \
               continue\n"
              dir dir;
          (x.Extmem.base, Some x.Extmem.ext)
        end
      in
      let partial = r.Enumerate.exhausted <> None in
      Printf.printf "%s under %s%s: %d distinct outcomes, %d terminal states%s\n" t.name
        (Model.name model)
        (if por then " (POR)" else "")
        (List.length r.outcomes) r.terminals
        (if partial then " (PARTIAL exploration)" else "");
      List.iter
        (fun (o, k) ->
          let o = String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) o) in
          Printf.printf "  %-30s %8d terminal state%s\n" o k (if k = 1 then "" else "s"))
        r.outcomes;
      let relaxed =
        String.concat " "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) t.relaxed_outcome)
      in
      (* a partial exploration can witness reachability but never refute it *)
      Printf.printf "relaxed outcome %s: %s\n" relaxed
        (if List.mem_assoc t.relaxed_outcome r.outcomes then "ALLOWED"
         else if partial then "not seen (exploration incomplete)"
         else "forbidden");
      let s = r.stats in
      Printf.printf
        "states %d (%.0f states/sec, %.3fs); transitions %d; dedup hits %d\n\
         max depth %d; max frontier %d; POR: ample at %d states, %d transitions pruned\n"
        r.states_visited s.states_per_sec s.elapsed_s s.transitions s.dedup_hits s.max_depth
        s.max_frontier s.por_ample_states s.por_pruned;
      (match ext with
       | None -> ()
       | Some e ->
         Printf.printf
           "extmem: %d levels (peak %d states)%s; %d spill runs, %d bytes, %d forced \
            generations, %d compactions; bloom %d/%d hits (%d false positives)\n"
           e.Extmem.levels e.Extmem.peak_level_states
           (match e.Extmem.resumed_at_level with
            | Some l -> Printf.sprintf ", resumed at level %d" l
            | None -> "")
           e.Extmem.spill_runs e.Extmem.spill_bytes e.Extmem.spill_generations
           e.Extmem.compactions e.Extmem.bloom_hits e.Extmem.bloom_probes
           e.Extmem.bloom_false_positives);
      partial_exit
        ~engine:(Printf.sprintf "enumerate (%d states expanded)" r.states_visited)
        r.Enumerate.exhausted
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST"
           ~doc:"Litmus test name; incN (e.g. inc4) selects the n-thread increment.")
  in
  let por_arg =
    Arg.(value & flag & info [ "por" ]
           ~doc:"Enable the ample-set partial-order reduction (identical outcomes, fewer states).")
  in
  let max_states_arg =
    Arg.(value & opt int 2_000_000 & info [ "max-states" ] ~docv:"N"
           ~doc:"Stop after admitting N distinct states and report the partial exploration \
                 (exit code 3).")
  in
  let legacy_key_arg =
    Arg.(value & flag & info [ "legacy-key" ]
           ~doc:"Deduplicate with the legacy printf-built state key (for benchmarking).")
  in
  let window_arg =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"W"
           ~doc:"Out-of-order window for the wo model.")
  in
  let extmem_arg =
    Arg.(value & flag & info [ "extmem" ]
           ~doc:"Use the external-memory BFS engine: the frontier and visited set spill to \
                 sorted runs on disk, so state spaces larger than RAM enumerate exactly \
                 (identical outcomes and terminal counts to the in-RAM engine). Implied by \
                 --spill-dir and --resume. Combine with --max-states to raise the state cap.")
  in
  let spill_dir_arg =
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR"
           ~doc:"Directory for the external-memory spill runs (default: a temporary \
                 directory, removed after a complete run). An explicit DIR is kept, so a \
                 killed run can continue with --resume.")
  in
  let mem_budget_arg =
    Arg.(value & opt int 64 & info [ "mem-budget" ] ~docv:"MB"
           ~doc:"RAM budget (MiB) for the external-memory engine's in-core structures \
                 (candidate buffers, bloom filter). Smaller budgets spill more, never \
                 change the result.")
  in
  let resume_enum_arg =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume a killed external-memory run from the per-level checkpoint in \
                 --spill-dir. The final result is bit-identical to an uninterrupted run; \
                 corrupt or mismatched spill state is rejected.")
  in
  let run name model por max_states legacy_key window deadline max_mem extmem spill_dir
      mem_budget resume =
    try run name model por max_states legacy_key window deadline max_mem extmem spill_dir
          mem_budget resume
    with Extmem.Spill_error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
  in
  Cmd.v
    (Cmd.info "enumerate" ~exits:budget_exits
       ~doc:"Exhaustively enumerate a litmus test's state space with statistics.")
    Term.(const run $ name_arg $ model_arg $ por_arg $ max_states_arg $ legacy_key_arg
          $ window_arg $ deadline_arg $ max_mem_arg $ extmem_arg $ spill_dir_arg
          $ mem_budget_arg $ resume_enum_arg)

(* -- axiom ------------------------------------------------------------- *)

let axiom_cmd =
  let run names model engine no_diff window deadline max_mem max_candidates =
    let tests =
      match names with
      | [] -> Ok Litmus.all
      | ns ->
        List.fold_left
          (fun acc n ->
            match (acc, find_litmus n) with
            | Error _, _ -> acc
            | Ok _, Error msg -> Error msg
            | Ok ts, Ok t -> Ok (ts @ [ t ]))
          (Ok []) ns
    in
    match tests with
    | Error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
    | Ok tests ->
      let families =
        match model with
        | None -> Axiom_differential.standard_families
        | Some m -> [ Model.family m ]
      in
      let detail = List.length tests = 1 in
      let disagreements = ref 0 in
      (* any budget flag implies the no-diff path: comparing a partial
         axiomatic outcome set against the full operational one would
         report spurious disagreements *)
      let budget_requested =
        deadline <> None || max_mem <> None || max_candidates <> None
      in
      let partials = ref 0 in
      (* budgets are single-use (the deadline anchors at creation): one per
         engine x test x family run *)
      let mk_budget () =
        if budget_requested then budget_of ?max_work:max_candidates deadline max_mem
        else None
      in
      let print_details entries =
        if detail then
          List.iter
            (fun (o, candidates) ->
              Printf.printf "       %-30s %4d candidate%s\n"
                (Axiom_differential.outcome_to_string o)
                candidates
                (if candidates = 1 then "" else "s"))
            entries
      in
      let print_relaxed (t : Litmus.t) entries partial =
        Printf.printf "       relaxed outcome %s: %s\n"
          (Axiom_differential.outcome_to_string t.relaxed_outcome)
          (if List.mem_assoc t.relaxed_outcome entries then "ALLOWED"
           else if partial then "not seen (coverage incomplete)"
           else "forbidden")
      in
      let print_exhausted = function
        | Some e ->
          incr partials;
          Printf.printf
            "       enumeration stopped early (%s); allowed outcomes are a lower bound\n"
            (Budget.describe e)
        | None -> ()
      in
      (* the no-diff path, one engine: returns the counted outcome entries
         so --engine both can cross-check the two engines directly *)
      let generate_only t family =
        let r = Axiom.run ~window ?budget:(mk_budget ()) t family in
        let s = r.Axiom.stats in
        let partial = s.Axiom.exhausted <> None in
        Printf.printf
          "  %-4s [generate] %d allowed outcomes (%d candidates of naive 10^%.1f; pruned %d; \
           %.0f cand/s)%s\n"
          (Model.family_name family) (List.length r.Axiom.entries) s.Axiom.accepted
          s.Axiom.log10_naive_space s.Axiom.pruned s.Axiom.candidates_per_sec
          (if partial then " (PARTIAL coverage)" else "");
        print_exhausted s.Axiom.exhausted;
        (List.map (fun (e : Axiom.entry) -> (e.Axiom.outcome, e.Axiom.candidates)) r.Axiom.entries,
         partial)
      in
      let solver_only t family =
        let r = Axiom_solver.run ~window ?budget:(mk_budget ()) t family in
        let s = r.Axiom_solver.stats in
        let partial = s.Axiom_solver.exhausted <> None in
        Printf.printf
          "  %-4s [solver]   %d allowed outcomes (%d candidates of naive 10^%.1f; %.0f cand/s)\n\
          \       decisions %d; propagations %d; conflicts %d; backjumps %d; forced %d; memo \
           hits %d%s\n"
          (Model.family_name family)
          (List.length r.Axiom_solver.entries)
          s.Axiom_solver.accepted s.Axiom_solver.log10_naive_space
          s.Axiom_solver.candidates_per_sec s.Axiom_solver.decisions s.Axiom_solver.propagations
          s.Axiom_solver.conflicts s.Axiom_solver.backjumps s.Axiom_solver.forced
          s.Axiom_solver.memo_hits
          (if partial then " (PARTIAL coverage)" else "");
        print_exhausted s.Axiom_solver.exhausted;
        (List.map
           (fun (e : Axiom_solver.entry) -> (e.Axiom_solver.outcome, e.Axiom_solver.candidates))
           r.Axiom_solver.entries,
         partial)
      in
      List.iter
        (fun (t : Litmus.t) ->
          Printf.printf "%s: %s\n" t.name t.description;
          List.iter
            (fun family ->
              if no_diff || budget_requested then begin
                match engine with
                | `Generate ->
                  let entries, partial = generate_only t family in
                  print_details entries;
                  print_relaxed t entries partial
                | `Solver ->
                  let entries, partial = solver_only t family in
                  print_details entries;
                  print_relaxed t entries partial
                | `Both ->
                  let gen, gpartial = generate_only t family in
                  let sol, spartial = solver_only t family in
                  let partial = gpartial || spartial in
                  if partial then
                    print_string "       engines ran under budgets; count comparison skipped\n"
                  else if gen = sol then
                    print_string "       engines agree (outcomes and candidate counts)\n"
                  else begin
                    incr disagreements;
                    print_string "       ENGINES DISAGREE on outcomes or candidate counts\n"
                  end;
                  print_details sol;
                  print_relaxed t sol partial
              end
              else begin
                match engine with
                | `Both ->
                  let tw = Axiom_differential.three_way ~window t family in
                  let r = tw.Axiom_differential.solver_report in
                  let g = tw.Axiom_differential.generate_stats
                  and s = tw.Axiom_differential.solver_stats in
                  if tw.Axiom_differential.agree then begin
                    Printf.printf
                      "  %-4s agree: %d outcomes solver = generate = operational (%d \
                       candidates, counts equal; solver %.0f cand/s vs generate %.0f; %d \
                       terminal states); relaxed %s\n"
                      (Model.family_name family)
                      (List.length r.Axiom_differential.axiomatic)
                      s.Axiom_solver.accepted s.Axiom_solver.candidates_per_sec
                      g.Axiom.candidates_per_sec r.Axiom_differential.operational_states
                      (if List.mem t.relaxed_outcome r.Axiom_differential.axiomatic then
                         "ALLOWED"
                       else "forbidden");
                    if detail then
                      List.iter
                        (fun o ->
                          Printf.printf "       %s\n" (Axiom_differential.outcome_to_string o))
                        r.Axiom_differential.axiomatic
                  end
                  else begin
                    incr disagreements;
                    if not tw.Axiom_differential.counts_agree then
                      Printf.printf "  %-4s ENGINES DISAGREE on per-outcome candidate counts\n"
                        (Model.family_name family);
                    print_string (Axiom_differential.describe r)
                  end
                | (`Generate | `Solver) as e ->
                  let de =
                    match e with
                    | `Generate -> Axiom_differential.Generate_engine
                    | `Solver -> Axiom_differential.Solver_engine
                  in
                  let r = Axiom_differential.run ~window ~engine:de t family in
                  let s = r.Axiom_differential.stats in
                  if r.Axiom_differential.agree then begin
                    Printf.printf
                      "  %-4s agree: %d outcomes axiomatic = operational (%d candidates of \
                       naive 10^%.1f; %.0f cand/s; %d terminal states); relaxed %s\n"
                      (Model.family_name family)
                      (List.length r.Axiom_differential.axiomatic)
                      (Axiom_differential.stats_accepted s)
                      (Axiom_differential.stats_log10_naive_space s)
                      (let a = Axiom_differential.stats_accepted s
                       and el = Axiom_differential.stats_elapsed s in
                       if el > 0.0 then float_of_int a /. el else 0.0)
                      r.Axiom_differential.operational_states
                      (if List.mem t.relaxed_outcome r.Axiom_differential.axiomatic then
                         "ALLOWED"
                       else "forbidden");
                    if detail then
                      List.iter
                        (fun o ->
                          Printf.printf "       %s\n" (Axiom_differential.outcome_to_string o))
                        r.Axiom_differential.axiomatic
                  end
                  else begin
                    incr disagreements;
                    print_string (Axiom_differential.describe r)
                  end
              end)
            families)
        tests;
      if !disagreements > 0 then begin
        Printf.eprintf "memrel: %d axiomatic/operational disagreement%s\n" !disagreements
          (if !disagreements = 1 then "" else "s");
        1
      end
      else if !partials > 0 then begin
        Printf.eprintf
          "memrel: axiom enumeration stopped early on %d run%s; the reported coverage is \
           partial\n"
          !partials
          (if !partials = 1 then "" else "s");
        3
      end
      else 0
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"TEST"
           ~doc:"Litmus test names (the whole corpus when omitted); incN selects the \
                 N-thread increment.")
  in
  let model_opt_arg =
    Arg.(value & opt (some model_conv) None & info [ "model" ] ~docv:"MODEL"
           ~doc:"Restrict to one model (sc, tso, pso or wo; default: all four).")
  in
  let no_diff_arg =
    Arg.(value & flag & info [ "no-diff" ]
           ~doc:"Skip the operational cross-check; report the axiomatic side only.")
  in
  let engine_arg =
    Arg.(value
         & opt (enum [ ("generate", `Generate); ("solver", `Solver); ("both", `Both) ]) `Generate
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Axiomatic engine: the reference generate-and-prune enumeration (generate), \
                   the conflict-driven solver (solver), or both cross-checked against each \
                   other including per-outcome candidate counts (both).")
  in
  let window_arg =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"W"
           ~doc:"Out-of-order window for the wo model (both sides of the differential).")
  in
  let max_candidates_arg =
    Arg.(value & opt (some int) None & info [ "max-candidates" ] ~docv:"N"
           ~doc:"Stop each enumeration after N accepted candidate executions and report the \
                 partial coverage (exit code 3). Implies --no-diff.")
  in
  let exits =
    Cmd.Exit.info 1 ~doc:"axiomatic and operational outcome sets disagree."
    :: budget_exit_info :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "axiom" ~exits
       ~doc:"Enumerate axiomatically allowed executions (event graphs; acyclicity axioms \
             per model) and cross-check against the operational enumeration. Budget flags \
             (--deadline, --max-mem, --max-candidates) apply per test and model, imply \
             --no-diff, and report partial coverage honestly.")
    Term.(const run $ names_arg $ model_opt_arg $ engine_arg $ no_diff_arg $ window_arg
          $ deadline_arg $ max_mem_arg $ max_candidates_arg)

(* -- serve / query (service mode) -------------------------------------- *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ADDR"
         ~doc:"Service address: a Unix-domain socket path, or $(b,tcp:HOST:PORT).")

let serve_cmd =
  let run socket cache_dir workers max_deadline max_work max_mem shards spill_dir
      mem_budget max_queue io_deadline fault_seed fault_rate =
    match Service_protocol.address_of_string socket with
    | Error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
    | Ok address ->
      let caps =
        { Service_engine.max_deadline_s = max_deadline; max_work_cap = max_work;
          max_mem_mb_cap = max_mem }
      in
      let extmem =
        Option.map
          (fun spill_root ->
            { Service_engine.spill_root; mem_budget_bytes = mem_budget * 1024 * 1024 })
          spill_dir
      in
      (* the chaos harness's lever: a seeded fault plan over all snapshot
         IO (cache entries, spill runs, manifests). Replayable — the same
         seed deals the same faults to the same operation sequence. *)
      (match fault_seed with
       | Some seed ->
         Faultio.install (Faultio.plan_rate ~seed fault_rate);
         Printf.printf "memrel serve: fault plan installed (seed %d, rate %.3f)\n%!" seed
           fault_rate
       | None -> ());
      let config =
        { Service_server.address; cache_dir; workers; caps; shards; extmem; max_queue;
          io_deadline_s = io_deadline; drain_signals = true }
      in
      Printf.printf "memrel serve: listening on %s (cache %s, %d worker%s)\n%!"
        (Service_protocol.address_to_string address)
        cache_dir workers
        (if workers = 1 then "" else "s");
      (match Service_server.run config with
       | () -> 0
       | exception Unix.Unix_error (e, fn, arg) ->
         Printf.eprintf "memrel: %s %s: %s\n" fn arg (Unix.error_message e);
         Cmd.Exit.some_error
       | exception Invalid_argument msg | exception Failure msg ->
         Printf.eprintf "memrel: %s\n" msg;
         Cmd.Exit.some_error)
  in
  let cache_dir_arg =
    Arg.(value & opt string "_memrel_cache" & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache directory (created if missing). Entries are CRC-guarded \
                 snapshot files keyed by structural litmus hash and query parameters; the \
                 cache survives restarts.")
  in
  let workers_arg =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains serving connections.")
  in
  let max_deadline_arg =
    Arg.(value & opt (some float) None & info [ "max-deadline" ] ~docv:"SECS"
           ~doc:"Server-side ceiling on per-request deadlines: requests run under \
                 min(request, cap), and a capped budget applies even to requests that \
                 set no limit.")
  in
  let max_work_cap_arg =
    Arg.(value & opt (some int) None & info [ "max-work" ] ~docv:"N"
           ~doc:"Server-side work-unit ceiling (states / candidates / chunks).")
  in
  let max_mem_cap_arg =
    Arg.(value & opt (some int) None & info [ "max-mem" ] ~docv:"MB"
           ~doc:"Server-side major-heap watermark ceiling, in megabytes.")
  in
  let shards_arg =
    Arg.(value & opt int 16 & info [ "shards" ] ~docv:"N"
           ~doc:"Cache lock shards (1..256): queries on distinct shards never contend.")
  in
  let spill_dir_arg =
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR"
           ~doc:"Answer verify/enumerate queries with the external-memory BFS engine, \
                 spilling per-query state under DIR — enumerations larger than RAM become \
                 answerable, and budget-tripped runs resume on the next identical query. \
                 Complete results are byte-identical to the in-RAM engine's.")
  in
  let mem_budget_arg =
    Arg.(value & opt int 64 & info [ "mem-budget" ] ~docv:"MB"
           ~doc:"RAM budget (MiB) for the external-memory engine (with --spill-dir).")
  in
  let max_queue_arg =
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Pending-connection bound: beyond N queued connections, new ones are shed \
                 with a typed overloaded/retry-after response instead of queueing without \
                 bound.")
  in
  let io_deadline_arg =
    Arg.(value & opt float 30. & info [ "io-deadline" ] ~docv:"SECS"
           ~doc:"Per-frame IO deadline: a connection that stalls mid-frame (half a request \
                 in, or not draining its reply) for SECS is reaped. Idle connections \
                 between frames are unaffected.")
  in
  let fault_seed_arg =
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Install a seeded fault-injection plan over all snapshot IO (cache \
                 entries, spill runs, manifests): EINTR, short reads/writes, ENOSPC, torn \
                 renames and crash points, dealt deterministically so any failure replays \
                 from its seed. For chaos drills; off by default.")
  in
  let fault_rate_arg =
    Arg.(value & opt float 0.05 & info [ "fault-rate" ] ~docv:"P"
           ~doc:"Per-operation fault probability for --fault-seed (default 0.05).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the query daemon: typed verify/enumerate/axiom/estimate requests over a \
             length-prefixed binary protocol, answered through a sharded snapshot-backed \
             result cache. Sheds load beyond --max-queue with retry-after responses, \
             reaps stalled connections at --io-deadline, drains gracefully on \
             SIGTERM/SIGINT, and refuses to steal a Unix socket a live daemon still \
             answers. Stop it with $(b,memrel query --shutdown).")
    Term.(const run $ socket_arg $ cache_dir_arg $ workers_arg $ max_deadline_arg
          $ max_work_cap_arg $ max_mem_cap_arg $ shards_arg $ spill_dir_arg
          $ mem_budget_arg $ max_queue_arg $ io_deadline_arg $ fault_seed_arg
          $ fault_rate_arg)

let query_cmd =
  let run socket wait deadline max_work max_mem stats ping shutdown retry queries =
    let module SP = Service_protocol in
    match SP.address_of_string socket with
    | Error msg ->
      Printf.eprintf "memrel: %s\n" msg;
      Cmd.Exit.some_error
    | Ok address ->
      let limits = { SP.deadline_s = deadline; max_work; max_mem_mb = max_mem } in
      let request =
        if stats then Ok SP.Stats
        else if ping then Ok SP.Ping
        else if shutdown then Ok SP.Shutdown
        else
          match queries with
          | [] -> Error "no query given (and none of --stats/--ping/--shutdown)"
          | qs ->
            List.fold_left
              (fun acc text ->
                match (acc, SP.parse_query text) with
                | (Error _ as e), _ -> e
                | Ok _, Error msg -> Error (Printf.sprintf "%S: %s" text msg)
                | Ok parsed, Ok q -> Ok (parsed @ [ q ]))
              (Ok []) qs
            |> Result.map (function
                 | [ q ] -> SP.Query (q, limits)
                 | qs -> SP.Batch (List.map (fun q -> (q, limits)) qs))
      in
      (match request with
       | Error msg ->
         Printf.eprintf "memrel: %s\n" msg;
         Cmd.Exit.some_error
       | Ok request -> begin
         let reply =
           if retry > 0 then
             Service_client.request_retry ~max_attempts:retry
               ~deadline_s:(Float.max wait 30.) address request
             |> Result.map fst
           else
             Service_client.with_connection ~retry_for:wait address (fun c ->
                 Service_client.request c request)
         in
         match reply with
         | Error msg ->
           Printf.eprintf "memrel: %s\n" msg;
           Cmd.Exit.some_error
         | Ok response ->
           print_endline (SP.render_response response);
           (* worst sub-response wins: error beats budget-partial beats ok *)
           let rec code = function
             | SP.Result { result; _ } -> if result.SP.partial <> None then 3 else 0
             | SP.Results rs -> List.fold_left (fun acc r -> max acc (code r)) 0 rs
             | SP.Error _ -> Cmd.Exit.some_error
             | SP.Overloaded _ -> Cmd.Exit.some_error
             | SP.Stats_reply _ | SP.Pong | SP.Bye -> 0
           in
           let c = code response in
           if c = 3 then
             Printf.eprintf
               "memrel: a query exhausted its resource budget; its result is partial\n";
           (match response with
            | SP.Overloaded _ ->
              Printf.eprintf "memrel: the daemon shed this query; rerun with --retry\n"
            | _ -> ());
           c
       end)
  in
  let wait_arg =
    Arg.(value & opt float 0. & info [ "wait" ] ~docv:"SECS"
           ~doc:"Retry the connection for up to SECS while the daemon starts.")
  in
  let max_work_arg =
    Arg.(value & opt (some int) None & info [ "max-work" ] ~docv:"N"
           ~doc:"Per-query work-unit budget (states / candidates / chunks).")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Ask the daemon for cache and server counters.")
  in
  let ping_flag = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check.") in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to exit cleanly.")
  in
  let retry_arg =
    Arg.(value & opt int 0 & info [ "retry" ] ~docv:"N"
           ~doc:"Retry up to N attempts with exponential backoff and jitter when the \
                 daemon sheds the query (overloaded) or the connection fails; an \
                 overloaded reply's retry-after is honored as the backoff floor. 0 \
                 disables (one attempt).")
  in
  let queries_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY"
           ~doc:"Queries, one per argument, e.g. 'verify sb tso', 'enumerate inc4 sc por', \
                 'axiom mp wo engine=solver', 'estimate settling tso gamma=2 trials=50000', \
                 'estimate shift gammas=3,2,5', 'estimate joint sc n=2 width=0.01'. Two or \
                 more queries form a batch (identical ones are computed once).")
  in
  Cmd.v
    (Cmd.info "query" ~exits:budget_exits
       ~doc:"Send queries to a running $(b,memrel serve) daemon. Each answer is prefixed \
             with its origin: [computed], [memory] or [disk].")
    Term.(const run $ socket_arg $ wait_arg $ deadline_arg $ max_work_arg $ max_mem_arg
          $ stats_flag $ ping_flag $ shutdown_flag $ retry_arg $ queries_arg)

let main_cmd =
  let doc = "reproduction of 'The Impact of Memory Models on Software Reliability'" in
  Cmd.group (Cmd.info "memrel" ~version:"1.0.0" ~doc)
    [ table1_cmd; figure1_cmd; figure2_cmd; window_cmd; shift_cmd; joint_cmd; scaling_cmd;
      litmus_cmd; enumerate_cmd; axiom_cmd; fences_cmd; verify_cmd; serve_cmd; query_cmd ]

let () = exit (Cmd.eval' main_cmd)
