#!/bin/sh
# End-to-end smoke for `memrel serve` / `memrel query`, run from `make ci`.
#
# Drives the installed daemon over a temp Unix socket: a cold mixed batch
# (all computed), a warm replay (memory hits), the typed error and
# budget-partial exit codes, a clean shutdown, and a restart over the same
# cache directory that answers from disk. Uses the built binary directly so
# the daemon and client do not contend for the dune lock.
set -eu

CLI=./_build/default/bin/memrel_cli.exe
[ -x "$CLI" ] || { echo "serve_smoke: $CLI not built" >&2; exit 1; }

DIR=$(mktemp -d /tmp/memrel_smoke.XXXXXX)
SOCK="$DIR/serve.sock"
CACHE="$DIR/cache"
OUT="$DIR/out.txt"
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

start_daemon() {
  "$CLI" serve --socket "$SOCK" --cache-dir "$CACHE" &
  SERVER_PID=$!
}

fail() { echo "serve_smoke: FAIL: $1" >&2; exit 1; }

start_daemon

# cold mixed batch: every sub-query computed, the duplicate deduplicated
"$CLI" query --socket "$SOCK" --wait 10 \
  "verify sb tso" "enumerate mp wo" "axiom lb pso engine=solver" "verify sb tso" \
  > "$OUT"
[ "$(grep -c '\[computed\]' "$OUT")" -eq 4 ] || fail "cold batch not all computed"

# warm replay: memory hits only
"$CLI" query --socket "$SOCK" "verify sb tso" "enumerate mp wo" > "$OUT"
[ "$(grep -c '\[memory\]' "$OUT")" -eq 2 ] || fail "warm replay not from memory"

# typed error exits 123
set +e
"$CLI" query --socket "$SOCK" "verify nosuchtest tso" > "$OUT" 2>&1
rc=$?
set -e
[ "$rc" -eq 123 ] || fail "unknown test: expected exit 123, got $rc"
grep -q "unknown-test" "$OUT" || fail "unknown test: no typed error in output"

# budget-partial exits 3
set +e
"$CLI" query --socket "$SOCK" --deadline 0 "enumerate inc5 sc" > "$OUT" 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] || fail "expired deadline: expected exit 3, got $rc"
grep -q "PARTIAL" "$OUT" || fail "expired deadline: no partial marker in output"

# clean shutdown: daemon exits, socket removed
"$CLI" query --socket "$SOCK" --shutdown > /dev/null
wait "$SERVER_PID" || fail "daemon exited nonzero on shutdown"
SERVER_PID=
[ ! -e "$SOCK" ] || fail "socket not removed on shutdown"

# restart over the same cache directory: answers come from disk
start_daemon
"$CLI" query --socket "$SOCK" --wait 10 "verify sb tso" "enumerate mp wo" > "$OUT"
[ "$(grep -c '\[disk\]' "$OUT")" -eq 2 ] || fail "restart did not serve from disk"

"$CLI" query --socket "$SOCK" --shutdown > /dev/null
wait "$SERVER_PID" || fail "daemon exited nonzero on second shutdown"
SERVER_PID=

echo "serve_smoke: OK"
