#!/bin/sh
# Chaos drill against the memrel daemon: seeded fault plans, kill -9 crash
# cycles, overload shedding, and live-socket refusal — all from the outside,
# through the real CLI. Every fault plan is seeded, so any failure replays.
#
#   scripts/chaos_smoke.sh          # short form (CI): 3 fault seeds, 1 kill cycle
#   scripts/chaos_smoke.sh --full   # acceptance form: 20 fault seeds, 5 kill cycles
#
# The contract it checks:
#   * a daemon serving under a lossy fault plan answers every trace query
#     with bytes identical to a never-faulted oracle (typed errors are
#     retried, corruption is never served);
#   * after kill -9 mid-query, a restart over the same cache and spill
#     directories sweeps the debris and answers byte-identically;
#   * beyond --max-queue the daemon sheds with a typed retry-after response,
#     retrying clients all eventually succeed, and the shed counter moved;
#   * a second daemon refuses to steal a live daemon's socket.
set -u

CLI=./_build/default/bin/memrel_cli.exe
if [ ! -x "$CLI" ]; then
  echo "chaos_smoke: $CLI not built (run dune build)" >&2
  exit 1
fi

MODE=short
[ "${1:-}" = "--full" ] && MODE=full
if [ "$MODE" = full ]; then
  FAULT_SEEDS=$(seq 1 20)
  KILL_CYCLES=5
else
  FAULT_SEEDS="1 2 3"
  KILL_CYCLES=1
fi
# per-op fault probability: the spill engine issues dozens of snapshot
# ops per heavy query, so a rate much above this makes attempts fail
# faster than retries can drain; 0.10 deals real faults on most seeds
# while every query still converges within the retry bound below
FAULT_RATE=0.10

DIR=$(mktemp -d /tmp/memrel_chaos.XXXXXX)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
  echo "chaos_smoke: FAIL: $*" >&2
  exit 1
}

# the fixed query trace: hits the verifier, both enumeration engines (the
# daemon routes verify/enumerate through the external-memory engine when
# --spill-dir is set), the axiomatic solver and the Monte Carlo estimators
TRACE="$DIR/trace.txt"
cat > "$TRACE" <<'EOF'
verify sb tso
verify mp wo
enumerate lb pso
axiom sb tso engine=solver
estimate settling tso gamma=2 trials=20000
estimate shift gammas=3,2,5 trials=20000
enumerate inc4 sc
EOF
TRACE_LEN=$(wc -l < "$TRACE")

start_daemon() { # $1=socket $2=cache $3=spill $4=log, rest: extra serve flags
  sock=$1; cache=$2; spill=$3; log=$4; shift 4
  "$CLI" serve --socket "$sock" --cache-dir "$cache" \
    --spill-dir "$spill" --mem-budget 4 --io-deadline 20 "$@" \
    >> "$log" 2>&1 &
  SERVER_PID=$!
  "$CLI" query --socket "$sock" --wait 10 --ping > /dev/null \
    || fail "daemon on $sock did not come up (log: $log)"
}

stop_daemon() { # $1=socket
  "$CLI" query --socket "$1" --shutdown > /dev/null 2>&1
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=""
}

# run the trace against a daemon, one query per invocation; transport
# failures and typed overload replies are retried inside the client
# (--retry), typed IO errors by this outer loop. Output is normalized by
# stripping the [computed]/[memory]/[disk] origin tag — under faults a
# store can fail and legitimately change a later answer's origin, but
# never its bytes.
run_trace() { # $1=socket $2=outfile
  : > "$2"
  while IFS= read -r q; do
    tries=0
    while :; do
      if out=$("$CLI" query --socket "$1" --wait 5 --retry 8 "$q" 2>/dev/null); then
        printf '%s\n' "$out" | sed 's/^\[[a-z]*\] //' >> "$2"
        break
      fi
      tries=$((tries + 1))
      [ "$tries" -lt 25 ] || fail "query \"$q\" on $1 never succeeded after $tries tries"
    done
  done < "$TRACE"
}

stat_field() { # $1=socket $2=field name as rendered (e.g. shed, reaped)
  "$CLI" query --socket "$1" --stats 2>/dev/null \
    | sed -n "s/.*[ ,]\([0-9][0-9]*\) $2[,.]*.*/\1/p" | head -1
}

echo "== chaos_smoke ($MODE): oracle =="
ORACLE="$DIR/oracle.txt"
start_daemon "$DIR/oracle.sock" "$DIR/oracle.cache" "$DIR/oracle.spill" "$DIR/oracle.log"

echo "-- live-socket refusal --"
if "$CLI" serve --socket "$DIR/oracle.sock" --cache-dir "$DIR/thief.cache" \
     > "$DIR/thief.log" 2>&1; then
  fail "a second daemon stole a live socket"
fi
grep -q "already serving" "$DIR/thief.log" \
  || fail "socket refusal was not the typed one-line error (log: $DIR/thief.log)"

run_trace "$DIR/oracle.sock" "$ORACLE"
stop_daemon "$DIR/oracle.sock"
# responses can span several lines (enumeration outcome tables), so the
# oracle has at least one line per trace query
[ "$(wc -l < "$ORACLE")" -ge "$TRACE_LEN" ] || fail "oracle trace incomplete"
echo "   oracle: $TRACE_LEN responses recorded"

echo "== phase 1: seeded fault plans (rate $FAULT_RATE) =="
for seed in $FAULT_SEEDS; do
  sock="$DIR/fault$seed.sock"
  start_daemon "$sock" "$DIR/fault$seed.cache" "$DIR/fault$seed.spill" \
    "$DIR/fault$seed.log" --fault-seed "$seed" --fault-rate "$FAULT_RATE"
  run_trace "$sock" "$DIR/fault$seed.out"
  cmp -s "$ORACLE" "$DIR/fault$seed.out" \
    || fail "seed $seed: responses under faults differ from oracle (replay with \
--fault-seed $seed --fault-rate $FAULT_RATE)"
  "$CLI" query --socket "$sock" --stats | grep -q "disk errors" \
    || fail "seed $seed: stats unavailable after fault run"
  stop_daemon "$sock"
  echo "   seed $seed: byte-identical to oracle"
done

echo "== phase 2: kill -9 / restart cycles ($KILL_CYCLES) =="
SOCK="$DIR/crash.sock"
CACHE="$DIR/crash.cache"
SPILL="$DIR/crash.spill"
start_daemon "$SOCK" "$CACHE" "$SPILL" "$DIR/crash.log"
run_trace "$SOCK" "$DIR/crash0.out" # warm the cache and spill dirs
cycle=1
while [ "$cycle" -le "$KILL_CYCLES" ]; do
  # a fresh in-flight query (new window each cycle, so it really computes)
  "$CLI" query --socket "$SOCK" --wait 2 \
    "enumerate inc4 sc window=$((4 + cycle))" > /dev/null 2>&1 &
  VICTIM=$!
  sleep 0.2
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=""
  wait "$VICTIM" 2>/dev/null
  # restart over the same cache + spill + stale socket file: the daemon
  # must sweep the debris (dead socket, torn tmp files) and serve
  start_daemon "$SOCK" "$CACHE" "$SPILL" "$DIR/crash.log"
  run_trace "$SOCK" "$DIR/crash$cycle.out"
  cmp -s "$ORACLE" "$DIR/crash$cycle.out" \
    || fail "kill cycle $cycle: post-restart responses differ from oracle"
  echo "   cycle $cycle: restart over debris, byte-identical to oracle"
  cycle=$((cycle + 1))
done
# graceful drain to finish: SIGTERM must stop the daemon and remove the socket
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
[ ! -S "$SOCK" ] || fail "SIGTERM drain left the socket behind"
echo "   SIGTERM drain: clean exit, socket removed"

echo "== phase 3: overload shedding =="
SOCK="$DIR/load.sock"
start_daemon "$SOCK" "$DIR/load.cache" "$DIR/load.spill" "$DIR/load.log" \
  --workers 1 --max-queue 1
n=0
pids=""
while [ "$n" -lt 10 ]; do
  # distinct seeds so every client really computes and holds the worker
  "$CLI" query --socket "$SOCK" --wait 5 --retry 20 \
    "estimate settling tso gamma=2 trials=30000 seed=$((100 + n))" \
    > "$DIR/load$n.out" 2>&1 &
  pids="$pids $!"
  n=$((n + 1))
done
rc=0
for pid in $pids; do
  wait "$pid" || rc=$?
done
[ "$rc" -eq 0 ] || fail "an overloaded client did not eventually succeed (rc=$rc)"
shed=$(stat_field "$SOCK" shed)
stop_daemon "$SOCK"
[ -n "$shed" ] || fail "could not parse shed counter from stats"
[ "$shed" -ge 1 ] || fail "10 clients against workers=1 max-queue=1 shed nothing"
echo "   10/10 retrying clients succeeded; daemon shed $shed connections"

echo "chaos_smoke: OK ($MODE: $(echo $FAULT_SEEDS | wc -w) fault seeds, \
$KILL_CYCLES kill cycles, shed=$shed)"
