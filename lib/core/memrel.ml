(** memrel — the public facade.

    One [open Memrel] (or dune dependency on [memrel]) exposes the whole
    reproduction: the probability substrate, the memory models, the two
    random processes, the joined model, the operational machine and the
    figure renderers. Each submodule is documented in its own interface;
    see README.md for the map and DESIGN.md for the paper-to-module
    correspondence. *)

(** {1 Numerics substrate} *)

module Bigint = Memrel_prob.Bigint
module Rational = Memrel_prob.Rational
module Rng = Memrel_prob.Rng
module Dist = Memrel_prob.Dist
module Stats = Memrel_prob.Stats
module Combinatorics = Memrel_prob.Combinatorics
module Series = Memrel_prob.Series
module Logspace = Memrel_prob.Logspace
module Interval = Memrel_prob.Interval
module Par = Memrel_prob.Par
module Budget = Memrel_prob.Budget
module Snapshot = Memrel_prob.Snapshot
module Prob_sigs = Memrel_prob.Sigs

(** {1 Memory models (Table 1)} *)

module Op = Memrel_memmodel.Op
module Fence = Memrel_memmodel.Fence
module Model = Memrel_memmodel.Model

(** {1 The settling process (Sections 3.1, 4)} *)

module Program = Memrel_settling.Program
module Settle = Memrel_settling.Settle
module Window = Memrel_settling.Window
module Window_analytic = Memrel_settling.Analytic
module Window_analytic_general = Memrel_settling.Analytic_general
module Window_exact_dp = Memrel_settling.Exact_dp
module Window_exact_dp_q = Memrel_settling.Exact_dp_q
module Window_joint_dp = Memrel_settling.Joint_dp
module Window_joint_dp_q = Memrel_settling.Joint_dp_q
module Window_verified = Memrel_settling.Verified
module Window_mc = Memrel_settling.Mc
module Window_scratch = Memrel_settling.Scratch

(** {1 The shift process (Section 5)} *)

module Shift = Memrel_shift.Process
module Shift_exact = Memrel_shift.Exact
module Asymptotic = Memrel_shift.Asymptotic

(** {1 The joined model (Section 6)} *)

module Joint = Memrel_interleave.Joint
module Manifestation = Memrel_interleave.Analytic
module Scaling = Memrel_interleave.Scaling
module Timeline = Memrel_interleave.Timeline

(** {1 Operational machine substrate} *)

module Instr = Memrel_machine.Instr
module Machine_state = Memrel_machine.State
module Semantics = Memrel_machine.Semantics
module Machine_exec = Memrel_machine.Exec
module Enumerate = Memrel_machine.Enumerate
module Extmem = Memrel_machine.Extmem
module Litmus = Memrel_machine.Litmus
module Litmus_parse = Memrel_machine.Parse

(** {1 Axiomatic checker (event graphs, per-model acyclicity axioms)} *)

module Axiom_event = Memrel_axiom.Event
module Axiom_order = Memrel_axiom.Order
module Axiom_trail = Memrel_axiom.Trail
module Axiom_relations = Memrel_axiom.Relations
module Axioms = Memrel_axiom.Axioms
module Axiom_candidate = Memrel_axiom.Candidate
module Axiom = Memrel_axiom.Generate
module Axiom_solver = Memrel_axiom.Solver
module Axiom_differential = Memrel_axiom.Differential

(** {1 Service mode (the [memrel serve] daemon)} *)

module Service_protocol = Memrel_service.Protocol
module Service_cache = Memrel_service.Cache
module Service_pool = Memrel_service.Pool
module Service_engine = Memrel_service.Engine
module Service_server = Memrel_service.Server
module Service_client = Memrel_service.Client
module Service_clock = Memrel_service.Clock
module Faultio = Memrel_service.Faultio

(** {1 Figure renderings} *)

module Render = Memrel_trace.Render
