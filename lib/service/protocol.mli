(** The memrel service wire protocol.

    Length-prefixed binary frames carrying typed requests and responses.
    A frame is ["MRF1"] + u32 payload length + payload; a payload is a
    version byte followed by a tagged tree of big-endian fixed-width
    fields. The {e result} portion of a response — the part the cache
    stores — has its own encoder pair ({!encode_result}/{!decode_result})
    so a cache hit can be spliced into a response frame byte-for-byte
    ({!encode_result_response}): a cached answer is guaranteed to be the
    exact bytes the engine originally produced. See DESIGN.md §14. *)

val version : int
(** Protocol version byte, bumped on any incompatible change. *)

val max_frame_bytes : int
(** Frames above this size (16 MiB) are rejected on both ends. *)

(** {1 Queries} *)

type axiom_engine = Generate | Solver

type estimate_kind =
  | Settling of { gamma : int; p : float; m : int }
      (** Pr[B_gamma] of the settling process *)
  | Shift of { gammas : int array }  (** Pr[A] of the shift process *)
  | Joint of { n : int }  (** Pr[no bug] of the joined model *)

type query =
  | Verify of { test : string; family : Memrel_memmodel.Model.family; window : int }
  | Enumerate of {
      test : string;
      family : Memrel_memmodel.Model.family;
      window : int;
      por : bool;
    }
  | Axiom of {
      test : string;
      family : Memrel_memmodel.Model.family;
      window : int;
      engine : axiom_engine;
    }
  | Estimate of {
      kind : estimate_kind;
      family : Memrel_memmodel.Model.family;
      seed : int;
      trials : int;
      target_width : float option;
          (** [Some w]: adaptive stopping at CI width [w], [trials] as the
              cap *)
    }

type limits = {
  deadline_s : float option;
  max_work : int option;
  max_mem_mb : int option;
}
(** Per-request resource limits, mapped onto {!Memrel_prob.Budget} after
    clamping by the server's caps. *)

val no_limits : limits

type request =
  | Query of query * limits
  | Batch of (query * limits) list
      (** answered by a [Results] in the same order; identical sub-queries
          are computed once *)
  | Stats
  | Ping
  | Shutdown

(** {1 Results} *)

type outcome = (string * int) list

type partial_info = { cause : string; work_done : int; elapsed_s : float }
(** Wire form of {!Memrel_prob.Budget.exhaustion}. *)

val partial_of_exhaustion : Memrel_prob.Budget.exhaustion -> partial_info

type payload =
  | Verdict of {
      observed_relaxed : bool;
      expected_relaxed : bool;
      agrees : bool;
      outcomes : int;
      terminals : int;
    }
  | Outcomes of { entries : (outcome * int) list; terminals : int; states : int }
  | Axiom_outcomes of { entries : (outcome * int) list; accepted : int }
  | Estimated of { point : float; lo : float; hi : float; trials : int; target_met : bool }

type result = { payload : payload; partial : partial_info option }
(** [partial = Some _] marks a budget-exhausted partial answer; only
    complete results are cacheable. *)

type origin = Computed | Memory_hit | Disk_hit

val origin_to_string : origin -> string

type error_code = Bad_request | Unknown_test | Unsupported | Server_error

val error_code_to_string : error_code -> string

type cache_stats = {
  entries : int;
  memory_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  disk_errors : int;
  repairs : int;
      (** corrupt disk entries (CRC/decode failures) recomputed and
          rewritten — a served answer is never built from a bad entry *)
}

type server_stats = {
  cache : cache_stats;
  requests : int;
  uptime_s : float;  (** monotonic; wall-clock steps cannot make it negative *)
  workers : int;
  shed : int;  (** connections answered [Overloaded] at queue capacity *)
  handler_exceptions : int;  (** worker handler exceptions (counted + logged) *)
  respawns : int;  (** worker domains respawned after a fatal escape *)
  reaped : int;  (** connections closed at a per-frame IO deadline *)
}

type response =
  | Result of { result : result; origin : origin }
  | Results of response list
  | Error of { code : error_code; message : string }
  | Overloaded of { retry_after_s : float }
      (** worker queue at capacity: the typed shed response. Safe to retry
          after the delay — complete responses are byte-identical whether
          computed or cached, so a retry can never observe a different
          answer. *)
  | Stats_reply of server_stats
  | Pong
  | Bye

(** {1 Binary encoding} *)

val encode_request : request -> string
val decode_request : string -> (request, string) Stdlib.result

val encode_result : result -> string
(** The cacheable encoding. Deterministic: equal results encode to equal
    bytes. *)

val decode_result : string -> (result, string) Stdlib.result

val encode_response : response -> string
val decode_response : string -> (response, string) Stdlib.result

val encode_result_response : origin:origin -> string -> string
(** [encode_result_response ~origin result_bytes] splices bytes produced by
    {!encode_result} into a full [Result] response payload without decoding
    them — the cache-hit fast path, and the byte-identity guarantee. *)

val encode_result_item : origin:origin -> string -> string
(** The splice as a version-less batch item. *)

val encode_response_item : response -> string
(** Any response as a version-less batch item. *)

val encode_items_response : string list -> string
(** Wrap items (from {!encode_result_item} / {!encode_response_item}) into
    a [Results] payload — how the server answers a [Batch] without
    re-encoding cached results. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes. Raises [Unix.Unix_error] and
    [Invalid_argument] on oversized payloads. *)

val read_frame : Unix.file_descr -> (string option, string) Stdlib.result
(** [Ok None] on clean EOF before a frame starts; [Error _] on a malformed
    or oversized header, or EOF mid-frame. *)

(** {2 Deadline-bounded framing}

    The server runs every frame read/write under a per-frame monotonic
    deadline: a client that sends half a frame and stalls, or stops
    draining its socket mid-reply, is reaped at the deadline instead of
    pinning a worker domain. *)

type frame_error =
  | Frame_timeout  (** per-frame deadline expired: reap the connection *)
  | Frame_closed of string  (** peer vanished mid-frame *)
  | Frame_malformed of string  (** bad magic / oversized length: answer and hang up *)

val frame_error_to_string : frame_error -> string

val read_frame_deadline :
  Unix.file_descr -> deadline_s:float -> (string option, frame_error) Stdlib.result
(** Like {!read_frame} but the whole frame must arrive within
    [deadline_s] seconds (monotonic). Works on blocking and non-blocking
    descriptors. *)

val write_frame_deadline :
  Unix.file_descr -> deadline_s:float -> string -> (unit, frame_error) Stdlib.result
(** Like {!write_frame} but the whole frame must drain within
    [deadline_s] seconds (monotonic). *)

(** {1 Addresses} *)

type address = Unix_path of string | Tcp of string * int

val address_of_string : string -> (address, string) Stdlib.result
(** ["tcp:HOST:PORT"] parses to {!Tcp} (empty host means 127.0.0.1);
    anything else is a Unix-domain socket path. *)

val address_to_string : address -> string

(** {1 Query text syntax}

    The [memrel query] surface:
    {v
    verify TEST MODEL [window=W]
    enumerate TEST MODEL [window=W] [por]
    axiom TEST MODEL [window=W] [engine=generate|solver]
    estimate settling MODEL gamma=G [p=P] [m=M] [seed=S] [trials=N] [width=W]
    estimate shift gammas=3,2,5 [seed=S] [trials=N] [width=W]
    estimate joint MODEL n=N [seed=S] [trials=N] [width=W]
    v}
    Defaults: window 8, seed 1, trials 100_000, p 0.5, m 64. *)

val parse_query : string -> (query, string) Stdlib.result

val query_to_string : query -> string
(** Canonical text form; [parse_query (query_to_string q)] round-trips for
    every encodable query. *)

(** {1 Rendering} *)

val render_result : result -> string
val render_response : response -> string
(** Human-readable rendering for the CLI; [Result] lines are prefixed with
    the origin tag [[computed]] / [[memory]] / [[disk]]. *)
