type 'a t = {
  queue : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let worker_loop t handler =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (* a handler failure must not kill the worker: the connection it was
         serving is lost either way, the pool keeps draining *)
      (try handler job with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~workers ~handler =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t handler));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = not t.stopping in
  if accepted then begin
    Queue.push job t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers
