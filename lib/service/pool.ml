type pool_stats = {
  queue_len : int;
  shed : int;
  handler_exceptions : int;
  respawns : int;
}

type 'a t = {
  queue : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  max_queue : int;
  mutable stopping : bool;
  (* append-only while running: a dying worker pushes its replacement here
     before terminating, so shutdown's join loop can never miss a domain *)
  mutable domains : unit Domain.t list;
  mutable shed : int;
  mutable handler_exceptions : int;
  mutable respawns : int;
}

type submit_result = Accepted | Overloaded | Stopping

let note_exception t exn =
  Mutex.lock t.lock;
  t.handler_exceptions <- t.handler_exceptions + 1;
  Mutex.unlock t.lock;
  Printf.eprintf "memrel-pool: handler exception: %s\n%!" (Printexc.to_string exn)

let worker_loop t handler =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (* a handler failure must not kill the worker: the connection it was
         serving is lost either way, the pool keeps draining. Every escape
         is counted and logged — a silent swallow here once hid a protocol
         bug for a whole release. Crash_point is the one exception allowed
         through: it is the crash drill, and the supervisor below must see
         the domain actually die. *)
      (try handler job with
      | Memrel_prob.Faultio.Crash_point _ as e ->
        note_exception t e;
        raise e
      | e -> note_exception t e);
      loop ()
    end
  in
  loop ()

let rec spawn_worker t handler =
  let d =
    Domain.spawn (fun () ->
        try worker_loop t handler
        with e ->
          (* a fatal escape killed this worker; leave a replacement behind
             unless the pool is already shutting down *)
          Mutex.lock t.lock;
          let respawn = not t.stopping in
          if respawn then t.respawns <- t.respawns + 1;
          Mutex.unlock t.lock;
          if respawn then begin
            Printf.eprintf "memrel-pool: worker died (%s), respawning\n%!"
              (Printexc.to_string e);
            spawn_worker t handler
          end)
  in
  Mutex.lock t.lock;
  t.domains <- d :: t.domains;
  Mutex.unlock t.lock

let create ?(max_queue = 64) ~workers ~handler () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  if max_queue < 1 then invalid_arg "Pool.create: max_queue must be >= 1";
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      max_queue;
      stopping = false;
      domains = [];
      shed = 0;
      handler_exceptions = 0;
      respawns = 0;
    }
  in
  for _ = 1 to workers do
    spawn_worker t handler
  done;
  t

let submit t job =
  Mutex.lock t.lock;
  let r =
    if t.stopping then Stopping
    else if Queue.length t.queue >= t.max_queue then begin
      t.shed <- t.shed + 1;
      Overloaded
    end
    else begin
      Queue.push job t.queue;
      Condition.signal t.nonempty;
      Accepted
    end
  in
  Mutex.unlock t.lock;
  r

let queue_length t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      queue_len = Queue.length t.queue;
      shed = t.shed;
      handler_exceptions = t.handler_exceptions;
      respawns = t.respawns;
    }
  in
  Mutex.unlock t.lock;
  s

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* a worker that dies during the drain appends its replacement (if it
     raced the stopping flag) before terminating, so looping until the
     list is observed empty joins every domain that will ever exist *)
  let rec drain () =
    Mutex.lock t.lock;
    let ds = t.domains in
    t.domains <- [];
    Mutex.unlock t.lock;
    match ds with
    | [] -> ()
    | ds ->
      List.iter Domain.join ds;
      drain ()
  in
  drain ()
