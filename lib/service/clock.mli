(** Monotonic time for the service plane (CLOCK_MONOTONIC).

    Uptime, per-frame IO deadlines and client backoff sleeps are all
    measured against this clock, so wall-clock steps can neither produce
    negative uptimes nor skip a backoff sleep. *)

val now_s : unit -> float
(** Seconds on a monotonic clock. Only differences are meaningful. *)

val sleep_s : float -> unit
(** Sleep at least [d] seconds against the monotonic clock; EINTR-safe.
    No-op for [d <= 0]. *)
