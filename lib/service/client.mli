(** Blocking client for the memrel service. *)

type t

val connect : ?retry_for:float -> Protocol.address -> (t, string) result
(** [connect address] opens one connection. [retry_for] (seconds, default
    0) retries on [ECONNREFUSED]/[ENOENT] while the daemon is coming up —
    what the CLI's [--wait] flag and the in-process test harness use.
    Connecting also sets the process to ignore SIGPIPE (once), so a daemon
    hanging up mid-write surfaces as a retryable error instead of killing
    the client. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One request/response round trip. The connection is unusable after an
    [Error]. *)

val query : ?limits:Protocol.limits -> t -> Protocol.query -> (Protocol.response, string) result

val close : t -> unit

val with_connection :
  ?retry_for:float -> Protocol.address -> (t -> ('a, string) result) -> ('a, string) result

(** {1 Retrying requests} *)

type retry_stats = {
  attempts : int;  (** total attempts made, including the successful one *)
  overloaded_retries : int;  (** retries caused by a typed [Overloaded] shed *)
  connect_retries : int;  (** retries caused by connect/transport failures *)
  backoff_s : float;  (** total time slept between attempts *)
}

val request_retry :
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?deadline_s:float ->
  ?seed:int ->
  Protocol.address ->
  Protocol.request ->
  (Protocol.response * retry_stats, string) result
(** One logical request with retries: a fresh connection per attempt,
    exponential backoff ([base_delay_s] doubling up to [max_delay_s], 50%
    seeded jitter) on connect or transport failure, and an [Overloaded]
    reply's [retry_after_s] honored as the backoff floor. Gives up after
    [max_attempts] (default 8) or when the monotonic [deadline_s] (default
    30) would pass. A returned [Ok] is never [Overloaded]. Retrying is safe
    by construction: complete responses are byte-identical whether
    computed, cached or recomputed after a crash, so a retried query
    cannot observe a different answer. *)
