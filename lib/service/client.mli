(** Blocking client for the memrel service. *)

type t

val connect : ?retry_for:float -> Protocol.address -> (t, string) result
(** [connect address] opens one connection. [retry_for] (seconds, default
    0) retries on [ECONNREFUSED]/[ENOENT] while the daemon is coming up —
    what the CLI's [--wait] flag and the in-process test harness use. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One request/response round trip. The connection is unusable after an
    [Error]. *)

val query : ?limits:Protocol.limits -> t -> Protocol.query -> (Protocol.response, string) result

val close : t -> unit

val with_connection :
  ?retry_for:float -> Protocol.address -> (t -> ('a, string) result) -> ('a, string) result
