module P = Protocol
module Model = Memrel_memmodel.Model
module Budget = Memrel_prob.Budget
module Rng = Memrel_prob.Rng
module Litmus = Memrel_machine.Litmus
module Enumerate = Memrel_machine.Enumerate
module Extmem = Memrel_machine.Extmem
module Semantics = Memrel_machine.Semantics
module Generate = Memrel_axiom.Generate
module Solver = Memrel_axiom.Solver
module Mc = Memrel_settling.Mc
module Process = Memrel_shift.Process
module Joint = Memrel_interleave.Joint

type caps = {
  max_deadline_s : float option;
  max_work_cap : int option;
  max_mem_mb_cap : int option;
}

let no_caps = { max_deadline_s = None; max_work_cap = None; max_mem_mb_cap = None }

type extmem = { spill_root : string; mem_budget_bytes : int }

type error = { code : P.error_code; message : string }

let bad fmt = Printf.ksprintf (fun message -> Error { code = P.Bad_request; message }) fmt
let unsupported message = Error { code = P.Unsupported; message }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* -- cache keys ----------------------------------------------------------
   Keyed on the structural Litmus.hash, never the test name: `sb` and a
   renamed copy share an entry, and `inc3` can never alias a corpus test.
   Limits are deliberately NOT part of the key — a budget bounds the cost
   of computing, and serving an already-complete answer costs nothing.
   Partial results are never stored, so a key always maps to the one
   complete answer. *)

let fam = Model.family_name

let litmus_hash name =
  match Litmus.find name with
  | t -> Ok (Litmus.hash t, t)
  | exception Not_found ->
    Error
      {
        code = P.Unknown_test;
        message =
          Printf.sprintf "unknown litmus test %S (known: %s, incN)" name
            (String.concat ", " Litmus.names);
      }

let check_family = function
  | Model.Custom -> unsupported "custom models have no wire encoding"
  | f -> Ok f

let check_window w = if w >= 1 && w <= 1024 then Ok w else bad "window %d out of range 1..1024" w

let cache_key (q : P.query) =
  match q with
  | P.Verify { test; family; window } ->
    let* family = check_family family in
    let* window = check_window window in
    let* hash, _ = litmus_hash test in
    Ok (Printf.sprintf "verify|%s|%s|w%d" hash (fam family) window)
  | P.Enumerate { test; family; window; por } ->
    let* family = check_family family in
    let* window = check_window window in
    let* hash, _ = litmus_hash test in
    Ok (Printf.sprintf "enum|%s|%s|w%d|por%d" hash (fam family) window (if por then 1 else 0))
  | P.Axiom { test; family; window; engine } ->
    let* family = check_family family in
    let* window = check_window window in
    let* hash, _ = litmus_hash test in
    Ok
      (Printf.sprintf "axiom|%s|%s|w%d|%s" hash (fam family) window
         (match engine with P.Generate -> "generate" | P.Solver -> "solver"))
  | P.Estimate { kind; family; seed; trials; target_width } ->
    let* family = check_family family in
    let* () = if trials >= 1 then Ok () else bad "trials must be >= 1 (got %d)" trials in
    let* () =
      match target_width with
      | Some w when not (w > 0. && w <= 1.) -> bad "width must be in (0, 1] (got %g)" w
      | _ -> Ok ()
    in
    (* %h renders floats exactly, so distinct parameters cannot collide *)
    let width = match target_width with None -> "-" | Some w -> Printf.sprintf "%h" w in
    (match kind with
     | P.Settling { gamma; p; m } ->
       let* () = if gamma >= 0 then Ok () else bad "gamma must be >= 0 (got %d)" gamma in
       let* () = if p > 0. && p < 1. then Ok () else bad "p must be in (0, 1) (got %g)" p in
       let* () = if m >= 1 then Ok () else bad "m must be >= 1 (got %d)" m in
       Ok
         (Printf.sprintf "est|settling|%s|g%d|p%h|m%d|s%d|t%d|w%s" (fam family) gamma p m seed
            trials width)
     | P.Shift { gammas } ->
       let* () =
         if Array.length gammas = 0 then bad "shift needs at least one segment"
         else if Array.exists (fun g -> g < 0) gammas then bad "segment lengths must be >= 0"
         else Ok ()
       in
       Ok
         (Printf.sprintf "est|shift|g%s|s%d|t%d|w%s"
            (String.concat "," (List.map string_of_int (Array.to_list gammas)))
            seed trials width)
     | P.Joint { n } ->
       let* () = if n >= 2 then Ok () else bad "joint needs n >= 2 (got %d)" n in
       Ok (Printf.sprintf "est|joint|%s|n%d|s%d|t%d|w%s" (fam family) n seed trials width))

(* -- budgets ------------------------------------------------------------- *)

let merge_min a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let budget_of caps (l : P.limits) =
  let deadline_s = merge_min l.P.deadline_s caps.max_deadline_s in
  let max_work = merge_min l.P.max_work caps.max_work_cap in
  let max_mem_mb = merge_min l.P.max_mem_mb caps.max_mem_mb_cap in
  match (deadline_s, max_work, max_mem_mb) with
  | None, None, None -> None
  | _ ->
    Some
      (Budget.create ?deadline_s ?max_work
         ?max_mem_bytes:(Option.map (fun mb -> mb * 1024 * 1024) max_mem_mb)
         ())

(* -- dispatch ------------------------------------------------------------ *)

let model_of_family = function
  | Model.Sequential_consistency -> Model.sc
  | Model.Total_store_order -> Model.tso ()
  | Model.Partial_store_order -> Model.pso ()
  | Model.Weak_ordering -> Model.wo ()
  | Model.Custom -> invalid_arg "Engine: custom family"

let result ?exhausted payload =
  { P.payload; partial = Option.map P.partial_of_exhaustion exhausted }

(* per-query spill directory under the configured root: derived from the
   cache key, so retries of the same query resume the same spill state and
   distinct queries never collide *)
let spill_dir_of extmem key =
  let safe =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c | _ -> '_')
      key
  in
  Filename.concat extmem.spill_root safe

let enumerate_run ?budget ?extmem ~key (t : Litmus.t) family ~window ~por =
  let discipline = Semantics.of_model ~window family in
  let st = Litmus.initial_state t in
  let observe = t.Litmus.observe in
  match extmem with
  | None -> Enumerate.outcomes ~por ?budget discipline st ~observe
  | Some x ->
    (* the engines agree exactly on complete runs (outcomes, per-outcome
       terminal counts, states, terminals), so routing a query through the
       disk-spilling BFS cannot change the bytes a client — or the result
       cache — sees. A budget-tripped run leaves its spill state in place:
       the next identical query resumes from the last complete level
       instead of starting over. *)
    let dir = spill_dir_of x key in
    let attempt ~resume =
      Extmem.outcomes ~por ?budget ~mem_budget_bytes:x.mem_budget_bytes ~resume
        ~spill_dir:dir ~resume_key:key discipline st ~observe
    in
    (* Corrupt spill state — crash debris, a torn or short run file — must
       not poison this query forever: sweep the directory and restart the
       run from scratch. If the clean restart fails too, sweep again so
       the client's next retry also starts fresh, and surface the error. *)
    let r =
      try attempt ~resume:(Extmem.can_resume dir)
      with Extmem.Spill_error _ ->
        Extmem.remove_spill_dir dir;
        (try attempt ~resume:false
         with e ->
           Extmem.remove_spill_dir dir;
           raise e)
    in
    if r.Extmem.base.Enumerate.exhausted = None then Extmem.remove_spill_dir dir;
    r.Extmem.base

let run ~caps ?extmem (q : P.query) (limits : P.limits) =
  (* cache_key also performs all parameter validation *)
  let* key = cache_key q in
  let budget = budget_of caps limits in
  match q with
  | P.Verify { test; family; window } ->
    let* _, t = litmus_hash test in
    let r = enumerate_run ?budget ?extmem ~key t family ~window ~por:true in
    let observed_relaxed = List.mem_assoc t.Litmus.relaxed_outcome r.Enumerate.outcomes in
    let expected_relaxed = t.Litmus.allowed_under family in
    Ok
      (result ?exhausted:r.Enumerate.exhausted
         (P.Verdict
            {
              observed_relaxed;
              expected_relaxed;
              agrees = observed_relaxed = expected_relaxed;
              outcomes = List.length r.Enumerate.outcomes;
              terminals = r.Enumerate.terminals;
            }))
  | P.Enumerate { test; family; window; por } ->
    let* _, t = litmus_hash test in
    let r = enumerate_run ?budget ?extmem ~key t family ~window ~por in
    Ok
      (result ?exhausted:r.Enumerate.exhausted
         (P.Outcomes
            {
              entries = r.Enumerate.outcomes;
              terminals = r.Enumerate.terminals;
              states = r.Enumerate.states_visited;
            }))
  | P.Axiom { test; family; window; engine } -> begin
    let* _, t = litmus_hash test in
    match engine with
    | P.Generate ->
      let r = Generate.run ~window ?budget t family in
      Ok
        (result ?exhausted:r.Generate.stats.Generate.exhausted
           (P.Axiom_outcomes
              {
                entries =
                  List.map
                    (fun (e : Generate.entry) -> (e.Generate.outcome, e.Generate.candidates))
                    r.Generate.entries;
                accepted = r.Generate.stats.Generate.accepted;
              }))
    | P.Solver ->
      let r = Solver.run ~window ?budget t family in
      Ok
        (result ?exhausted:r.Solver.stats.Solver.exhausted
           (P.Axiom_outcomes
              {
                entries =
                  List.map
                    (fun (e : Solver.entry) -> (e.Solver.outcome, e.Solver.candidates))
                    r.Solver.entries;
                accepted = r.Solver.stats.Solver.accepted;
              }))
  end
  | P.Estimate { kind; family; seed; trials; target_width } ->
    let rng = Rng.create seed in
    let estimated ~point ~(ci : Memrel_prob.Stats.interval) ~trials ~target_met exhausted =
      result ?exhausted
        (P.Estimated
           { point; lo = ci.Memrel_prob.Stats.lo; hi = ci.Memrel_prob.Stats.hi; trials;
             target_met })
    in
    Ok
      (match kind with
       | P.Settling { gamma; p; m } -> begin
         let model = model_of_family family in
         match target_width with
         | None ->
           let g =
             Mc.probability_b_governed ~p ~m ~jobs:1 ?budget ~trials ~gamma model rng
           in
           let point, ci = g.Memrel_prob.Par.value in
           estimated ~point ~ci
             ~trials:g.Memrel_prob.Par.run_stats.Memrel_prob.Par.trials_done
             ~target_met:false g.Memrel_prob.Par.exhausted
         | Some target_width ->
           let s =
             Mc.probability_b_adaptive ~p ~m ~jobs:1 ?budget ~target_width ~max_trials:trials
               ~gamma model rng
           in
           let point, ci = s.Memrel_prob.Par.value in
           estimated ~point ~ci ~trials:s.Memrel_prob.Par.trials_done
             ~target_met:s.Memrel_prob.Par.target_met s.Memrel_prob.Par.exhausted
       end
       | P.Shift { gammas } -> begin
         match target_width with
         | None ->
           let g = Process.estimate_governed ~jobs:1 ?budget ~trials rng gammas in
           let point, ci = g.Memrel_prob.Par.value in
           estimated ~point ~ci
             ~trials:g.Memrel_prob.Par.run_stats.Memrel_prob.Par.trials_done
             ~target_met:false g.Memrel_prob.Par.exhausted
         | Some target_width ->
           let s =
             Process.estimate_adaptive ~jobs:1 ?budget ~target_width ~max_trials:trials rng
               gammas
           in
           let point, ci = s.Memrel_prob.Par.value in
           estimated ~point ~ci ~trials:s.Memrel_prob.Par.trials_done
             ~target_met:s.Memrel_prob.Par.target_met s.Memrel_prob.Par.exhausted
       end
       | P.Joint { n } -> begin
         let model = model_of_family family in
         match target_width with
         | None ->
           let g = Joint.estimate_governed ~jobs:1 ?budget ~trials model ~n rng in
           let e = g.Memrel_prob.Par.value in
           estimated ~point:e.Joint.pr_no_bug ~ci:e.Joint.ci
             ~trials:g.Memrel_prob.Par.run_stats.Memrel_prob.Par.trials_done
             ~target_met:false g.Memrel_prob.Par.exhausted
         | Some target_width ->
           let s =
             Joint.estimate_adaptive ~jobs:1 ?budget ~target_width ~max_trials:trials model ~n
               rng
           in
           let e = s.Memrel_prob.Par.value in
           estimated ~point:e.Joint.pr_no_bug ~ci:e.Joint.ci
             ~trials:s.Memrel_prob.Par.trials_done ~target_met:s.Memrel_prob.Par.target_met
             s.Memrel_prob.Par.exhausted
       end)

let run ~caps ?extmem q limits =
  match run ~caps ?extmem q limits with
  | (Ok _ | Error _) as r -> r
  | exception Invalid_argument m -> unsupported m
  | exception Extmem.Spill_error m ->
    Error { code = P.Server_error; message = "spill: " ^ m }
  | exception e -> Error { code = P.Server_error; message = Printexc.to_string e }

(* -- cached execution ----------------------------------------------------
   The single entry point the server (and the differential tests) use: the
   cache stores Protocol.encode_result bytes, and only complete results.
   A hit is therefore always the exact bytes a direct run produced. *)

let run_cached ~caps ?extmem cache (q : P.query) (limits : P.limits) =
  let* key = cache_key q in
  Cache.find_or_compute cache ~key ~compute:(fun () ->
      let* r = run ~caps ?extmem q limits in
      Ok (P.encode_result r, r.P.partial = None))
