(* Monotonic time for the service plane.

   Uptime, per-frame IO deadlines and client backoff sleeps must not move
   when the wall clock steps (NTP slew, manual resets): gettimeofday-based
   deadlines can produce negative uptimes or skip a backoff sleep
   entirely. CLOCK_MONOTONIC (via bechamel's noalloc stub) only ever goes
   forward. *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* a sleep that ignores wall-clock steps: select() on Linux measures
   elapsed (monotonic-ish) time, and the loop re-checks against the
   monotonic deadline either way *)
let sleep_s d =
  let deadline = now_s () +. d in
  let rec loop () =
    let remaining = deadline -. now_s () in
    if remaining > 0. then begin
      (match Unix.select [] [] [] remaining with
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  if d > 0. then loop ()
