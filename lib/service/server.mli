(** The [memrel serve] daemon.

    Listens on a Unix-domain or TCP socket, dispatches connections to a
    {!Pool} of worker Domains, and answers {!Protocol} requests through a
    {!Cache}-fronted {!Engine}. Cache hits are spliced into responses
    byte-for-byte; [Batch] requests compute identical sub-queries once; a
    [Shutdown] request stops the accept loop, drains the pool, and removes
    a Unix socket path. Idle connections are polled at frame boundaries so
    shutdown never waits on a silent client.

    Robustness posture (DESIGN.md §16): a full worker queue sheds new
    connections with a typed [Overloaded] retry-after response instead of
    queueing unboundedly; every frame read/write runs under a per-frame
    monotonic deadline so a stalled client is reaped rather than pinning a
    worker; worker handler exceptions are counted, logged and survived,
    and a worker killed by the crash drill is respawned; starting over a
    Unix socket that a live daemon still answers is refused rather than
    stealing the path. *)

type config = {
  address : Protocol.address;
  cache_dir : string;
  workers : int;  (** worker Domains serving connections (>= 1) *)
  caps : Engine.caps;  (** server-side ceilings on per-request limits *)
  shards : int;  (** cache lock shards (1..256) *)
  extmem : Engine.extmem option;
      (** when set, verify/enumerate queries run on the external-memory
          BFS engine, spilling under [spill_root] — RAM-bounded queries
          answer identically, larger ones become answerable *)
  max_queue : int;
      (** pending-connection bound; beyond it new connections are shed
          with [Overloaded] (>= 1) *)
  io_deadline_s : float;
      (** per-frame IO deadline: once a frame starts, the request/reply
          exchange must finish within this many seconds or the connection
          is reaped *)
  drain_signals : bool;
      (** install SIGTERM/SIGINT handlers that drain gracefully (stop
          accepting, finish in-flight requests, remove the socket) — the
          CLI daemon sets this; in-process test servers leave it off *)
}

val resolve_host : string -> Unix.inet_addr
(** Numeric parse first, then a name lookup. Raises [Failure]. *)

val default_config : Protocol.address -> string -> config
(** 1 worker, 16 shards, no caps, queue bound 64, 30 s IO deadline, no
    signal handlers. *)

val unix_socket_live : string -> bool
(** Does a live daemon answer on this Unix socket path? *)

val retry_after_hint : backlog:int -> workers:int -> float
(** The shed response's retry-after, sized from backlog over capacity and
    clamped to [0.05, 2.0] seconds. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Serve until a [Shutdown] request arrives (or, with [drain_signals],
    SIGTERM/SIGINT). [on_ready] fires once the socket is listening
    (in-process harnesses use it to know when to connect). Blocks the
    calling domain. Raises [Failure] without serving anything if a live
    daemon already answers on a Unix socket path. *)
