(** The [memrel serve] daemon.

    Listens on a Unix-domain or TCP socket, dispatches connections to a
    {!Pool} of worker Domains, and answers {!Protocol} requests through a
    {!Cache}-fronted {!Engine}. Cache hits are spliced into responses
    byte-for-byte; [Batch] requests compute identical sub-queries once; a
    [Shutdown] request stops the accept loop, drains the pool, and removes
    a Unix socket path. Idle connections are polled at frame boundaries so
    shutdown never waits on a silent client. *)

type config = {
  address : Protocol.address;
  cache_dir : string;
  workers : int;  (** worker Domains serving connections (>= 1) *)
  caps : Engine.caps;  (** server-side ceilings on per-request limits *)
  shards : int;  (** cache lock shards (1..256) *)
  extmem : Engine.extmem option;
      (** when set, verify/enumerate queries run on the external-memory
          BFS engine, spilling under [spill_root] — RAM-bounded queries
          answer identically, larger ones become answerable *)
}

val resolve_host : string -> Unix.inet_addr
(** Numeric parse first, then a name lookup. Raises [Failure]. *)

val default_config : Protocol.address -> string -> config
(** 1 worker, 16 shards, no caps. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Serve until a [Shutdown] request arrives. [on_ready] fires once the
    socket is listening (in-process harnesses use it to know when to
    connect). Blocks the calling domain. *)
