module Model = Memrel_memmodel.Model
module Budget = Memrel_prob.Budget

let version = 1
let frame_magic = "MRF1"
let max_frame_bytes = 16 * 1024 * 1024

(* -- typed messages ----------------------------------------------------- *)

type axiom_engine = Generate | Solver

type estimate_kind =
  | Settling of { gamma : int; p : float; m : int }
  | Shift of { gammas : int array }
  | Joint of { n : int }

type query =
  | Verify of { test : string; family : Model.family; window : int }
  | Enumerate of { test : string; family : Model.family; window : int; por : bool }
  | Axiom of { test : string; family : Model.family; window : int; engine : axiom_engine }
  | Estimate of {
      kind : estimate_kind;
      family : Model.family;
      seed : int;
      trials : int;
      target_width : float option;
    }

type limits = {
  deadline_s : float option;
  max_work : int option;
  max_mem_mb : int option;
}

let no_limits = { deadline_s = None; max_work = None; max_mem_mb = None }

type request =
  | Query of query * limits
  | Batch of (query * limits) list
  | Stats
  | Ping
  | Shutdown

type outcome = (string * int) list

type partial_info = { cause : string; work_done : int; elapsed_s : float }

let partial_of_exhaustion (e : Budget.exhaustion) =
  {
    cause = Budget.cause_to_string e.Budget.cause;
    work_done = e.Budget.work_done;
    elapsed_s = e.Budget.elapsed_s;
  }

type payload =
  | Verdict of {
      observed_relaxed : bool;
      expected_relaxed : bool;
      agrees : bool;
      outcomes : int;
      terminals : int;
    }
  | Outcomes of { entries : (outcome * int) list; terminals : int; states : int }
  | Axiom_outcomes of { entries : (outcome * int) list; accepted : int }
  | Estimated of { point : float; lo : float; hi : float; trials : int; target_met : bool }

type result = { payload : payload; partial : partial_info option }

type origin = Computed | Memory_hit | Disk_hit

let origin_to_string = function
  | Computed -> "computed"
  | Memory_hit -> "memory"
  | Disk_hit -> "disk"

type error_code = Bad_request | Unknown_test | Unsupported | Server_error

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_test -> "unknown-test"
  | Unsupported -> "unsupported"
  | Server_error -> "server-error"

type cache_stats = {
  entries : int;
  memory_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  disk_errors : int;
  repairs : int;  (** corrupt disk entries recomputed and rewritten *)
}

type server_stats = {
  cache : cache_stats;
  requests : int;
  uptime_s : float;  (** monotonic: wall-clock steps cannot make it negative *)
  workers : int;
  shed : int;  (** connections refused with [Overloaded] at queue capacity *)
  handler_exceptions : int;  (** worker handler exceptions counted, not swallowed *)
  respawns : int;  (** worker domains that died and were respawned *)
  reaped : int;  (** connections closed at a per-frame IO deadline *)
}

type response =
  | Result of { result : result; origin : origin }
  | Results of response list
  | Error of { code : error_code; message : string }
  | Overloaded of { retry_after_s : float }
      (** the worker queue is at capacity: retry after the given delay —
          never a hang, never a silently dropped connection *)
  | Stats_reply of server_stats
  | Pong
  | Bye

(* [response]'s [Error] constructor shadows Stdlib's; re-export the stdlib
   result constructors so unqualified [Ok]/[Error] below mean Stdlib's
   again (type-directed disambiguation handles [response] constructors) *)
type ('a, 'e) std_result = ('a, 'e) Stdlib.result = Ok of 'a | Error of 'e

(* -- binary encoding ----------------------------------------------------
   Big-endian fixed-width fields throughout (the Snapshot container's
   convention). Every integer travels as a two's-complement i64, floats as
   their IEEE 754 bit pattern, strings as u16 length + bytes, lists as a
   u32 count + items. Deterministic by construction: equal values encode to
   equal bytes, which is what the cache's byte-identity contract rests
   on. *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  for shift = 3 downto 0 do
    add_u8 buf (v lsr (8 * shift))
  done

let add_i64 buf v =
  let v = Int64.of_int v in
  for shift = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done

let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for shift = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * shift)))
  done

let add_bool buf v = add_u8 buf (if v then 1 else 0)

let add_string buf s =
  if String.length s > 0xffff then invalid_arg "Protocol: string too long";
  add_u16 buf (String.length s);
  Buffer.add_string buf s

let add_opt add buf = function
  | None -> add_u8 buf 0
  | Some v ->
    add_u8 buf 1;
    add buf v

let add_list add buf xs =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then fail "truncated message (need %d bytes at %d)" n c.pos

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  let hi = get_u8 c in
  let lo = get_u8 c in
  (hi lsl 8) lor lo

let get_u32 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor get_u8 c
  done;
  !v

let get_i64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.to_int !v

let get_f64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.float_of_bits !v

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad boolean byte %d" v

let get_string c =
  let n = get_u16 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c = match get_u8 c with 0 -> None | 1 -> Some (get c) | v -> fail "bad option byte %d" v

let get_list get c =
  let n = get_u32 c in
  if n > 1_000_000 then fail "implausible list length %d" n;
  List.init n (fun _ -> get c)

(* families: Custom carries a closure-bearing matrix and cannot travel *)

let add_family buf f =
  add_u8 buf
    (match f with
     | Model.Sequential_consistency -> 0
     | Model.Total_store_order -> 1
     | Model.Partial_store_order -> 2
     | Model.Weak_ordering -> 3
     | Model.Custom -> invalid_arg "Protocol: Custom models cannot be encoded")

let get_family c =
  match get_u8 c with
  | 0 -> Model.Sequential_consistency
  | 1 -> Model.Total_store_order
  | 2 -> Model.Partial_store_order
  | 3 -> Model.Weak_ordering
  | v -> fail "bad model family byte %d" v

let family_token = function
  | Model.Sequential_consistency -> "sc"
  | Model.Total_store_order -> "tso"
  | Model.Partial_store_order -> "pso"
  | Model.Weak_ordering -> "wo"
  | Model.Custom -> "custom"

let add_engine buf e = add_u8 buf (match e with Generate -> 0 | Solver -> 1)

let get_engine c =
  match get_u8 c with 0 -> Generate | 1 -> Solver | v -> fail "bad engine byte %d" v

let engine_token = function Generate -> "generate" | Solver -> "solver"

let add_kind buf = function
  | Settling { gamma; p; m } ->
    add_u8 buf 0;
    add_i64 buf gamma;
    add_f64 buf p;
    add_i64 buf m
  | Shift { gammas } ->
    add_u8 buf 1;
    add_u32 buf (Array.length gammas);
    Array.iter (add_i64 buf) gammas
  | Joint { n } ->
    add_u8 buf 2;
    add_i64 buf n

let get_kind c =
  match get_u8 c with
  | 0 ->
    let gamma = get_i64 c in
    let p = get_f64 c in
    let m = get_i64 c in
    Settling { gamma; p; m }
  | 1 ->
    let n = get_u32 c in
    if n > 64 then fail "implausible gammas length %d" n;
    Shift { gammas = Array.init n (fun _ -> get_i64 c) }
  | 2 -> Joint { n = get_i64 c }
  | v -> fail "bad estimate kind byte %d" v

let add_query buf = function
  | Verify { test; family; window } ->
    add_u8 buf 0;
    add_string buf test;
    add_family buf family;
    add_i64 buf window
  | Enumerate { test; family; window; por } ->
    add_u8 buf 1;
    add_string buf test;
    add_family buf family;
    add_i64 buf window;
    add_bool buf por
  | Axiom { test; family; window; engine } ->
    add_u8 buf 2;
    add_string buf test;
    add_family buf family;
    add_i64 buf window;
    add_engine buf engine
  | Estimate { kind; family; seed; trials; target_width } ->
    add_u8 buf 3;
    add_kind buf kind;
    add_family buf family;
    add_i64 buf seed;
    add_i64 buf trials;
    add_opt add_f64 buf target_width

let get_query c =
  match get_u8 c with
  | 0 ->
    let test = get_string c in
    let family = get_family c in
    let window = get_i64 c in
    Verify { test; family; window }
  | 1 ->
    let test = get_string c in
    let family = get_family c in
    let window = get_i64 c in
    let por = get_bool c in
    Enumerate { test; family; window; por }
  | 2 ->
    let test = get_string c in
    let family = get_family c in
    let window = get_i64 c in
    let engine = get_engine c in
    Axiom { test; family; window; engine }
  | 3 ->
    let kind = get_kind c in
    let family = get_family c in
    let seed = get_i64 c in
    let trials = get_i64 c in
    let target_width = get_opt get_f64 c in
    Estimate { kind; family; seed; trials; target_width }
  | v -> fail "bad query tag byte %d" v

let add_limits buf l =
  add_opt add_f64 buf l.deadline_s;
  add_opt add_i64 buf l.max_work;
  add_opt add_i64 buf l.max_mem_mb

let get_limits c =
  let deadline_s = get_opt get_f64 c in
  let max_work = get_opt get_i64 c in
  let max_mem_mb = get_opt get_i64 c in
  { deadline_s; max_work; max_mem_mb }

let encode_request r =
  let buf = Buffer.create 64 in
  add_u8 buf version;
  (match r with
   | Query (q, l) ->
     add_u8 buf 0;
     add_query buf q;
     add_limits buf l
   | Batch items ->
     add_u8 buf 1;
     add_list
       (fun buf (q, l) ->
         add_query buf q;
         add_limits buf l)
       buf items
   | Stats -> add_u8 buf 2
   | Ping -> add_u8 buf 3
   | Shutdown -> add_u8 buf 4);
  Buffer.contents buf

let decode_request s : (request, string) std_result =
  try
    let c = { data = s; pos = 0 } in
    let v = get_u8 c in
    if v <> version then fail "protocol version %d (this build speaks %d)" v version;
    let r =
      match get_u8 c with
      | 0 ->
        let q = get_query c in
        let l = get_limits c in
        Query (q, l)
      | 1 ->
        Batch
          (get_list
             (fun c ->
               let q = get_query c in
               let l = get_limits c in
               (q, l))
             c)
      | 2 -> Stats
      | 3 -> Ping
      | 4 -> Shutdown
      | v -> fail "bad request tag byte %d" v
    in
    if c.pos <> String.length s then fail "trailing bytes after request";
    Ok r
  with Decode_error m -> Error m

(* results: the cacheable portion of a response, encoded independently so
   a cache hit can be spliced into a response frame without re-encoding *)

let add_outcome buf (o : outcome) = add_list (fun buf (n, v) -> add_string buf n; add_i64 buf v) buf o

let get_outcome c : outcome = get_list (fun c -> let n = get_string c in (n, get_i64 c)) c

let add_entries buf entries =
  add_list (fun buf (o, k) -> add_outcome buf o; add_i64 buf k) buf entries

let get_entries c = get_list (fun c -> let o = get_outcome c in (o, get_i64 c)) c

let add_partial buf p =
  add_string buf p.cause;
  add_i64 buf p.work_done;
  add_f64 buf p.elapsed_s

let get_partial c =
  let cause = get_string c in
  let work_done = get_i64 c in
  let elapsed_s = get_f64 c in
  { cause; work_done; elapsed_s }

let add_payload buf = function
  | Verdict { observed_relaxed; expected_relaxed; agrees; outcomes; terminals } ->
    add_u8 buf 0;
    add_bool buf observed_relaxed;
    add_bool buf expected_relaxed;
    add_bool buf agrees;
    add_i64 buf outcomes;
    add_i64 buf terminals
  | Outcomes { entries; terminals; states } ->
    add_u8 buf 1;
    add_entries buf entries;
    add_i64 buf terminals;
    add_i64 buf states
  | Axiom_outcomes { entries; accepted } ->
    add_u8 buf 2;
    add_entries buf entries;
    add_i64 buf accepted
  | Estimated { point; lo; hi; trials; target_met } ->
    add_u8 buf 3;
    add_f64 buf point;
    add_f64 buf lo;
    add_f64 buf hi;
    add_i64 buf trials;
    add_bool buf target_met

let get_payload c =
  match get_u8 c with
  | 0 ->
    let observed_relaxed = get_bool c in
    let expected_relaxed = get_bool c in
    let agrees = get_bool c in
    let outcomes = get_i64 c in
    let terminals = get_i64 c in
    Verdict { observed_relaxed; expected_relaxed; agrees; outcomes; terminals }
  | 1 ->
    let entries = get_entries c in
    let terminals = get_i64 c in
    let states = get_i64 c in
    Outcomes { entries; terminals; states }
  | 2 ->
    let entries = get_entries c in
    let accepted = get_i64 c in
    Axiom_outcomes { entries; accepted }
  | 3 ->
    let point = get_f64 c in
    let lo = get_f64 c in
    let hi = get_f64 c in
    let trials = get_i64 c in
    let target_met = get_bool c in
    Estimated { point; lo; hi; trials; target_met }
  | v -> fail "bad payload tag byte %d" v

let encode_result r =
  let buf = Buffer.create 64 in
  add_payload buf r.payload;
  add_opt add_partial buf r.partial;
  Buffer.contents buf

let decode_result_cursor c =
  let payload = get_payload c in
  let partial = get_opt get_partial c in
  { payload; partial }

let decode_result s =
  try
    let c = { data = s; pos = 0 } in
    let r = decode_result_cursor c in
    if c.pos <> String.length s then fail "trailing bytes after result";
    Ok r
  with Decode_error m -> Error m

let add_error_code buf code =
  add_u8 buf
    (match code with Bad_request -> 0 | Unknown_test -> 1 | Unsupported -> 2 | Server_error -> 3)

let get_error_code c =
  match get_u8 c with
  | 0 -> Bad_request
  | 1 -> Unknown_test
  | 2 -> Unsupported
  | 3 -> Server_error
  | v -> fail "bad error code byte %d" v

let add_origin buf o = add_u8 buf (match o with Computed -> 0 | Memory_hit -> 1 | Disk_hit -> 2)

let get_origin c =
  match get_u8 c with
  | 0 -> Computed
  | 1 -> Memory_hit
  | 2 -> Disk_hit
  | v -> fail "bad origin byte %d" v

let rec add_response buf = function
  | Result { result; origin } ->
    add_u8 buf 0;
    add_origin buf origin;
    add_payload buf result.payload;
    add_opt add_partial buf result.partial
  | Results rs ->
    add_u8 buf 1;
    add_list add_response buf rs
  | Error { code; message } ->
    add_u8 buf 2;
    add_error_code buf code;
    add_string buf message
  | Stats_reply s ->
    add_u8 buf 3;
    add_i64 buf s.cache.entries;
    add_i64 buf s.cache.memory_hits;
    add_i64 buf s.cache.disk_hits;
    add_i64 buf s.cache.misses;
    add_i64 buf s.cache.stores;
    add_i64 buf s.cache.disk_errors;
    add_i64 buf s.cache.repairs;
    add_i64 buf s.requests;
    add_f64 buf s.uptime_s;
    add_i64 buf s.workers;
    add_i64 buf s.shed;
    add_i64 buf s.handler_exceptions;
    add_i64 buf s.respawns;
    add_i64 buf s.reaped
  | Pong -> add_u8 buf 4
  | Bye -> add_u8 buf 5
  | Overloaded { retry_after_s } ->
    add_u8 buf 6;
    add_f64 buf retry_after_s

let rec get_response c =
  match get_u8 c with
  | 0 ->
    let origin = get_origin c in
    let result = decode_result_cursor c in
    Result { result; origin }
  | 1 -> Results (get_list get_response c)
  | 2 ->
    let code = get_error_code c in
    let message = get_string c in
    Error { code; message }
  | 3 ->
    let entries = get_i64 c in
    let memory_hits = get_i64 c in
    let disk_hits = get_i64 c in
    let misses = get_i64 c in
    let stores = get_i64 c in
    let disk_errors = get_i64 c in
    let repairs = get_i64 c in
    let requests = get_i64 c in
    let uptime_s = get_f64 c in
    let workers = get_i64 c in
    let shed = get_i64 c in
    let handler_exceptions = get_i64 c in
    let respawns = get_i64 c in
    let reaped = get_i64 c in
    Stats_reply
      {
        cache = { entries; memory_hits; disk_hits; misses; stores; disk_errors; repairs };
        requests;
        uptime_s;
        workers;
        shed;
        handler_exceptions;
        respawns;
        reaped;
      }
  | 4 -> Pong
  | 5 -> Bye
  | 6 ->
    let retry_after_s = get_f64 c in
    Overloaded { retry_after_s }
  | v -> fail "bad response tag byte %d" v

let encode_response r =
  let buf = Buffer.create 64 in
  add_u8 buf version;
  add_response buf r;
  Buffer.contents buf

(* the server's cache-hit fast path: splice the stored result bytes into a
   response frame verbatim — the client reads exactly the bytes the engine
   produced, so cached and computed responses are byte-identical *)
let encode_result_item ~origin result_bytes =
  let buf = Buffer.create (String.length result_bytes + 2) in
  add_u8 buf 0;
  add_origin buf origin;
  Buffer.add_string buf result_bytes;
  Buffer.contents buf

let encode_result_response ~origin result_bytes =
  let buf = Buffer.create (String.length result_bytes + 3) in
  add_u8 buf version;
  Buffer.add_string buf (encode_result_item ~origin result_bytes);
  Buffer.contents buf

(* item encodings (no version byte) compose under [encode_items_response]:
   the batch path splices per-item bytes — cached or freshly encoded —
   preserving the byte-identity of each spliced result *)
let encode_response_item r =
  let buf = Buffer.create 64 in
  add_response buf r;
  Buffer.contents buf

let encode_items_response items =
  let buf = Buffer.create 256 in
  add_u8 buf version;
  add_u8 buf 1;
  add_u32 buf (List.length items);
  List.iter (Buffer.add_string buf) items;
  Buffer.contents buf

let decode_response s =
  try
    let c = { data = s; pos = 0 } in
    let v = get_u8 c in
    if v <> version then fail "protocol version %d (this build speaks %d)" v version;
    let r = get_response c in
    if c.pos <> String.length s then fail "trailing bytes after response";
    Ok r
  with Decode_error m -> Error m

(* -- framing ------------------------------------------------------------ *)

(* Deadline-bounded frame IO: the server reads and writes every frame
   under a per-frame monotonic deadline, so a client that sends half a
   frame and stalls — or stops draining its socket mid-reply — is reaped
   at the deadline instead of pinning a worker domain forever. *)

type frame_error =
  | Frame_timeout  (** the per-frame deadline expired: reap the connection *)
  | Frame_closed of string  (** the peer vanished mid-frame *)
  | Frame_malformed of string  (** bad magic or an oversized length: answer and hang up *)

let frame_error_to_string = function
  | Frame_timeout -> "frame deadline expired"
  | Frame_closed m | Frame_malformed m -> m

(* wait until [fd] is ready (readable/writable), bounded by a monotonic
   deadline; spurious select wakeups loop back through the time check *)
let rec wait_fd fd ~for_read ~deadline =
  let remaining = deadline -. Clock.now_s () in
  if remaining <= 0. then Stdlib.Error Frame_timeout
  else
    let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
    match Unix.select r w [] remaining with
    | [], [], _ -> wait_fd fd ~for_read ~deadline
    | _ -> Stdlib.Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_fd fd ~for_read ~deadline

let rec read_into fd buf pos len ~deadline =
  if len = 0 then Stdlib.Ok ()
  else
    match wait_fd fd ~for_read:true ~deadline with
    | Stdlib.Error _ as e -> e
    | Stdlib.Ok () -> (
      match Unix.read fd buf pos len with
      | 0 -> Stdlib.Error (Frame_closed "connection closed mid-frame")
      | n -> read_into fd buf (pos + n) (len - n) ~deadline
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        read_into fd buf pos len ~deadline
      | exception Unix.Unix_error (e, _, _) -> Stdlib.Error (Frame_closed (Unix.error_message e)))

let read_frame_deadline fd ~deadline_s =
  let deadline = Clock.now_s () +. deadline_s in
  let header = Bytes.create 8 in
  (* the first byte decides between a clean EOF (no frame started) and a
     mid-frame close *)
  let first =
    match wait_fd fd ~for_read:true ~deadline with
    | Stdlib.Error _ as e -> e
    | Stdlib.Ok () -> (
      match Unix.read fd header 0 8 with
      | 0 -> Stdlib.Ok 0
      | n -> Stdlib.Ok n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        Stdlib.Ok (-1) (* spurious: nothing read yet, retry below *)
      | exception Unix.Unix_error (e, _, _) -> Stdlib.Error (Frame_closed (Unix.error_message e)))
  in
  match first with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok 0 -> Stdlib.Ok None
  | Stdlib.Ok n -> (
    let n = if n < 0 then 0 else n in
    match
      if n = 0 then
        (* retry the header from scratch (still distinguishing EOF) *)
        match read_into fd header 0 8 ~deadline with
        | Stdlib.Ok () -> Stdlib.Ok ()
        | Stdlib.Error _ as e -> e
      else read_into fd header n (8 - n) ~deadline
    with
    | Stdlib.Error e -> Stdlib.Error e
    | Stdlib.Ok () ->
      let magic = Bytes.sub_string header 0 4 in
      if magic <> frame_magic then Stdlib.Error (Frame_malformed "bad frame magic")
      else begin
        let len = ref 0 in
        for i = 4 to 7 do
          len := (!len lsl 8) lor Char.code (Bytes.get header i)
        done;
        if !len > max_frame_bytes then
          Stdlib.Error
            (Frame_malformed (Printf.sprintf "frame of %d bytes exceeds the cap" !len))
        else begin
          let payload = Bytes.create !len in
          match read_into fd payload 0 !len ~deadline with
          | Stdlib.Ok () -> Stdlib.Ok (Some (Bytes.to_string payload))
          | Stdlib.Error e -> Stdlib.Error e
        end
      end)

let write_frame_deadline fd ~deadline_s payload =
  if String.length payload > max_frame_bytes then invalid_arg "Protocol: frame too large";
  let deadline = Clock.now_s () +. deadline_s in
  let header = Buffer.create 8 in
  Buffer.add_string header frame_magic;
  add_u32 header (String.length payload);
  let msg = Bytes.unsafe_of_string (Buffer.contents header ^ payload) in
  let rec loop pos =
    if pos >= Bytes.length msg then Stdlib.Ok ()
    else
      match wait_fd fd ~for_read:false ~deadline with
      | Stdlib.Error _ as e -> e
      | Stdlib.Ok () -> (
        match Unix.write fd msg pos (Bytes.length msg - pos) with
        | n -> loop (pos + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          loop pos
        | exception Unix.Unix_error (e, _, _) ->
          Stdlib.Error (Frame_closed (Unix.error_message e)))
  in
  loop 0

let rec really_write fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    really_write fd s (pos + n) (len - n)
  end

let write_frame fd payload =
  if String.length payload > max_frame_bytes then invalid_arg "Protocol: frame too large";
  let header = Buffer.create 8 in
  Buffer.add_string header frame_magic;
  add_u32 header (String.length payload);
  let msg = Buffer.contents header ^ payload in
  really_write fd msg 0 (String.length msg)

let rec really_read fd buf pos len =
  if len = 0 then true
  else
    match Unix.read fd buf pos len with
    | 0 -> false
    | n -> really_read fd buf (pos + n) (len - n)

let read_frame fd =
  let header = Bytes.create 8 in
  if not (really_read fd header 0 8) then Ok None
  else begin
    let magic = Bytes.sub_string header 0 4 in
    if magic <> frame_magic then Error "bad frame magic"
    else begin
      let len = ref 0 in
      for i = 4 to 7 do
        len := (!len lsl 8) lor Char.code (Bytes.get header i)
      done;
      if !len > max_frame_bytes then Error (Printf.sprintf "frame of %d bytes exceeds the cap" !len)
      else begin
        let payload = Bytes.create !len in
        if really_read fd payload 0 !len then Ok (Some (Bytes.to_string payload))
        else Error "connection closed mid-frame"
      end
    end
  end

(* -- addresses ----------------------------------------------------------- *)

type address = Unix_path of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | Some _ when String.length s > 4 && String.sub s 0 4 = "tcp:" -> begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | Some i -> begin
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad TCP port %S" port)
    end
    | None -> Error "tcp address must be tcp:HOST:PORT"
  end
  | _ -> Ok (Unix_path s)

let address_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* -- human-readable query language --------------------------------------
   The `memrel query` surface and the README's protocol example:

     verify TEST MODEL [window=W]
     enumerate TEST MODEL [window=W] [por]
     axiom TEST MODEL [window=W] [engine=generate|solver]
     estimate settling MODEL gamma=G [p=P] [m=M] [seed=S] [trials=N] [width=W]
     estimate shift gammas=3,2,5 [seed=S] [trials=N] [width=W]
     estimate joint MODEL n=N [seed=S] [trials=N] [width=W]
*)

let family_of_token s =
  match String.lowercase_ascii s with
  | "sc" -> Ok Model.Sequential_consistency
  | "tso" -> Ok Model.Total_store_order
  | "pso" -> Ok Model.Partial_store_order
  | "wo" -> Ok Model.Weak_ordering
  | _ -> Error (Printf.sprintf "unknown model %S (expected sc|tso|pso|wo)" s)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_query text =
  let tokens =
    String.split_on_char ' ' text |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  let split_kv tok =
    match String.index_opt tok '=' with
    | Some i -> (String.sub tok 0 i, Some (String.sub tok (i + 1) (String.length tok - i - 1)))
    | None -> (tok, None)
  in
  let kvs rest =
    List.fold_left
      (fun acc tok -> match acc with
        | Error _ -> acc
        | Ok acc ->
          let k, v = split_kv tok in
          Ok ((String.lowercase_ascii k, v) :: acc))
      (Ok []) rest
  in
  let int_kv kvs key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some None -> Error (Printf.sprintf "%s needs a value (%s=N)" key key)
    | Some (Some v) -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "bad integer %S for %s" v key))
  in
  let float_kv kvs key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some None -> Error (Printf.sprintf "%s needs a value (%s=X)" key key)
    | Some (Some v) -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad number %S for %s" v key))
  in
  let width_kv kvs =
    match List.assoc_opt "width" kvs with
    | None -> Ok None
    | Some None -> Error "width needs a value (width=W)"
    | Some (Some v) -> (
      match float_of_string_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "bad number %S for width" v))
  in
  let known kvs allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
    | Some (k, _) -> Error (Printf.sprintf "unknown parameter %S" k)
    | None -> Ok ()
  in
  let estimate_common kvs =
    let* seed = int_kv kvs "seed" 1 in
    let* trials = int_kv kvs "trials" 100_000 in
    let* target_width = width_kv kvs in
    Ok (seed, trials, target_width)
  in
  match tokens with
  | "verify" :: test :: model :: rest ->
    let* family = family_of_token model in
    let* kvs = kvs rest in
    let* () = known kvs [ "window" ] in
    let* window = int_kv kvs "window" 8 in
    Ok (Verify { test; family; window })
  | "enumerate" :: test :: model :: rest ->
    let* family = family_of_token model in
    let rest, por = List.partition (fun t -> String.lowercase_ascii t <> "por") rest in
    let* kvs = kvs rest in
    let* () = known kvs [ "window" ] in
    let* window = int_kv kvs "window" 8 in
    Ok (Enumerate { test; family; window; por = por <> [] })
  | "axiom" :: test :: model :: rest ->
    let* family = family_of_token model in
    let* kvs = kvs rest in
    let* () = known kvs [ "window"; "engine" ] in
    let* window = int_kv kvs "window" 8 in
    let* engine =
      match List.assoc_opt "engine" kvs with
      | None | Some (Some "generate") -> Ok Generate
      | Some (Some "solver") -> Ok Solver
      | Some (Some e) -> Error (Printf.sprintf "unknown engine %S (generate|solver)" e)
      | Some None -> Error "engine needs a value (engine=generate|solver)"
    in
    Ok (Axiom { test; family; window; engine })
  | "estimate" :: "settling" :: model :: rest ->
    let* family = family_of_token model in
    let* kvs = kvs rest in
    let* () = known kvs [ "gamma"; "p"; "m"; "seed"; "trials"; "width" ] in
    let* gamma = int_kv kvs "gamma" 1 in
    let* p = float_kv kvs "p" 0.5 in
    let* m = int_kv kvs "m" 64 in
    let* seed, trials, target_width = estimate_common kvs in
    Ok (Estimate { kind = Settling { gamma; p; m }; family; seed; trials; target_width })
  | "estimate" :: "shift" :: rest ->
    let* kvs = kvs rest in
    let* () = known kvs [ "gammas"; "seed"; "trials"; "width" ] in
    let* gammas =
      match List.assoc_opt "gammas" kvs with
      | None | Some None -> Error "estimate shift needs gammas=G,G,..."
      | Some (Some v) ->
        let parts = String.split_on_char ',' v in
        List.fold_left
          (fun acc part -> match acc with
            | Error _ -> acc
            | Ok acc -> (
              match int_of_string_opt part with
              | Some n -> Ok (n :: acc)
              | None -> Error (Printf.sprintf "bad segment length %S" part)))
          (Ok []) parts
        |> Result.map (fun l -> Array.of_list (List.rev l))
    in
    let* seed, trials, target_width = estimate_common kvs in
    (* the shift process has no memory model: canonicalize the family *)
    Ok
      (Estimate
         { kind = Shift { gammas }; family = Model.Sequential_consistency; seed; trials;
           target_width })
  | "estimate" :: "joint" :: model :: rest ->
    let* family = family_of_token model in
    let* kvs = kvs rest in
    let* () = known kvs [ "n"; "seed"; "trials"; "width" ] in
    let* n = int_kv kvs "n" 2 in
    let* seed, trials, target_width = estimate_common kvs in
    Ok (Estimate { kind = Joint { n }; family; seed; trials; target_width })
  | "estimate" :: kind :: _ ->
    Error (Printf.sprintf "unknown estimate kind %S (settling|shift|joint)" kind)
  | kind :: _ ->
    Error (Printf.sprintf "unknown query kind %S (verify|enumerate|axiom|estimate)" kind)
  | [] -> Error "empty query"

let query_to_string = function
  | Verify { test; family; window } ->
    Printf.sprintf "verify %s %s window=%d" test (family_token family) window
  | Enumerate { test; family; window; por } ->
    Printf.sprintf "enumerate %s %s window=%d%s" test (family_token family) window
      (if por then " por" else "")
  | Axiom { test; family; window; engine } ->
    Printf.sprintf "axiom %s %s window=%d engine=%s" test (family_token family) window
      (engine_token engine)
  | Estimate { kind; family; seed; trials; target_width } ->
    let width = match target_width with None -> "" | Some w -> Printf.sprintf " width=%g" w in
    (match kind with
     | Settling { gamma; p; m } ->
       Printf.sprintf "estimate settling %s gamma=%d p=%g m=%d seed=%d trials=%d%s"
         (family_token family) gamma p m seed trials width
     | Shift { gammas } ->
       Printf.sprintf "estimate shift gammas=%s seed=%d trials=%d%s"
         (String.concat "," (List.map string_of_int (Array.to_list gammas)))
         seed trials width
     | Joint { n } ->
       Printf.sprintf "estimate joint %s n=%d seed=%d trials=%d%s" (family_token family) n seed
         trials width)

(* -- rendering ----------------------------------------------------------- *)

let outcome_to_string (o : outcome) =
  if o = [] then "(empty)"
  else String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) o)

let render_partial = function
  | None -> ""
  | Some p ->
    Printf.sprintf " (PARTIAL: %s after %.2fs, %d work units)" p.cause p.elapsed_s p.work_done

let render_result r =
  let partial = render_partial r.partial in
  match r.payload with
  | Verdict { observed_relaxed; expected_relaxed; agrees; outcomes; terminals } ->
    Printf.sprintf "relaxed outcome %s, expected %s — %s (%d outcomes, %d terminals)%s"
      (if observed_relaxed then "OBSERVED" else "not observed")
      (if expected_relaxed then "allowed" else "forbidden")
      (if agrees then "agree" else "MISMATCH")
      outcomes terminals partial
  | Outcomes { entries; terminals; states } ->
    let lines =
      List.map
        (fun (o, k) -> Printf.sprintf "\n    %-30s %6d terminal state%s" (outcome_to_string o) k
            (if k = 1 then "" else "s"))
        entries
    in
    Printf.sprintf "%d outcomes, %d terminals, %d states%s%s" (List.length entries) terminals
      states partial (String.concat "" lines)
  | Axiom_outcomes { entries; accepted } ->
    let lines =
      List.map
        (fun (o, k) -> Printf.sprintf "\n    %-30s %6d candidate%s" (outcome_to_string o) k
            (if k = 1 then "" else "s"))
        entries
    in
    Printf.sprintf "%d outcomes, %d accepted candidates%s%s" (List.length entries) accepted
      partial (String.concat "" lines)
  | Estimated { point; lo; hi; trials; target_met } ->
    Printf.sprintf "%.6f [%.6f, %.6f] over %d trials%s%s" point lo hi trials
      (if target_met then " (target width met)" else "")
      partial

let rec render_response = function
  | Result { result; origin } ->
    Printf.sprintf "[%s] %s" (origin_to_string origin) (render_result result)
  | Results rs ->
    String.concat "\n" (List.map render_response rs)
  | Error { code; message } -> Printf.sprintf "error (%s): %s" (error_code_to_string code) message
  | Overloaded { retry_after_s } ->
    Printf.sprintf "overloaded: retry after %.2fs" retry_after_s
  | Stats_reply s ->
    Printf.sprintf
      "cache: %d entries, %d memory hits, %d disk hits, %d misses, %d stores, %d disk \
       errors, %d repaired\n\
       server: %d requests, %.1fs uptime, %d workers, %d shed, %d handler exceptions, %d \
       respawns, %d reaped"
      s.cache.entries s.cache.memory_hits s.cache.disk_hits s.cache.misses s.cache.stores
      s.cache.disk_errors s.cache.repairs s.requests s.uptime_s s.workers s.shed
      s.handler_exceptions s.respawns s.reaped
  | Pong -> "pong"
  | Bye -> "bye"
