(** A supervised, bounded, per-Domain worker pool.

    Jobs queue under a mutex up to [max_queue] and drain on [workers]
    spawned Domains. The queue bound is the overload valve: a {!submit}
    against a full queue returns {!Overloaded} immediately (counted as a
    shed) instead of letting latency grow without bound — the server turns
    that into a typed retry-after response.

    Handler exceptions are counted and logged (one stderr line each), and
    the worker survives; the one exception allowed to kill a worker is
    {!Memrel_prob.Faultio.Crash_point} (the crash drill), after which a
    replacement domain is spawned so capacity is never silently lost. On a
    one-core container the pool degrades gracefully to what is effectively
    a serial executor — correctness never depends on parallelism. *)

type 'a t

type submit_result =
  | Accepted
  | Overloaded  (** queue at [max_queue]: job dropped, shed counted *)
  | Stopping  (** {!shutdown} began: job dropped *)

type pool_stats = {
  queue_len : int;
  shed : int;
  handler_exceptions : int;
  respawns : int;
}

val create :
  ?max_queue:int -> workers:int -> handler:('a -> unit) -> unit -> 'a t
(** Spawn [workers] (>= 1) Domains draining a shared queue bounded at
    [max_queue] (default 64, >= 1) pending jobs. *)

val submit : 'a t -> 'a -> submit_result

val queue_length : 'a t -> int
(** Current backlog; the server sizes its retry-after hint from this. *)

val stats : 'a t -> pool_stats

val shutdown : 'a t -> unit
(** Stop accepting, drain the queue, join every worker — including any
    respawned mid-drain. Idempotent in effect but call it once. *)
