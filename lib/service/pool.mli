(** A fixed-size per-Domain worker pool.

    Jobs queue under a mutex and drain on [workers] spawned Domains. The
    handler runs one job at a time per worker; a handler exception is
    swallowed (the job is abandoned, the worker survives). On a one-core
    container the pool degrades gracefully to what is effectively a serial
    executor — correctness never depends on parallelism. *)

type 'a t

val create : workers:int -> handler:('a -> unit) -> 'a t
(** Spawn [workers] (>= 1) Domains draining a shared queue. *)

val submit : 'a t -> 'a -> bool
(** Enqueue a job. [false] after {!shutdown} began (the job is dropped). *)

val shutdown : 'a t -> unit
(** Stop accepting, drain the queue, join every worker. Idempotent in
    effect but call it once. *)
