(* The service-plane face of the fault plane.

   The mechanism lives in Memrel_prob.Faultio so that Snapshot (result
   cache entries, checkpoints) and Machine.Extmem (spill runs, manifests)
   can route their IO through it without a dependency cycle; the service
   layer re-exports it as the operator-facing surface (`serve
   --fault-seed/--fault-rate` installs plans through this module). *)

include Memrel_prob.Faultio
