module Snapshot = Memrel_prob.Snapshot

let snapshot_tag = "service/result"

type shard = { lock : Mutex.t; table : (string, string) Hashtbl.t }

type t = {
  dir : string;
  shards : shard array;
  memory_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  disk_errors : int Atomic.t;
  repairs : int Atomic.t;
}

(* FNV-1a 64, the same digest Litmus.hash uses — here over the full cache
   key, picking the shard and the on-disk filename *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  !h

let mkdir_p dir =
  let rec make d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let shard_name i = Printf.sprintf "shard_%02x" i

let create ?(shards = 16) ~dir () =
  if shards < 1 || shards > 256 then invalid_arg "Cache.create: shards must be in 1..256";
  mkdir_p dir;
  for i = 0 to shards - 1 do
    mkdir_p (Filename.concat dir (shard_name i))
  done;
  {
    dir;
    shards =
      Array.init shards (fun _ -> { lock = Mutex.create (); table = Hashtbl.create 64 });
    memory_hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    disk_errors = Atomic.make 0;
    repairs = Atomic.make 0;
  }

let shard_of t key =
  let h = fnv64 key in
  t.shards.(Int64.to_int (Int64.logand h 0xffL) mod Array.length t.shards)

let file_of t key =
  let h = fnv64 key in
  let shard = Int64.to_int (Int64.logand h 0xffL) mod Array.length t.shards in
  Filename.concat
    (Filename.concat t.dir (shard_name shard))
    (Printf.sprintf "%016Lx-%08x.snap" h (Snapshot.crc32 key))

(* disk payload: u16 key length + key + result bytes. The embedded key is
   checked on read, so a filename collision (two keys digesting alike) is
   detected and treated as a miss rather than served as a wrong answer. *)
let disk_encode ~key value =
  if String.length key > 0xffff then invalid_arg "Cache: key too long";
  let buf = Buffer.create (String.length key + String.length value + 2) in
  Buffer.add_char buf (Char.chr (String.length key lsr 8));
  Buffer.add_char buf (Char.chr (String.length key land 0xff));
  Buffer.add_string buf key;
  Buffer.add_string buf value;
  Buffer.contents buf

let disk_decode ~key s =
  if String.length s < 2 then None
  else begin
    let klen = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
    if String.length s < 2 + klen then None
    else if String.sub s 2 klen <> key then None
    else Some (String.sub s (2 + klen) (String.length s - 2 - klen))
  end

(* the three-way probe outcome matters downstream: a [Corrupt] probe
   followed by a successful store is a repair, worth its own counter —
   it is the observable proof that a torn write was detected and healed
   rather than served *)
type probe = Hit of string | Absent | Corrupt

let disk_read t ~key =
  let file = file_of t key in
  if not (Sys.file_exists file) then Absent
  else
    match Snapshot.read ~file ~tag:snapshot_tag with
    | Ok payload -> begin
      match disk_decode ~key payload with
      | Some value -> Hit value
      | None ->
        (* filename collision with a different key: not an error, a miss *)
        Absent
    end
    | Error _ ->
      (* corrupted or foreign file: count it, recompute, overwrite below *)
      Atomic.incr t.disk_errors;
      Corrupt

let disk_write t ~key value =
  match Snapshot.write ~file:(file_of t key) ~tag:snapshot_tag (disk_encode ~key value) with
  | Ok () -> true
  | Error _ ->
    Atomic.incr t.disk_errors;
    false

type origin = Protocol.origin = Computed | Memory_hit | Disk_hit

let find_or_compute t ~key ~compute =
  let shard = shard_of t key in
  Mutex.lock shard.lock;
  match Hashtbl.find_opt shard.table key with
  | Some value ->
    Mutex.unlock shard.lock;
    Atomic.incr t.memory_hits;
    Ok (value, Memory_hit)
  | None ->
    (* the shard lock is held across the disk probe and the compute: two
       domains racing the same key compute it once, and distinct keys on
       different shards proceed in parallel. Compute times dwarf lock
       hold times here (the compute IS the critical section we want
       single-flight). *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shard.lock)
      (fun () ->
        match disk_read t ~key with
        | Hit value ->
          Hashtbl.replace shard.table key value;
          Atomic.incr t.disk_hits;
          Ok (value, Disk_hit)
        | (Absent | Corrupt) as probe -> begin
          Atomic.incr t.misses;
          match compute () with
          | Error _ as e -> e
          | Ok (value, cacheable) ->
            if cacheable then begin
              Hashtbl.replace shard.table key value;
              let wrote = disk_write t ~key value in
              Atomic.incr t.stores;
              if wrote && probe = Corrupt then Atomic.incr t.repairs
            end;
            Ok (value, Computed)
        end)

let clear_memory t =
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Hashtbl.reset shard.table;
      Mutex.unlock shard.lock)
    t.shards

let stats t : Protocol.cache_stats =
  let entries =
    Array.fold_left
      (fun acc shard ->
        Mutex.lock shard.lock;
        let n = Hashtbl.length shard.table in
        Mutex.unlock shard.lock;
        acc + n)
      0 t.shards
  in
  {
    Protocol.entries;
    memory_hits = Atomic.get t.memory_hits;
    disk_hits = Atomic.get t.disk_hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    disk_errors = Atomic.get t.disk_errors;
    repairs = Atomic.get t.repairs;
  }
