(** Query dispatch: protocol queries onto the repo's engines.

    Each {!Protocol.query} kind maps to one engine — [Verify]/[Enumerate]
    to the exhaustive enumerator, [Axiom] to the axiomatic generator or the
    conflict-driven solver, [Estimate] to the governed (or, with a target
    width, adaptive) Monte Carlo estimators at [jobs:1], so every answer is
    deterministic per query. Per-request {!Protocol.limits} are clamped
    field-wise by the server's {!caps} and become a
    {!Memrel_prob.Budget}; exhaustion yields a typed partial result, never
    an error. *)

type caps = {
  max_deadline_s : float option;
  max_work_cap : int option;
  max_mem_mb_cap : int option;
}
(** Server-side ceilings: each request limit is [min]-ed with its cap, and
    a cap alone arms the budget even for a request without limits. *)

val no_caps : caps

type extmem = { spill_root : string; mem_budget_bytes : int }
(** Route [Verify]/[Enumerate] queries through the external-memory BFS
    ({!Memrel_machine.Extmem}): each query spills under
    [spill_root/<sanitized cache key>], so enumerations larger than RAM
    complete exactly — the engines agree bit-for-bit on complete results,
    so cached bytes are unaffected. A budget-tripped run keeps its spill
    state and the next identical query resumes it; complete runs delete
    their spill directory. *)

type error = { code : Protocol.error_code; message : string }

val cache_key : Protocol.query -> (string, error) result
(** Canonical cache key, e.g. ["verify|{hash}|TSO|w8"]. Built on
    {!Memrel_machine.Litmus.hash}, so renaming a test cannot split or
    alias an entry; floats are rendered with [%h] so distinct estimator
    parameters cannot collide. Also the single validation point:
    [Bad_request] for out-of-range parameters, [Unknown_test],
    [Unsupported] for [Custom] families. *)

val run :
  caps:caps ->
  ?extmem:extmem ->
  Protocol.query ->
  Protocol.limits ->
  (Protocol.result, error) result
(** Execute directly (no cache). *)

val run_cached :
  caps:caps ->
  ?extmem:extmem ->
  Cache.t ->
  Protocol.query ->
  Protocol.limits ->
  (string * Cache.origin, error) result
(** Execute through a cache. The cached value is {!Protocol.encode_result}
    bytes; only complete results (no [partial]) are stored, and limits are
    not part of the key — a complete cached answer satisfies any budget.
    A hit is byte-identical to the original computation. *)
