(** Sharded, disk-backed result cache.

    Keys are the engine's canonical query strings (built from
    {!Memrel_machine.Litmus.hash}, never test names); values are
    {!Protocol.encode_result} bytes. Entries live in per-shard in-memory
    hash tables and persist as CRC-verified {!Memrel_prob.Snapshot}
    containers under [dir/shard_XX/], so a cache survives a daemon
    restart. A shard's mutex is held across the whole probe-or-compute, so
    two domains racing the same key compute it exactly once while distinct
    keys on different shards proceed in parallel. A corrupted or truncated
    disk entry is counted ([disk_errors]), recomputed, and overwritten in
    place ([repairs]) — never served and never fatal. *)

type t

type origin = Protocol.origin = Computed | Memory_hit | Disk_hit

val create : ?shards:int -> dir:string -> unit -> t
(** [create ~dir ()] opens (creating as needed) a cache rooted at [dir]
    with [shards] (default 16, max 256) independent lock domains. An
    existing directory's entries become reachable immediately — disk is
    the restart-surviving tier; memory fills lazily on access. *)

val find_or_compute :
  t ->
  key:string ->
  compute:(unit -> (string * bool, 'e) result) ->
  (string * origin, 'e) result
(** [find_or_compute t ~key ~compute] returns the cached bytes for [key],
    probing memory then disk (a disk hit is promoted to memory). On a miss
    [compute ()] runs under the shard lock; [Ok (bytes, cacheable)] stores
    [bytes] (both tiers) only when [cacheable] — budget-partial results
    must pass [false] so a retry with a larger budget recomputes. A
    [compute] error is returned verbatim and nothing is stored. *)

val clear_memory : t -> unit
(** Drop the in-memory tier (tests use this to force disk hits). *)

val stats : t -> Protocol.cache_stats
