module P = Protocol

type config = {
  address : P.address;
  cache_dir : string;
  workers : int;
  caps : Engine.caps;
  shards : int;
  extmem : Engine.extmem option;
}

let default_config address cache_dir =
  { address; cache_dir; workers = 1; caps = Engine.no_caps; shards = 16; extmem = None }

type state = {
  config : config;
  cache : Cache.t;
  stop : bool Atomic.t;
  requests : int Atomic.t;
  started : float;
}

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> failwith ("unknown host " ^ host))

let listening_socket address =
  match address with
  | P.Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 64;
    sock
  | P.Tcp (host, port) ->
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen sock 64;
    sock

(* -- request handling --------------------------------------------------- *)

let error_response (e : Engine.error) = P.Error { code = e.Engine.code; message = e.Engine.message }

(* a single query answers with the spliced cache bytes — the fast path that
   makes cached responses byte-identical to computed ones *)
let answer_query st q limits =
  match Engine.run_cached ~caps:st.config.caps ?extmem:st.config.extmem st.cache q limits with
  | Ok (bytes, origin) -> P.encode_result_response ~origin bytes
  | Error e -> P.encode_response (error_response e)

let answer_query_item st q limits =
  match Engine.run_cached ~caps:st.config.caps ?extmem:st.config.extmem st.cache q limits with
  | Ok (bytes, origin) -> P.encode_result_item ~origin bytes
  | Error e -> P.encode_response_item (error_response e)

(* Batch: identical sub-queries (same query AND same limits) are computed
   once. Keyed by the encoded request bytes — structural identity without
   a comparator over the query tree. *)
let answer_batch st items =
  let memo = Hashtbl.create (List.length items) in
  let answers =
    List.map
      (fun (q, limits) ->
        let key = P.encode_request (P.Query (q, limits)) in
        match Hashtbl.find_opt memo key with
        | Some bytes -> bytes
        | None ->
          let bytes = answer_query_item st q limits in
          Hashtbl.replace memo key bytes;
          bytes)
      items
  in
  P.encode_items_response answers

let server_stats st =
  {
    P.cache = Cache.stats st.cache;
    requests = Atomic.get st.requests;
    uptime_s = Unix.gettimeofday () -. st.started;
    workers = st.config.workers;
  }

let handle_request st = function
  | P.Query (q, limits) -> answer_query st q limits
  | P.Batch items -> answer_batch st items
  | P.Stats -> P.encode_response (P.Stats_reply (server_stats st))
  | P.Ping -> P.encode_response P.Pong
  | P.Shutdown ->
    Atomic.set st.stop true;
    P.encode_response P.Bye

(* poll at frame boundaries so an idle connection notices a shutdown: a
   blocking read here would leave a worker pinned until its client went
   away, and [Pool.shutdown] would never join *)
let rec wait_readable st fd =
  if Atomic.get st.stop then false
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> wait_readable st fd
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable st fd

let serve_connection st fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        if wait_readable st fd then
          match P.read_frame fd with
          | Ok None -> ()
          | Error msg ->
            (* a malformed frame poisons the stream: answer and hang up *)
            P.write_frame fd
              (P.encode_response (P.Error { code = P.Bad_request; message = msg }))
          | Ok (Some payload) ->
            Atomic.incr st.requests;
            let reply =
              match P.decode_request payload with
              | Error msg ->
                P.encode_response (P.Error { code = P.Bad_request; message = msg })
              | Ok request -> handle_request st request
            in
            P.write_frame fd reply;
            if not (Atomic.get st.stop) then loop ()
      in
      loop ())

(* -- lifecycle ----------------------------------------------------------- *)

let run ?on_ready config =
  (* a client hanging up mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      config;
      cache = Cache.create ~shards:config.shards ~dir:config.cache_dir ();
      stop = Atomic.make false;
      requests = Atomic.make 0;
      started = Unix.gettimeofday ();
    }
  in
  let sock = listening_socket config.address in
  let pool = Pool.create ~workers:config.workers ~handler:(serve_connection st) in
  Option.iter (fun f -> f ()) on_ready;
  let rec accept_loop () =
    if not (Atomic.get st.stop) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept sock with
         | fd, _ -> if not (Pool.submit pool fd) then Unix.close fd
         | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      match config.address with
      | P.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | P.Tcp _ -> ())
    accept_loop
