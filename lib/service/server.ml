module P = Protocol

type config = {
  address : P.address;
  cache_dir : string;
  workers : int;
  caps : Engine.caps;
  shards : int;
  extmem : Engine.extmem option;
  max_queue : int;
  io_deadline_s : float;
  drain_signals : bool;
}

let default_config address cache_dir =
  {
    address;
    cache_dir;
    workers = 1;
    caps = Engine.no_caps;
    shards = 16;
    extmem = None;
    max_queue = 64;
    io_deadline_s = 30.;
    drain_signals = false;
  }

type state = {
  config : config;
  cache : Cache.t;
  stop : bool Atomic.t;
  requests : int Atomic.t;
  reaped : int Atomic.t;
  started : float;  (* Clock.now_s at startup: monotonic, so uptime is too *)
  mutable pool : Unix.file_descr Pool.t option;
      (* set once before the accept loop starts; stats replies read the
         pool's shed/exception/respawn counters through it *)
}

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> failwith ("unknown host " ^ host))

(* does anything answer on this Unix socket path? A leftover path from a
   crashed daemon must be swept aside, but a live daemon's socket must
   not be stolen — unlinking it would orphan the running process and
   split the cache across two daemons. *)
let unix_socket_live path =
  if not (Sys.file_exists path) then false
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false)
  end

let listening_socket address =
  match address with
  | P.Unix_path path ->
    if unix_socket_live path then
      failwith
        (Printf.sprintf
           "socket %s: a live daemon is already serving (stop it first, or pick \
            another --address)"
           path);
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 64;
    sock
  | P.Tcp (host, port) ->
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen sock 64;
    sock

(* -- request handling --------------------------------------------------- *)

let error_response (e : Engine.error) = P.Error { code = e.Engine.code; message = e.Engine.message }

(* a single query answers with the spliced cache bytes — the fast path that
   makes cached responses byte-identical to computed ones *)
let answer_query st q limits =
  match Engine.run_cached ~caps:st.config.caps ?extmem:st.config.extmem st.cache q limits with
  | Ok (bytes, origin) -> P.encode_result_response ~origin bytes
  | Error e -> P.encode_response (error_response e)

let answer_query_item st q limits =
  match Engine.run_cached ~caps:st.config.caps ?extmem:st.config.extmem st.cache q limits with
  | Ok (bytes, origin) -> P.encode_result_item ~origin bytes
  | Error e -> P.encode_response_item (error_response e)

(* Batch: identical sub-queries (same query AND same limits) are computed
   once. Keyed by the encoded request bytes — structural identity without
   a comparator over the query tree. *)
let answer_batch st items =
  let memo = Hashtbl.create (List.length items) in
  let answers =
    List.map
      (fun (q, limits) ->
        let key = P.encode_request (P.Query (q, limits)) in
        match Hashtbl.find_opt memo key with
        | Some bytes -> bytes
        | None ->
          let bytes = answer_query_item st q limits in
          Hashtbl.replace memo key bytes;
          bytes)
      items
  in
  P.encode_items_response answers

let server_stats st =
  let ps =
    match st.pool with
    | Some pool -> Pool.stats pool
    | None -> { Pool.queue_len = 0; shed = 0; handler_exceptions = 0; respawns = 0 }
  in
  {
    P.cache = Cache.stats st.cache;
    requests = Atomic.get st.requests;
    uptime_s = Clock.now_s () -. st.started;
    workers = st.config.workers;
    shed = ps.Pool.shed;
    handler_exceptions = ps.Pool.handler_exceptions;
    respawns = ps.Pool.respawns;
    reaped = Atomic.get st.reaped;
  }

let handle_request st = function
  | P.Query (q, limits) -> answer_query st q limits
  | P.Batch items -> answer_batch st items
  | P.Stats -> P.encode_response (P.Stats_reply (server_stats st))
  | P.Ping -> P.encode_response P.Pong
  | P.Shutdown ->
    Atomic.set st.stop true;
    P.encode_response P.Bye

(* poll at frame boundaries so an idle connection notices a shutdown: a
   blocking read here would leave a worker pinned until its client went
   away, and [Pool.shutdown] would never join *)
let rec wait_readable st fd =
  if Atomic.get st.stop then false
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> wait_readable st fd
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable st fd

(* Once a frame starts (the socket turned readable), the whole exchange —
   frame in, reply out — must finish within [io_deadline_s]. An idle
   connection between frames costs nothing; a client that sends half a
   frame and stalls, or stops draining its reply, is reaped at the
   deadline so it cannot pin a worker domain. *)
let serve_connection st fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* relative: each frame read/write computes its own absolute
         monotonic deadline from this *)
      let deadline_s = st.config.io_deadline_s in
      let rec loop () =
        if wait_readable st fd then
          match P.read_frame_deadline fd ~deadline_s with
          | Ok None -> ()
          | Error P.Frame_timeout -> Atomic.incr st.reaped
          | Error (P.Frame_closed _) -> ()
          | Error (P.Frame_malformed msg) ->
            (* a malformed frame poisons the stream: answer and hang up *)
            ignore
              (P.write_frame_deadline fd ~deadline_s
                 (P.encode_response (P.Error { code = P.Bad_request; message = msg })))
          | Ok (Some payload) ->
            Atomic.incr st.requests;
            let reply =
              match P.decode_request payload with
              | Error msg ->
                P.encode_response (P.Error { code = P.Bad_request; message = msg })
              | Ok request -> handle_request st request
            in
            (match P.write_frame_deadline fd ~deadline_s reply with
            | Ok () -> if not (Atomic.get st.stop) then loop ()
            | Error P.Frame_timeout -> Atomic.incr st.reaped
            | Error (P.Frame_closed _ | P.Frame_malformed _) -> ())
      in
      loop ())

(* -- lifecycle ----------------------------------------------------------- *)

(* the retry-after hint scales with how deep the backlog is relative to
   the draining capacity, clamped to something a human-scale client can
   act on *)
let retry_after_hint ~backlog ~workers =
  Float.min 2.0 (Float.max 0.05 (0.25 *. float_of_int backlog /. float_of_int workers))

let run ?on_ready config =
  (* a client hanging up mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      config;
      cache = Cache.create ~shards:config.shards ~dir:config.cache_dir ();
      stop = Atomic.make false;
      requests = Atomic.make 0;
      reaped = Atomic.make 0;
      started = Clock.now_s ();
      pool = None;
    }
  in
  if config.drain_signals then begin
    let drain _ = Atomic.set st.stop true in
    try
      Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
      Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
    with Invalid_argument _ -> ()
  end;
  let sock = listening_socket config.address in
  let pool =
    Pool.create ~max_queue:config.max_queue ~workers:config.workers
      ~handler:(serve_connection st) ()
  in
  st.pool <- Some pool;
  Option.iter (fun f -> f ()) on_ready;
  let shed_connection fd =
    (* typed shed: tell the client when to come back, then hang up. The
       write runs on a short deadline so a non-draining client cannot
       stall the accept loop. *)
    let retry_after_s =
      retry_after_hint ~backlog:(Pool.queue_length pool) ~workers:config.workers
    in
    ignore
      (P.write_frame_deadline fd ~deadline_s:1.0
         (P.encode_response (P.Overloaded { retry_after_s })));
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec accept_loop () =
    if not (Atomic.get st.stop) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept sock with
         | fd, _ -> (
           match Pool.submit pool fd with
           | Pool.Accepted -> ()
           | Pool.Overloaded -> shed_connection fd
           | Pool.Stopping -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
         | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      match config.address with
      | P.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | P.Tcp _ -> ())
    accept_loop
