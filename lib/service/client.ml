module P = Protocol

type t = { fd : Unix.file_descr }

let socket_for = function
  | P.Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | P.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let sockaddr_of = function
  | P.Unix_path path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) -> Unix.ADDR_INET (Server.resolve_host host, port)

(* a daemon hanging up as we write — e.g. the overload path sheds us and
   closes while our request is still in flight — must surface as EPIPE, a
   retryable [Error], not kill the client process with SIGPIPE *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let connect ?(retry_for = 0.) address =
  Lazy.force ignore_sigpipe;
  (* monotonic: a wall-clock step mid-wait can neither cut the window
     short nor stretch it *)
  let deadline = Clock.now_s () +. retry_for in
  let rec attempt () =
    let fd = socket_for address in
    match Unix.connect fd (sockaddr_of address) with
    | () -> Ok { fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Clock.now_s () < deadline then begin
        (* the daemon is still coming up: back off briefly and retry *)
        Clock.sleep_s 0.05;
        attempt ()
      end
      else Error (Printf.sprintf "cannot connect to %s: %s" (P.address_to_string address)
                    (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" (P.address_to_string address)
               (Unix.error_message e))
  in
  attempt ()

let request t req =
  try
    P.write_frame t.fd (P.encode_request req);
    match P.read_frame t.fd with
    | Ok (Some payload) -> P.decode_response payload
    | Ok None -> Error "server closed the connection"
    | Error _ as e -> e
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let query ?(limits = P.no_limits) t q = request t (P.Query (q, limits))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retry_for address f =
  match connect ?retry_for address with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* -- retrying request --------------------------------------------------- *)

type retry_stats = {
  attempts : int;
  overloaded_retries : int;
  connect_retries : int;
  backoff_s : float;
}

let request_retry ?(max_attempts = 8) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ?(deadline_s = 30.) ?(seed = 1) address req =
  if max_attempts < 1 then invalid_arg "Client.request_retry: max_attempts must be >= 1";
  let rng = Memrel_prob.Rng.create seed in
  let deadline = Clock.now_s () +. deadline_s in
  let stats = ref { attempts = 0; overloaded_retries = 0; connect_retries = 0; backoff_s = 0. } in
  (* exponential growth capped at [max_delay_s]; an [Overloaded] reply's
     retry-after acts as a floor (the server knows its backlog better than
     our schedule does). Jitter stretches the wait by up to 50% so a herd
     of shed clients does not come back in lockstep. *)
  let backoff attempt ~floor_s =
    let expo = Float.min max_delay_s (base_delay_s *. (2. ** float_of_int (attempt - 1))) in
    let d = Float.max floor_s expo *. (1. +. (0.5 *. Memrel_prob.Rng.float rng)) in
    let remaining = deadline -. Clock.now_s () in
    if remaining <= 0. then None
    else begin
      let d = Float.min d remaining in
      stats := { !stats with backoff_s = !stats.backoff_s +. d };
      Clock.sleep_s d;
      Some ()
    end
  in
  let rec attempt n =
    stats := { !stats with attempts = n };
    let retry ~floor_s ~count err =
      if n >= max_attempts then Error (err ^ Printf.sprintf " (after %d attempts)" n)
      else
        match backoff n ~floor_s with
        | None -> Error (err ^ Printf.sprintf " (deadline exceeded after %d attempts)" n)
        | Some () ->
          count ();
          attempt (n + 1)
    in
    match connect address with
    | Error msg ->
      retry ~floor_s:0. msg ~count:(fun () ->
          stats := { !stats with connect_retries = !stats.connect_retries + 1 })
    | Ok conn -> (
      match Fun.protect ~finally:(fun () -> close conn) (fun () -> request conn req) with
      | Ok (P.Overloaded { retry_after_s }) ->
        retry ~floor_s:retry_after_s "server overloaded" ~count:(fun () ->
            stats := { !stats with overloaded_retries = !stats.overloaded_retries + 1 })
      | Ok response -> Ok (response, !stats)
      | Error msg ->
        retry ~floor_s:0. msg ~count:(fun () ->
            stats := { !stats with connect_retries = !stats.connect_retries + 1 }))
  in
  attempt 1
