module P = Protocol

type t = { fd : Unix.file_descr }

let socket_for = function
  | P.Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | P.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let sockaddr_of = function
  | P.Unix_path path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) -> Unix.ADDR_INET (Server.resolve_host host, port)

let connect ?(retry_for = 0.) address =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = socket_for address in
    match Unix.connect fd (sockaddr_of address) with
    | () -> Ok { fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT) as e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        (* the daemon is still coming up: back off briefly and retry *)
        ignore (Unix.select [] [] [] 0.05);
        attempt ()
      end
      else Error (Printf.sprintf "cannot connect to %s: %s" (P.address_to_string address)
                    (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" (P.address_to_string address)
               (Unix.error_message e))
  in
  attempt ()

let request t req =
  try
    P.write_frame t.fd (P.encode_request req);
    match P.read_frame t.fd with
    | Ok (Some payload) -> P.decode_response payload
    | Ok None -> Error "server closed the connection"
    | Error _ as e -> e
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let query ?(limits = P.no_limits) t q = request t (P.Query (q, limits))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retry_for address f =
  match connect ?retry_for address with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
