(** Deterministic fault injection, re-exported from {!Memrel_prob.Faultio}.

    Seeded, replayable fault plans over the syscall facade that all
    snapshot-container IO (result cache, extmem spill, checkpoints)
    travels through. See {!Memrel_prob.Faultio} for the full contract;
    [memrel serve --fault-seed/--fault-rate] installs plans through
    here. *)

include module type of struct
  include Memrel_prob.Faultio
end
