(** The joined model (Section 6 / Appendix A.3): end-to-end simulation.

    One random initial program is generated; [n] identical copies are
    settled independently under the memory model; the threads' critical
    windows are then interleaved by the shift process. The bug manifests
    when some pair of windows collides.

    Two overlap conventions are provided:

    - [`Paper]: segment lengths Gamma_k = gamma_k + 2 fed to the Definition-1
      shift process — exactly what Theorems 6.1/6.2 compute (this is the
      convention reproducing the paper's 1/6, 7/54, ... values).
    - [`Strict]: the literal Appendix A.3 event — windows are the inclusive
      integer index sets of the settled critical LD .. critical ST, placed
      at their absolute settled positions minus the thread shift, and the
      bug manifests only when two windows share a time step. This is
      strictly weaker (fewer collisions: segments merely touching
      end-to-start do not collide), so Pr[A] is larger; e.g. SC at n = 2
      gives 1/3 instead of 1/6. The delta is an endpoint convention inside
      the paper itself, surfaced here as a measurable ablation. *)

type convention = [ `Paper | `Strict ]

type estimate = {
  pr_no_bug : float;  (** point estimate of Pr[A] *)
  ci : Memrel_prob.Stats.interval;  (** 95% Wilson interval *)
  trials : int;
}

val sample :
  ?p:float -> ?m:int -> ?gap:int -> ?convention:convention ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> bool
(** [sample model ~n rng] runs one end-to-end experiment and returns
    [true] when no bug manifests (the event A). [n >= 2] required. [gap]
    (default 0) puts that many plain operations inside the critical section
    (see {!Memrel_settling.Program.generate_with_gap}) — the generalized
    bug pattern where the programmer needs more than two instructions of
    atomicity. *)

val estimate :
  ?p:float -> ?m:int -> ?gap:int -> ?convention:convention -> ?jobs:int -> trials:int ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> estimate
(** Monte Carlo estimate of Pr[A]. Trials fan out over [jobs] domains via
    {!Memrel_prob.Par} (default {!Memrel_prob.Par.default_jobs}); for a
    fixed seed the estimate is bit-identical at every [jobs]. *)

val estimate_adaptive :
  ?p:float -> ?m:int -> ?gap:int -> ?convention:convention -> ?jobs:int -> ?chunk:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?report:(trials:int -> successes:int -> unit) -> ?report_every:int ->
  target_width:float -> max_trials:int ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t ->
  estimate Memrel_prob.Par.streamed
(** Adaptive {!estimate}: runs until the 95% Wilson interval for Pr[A] has
    width [<= target_width] (checked at chunk boundaries on the
    schedule-order prefix — the stopping trial count is deterministic per
    (seed, schedule) and jobs-invariant), up to [max_trials]. Composes with
    [budget] (typed partial, honestly widened interval) and [report]
    (running estimate every [report_every] chunks). See
    {!Memrel_prob.Par.count_streaming}. *)

(** The pre-streaming per-trial closure path ({!sample} under [Par.count]),
    kept as the differential-test and benchmark baseline: the streaming
    estimators reproduce these results bit-for-bit. *)
module Reference : sig
  val estimate :
    ?p:float -> ?m:int -> ?gap:int -> ?convention:convention -> ?jobs:int -> trials:int ->
    Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> estimate

  val semi_analytic :
    ?p:float -> ?m:int -> ?gap:int -> ?jobs:int -> trials:int ->
    Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> float
end

val estimate_governed :
  ?p:float -> ?m:int -> ?gap:int -> ?convention:convention -> ?jobs:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?checkpoint:string -> ?checkpoint_every:int -> ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> Memrel_prob.Par.fault option) ->
  trials:int ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t ->
  estimate Memrel_prob.Par.governed
(** {!estimate} under resource governance (budgets, checkpoint/resume,
    fault-injection retry — see {!Memrel_prob.Par.run_governed}). A partial
    run reports the estimate over [run_stats.trials_done] with an honestly
    widened Wilson interval; a complete run is bit-identical to
    {!estimate}. *)

val semi_analytic :
  ?p:float -> ?m:int -> ?gap:int -> ?jobs:int -> trials:int ->
  Memrel_memmodel.Model.t -> n:int -> Memrel_prob.Rng.t -> float
(** Variance-reduced estimator of the [`Paper]-convention Pr[A]: samples
    only the window-length vector (program + settling) and applies
    Theorem 6.1's exact shift-side formula
    [c(n) 2^-C(n+1,2) n! E[prod_i 2^(-i Gamma_i)]] to the sample mean of
    the product. Unlike the independence approximation, this respects the
    cross-thread correlation induced by the shared program, and it needs no
    rare-event luck from the shift sampler, so it stays accurate at [n]
    where direct Monte Carlo would return all-zeros. *)
