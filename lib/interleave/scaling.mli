(** Thread-scaling behaviour (Theorem 6.3).

    Computes log2 Pr[A] per memory model as [n] grows, the normalized
    exponent [-log2 Pr[A] / n^2] (which Theorem 6.3 sends to 3/2 for every
    model), and the gap diagnostics showing that the advantage of strict
    models becomes proportionally insignificant. SC and WO rows are exact;
    TSO rows use the exact-series marginal under the independence
    approximation (bracketed by the Theorem 4.1 bounds, and validated
    against {!Joint.semi_analytic} at small n in the benches). *)

type row = {
  n : int;
  log2_sc : float;  (** exact *)
  log2_wo : float;  (** exact *)
  log2_tso : float;  (** exact-series marginal, independence approximation *)
  log2_tso_lo : float;  (** Theorem 4.1 lower window bound *)
  log2_tso_hi : float;  (** Theorem 4.1 upper window bound *)
}

val row : int -> row
(** [row n] for [n >= 2]. Stable for large [n] (log-space throughout). *)

val table : ?jobs:int -> n_max:int -> unit -> row list
(** Rows for [n = 2 .. n_max], computed across [jobs] domains (default
    {!Memrel_prob.Par.default_jobs}); rows are pure, so the output is
    identical at every [jobs]. *)

val normalized_exponent : log2_pr:float -> n:int -> float
(** [-log2 Pr / n^2]; 3/2 + o(1) per Theorem 6.3. *)

val gap_ratio_log2 : row -> float * float
(** [(log2 (Pr_SC / Pr_WO), log2 (Pr_SC / Pr_TSO))]: how many bits of
    reliability the strict model buys. Grows like Theta(n) — vanishing
    relative to the Theta(n^2) exponent, the paper's headline. *)

val log2_pr : Memrel_settling.Analytic.model_window -> n:int -> float
(** log2 Pr[A] for an arbitrary window-law variant (independent windows). *)
