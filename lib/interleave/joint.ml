module Rng = Memrel_prob.Rng
module Stats = Memrel_prob.Stats
module Settle = Memrel_settling.Settle
module Window = Memrel_settling.Window
module Program = Memrel_settling.Program
module Shift = Memrel_shift.Process

type convention = [ `Paper | `Strict ]

type estimate = {
  pr_no_bug : float;
  ci : Stats.interval;
  trials : int;
}

let default_m = 64

let check_n n = if n < 2 then invalid_arg "Joint: n >= 2 threads required"

let sample ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) model ~n rng =
  check_n n;
  let prog = Program.generate_with_gap ~p rng ~m ~gap in
  match convention with
  | `Paper ->
    let gammas =
      Array.init n (fun _ ->
          let pi = Settle.run model rng prog in
          Window.gamma prog pi + 2)
    in
    (Shift.sample rng gammas).disjoint
  | `Strict ->
    (* absolute inclusive windows [load_pos - eta, store_pos - eta]; the bug
       manifests when two windows share an integer time step *)
    let windows =
      Array.init n (fun _ ->
          let pi = Settle.run model rng prog in
          let load_pos, store_pos = Window.bounds prog pi in
          let eta = Rng.geometric_half rng in
          (load_pos - eta, store_pos - eta))
    in
    Array.sort compare windows;
    let ok = ref true in
    for i = 0 to n - 2 do
      let _, bottom = windows.(i) and top, _ = windows.(i + 1) in
      if top <= bottom then ok := false
    done;
    !ok

let estimate ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs ~trials model
    ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.estimate: trials must be positive";
  let successes =
    Memrel_prob.Par.count ?jobs ~trials (fun r -> sample ~p ~m ~gap ~convention model ~n r) rng
  in
  {
    pr_no_bug = Stats.binomial_point ~successes ~trials;
    ci = Stats.wilson_ci ~successes ~trials ~z:1.96;
    trials;
  }

let estimate_governed ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs
    ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault ~trials model ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.estimate: trials must be positive";
  let g =
    Memrel_prob.Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume
      ?max_retries ?fault ~trials
      (fun r -> sample ~p ~m ~gap ~convention model ~n r)
      rng
  in
  let successes = g.Memrel_prob.Par.value in
  let trials = g.Memrel_prob.Par.run_stats.Memrel_prob.Par.trials_done in
  let value =
    if trials = 0 then
      { pr_no_bug = Float.nan; ci = { Stats.lo = 0.0; hi = 1.0 }; trials = 0 }
    else
      {
        pr_no_bug = Stats.binomial_point ~successes ~trials;
        ci = Stats.wilson_ci ~successes ~trials ~z:1.96;
        trials;
      }
  in
  { g with Memrel_prob.Par.value }

let semi_analytic ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?jobs ~trials model ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.semi_analytic: trials must be positive";
  (* E[prod_{i=1}^{n-1} 2^(-i Gamma_i)] over the joint (shared-program) law
     of the window lengths; Theorem 6.1's exchangeability lets us fix the
     assignment of threads to exponents. Par's fixed fold order keeps the
     float sum bit-identical at every jobs count. *)
  let acc =
    Memrel_prob.Par.sum_float ?jobs ~trials
      (fun r ->
        let prog = Program.generate_with_gap ~p r ~m ~gap in
        let exponent = ref 0 in
        for i = 1 to n - 1 do
          let pi = Settle.run model r prog in
          let gamma_len = Window.gamma prog pi + 2 in
          exponent := !exponent + (i * gamma_len)
        done;
        Float.pow 2.0 (float_of_int (- !exponent)))
      rng
  in
  let mean = acc /. float_of_int trials in
  let prefactor = Memrel_prob.Rational.to_float (Memrel_shift.Exact.prefactor n) in
  let fact = Memrel_prob.Bigint.to_float (Memrel_prob.Combinatorics.factorial n) in
  prefactor *. fact *. mean
