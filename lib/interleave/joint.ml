module Rng = Memrel_prob.Rng
module Par = Memrel_prob.Par
module Stats = Memrel_prob.Stats
module Settle = Memrel_settling.Settle
module Window = Memrel_settling.Window
module Program = Memrel_settling.Program
module Scratch = Memrel_settling.Scratch
module Shift = Memrel_shift.Process

type convention = [ `Paper | `Strict ]

type estimate = {
  pr_no_bug : float;
  ci : Stats.interval;
  trials : int;
}

let default_m = 64

let check_n n = if n < 2 then invalid_arg "Joint: n >= 2 threads required"

let sample ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) model ~n rng =
  check_n n;
  let prog = Program.generate_with_gap ~p rng ~m ~gap in
  match convention with
  | `Paper ->
    let gammas =
      Array.init n (fun _ ->
          let pi = Settle.run model rng prog in
          Window.gamma prog pi + 2)
    in
    (Shift.sample rng gammas).disjoint
  | `Strict ->
    (* absolute inclusive windows [load_pos - eta, store_pos - eta]; the bug
       manifests when two windows share an integer time step *)
    let windows =
      Array.init n (fun _ ->
          let pi = Settle.run model rng prog in
          let load_pos, store_pos = Window.bounds prog pi in
          let eta = Rng.geometric_half rng in
          (load_pos - eta, store_pos - eta))
    in
    Array.sort compare windows;
    let ok = ref true in
    for i = 0 to n - 2 do
      let _, bottom = windows.(i) and top, _ = windows.(i + 1) in
      if top <= bottom then ok := false
    done;
    !ok

(* streaming per-trial draws on per-worker scratch, replaying [sample]'s
   exact draw sequence: program Bernoullis, then per thread the settle walk
   (and for [`Strict] its shift), then for [`Paper] the n shifts *)
let sample_worker ~p ~m ~gap ~convention model ~n () =
  let scratch = Scratch.create ~p ~gap ~m model in
  match convention with
  | `Paper ->
    let gammas = Array.make n 0 in
    let shifts = Array.make n 0 in
    let idx = Array.make n 0 in
    fun r ->
      Scratch.generate scratch r;
      for i = 0 to n - 1 do
        Scratch.settle scratch r;
        Array.unsafe_set gammas i (Scratch.gamma scratch + 2)
      done;
      for i = 0 to n - 1 do
        Array.unsafe_set shifts i (Rng.geometric_half r)
      done;
      Shift.disjoint_scratch ~shifts ~idx ~gammas
  | `Strict ->
    let tops = Array.make n 0 in
    let bottoms = Array.make n 0 in
    fun r ->
      Scratch.generate scratch r;
      for i = 0 to n - 1 do
        Scratch.settle scratch r;
        let eta = Rng.geometric_half r in
        Array.unsafe_set tops i (Scratch.load_pos scratch - eta);
        Array.unsafe_set bottoms i (Scratch.store_pos scratch - eta)
      done;
      (* insertion sort of the (top, bottom) pairs, lexicographic — the
         order [Array.sort compare] on tuples produces; the adjacent check
         only reads values, so any sort of equal pairs agrees *)
      for i = 1 to n - 1 do
        let t0 = Array.unsafe_get tops i and b0 = Array.unsafe_get bottoms i in
        let j = ref (i - 1) in
        while
          !j >= 0
          && (Array.unsafe_get tops !j > t0
              || (Array.unsafe_get tops !j = t0 && Array.unsafe_get bottoms !j > b0))
        do
          Array.unsafe_set tops (!j + 1) (Array.unsafe_get tops !j);
          Array.unsafe_set bottoms (!j + 1) (Array.unsafe_get bottoms !j);
          decr j
        done;
        Array.unsafe_set tops (!j + 1) t0;
        Array.unsafe_set bottoms (!j + 1) b0
      done;
      let ok = ref true in
      for i = 0 to n - 2 do
        if Array.unsafe_get tops (i + 1) <= Array.unsafe_get bottoms i then ok := false
      done;
      !ok

let estimate_of_streamed (s : int Par.streamed) =
  let successes = s.Par.value and trials = s.Par.trials_done in
  let value =
    if trials = 0 then { pr_no_bug = Float.nan; ci = { Stats.lo = 0.0; hi = 1.0 }; trials = 0 }
    else
      {
        pr_no_bug = Stats.binomial_point ~successes ~trials;
        ci = Stats.wilson_ci ~successes ~trials ~z:1.96;
        trials;
      }
  in
  { s with Par.value }

let estimate ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs ~trials model
    ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.estimate: trials must be positive";
  let s =
    Par.count_streaming ?jobs ~max_trials:trials
      ~worker:(sample_worker ~p ~m ~gap ~convention model ~n)
      rng
  in
  (estimate_of_streamed s).Par.value

let estimate_adaptive ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs
    ?chunk ?budget ?report ?report_every ~target_width ~max_trials model ~n rng =
  check_n n;
  if max_trials <= 0 then invalid_arg "Joint.estimate_adaptive: max_trials must be positive";
  let s =
    Par.count_streaming ?jobs ?chunk ?budget ~target_width ?report ?report_every ~max_trials
      ~worker:(sample_worker ~p ~m ~gap ~convention model ~n)
      rng
  in
  estimate_of_streamed s

let estimate_governed ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs
    ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault ~trials model ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.estimate: trials must be positive";
  let g =
    Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials
      (fun r -> sample ~p ~m ~gap ~convention model ~n r)
      rng
  in
  let successes = g.Par.value in
  let trials = g.Par.run_stats.Par.trials_done in
  let value =
    if trials = 0 then
      { pr_no_bug = Float.nan; ci = { Stats.lo = 0.0; hi = 1.0 }; trials = 0 }
    else
      {
        pr_no_bug = Stats.binomial_point ~successes ~trials;
        ci = Stats.wilson_ci ~successes ~trials ~z:1.96;
        trials;
      }
  in
  { g with Par.value }

let semi_analytic ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?jobs ~trials model ~n rng =
  check_n n;
  if trials <= 0 then invalid_arg "Joint.semi_analytic: trials must be positive";
  (* E[prod_{i=1}^{n-1} 2^(-i Gamma_i)] over the joint (shared-program) law
     of the window lengths; Theorem 6.1's exchangeability lets us fix the
     assignment of threads to exponents. Par's fixed fold order keeps the
     float sum bit-identical at every jobs count. *)
  let s =
    Par.run_streaming ?jobs ~max_trials:trials
      ~init:(fun () -> 0.0)
      ~worker:(fun () ->
        let scratch = Scratch.create ~p ~gap ~m model in
        fun acc r ->
          Scratch.generate scratch r;
          let exponent = ref 0 in
          for i = 1 to n - 1 do
            Scratch.settle scratch r;
            exponent := !exponent + (i * (Scratch.gamma scratch + 2))
          done;
          acc +. Float.pow 2.0 (float_of_int (- !exponent)))
      ~merge:( +. ) rng
  in
  let mean = s.Par.value /. float_of_int trials in
  let prefactor = Memrel_prob.Rational.to_float (Memrel_shift.Exact.prefactor n) in
  let fact = Memrel_prob.Bigint.to_float (Memrel_prob.Combinatorics.factorial n) in
  prefactor *. fact *. mean

(* -- closure-based reference path --------------------------------------- *)

(* The pre-streaming per-trial closures, kept for differential tests and
   benchmarks: the streaming workers must reproduce these bit-for-bit. *)
module Reference = struct
  let estimate ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?(convention = `Paper) ?jobs ~trials
      model ~n rng =
    check_n n;
    if trials <= 0 then invalid_arg "Joint.estimate: trials must be positive";
    let successes =
      Par.count ?jobs ~trials (fun r -> sample ~p ~m ~gap ~convention model ~n r) rng
    in
    {
      pr_no_bug = Stats.binomial_point ~successes ~trials;
      ci = Stats.wilson_ci ~successes ~trials ~z:1.96;
      trials;
    }

  let semi_analytic ?(p = 0.5) ?(m = default_m) ?(gap = 0) ?jobs ~trials model ~n rng =
    check_n n;
    if trials <= 0 then invalid_arg "Joint.semi_analytic: trials must be positive";
    let acc =
      Par.sum_float ?jobs ~trials
        (fun r ->
          let prog = Program.generate_with_gap ~p r ~m ~gap in
          let exponent = ref 0 in
          for i = 1 to n - 1 do
            let pi = Settle.run model r prog in
            let gamma_len = Window.gamma prog pi + 2 in
            exponent := !exponent + (i * gamma_len)
          done;
          Float.pow 2.0 (float_of_int (- !exponent)))
        rng
    in
    let mean = acc /. float_of_int trials in
    let prefactor = Memrel_prob.Rational.to_float (Memrel_shift.Exact.prefactor n) in
    let fact = Memrel_prob.Bigint.to_float (Memrel_prob.Combinatorics.factorial n) in
    prefactor *. fact *. mean
end
