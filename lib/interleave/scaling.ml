module SA = Memrel_settling.Analytic
module Asym = Memrel_shift.Asymptotic

type row = {
  n : int;
  log2_sc : float;
  log2_wo : float;
  log2_tso : float;
  log2_tso_lo : float;
  log2_tso_hi : float;
}

let log2f x = Float.log x /. Float.log 2.0

let log2_pr w ~n =
  Asym.log2_disjoint_symmetric ~log2_expect:(fun i -> log2f (SA.expect_pow2_window w ~k:i)) ~n

(* exact rational expectations keep the WO row exact even where the float
   series would round *)
let log2_pr_exact w ~n =
  let log2_expect i =
    Memrel_prob.Logspace.log2
      (Memrel_prob.Logspace.of_rational (SA.expect_pow2_window_exact w ~k:i))
  in
  Asym.log2_disjoint_symmetric ~log2_expect ~n

let row n =
  if n < 2 then invalid_arg "Scaling.row: n >= 2 required";
  {
    n;
    log2_sc = Asym.log2_pr_sc n;
    log2_wo = log2_pr_exact `WO ~n;
    log2_tso = log2_pr `TSO_series ~n;
    log2_tso_lo = log2_pr_exact `TSO_lower ~n;
    log2_tso_hi = log2_pr_exact `TSO_upper ~n;
  }

let table ?jobs ~n_max () =
  if n_max < 2 then invalid_arg "Scaling.table: n_max >= 2 required";
  (* rows are independent pure computations (the exact-rational WO/TSO
     series dominate at large n) — an embarrassingly parallel map *)
  Memrel_prob.Par.map_list ?jobs row (List.init (n_max - 1) (fun i -> i + 2))

let normalized_exponent ~log2_pr ~n = Asym.normalized_exponent ~log2_pr ~n

let gap_ratio_log2 r = (r.log2_sc -. r.log2_wo, r.log2_sc -. r.log2_tso)
