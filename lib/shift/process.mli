(** The shift process (Definition 1, Section 5) — sampling side.

    [n] integer-length segments start at the origin and are translated by
    i.i.d. geometric shifts with pmf [Pr[s = k] = 2^-(k+1)]. The event
    A(gamma-bar) is that the translated closed segments
    [[s_i, s_i + gamma_i]] are pairwise disjoint. Note the endpoint
    convention implied by Theorem 5.1's algebra (and verified in the tests):
    a segment of length gamma occupies the gamma + 1 integer slots
    [s .. s + gamma], and two segments touching at an endpoint DO overlap —
    the next segment must start at least [gamma + 1] above the previous
    start. *)

type sample = { shifts : int array; disjoint : bool }

val sample : Memrel_prob.Rng.t -> int array -> sample
(** [sample rng gammas] draws the shifts and evaluates disjointness.
    Segment lengths must be nonnegative. *)

val disjoint : shifts:int array -> gammas:int array -> bool
(** Pure disjointness check (exposed for tests and for the joined model):
    sorted by shift, every consecutive pair must satisfy
    [s_next >= s_prev + gamma_prev + 1]. Equal shifts always overlap. *)

val disjoint_scratch : shifts:int array -> idx:int array -> gammas:int array -> bool
(** {!disjoint} on caller-owned buffers — the zero-allocation form used by
    the streaming estimators (and the joined model's): [idx] is scratch of
    the same length as [gammas], overwritten on every call. Agrees with
    {!disjoint} on every input (ties between equal shifts cannot affect the
    verdict, so the sort order of ties is immaterial). *)

val estimate :
  ?jobs:int -> trials:int -> Memrel_prob.Rng.t -> int array ->
  float * Memrel_prob.Stats.interval
(** [estimate ~trials rng gammas] is the Monte Carlo estimate of
    Pr[A(gamma-bar)] with a 95% Wilson interval. Trials fan out over [jobs]
    domains via {!Memrel_prob.Par} (default
    {!Memrel_prob.Par.default_jobs}); bit-identical at every [jobs]. *)

val estimate_governed :
  ?jobs:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?checkpoint:string -> ?checkpoint_every:int -> ?resume:string ->
  ?max_retries:int ->
  ?fault:(chunk:int -> attempt:int -> Memrel_prob.Par.fault option) ->
  trials:int -> Memrel_prob.Rng.t -> int array ->
  (float * Memrel_prob.Stats.interval) Memrel_prob.Par.governed
(** {!estimate} under resource governance (see
    {!Memrel_prob.Par.run_governed}). A partial run reports the estimate
    over [run_stats.trials_done] with an honestly widened Wilson interval
    (vacuous [[0, 1]] when nothing completed); a complete run is
    bit-identical to {!estimate}. *)

val estimate_adaptive :
  ?jobs:int -> ?chunk:int ->
  ?budget:Memrel_prob.Budget.t ->
  ?report:(trials:int -> successes:int -> unit) -> ?report_every:int ->
  target_width:float -> max_trials:int ->
  Memrel_prob.Rng.t -> int array ->
  (float * Memrel_prob.Stats.interval) Memrel_prob.Par.streamed
(** Adaptive {!estimate}: runs until the 95% Wilson interval has width
    [<= target_width] (checked at chunk boundaries on the schedule-order
    prefix — the stopping trial count is deterministic per (seed, schedule)
    and jobs-invariant), up to [max_trials]. Composes with [budget] (typed
    partial, honestly widened interval) and [report] (running estimate
    every [report_every] chunks). See
    {!Memrel_prob.Par.count_streaming}. *)

(** The pre-streaming per-trial closure path (fresh shift/index arrays per
    trial), kept as the differential-test and benchmark baseline: the
    streaming estimators reproduce these results bit-for-bit. *)
module Reference : sig
  val estimate :
    ?jobs:int -> trials:int -> Memrel_prob.Rng.t -> int array ->
    float * Memrel_prob.Stats.interval

  val estimate_geom :
    ?jobs:int -> q:float -> trials:int -> Memrel_prob.Rng.t -> int array ->
    float * Memrel_prob.Stats.interval
end

val sample_geom : q:float -> Memrel_prob.Rng.t -> int array -> sample
(** Like {!sample} but with geometric(q) shifts — pmf [(1-q) q^k] — the
    generalized dispersion of {!Memrel_shift.Exact.disjoint_probability_geom}.
    Requires [0 < q < 1]. [q = 0.5] coincides with {!sample}'s law. *)

val estimate_geom :
  ?jobs:int -> q:float -> trials:int -> Memrel_prob.Rng.t -> int array ->
  float * Memrel_prob.Stats.interval
(** Monte Carlo counterpart of the generalized exact formula ([jobs] as in
    {!estimate}). *)
