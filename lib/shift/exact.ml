module Q = Memrel_prob.Rational
module C = Memrel_prob.Combinatorics

module type S = sig
  type q

  val disjoint_probability : int array -> q
  val prefactor : int -> q
  val c : int -> q
  val symmetric_disjoint_probability : (int * q) list -> n:int -> q
  val expect_pow2 : (int * q) list -> k:int -> q
  val disjoint_probability_geom : q:q -> int array -> q
  val prefactor_geom : q:q -> int -> q
  val symmetric_disjoint_probability_geom : q:q -> (int * q) list -> n:int -> q
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) = struct
  type q = Q.t

  (* [Q] carries no bigint-typed members, so n! crosses the boundary as a
     decimal string (n <= 9 here — the cost is irrelevant). *)
  let factorial n = Q.of_string (Memrel_prob.Bigint.to_string (C.factorial n))

  let check_n n = if n < 1 || n > 8 then invalid_arg "Shift.Exact: n must be in [1, 8]"

  let c n =
    if n < 1 then invalid_arg "Shift.Exact.c: n >= 1 required";
    let denom = ref Q.one in
    for i = 2 to n do
      denom := Q.mul !denom (Q.sub Q.one (Q.pow2 (-i)))
    done;
    Q.div Q.two !denom

  let binom2 n = n * (n + 1) / 2

  let prefactor n =
    if n < 1 then invalid_arg "Shift.Exact.prefactor: n >= 1 required";
    Q.mul (c n) (Q.pow2 (-binom2 n))

  let disjoint_probability gammas =
    let n = Array.length gammas in
    check_n n;
    Array.iter (fun g -> if g < 0 then invalid_arg "Shift.Exact: negative segment length") gammas;
    (* sum over the symmetric group of 2^-(sum_i (n-i) gamma_sigma(i)); the
       exponent is a native int, so each term is an exact dyadic rational *)
    let sum =
      C.fold_permutations
        (fun acc sigma ->
          let e = ref 0 in
          for i = 0 to n - 2 do
            e := !e + ((n - 1 - i) * gammas.(sigma.(i)))
          done;
          Q.add acc (Q.pow2 (- !e)))
        Q.zero n
    in
    Q.mul (prefactor n) sum

  let check_q q =
    if Q.compare q Q.zero <= 0 || Q.compare q Q.one >= 0 then
      invalid_arg "Shift.Exact: q must be strictly inside (0,1)"

  let prefactor_geom ~q n =
    if n < 1 then invalid_arg "Shift.Exact.prefactor_geom: n >= 1 required";
    check_q q;
    let acc = ref Q.one in
    for i = 1 to n - 1 do
      acc := Q.mul !acc (Q.div (Q.sub Q.one q) (Q.sub Q.one (Q.pow q (n - i + 1))))
    done;
    !acc

  let disjoint_probability_geom ~q gammas =
    let n = Array.length gammas in
    check_n n;
    check_q q;
    Array.iter (fun g -> if g < 0 then invalid_arg "Shift.Exact: negative segment length") gammas;
    let sum =
      C.fold_permutations
        (fun acc sigma ->
          let e = ref 0 in
          for i = 0 to n - 2 do
            e := !e + ((n - 1 - i) * (gammas.(sigma.(i)) + 1))
          done;
          Q.add acc (Q.pow q !e))
        Q.zero n
    in
    Q.mul (prefactor_geom ~q n) sum

  let symmetric_disjoint_probability_geom ~q pmf ~n =
    if n < 1 then invalid_arg "Shift.Exact: n >= 1 required";
    check_q q;
    let product = ref Q.one in
    for i = 1 to n - 1 do
      let e =
        Q.sum (List.map (fun (v, p) -> Q.mul (Q.pow q ((n - i) * (v + 1))) p) pmf)
      in
      product := Q.mul !product e
    done;
    Q.mul (Q.mul (prefactor_geom ~q n) (factorial n)) !product

  let expect_pow2 pmf ~k =
    if k < 0 then invalid_arg "Shift.Exact.expect_pow2: k >= 0 required";
    Q.sum (List.map (fun (v, p) -> Q.mul (Q.pow2 (-k * v)) p) pmf)

  let symmetric_disjoint_probability pmf ~n =
    if n < 1 then invalid_arg "Shift.Exact.symmetric_disjoint_probability: n >= 1 required";
    let product = ref Q.one in
    for i = 1 to n - 1 do
      product := Q.mul !product (expect_pow2 pmf ~k:i)
    done;
    Q.mul (Q.mul (prefactor n) (factorial n)) !product
end

include Make (Memrel_prob.Rational)
