(** Exact shift-process probabilities (Theorem 5.1, Corollary 5.2,
    Theorem 6.1).

    All values are exact rationals; the permutation sum limits [n] to at
    most 8 segments (8! = 40320 terms), which covers every table in the
    paper — the large-n regime is handled analytically by {!Asymptotic}.

    Functorized over {!Memrel_prob.Sigs.RATIONAL} for the fast-vs-reference
    bench; the toplevel values are the fast-path instance. *)

module Q = Memrel_prob.Rational

module type S = sig
  type q
  (** The rational scalar of this instance. *)

  val disjoint_probability : int array -> q
  (** [disjoint_probability gammas] is Pr[A(gamma-bar)] by Theorem 5.1:
      the prefactor [2^-(C(n+1,2)-1) / prod_{i=1}^{n-1} (1 - 2^-(n+1-i))]
      times [sum_sigma prod_{i=1}^{n-1} 2^-(n-i) gamma_sigma(i)].
      Requires [1 <= n <= 8]. *)

  val prefactor : int -> q
  (** The Theorem 5.1 prefactor for [n] segments. *)

  val c : int -> q
  (** Corollary 5.2's constant: [c n = 2 / prod_{i=2}^{n} (1 - 2^-i)], so
      that [prefactor n = c n * 2^-C(n+1,2)]. [c 2 = 8/3]; [c n] lies in
      [2, 4] for all [n >= 1] (tested). *)

  val symmetric_disjoint_probability : (int * q) list -> n:int -> q
  (** Theorem 6.1 for i.i.d.-marginal segment lengths:
      [c n * 2^-C(n+1,2) * n! * prod_{i=1}^{n-1} E[2^-i Gamma]] — valid when
      the joint length distribution is exchangeable AND the lengths are
      independent across segments (the SC and WO cases; TSO needs the joint
      law, see {!Memrel_interleave}). The pmf is [(length, prob)]; it is the
      caller's job to pass a (sub)distribution — a truncated pmf yields a
      lower bound. Requires [n >= 1] (no permutation-sum limit: the
      symmetric form needs no enumeration). *)

  val expect_pow2 : (int * q) list -> k:int -> q
  (** [expect_pow2 pmf ~k] is [sum_v 2^-(k v) Pr[v]] = E[2^-k Gamma]. *)

  (** {1 Generalized shift distribution}

      Definition 1 fixes the shifts to geometric with ratio 1/2; the same
      memorylessness argument goes through for any ratio [q] in (0, 1)
      (pmf [(1-q) q^k]), yielding

      [Pr[A] = sum_sigma prod_{i=1}^{n-1}
         (1-q) q^((n-i)(gamma_sigma(i)+1)) / (1 - q^(n-i+1))].

      [q] controls thread dispersion: larger [q] spreads the threads further
      apart in time, making collisions rarer. At q = 1/2 these reduce
      exactly to the paper's formulas (tested). *)

  val disjoint_probability_geom : q:q -> int array -> q
  (** Exact Pr[A(gamma-bar)] under geometric(q) shifts. Requires [q]
      strictly between 0 and 1 and [1 <= n <= 8]. *)

  val prefactor_geom : q:q -> int -> q
  (** [prod_{i=1}^{n-1} (1-q) / (1 - q^(n-i+1))]: the gamma-independent part
      of each permutation term. *)

  val symmetric_disjoint_probability_geom : q:q -> (int * q) list -> n:int -> q
  (** Theorem 6.1 under geometric(q) shifts, for independent
      identically-distributed segment lengths:
      [prefactor_geom q n * n! * prod_{i=1}^{n-1} E[q^(n-i)(Gamma+1)]]. *)
end

module Make (Q : Memrel_prob.Sigs.RATIONAL) : S with type q = Q.t

include S with type q = Q.t
