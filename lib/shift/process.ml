module Rng = Memrel_prob.Rng
module Par = Memrel_prob.Par
module Stats = Memrel_prob.Stats

type sample = { shifts : int array; disjoint : bool }

let disjoint ~shifts ~gammas =
  let n = Array.length shifts in
  if n <> Array.length gammas then invalid_arg "Process.disjoint: length mismatch";
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare shifts.(a) shifts.(b)) idx;
  let ok = ref true in
  for j = 0 to n - 2 do
    let prev = idx.(j) and next = idx.(j + 1) in
    if shifts.(next) < shifts.(prev) + gammas.(prev) + 1 then ok := false
  done;
  !ok

(* Zero-allocation disjointness on caller-owned buffers: insertion sort of
   [idx] keyed by shift (n is small; no closure, no fresh index array), then
   the same adjacent-pair check as [disjoint]. Equal shifts always overlap
   — the verdict does not depend on how a sort orders ties — so this agrees
   with [disjoint] exactly, whatever either sort does with ties. *)
let disjoint_scratch ~shifts ~idx ~gammas =
  let n = Array.length gammas in
  for i = 0 to n - 1 do
    Array.unsafe_set idx i i
  done;
  for i = 1 to n - 1 do
    let key = Array.unsafe_get idx i in
    let ks = Array.unsafe_get shifts key in
    let j = ref (i - 1) in
    while !j >= 0 && Array.unsafe_get shifts (Array.unsafe_get idx !j) > ks do
      Array.unsafe_set idx (!j + 1) (Array.unsafe_get idx !j);
      decr j
    done;
    Array.unsafe_set idx (!j + 1) key
  done;
  let ok = ref true in
  for j = 0 to n - 2 do
    let prev = Array.unsafe_get idx j and next = Array.unsafe_get idx (j + 1) in
    if
      Array.unsafe_get shifts next
      < Array.unsafe_get shifts prev + Array.unsafe_get gammas prev + 1
    then ok := false
  done;
  !ok

let check_gammas name gammas =
  Array.iter (fun g -> if g < 0 then invalid_arg (name ^ ": negative segment length")) gammas

let sample rng gammas =
  check_gammas "Process.sample" gammas;
  let shifts = Array.map (fun _ -> Rng.geometric_half rng) gammas in
  { shifts; disjoint = disjoint ~shifts ~gammas }

let sample_geom ~q rng gammas =
  if not (q > 0.0 && q < 1.0) then invalid_arg "Process.sample_geom: q must be in (0,1)";
  check_gammas "Process.sample_geom" gammas;
  (* geometric(q) failures-before-success with success probability 1 - q *)
  let shifts = Array.map (fun _ -> Rng.geometric rng (1.0 -. q)) gammas in
  { shifts; disjoint = disjoint ~shifts ~gammas }

(* streaming workers: scratch allocated once per worker domain, then each
   trial draws the shifts in index order (the same sequence as [sample]'s
   [Array.map]) and checks disjointness in place *)
let worker_half gammas () =
  let n = Array.length gammas in
  let shifts = Array.make n 0 and idx = Array.make n 0 in
  fun r ->
    for i = 0 to n - 1 do
      Array.unsafe_set shifts i (Rng.geometric_half r)
    done;
    disjoint_scratch ~shifts ~idx ~gammas

let worker_geom ~q gammas () =
  let n = Array.length gammas in
  let p = 1.0 -. q in
  let shifts = Array.make n 0 and idx = Array.make n 0 in
  fun r ->
    for i = 0 to n - 1 do
      Array.unsafe_set shifts i (Rng.geometric r p)
    done;
    disjoint_scratch ~shifts ~idx ~gammas

let bernoulli_of_streamed (s : int Par.streamed) =
  let successes = s.Par.value and trials = s.Par.trials_done in
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { s with Par.value }

let estimate ?jobs ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate: trials must be positive";
  check_gammas "Process.estimate" gammas;
  let s = Par.count_streaming ?jobs ~max_trials:trials ~worker:(worker_half gammas) rng in
  (bernoulli_of_streamed s).Par.value

let estimate_geom ?jobs ~q ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate_geom: trials must be positive";
  if not (q > 0.0 && q < 1.0) then invalid_arg "Process.sample_geom: q must be in (0,1)";
  check_gammas "Process.estimate_geom" gammas;
  let s = Par.count_streaming ?jobs ~max_trials:trials ~worker:(worker_geom ~q gammas) rng in
  (bernoulli_of_streamed s).Par.value

let estimate_adaptive ?jobs ?chunk ?budget ?report ?report_every ~target_width ~max_trials rng
    gammas =
  if max_trials <= 0 then invalid_arg "Process.estimate_adaptive: max_trials must be positive";
  check_gammas "Process.estimate_adaptive" gammas;
  let s =
    Par.count_streaming ?jobs ?chunk ?budget ~target_width ?report ?report_every ~max_trials
      ~worker:(worker_half gammas) rng
  in
  bernoulli_of_streamed s

(* -- closure-based reference path --------------------------------------- *)

(* The pre-streaming estimators (fresh shift/index arrays per trial), kept
   for differential tests and benchmarks. *)
module Reference = struct
  let estimate ?jobs ~trials rng gammas =
    if trials <= 0 then invalid_arg "Process.estimate: trials must be positive";
    let successes = Par.count ?jobs ~trials (fun r -> (sample r gammas).disjoint) rng in
    (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)

  let estimate_geom ?jobs ~q ~trials rng gammas =
    if trials <= 0 then invalid_arg "Process.estimate_geom: trials must be positive";
    let successes = Par.count ?jobs ~trials (fun r -> (sample_geom ~q r gammas).disjoint) rng in
    (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
end

let estimate_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
    ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate: trials must be positive";
  let g =
    Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
      ~trials
      (fun r -> (sample r gammas).disjoint)
      rng
  in
  let successes = g.Par.value in
  let trials = g.Par.run_stats.Par.trials_done in
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { g with Par.value }
