module Rng = Memrel_prob.Rng
module Stats = Memrel_prob.Stats

type sample = { shifts : int array; disjoint : bool }

let disjoint ~shifts ~gammas =
  let n = Array.length shifts in
  if n <> Array.length gammas then invalid_arg "Process.disjoint: length mismatch";
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare shifts.(a) shifts.(b)) idx;
  let ok = ref true in
  for j = 0 to n - 2 do
    let prev = idx.(j) and next = idx.(j + 1) in
    if shifts.(next) < shifts.(prev) + gammas.(prev) + 1 then ok := false
  done;
  !ok

let sample rng gammas =
  Array.iter (fun g -> if g < 0 then invalid_arg "Process.sample: negative segment length") gammas;
  let shifts = Array.map (fun _ -> Rng.geometric_half rng) gammas in
  { shifts; disjoint = disjoint ~shifts ~gammas }

let sample_geom ~q rng gammas =
  if not (q > 0.0 && q < 1.0) then invalid_arg "Process.sample_geom: q must be in (0,1)";
  Array.iter (fun g -> if g < 0 then invalid_arg "Process.sample_geom: negative segment length") gammas;
  (* geometric(q) failures-before-success with success probability 1 - q *)
  let shifts = Array.map (fun _ -> Rng.geometric rng (1.0 -. q)) gammas in
  { shifts; disjoint = disjoint ~shifts ~gammas }

let estimate_geom ?jobs ~q ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate_geom: trials must be positive";
  let successes =
    Memrel_prob.Par.count ?jobs ~trials (fun r -> (sample_geom ~q r gammas).disjoint) rng
  in
  (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)

let estimate ?jobs ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate: trials must be positive";
  let successes =
    Memrel_prob.Par.count ?jobs ~trials (fun r -> (sample r gammas).disjoint) rng
  in
  (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)

let estimate_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume ?max_retries ?fault
    ~trials rng gammas =
  if trials <= 0 then invalid_arg "Process.estimate: trials must be positive";
  let g =
    Memrel_prob.Par.count_governed ?jobs ?budget ?checkpoint ?checkpoint_every ?resume
      ?max_retries ?fault ~trials
      (fun r -> (sample r gammas).disjoint)
      rng
  in
  let successes = g.Memrel_prob.Par.value in
  let trials = g.Memrel_prob.Par.run_stats.Memrel_prob.Par.trials_done in
  let value =
    if trials = 0 then (Float.nan, { Stats.lo = 0.0; hi = 1.0 })
    else (Stats.binomial_point ~successes ~trials, Stats.wilson_ci ~successes ~trials ~z:1.96)
  in
  { g with Memrel_prob.Par.value }
