module IntMap = Memrel_machine.State.IntMap
module Instr = Memrel_machine.Instr
module State = Memrel_machine.State

type t = {
  events : Event.t array;
  programs : Instr.t array array;
  initial_mem : (int * int) list;
  rf : int option array;
  co : (int * int list) list;
}

let initial_value c loc = Option.value ~default:0 (List.assoc_opt loc c.initial_mem)

let co_order c loc = Option.value ~default:[] (List.assoc_opt loc c.co)

(* coherence successors of write [w] at its location *)
let co_after c w =
  let rec tail = function
    | [] -> []
    | x :: rest -> if x = w then rest else tail rest
  in
  tail (co_order c c.events.(w).Event.loc)

let fr_targets c r =
  let succs =
    match c.rf.(r) with
    | Some w -> co_after c w
    | None -> co_order c c.events.(r).Event.loc
  in
  List.filter (fun w' -> w' <> r) succs

let apply_binop op a b =
  match op with Instr.Add -> a + b | Instr.Sub -> a - b | Instr.Mul -> a * b

(* Values are determined by rf alone: registers are thread-local dataflow,
   so once every load's rf source is fixed each value is forced. Resolution
   follows ACTUAL dependencies only — an operand walks back to its last
   register writer, a load to its rf source — never the whole program-order
   prefix: a store of an immediate must not depend on an unrelated earlier
   load, or independent cross-thread load/store pairs (LB-style) would look
   circular. Genuine value cycles are impossible in accepted candidates:
   they are in particular po-with-register-conflict / rf cycles, and every
   discipline's axioms contain those edges (TSO/PSO preserve R->W order;
   WO's conflicts include register hazards; rf is always constrained) — the
   [visiting] flag guards the invariant rather than relying on it. *)
type values = { read_v : int array; write_v : int array; regs : int IntMap.t array }

let compute c =
  let n = Array.length c.events in
  let read_memo = Array.make n None and write_memo = Array.make n None in
  let visiting = Array.make n false in
  let event_at = Hashtbl.create (2 * n) in
  Array.iter (fun (e : Event.t) -> Hashtbl.replace event_at (e.Event.thread, e.Event.index) e.Event.id) c.events;
  (* value of register [r] as seen by instruction [index] of [thread]:
     whatever its most recent program-order writer produced, 0 if none *)
  let rec reg_value thread r index =
    let prog = c.programs.(thread) in
    let rec last_writer j =
      if j < 0 then None
      else if Instr.writes_reg prog.(j) = Some r then Some j
      else last_writer (j - 1)
    in
    match last_writer (index - 1) with
    | None -> 0
    | Some j -> (
      match prog.(j) with
      | Instr.Load _ | Instr.Rmw _ -> read_value (Hashtbl.find event_at (thread, j))
      | Instr.Binop { op; a; b; _ } ->
        apply_binop op (operand_value thread a j) (operand_value thread b j)
      | Instr.Store _ | Instr.Fence _ -> assert false)
  and operand_value thread op index =
    match op with Instr.Imm i -> i | Instr.Reg r -> reg_value thread r index
  and read_value id =
    match read_memo.(id) with
    | Some v -> v
    | None ->
      let v =
        match c.rf.(id) with
        | None -> initial_value c c.events.(id).Event.loc
        | Some w -> write_value w
      in
      read_memo.(id) <- Some v;
      v
  and write_value id =
    match write_memo.(id) with
    | Some v -> v
    | None ->
      if visiting.(id) then failwith "Candidate.compute: value-dependency cycle";
      visiting.(id) <- true;
      let e = c.events.(id) in
      let v =
        match c.programs.(e.Event.thread).(e.Event.index) with
        | Instr.Store { src; _ } -> operand_value e.Event.thread src e.Event.index
        | Instr.Rmw { op; operand; _ } ->
          apply_binop op (read_value id) (operand_value e.Event.thread operand e.Event.index)
        | Instr.Load _ | Instr.Binop _ | Instr.Fence _ ->
          failwith "Candidate.compute: write event on a non-store instruction"
      in
      visiting.(id) <- false;
      write_memo.(id) <- Some v;
      v
  in
  let read_v = Array.make n 0 and write_v = Array.make n 0 in
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_read e then read_v.(e.Event.id) <- read_value e.Event.id;
      if Event.is_write e then write_v.(e.Event.id) <- write_value e.Event.id)
    c.events;
  let regs =
    Array.mapi
      (fun thread prog ->
        let written = ref IntMap.empty in
        Array.iteri
          (fun _ ins ->
            match Instr.writes_reg ins with
            | Some r ->
              written := IntMap.add r (reg_value thread r (Array.length prog)) !written
            | None -> ())
          prog;
        !written)
      c.programs
  in
  { read_v; write_v; regs }

(* the terminal machine state this candidate denotes: memory holds each
   location's coherence-maximal write, registers the full program-order
   replay, buffers empty — exactly the shape [Enumerate]'s terminal states
   have, so one [observe] function serves both sides of the differential *)
let to_state c =
  let v = compute c in
  let mem =
    List.fold_left (fun m (loc, x) -> IntMap.add loc x m) IntMap.empty c.initial_mem
  in
  let mem =
    List.fold_left
      (fun m (loc, order) ->
        match List.rev order with [] -> m | last :: _ -> IntMap.add loc v.write_v.(last) m)
      mem c.co
  in
  let threads =
    Array.mapi
      (fun k prog ->
        { State.prog;
          executed = (1 lsl Array.length prog) - 1;
          regs = v.regs.(k);
          fifo = [];
          perloc = IntMap.empty })
      c.programs
  in
  { State.mem; threads }

let outcome c ~observe = observe (to_state c)

let describe ?loc_name c =
  let v = compute c in
  let value_note (e : Event.t) =
    match e.Event.dir with
    | Event.R -> Printf.sprintf " = %d" v.read_v.(e.Event.id)
    | Event.W -> Printf.sprintf " := %d" v.write_v.(e.Event.id)
    | Event.U -> Printf.sprintf " = %d := %d" v.read_v.(e.Event.id) v.write_v.(e.Event.id)
  in
  let threads =
    List.mapi
      (fun k _ ->
        Array.to_list c.events
        |> List.filter (fun (e : Event.t) -> e.Event.thread = k)
        |> List.map (fun e -> Event.describe ?loc_name e ^ value_note e))
      (Array.to_list c.programs)
  in
  let lbl id = Event.label c.events.(id) in
  let edges = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_read e then begin
        (match c.rf.(e.Event.id) with
        | Some w -> edges := ("rf", lbl w, lbl e.Event.id) :: !edges
        | None -> edges := ("rf", "init", lbl e.Event.id) :: !edges);
        List.iter (fun w' -> edges := ("fr", lbl e.Event.id, lbl w') :: !edges)
          (fr_targets c e.Event.id)
      end)
    c.events;
  List.iter
    (fun (_, order) ->
      let rec consecutive = function
        | a :: (b :: _ as rest) ->
          edges := ("co", lbl a, lbl b) :: !edges;
          consecutive rest
        | _ -> ()
      in
      consecutive order)
    c.co;
  Memrel_trace.Render.event_graph ~title:"candidate execution" ~threads
    ~edges:(List.rev !edges)
