(** Axiomatic-vs-operational differential validation.

    For a litmus test and a model family, compares the outcome set allowed
    by the axioms with the outcome set reachable by the operational
    machine ({!Memrel_machine.Litmus.run_exhaustive}). The axiomatic side
    can run on either engine — the reference generate-and-prune
    enumeration ({!Generate}) or the conflict-driven solver ({!Solver}) —
    and {!three_way} runs both, additionally requiring their per-outcome
    candidate counts to be identical: the engines claim to walk the same
    decision tree, and the count equality is what holds them to it.
    Disagreements carry a rendered counterexample event graph when the
    axiomatic side has a witness. A budgeted run that comes back partial
    {e refuses} the comparison (partial coverage is sound for "allowed",
    never for "forbidden") instead of reporting false disagreements. *)

type engine = Generate_engine | Solver_engine

val engine_name : engine -> string
(** ["generate"] / ["solver"] — the CLI's [--engine] vocabulary. *)

(** The axiomatic run's statistics, tagged by which engine produced
    them. *)
type engine_stats = Generated of Generate.stats | Solved of Solver.stats

val stats_accepted : engine_stats -> int
val stats_elapsed : engine_stats -> float
val stats_log10_naive_space : engine_stats -> float
val stats_exhausted : engine_stats -> Memrel_prob.Budget.exhaustion option

type disagreement = {
  outcome : Memrel_machine.Litmus.outcome;
  axiomatic : bool;  (** allowed by the axioms *)
  operational : bool;  (** reachable by the machine *)
  witness : string option;
      (** rendered event graph of an axiomatic witness execution; [None]
          for operational-only outcomes (the axioms are too strong — there
          is no candidate to draw) *)
}

type report = {
  test : string;
  family : Memrel_memmodel.Model.family;
  window : int;
  engine : engine;
  axiomatic : Memrel_machine.Litmus.outcome list;
  operational : Memrel_machine.Litmus.outcome list;
  agree : bool;  (** the two outcome sets are equal (always [false] when
                     [partial] — an unfinished side proves nothing) *)
  partial : bool;
      (** some side exhausted its budget/state cap; the comparison was
          refused and [disagreements] is empty *)
  disagreements : disagreement list;
  stats : engine_stats;
  operational_states : int;  (** distinct terminal states explored *)
}

val standard_families : Memrel_memmodel.Model.family list
(** SC, TSO, PSO, WO — the four paper models. *)

val run :
  ?window:int ->
  ?max_states:int ->
  ?por:bool ->
  ?budget:Memrel_prob.Budget.t ->
  ?engine:engine ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  report
(** One test under one model. [window] (default 8) is used on both sides;
    [max_states] and [por] go to the operational enumerator; [budget] to
    the axiomatic engine (default {!Generate_engine}). *)

val run_corpus :
  ?window:int -> ?max_states:int -> ?por:bool -> ?engine:engine -> unit -> report list
(** Every corpus test under every standard family. *)

type three_way = {
  solver_report : report;  (** solver vs operational *)
  generate_stats : Generate.stats;
  solver_stats : Solver.stats;
  counts_agree : bool;
      (** generate and solver produced identical (outcome, candidate
          count) lists — leaf-set equality, not just outcome equality *)
  agree : bool;  (** [solver_report.agree && counts_agree] *)
}

val three_way :
  ?window:int ->
  ?max_states:int ->
  ?por:bool ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  three_way
(** Solver = generate-and-prune = operational, in one verdict. *)

val outcome_to_string : Memrel_machine.Litmus.outcome -> string

val describe : report -> string
(** Human-readable summary; includes counterexample graphs on
    disagreement. *)
