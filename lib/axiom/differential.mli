(** Axiomatic-vs-operational differential validation.

    For a litmus test and a model family, compares the outcome set allowed
    by the axioms ({!Generate.run}) with the outcome set reachable by the
    operational machine ({!Memrel_machine.Litmus.run_exhaustive}). The two
    semantics are implemented independently — event graphs with acyclicity
    axioms on one side, an exhaustively explored transition system on the
    other — so set equality on every corpus test under every model is
    strong evidence both encode the same memory model. Disagreements carry
    a rendered counterexample event graph when the axiomatic side has a
    witness. *)

type disagreement = {
  outcome : Memrel_machine.Litmus.outcome;
  axiomatic : bool;  (** allowed by the axioms *)
  operational : bool;  (** reachable by the machine *)
  witness : string option;
      (** rendered event graph of an axiomatic witness execution; [None]
          for operational-only outcomes (the axioms are too strong — there
          is no candidate to draw) *)
}

type report = {
  test : string;
  family : Memrel_memmodel.Model.family;
  window : int;
  axiomatic : Memrel_machine.Litmus.outcome list;
  operational : Memrel_machine.Litmus.outcome list;
  agree : bool;  (** the two outcome sets are equal *)
  disagreements : disagreement list;
  stats : Generate.stats;
  operational_states : int;  (** distinct terminal states explored *)
}

val standard_families : Memrel_memmodel.Model.family list
(** SC, TSO, PSO, WO — the four paper models. *)

val run :
  ?window:int ->
  ?max_states:int ->
  ?por:bool ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  report
(** One test under one model. [window] (default 8) is used on both sides;
    [max_states] and [por] go to the operational enumerator. *)

val run_corpus :
  ?window:int -> ?max_states:int -> ?por:bool -> unit -> report list
(** Every corpus test under every standard family. *)

val outcome_to_string : Memrel_machine.Litmus.outcome -> string

val describe : report -> string
(** Human-readable summary; includes counterexample graphs on
    disagreement. *)
