(** Candidate-execution generation with incremental axiomatic pruning.

    Enumerates the executions of a litmus program allowed by a memory
    model's axioms (see {!Axioms}): first the coherence order per location
    (as a permutation, committing only consecutive edges — transitive
    closure maintenance makes that sufficient), then a reads-from source
    per read (the initial value or any same-location write), deriving the
    from-reads edges as each rf choice is made. Every partial choice is
    checked against all of the model's acyclicity instances immediately, so
    an inconsistent branch is abandoned at its first bad edge instead of
    being completed and filtered — the [pruned] / [naive_space] statistics
    quantify how much of the naive space is never visited. Every leaf the
    search reaches is therefore an allowed candidate execution. *)

type stats = {
  events : int;
  accepted : int;  (** allowed candidate executions visited *)
  co_branches : int;  (** coherence-order extension attempts *)
  rf_branches : int;  (** reads-from assignment attempts *)
  pruned : int;  (** dynamic edge insertions rejected by a cycle check *)
  log10_naive_space : float;
      (** log10 of |co permutations| x |rf assignments| — the space a
          generate-then-filter enumeration would visit, in log space so
          solver-scale event graphs cannot overflow it
          ({!Event.log10_naive_space}) *)
  naive_space : float;
      (** linear-space convenience, [10 ** log10_naive_space] clamped to
          [max_float] — never [infinity]/[nan] (the seed's float-factorial
          product overflowed around 171 same-location writes) *)
  pruning_ratio : float;  (** pruned / (co_branches + rf_branches) *)
  elapsed_s : float;
  candidates_per_sec : float;  (** accepted / elapsed *)
  exhausted : Memrel_prob.Budget.exhaustion option;
      (** [None] iff the enumeration ran to completion. [Some _] marks a
          {e partial} enumeration: the candidates visited before a
          {!Memrel_prob.Budget} limit tripped (work units are accepted
          candidates, so a [max_work] cap bounds the candidate count; the
          deadline and memory watermark cap the search itself). Partial
          coverage is a subset of the allowed executions — sound for
          "allowed", never for "forbidden". *)
}

val naive_space_of_log10 : float -> float
(** The clamp behind [stats.naive_space]: [10 ** lg], saturating at
    [max_float]. Exposed for the overflow regression tests. *)

val iter :
  ?window:int ->
  ?budget:Memrel_prob.Budget.t ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  (Candidate.t -> unit) ->
  stats
(** Visit every allowed candidate execution. [window] (default 8) sizes the
    WO reorder window, matching {!Memrel_machine.Semantics.of_model}.
    [budget] is checked at every branch attempt and one work unit is spent
    per accepted candidate; on exhaustion the search stops and the returned
    stats carry [exhausted = Some _]. Raises [Invalid_argument] for
    [Custom] models and for programs with more than {!Order.max_vertices}
    memory events. *)

type entry = {
  outcome : Memrel_machine.Litmus.outcome;
  candidates : int;  (** allowed candidate executions observing it *)
  witness : Candidate.t;  (** one of them, for rendering *)
}

type run = { stats : stats; entries : entry list }

val run :
  ?window:int ->
  ?budget:Memrel_prob.Budget.t ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  run
(** Group the allowed executions by observed outcome, sorted by outcome —
    the axiomatic side of the differential check. With a [budget], a
    partial run groups only the candidates visited before exhaustion
    ([stats.exhausted] says so) — callers must not treat a partial outcome
    set as complete (the CLI skips the differential comparison then). *)

val outcome_set :
  ?window:int ->
  ?budget:Memrel_prob.Budget.t ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  Memrel_machine.Litmus.outcome list
(** Just the distinct outcomes, sorted — directly comparable with
    {!Memrel_machine.Litmus.outcome_set} (only when complete; see
    {!run}). *)
