module Op = Memrel_memmodel.Op
module Instr = Memrel_machine.Instr

type dir = R | W | U

type t = { id : int; thread : int; index : int; dir : dir; loc : int }

let is_read e = match e.dir with R | U -> true | W -> false
let is_write e = match e.dir with W | U -> true | R -> false
let same_loc a b = a.loc = b.loc
let same_thread a b = a.thread = b.thread

let kinds e = match e.dir with R -> [ Op.LD ] | W -> [ Op.ST ] | U -> [ Op.LD; Op.ST ]

let dir_to_string = function R -> "R" | W -> "W" | U -> "U"

let label e = Printf.sprintf "e%d" e.id

let describe ?(loc_name = fun l -> Printf.sprintf "m%d" l) e =
  Printf.sprintf "e%d: %s %s @%d" e.id (dir_to_string e.dir) (loc_name e.loc) e.index

let of_programs programs =
  let events = ref [] and id = ref 0 in
  List.iteri
    (fun thread prog ->
      Array.iteri
        (fun index ins ->
          let mk dir loc =
            events := { id = !id; thread; index; dir; loc } :: !events;
            incr id
          in
          match ins with
          | Instr.Load { loc; _ } -> mk R loc
          | Instr.Store { loc; _ } -> mk W loc
          | Instr.Rmw { loc; _ } -> mk U loc
          | Instr.Binop _ | Instr.Fence _ -> ())
        prog)
    programs;
  Array.of_list (List.rev !events)

let locations events =
  let locs = ref [] in
  Array.iter (fun e -> if not (List.mem e.loc !locs) then locs := e.loc :: !locs) events;
  List.sort compare !locs

(* |co permutations| x |rf assignments| in log space: the linear-space
   product of float factorials overflows to infinity around 171 events at
   one location, and a solver-scale event graph can get there. *)
let log10_naive_space events =
  let log10_factorial m =
    let acc = ref 0.0 in
    for k = 2 to m do
      acc := !acc +. log10 (float_of_int k)
    done;
    !acc
  in
  let locs = locations events in
  let writes_at loc =
    Array.to_list events |> List.filter (fun e -> is_write e && e.loc = loc)
  in
  let co =
    List.fold_left (fun acc loc -> acc +. log10_factorial (List.length (writes_at loc))) 0.0
      locs
  in
  Array.fold_left
    (fun acc e ->
      if is_read e then
        let others = List.length (List.filter (fun w -> w.id <> e.id) (writes_at e.loc)) in
        acc +. log10 (float_of_int (1 + others))
      else acc)
    co events
