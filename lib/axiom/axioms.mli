(** Per-model acceptance conditions over candidate executions.

    Each memory model is rendered as a conjunction of acyclicity axioms.
    An {!instance} is one such axiom: a set of static edges (derived from
    program order, the Table-1 reordering matrix of
    {!Memrel_memmodel.Model}, and fences) plus a selector saying which
    communication edges (rf / co / fr) the axiom constrains. The generator
    keeps one incremental {!Order} per instance and rejects an rf/co
    choice the moment any instance's order would close a cycle.

    - SC: one instance; static = full program order, all com edges.
    - TSO/PSO: a global-happens-before instance (static = matrix-preserved
      program order plus Full/Release fence edges; rf counted only when
      external, reflecting store-to-load forwarding) and an SC-per-location
      instance (static = same-location program order, all com edges).
      Update events are both LD and ST and additionally preserved outright,
      matching the locked drain-the-buffer implementation.
    - WO: one instance; static = transitive closure of the window machine's
      issue constraints ([Semantics.conflicts] plus the bounded-window
      edges), restricted to memory events; all com edges. *)

type com = Rf | Co | Fr

type instance = {
  iname : string;  (** for diagnostics: ["hb"], ["ghb"], ["sc-per-loc"] *)
  static_edges : (int * int) list;  (** event-id pairs, installed once *)
  wants : com -> internal:bool -> bool;
      (** does this axiom constrain the given communication edge?
          [internal] = both endpoints on the same thread. *)
}

val instances :
  Memrel_machine.Semantics.discipline ->
  Memrel_machine.Instr.t array list ->
  Event.t array ->
  instance list
(** The acceptance condition of a discipline over the given program's
    events. A candidate execution is allowed iff every instance's relation
    (static edges plus selected com edges) is acyclic. *)

val fence_edges :
  Memrel_machine.Instr.t array list -> Event.t array -> (int * int) list
(** Ordering edges contributed by Full/Release fences: per-thread event
    slices only (the seed scanned the whole event array twice per fence —
    O(fences * E^2)), emitting a transitively-irredundant subset whose
    closure equals the full before x after product. Exposed with
    {!fence_edges_reference} for the corpus-wide closure-equality test. *)

val fence_edges_reference :
  Memrel_machine.Instr.t array list -> Event.t array -> (int * int) list
(** The seed's dense emission — the oracle: closure(fence_edges) must equal
    closure(fence_edges_reference) on every program. *)
