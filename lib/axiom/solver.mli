(** Conflict-driven enumeration of allowed candidate executions.

    The solver walks the {e same} decision tree as {!Generate} — a
    coherence-order slot per location then a reads-from source per read,
    values in the same sequence — so the two engines accept the same
    candidate set and their per-outcome candidate counts are directly
    comparable (the differential harness pins both). The difference is
    machinery: trail-based incremental acyclicity with per-instance
    watched wakeups, root propagation (static rf-domain filtering, forced
    assignments, cross-instance implied coherence edges recorded in a
    {!Relations} layer and turned into must-precede pruning), conflict
    analysis that recovers the decision levels a detected cycle actually
    depends on, backjumping over levels that provably did not contribute
    (guarded so only leafless subtrees are skipped), and memoized leaf
    outcomes keyed by the rf vector and each location's coherence-maximal
    write. *)

type stats = {
  events : int;
  accepted : int;  (** allowed candidate executions visited *)
  decisions : int;  (** co/rf value attempts (skips by pruning excluded) *)
  propagations : int;  (** edges installed into watching instances *)
  conflicts : int;  (** edge insertions rejected by a cycle check *)
  backjumps : int;  (** decision levels skipped by conflict analysis *)
  forced : int;  (** root-propagation facts: forced rf + implied co *)
  memo_hits : int;  (** leaves answered by the outcome memo table *)
  distinct_keys : int;  (** distinct (rf, co-last) keys seen at leaves *)
  log10_naive_space : float;  (** as {!Generate.stats} *)
  naive_space : float;  (** as {!Generate.stats} *)
  elapsed_s : float;
  candidates_per_sec : float;
  exhausted : Memrel_prob.Budget.exhaustion option;
      (** [None] iff the enumeration ran to completion — the same partial
          contract as {!Generate.stats}: work units are accepted
          candidates, a partial run is sound for "allowed" only. *)
}

type entry = {
  outcome : Memrel_machine.Litmus.outcome;
  candidates : int;  (** allowed candidate executions observing it *)
  witness : Candidate.t;
}

type run = { stats : stats; entries : entry list }

val run :
  ?window:int ->
  ?budget:Memrel_prob.Budget.t ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  run
(** Enumerate and group by observed outcome, sorted by outcome — entry
    outcomes {e and} candidate counts must equal {!Generate.run}'s on a
    complete run. [window] sizes the WO reorder window. [budget] is
    checked at every decision and one work unit is spent per accepted
    candidate. Raises [Invalid_argument] for [Custom] models and programs
    beyond {!Order.max_vertices} events. *)

val outcome_set :
  ?window:int ->
  ?budget:Memrel_prob.Budget.t ->
  Memrel_machine.Litmus.t ->
  Memrel_memmodel.Model.family ->
  Memrel_machine.Litmus.outcome list
(** Just the distinct outcomes, sorted — comparable with
    {!Memrel_machine.Litmus.outcome_set} and {!Generate.outcome_set} (only
    when complete). *)
