module Model = Memrel_memmodel.Model
module Semantics = Memrel_machine.Semantics
module Litmus = Memrel_machine.Litmus

type stats = {
  events : int;
  accepted : int;
  co_branches : int;
  rf_branches : int;
  pruned : int;
  log10_naive_space : float;
  naive_space : float;
  pruning_ratio : float;
  elapsed_s : float;
  candidates_per_sec : float;
  exhausted : Memrel_prob.Budget.exhaustion option;
}

(* the clamped linear-space convenience: exact for the sizes a human reads
   off a report, saturating (never infinity/nan) beyond float range — the
   seed multiplied float factorials, which overflows to infinity around 171
   same-location writes and turns downstream ratios into nan *)
let naive_space_of_log10 lg =
  if lg > 308.0 then max_float else 10.0 ** lg

let iter ?(window = 8) ?budget (t : Litmus.t) family f =
  let t0 = Unix.gettimeofday () in
  let events = Event.of_programs t.Litmus.programs in
  let n = Array.length events in
  if n > Order.max_vertices then
    invalid_arg
      (Printf.sprintf "Generate.iter: %d events (at most %d supported)" n Order.max_vertices);
  let discipline = Semantics.of_model ~window family in
  let orders =
    List.map
      (fun inst -> (inst, Order.create n))
      (Axioms.instances discipline t.Litmus.programs events)
  in
  (* static edges are suborders of per-thread program order, so installing
     them can never cycle *)
  List.iter
    (fun ((inst : Axioms.instance), ord) ->
      List.iter
        (fun (u, v) ->
          if not (Order.add ord u v) then
            failwith (Printf.sprintf "Generate.iter: static edges of %s cyclic" inst.Axioms.iname))
        inst.Axioms.static_edges)
    orders;
  let static_rejections =
    List.fold_left (fun acc (_, ord) -> acc + Order.rejections ord) 0 orders
  in
  let locs = Event.locations events in
  let ids p = Array.to_list events |> List.filter p |> List.map (fun (e : Event.t) -> e.Event.id) in
  let writes_at loc = ids (fun e -> Event.is_write e && e.Event.loc = loc) in
  let reads = ids Event.is_read in
  let log10_naive_space = Event.log10_naive_space events in
  let push_all () = List.iter (fun (_, ord) -> Order.push ord) orders in
  let pop_all () = List.iter (fun (_, ord) -> Order.pop ord) orders in
  let internal u v = Event.same_thread events.(u) events.(v) in
  (* List.for_all short-circuits on the first rejected edge; that leaves
     some orders partially updated, which is fine — the caller always
     restores the pushed snapshots before trying the next choice *)
  let add_edges edges =
    List.for_all
      (fun (com, u, v) ->
        List.for_all
          (fun ((inst : Axioms.instance), ord) ->
            (not (inst.Axioms.wants com ~internal:(internal u v))) || Order.add ord u v)
          orders)
      edges
  in
  (* budget exhaustion abandons the whole search tree in one unwind; the
     skipped [pop_all]s leave the orders partially updated, which is fine —
     they are discarded with the search *)
  let exception Stop of Memrel_prob.Budget.cause in
  let exhausted = ref None in
  let attempt edges k =
    (match budget with
     | None -> ()
     | Some b -> (
       match Memrel_prob.Budget.check b with Some cause -> raise (Stop cause) | None -> ()));
    push_all ();
    if add_edges edges then k ();
    pop_all ()
  in
  let accepted = ref 0 and co_branches = ref 0 and rf_branches = ref 0 in
  let co_tbl : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let rf = Array.make (max n 1) None in
  let programs = Array.of_list t.Litmus.programs in
  let leaf () =
    incr accepted;
    (match budget with Some b -> Memrel_prob.Budget.spend b 1 | None -> ());
    f
      { Candidate.events;
        programs;
        initial_mem = t.Litmus.initial_mem;
        rf = Array.copy rf;
        co = List.map (fun loc -> (loc, Option.value ~default:[] (Hashtbl.find_opt co_tbl loc))) locs }
  in
  let co_successors loc w =
    let rec tail = function [] -> [] | x :: rest -> if x = w then rest else tail rest in
    tail (Option.value ~default:[] (Hashtbl.find_opt co_tbl loc))
  in
  let rec choose_rf = function
    | [] -> leaf ()
    | r :: rest ->
      let loc = events.(r).Event.loc in
      let sources = List.filter (fun w -> w <> r) (writes_at loc) in
      List.iter
        (fun source ->
          incr rf_branches;
          rf.(r) <- source;
          let frs =
            List.filter (fun w' -> w' <> r)
              (match source with
              | Some w -> co_successors loc w
              | None -> Option.value ~default:[] (Hashtbl.find_opt co_tbl loc))
          in
          let edges =
            (match source with Some w -> [ (Axioms.Rf, w, r) ] | None -> [])
            @ List.map (fun w' -> (Axioms.Fr, r, w')) frs
          in
          attempt edges (fun () -> choose_rf rest))
        (None :: List.map (fun w -> Some w) sources)
  in
  let rec choose_co = function
    | [] -> choose_rf reads
    | loc :: rest ->
      (* enumerate the total coherence order per location; only consecutive
         edges are installed — transitivity is the closure's job *)
      let rec perm chosen_rev remaining =
        match remaining with
        | [] ->
          Hashtbl.replace co_tbl loc (List.rev chosen_rev);
          choose_co rest;
          Hashtbl.remove co_tbl loc
        | _ ->
          List.iter
            (fun w ->
              incr co_branches;
              let edges =
                match chosen_rev with [] -> [] | prev :: _ -> [ (Axioms.Co, prev, w) ]
              in
              attempt edges (fun () ->
                  perm (w :: chosen_rev) (List.filter (fun x -> x <> w) remaining)))
            remaining
      in
      perm [] (writes_at loc)
  in
  (try
     (match budget with
      | None -> ()
      | Some b -> (
        match Memrel_prob.Budget.check b with Some cause -> raise (Stop cause) | None -> ()));
     choose_co locs
   with Stop cause ->
     exhausted :=
       Some (match budget with Some b -> Memrel_prob.Budget.exhaustion b cause | None -> assert false));
  let pruned =
    List.fold_left (fun acc (_, ord) -> acc + Order.rejections ord) 0 orders
    - static_rejections
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let explored = !co_branches + !rf_branches in
  {
    events = n;
    accepted = !accepted;
    co_branches = !co_branches;
    rf_branches = !rf_branches;
    pruned;
    log10_naive_space;
    naive_space = naive_space_of_log10 log10_naive_space;
    pruning_ratio =
      (if explored = 0 then 0.0 else float_of_int pruned /. float_of_int explored);
    elapsed_s;
    candidates_per_sec =
      (if elapsed_s > 0.0 then float_of_int !accepted /. elapsed_s else 0.0);
    exhausted = !exhausted;
  }

type entry = { outcome : Litmus.outcome; candidates : int; witness : Candidate.t }

type run = { stats : stats; entries : entry list }

let run ?window ?budget t family =
  let tbl : (Litmus.outcome, int * Candidate.t) Hashtbl.t = Hashtbl.create 64 in
  let stats =
    iter ?window ?budget t family (fun c ->
        let o = Candidate.outcome c ~observe:t.Litmus.observe in
        match Hashtbl.find_opt tbl o with
        | Some (count, w) -> Hashtbl.replace tbl o (count + 1, w)
        | None -> Hashtbl.add tbl o (1, c))
  in
  let entries =
    Hashtbl.fold (fun outcome (candidates, witness) acc -> { outcome; candidates; witness } :: acc) tbl []
    |> List.sort (fun a b -> compare a.outcome b.outcome)
  in
  { stats; entries }

let outcome_set ?window ?budget t family =
  List.map (fun e -> e.outcome) (run ?window ?budget t family).entries
