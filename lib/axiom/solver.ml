(* Conflict-driven enumeration of allowed candidate executions.

   Same decision tree as Generate — coherence order per location slot by
   slot (locations in sorted order, remaining writes in ascending-id
   order), then a reads-from source per read (initial value first, then
   writers ascending) — so the two engines visit the same set of leaves
   and their accepted-candidate counts are directly comparable. What
   changes is everything around the tree:

   - acyclicity propagates through the trail-based {!Order} (per-word undo
     records instead of whole-store snapshots), and an edge only touches
     the instances watching its (communication kind x internal) class;
   - root propagation runs a fixpoint before search: rf domains are
     filtered against the static closures, singleton domains become forced
     assignments installed as level-0 edges, and coherence edges any
     instance's closure already implies are installed into every instance
     and recorded in a union-find {!Relations} layer, which prunes the
     permutation enumeration via must-precede tables;
   - a rejected edge is explained: a breadth-first search over the
     installed edges of the rejecting instance recovers one cycle and the
     union of the decision levels its edges depend on becomes the conflict
     set, letting the search backjump over decision levels that provably
     did not contribute;
   - leaves are memoized: an accepted candidate's outcome is a function of
     its rf vector and each location's coherence-maximal write alone
     (register values are thread-local dataflow over rf; final memory is
     the co-last write's value), so when those fit one native int the
     leaf's outcome is a hash probe, not a candidate materialization.

   Backjumping over an ALL-solutions enumeration needs one extra care: a
   conflict set licenses skipping a level's remaining values only while no
   solution has been found below it (a solution depends on every decision
   above it, so once one is seen the level must be exhausted
   chronologically). With that guard only leafless subtrees are skipped
   and the leaf set — hence every outcome's candidate count — is exactly
   Generate's. *)

module Semantics = Memrel_machine.Semantics
module Litmus = Memrel_machine.Litmus
module Budget = Memrel_prob.Budget

type stats = {
  events : int;
  accepted : int;
  decisions : int;
  propagations : int;
  conflicts : int;
  backjumps : int;
  forced : int;
  memo_hits : int;
  distinct_keys : int;
  log10_naive_space : float;
  naive_space : float;
  elapsed_s : float;
  candidates_per_sec : float;
  exhausted : Budget.exhaustion option;
}

type entry = { outcome : Litmus.outcome; candidates : int; witness : Candidate.t }

type run = { stats : stats; entries : entry list }

type level_kind = Co_level of { loc : int; pos : int } | Rf_level of { read : int }

type verdict = Solution | Dead of int

let com_code = function Axioms.Rf -> 0 | Axioms.Co -> 1 | Axioms.Fr -> 2

let rec bits_needed v = if v = 0 then 0 else 1 + bits_needed (v lsr 1)

let run ?(window = 8) ?budget (t : Litmus.t) family =
  let t0 = Unix.gettimeofday () in
  let events = Event.of_programs t.Litmus.programs in
  let n = Array.length events in
  if n > Order.max_vertices then
    invalid_arg
      (Printf.sprintf "Solver.run: %d events (at most %d supported)" n Order.max_vertices);
  let discipline = Semantics.of_model ~window family in
  let insts = Array.of_list (Axioms.instances discipline t.Litmus.programs events) in
  let norders = Array.length insts in
  let orders = Array.map (fun _ -> Order.create n) insts in
  (* which instances care about an edge, by (com x internal) class *)
  let watch =
    Array.init 6 (fun code ->
        let com = [| Axioms.Rf; Axioms.Co; Axioms.Fr |].(code / 2) in
        let internal = code land 1 = 1 in
        let l = ref [] in
        for i = norders - 1 downto 0 do
          if insts.(i).Axioms.wants com ~internal then l := i :: !l
        done;
        Array.of_list !l)
  in
  let watch_for com u v =
    watch.((com_code com * 2) + if Event.same_thread events.(u) events.(v) then 1 else 0)
  in
  (* permanent edges (static + root-forced), per instance, for the conflict
     explainer's path search *)
  let static_adj = Array.init norders (fun _ -> Array.make (max n 1) []) in
  Array.iteri
    (fun oi (inst : Axioms.instance) ->
      List.iter
        (fun (u, v) ->
          if not (Order.reaches orders.(oi) u v) then
            if Order.add orders.(oi) u v then
              static_adj.(oi).(u) <- v :: static_adj.(oi).(u)
            else
              failwith
                (Printf.sprintf "Solver.run: static edges of %s cyclic" inst.Axioms.iname))
        inst.Axioms.static_edges)
    insts;
  let locs = Array.of_list (Event.locations events) in
  let nlocs = Array.length locs in
  let loc_index = Hashtbl.create 8 in
  Array.iteri (fun li loc -> Hashtbl.replace loc_index loc li) locs;
  let lidx = Array.map (fun (e : Event.t) -> Hashtbl.find loc_index e.Event.loc) events in
  let writes_at =
    Array.map
      (fun loc ->
        Array.to_seq events
        |> Seq.filter (fun (e : Event.t) -> Event.is_write e && e.Event.loc = loc)
        |> Seq.map (fun (e : Event.t) -> e.Event.id)
        |> Array.of_seq)
      locs
  in
  let reads =
    Array.to_seq events |> Seq.filter Event.is_read
    |> Seq.map (fun (e : Event.t) -> e.Event.id)
    |> Array.of_seq
  in
  let nreads = Array.length reads in
  let wr_idx = Array.make (max n 1) (-1) in
  Array.iter (fun ws -> Array.iteri (fun i w -> wr_idx.(w) <- i) ws) writes_at;
  (* decision levels: every co slot (locations in order), then every read *)
  let nco = Array.fold_left (fun a ws -> a + Array.length ws) 0 writes_at in
  let nlevels = nco + nreads in
  let level_kinds = Array.make (max nlevels 1) (Rf_level { read = 0 }) in
  let co_level_start = Array.make (max nlocs 1) 0 in
  let next_level = ref 0 in
  Array.iteri
    (fun li ws ->
      co_level_start.(li) <- !next_level;
      Array.iteri
        (fun pos _ ->
          level_kinds.(!next_level) <- Co_level { loc = li; pos };
          incr next_level)
        ws)
    writes_at;
  Array.iteri
    (fun ri _ ->
      level_kinds.(!next_level) <- Rf_level { read = ri };
      incr next_level)
    reads;
  (* conflict sets are int bitmasks over decision levels; past one int's
     worth they saturate to "depends on everything" and the search degrades
     to chronological backtracking — sound, just less informed *)
  let cbj = nlevels <= Sys.int_size - 2 in
  let bit l = if cbj then 1 lsl l else -1 in
  let strip l cs = if cbj then cs land lnot (1 lsl l) else -1 in
  let co_prefix_mask =
    Array.mapi
      (fun li ws ->
        Array.init (Array.length ws) (fun pos ->
            if cbj then ((1 lsl (pos + 1)) - 1) lsl co_level_start.(li) else -1))
      writes_at
  in
  let co_full_mask =
    Array.mapi
      (fun li ws ->
        let m = Array.length ws in
        if not cbj then -1 else if m = 0 then 0 else ((1 lsl m) - 1) lsl co_level_start.(li))
      writes_at
  in
  (* dynamic (decision-installed) edges per instance, per source vertex,
     with their reason masks; lengths rewind through a trail *)
  let dyn_tgt = Array.init norders (fun _ -> Array.init (max n 1) (fun _ -> Array.make 4 0)) in
  let dyn_msk = Array.init norders (fun _ -> Array.init (max n 1) (fun _ -> Array.make 4 0)) in
  let dyn_len = Array.make (norders * max n 1) 0 in
  let dyn_trail = Trail.create () in
  let restore_dyn slot old = dyn_len.(slot) <- old in
  let append_dyn oi u v mask =
    let slot = (oi * n) + u in
    let len = dyn_len.(slot) in
    if len = Array.length dyn_tgt.(oi).(u) then begin
      let grow a =
        let b = Array.make (2 * len) 0 in
        Array.blit a 0 b 0 len;
        b
      in
      dyn_tgt.(oi).(u) <- grow dyn_tgt.(oi).(u);
      dyn_msk.(oi).(u) <- grow dyn_msk.(oi).(u)
    end;
    dyn_tgt.(oi).(u).(len) <- v;
    dyn_msk.(oi).(u).(len) <- mask;
    Trail.save dyn_trail slot len;
    dyn_len.(slot) <- len + 1
  in
  let propagations = ref 0 and conflicts = ref 0 in
  let decisions = ref 0 and backjumps = ref 0 and forced = ref 0 in
  (* conflict analysis: [add u v] was rejected by instance [oi], so [v]
     already reaches [u] through installed edges; one BFS path recovers a
     cycle and the union of its edges' reason masks (static and root edges
     carry mask 0) plus the attempted edge's own mask is the conflict set *)
  let stamp = ref 0 in
  let seen = Array.make (max n 1) 0 in
  let parent = Array.make (max n 1) (-1) in
  let parent_mask = Array.make (max n 1) 0 in
  let queue = Array.make (max n 1) 0 in
  let explain oi u v mask0 =
    incr stamp;
    let s = !stamp in
    seen.(v) <- s;
    queue.(0) <- v;
    let head = ref 0 and tail = ref 1 and found = ref false in
    while (not !found) && !head < !tail do
      let x = queue.(!head) in
      incr head;
      if x = u then found := true
      else begin
        let visit y mask =
          if seen.(y) <> s then begin
            seen.(y) <- s;
            parent.(y) <- x;
            parent_mask.(y) <- mask;
            queue.(!tail) <- y;
            incr tail
          end
        in
        List.iter (fun y -> visit y 0) static_adj.(oi).(x);
        let slot = (oi * n) + x in
        let tgts = dyn_tgt.(oi).(x) and msks = dyn_msk.(oi).(x) in
        for k = 0 to dyn_len.(slot) - 1 do
          visit tgts.(k) msks.(k)
        done
      end
    done;
    if not !found then -1 (* should be unreachable; saturate, stay sound *)
    else begin
      let m = ref mask0 and cur = ref u in
      while !cur <> v do
        m := !m lor parent_mask.(!cur);
        cur := parent.(!cur)
      done;
      !m
    end
  in
  let last_conflict = ref 0 in
  let install com u v mask =
    let ws = watch_for com u v in
    let ok = ref true and k = ref 0 in
    let nw = Array.length ws in
    while !ok && !k < nw do
      let oi = ws.(!k) in
      incr k;
      let ord = orders.(oi) in
      if not (Order.reaches ord u v) then begin
        if Order.add ord u v then begin
          incr propagations;
          append_dyn oi u v mask
        end
        else begin
          incr conflicts;
          last_conflict := explain oi u v mask;
          ok := false
        end
      end
    done;
    !ok
  in
  (* ---- root propagation: forced facts before any decision ---- *)
  let relations = Relations.create n in
  let contradiction = ref false in
  let root_install com u v =
    Array.iter
      (fun oi ->
        if not !contradiction then begin
          let ord = orders.(oi) in
          if not (Order.reaches ord u v) then begin
            if Order.add ord u v then begin
              incr propagations;
              static_adj.(oi).(u) <- v :: static_adj.(oi).(u)
            end
            else contradiction := true
          end
        end)
      (watch_for com u v)
  in
  (* cross-instance co implication is sound here because every discipline's
     instances constrain Co (and Fr) unconditionally: u-before-v in one
     closure then forces the co total order, whose consecutive edges land
     in every other instance at any accepted leaf. Guard it anyway. *)
  let co_uniform =
    Array.for_all
      (fun (inst : Axioms.instance) ->
        inst.Axioms.wants Axioms.Co ~internal:true
        && inst.Axioms.wants Axioms.Co ~internal:false)
      insts
  in
  let feasible =
    Array.map
      (fun r ->
        let ws = writes_at.(lidx.(r)) in
        Array.init
          (Array.length ws + 1)
          (fun c -> c = 0 || ws.(c - 1) <> r))
      reads
  in
  let rf_forced = Array.make (max nreads 1) false in
  let implied =
    Array.map
      (fun ws ->
        let m = Array.length ws in
        Array.make_matrix (max m 1) (max m 1) false)
      writes_at
  in
  let changed = ref true in
  while !changed && not !contradiction do
    changed := false;
    if co_uniform then
      Array.iteri
        (fun li ws ->
          let m = Array.length ws in
          for i = 0 to m - 1 do
            for j = 0 to m - 1 do
              if i <> j && not implied.(li).(i).(j) && not !contradiction then begin
                let u = ws.(i) and v = ws.(j) in
                if Array.exists (fun oi -> Order.reaches orders.(oi) u v) (watch_for Axioms.Co u v)
                then begin
                  implied.(li).(i).(j) <- true;
                  Relations.order relations u v;
                  incr forced;
                  root_install Axioms.Co u v;
                  changed := true
                end
              end
            done
          done)
        writes_at;
    Array.iteri
      (fun ri r ->
        if not !contradiction then begin
          let ws = writes_at.(lidx.(r)) in
          let m = Array.length ws in
          let dom = feasible.(ri) in
          for c = 0 to m do
            if dom.(c) then begin
              let dead =
                if c = 0 then
                  (* reading the initial value from-reads every writer *)
                  Array.exists
                    (fun w' ->
                      w' <> r
                      && Array.exists
                           (fun oi -> Order.reaches orders.(oi) w' r)
                           (watch_for Axioms.Fr r w'))
                    ws
                else
                  let w = ws.(c - 1) in
                  Array.exists
                    (fun oi -> Order.reaches orders.(oi) r w)
                    (watch_for Axioms.Rf w r)
              in
              if dead then begin
                dom.(c) <- false;
                changed := true
              end
            end
          done;
          let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 dom in
          if count = 1 && not rf_forced.(ri) then begin
            rf_forced.(ri) <- true;
            incr forced;
            let c = ref 0 in
            Array.iteri (fun i b -> if b then c := i) dom;
            (match !c with
            | 0 ->
              Relations.equate relations r (Relations.init relations);
              Array.iter (fun w' -> if w' <> r then root_install Axioms.Fr r w') ws
            | c ->
              let w = ws.(c - 1) in
              Relations.equate relations r w;
              root_install Axioms.Rf w r);
            changed := true
          end
        end)
      reads
  done;
  let domain_empty =
    Array.exists (fun dom -> Array.for_all not dom) feasible
  in
  (* must-precede tables: for each location, which co-mates of a write are
     forced before it — candidates whose predecessors are unplaced are
     skipped without a decision *)
  let prec =
    Array.map
      (fun ws ->
        Array.mapi
          (fun i wi ->
            let l = ref [] in
            Array.iteri
              (fun j wj ->
                if j <> i && Relations.must_precede relations wj wi then l := j :: !l)
              ws;
            !l)
          ws)
      writes_at
  in
  (* ---- leaf handling: memoized outcomes ---- *)
  let read_shift = Array.make (max nreads 1) 0 in
  let loc_shift = Array.make (max nlocs 1) 0 in
  let total_bits = ref 0 in
  Array.iteri
    (fun ri r ->
      read_shift.(ri) <- !total_bits;
      total_bits := !total_bits + bits_needed (Array.length writes_at.(lidx.(r))))
    reads;
  Array.iteri
    (fun li ws ->
      loc_shift.(li) <- !total_bits;
      let m = Array.length ws in
      if m > 0 then total_bits := !total_bits + bits_needed (m - 1))
    writes_at;
  let use_memo = !total_bits <= Sys.int_size - 2 in
  let co_perm = Array.map (fun ws -> Array.make (max (Array.length ws) 1) (-1)) writes_at in
  let co_used = Array.map (fun ws -> Array.make (max (Array.length ws) 1) false) writes_at in
  let co_pos = Array.make (max n 1) (-1) in
  let rf_code = Array.make (max nreads 1) 0 in
  let encode () =
    let key = ref 0 in
    for ri = 0 to nreads - 1 do
      key := !key lor (rf_code.(ri) lsl read_shift.(ri))
    done;
    for li = 0 to nlocs - 1 do
      let m = Array.length writes_at.(li) in
      if m > 0 then key := !key lor (wr_idx.(co_perm.(li).(m - 1)) lsl loc_shift.(li))
    done;
    !key
  in
  let programs = Array.of_list t.Litmus.programs in
  let materialize () =
    let rf = Array.make (max n 1) None in
    Array.iteri
      (fun ri r ->
        rf.(r) <-
          (match rf_code.(ri) with 0 -> None | c -> Some writes_at.(lidx.(r)).(c - 1)))
      reads;
    let co =
      Array.to_list
        (Array.mapi (fun li loc -> (loc, Array.to_list co_perm.(li) |> List.filter (fun w -> w >= 0))) locs)
    in
    { Candidate.events; programs; initial_mem = t.Litmus.initial_mem; rf; co }
  in
  let key_tbl : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let out_tbl : (Litmus.outcome, int) Hashtbl.t = Hashtbl.create 16 in
  let counts = ref (Array.make 8 0) in
  let witnesses = ref (Array.make 8 None) in
  let nslots = ref 0 in
  let slot_of o c =
    match Hashtbl.find_opt out_tbl o with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      if s >= Array.length !counts then begin
        let nc = Array.make (2 * s) 0 in
        Array.blit !counts 0 nc 0 (Array.length !counts);
        counts := nc;
        let nw = Array.make (2 * s) None in
        Array.blit !witnesses 0 nw 0 (Array.length !witnesses);
        witnesses := nw
      end;
      !witnesses.(s) <- Some (o, c);
      Hashtbl.add out_tbl o s;
      s
  in
  let accepted = ref 0 and memo_hits = ref 0 in
  let observe = t.Litmus.observe in
  let leaf () =
    incr accepted;
    (match budget with Some b -> Budget.spend b 1 | None -> ());
    let slot =
      if use_memo then begin
        let key = encode () in
        match Hashtbl.find_opt key_tbl key with
        | Some s ->
          incr memo_hits;
          s
        | None ->
          let c = materialize () in
          let s = slot_of (Candidate.outcome c ~observe) c in
          Hashtbl.add key_tbl key s;
          s
      end
      else begin
        let c = materialize () in
        slot_of (Candidate.outcome c ~observe) c
      end
    in
    !counts.(slot) <- !counts.(slot) + 1
  in
  (* ---- the search ---- *)
  let exception Stop of Budget.cause in
  let exhausted = ref None in
  let check_budget () =
    match budget with
    | None -> ()
    | Some b -> (
      match Budget.check b with Some cause -> raise (Stop cause) | None -> ())
  in
  let push_all () =
    Array.iter Order.push orders;
    Trail.mark dyn_trail
  in
  let pop_all () =
    Array.iter Order.pop orders;
    Trail.undo dyn_trail ~restore:restore_dyn
  in
  let rec solve level =
    if level = nlevels then begin
      leaf ();
      Solution
    end
    else
      match level_kinds.(level) with
      | Co_level { loc = li; pos } -> solve_co level li pos
      | Rf_level { read = ri } -> solve_rf level ri
  and solve_co level li pos =
    let ws = writes_at.(li) in
    let m = Array.length ws in
    let used = co_used.(li) in
    let conf = ref 0 and sol = ref false and early = ref None in
    let i = ref 0 in
    while !early = None && !i < m do
      let wi = !i in
      incr i;
      if (not used.(wi)) && List.for_all (fun j -> used.(j)) prec.(li).(wi) then begin
        check_budget ();
        incr decisions;
        let w = ws.(wi) in
        push_all ();
        let ok =
          pos = 0
          || install Axioms.Co co_perm.(li).(pos - 1) w co_prefix_mask.(li).(pos)
        in
        if ok then begin
          used.(wi) <- true;
          co_perm.(li).(pos) <- w;
          co_pos.(w) <- pos;
          let r = solve (level + 1) in
          co_pos.(w) <- -1;
          used.(wi) <- false;
          pop_all ();
          match r with
          | Solution -> sol := true
          | Dead cs ->
            if (not !sol) && cs land bit level = 0 then begin
              incr backjumps;
              early := Some cs
            end
            else conf := !conf lor cs
        end
        else begin
          pop_all ();
          conf := !conf lor !last_conflict
        end
      end
    done;
    match !early with
    | Some cs -> Dead cs
    | None -> if !sol then Solution else Dead (strip level !conf)
  and solve_rf level ri =
    let r = reads.(ri) in
    let li = lidx.(r) in
    let ws = writes_at.(li) in
    let m = Array.length ws in
    let dom = feasible.(ri) in
    let conf = ref 0 and sol = ref false and early = ref None in
    let c = ref 0 in
    while !early = None && !c <= m do
      let code = !c in
      incr c;
      if dom.(code) then begin
        check_budget ();
        incr decisions;
        push_all ();
        rf_code.(ri) <- code;
        let frmask = bit level lor co_full_mask.(li) in
        let ok = ref (code = 0 || install Axioms.Rf ws.(code - 1) r (bit level)) in
        if !ok then begin
          let p = ref (match code with 0 -> 0 | _ -> co_pos.(ws.(code - 1)) + 1) in
          while !ok && !p < m do
            let w' = co_perm.(li).(!p) in
            incr p;
            if w' <> r then ok := install Axioms.Fr r w' frmask
          done
        end;
        if !ok then begin
          let res = solve (level + 1) in
          pop_all ();
          match res with
          | Solution -> sol := true
          | Dead cs ->
            if (not !sol) && cs land bit level = 0 then begin
              incr backjumps;
              early := Some cs
            end
            else conf := !conf lor cs
        end
        else begin
          pop_all ();
          conf := !conf lor !last_conflict
        end
      end
    done;
    match !early with
    | Some cs -> Dead cs
    | None -> if !sol then Solution else Dead (strip level !conf)
  in
  (try
     check_budget ();
     if not (!contradiction || domain_empty) then ignore (solve 0)
   with Stop cause ->
     exhausted :=
       Some
         (match budget with
         | Some b -> Budget.exhaustion b cause
         | None -> assert false));
  let entries = ref [] in
  for s = !nslots - 1 downto 0 do
    match !witnesses.(s) with
    | Some (o, c) -> entries := { outcome = o; candidates = !counts.(s); witness = c } :: !entries
    | None -> ()
  done;
  let entries = List.sort (fun a b -> compare a.outcome b.outcome) !entries in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let log10_naive_space = Event.log10_naive_space events in
  let stats =
    {
      events = n;
      accepted = !accepted;
      decisions = !decisions;
      propagations = !propagations;
      conflicts = !conflicts;
      backjumps = !backjumps;
      forced = !forced;
      memo_hits = !memo_hits;
      distinct_keys = Hashtbl.length key_tbl;
      log10_naive_space;
      naive_space = Generate.naive_space_of_log10 log10_naive_space;
      elapsed_s;
      candidates_per_sec =
        (if elapsed_s > 0.0 then float_of_int !accepted /. elapsed_s else 0.0);
      exhausted = !exhausted;
    }
  in
  { stats; entries }

let outcome_set ?window ?budget t family =
  List.map (fun e -> e.outcome) (run ?window ?budget t family).entries
