(* Forced facts discovered during root propagation, shared by every axiom
   instance: rf assignments whose domain collapsed to a single writer, and
   co orderings every instance already agrees on. Equalities live in a
   union-find (a read forced to a writer joins the writer's value class);
   ordering facts are kept as a deduplicated fact list over class
   representatives — they are recorded once, at the root, and snapshotted
   by the solver into dense per-location precedence tables before search,
   so the O(facts) query cost here is never on the hot path. *)

type t = {
  n : int;  (* events; node [n] is the virtual initial-state write *)
  parent : int array;
  rank : int array;
  mutable merges : int;
  mutable facts : (int * int) list;  (* (u, v): u must precede v *)
  seen : (int * int, unit) Hashtbl.t;
}

let create n =
  if n < 0 then invalid_arg "Relations.create: negative size";
  {
    n;
    parent = Array.init (n + 1) Fun.id;
    rank = Array.make (n + 1) 0;
    merges = 0;
    facts = [];
    seen = Hashtbl.create 32;
  }

let init t = t.n

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let same t a b = find t a = find t b

let equate t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.merges <- t.merges + 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(rb) < t.rank.(ra) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let order t u v =
  let key = (find t u, find t v) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.facts <- (u, v) :: t.facts
  end

let must_precede t u v =
  let ru = find t u and rv = find t v in
  List.exists (fun (a, b) -> find t a = ru && find t b = rv) t.facts

let merges t = t.merges
let orderings t = List.length t.facts

let classes t =
  let c = ref 0 in
  for x = 0 to t.n do
    if find t x = x then incr c
  done;
  !c
