module Model = Memrel_memmodel.Model
module Fence = Memrel_memmodel.Fence
module Instr = Memrel_machine.Instr
module Semantics = Memrel_machine.Semantics

type com = Rf | Co | Fr

type instance = {
  iname : string;
  static_edges : (int * int) list;
  wants : com -> internal:bool -> bool;
}

let all_com _ ~internal:_ = true

(* global happens-before for the buffered machines: forwarding means an
   internal read is satisfied early, so only EXTERNAL rf constrains the
   global order; co and fr constrain it entirely *)
let ghb_com com ~internal = match com with Rf -> not internal | Co | Fr -> true

let same_thread_pairs events keep =
  let acc = ref [] in
  Array.iter
    (fun (a : Event.t) ->
      Array.iter
        (fun (b : Event.t) ->
          if a.Event.thread = b.Event.thread && a.Event.index < b.Event.index && keep a b then
            acc := (a.Event.id, b.Event.id) :: !acc)
        events)
    events;
  List.rev !acc

(* Table 1 as preserved program order: the pair (a, b) stays ordered unless
   the model relaxes every (kind a, kind b) combination. Updates are locked
   instructions — the buffered machines execute them on a drained buffer —
   so any pair involving one is preserved outright. *)
let matrix_preserved model (a : Event.t) (b : Event.t) =
  a.Event.dir = Event.U || b.Event.dir = Event.U
  || List.exists
       (fun ka ->
         List.exists
           (fun kb -> not (Model.relaxes model ~earlier:ka ~later:kb))
           (Event.kinds b))
       (Event.kinds a)

(* Full and Release fences flush the store buffer before executing, and
   execution is in order, so every access before the fence is globally
   ordered before every access after it. Acquire is a no-op on the buffered
   machines: loads already execute in order.

   The required relation per thread is R(a, b) = "some flushing fence sits
   between a and b in program order", i.e. next_fence(a) < index(b). The
   seed emitted the full before x after product per fence by scanning all
   events twice per fence instruction — O(fences * E^2) with massive
   transitive redundancy (Order closes transitively anyway). Here each
   thread's event slice is indexed once and a pair is emitted only when no
   intermediate event m grounds it (R(a, m) and R(m, b)); induction on the
   index gap shows the emitted subset closes to exactly R. *)
let is_flushing_fence = function
  | Instr.Fence (Fence.Full | Fence.Release) -> true
  | _ -> false

let fence_edges programs events =
  let acc = ref [] in
  List.iteri
    (fun thread prog ->
      if Array.exists is_flushing_fence prog then begin
        let slice =
          Array.of_seq
            (Seq.filter (fun (e : Event.t) -> e.Event.thread = thread)
               (Array.to_seq events))
        in
        let n = Array.length prog in
        (* next_fence.(i): index of the first flushing fence at or after
           instruction slot i (n when none) *)
        let next_fence = Array.make (n + 1) n in
        for i = n - 1 downto 0 do
          next_fence.(i) <- (if is_flushing_fence prog.(i) then i else next_fence.(i + 1))
        done;
        let nf (e : Event.t) = next_fence.(e.Event.index + 1) in
        (* min_nf_past.(j): the smallest next_fence over slice events with
           index > j — "is there an event after slot j that still has a
           fence after it?", the grounding-witness probe in O(1) *)
        let min_nf_past = Array.make (n + 1) n in
        for j = n - 1 downto 0 do
          min_nf_past.(j) <- min_nf_past.(j + 1);
          Array.iter
            (fun (e : Event.t) ->
              if e.Event.index = j + 1 then min_nf_past.(j) <- min (nf e) min_nf_past.(j))
            slice
        done;
        Array.iter
          (fun (a : Event.t) ->
            let fa = nf a in
            if fa < n then
              Array.iter
                (fun (b : Event.t) ->
                  if
                    b.Event.index > fa
                    && not (fa < n && min_nf_past.(fa) < b.Event.index)
                  then acc := (a.Event.id, b.Event.id) :: !acc)
                slice)
          slice
      end)
    programs;
  List.rev !acc

(* the seed's dense emission, kept as the oracle for the corpus-wide
   closure-equality test *)
let fence_edges_reference programs events =
  let acc = ref [] in
  List.iteri
    (fun thread prog ->
      Array.iteri
        (fun f ins ->
          match ins with
          | Instr.Fence (Fence.Full | Fence.Release) ->
            Array.iter
              (fun (a : Event.t) ->
                if a.Event.thread = thread && a.Event.index < f then
                  Array.iter
                    (fun (b : Event.t) ->
                      if b.Event.thread = thread && b.Event.index > f then
                        acc := (a.Event.id, b.Event.id) :: !acc)
                    events)
              events
          | _ -> ())
        prog)
    programs;
  List.rev !acc

(* WO's per-thread issue order: an instruction may run ahead of program
   order only past non-conflicting instructions (Semantics.conflicts — the
   same predicate the operational window machine consults) and never more
   than [window - 1] slots ahead of the oldest unexecuted one. The
   reachable issue orders are exactly the linear extensions of the
   transitive closure of those edges; restricting the closure to memory
   events gives the static happens-before base. *)
let wo_edges ~window programs events =
  let acc = ref [] in
  List.iteri
    (fun thread prog ->
      let n = Array.length prog in
      let ord = Array.make_matrix n n false in
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          if i - j >= window || Semantics.conflicts prog j i then ord.(j).(i) <- true
        done
      done;
      for k = 0 to n - 1 do
        for j = 0 to n - 1 do
          if ord.(j).(k) then
            for i = 0 to n - 1 do
              if ord.(k).(i) then ord.(j).(i) <- true
            done
        done
      done;
      Array.iter
        (fun (a : Event.t) ->
          if a.Event.thread = thread then
            Array.iter
              (fun (b : Event.t) ->
                if b.Event.thread = thread && ord.(a.Event.index).(b.Event.index) then
                  acc := (a.Event.id, b.Event.id) :: !acc)
              events)
        events)
    programs;
  List.rev !acc

let instances discipline programs events =
  match discipline with
  | Semantics.Sc ->
    [ { iname = "hb"; static_edges = same_thread_pairs events (fun _ _ -> true);
        wants = all_com } ]
  | Semantics.Tso | Semantics.Pso ->
    let model =
      match discipline with Semantics.Tso -> Model.tso () | _ -> Model.pso ()
    in
    let ppo = same_thread_pairs events (matrix_preserved model) in
    [ { iname = "ghb"; static_edges = ppo @ fence_edges programs events; wants = ghb_com };
      { iname = "sc-per-loc"; static_edges = same_thread_pairs events Event.same_loc;
        wants = all_com } ]
  | Semantics.Wo { window } ->
    [ { iname = "hb"; static_edges = wo_edges ~window programs events; wants = all_com } ]
