(** A fully-chosen candidate execution: events plus rf and co.

    [fr] is derived, values are computed, and the terminal machine state is
    synthesized — no operational run is involved. This is the object the
    generator hands to its visitor and the differential renders as a
    counterexample. *)

type t = {
  events : Event.t array;
  programs : Memrel_machine.Instr.t array array;
  initial_mem : (int * int) list;
  rf : int option array;
      (** per event id; for reads, [Some w] = reads from write event [w],
          [None] = reads the initial value. Meaningless for pure writes. *)
  co : (int * int list) list;
      (** per location, the write event ids in coherence order. *)
}

val fr_targets : t -> int -> int list
(** [fr_targets c r]: the writes coherence-after [r]'s rf source (every
    same-location write when [r] reads the initial value), excluding [r]
    itself — the from-reads successors of read [r]. *)

val to_state : t -> Memrel_machine.State.t
(** The terminal state this candidate denotes: memory = coherence-maximal
    writes over the initial memory, registers = full program-order replay
    with loads returning their rf sources' values, buffers empty. Values
    are well-defined because accepted candidates exclude value-dependency
    cycles (they would be po/rf cycles); raises [Failure] on a cyclic
    candidate. *)

val outcome : t -> observe:(Memrel_machine.State.t -> 'a) -> 'a
(** [observe (to_state c)] — the same observation function the operational
    enumerator uses, so outcome sets are directly comparable. *)

val describe : ?loc_name:(int -> string) -> t -> string
(** Multi-line event-graph rendering (threads, per-event values, rf/co/fr
    edges) via {!Memrel_trace.Render.event_graph}. *)
