(** Backtracking trail: per-mutation undo records instead of snapshots.

    The search structures that back the axiomatic engines (the {!Order}
    closure, the solver's watch/edge stacks) mutate flat [int] stores. A
    trail records, for each mutated slot, its pre-mutation value; {!mark}
    opens a decision scope in O(1) and {!undo} rewinds exactly the slots
    the scope touched — the cost of backtracking becomes proportional to
    the work done inside the scope, not to the size of the structure (the
    seed implementation copied every row at every search node; see
    [Order.Reference]). Records are replayed newest-first so a slot saved
    twice within one scope ends on its oldest value. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty trail; the arrays grow geometrically past [capacity]
    (default 64). *)

val save : t -> int -> int -> unit
(** [save t slot old] records that [slot] held [old] before the mutation
    about to happen. The caller mutates; the trail only remembers. *)

val mark : t -> unit
(** Open a scope: remember the current record count. O(1), no
    allocation (amortized). *)

val undo : t -> restore:(int -> int -> unit) -> unit
(** Close the most recent scope: call [restore slot old] for every record
    saved since its {!mark}, newest first, and drop them. Raises
    [Invalid_argument] with no open scope. *)

val depth : t -> int
(** Open scopes. *)

val pending : t -> int
(** Records not yet undone (across all open scopes). *)

val records : t -> int
(** Total records ever saved (monotonic) — telemetry for the
    trail-vs-snapshot benches. *)
