type t = {
  n : int;
  mutable reach : int array;
  mutable saved : int array list;
  mutable additions : int;
  mutable rejections : int;
}

let max_vertices = Sys.int_size - 1

let create n =
  if n < 0 || n > max_vertices then
    invalid_arg
      (Printf.sprintf "Order.create: %d vertices (at most %d supported — one bit each)" n
         max_vertices);
  { n; reach = Array.make n 0; saved = []; additions = 0; rejections = 0 }

let reaches t u v = t.reach.(u) land (1 lsl v) <> 0

let add t u v =
  if u = v || reaches t v u then begin
    t.rejections <- t.rejections + 1;
    false
  end
  else begin
    t.additions <- t.additions + 1;
    (* everything v reaches — and v itself — becomes reachable from u and
       from every vertex that already reaches u. One O(n) sweep with word-
       parallel bitmask unions: the closure stays exact after every edge. *)
    let closure = t.reach.(v) lor (1 lsl v) in
    let bit_u = 1 lsl u in
    let reach = t.reach in
    for w = 0 to t.n - 1 do
      if w = u || reach.(w) land bit_u <> 0 then reach.(w) <- reach.(w) lor closure
    done;
    true
  end

let push t = t.saved <- Array.copy t.reach :: t.saved

let pop t =
  match t.saved with
  | [] -> invalid_arg "Order.pop: no snapshot"
  | r :: rest ->
    t.reach <- r;
    t.saved <- rest

let additions t = t.additions
let rejections t = t.rejections
