(* Reachability rows are multi-word bitsets (bit v of row u = "u reaches
   v"), flattened into one int array, row-major. Backtracking is a trail of
   per-word undo records: [add] saves each word it actually changes, [push]
   opens a trail scope in O(1), [pop] rewinds exactly the touched words —
   the seed implementation copied every row at every search node (see
   {!Reference}, kept as the equivalence oracle). *)

let bpw = Sys.int_size

let max_vertices = 1024

let words_for n = max 1 ((n + bpw - 1) / bpw)

let check_vertices n =
  if n < 0 || n > max_vertices then
    invalid_arg
      (Printf.sprintf "Order.create: %d vertices (at most %d supported)" n max_vertices)

type t = {
  n : int;
  words : int;
  reach : int array;
  trail : Trail.t;
  scratch : int array;
  restore : int -> int -> unit;
  mutable additions : int;
  mutable rejections : int;
}

let create n =
  check_vertices n;
  let words = words_for n in
  let reach = Array.make (max 1 (n * words)) 0 in
  {
    n;
    words;
    reach;
    trail = Trail.create ();
    scratch = Array.make words 0;
    restore = (fun slot old -> reach.(slot) <- old);
    additions = 0;
    rejections = 0;
  }

let reaches t u v = t.reach.((u * t.words) + (v / bpw)) land (1 lsl (v mod bpw)) <> 0

let add t u v =
  if u = v || reaches t v u then begin
    t.rejections <- t.rejections + 1;
    false
  end
  else begin
    t.additions <- t.additions + 1;
    (* everything v reaches — and v itself — becomes reachable from u and
       from every vertex that already reaches u. One sweep of word-parallel
       unions; only words that actually change are trailed. *)
    let words = t.words and reach = t.reach and scratch = t.scratch in
    let base_v = v * words in
    for k = 0 to words - 1 do
      scratch.(k) <- reach.(base_v + k)
    done;
    scratch.(v / bpw) <- scratch.(v / bpw) lor (1 lsl (v mod bpw));
    let uw = u / bpw and ub = 1 lsl (u mod bpw) in
    for w = 0 to t.n - 1 do
      let base = w * words in
      if w = u || reach.(base + uw) land ub <> 0 then
        for k = 0 to words - 1 do
          let old = reach.(base + k) in
          let upd = old lor scratch.(k) in
          if upd <> old then begin
            Trail.save t.trail (base + k) old;
            reach.(base + k) <- upd
          end
        done
    done;
    true
  end

let push t = Trail.mark t.trail

let pop t =
  try Trail.undo t.trail ~restore:t.restore
  with Invalid_argument _ -> invalid_arg "Order.pop: no snapshot"

let additions t = t.additions
let rejections t = t.rejections
let undo_records t = Trail.records t.trail

(* The seed engine: same closure maintenance, but push copies the whole
   reachability store and pop swaps it back — O(n * words) per search node
   regardless of how little the node changed. Kept verbatim in spirit as
   the oracle the trail implementation is randomized-tested against. *)
module Reference = struct
  type t = {
    n : int;
    words : int;
    mutable reach : int array;
    mutable saved : int array list;
    mutable additions : int;
    mutable rejections : int;
  }

  let create n =
    check_vertices n;
    let words = words_for n in
    { n; words; reach = Array.make (max 1 (n * words)) 0; saved = []; additions = 0;
      rejections = 0 }

  let reaches t u v = t.reach.((u * t.words) + (v / bpw)) land (1 lsl (v mod bpw)) <> 0

  let add t u v =
    if u = v || reaches t v u then begin
      t.rejections <- t.rejections + 1;
      false
    end
    else begin
      t.additions <- t.additions + 1;
      let words = t.words and reach = t.reach in
      let closure = Array.make words 0 in
      let base_v = v * words in
      for k = 0 to words - 1 do
        closure.(k) <- reach.(base_v + k)
      done;
      closure.(v / bpw) <- closure.(v / bpw) lor (1 lsl (v mod bpw));
      let uw = u / bpw and ub = 1 lsl (u mod bpw) in
      for w = 0 to t.n - 1 do
        let base = w * words in
        if w = u || reach.(base + uw) land ub <> 0 then
          for k = 0 to words - 1 do
            reach.(base + k) <- reach.(base + k) lor closure.(k)
          done
      done;
      true
    end

  let push t = t.saved <- Array.copy t.reach :: t.saved

  let pop t =
    match t.saved with
    | [] -> invalid_arg "Order.Reference.pop: no snapshot"
    | r :: rest ->
      t.reach <- r;
      t.saved <- rest

  let additions t = t.additions
  let rejections t = t.rejections
end
