(** Memory events of a candidate execution.

    A litmus program induces one event per memory access: loads are read
    events [R], stores are write events [W], and atomic read-modify-writes
    are single update events [U] that are both a read and a write — the
    single-event encoding makes RMW atomicity fall out of the ordinary
    coherence axioms (an update reading anything but its immediate
    coherence predecessor closes an [fr;co] cycle). Register-only
    instructions ([Binop]) and fences generate no events: registers are
    thread-local dataflow, resolved at value-computation time, and fences
    contribute ordering edges only (see {!Axioms}). *)

type dir = R | W | U

type t = {
  id : int;  (** dense, program order within a thread, threads in order *)
  thread : int;
  index : int;  (** instruction index within the thread's program *)
  dir : dir;
  loc : int;
}

val is_read : t -> bool
(** [R] or [U]. *)

val is_write : t -> bool
(** [W] or [U]. *)

val same_loc : t -> t -> bool
val same_thread : t -> t -> bool

val kinds : t -> Memrel_memmodel.Op.kind list
(** The Table-1 instruction kinds an event participates in: [LD] for [R],
    [ST] for [W], both for [U]. This is the bridge to
    {!Memrel_memmodel.Model.relaxes}. *)

val dir_to_string : dir -> string

val label : t -> string
(** Short node name, ["e<id>"]. *)

val describe : ?loc_name:(int -> string) -> t -> string
(** One-line node description, e.g. ["e3: R m1 @0"]. *)

val of_programs : Memrel_machine.Instr.t array list -> t array
(** Events of a litmus program, in id order. *)

val locations : t array -> int list
(** Sorted distinct locations accessed. *)

val log10_naive_space : t array -> float
(** log10 of |co permutations| x |rf assignments| — the candidate space a
    generate-then-filter enumeration would visit. Computed in log space:
    the linear-space product of float factorials overflows to [infinity]
    around 171 same-location writes, poisoning downstream ratios with
    [nan]. *)
