(** Incremental acyclicity maintenance over a fixed vertex set.

    The candidate-execution engines commit rf/co choices one edge at a
    time; each axiom is an acyclicity requirement, so the hot operation is
    "would adding this edge close a cycle?". This module keeps the exact
    transitive closure as per-vertex reachability bitsets — multi-word, so
    event graphs are no longer capped at one native int's worth of bits —
    making the probe O(words) and an accepted insertion O(n * words) word
    operations, instead of a fresh O(V+E) DFS per probe.

    Backtracking is trail-based: {!push} opens an undo scope in O(1) and
    {!pop} restores exactly the words touched since — an [add] that
    installs nothing (the edge was already implied) costs nothing to
    rewind. The seed behaviour (copy the whole store per snapshot) survives
    as {!Reference}, the oracle the trail implementation is
    randomized-tested against. *)

type t

val max_vertices : int
(** 1024 — rows are multi-word bitsets; the seed's one-int limit
    ([Sys.int_size - 1] = 62 vertices) is gone. *)

val create : int -> t
(** An edgeless order on [n] vertices. Raises [Invalid_argument] beyond
    {!max_vertices}. *)

val add : t -> int -> int -> bool
(** [add t u v] inserts the edge [u -> v] and returns [true], or returns
    [false] — leaving the closure unchanged — when the edge would close a
    cycle (including [u = v]). *)

val reaches : t -> int -> int -> bool
(** [reaches t u v]: is there a nonempty path [u -> ... -> v]? *)

val push : t -> unit
(** Open a backtracking scope (a trail mark; O(1), no copying). *)

val pop : t -> unit
(** Rewind (and close) the most recent scope, restoring the closure
    bit-for-bit. Raises [Invalid_argument] with no open scope. *)

val additions : t -> int
(** Edges accepted since creation (monotonic; not rewound by {!pop}). *)

val rejections : t -> int
(** Insertions refused by the cycle check (monotonic). *)

val undo_records : t -> int
(** Total words ever trailed (monotonic) — the work a snapshot scheme
    would have copied wholesale; telemetry for the trail-vs-copy bench. *)

(** The seed implementation: identical closure maintenance, but {!push}
    copies the entire reachability store and {!pop} swaps it back. Kept as
    the equivalence oracle for the trail-based engine. *)
module Reference : sig
  type t

  val create : int -> t
  val add : t -> int -> int -> bool
  val reaches : t -> int -> int -> bool
  val push : t -> unit
  val pop : t -> unit
  val additions : t -> int
  val rejections : t -> int
end
