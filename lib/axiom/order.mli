(** Incremental acyclicity maintenance over a fixed vertex set.

    The candidate-execution generator commits rf/co choices one edge at a
    time; each axiom is an acyclicity requirement, so the hot operation is
    "would adding this edge close a cycle?". This module keeps the exact
    transitive closure as per-vertex reachability bitmasks (one native-int
    word per vertex — event counts are tiny), making the check O(1) and an
    accepted insertion O(n) word operations, instead of a fresh O(V+E) DFS
    per probe. Snapshots ({!push}/{!pop}) give the generator cheap
    backtracking. *)

type t

val max_vertices : int
(** Vertices are bits of a native int: [Sys.int_size - 1]. *)

val create : int -> t
(** An edgeless order on [n] vertices. Raises [Invalid_argument] beyond
    {!max_vertices}. *)

val add : t -> int -> int -> bool
(** [add t u v] inserts the edge [u -> v] and returns [true], or returns
    [false] — leaving the closure unchanged — when the edge would close a
    cycle (including [u = v]). *)

val reaches : t -> int -> int -> bool
(** [reaches t u v]: is there a nonempty path [u -> ... -> v]? *)

val push : t -> unit
(** Snapshot the current closure onto an internal stack. *)

val pop : t -> unit
(** Restore (and drop) the most recent snapshot. *)

val additions : t -> int
(** Edges accepted since creation (monotonic; not rewound by {!pop}). *)

val rejections : t -> int
(** Insertions refused by the cycle check (monotonic). *)
