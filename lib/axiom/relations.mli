(** Union-find over forced equalities and orderings.

    The conflict-driven solver's root propagation discovers facts that hold
    in {e every} allowed execution before any decision is made: a read
    whose reads-from domain filtered down to a single writer (a forced
    equality between the read and that writer's value class), and a
    coherence ordering some instance's static closure already implies —
    which, because every instance constrains co, every other instance must
    then be told about. This module records those facts; the solver
    snapshots the ordering facts into dense per-location precedence tables
    before search starts, so queries here are root-phase only. *)

type t

val create : int -> t
(** [create n] covers event ids [0 .. n-1] plus a virtual node for the
    initial state, {!init}. *)

val init : t -> int
(** The virtual initial-state write — the class a read forced to read the
    initial value joins. *)

val find : t -> int -> int
(** Class representative (path-compressing). *)

val same : t -> int -> int -> bool

val equate : t -> int -> int -> unit
(** Merge two value classes (union by rank). *)

val order : t -> int -> int -> unit
(** Record the fact "[u] must precede [v]" (deduplicated per class
    pair). *)

val must_precede : t -> int -> int -> bool
(** Is "[u] before [v]" a recorded fact (up to class equality)? O(facts) —
    meant for the solver's one-time snapshot and for tests, not per-node
    queries. *)

val merges : t -> int
(** Class merges performed (forced rf assignments). *)

val orderings : t -> int
(** Distinct ordering facts recorded (forced co edges). *)

val classes : t -> int
(** Current number of value classes (starts at [n + 1]). *)
