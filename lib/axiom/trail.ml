type t = {
  mutable slots : int array;
  mutable olds : int array;
  mutable len : int;
  mutable marks : int array;
  mutable mlen : int;
  mutable total : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    slots = Array.make capacity 0;
    olds = Array.make capacity 0;
    len = 0;
    marks = Array.make 16 0;
    mlen = 0;
    total = 0;
  }

let grow t =
  let cap = 2 * Array.length t.slots in
  let slots = Array.make cap 0 and olds = Array.make cap 0 in
  Array.blit t.slots 0 slots 0 t.len;
  Array.blit t.olds 0 olds 0 t.len;
  t.slots <- slots;
  t.olds <- olds

let save t slot old =
  if t.len = Array.length t.slots then grow t;
  t.slots.(t.len) <- slot;
  t.olds.(t.len) <- old;
  t.len <- t.len + 1;
  t.total <- t.total + 1

let mark t =
  if t.mlen = Array.length t.marks then begin
    let marks = Array.make (2 * t.mlen) 0 in
    Array.blit t.marks 0 marks 0 t.mlen;
    t.marks <- marks
  end;
  t.marks.(t.mlen) <- t.len;
  t.mlen <- t.mlen + 1

let depth t = t.mlen

let undo t ~restore =
  if t.mlen = 0 then invalid_arg "Trail.undo: no mark";
  t.mlen <- t.mlen - 1;
  let stop = t.marks.(t.mlen) in
  (* newest-first: a slot saved twice inside one mark is restored to its
     oldest value last, so the net effect is exact *)
  for i = t.len - 1 downto stop do
    restore t.slots.(i) t.olds.(i)
  done;
  t.len <- stop

let records t = t.total
let pending t = t.len
