module Model = Memrel_memmodel.Model
module Litmus = Memrel_machine.Litmus

type disagreement = {
  outcome : Litmus.outcome;
  axiomatic : bool;
  operational : bool;
  witness : string option;
}

type report = {
  test : string;
  family : Model.family;
  window : int;
  axiomatic : Litmus.outcome list;
  operational : Litmus.outcome list;
  agree : bool;
  disagreements : disagreement list;
  stats : Generate.stats;
  operational_states : int;
}

let standard_families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

(* the corpus uses locations 0 = x, 1 = y; beyond that keep the raw index *)
let loc_name l =
  if l = Litmus.x then "x" else if l = Litmus.y then "y" else Printf.sprintf "m%d" l

let run ?(window = 8) ?max_states ?por (t : Litmus.t) family =
  let axr = Generate.run ~window t family in
  let axiomatic = List.map (fun (e : Generate.entry) -> e.Generate.outcome) axr.Generate.entries in
  let opr = Litmus.run_exhaustive ~window ?max_states ?por t family in
  let operational = Memrel_machine.Enumerate.outcome_set opr in
  let witness_of o =
    List.find_opt (fun (e : Generate.entry) -> e.Generate.outcome = o) axr.Generate.entries
    |> Option.map (fun (e : Generate.entry) ->
           Candidate.describe ~loc_name e.Generate.witness)
  in
  let disagreements =
    List.filter_map
      (fun o ->
        if List.mem o operational then None
        else Some { outcome = o; axiomatic = true; operational = false; witness = witness_of o })
      axiomatic
    @ List.filter_map
        (fun o ->
          if List.mem o axiomatic then None
          else Some { outcome = o; axiomatic = false; operational = true; witness = None })
        operational
  in
  {
    test = t.Litmus.name;
    family;
    window;
    axiomatic;
    operational;
    agree = disagreements = [];
    disagreements;
    stats = axr.Generate.stats;
    operational_states = opr.Memrel_machine.Enumerate.terminals;
  }

let run_corpus ?window ?max_states ?por () =
  List.concat_map
    (fun t -> List.map (fun family -> run ?window ?max_states ?por t family) standard_families)
    Litmus.all

let outcome_to_string o =
  String.concat " " (List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v) o)

let describe r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s under %s: %s (%d axiomatic = %d operational outcomes)\n" r.test
       (Model.family_name r.family)
       (if r.agree then "agree" else "DISAGREE")
       (List.length r.axiomatic) (List.length r.operational));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s\n" (outcome_to_string d.outcome)
           (if d.axiomatic then "axiomatically allowed, operationally unreachable"
            else "operationally reachable, axiomatically forbidden"));
      Option.iter
        (fun w ->
          String.split_on_char '\n' w
          |> List.iter (fun line -> Buffer.add_string buf ("    " ^ line ^ "\n")))
        d.witness)
    r.disagreements;
  Buffer.contents buf
