module Model = Memrel_memmodel.Model
module Litmus = Memrel_machine.Litmus

type engine = Generate_engine | Solver_engine

let engine_name = function Generate_engine -> "generate" | Solver_engine -> "solver"

type engine_stats = Generated of Generate.stats | Solved of Solver.stats

let stats_accepted = function
  | Generated s -> s.Generate.accepted
  | Solved s -> s.Solver.accepted

let stats_elapsed = function
  | Generated s -> s.Generate.elapsed_s
  | Solved s -> s.Solver.elapsed_s

let stats_log10_naive_space = function
  | Generated s -> s.Generate.log10_naive_space
  | Solved s -> s.Solver.log10_naive_space

let stats_exhausted = function
  | Generated s -> s.Generate.exhausted
  | Solved s -> s.Solver.exhausted

type disagreement = {
  outcome : Litmus.outcome;
  axiomatic : bool;
  operational : bool;
  witness : string option;
}

type report = {
  test : string;
  family : Model.family;
  window : int;
  engine : engine;
  axiomatic : Litmus.outcome list;
  operational : Litmus.outcome list;
  agree : bool;
  partial : bool;
  disagreements : disagreement list;
  stats : engine_stats;
  operational_states : int;
}

let standard_families =
  [ Model.Sequential_consistency; Model.Total_store_order; Model.Partial_store_order;
    Model.Weak_ordering ]

(* the corpus uses locations 0 = x, 1 = y; beyond that keep the raw index *)
let loc_name l =
  if l = Litmus.x then "x" else if l = Litmus.y then "y" else Printf.sprintf "m%d" l

let run ?(window = 8) ?max_states ?por ?budget ?(engine = Generate_engine) (t : Litmus.t)
    family =
  let witnessed, stats =
    match engine with
    | Generate_engine ->
      let r = Generate.run ~window ?budget t family in
      ( List.map
          (fun (e : Generate.entry) -> (e.Generate.outcome, e.Generate.witness))
          r.Generate.entries,
        Generated r.Generate.stats )
    | Solver_engine ->
      let r = Solver.run ~window ?budget t family in
      ( List.map (fun (e : Solver.entry) -> (e.Solver.outcome, e.Solver.witness)) r.Solver.entries,
        Solved r.Solver.stats )
  in
  let axiomatic = List.map fst witnessed in
  let opr = Litmus.run_exhaustive ~window ?max_states ?por t family in
  let operational = Memrel_machine.Enumerate.outcome_set opr in
  (* a partial axiomatic run covers a subset of the allowed outcomes — it
     can honestly witness "allowed", never "forbidden", so the comparison
     is refused rather than reported as disagreement (the PR5 contract) *)
  let partial =
    stats_exhausted stats <> None
    || opr.Memrel_machine.Enumerate.exhausted <> None
  in
  let witness_of o =
    List.assoc_opt o witnessed |> Option.map (Candidate.describe ~loc_name)
  in
  let disagreements =
    if partial then []
    else
      List.filter_map
        (fun o ->
          if List.mem o operational then None
          else
            Some { outcome = o; axiomatic = true; operational = false; witness = witness_of o })
        axiomatic
      @ List.filter_map
          (fun o ->
            if List.mem o axiomatic then None
            else Some { outcome = o; axiomatic = false; operational = true; witness = None })
          operational
  in
  {
    test = t.Litmus.name;
    family;
    window;
    engine;
    axiomatic;
    operational;
    agree = (not partial) && disagreements = [];
    partial;
    disagreements;
    stats;
    operational_states = opr.Memrel_machine.Enumerate.terminals;
  }

let run_corpus ?window ?max_states ?por ?engine () =
  List.concat_map
    (fun t ->
      List.map (fun family -> run ?window ?max_states ?por ?engine t family) standard_families)
    Litmus.all

(* both axiomatic engines claim to walk the same decision tree; the
   three-way check holds them to it — not just equal outcome sets against
   the operational machine, but equal per-outcome candidate counts against
   each other *)
type three_way = {
  solver_report : report;
  generate_stats : Generate.stats;
  solver_stats : Solver.stats;
  counts_agree : bool;
  agree : bool;
}

let three_way ?(window = 8) ?max_states ?por (t : Litmus.t) family =
  let g = Generate.run ~window t family in
  let s = Solver.run ~window t family in
  let solver_report = run ~window ?max_states ?por ~engine:Solver_engine t family in
  let counted_g =
    List.map (fun (e : Generate.entry) -> (e.Generate.outcome, e.Generate.candidates)) g.Generate.entries
  in
  let counted_s =
    List.map (fun (e : Solver.entry) -> (e.Solver.outcome, e.Solver.candidates)) s.Solver.entries
  in
  let counts_agree = counted_g = counted_s in
  {
    solver_report;
    generate_stats = g.Generate.stats;
    solver_stats = s.Solver.stats;
    counts_agree;
    agree = solver_report.agree && counts_agree;
  }

let outcome_to_string o =
  String.concat " " (List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v) o)

let describe r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s under %s [%s]: %s (%d axiomatic = %d operational outcomes)\n" r.test
       (Model.family_name r.family) (engine_name r.engine)
       (if r.partial then "PARTIAL (comparison refused)"
        else if r.agree then "agree"
        else "DISAGREE")
       (List.length r.axiomatic) (List.length r.operational));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s\n" (outcome_to_string d.outcome)
           (if d.axiomatic then "axiomatically allowed, operationally unreachable"
            else "operationally reachable, axiomatically forbidden"));
      Option.iter
        (fun w ->
          String.split_on_char '\n' w
          |> List.iter (fun line -> Buffer.add_string buf ("    " ^ line ^ "\n")))
        d.witness)
    r.disagreements;
  Buffer.contents buf
