module Op = Memrel_memmodel.Op
module Settle = Memrel_settling.Settle
module Program = Memrel_settling.Program
module Shift = Memrel_shift.Process

let op_cell ~highlight_critical op =
  let base =
    match Op.kind_of op with
    | Some Op.LD -> "LD"
    | Some Op.ST -> "ST"
    | None -> "FN"
  in
  if highlight_critical && Op.is_critical op then "*" ^ base else " " ^ base

let figure1 ?(highlight_critical = true) prog snaps =
  let n = Program.length prog in
  let initial = Program.ops prog in
  let columns =
    (Array.to_list initial, None)
    :: List.map (fun (s : Settle.snapshot) -> (Array.to_list s.order, Some s.stop_pos)) snaps
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "settling process (left = initial order, one column per round)\n";
  let headers =
    "init" :: List.map (fun (s : Settle.snapshot) -> Printf.sprintf "r%d" s.round) snaps
  in
  List.iter (fun h -> Buffer.add_string buf (Printf.sprintf "%7s" h)) headers;
  Buffer.add_char buf '\n';
  for pos = 0 to n - 1 do
    List.iter
      (fun (order, moved) ->
        let cell = op_cell ~highlight_critical (List.nth order pos) in
        let cell = if moved = Some pos then "(" ^ cell ^ ")" else " " ^ cell ^ " " in
        Buffer.add_string buf (Printf.sprintf "%7s" cell))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let figure1_random ?(m = 6) ?(seed = 1) model =
  let rng = Memrel_prob.Rng.create seed in
  let prog = Program.generate rng ~m in
  let _, snaps = Settle.run_traced model rng prog in
  Printf.sprintf "model: %s\n%s" (Memrel_memmodel.Model.name model) (figure1 prog snaps)

let figure2 ~gammas ~shifts =
  let n = Array.length gammas in
  if Array.length shifts <> n then invalid_arg "Render.figure2: length mismatch";
  let height = Array.fold_left max 0 (Array.mapi (fun i g -> shifts.(i) + g) gammas) + 2 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "shift process (time axis upward; # = occupied slot)\n";
  for level = height - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%3d |" level);
    for i = 0 to n - 1 do
      let occupied = level >= shifts.(i) && level <= shifts.(i) + gammas.(i) in
      Buffer.add_string buf (if occupied then "  #  " else "  .  ")
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "     ";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " g%d=%d" (i + 1) gammas.(i))
  done;
  Buffer.add_char buf '\n';
  let log2p = Array.fold_left (fun acc s -> acc - (s + 1)) 0 shifts in
  let disjoint = Shift.disjoint ~shifts ~gammas in
  (* the paper's Figure 2 reads segments as half-open (touching endpoints do
     not collide); Theorem 5.1's algebra requires strict separation. Report
     both so the discrepancy is visible. *)
  let halfopen =
    Array.length gammas = 0
    || Shift.disjoint ~shifts ~gammas:(Array.map (fun g -> max 0 (g - 1)) gammas)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "shifts = (%s); probability 2^%d\ndisjointness A: %s (Theorem 5.1 closed convention); %s \
        (Figure 2 half-open convention)\n"
       (String.concat ", " (Array.to_list (Array.map string_of_int shifts)))
       log2p
       (if disjoint then "holds" else "violated")
       (if halfopen then "holds" else "violated"));
  Buffer.contents buf

let figure2_paper_instance () = figure2 ~gammas:[| 3; 2; 5 |] ~shifts:[| 8; 0; 2 |]

let window_bar pmf ~width =
  if width < 1 then invalid_arg "Render.window_bar: width >= 1 required";
  let maxp = List.fold_left (fun acc (_, p) -> Float.max acc p) 0.0 pmf in
  let buf = Buffer.create 256 in
  List.iter
    (fun (v, p) ->
      let len = if maxp = 0.0 then 0 else int_of_float (Float.round (p /. maxp *. float_of_int width)) in
      Buffer.add_string buf (Printf.sprintf "%4d | %-*s %.6f\n" v width (String.make len '#') p))
    pmf;
  Buffer.contents buf

let event_graph ~title ~threads ~edges =
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iteri
    (fun k rows ->
      List.iteri
        (fun i row ->
          Buffer.add_string buf
            (Printf.sprintf "  %s | %s\n" (if i = 0 then Printf.sprintf "T%d" k else "  ") row))
        (if rows = [] then [ "(no events)" ] else rows))
    threads;
  (* group edges by relation name, preserving first-appearance order *)
  let rels = ref [] in
  List.iter
    (fun (rel, _, _) -> if not (List.mem rel !rels) then rels := rel :: !rels)
    edges;
  List.iter
    (fun rel ->
      let arrows =
        List.filter_map
          (fun (r, a, b) -> if String.equal r rel then Some (a ^ " -> " ^ b) else None)
          edges
      in
      Buffer.add_string buf (Printf.sprintf "  %-4s %s\n" rel (String.concat ", " arrows)))
    (List.rev !rels);
  Buffer.contents buf
