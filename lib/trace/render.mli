(** ASCII renderings of the paper's two process figures.

    Figure 1 shows an instantiation of the settling process (one column per
    round, the settling instruction marked); Figure 2 shows an instantiation
    of the shift process (segments drawn against the integer time line).
    These renderings are what the bench harness prints for experiments E2
    and E3. *)

val figure1 :
  ?highlight_critical:bool ->
  Memrel_settling.Program.t ->
  Memrel_settling.Settle.snapshot list ->
  string
(** [figure1 prog snaps] draws the initial order followed by the order
    after each settling round. Instructions print as [ST]/[LD]; the
    critical pair as [*ST]/[*LD] when highlighted (default true); the
    just-settled instruction is parenthesized; fences show as [FN]. *)

val figure1_random :
  ?m:int -> ?seed:int -> Memrel_memmodel.Model.t -> string
(** Generate a small random program (default m = 6), settle it traced under
    the model, and render — a self-contained Figure 1. *)

val figure2 : gammas:int array -> shifts:int array -> string
(** [figure2 ~gammas ~shifts] draws each shifted segment
    [[s_i, s_i + gamma_i]] as a column against the number line, exactly the
    layout of the paper's Figure 2, and reports the sample's probability
    [prod 2^-(s_i + 1)] and whether the disjointness event A holds. *)

val figure2_paper_instance : unit -> string
(** The literal instance of the paper's Figure 2: gammas = (3, 2, 5),
    shifts = (8, 0, 2), probability 2^-13. Note an internal inconsistency of
    the paper surfaced here: the figure declares A to hold, which is true
    under its half-open drawing, while Theorem 5.1's algebra (strict
    separation) has segments [0,2] and [2,7] colliding at slot 2. The
    rendering reports both verdicts. *)

val window_bar : (int * float) list -> width:int -> string
(** Tiny horizontal bar chart of a pmf — used by the CLI to visualize
    window distributions. *)

val event_graph :
  title:string ->
  threads:string list list ->
  edges:(string * string * string) list ->
  string
(** [event_graph ~title ~threads ~edges] draws a candidate-execution event
    graph in ASCII: one block of rows per thread (each row one event, in
    program order) followed by the relation edges grouped by name. [edges]
    entries are [(relation, from_label, to_label)]; relations keep their
    first-appearance order. Generic over the labels so the axiomatic
    checker (lib/axiom) can render counterexamples without this library
    depending on it. *)
