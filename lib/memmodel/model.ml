type family =
  | Sequential_consistency
  | Total_store_order
  | Partial_store_order
  | Weak_ordering
  | Custom

type t = {
  family : family;
  name : string;
  s : float;
  (* matrix entries: rho(earlier, later) *)
  st_st : float;
  st_ld : float;
  ld_st : float;
  ld_ld : float;
}

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg (Printf.sprintf "Model: %s probability out of [0,1]" what)

let default_s = 0.5

let sc =
  { family = Sequential_consistency; name = "SC"; s = default_s;
    st_st = 0.0; st_ld = 0.0; ld_st = 0.0; ld_ld = 0.0 }

let tso ?(s = default_s) () =
  check_prob "s" s;
  { family = Total_store_order; name = "TSO"; s; st_st = 0.0; st_ld = s; ld_st = 0.0; ld_ld = 0.0 }

let pso ?(s = default_s) () =
  check_prob "s" s;
  { family = Partial_store_order; name = "PSO"; s; st_st = s; st_ld = s; ld_st = 0.0; ld_ld = 0.0 }

let wo ?(s = default_s) () =
  check_prob "s" s;
  { family = Weak_ordering; name = "WO"; s; st_st = s; st_ld = s; ld_st = s; ld_ld = s }

let custom ~name ~st_st ~st_ld ~ld_st ~ld_ld =
  check_prob "st_st" st_st;
  check_prob "st_ld" st_ld;
  check_prob "ld_st" ld_st;
  check_prob "ld_ld" ld_ld;
  let s = List.fold_left Float.max 0.0 [ st_st; st_ld; ld_st; ld_ld ] in
  let s = if s = 0.0 then default_s else s in
  { family = Custom; name; s; st_st; st_ld; ld_st; ld_ld }

let all_standard = [ sc; tso (); pso (); wo () ]

let family t = t.family
let name t = t.name
let s t = t.s

let family_name = function
  | Sequential_consistency -> "SC"
  | Total_store_order -> "TSO"
  | Partial_store_order -> "PSO"
  | Weak_ordering -> "WO"
  | Custom -> "custom"

let swap_probability t ~earlier ~later =
  match (earlier, later) with
  | Op.ST, Op.ST -> t.st_st
  | Op.ST, Op.LD -> t.st_ld
  | Op.LD, Op.ST -> t.ld_st
  | Op.LD, Op.LD -> t.ld_ld

let relaxes t ~earlier ~later = swap_probability t ~earlier ~later > 0.0

let relaxed_pairs t =
  List.filter
    (fun (earlier, later) -> relaxes t ~earlier ~later)
    [ (Op.ST, Op.ST); (Op.ST, Op.LD); (Op.LD, Op.ST); (Op.LD, Op.LD) ]

let equal a b =
  a.family = b.family && String.equal a.name b.name && a.st_st = b.st_st && a.st_ld = b.st_ld
  && a.ld_st = b.ld_st && a.ld_ld = b.ld_ld

let pp fmt t = Format.pp_print_string fmt t.name

let table1 () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ST/ST  ST/LD  LD/ST  LD/LD  Name\n";
  List.iter
    (fun m ->
      let mark earlier later = if relaxes m ~earlier ~later then "  X  " else "     " in
      Buffer.add_string buf
        (Printf.sprintf "%s  %s  %s  %s  %s\n" (mark Op.ST Op.ST) (mark Op.ST Op.LD)
           (mark Op.LD Op.ST) (mark Op.LD Op.LD) m.name))
    all_standard;
  Buffer.contents buf
