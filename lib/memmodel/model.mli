(** Memory consistency models as reorder-probability matrices.

    Following Table 1 and Appendix A.2: a model assigns to every ordered
    pair of instruction types (tau1 = the earlier instruction, tau2 = the
    later, currently-settling instruction) a swap probability
    rho(tau1, tau2), which is either 0 (the pair must stay ordered) or the
    settling probability [s] (1/2 in the paper's normal form). The general
    form of footnote 3 — distinct nonzero probabilities per pair — is also
    expressible via {!custom}. *)

type family =
  | Sequential_consistency  (** SC: nothing reorders. *)
  | Total_store_order  (** TSO: LD may complete before an earlier ST. *)
  | Partial_store_order  (** PSO: TSO plus ST/ST reordering. *)
  | Weak_ordering  (** WO: every pair may reorder. *)
  | Custom  (** user-supplied matrix (footnote 3 generality). *)

type t
(** A memory model: a named swap-probability matrix. *)

val sc : t
(** Sequential Consistency with the paper's parameters. *)

val tso : ?s:float -> unit -> t
(** Total Store Order; [s] is the per-swap success probability
    (default 1/2). *)

val pso : ?s:float -> unit -> t
(** Partial Store Order. *)

val wo : ?s:float -> unit -> t
(** Weak Ordering. *)

val custom :
  name:string -> st_st:float -> st_ld:float -> ld_st:float -> ld_ld:float -> t
(** [custom ~name ~st_st ~st_ld ~ld_st ~ld_ld] builds an arbitrary matrix;
    [st_ld] is the probability that a settling LD swaps above an earlier ST
    (the pair TSO relaxes), and analogously for the others. Probabilities
    must lie in [0, 1]. *)

val all_standard : t list
(** [sc; tso (); pso (); wo ()] — the Table 1 models, in the table's
    strength order. *)

val family : t -> family
val name : t -> string
val s : t -> float
(** The nominal swap probability used for this model's relaxed pairs. *)

val family_name : family -> string
(** Display name of a family: ["SC"], ["TSO"], ["PSO"], ["WO"] or
    ["custom"]. *)

val swap_probability : t -> earlier:Op.kind -> later:Op.kind -> float
(** [swap_probability t ~earlier ~later] is rho(earlier, later). *)

val relaxes : t -> earlier:Op.kind -> later:Op.kind -> bool
(** Whether the ordered pair may reorder at all (Table 1's check marks). *)

val relaxed_pairs : t -> (Op.kind * Op.kind) list
(** The pairs this model relaxes, as (earlier, later), in Table 1 column
    order: ST/ST, ST/LD, LD/ST, LD/LD. *)

val equal : t -> t -> bool
(** Structural equality of name, family and matrix. *)

val pp : Format.formatter -> t -> unit

val table1 : unit -> string
(** Render the paper's Table 1 for {!all_standard}. *)
