(** Preallocated-scratch settling kernel — the zero-allocation fast path
    under {!Mc} (and the joined model's estimators).

    A [t] holds everything one worker needs to draw settled programs
    forever: the generated program as an int-coded array, the in-place
    settle order, and the model's swap probabilities pre-scaled into the
    integer-threshold form of {!Memrel_prob.Rng.bernoulli_scaled}. One trial
    ([generate] + [settle]) performs no heap allocation at all in steady
    state — guarded by `Gc.minor_words` regression tests.

    Draw-stream contract: for the same generator state, [generate] consumes
    exactly the Bernoulli sequence of {!Program.generate_with_gap} and
    [settle] exactly that of {!Settle.run} on the same program (a draw
    happens iff the swap probability is positive, with bit-identical
    verdicts — see {!Memrel_prob.Rng.scale_probability}). Hence estimators
    built on this kernel return results bit-identical to the closure-based
    [Reference] path; the differential tests pin this.

    Only fence-free generated programs are representable here; programs
    with fences (e.g. {!Program.with_fences}) take the {!Settle.run}
    path. *)

type t
(** Mutable per-worker scratch. Not thread-safe: one [t] per domain. *)

val create : ?p:float -> ?gap:int -> m:int -> Memrel_memmodel.Model.t -> t
(** [create ~m model] sizes the scratch for programs of [m] plain prefix
    ops, [gap] plain ops inside the critical section (default 0), and ST
    probability [p] (default 0.5). Raises [Invalid_argument] as
    {!Program.generate_with_gap} would. *)

val generate : t -> Memrel_prob.Rng.t -> unit
(** Draw a fresh program into the scratch. *)

val settle : t -> Memrel_prob.Rng.t -> unit
(** Settle the current program in place and record the critical pair's
    settled positions. *)

val load_pos : t -> int
(** Settled position of the critical load (after [settle]). *)

val store_pos : t -> int
(** Settled position of the critical store (after [settle]). *)

val gamma : t -> int
(** Window growth [store_pos - load_pos - 1] (after [settle]). *)

val sample_gamma : t -> Memrel_prob.Rng.t -> int
(** [generate] + [settle] + [gamma]: one full trial. *)
